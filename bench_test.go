// Package bench regenerates every table and figure of the paper as Go
// benchmarks: each BenchmarkTableN/BenchmarkFigN runs the corresponding
// experiment end-to-end on the simulated testbed and logs the report.
//
// Run a single figure:
//
//	go test -bench=Fig8a -benchtime=1x
//
// Run everything (as the EXPERIMENTS.md numbers were produced):
//
//	go test -bench=. -benchmem
//
// Compare sequential vs parallel cell execution (the engine's worker
// pool; expect >= 2x on >= 4 cores):
//
//	go test -bench=Sweep48 -benchtime=3x
//
// Sweep48JMax vs Sweep48JMaxMetrics bounds the telemetry overhead (the
// -metrics/-trace machinery; expect low single-digit percent).
//
// The options below subsample the 265-workload catalog for tractable
// runtimes; pass -full to sweep the entire catalog (minutes per figure).
package bench

import (
	"context"
	"flag"
	"runtime"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/hostprof"
)

var full = flag.Bool("full", false, "run figures over the full 265-workload catalog")

// benchOptions returns the experiment scaling used for benchmarks.
func benchOptions() melody.Options {
	o := melody.Options{
		MaxWorkloads: 16,
		Instructions: 400_000,
		Warmup:       100_000,
		DurationNs:   100_000,
		Seed:         1,
	}
	if *full {
		o.MaxWorkloads = 0
		o.Instructions = 1_200_000
		o.Warmup = 250_000
		o.DurationNs = 300_000
	}
	return o
}

// runExperiment executes one registered experiment per benchmark
// iteration and logs its report on the last iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	melody.RegisterWorkloads()
	var rep *melody.Report
	for i := 0; i < b.N; i++ {
		var ok bool
		rep, ok = melody.RunExperiment(context.Background(), id, benchOptions(), 0)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
	}
	if rep == nil || len(rep.Lines) == 0 {
		b.Fatalf("experiment %q produced no output", id)
	}
	b.Log("\n" + rep.String())
}

// benchmarkSweep measures the wall-clock of a 48-workload Figure 8a
// sweep at a fixed worker count — the acceptance comparison for the
// parallel experiment engine (run Sweep48J1 vs Sweep48JMax). When
// observed is set, full telemetry (metrics registry + trace) is
// attached, so Sweep48JMax vs Sweep48JMaxMetrics bounds the
// observability overhead. A non-zero sampleEvery additionally turns on
// the cycle sampler in every cell, so Sweep48JMaxMetrics vs
// Sweep48JMaxSampling bounds the cost of the time-resolved streams.
func benchmarkSweep(b *testing.B, workers int, observed bool, sampleEvery uint64) {
	b.Helper()
	melody.RegisterWorkloads()
	o := benchOptions()
	o.MaxWorkloads = 48
	o.SampleEveryCycles = sampleEvery
	for i := 0; i < b.N; i++ {
		g := melody.NewEngine(o)
		g.Workers = workers
		if observed {
			g.Obs = melody.NewTelemetry()
			g.Obs.Trace = obs.NewTrace()
		}
		rep, ok := g.RunByID(context.Background(), "fig8a")
		if !ok || len(rep.Lines) == 0 {
			b.Fatal("fig8a sweep produced no output")
		}
		if observed && g.Obs.Registry.Counter("runner/cells_run").Value() == 0 {
			b.Fatal("telemetry attached but no cells recorded")
		}
		if sampleEvery > 0 && observed && g.Obs.Registry.Counter("runner/cells_sampled").Value() == 0 {
			b.Fatal("sampling enabled but no cells sampled")
		}
	}
}

func BenchmarkSweep48J1(b *testing.B)           { benchmarkSweep(b, 1, false, 0) }
func BenchmarkSweep48JMax(b *testing.B)         { benchmarkSweep(b, runtime.NumCPU(), false, 0) }
func BenchmarkSweep48JMaxMetrics(b *testing.B)  { benchmarkSweep(b, runtime.NumCPU(), true, 0) }
func BenchmarkSweep48JMaxSampling(b *testing.B) { benchmarkSweep(b, runtime.NumCPU(), true, 20_000) }

// BenchmarkSweep48JMaxHostprof runs the observed sweep with the
// continuous host profiler live at an aggressive 1s cadence (CPU
// windows plus heap/goroutine/mutex/block snapshots every round), so
// Sweep48JMaxMetrics vs Sweep48JMaxHostprof bounds the profiling
// overhead. The mutex/block rates are raised only inside capture
// windows and restored after, so the steady-state cost is the CPU
// sampling window itself — expect low single-digit percent even at
// this cadence, and nothing at all at the default 60s interval.
func BenchmarkSweep48JMaxHostprof(b *testing.B) {
	p := hostprof.New(hostprof.Config{
		Interval:    time.Second,
		CPUDuration: 250 * time.Millisecond,
		Registry:    obs.NewRegistry(),
		Watchdog:    hostprof.WatchdogConfig{Disabled: true},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	benchmarkSweep(b, runtime.NumCPU(), true, 0)
	cancel()
	<-done
	if p.Store().Len() == 0 {
		b.Fatal("profiler captured nothing during the sweep")
	}
}

func BenchmarkTable1(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig3a(b *testing.B)     { runExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)     { runExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)     { runExperiment(b, "fig3c") }
func BenchmarkFig4(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)     { runExperiment(b, "fig8a") }
func BenchmarkFig8c(b *testing.B)     { runExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)     { runExperiment(b, "fig8d") }
func BenchmarkFig8e(b *testing.B)     { runExperiment(b, "fig8e") }
func BenchmarkFig8f(b *testing.B)     { runExperiment(b, "fig8f") }
func BenchmarkFig9a(b *testing.B)     { runExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)     { runExperiment(b, "fig9b") }
func BenchmarkFig11(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B)    { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)    { runExperiment(b, "fig12b") }
func BenchmarkFig14(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkTuning(b *testing.B)    { runExperiment(b, "tuning") }
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }
func BenchmarkPredict(b *testing.B)   { runExperiment(b, "predict") }
func BenchmarkCPMU(b *testing.B)      { runExperiment(b, "cpmu") }
func BenchmarkTiering(b *testing.B)   { runExperiment(b, "tiering") }
