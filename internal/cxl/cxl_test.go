package cxl

import (
	"testing"
	"testing/quick"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

// quietProfile is CXL-A with every stochastic pathology disabled, for
// deterministic latency checks.
func quietProfile() Profile {
	p := ProfileA()
	p.Link.RetryProb = 0
	p.Link.Credits = 0
	p.MC.HiccupPeriodNs = 0
	p.MC.MajorHiccupPeriodNs = 0
	p.MC.ThermalThreshold = 0
	p.DRAM.Timing.TREFI = 0
	return p
}

func TestIdleReadLatencyComposition(t *testing.T) {
	p := quietProfile()
	d := New(p, 1)
	done := d.Access(1000, 0, mem.DemandRead)
	lat := done - 1000
	// Round trip: 2x propagation + pipeline + DRAM closed-row + flits.
	tm := p.DRAM.Timing
	dramLat := tm.TRCD + tm.TCAS + mem.LineSize/p.DRAM.ChannelBW
	want := 2*p.Link.PropagationNs + p.MC.PipelineNs + dramLat +
		readReqBytes/p.Link.ReqBW + dataBytes/p.Link.RspBW
	if diff := lat - want; diff > 1 || diff < -1 {
		t.Fatalf("idle read latency = %v, want ~%v", lat, want)
	}
}

func TestWritePostedCompletesEarly(t *testing.T) {
	d := New(quietProfile(), 1)
	read := d.Access(0, 0, mem.DemandRead) - 0
	d.Reset()
	write := d.Access(0, mem.LineSize, mem.Write) - 0
	if write >= read {
		t.Fatalf("posted write (%v) not faster than read round trip (%v)", write, read)
	}
}

func TestVendorLatencyOrdering(t *testing.T) {
	// Idle latency must order A < D < B < C, matching Table 1
	// (214, 239, 271, 394 ns including the ~55 ns CPU side).
	idle := func(p Profile) float64 {
		p.Link.RetryProb = 0
		p.MC.HiccupPeriodNs = 0
		p.MC.MajorHiccupPeriodNs = 0
		d := New(p, 1)
		// Random-ish pointer chase: average over accesses to distinct rows.
		r := sim.NewRand(7)
		now := 0.0
		total := 0.0
		const n = 200
		for i := 0; i < n; i++ {
			addr := r.Uint64n(1 << 32)
			done := d.Access(now, addr, mem.DemandRead)
			total += done - now
			now = done + 50
		}
		return total / n
	}
	a, b, c, dd := idle(ProfileA()), idle(ProfileB()), idle(ProfileC()), idle(ProfileD())
	if !(a < dd && dd < b && b < c) {
		t.Fatalf("latency ordering violated: A=%v D=%v B=%v C=%v", a, dd, b, c)
	}
}

func TestHiccupCreatesTail(t *testing.T) {
	p := ProfileB()
	p.Link.RetryProb = 0
	p.MC.ThermalThreshold = 0
	d := New(p, 3)
	r := sim.NewRand(9)
	now := 0.0
	var lats []float64
	for i := 0; i < 50000; i++ {
		addr := r.Uint64n(1 << 32)
		done := d.Access(now, addr, mem.DemandRead)
		lats = append(lats, done-now)
		now = done
	}
	// p50 should be "normal"; max should show hiccup spikes well above it.
	var p50, max float64
	{
		sorted := append([]float64(nil), lats...)
		for i := range sorted {
			if sorted[i] > max {
				max = sorted[i]
			}
		}
		p50 = median(sorted)
	}
	if max < p50+p.MC.HiccupNs*0.8 {
		t.Fatalf("no hiccup tail: p50=%v max=%v", p50, max)
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion-free selection is overkill; simple sort
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestThermalGovernorEngagesUnderLoad(t *testing.T) {
	p := ProfileA()
	p.Link.RetryProb = 0
	p.MC.HiccupPeriodNs = 0
	p.MC.MajorHiccupPeriodNs = 0
	d := New(p, 5)
	// Open-loop read blast: offered load far above device peak.
	now := 0.0
	for i := 0; i < 200000; i++ {
		d.Access(now, uint64(i)*mem.LineSize, mem.DemandRead)
		now += 1 // 64 GB/s offered, ~2x the device peak
	}
	if d.Stats().Throttled == 0 {
		t.Fatal("thermal governor never engaged at high utilization")
	}
}

func TestThermalGovernorIdleQuiet(t *testing.T) {
	p := ProfileA()
	p.Link.RetryProb = 0
	p.MC.HiccupPeriodNs = 0
	p.MC.MajorHiccupPeriodNs = 0
	d := New(p, 5)
	now := 0.0
	r := sim.NewRand(11)
	for i := 0; i < 20000; i++ {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		now = done + 400 // low load: big gaps
	}
	if d.Stats().Throttled != 0 {
		t.Fatalf("thermal governor engaged at low load: %d", d.Stats().Throttled)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"CXL-A", "CXL-B", "CXL-C", "CXL-D"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %v, %v", name, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("CXL-Z"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestHalfDuplexC(t *testing.T) {
	if !ProfileC().Link.HalfDuplex {
		t.Fatal("CXL-C must be half-duplex (FPGA IP)")
	}
	for _, p := range []Profile{ProfileA(), ProfileB(), ProfileD()} {
		if p.Link.HalfDuplex {
			t.Fatalf("%s must be full-duplex", p.Name)
		}
	}
}

func TestCompletionAfterArrivalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := New(ProfileB(), seed)
		r := sim.NewRand(seed)
		now := 0.0
		for i := 0; i < 300; i++ {
			kind := mem.DemandRead
			if r.Bool(0.3) {
				kind = mem.Write
			}
			done := d.Access(now, r.Uint64n(1<<30), kind)
			if done < now {
				return false
			}
			now += r.Float64() * 100
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresIdleLatency(t *testing.T) {
	d := New(quietProfile(), 1)
	first := d.Access(0, 0, mem.DemandRead)
	for i := 0; i < 1000; i++ {
		d.Access(0, uint64(i)*mem.LineSize, mem.DemandRead)
	}
	d.Reset()
	again := d.Access(0, 0, mem.DemandRead)
	if again != first {
		t.Fatalf("post-Reset latency %v != initial %v", again, first)
	}
}
