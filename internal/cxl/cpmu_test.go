package cxl

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

func TestCPMUDisabledByDefault(t *testing.T) {
	d := New(ProfileB(), 1)
	d.Access(0, 0, mem.DemandRead)
	if d.PMU().Requests != 0 {
		t.Fatal("CPMU recorded while disabled")
	}
}

func TestCPMUBreakdownSumsToLatency(t *testing.T) {
	p := quietProfile()
	d := New(p, 1)
	d.PMU().Enable()
	now := 0.0
	r := sim.NewRand(3)
	var totalLat float64
	const n = 2000
	for i := 0; i < n; i++ {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		totalLat += done - now
		now = done + 50
	}
	pmu := d.PMU()
	if pmu.Requests != n {
		t.Fatalf("CPMU recorded %d requests, want %d", pmu.Requests, n)
	}
	sum := pmu.LinkReqNs + pmu.SchedWaitNs + pmu.MediaNs + pmu.LinkRspNs
	if math.Abs(sum-totalLat) > 1 {
		t.Fatalf("component sum %.1f != total latency %.1f", sum, totalLat)
	}
	lr, sw, md, lp := pmu.Breakdown()
	if lr <= 0 || sw <= 0 || md <= 0 || lp <= 0 {
		t.Fatalf("breakdown has empty components: %v %v %v %v", lr, sw, md, lp)
	}
}

func TestCPMUAttributesHiccups(t *testing.T) {
	p := ProfileB()
	p.Link.RetryProb = 0
	p.MC.ThermalThreshold = 0
	d := New(p, 3)
	d.PMU().Enable()
	now := 0.0
	r := sim.NewRand(9)
	for i := 0; i < 50_000; i++ {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		now = done
	}
	pmu := d.PMU()
	if pmu.HiccupStalls == 0 {
		t.Fatal("CPMU saw no hiccup stalls on CXL-B")
	}
	// The white-box view: tail latency comes from scheduler wait, not
	// media (the paper's hypothesized root cause).
	if gap := pmu.Percentile(99.9) - pmu.Percentile(50); gap < 100 {
		t.Fatalf("CPMU tail gap %.0f too small for CXL-B", gap)
	}
}

func TestCPMUPercentilesOrdered(t *testing.T) {
	d := New(ProfileC(), 1)
	d.PMU().Enable()
	now := 0.0
	r := sim.NewRand(5)
	for i := 0; i < 10_000; i++ {
		done := d.Access(now, r.Uint64n(1<<30), mem.DemandRead)
		now = done
	}
	pmu := d.PMU()
	if !(pmu.Percentile(50) <= pmu.Percentile(99) && pmu.Percentile(99) <= pmu.Percentile(99.9)) {
		t.Fatal("CPMU percentiles not ordered")
	}
	if pmu.String() == "" {
		t.Fatal("empty CPMU string")
	}
}

func TestCPMUSurvivesResetPolicy(t *testing.T) {
	d := New(quietProfile(), 1)
	d.PMU().Enable()
	d.Access(0, 0, mem.DemandRead)
	d.Reset()
	if d.PMU().Requests != 0 {
		t.Fatal("Reset did not clear CPMU counters")
	}
	if !d.PMU().Enabled() {
		t.Fatal("Reset disabled the CPMU (enable state should persist)")
	}
}
