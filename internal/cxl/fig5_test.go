package cxl

import (
	"testing"

	"github.com/moatlab/melody/internal/mlc"
)

// peakRatio measures each profile's bandwidth across the paper's R:W
// mixes and returns (read-only BW, best mixed BW).
func peakRatio(t *testing.T, p Profile) (readOnly, bestMixed float64) {
	t.Helper()
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = 80_000
	d := New(p, 1)
	for _, ratio := range mlc.RWRatios() {
		bw := mlc.Bandwidth(d, ratio.ReadFrac, cfg)
		if ratio.ReadFrac == 1.0 {
			readOnly = bw
		} else if bw > bestMixed {
			bestMixed = bw
		}
	}
	return readOnly, bestMixed
}

// TestFig5FullDuplexPeaksMixed asserts the paper's Figure 5 property:
// the full-duplex ASIC devices reach peak bandwidth under mixed
// read/write traffic.
func TestFig5FullDuplexPeaksMixed(t *testing.T) {
	for _, p := range []Profile{ProfileA(), ProfileB(), ProfileD()} {
		ro, mixed := peakRatio(t, p)
		if mixed <= ro {
			t.Errorf("%s: mixed peak %.1f <= read-only %.1f (full duplex should win)",
				p.Name, mixed, ro)
		}
	}
}

// TestFig5FPGAPeaksReadOnly asserts CXL-C's anomaly: the FPGA device
// cannot exploit both link directions, so read-only traffic is its peak
// and writes degrade it.
func TestFig5FPGAPeaksReadOnly(t *testing.T) {
	ro, mixed := peakRatio(t, ProfileC())
	if ro <= mixed {
		t.Fatalf("CXL-C: read-only %.1f <= mixed %.1f (half duplex should peak read-only)",
			ro, mixed)
	}
}

// TestPeakBandwidthTargets asserts the Table-1 peak bandwidths
// (32/26/21/59 GB/s) within tolerance.
func TestPeakBandwidthTargets(t *testing.T) {
	targets := map[string]float64{"CXL-A": 32, "CXL-B": 26, "CXL-C": 21, "CXL-D": 59}
	for _, p := range Profiles() {
		ro, mixed := peakRatio(t, p)
		peak := ro
		if mixed > peak {
			peak = mixed
		}
		want := targets[p.Name]
		if peak < want*0.8 || peak > want*1.2 {
			t.Errorf("%s peak = %.1f GB/s, want %.0f +-20%%", p.Name, peak, want)
		}
	}
}
