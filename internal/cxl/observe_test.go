package cxl

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

// obsRecorder collects observations for attribution tests.
type obsRecorder struct {
	got []mem.AccessObservation
}

func (r *obsRecorder) ObserveAccess(a mem.AccessObservation) { r.got = append(r.got, a) }

func TestDeviceAccessDisabledPathZeroAlloc(t *testing.T) {
	// The telemetry contract: with the CPMU off and no observer attached
	// (the default state), the device hot path must not allocate.
	d := New(ProfileB(), 1)
	r := sim.NewRand(2)
	now := 0.0
	allocs := testing.AllocsPerRun(10_000, func() {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		now = done
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f/access, want 0", allocs)
	}
}

func TestCPMUHistogramNeverTruncates(t *testing.T) {
	// Regression test for the sample-cap bias: the raw []float64 the CPMU
	// used to keep stopped at 262144 samples, so long runs computed
	// percentiles over the warmup prefix only. The log-bucketed histogram
	// must cover every request.
	const n = 300_000 // > the old 262144 cap
	d := New(quietProfile(), 1)
	d.PMU().Enable()
	now := 0.0
	r := sim.NewRand(4)
	for i := 0; i < n; i++ {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		now = done + 10
	}
	pmu := d.PMU()
	if pmu.Requests != n {
		t.Fatalf("CPMU recorded %d requests, want %d", pmu.Requests, n)
	}
	if got := pmu.LatencyHistogram().Count(); got != n {
		t.Fatalf("latency histogram holds %d samples, want all %d", got, n)
	}
	if p := pmu.Percentile(99.9); math.IsNaN(p) || p <= 0 {
		t.Fatalf("p99.9 = %v", p)
	}
}

func TestObserverReceivesAttributedComponents(t *testing.T) {
	d := New(quietProfile(), 1)
	rec := &obsRecorder{}
	d.SetObserver(rec)
	now := 0.0
	r := sim.NewRand(6)
	const n = 1000
	for i := 0; i < n; i++ {
		done := d.Access(now, r.Uint64n(1<<32), mem.DemandRead)
		now = done + 20
	}
	if len(rec.got) != n {
		t.Fatalf("observer saw %d accesses, want %d", len(rec.got), n)
	}
	for i, a := range rec.got {
		if !a.Attributed {
			t.Fatalf("access %d not attributed (CXL device must attribute natively)", i)
		}
		sum := a.LinkReqNs + a.SchedWaitNs + a.MediaNs + a.LinkRspNs
		if math.Abs(sum-a.Latency()) > 1e-6 {
			t.Fatalf("access %d: components sum to %.3f, latency %.3f", i, sum, a.Latency())
		}
	}
}

func TestObserverDoesNotPerturbTiming(t *testing.T) {
	// Two identical devices, same access stream; one observed, one not.
	// Completion times must match exactly — observation is read-only.
	a := New(ProfileB(), 7)
	b := New(ProfileB(), 7)
	b.SetObserver(&obsRecorder{})
	ra, rb := sim.NewRand(8), sim.NewRand(8)
	nowA, nowB := 0.0, 0.0
	for i := 0; i < 20_000; i++ {
		kind := mem.DemandRead
		if i%7 == 0 {
			kind = mem.Write
		}
		da := a.Access(nowA, ra.Uint64n(1<<32), kind)
		db := b.Access(nowB, rb.Uint64n(1<<32), kind)
		if da != db {
			t.Fatalf("access %d: observed device diverged (%.6f != %.6f)", i, db, da)
		}
		nowA, nowB = da, db
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestObserverSurvivesReset(t *testing.T) {
	d := New(quietProfile(), 1)
	rec := &obsRecorder{}
	d.SetObserver(rec)
	d.Reset()
	d.Access(0, 0, mem.DemandRead)
	if len(rec.got) != 1 {
		t.Fatal("Reset detached the observer")
	}
	d.SetObserver(nil)
	d.Access(1000, 0, mem.DemandRead)
	if len(rec.got) != 1 {
		t.Fatal("SetObserver(nil) did not detach")
	}
}
