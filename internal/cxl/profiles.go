package cxl

import (
	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/link"
)

// Vendor profiles for the paper's four CXL devices (Table 1), calibrated
// so that the MLC/MIO harnesses reproduce the published idle latency and
// bandwidth within tolerance:
//
//	          type  lanes  DDR      idle lat  MLC BW  peak BW
//	CXL-A     ASIC  x8     2xDDR4   214 ns    24 GB/s  32 GB/s
//	CXL-B     ASIC  x8     1xDDR5   271 ns    22 GB/s  26 GB/s
//	CXL-C     FPGA  x8     2xDDR4   394 ns    18 GB/s  21 GB/s
//	CXL-D     ASIC  x16    2xDDR5   239 ns    52 GB/s  59 GB/s
//
// The published idle latency includes ~55 ns of CPU-side cache-hierarchy
// traversal, which belongs to the platform model (package platform), so
// the device profiles below target the remainder.
//
// Tail behaviour per the paper: B and C hiccup even at low load; A and D
// are stable until their thermal governors engage (~30 % and ~70 %
// utilization respectively, Figure 3c); C is half-duplex (FPGA IP).

// ProfileA returns the CXL-A device profile.
func ProfileA() Profile {
	d := dram.DefaultConfig()
	d.Channels = 2
	d.BanksPerChannel = 32
	d.ChannelBW = 17.5
	return Profile{
		Name: "CXL-A",
		Link: link.Config{
			PropagationNs:  24,
			ReqBW:          30,
			RspBW:          30,
			RetryProb:      0.0002,
			RetryPenaltyNs: 120,
			Credits:        48,
			CreditReturnNs: 80,
		},
		MC: MCConfig{
			PipelineNs:          62,
			HiccupPeriodNs:      50_000,
			HiccupNs:            100,
			MajorHiccupPeriodNs: 5_000_000,
			MajorHiccupNs:       600,
			ThermalThreshold:    0.30,
			ThermalPeriodNs:     3_000,
			ThermalStallNs:      500,
			PeakGBs:             32,
		},
		DRAM: d,
	}
}

// ProfileB returns the CXL-B device profile.
func ProfileB() Profile {
	d := dram.DefaultConfig()
	d.Channels = 1
	d.BanksPerChannel = 32
	d.ChannelBW = 30
	d.Timing = dram.DDR5()
	return Profile{
		Name: "CXL-B",
		Link: link.Config{
			PropagationNs:  24,
			ReqBW:          28,
			RspBW:          28,
			RetryProb:      0.0002,
			RetryPenaltyNs: 120,
			Credits:        64,
			CreditReturnNs: 150,
		},
		MC: MCConfig{
			PipelineNs:          122,
			HiccupPeriodNs:      30_000,
			HiccupNs:            300,
			MajorHiccupPeriodNs: 3_000_000,
			MajorHiccupNs:       800,
			ThermalThreshold:    0.40,
			ThermalPeriodNs:     3_000,
			ThermalStallNs:      600,
			PeakGBs:             26,
		},
		DRAM: d,
	}
}

// ProfileC returns the CXL-C (FPGA) device profile. Its unoptimized CXL
// IP cannot drive both link directions, so the link is half-duplex and
// peak bandwidth occurs under read-only traffic (paper Figure 5).
func ProfileC() Profile {
	d := dram.DefaultConfig()
	d.Channels = 2
	d.BanksPerChannel = 32
	d.ChannelBW = 19
	return Profile{
		Name: "CXL-C",
		Link: link.Config{
			PropagationNs:  40,
			ReqBW:          30,
			RspBW:          30,
			HalfDuplex:     true,
			TurnaroundNs:   6,
			RetryProb:      0.001,
			RetryPenaltyNs: 250,
			Credits:        96,
			CreditReturnNs: 180,
		},
		MC: MCConfig{
			PipelineNs:          209,
			HiccupPeriodNs:      40_000,
			HiccupNs:            500,
			MajorHiccupPeriodNs: 2_000_000,
			MajorHiccupNs:       2_500,
			ThermalThreshold:    0.30,
			ThermalPeriodNs:     3_000,
			ThermalStallNs:      1_200,
			PeakGBs:             21,
		},
		DRAM: d,
	}
}

// ProfileD returns the CXL-D device profile: x16 lanes, two DDR5
// channels, the best latency stability of the four.
func ProfileD() Profile {
	d := dram.DefaultConfig()
	d.Channels = 2
	d.BanksPerChannel = 64 // two ranks
	d.ChannelBW = 38
	d.Timing = dram.DDR5()
	return Profile{
		Name: "CXL-D",
		Link: link.Config{
			PropagationNs:  21,
			ReqBW:          65,
			RspBW:          65,
			RetryProb:      0.0001,
			RetryPenaltyNs: 100,
			Credits:        96,
			CreditReturnNs: 40,
		},
		MC: MCConfig{
			PipelineNs:          98,
			HiccupPeriodNs:      80_000,
			HiccupNs:            75,
			MajorHiccupPeriodNs: 8_000_000,
			MajorHiccupNs:       500,
			ThermalThreshold:    0.70,
			ThermalPeriodNs:     14_000,
			ThermalStallNs:      400,
			PeakGBs:             59,
		},
		DRAM: d,
	}
}

// Profiles returns all four vendor profiles in paper order.
func Profiles() []Profile {
	return []Profile{ProfileA(), ProfileB(), ProfileC(), ProfileD()}
}

// ProfileByName looks up a profile ("CXL-A".."CXL-D"); the second return
// is false if unknown.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
