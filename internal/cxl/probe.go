package cxl

import "github.com/moatlab/melody/internal/link"

// CPMUState is one instantaneous reading of the expander's internal
// state — the time-resolved view a CXL 3.0 CPMU could expose and that
// the paper argues is required to reason about tail latencies (§3.2).
// Where the CPMU accumulators answer "how much time went where over the
// whole run", CPMUState answers "what does the device look like *right
// now*": transaction-queue occupancy, link credits in flight, the
// thermal governor's state, and instantaneous read/write bandwidth.
//
// The cumulative component accumulators (LinkReqNs..LinkRspNs,
// HiccupStalls, ThermalStalls, Requests) are copied from the CPMU at
// probe time so samplers can difference consecutive probes into
// per-period component attribution without a second probe channel.
type CPMUState struct {
	TimeNs float64 `json:"time_ns"`

	// QueueDepth counts requests issued to the controller whose
	// completion lies beyond TimeNs — transaction-queue occupancy.
	QueueDepth int `json:"queue_depth"`

	// LinkCreditsInFlight counts flow-control credits consumed but not
	// yet returned across both link directions (0 when the profile
	// disables flow control).
	LinkCreditsInFlight int `json:"link_credits_in_flight"`

	// ThermalActive reports whether the thermal/power governor is armed
	// (utilization EWMA above the profile's threshold); UtilFrac is
	// that EWMA as a fraction of peak bandwidth.
	ThermalActive bool    `json:"thermal_active"`
	UtilFrac      float64 `json:"util_frac"`

	// ReadGBs/WriteGBs are the instantaneous payload bandwidths since
	// the previous probe (bytes moved / elapsed sim time).
	ReadGBs  float64 `json:"read_gbs"`
	WriteGBs float64 `json:"write_gbs"`

	// Cumulative CPMU accumulators at probe time.
	LinkReqNs     float64 `json:"link_req_ns"`
	SchedWaitNs   float64 `json:"sched_wait_ns"`
	MediaNs       float64 `json:"media_ns"`
	LinkRspNs     float64 `json:"link_rsp_ns"`
	HiccupStalls  uint64  `json:"hiccup_stalls"`
	ThermalStalls uint64  `json:"thermal_stalls"`
	Requests      uint64  `json:"requests"`
}

// ComponentDelta returns the per-component time the expander
// accumulated between an earlier probe prev and s: nanoseconds spent
// in link request transmission, scheduler wait, media service, and
// link response return. Differencing the cumulative accumulators is
// how samplers turn two probes into a per-interval attribution — the
// device-component split behind the phase narrative and the
// simulated-time profiles' leaf frames.
func (s CPMUState) ComponentDelta(prev CPMUState) (linkReq, schedWait, media, linkRsp float64) {
	return s.LinkReqNs - prev.LinkReqNs, s.SchedWaitNs - prev.SchedWaitNs,
		s.MediaNs - prev.MediaNs, s.LinkRspNs - prev.LinkRspNs
}

// StateProber is implemented by devices that can report instantaneous
// CPMU-style state. Probing must be observation-only: enabling the
// probe and reading state never changes simulated access timing.
type StateProber interface {
	// EnableStateProbe arms state tracking (off by default: tracking
	// in-flight completions costs heap work per access).
	EnableStateProbe()
	// ProbeState reads the device state at simulated time nowNs.
	// Probe times must be non-decreasing across calls.
	ProbeState(nowNs float64) CPMUState
}

var _ StateProber = (*Device)(nil)

// EnableStateProbe implements StateProber. It also enables the CPMU so
// the cumulative component accumulators advance; like the CPMU enable
// bit and the observer, the probe survives Reset.
func (d *Device) EnableStateProbe() {
	d.probe = true
	d.pmu.Enable()
}

// ProbeState implements StateProber. The instantaneous bandwidth window
// is [previous probe, nowNs]; the first probe measures from time 0.
func (d *Device) ProbeState(nowNs float64) CPMUState {
	for d.inflight.Len() > 0 && d.inflight.Min() <= nowNs {
		d.inflight.PopMin()
	}
	s := CPMUState{
		TimeNs:              nowNs,
		QueueDepth:          d.inflight.Len(),
		LinkCreditsInFlight: d.lnk.CreditsInFlight(link.Req, nowNs) + d.lnk.CreditsInFlight(link.Rsp, nowNs),
		ThermalActive:       d.prof.MC.ThermalThreshold > 0 && d.util > d.prof.MC.ThermalThreshold,
		UtilFrac:            d.util,
		LinkReqNs:           d.pmu.LinkReqNs,
		SchedWaitNs:         d.pmu.SchedWaitNs,
		MediaNs:             d.pmu.MediaNs,
		LinkRspNs:           d.pmu.LinkRspNs,
		HiccupStalls:        d.pmu.HiccupStalls,
		ThermalStalls:       d.pmu.ThermalStalls,
		Requests:            d.pmu.Requests,
	}
	if dt := nowNs - d.probeWinStartNs; dt > 0 {
		s.ReadGBs = d.probeReadBytes / dt // bytes/ns == GB/s
		s.WriteGBs = d.probeWriteBytes / dt
	}
	d.probeWinStartNs = nowNs
	d.probeReadBytes, d.probeWriteBytes = 0, 0
	return s
}
