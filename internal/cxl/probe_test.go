package cxl

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

// TestProbeDoesNotPerturbTiming pins the StateProber contract: every
// access completes at the same simulated time with the probe armed or
// not, including interleaved ProbeState reads.
func TestProbeDoesNotPerturbTiming(t *testing.T) {
	run := func(probe bool) []float64 {
		d := New(ProfileB(), 7)
		if probe {
			d.EnableStateProbe()
		}
		r := sim.NewRand(11)
		now := 0.0
		var done []float64
		for i := 0; i < 3000; i++ {
			kind := mem.DemandRead
			if i%5 == 0 {
				kind = mem.Write
			}
			c := d.Access(now, r.Uint64n(1<<32), kind)
			done = append(done, c)
			if probe && i%100 == 99 {
				d.ProbeState(now)
			}
			now += 30
		}
		return done
	}
	plain, probed := run(false), run(true)
	for i := range plain {
		if plain[i] != probed[i] {
			t.Fatalf("access %d: completion %.3f with probe vs %.3f without", i, probed[i], plain[i])
		}
	}
}

func TestProbeStateTracksQueueAndBandwidth(t *testing.T) {
	d := New(ProfileB(), 1)
	d.EnableStateProbe()
	r := sim.NewRand(5)

	// Issue a burst of back-to-back reads at t=0; their completions all
	// lie in the future, so the queue is occupied just after issue.
	for i := 0; i < 16; i++ {
		d.Access(0, r.Uint64n(1<<32), mem.DemandRead)
	}
	s := d.ProbeState(1)
	if s.QueueDepth == 0 {
		t.Fatal("burst in flight but queue depth 0")
	}
	if s.ReadGBs <= 0 {
		t.Fatalf("read bandwidth %.3f after a read burst", s.ReadGBs)
	}
	if s.WriteGBs != 0 {
		t.Fatalf("write bandwidth %.3f with no writes", s.WriteGBs)
	}
	if s.Requests != 16 {
		t.Fatalf("cumulative requests %d, want 16", s.Requests)
	}

	// Far in the future everything has drained and the window carried
	// no new traffic.
	s2 := d.ProbeState(1e9)
	if s2.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", s2.QueueDepth)
	}
	if s2.ReadGBs != 0 || s2.WriteGBs != 0 {
		t.Fatalf("idle window reports bandwidth %f/%f", s2.ReadGBs, s2.WriteGBs)
	}
	if s2.LinkCreditsInFlight != 0 {
		t.Fatalf("credits in flight %d after drain", s2.LinkCreditsInFlight)
	}
}

func TestProbeCumulativeMatchesCPMU(t *testing.T) {
	d := New(ProfileA(), 2)
	d.EnableStateProbe()
	r := sim.NewRand(9)
	now := 0.0
	for i := 0; i < 500; i++ {
		now = d.Access(now, r.Uint64n(1<<30), mem.DemandRead) + 20
	}
	s := d.ProbeState(now)
	pmu := d.PMU()
	if s.LinkReqNs != pmu.LinkReqNs || s.SchedWaitNs != pmu.SchedWaitNs ||
		s.MediaNs != pmu.MediaNs || s.LinkRspNs != pmu.LinkRspNs {
		t.Fatalf("probe component copy diverges from CPMU: %+v vs %+v", s, pmu)
	}
	if s.HiccupStalls != pmu.HiccupStalls || s.ThermalStalls != pmu.ThermalStalls {
		t.Fatal("probe governor counts diverge from CPMU")
	}
}

func TestProbeSurvivesReset(t *testing.T) {
	d := New(ProfileB(), 1)
	d.EnableStateProbe()
	d.Access(0, 64, mem.DemandRead)
	d.Reset()
	if s := d.ProbeState(0); s.QueueDepth != 0 || s.Requests != 0 {
		t.Fatalf("reset left probe state behind: %+v", s)
	}
	d.Access(0, 64, mem.DemandRead)
	if s := d.ProbeState(1); s.Requests != 1 {
		t.Fatal("probe disarmed by Reset")
	}
}

// TestComponentDeltaDifferencesAccumulators pins that differencing two
// probes yields exactly the component time added between them, and
// that the split covers the interval's total device-resident time.
func TestComponentDeltaDifferencesAccumulators(t *testing.T) {
	d := New(ProfileB(), 3)
	d.EnableStateProbe()
	r := sim.NewRand(9)

	now := 0.0
	for i := 0; i < 500; i++ {
		d.Access(now, r.Uint64n(1<<30), mem.DemandRead)
		now += 25
	}
	a := d.ProbeState(now)
	for i := 0; i < 500; i++ {
		d.Access(now, r.Uint64n(1<<30), mem.DemandRead)
		now += 25
	}
	b := d.ProbeState(now)

	lr, sw, md, rs := b.ComponentDelta(a)
	for name, v := range map[string]float64{"linkReq": lr, "media": md, "linkRsp": rs} {
		if v <= 0 {
			t.Fatalf("%s delta = %v, want > 0 after 500 accesses", name, v)
		}
	}
	if sw < 0 {
		t.Fatalf("schedWait delta = %v, want >= 0", sw)
	}
	wantLR := b.LinkReqNs - a.LinkReqNs
	if lr != wantLR {
		t.Fatalf("linkReq delta = %v, want %v", lr, wantLR)
	}
	wantTotal := (b.LinkReqNs + b.SchedWaitNs + b.MediaNs + b.LinkRspNs) -
		(a.LinkReqNs + a.SchedWaitNs + a.MediaNs + a.LinkRspNs)
	if got := lr + sw + md + rs; got != wantTotal {
		t.Fatalf("component deltas sum to %v, want %v", got, wantTotal)
	}

	// Differencing against the zero state recovers the cumulative view.
	zlr, _, _, _ := a.ComponentDelta(CPMUState{})
	if zlr != a.LinkReqNs {
		t.Fatalf("delta from zero state = %v, want cumulative %v", zlr, a.LinkReqNs)
	}
}
