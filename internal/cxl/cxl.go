// Package cxl models a CXL type-3 memory expander: the Flex Bus link,
// the third-party memory controller's transaction layer and request
// scheduler, a thermal/power governor, and a DDR media backend.
//
// The controller is where CXL's behavioural differences from local DRAM
// live (paper §2, §3.2): header-carrying flits on a full-duplex link,
// CRC replays, credit back-pressure, periodic scheduler hiccups, and
// utilization-triggered throttling. Each vendor profile (A-D) enables a
// different subset with different magnitudes, reproducing the paper's
// "not all CXL devices are created equal" finding.
package cxl

import (
	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/link"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

// Flit overheads in bytes. CXL.mem packs a 64B payload plus protocol
// header into each data flit; command/completion flits are header-only.
const (
	headerBytes  = 16
	readReqBytes = headerBytes                // read command
	dataBytes    = mem.LineSize + headerBytes // data-carrying flit
	ackBytes     = 8                          // write completion (NDR)
)

// MCConfig describes the expander's memory controller.
type MCConfig struct {
	// PipelineNs is the fixed round-trip controller processing time:
	// flit decode, request-queue insertion, scheduling, response pack.
	PipelineNs float64

	// Scheduler hiccups: every HiccupPeriodNs the controller stalls new
	// requests for HiccupNs (internal housekeeping, scheduler batching,
	// media recalibration). This is what produces tail latencies even
	// at low load on immature controllers (CXL-B/C in the paper).
	HiccupPeriodNs float64
	HiccupNs       float64
	// MajorHiccupPeriodNs/MajorHiccupNs model the rare µs-level events
	// visible at p99.99+ in Figure 3b.
	MajorHiccupPeriodNs float64
	MajorHiccupNs       float64

	// Thermal/power governor: when the utilization EWMA exceeds
	// ThermalThreshold (fraction of PeakGBs), the governor inserts
	// ThermalStallNs every ThermalPeriodNs. This grows the p99.9-p50
	// gap beyond a device-specific utilization point (Figure 3c).
	ThermalThreshold float64
	ThermalPeriodNs  float64
	ThermalStallNs   float64

	// PeakGBs is the device's nominal peak bandwidth used to normalize
	// utilization for the governor.
	PeakGBs float64

	// UtilWindowNs is the bandwidth-measurement window.
	UtilWindowNs float64
}

// Profile is a complete CXL device description.
type Profile struct {
	Name string
	Link link.Config
	MC   MCConfig
	DRAM dram.Config
}

// Device implements mem.Device for one CXL memory expander.
type Device struct {
	prof Profile
	lnk  *link.Link
	mod  *dram.Module
	rng  *sim.Rand

	schedBlockedUntil float64
	hiccupAnchor      float64
	majorAnchor       float64

	windowStart float64
	windowBytes float64
	util        float64
	throttleAt  float64

	stats mem.DeviceStats
	pmu   CPMU
	obs   mem.Observer

	// State-probe tracking (EnableStateProbe): in-flight completion
	// times plus read/write byte accumulators since the last probe.
	// All of it is pure observation — Access timing never reads it.
	probe           bool
	inflight        sim.TimeHeap
	probeWinStartNs float64
	probeReadBytes  float64
	probeWriteBytes float64
}

var (
	_ mem.Device     = (*Device)(nil)
	_ mem.Observable = (*Device)(nil)
)

// New constructs a Device from a profile. The seed drives CRC errors and
// hiccup phase randomization.
func New(prof Profile, seed uint64) *Device {
	d := &Device{
		prof: prof,
		lnk:  link.New(prof.Link, seed),
		mod:  dram.New(prof.DRAM),
		rng:  sim.NewRand(seed ^ 0xc3a5c85c97cb3127),
	}
	d.Reset()
	return d
}

// Name implements mem.Device.
func (d *Device) Name() string { return d.prof.Name }

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.prof }

// Reset implements mem.Device.
func (d *Device) Reset() {
	d.lnk.Reset()
	d.mod.Reset()
	d.schedBlockedUntil = 0
	// Randomize hiccup phases so co-located devices don't align.
	d.hiccupAnchor = d.rng.Float64() * d.prof.MC.HiccupPeriodNs
	d.majorAnchor = d.rng.Float64() * d.prof.MC.MajorHiccupPeriodNs
	d.windowStart, d.windowBytes, d.util = 0, 0, 0
	d.throttleAt = 0
	d.stats = mem.DeviceStats{}
	d.pmu.reset()
	d.inflight = sim.TimeHeap{}
	d.probeWinStartNs, d.probeReadBytes, d.probeWriteBytes = 0, 0, 0
}

// PMU exposes the device's CXL 3.0-style performance monitoring unit.
// Call Enable on it before the measurement of interest.
func (d *Device) PMU() *CPMU { return &d.pmu }

// SetObserver implements mem.Observable: o receives every completed
// access with full component attribution (the same breakdown the CPMU
// accumulates). Observation happens after the access's timing is
// committed and never changes simulated behaviour; the nil (detached)
// path costs a nil check and zero allocations. The observer survives
// Reset, mirroring the CPMU enable bit.
func (d *Device) SetObserver(o mem.Observer) { d.obs = o }

// updateUtil folds one request's bytes into the utilization EWMA.
func (d *Device) updateUtil(now, bytes float64) {
	w := d.prof.MC.UtilWindowNs
	if w <= 0 {
		w = 2000
	}
	d.windowBytes += bytes
	if now-d.windowStart >= w {
		inst := d.windowBytes / (now - d.windowStart) // bytes/ns == GB/s
		peak := d.prof.MC.PeakGBs
		if peak <= 0 {
			peak = d.mod.PeakBandwidth()
		}
		u := inst / peak
		d.util = 0.5*d.util + 0.5*u
		d.windowStart = now
		d.windowBytes = 0
	}
}

// hiccupDelay returns the schedule-blocked-until implied by the periodic
// hiccup processes for a request arriving at t.
func hiccupWindow(t, anchor, period, dur float64) (blockedUntil float64) {
	if period <= 0 || dur <= 0 {
		return 0
	}
	shifted := t - anchor
	if shifted < 0 {
		return 0
	}
	k := float64(uint64(shifted / period))
	winStart := k*period + anchor
	if t < winStart+dur {
		return winStart + dur
	}
	return 0
}

// Access implements mem.Device.
func (d *Device) Access(now float64, addr uint64, kind mem.Kind) float64 {
	mc := &d.prof.MC
	isWrite := kind == mem.Write

	// 1. Request flit over the link.
	reqBytes := float64(readReqBytes)
	if isWrite {
		reqBytes = dataBytes
	}
	tArrive := d.lnk.Send(now, link.Req, reqBytes)

	// 2. Transaction layer + scheduler.
	t := tArrive + mc.PipelineNs/2
	hiccuped := false
	if d.schedBlockedUntil > t {
		t = d.schedBlockedUntil
	}
	if until := hiccupWindow(t, d.hiccupAnchor, mc.HiccupPeriodNs, mc.HiccupNs); until > t {
		t = until
		d.schedBlockedUntil = until
		hiccuped = true
	}
	if until := hiccupWindow(t, d.majorAnchor, mc.MajorHiccupPeriodNs, mc.MajorHiccupNs); until > t {
		t = until
		d.schedBlockedUntil = until
		hiccuped = true
	}

	// 3. Thermal/power governor.
	throttled := false
	if mc.ThermalThreshold > 0 && d.util > mc.ThermalThreshold && mc.ThermalPeriodNs > 0 {
		if t >= d.throttleAt {
			d.throttleAt = t + mc.ThermalPeriodNs
			d.schedBlockedUntil = t + mc.ThermalStallNs
			t = d.schedBlockedUntil
			d.stats.Throttled++
			throttled = true
		}
	}

	// 4. Media access.
	start, done := d.mod.Access(t, addr, isWrite)

	var completion float64
	var mediaNs, linkRspNs float64
	if isWrite {
		// Posted write: absorbed when the media transfer is scheduled;
		// the completion flit still loads the response direction.
		d.lnk.Send(start, link.Rsp, ackBytes)
		completion = start
		d.stats.Writes++
		mediaNs, linkRspNs = start-t, 0
	} else {
		completion = d.lnk.Send(done+mc.PipelineNs/2, link.Rsp, dataBytes)
		d.stats.Reads++
		mediaNs, linkRspNs = done-t, completion-done
	}
	d.pmu.record(tArrive-now, t-tArrive, mediaNs, linkRspNs, hiccuped, throttled)
	if d.probe {
		for d.inflight.Len() > 0 && d.inflight.Min() <= now {
			d.inflight.PopMin()
		}
		d.inflight.Push(completion)
		if isWrite {
			d.probeWriteBytes += mem.LineSize
		} else {
			d.probeReadBytes += mem.LineSize
		}
	}
	if d.obs != nil {
		d.obs.ObserveAccess(mem.AccessObservation{
			Kind: kind, Start: now, Done: completion,
			LinkReqNs: tArrive - now, SchedWaitNs: t - tArrive,
			MediaNs: mediaNs, LinkRspNs: linkRspNs,
			Attributed: true, Hiccup: hiccuped, Thermal: throttled,
		})
	}

	d.updateUtil(now, reqBytes)
	if !isWrite {
		d.updateUtil(now, dataBytes)
	}

	d.stats.Retries = d.lnk.Retries()
	d.stats.RowHits = d.mod.RowHits()
	d.stats.RowMisses = d.mod.RowMisses()
	d.stats.BusyNs = d.mod.BusyNs()
	d.stats.LastDone = completion
	return completion
}

// Stats implements mem.Device.
func (d *Device) Stats() mem.DeviceStats { return d.stats }

// PeakBandwidth returns the nominal peak bandwidth (GB/s).
func (d *Device) PeakBandwidth() float64 {
	if d.prof.MC.PeakGBs > 0 {
		return d.prof.MC.PeakGBs
	}
	return d.mod.PeakBandwidth()
}
