package cxl

import (
	"fmt"
	"math"

	"github.com/moatlab/melody/internal/obs"
)

// CPMU models the CXL Performance Monitoring Unit introduced in CXL 3.0
// — the white-box visibility the paper asks for when reasoning about
// tail latencies ("no tools exist to pinpoint tail latencies... this
// would require the CXL MC to expose detailed performance counters,
// potentially through the upcoming CPMU", §3.2). The simulated device
// can attribute every request's latency to pipeline components, so the
// CPMU exposes exactly the breakdown a future real device could:
// link transmission, transaction-layer/scheduler wait (including hiccup
// and thermal stalls), media (DRAM) service, and response return.
type CPMU struct {
	enabled bool

	// Per-component accumulated nanoseconds across requests.
	LinkReqNs   float64 // request flit transmission + propagation
	SchedWaitNs float64 // transaction layer, hiccup, and thermal waits
	MediaNs     float64 // DRAM bank/bus service
	LinkRspNs   float64 // response flit transmission + propagation
	Requests    uint64

	// HiccupStalls/ThermalStalls count requests delayed by each
	// governor.
	HiccupStalls  uint64
	ThermalStalls uint64

	// hist collects end-to-end request latencies for percentile
	// queries. The log-bucketed histogram has bounded memory at any
	// request count, so — unlike the raw sample slice it replaced,
	// which stopped at 262144 samples and skewed percentiles toward
	// warmup-phase requests — it never truncates.
	hist *obs.Histogram
}

// Enable turns the monitoring unit on (off by default: a real CPMU is
// programmed explicitly, and sampling costs memory).
func (c *CPMU) Enable() {
	c.enabled = true
	if c.hist == nil {
		c.hist = obs.NewHistogram()
	}
}

// Enabled reports the monitoring state.
func (c *CPMU) Enabled() bool { return c.enabled }

// LatencyHistogram exposes the full end-to-end latency distribution
// (nil until Enable).
func (c *CPMU) LatencyHistogram() *obs.Histogram { return c.hist }

// reset clears all counters.
func (c *CPMU) reset() {
	on := c.enabled
	*c = CPMU{enabled: on}
	if on {
		c.hist = obs.NewHistogram()
	}
}

// record attributes one request's component times.
func (c *CPMU) record(linkReq, schedWait, media, linkRsp float64, hiccup, thermal bool) {
	if !c.enabled {
		return
	}
	c.LinkReqNs += linkReq
	c.SchedWaitNs += schedWait
	c.MediaNs += media
	c.LinkRspNs += linkRsp
	c.Requests++
	if hiccup {
		c.HiccupStalls++
	}
	if thermal {
		c.ThermalStalls++
	}
	c.hist.Record(linkReq + schedWait + media + linkRsp)
}

// Breakdown returns the average per-request nanoseconds spent in each
// component: link request path, scheduler wait, media, link response.
func (c *CPMU) Breakdown() (linkReq, schedWait, media, linkRsp float64) {
	if c.Requests == 0 {
		return 0, 0, 0, 0
	}
	n := float64(c.Requests)
	return c.LinkReqNs / n, c.SchedWaitNs / n, c.MediaNs / n, c.LinkRspNs / n
}

// Percentile returns the p-th percentile of device-internal request
// latency (excluding CPU-side overheads), NaN before any request is
// recorded. Percentiles come from the log-bucketed histogram, so they
// carry its ~2% bucket-width resolution but reflect the complete run.
func (c *CPMU) Percentile(p float64) float64 {
	if c.hist == nil || c.hist.Count() == 0 {
		return math.NaN()
	}
	return c.hist.Percentile(p)
}

// String renders the white-box summary.
func (c *CPMU) String() string {
	lr, sw, md, lp := c.Breakdown()
	return fmt.Sprintf("CPMU{n=%d linkReq=%.1f sched=%.1f media=%.1f linkRsp=%.1f ns; hiccup=%d thermal=%d; p50=%.0f p99.9=%.0f}",
		c.Requests, lr, sw, md, lp, c.HiccupStalls, c.ThermalStalls,
		c.Percentile(50), c.Percentile(99.9))
}
