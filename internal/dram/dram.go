// Package dram models a DDR memory backend: channels with shared data
// buses, banks with open-row state, refresh blackouts, and bus
// turnaround penalties. It is the common substrate behind the integrated
// memory controller (local/NUMA DRAM) and every CXL device's media
// controller.
//
// The model is time-driven: each Access computes when the request's
// data transfer finishes given the current bank/bus/refresh state, and
// advances that state. Contention between callers therefore emerges
// naturally from shared state rather than from a global event queue.
package dram

import "github.com/moatlab/melody/internal/mem"

// Timing holds the DDR timing parameters the model uses, in nanoseconds.
// These are command-level approximations, not a full JEDEC state machine:
// row hits cost TCAS, closed-row activations TRCD+TCAS, and row conflicts
// TRP+TRCD+TCAS, with TRC bounding per-bank activate throughput.
type Timing struct {
	TCAS  float64 // column access (row already open)
	TRCD  float64 // activate to column
	TRP   float64 // precharge
	TRC   float64 // minimum activate-to-activate on one bank
	TRFC  float64 // refresh cycle (bank group blackout)
	TREFI float64 // average refresh interval
	// Turnaround is the *amortized* data-bus penalty when consecutive
	// transfers on a channel change direction (read<->write).
	// Controllers buffer writes and drain them in batches, so the raw
	// ~6-8 ns bus-turnaround cost is paid once per batch; the values
	// here are per-switch averages assuming ~8-deep write batching.
	// DDR buses are bidirectional-but-half-duplex, so this is what
	// makes mixed read/write traffic lose bandwidth on local DRAM while
	// full-duplex CXL links gain from it (paper Figure 5).
	Turnaround float64
}

// DDR4 returns typical DDR4-2666 timings.
func DDR4() Timing {
	return Timing{
		TCAS:       14.2,
		TRCD:       14.2,
		TRP:        14.2,
		TRC:        45.0,
		TRFC:       130, // per-rank-interleaved refresh: short blackouts
		TREFI:      2900,
		Turnaround: 1.2,
	}
}

// DDR5 returns typical DDR5-4800 timings. DDR5 halves the refresh
// blackout with same-bank refresh and shortens the row cycle slightly.
func DDR5() Timing {
	return Timing{
		TCAS:       13.3,
		TRCD:       13.3,
		TRP:        13.3,
		TRC:        48.0,
		TRFC:       75, // fine-granularity refresh (FGR 4x)
		TREFI:      1950,
		Turnaround: 0.8,
	}
}

// Config describes one DRAM module.
type Config struct {
	Channels        int     // independent channels (own bus + banks)
	BanksPerChannel int     // banks usable in parallel per channel
	ChannelBW       float64 // effective per-channel data bandwidth, GB/s
	RowBytes        uint64  // row-buffer size per bank
	Timing          Timing
}

// DefaultConfig returns a single-channel DDR4 module, the shape of a
// small CXL expander backend.
func DefaultConfig() Config {
	return Config{
		Channels:        1,
		BanksPerChannel: 16,
		ChannelBW:       19.0,
		RowBytes:        8192,
		Timing:          DDR4(),
	}
}

type bank struct {
	freeAt  float64
	openRow int64 // -1 when no row is open
}

type channel struct {
	banks    []bank
	busUntil float64
	lastDir  uint8 // 0 idle, 1 read, 2 write
	// refOffset staggers refresh windows across channels so they do not
	// hit all channels simultaneously.
	refOffset float64
}

// Module is a DRAM device backend. It is not safe for concurrent use;
// the simulator is single-threaded by design.
type Module struct {
	cfg   Config
	chans []channel

	linesPerRow uint64

	// stats
	rowHits, rowMisses uint64
	busyNs             float64
}

// New constructs a Module from cfg. It panics on nonsensical configs to
// surface programming errors early.
func New(cfg Config) *Module {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.ChannelBW <= 0 || cfg.RowBytes < mem.LineSize {
		panic("dram: invalid config")
	}
	m := &Module{cfg: cfg, linesPerRow: cfg.RowBytes / mem.LineSize}
	m.Reset()
	return m
}

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Reset reinitializes all banks, buses, and statistics.
func (m *Module) Reset() {
	m.chans = make([]channel, m.cfg.Channels)
	for i := range m.chans {
		banks := make([]bank, m.cfg.BanksPerChannel)
		for b := range banks {
			banks[b].openRow = -1
		}
		m.chans[i] = channel{
			banks:     banks,
			refOffset: m.cfg.Timing.TREFI * float64(i) / float64(m.cfg.Channels),
		}
	}
	m.rowHits, m.rowMisses, m.busyNs = 0, 0, 0
}

// bankGroupRotate is how many banks a single row group's lines rotate
// across, modelling DDR bank-group column interleaving: a streaming
// access pattern occupies several banks concurrently, so two streams
// that collide on one bank only contend for a fraction of their
// accesses instead of crawling in full-row lockstep.
const bankGroupRotate = 4

// map the address onto (channel, bank, row). Lines interleave across
// channels; within a channel, consecutive lines rotate across
// bankGroupRotate banks chosen by hashing the row group — controllers
// hash bank bits exactly so that power-of-two strides (e.g. per-thread
// buffer bases) do not pile onto one bank.
func (m *Module) locate(addr uint64) (ch, bk int, row int64) {
	line := addr / mem.LineSize
	ch = int(line % uint64(m.cfg.Channels))
	inChan := line / uint64(m.cfg.Channels)
	rowIdx := inChan / m.linesPerRow
	grp := inChan % bankGroupRotate
	h := rowIdx*0x9e3779b97f4a7c15 + grp*0xda942042e4dd58b5
	bk = int((h >> 32) % uint64(m.cfg.BanksPerChannel))
	// The row-group id serves as the open-row tag: an access hits the
	// row buffer iff the bank's open row slice is from the same group.
	row = int64(rowIdx)
	return ch, bk, row
}

// Locate exposes the address mapping for tests and debugging tools.
func (m *Module) Locate(addr uint64) (ch, bk int, row int64) {
	return m.locate(addr)
}

// transferNs is the channel-bus occupancy of one line.
func (m *Module) transferNs() float64 {
	return mem.LineSize / m.cfg.ChannelBW // bytes / (bytes/ns)
}

// refreshClear returns the earliest time >= t at which the channel is
// not in a refresh blackout.
func (c *channel) refreshClear(t float64, tm Timing) float64 {
	if tm.TREFI <= 0 || tm.TRFC <= 0 {
		return t
	}
	shifted := t - c.refOffset
	if shifted < 0 {
		return t
	}
	k := float64(uint64(shifted / tm.TREFI))
	winStart := k*tm.TREFI + c.refOffset
	if t < winStart+tm.TRFC {
		return winStart + tm.TRFC
	}
	return t
}

// Access services one line request and returns (dataStart, done): when
// the data transfer begins and when it completes. Callers that model a
// posted write can use dataStart as the absorption point.
func (m *Module) Access(now float64, addr uint64, isWrite bool) (dataStart, done float64) {
	tm := m.cfg.Timing
	chIdx, bkIdx, row := m.locate(addr)
	c := &m.chans[chIdx]
	b := &c.banks[bkIdx]

	cmdStart := now
	if b.freeAt > cmdStart {
		cmdStart = b.freeAt
	}
	cmdStart = c.refreshClear(cmdStart, tm)

	var rbLatency float64
	switch {
	case b.openRow == row:
		rbLatency = tm.TCAS
		m.rowHits++
	case b.openRow < 0:
		rbLatency = tm.TRCD + tm.TCAS
		m.rowMisses++
	default:
		rbLatency = tm.TRP + tm.TRCD + tm.TCAS
		m.rowMisses++
	}

	dataReady := cmdStart + rbLatency

	dir := uint8(1)
	if isWrite {
		dir = 2
	}
	busAvail := c.busUntil
	if c.lastDir != 0 && c.lastDir != dir {
		busAvail += tm.Turnaround
	}
	dataStart = dataReady
	if busAvail > dataStart {
		dataStart = busAvail
	}
	done = dataStart + m.transferNs()

	c.busUntil = done
	c.lastDir = dir
	if rbLatency == tm.TCAS {
		// Row hit: CAS commands pipeline, so the bank only needs to
		// space column accesses by one burst; the shared bus is the
		// real limiter.
		b.freeAt = cmdStart + m.transferNs()
	} else {
		// Row activation: the bank is reusable after one row cycle.
		// Deliberately independent of `done`: bus queueing must not
		// extend bank occupancy, or banks and bus deadlock into
		// latency-paced throughput under load.
		b.freeAt = cmdStart + tm.TRC
	}
	b.openRow = row
	m.busyNs += rbLatency + m.transferNs()
	return dataStart, done
}

// PeakBandwidth returns the theoretical aggregate data bandwidth in
// GB/s (bytes per ns), ignoring bank and refresh overheads.
func (m *Module) PeakBandwidth() float64 {
	return m.cfg.ChannelBW * float64(m.cfg.Channels)
}

// RowHits and RowMisses expose row-buffer statistics.
func (m *Module) RowHits() uint64   { return m.rowHits }
func (m *Module) RowMisses() uint64 { return m.rowMisses }

// BusyNs returns accumulated service time across banks and buses.
func (m *Module) BusyNs() float64 { return m.busyNs }
