package dram

import (
	"testing"
	"testing/quick"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Timing.TREFI = 0 // disable refresh unless a test wants it
	return cfg
}

func TestIdleRowMissLatency(t *testing.T) {
	m := New(testConfig())
	_, done := m.Access(0, 0, false)
	tm := m.Config().Timing
	want := tm.TRCD + tm.TCAS + mem.LineSize/m.Config().ChannelBW
	if done != want {
		t.Fatalf("idle closed-row latency = %v, want %v", done, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	m := New(testConfig())
	cfg := m.Config()
	_, first := m.Access(0, 0, false)
	// Same row group and bank group: stride channels * bankGroupRotate
	// lines keeps (rowIdx, grp) fixed, so this is a row-buffer hit.
	hitAddr := mem.LineSize * uint64(cfg.Channels) * bankGroupRotate
	if ch0, bk0, r0 := m.Locate(0); func() bool {
		ch1, bk1, r1 := m.Locate(hitAddr)
		return ch0 != ch1 || bk0 != bk1 || r0 != r1
	}() {
		t.Fatal("test addresses do not share (channel, bank, row)")
	}
	start2, done2 := m.Access(first+100, hitAddr, false)
	hitLat := done2 - (first + 100)
	missLat := first
	if hitLat >= missLat {
		t.Fatalf("row hit latency %v not faster than miss %v", hitLat, missLat)
	}
	if start2 < first+100 {
		t.Fatalf("data start %v before request arrival", start2)
	}
	if m.RowHits() != 1 || m.RowMisses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", m.RowHits(), m.RowMisses())
	}
}

// conflictAddr finds an address mapping to the same (channel, bank) as
// base but a different row, by scanning row-group strides.
func conflictAddr(m *Module, base uint64) (uint64, bool) {
	ch0, bk0, r0 := m.Locate(base)
	cfg := m.Config()
	stride := cfg.RowBytes * uint64(cfg.Channels)
	for i := uint64(1); i < 100000; i++ {
		addr := base + i*stride
		ch, bk, r := m.Locate(addr)
		if ch == ch0 && bk == bk0 && r != r0 {
			return addr, true
		}
	}
	return 0, false
}

func TestRowConflictSlowest(t *testing.T) {
	m := New(testConfig())
	addr2, ok := conflictAddr(m, 0)
	if !ok {
		t.Fatal("no conflicting address found")
	}
	_, d1 := m.Access(0, 0, false)
	lat1 := d1
	base := d1 + 1000
	_, d2 := m.Access(base, addr2, false)
	conflictLat := d2 - base
	if conflictLat <= lat1 {
		t.Fatalf("conflict latency %v not slower than cold miss %v", conflictLat, lat1)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	cfg.ChannelBW = 20
	m := New(cfg)
	// Blast sequential reads back-to-back from t=0; completion of the
	// last read bounds achieved bandwidth by the channel bus.
	const n = 20000
	var last float64
	for i := 0; i < n; i++ {
		_, last = m.Access(0, uint64(i)*mem.LineSize, false)
	}
	gbs := float64(n) * mem.LineSize / last
	if gbs > cfg.ChannelBW*1.001 {
		t.Fatalf("achieved %v GB/s exceeds channel bandwidth %v", gbs, cfg.ChannelBW)
	}
	if gbs < cfg.ChannelBW*0.85 {
		t.Fatalf("sequential stream achieved only %v GB/s of %v", gbs, cfg.ChannelBW)
	}
}

func TestChannelsScaleBandwidth(t *testing.T) {
	run := func(channels int) float64 {
		cfg := testConfig()
		cfg.Channels = channels
		m := New(cfg)
		const n = 20000
		var last float64
		for i := 0; i < n; i++ {
			_, last = m.Access(0, uint64(i)*mem.LineSize, false)
		}
		return float64(n) * mem.LineSize / last
	}
	one := run(1)
	four := run(4)
	if four < one*3 {
		t.Fatalf("4 channels gave %v GB/s, 1 channel %v GB/s; want ~4x", four, one)
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Alternating read/write on the same row: each direction switch
	// costs Turnaround on the bus versus a pure read stream.
	var lastAlt float64
	for i := 0; i < 1000; i++ {
		_, lastAlt = m.Access(0, uint64(i%8)*mem.LineSize*uint64(cfg.Channels), i%2 == 1)
	}
	m2 := New(cfg)
	var lastRead float64
	for i := 0; i < 1000; i++ {
		_, lastRead = m2.Access(0, uint64(i%8)*mem.LineSize*uint64(cfg.Channels), false)
	}
	if lastAlt <= lastRead {
		t.Fatalf("alternating R/W (%v) not slower than pure reads (%v)", lastAlt, lastRead)
	}
}

func TestRefreshBlackout(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	cfg.Timing.TREFI = 3900
	cfg.Timing.TRFC = 350
	m := New(cfg)
	// A request landing inside the first refresh window of channel 0
	// (which starts at t=0 by construction) must be pushed past TRFC.
	_, done := m.Access(10, 0, false)
	if done < cfg.Timing.TRFC {
		t.Fatalf("request inside refresh window finished at %v, want >= %v", done, cfg.Timing.TRFC)
	}
	// A request far from any refresh boundary is unaffected. Use an
	// address on a different bank (next row group) to avoid a row
	// conflict with the first access.
	base := cfg.Timing.TRFC + 1000
	_, done2 := m.Access(base, cfg.RowBytes, false)
	lat := done2 - base
	plain := cfg.Timing.TRCD + cfg.Timing.TCAS + mem.LineSize/cfg.ChannelBW
	if lat > plain*1.01 {
		t.Fatalf("request outside refresh delayed: lat=%v want ~%v", lat, plain)
	}
}

func TestCompletionMonotoneUnderLoad(t *testing.T) {
	// Property: for requests issued at non-decreasing times to the same
	// address stream, completions never precede arrivals.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		m := New(testConfig())
		now := 0.0
		for i := 0; i < 500; i++ {
			now += r.Float64() * 5
			addr := r.Uint64n(1 << 30)
			start, done := m.Access(now, addr, r.Bool(0.3))
			if done < now || start < now || done < start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsState(t *testing.T) {
	m := New(testConfig())
	for i := 0; i < 100; i++ {
		m.Access(0, uint64(i)*mem.LineSize, false)
	}
	m.Reset()
	if m.RowHits() != 0 || m.RowMisses() != 0 || m.BusyNs() != 0 {
		t.Fatal("Reset did not clear stats")
	}
	_, done := m.Access(0, 0, false)
	tm := m.Config().Timing
	want := tm.TRCD + tm.TCAS + mem.LineSize/m.Config().ChannelBW
	if done != want {
		t.Fatalf("post-Reset latency = %v, want %v (idle)", done, want)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero channels did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Channels = 0
	New(cfg)
}

func TestPeakBandwidth(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 8
	cfg.ChannelBW = 27.0
	m := New(cfg)
	if got := m.PeakBandwidth(); got != 216.0 {
		t.Fatalf("PeakBandwidth = %v, want 216", got)
	}
}
