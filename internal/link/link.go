// Package link models point-to-point serial interconnects: the UPI hop
// between sockets and the CXL/PCIe Flex Bus link to a memory expander.
//
// A link has two directions. For CXL.mem, the request direction carries
// read commands (header-only flits) and write data, while the response
// direction carries read data and write completions. Full-duplex links
// therefore reach their highest aggregate bandwidth under mixed
// read/write traffic, while a half-duplex link (the FPGA CXL-C device,
// whose IP cannot drive both directions) behaves like a DDR bus — this
// asymmetry is the root of the paper's Figure 5 observations.
//
// The link layer also models CXL's reliability machinery: CRC errors
// trigger link-layer replays, and credit-based flow control can
// back-pressure senders when credit return lags under bursts — the
// paper's explanation for µs-level tails on some devices even at low
// average load (§3.2 "Reasoning").
package link

import (
	"github.com/moatlab/melody/internal/sim"
)

// Direction selects which way a transfer flows.
type Direction uint8

const (
	// Req is requester -> device (read commands, write data).
	Req Direction = iota
	// Rsp is device -> requester (read data, write completions).
	Rsp
)

// Config describes one link.
type Config struct {
	// PropagationNs is the one-way PHY + wire + protocol-stack latency.
	PropagationNs float64
	// ReqBW and RspBW are per-direction payload bandwidths in GB/s.
	ReqBW, RspBW float64
	// HalfDuplex shares one set of lanes between both directions (with
	// ReqBW as the shared capacity), modelling the FPGA device's
	// inability to use both CXL transmission links concurrently. The
	// sharing is proportional: each direction gets a slice of the total
	// bandwidth matching its recent traffic share, minus a reversal
	// penalty that grows as the two directions approach parity — so a
	// half-duplex device peaks under read-only traffic and degrades as
	// writes mix in (paper Figure 5, CXL-C).
	HalfDuplex bool
	// TurnaroundNs is the penalty for reversing a half-duplex link when
	// traffic is serialized (used by DDR-style callers; the
	// proportional-sharing model above covers pipelined traffic).
	TurnaroundNs float64

	// RetryProb is the per-transfer probability of a CRC error forcing
	// a link-layer replay; RetryPenaltyNs is the replay cost.
	RetryProb      float64
	RetryPenaltyNs float64

	// Credits bounds in-flight transfers per direction; 0 disables flow
	// control. CreditReturnNs is the extra delay before a consumed
	// credit is usable again — large values make bursts accumulate
	// back-pressure (transaction-layer congestion).
	Credits        int
	CreditReturnNs float64
}

// Link is a time-driven serial link. Not safe for concurrent use.
type Link struct {
	cfg      Config
	rng      *sim.Rand
	busy     [2]float64 // per-direction busy-until (index by Direction)
	dirBytes [2]float64 // EWMA of per-direction traffic (half-duplex)
	credits  [2][]float64
	seq      [2]uint64
	retries  uint64
}

// New constructs a Link. seed feeds the CRC-error process.
func New(cfg Config, seed uint64) *Link {
	l := &Link{cfg: cfg, rng: sim.NewRand(seed)}
	l.Reset()
	return l
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Reset restores the idle state.
func (l *Link) Reset() {
	l.busy = [2]float64{}
	l.dirBytes = [2]float64{}
	l.seq = [2]uint64{}
	l.retries = 0
	for d := 0; d < 2; d++ {
		if l.cfg.Credits > 0 {
			l.credits[d] = make([]float64, l.cfg.Credits)
		} else {
			l.credits[d] = nil
		}
	}
}

// Retries returns the number of CRC replays performed.
func (l *Link) Retries() uint64 { return l.retries }

// bw returns the payload bandwidth for dir, honouring duplex mode.
func (l *Link) bw(dir Direction) float64 {
	if !l.cfg.HalfDuplex {
		if dir == Rsp {
			return l.cfg.RspBW
		}
		return l.cfg.ReqBW
	}
	// Half-duplex: the directions split the shared capacity in
	// proportion to their recent traffic, with a reversal penalty that
	// peaks when the two directions carry equal traffic.
	total := l.dirBytes[0] + l.dirBytes[1]
	share := 0.5
	if total > 0 {
		share = l.dirBytes[int(dir)] / total
	}
	if share < 0.08 {
		share = 0.08
	}
	minShare := l.dirBytes[0]
	if l.dirBytes[1] < minShare {
		minShare = l.dirBytes[1]
	}
	mix := 0.0
	if total > 0 {
		mix = 2 * minShare / total // 0 = one-directional, 1 = balanced
	}
	eff := 1 - 0.25*mix
	return l.cfg.ReqBW * share * eff
}

// Send transmits `bytes` of payload in direction dir starting no earlier
// than now, and returns the delivery time at the far end.
func (l *Link) Send(now float64, dir Direction, bytes float64) float64 {
	busyIdx := int(dir)

	if l.cfg.HalfDuplex {
		l.dirBytes[0] *= 0.999
		l.dirBytes[1] *= 0.999
		l.dirBytes[busyIdx] += bytes
	}

	start := now
	if l.busy[busyIdx] > start {
		start = l.busy[busyIdx]
	}

	// Credit flow control: the i-th transfer (mod Credits) must wait for
	// the credit consumed Credits transfers ago to be returned.
	if l.cfg.Credits > 0 {
		slot := l.seq[dir] % uint64(l.cfg.Credits)
		if t := l.credits[dir][slot]; t > start {
			start = t
		}
		l.seq[dir]++
		defer func(slot uint64) {
			l.credits[dir][slot] = l.busy[busyIdx] + l.cfg.CreditReturnNs
		}(slot)
	}

	tx := bytes / l.bw(dir)
	if l.cfg.RetryProb > 0 && l.rng.Bool(l.cfg.RetryProb) {
		tx += l.cfg.RetryPenaltyNs
		l.retries++
	}

	end := start + tx
	l.busy[busyIdx] = end
	return end + l.cfg.PropagationNs
}

// BusyUntil reports when the given direction frees up; useful in tests.
func (l *Link) BusyUntil(dir Direction) float64 {
	return l.busy[int(dir)]
}

// CreditsInFlight counts flow-control credits consumed but not yet
// returned in dir at time now — the back-pressure state a CPMU-style
// probe exposes. 0 when flow control is disabled. Pure observation: it
// never mutates link state.
func (l *Link) CreditsInFlight(dir Direction, now float64) int {
	n := 0
	for _, t := range l.credits[int(dir)] {
		if t > now {
			n++
		}
	}
	return n
}
