package link

import (
	"testing"
	"testing/quick"
)

func fullDuplexCfg() Config {
	return Config{
		PropagationNs: 20,
		ReqBW:         32,
		RspBW:         32,
	}
}

func TestIdleDelivery(t *testing.T) {
	l := New(fullDuplexCfg(), 1)
	got := l.Send(100, Rsp, 64)
	want := 100.0 + 64.0/32.0 + 20.0
	if got != want {
		t.Fatalf("Send = %v, want %v", got, want)
	}
}

func TestDirectionsIndependentWhenFullDuplex(t *testing.T) {
	l := New(fullDuplexCfg(), 1)
	// Saturate the request direction.
	for i := 0; i < 100; i++ {
		l.Send(0, Req, 64)
	}
	// Response direction should still deliver at idle latency.
	got := l.Send(0, Rsp, 64)
	want := 64.0/32.0 + 20.0
	if got != want {
		t.Fatalf("Rsp delivery = %v, want %v (uncontended)", got, want)
	}
}

func TestHalfDuplexShares(t *testing.T) {
	cfg := fullDuplexCfg()
	cfg.HalfDuplex = true

	// Read-shaped traffic (small requests, large responses) should keep
	// most of the shared capacity on the response direction.
	throughput := func(reqBytes, rspBytes float64) float64 {
		l := New(cfg, 1)
		var last float64
		const n = 5000
		for i := 0; i < n; i++ {
			l.Send(0, Req, reqBytes)
			last = l.Send(0, Rsp, rspBytes)
		}
		return n * rspBytes / (last - cfg.PropagationNs)
	}
	readOnly := throughput(16, 80) // read command + data response
	balanced := throughput(80, 80) // write data up, read data down
	if readOnly <= balanced {
		t.Fatalf("half-duplex response throughput: read-shaped %v <= balanced %v", readOnly, balanced)
	}
	// Read-shaped responses should get well over half the link.
	if readOnly < cfg.ReqBW*0.6 {
		t.Fatalf("read-shaped response throughput %v too low for %v shared", readOnly, cfg.ReqBW)
	}
}

func TestHalfDuplexAggregateCapped(t *testing.T) {
	cfg := fullDuplexCfg()
	cfg.HalfDuplex = true
	l := New(cfg, 1)
	var lastReq, lastRsp float64
	const n = 5000
	for i := 0; i < n; i++ {
		lastReq = l.Send(0, Req, 64)
		lastRsp = l.Send(0, Rsp, 64)
	}
	end := lastReq
	if lastRsp > end {
		end = lastRsp
	}
	agg := 2 * n * 64 / (end - cfg.PropagationNs)
	if agg > cfg.ReqBW*1.02 {
		t.Fatalf("half-duplex aggregate %v exceeds shared capacity %v", agg, cfg.ReqBW)
	}
}

func TestBandwidthBound(t *testing.T) {
	l := New(fullDuplexCfg(), 1)
	const n = 10000
	var last float64
	for i := 0; i < n; i++ {
		last = l.Send(0, Rsp, 64)
	}
	gbs := float64(n) * 64 / (last - 20) // subtract propagation
	if gbs > 32.01 {
		t.Fatalf("achieved %v GB/s over a 32 GB/s direction", gbs)
	}
	if gbs < 31 {
		t.Fatalf("back-to-back stream achieved only %v GB/s", gbs)
	}
}

func TestCreditBackpressure(t *testing.T) {
	cfg := fullDuplexCfg()
	cfg.Credits = 4
	cfg.CreditReturnNs = 500
	l := New(cfg, 1)
	// First 4 sends ride free credits; the 5th must wait for credit 0.
	var times []float64
	for i := 0; i < 5; i++ {
		times = append(times, l.Send(0, Req, 64))
	}
	if times[3] >= 500 {
		t.Fatalf("4th send already back-pressured: %v", times[3])
	}
	if times[4] < 500 {
		t.Fatalf("5th send not back-pressured: %v (credit return 500)", times[4])
	}
}

func TestRetryCounting(t *testing.T) {
	cfg := fullDuplexCfg()
	cfg.RetryProb = 1.0
	cfg.RetryPenaltyNs = 100
	l := New(cfg, 1)
	got := l.Send(0, Req, 64)
	if l.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", l.Retries())
	}
	want := 64.0/32.0 + 100 + 20
	if got != want {
		t.Fatalf("retried delivery = %v, want %v", got, want)
	}
}

func TestResetRestoresIdle(t *testing.T) {
	cfg := fullDuplexCfg()
	cfg.Credits = 2
	cfg.CreditReturnNs = 1000
	l := New(cfg, 1)
	for i := 0; i < 10; i++ {
		l.Send(0, Req, 64)
	}
	l.Reset()
	got := l.Send(0, Req, 64)
	want := 64.0/32.0 + 20.0
	if got != want {
		t.Fatalf("post-Reset Send = %v, want %v", got, want)
	}
}

func TestDeliveryNeverBeforeArrival(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := fullDuplexCfg()
		cfg.Credits = 8
		cfg.CreditReturnNs = 50
		cfg.RetryProb = 0.05
		cfg.RetryPenaltyNs = 30
		l := New(cfg, seed)
		now := 0.0
		for i := 0; i < 300; i++ {
			dir := Req
			if i%3 == 0 {
				dir = Rsp
			}
			d := l.Send(now, dir, 64)
			if d < now+cfg.PropagationNs {
				return false
			}
			now += 1.5
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
