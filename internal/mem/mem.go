// Package mem defines the vocabulary shared by every memory component in
// the simulator: request kinds, the Device interface that backs a
// cacheline access, and access statistics.
//
// Devices are time-driven rather than event-driven: a caller hands
// Access the current simulated time in nanoseconds and receives the
// completion time back. Device implementations mutate their internal
// state (bank occupancy, link busy windows, queue clocks) as a side
// effect, which is what creates contention between callers that share a
// device.
package mem

import "fmt"

// LineSize is the cacheline size in bytes; all device traffic is in
// units of one line, matching CXL.mem flit payloads.
const LineSize = 64

// Kind classifies a memory request the way the CPU backend does
// (Figure 2c of the paper): demand loads, the two prefetcher classes,
// read-for-ownership, and dirty writebacks.
type Kind uint8

const (
	// DemandRead is a load the core needs for computation.
	DemandRead Kind = iota
	// PrefetchL1 is a read issued by the L1 hardware prefetcher.
	PrefetchL1
	// PrefetchL2 is a read issued by the L2 hardware prefetcher.
	PrefetchL2
	// RFO is the ownership read triggered by a store miss.
	RFO
	// Write is a dirty-line writeback (posted; the CPU does not wait).
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DemandRead:
		return "demand"
	case PrefetchL1:
		return "l1pf"
	case PrefetchL2:
		return "l2pf"
	case RFO:
		return "rfo"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsRead reports whether the request moves data toward the CPU.
// RFO transfers a full line to the core, so it loads the read path.
func (k Kind) IsRead() bool { return k != Write }

// Device is anything that can service a cacheline request: an integrated
// memory controller over local DDR, a remote NUMA node behind a UPI hop,
// or a CXL memory expander.
type Device interface {
	// Access simulates one line-sized request arriving at time now (ns)
	// and returns its completion time (ns). For reads the completion is
	// when data reaches the requester; for writes it is when the device
	// has absorbed the write (back-pressure shows up as a late
	// completion).
	Access(now float64, addr uint64, kind Kind) (done float64)

	// Name identifies the device in reports ("Local", "CXL-A", ...).
	Name() string

	// Reset returns the device to its initial idle state and clears
	// statistics, so one instance can be reused across experiments.
	Reset()

	// Stats returns a snapshot of accumulated counters.
	Stats() DeviceStats
}

// DeviceStats accumulates per-device traffic counters.
type DeviceStats struct {
	Reads     uint64  // demand + prefetch + RFO requests
	Writes    uint64  // writeback requests
	RowHits   uint64  // DRAM row-buffer hits
	RowMisses uint64  // row closed or conflict
	Retries   uint64  // link-layer CRC replays
	Throttled uint64  // requests delayed by the thermal governor
	BusyNs    float64 // total bank service time (for utilization)
	LastDone  float64 // completion time of the most recent request
}

// TotalRequests returns reads + writes.
func (s DeviceStats) TotalRequests() uint64 { return s.Reads + s.Writes }
