package mem

import "testing"

// fakeDevice is a fixed-latency Device for shim tests.
type fakeDevice struct {
	latency float64
	stats   DeviceStats
	resets  int
}

func (d *fakeDevice) Access(now float64, addr uint64, kind Kind) float64 {
	if kind == Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return now + d.latency
}

func (d *fakeDevice) Name() string       { return "fake" }
func (d *fakeDevice) Reset()             { d.resets++; d.stats = DeviceStats{} }
func (d *fakeDevice) Stats() DeviceStats { return d.stats }

// fakeObservable is a fakeDevice that accepts an observer natively.
type fakeObservable struct {
	fakeDevice
	obs Observer
}

func (d *fakeObservable) SetObserver(o Observer) { d.obs = o }

// recorder collects observations.
type recorder struct {
	got []AccessObservation
}

func (r *recorder) ObserveAccess(a AccessObservation) { r.got = append(r.got, a) }

func TestObserveNilObserverReturnsDevice(t *testing.T) {
	d := &fakeDevice{latency: 100}
	if Observe(d, nil) != Device(d) {
		t.Fatal("nil observer must return the device unchanged")
	}
}

func TestObserveObservableAttachesNatively(t *testing.T) {
	d := &fakeObservable{fakeDevice: fakeDevice{latency: 100}}
	r := &recorder{}
	if Observe(d, r) != Device(d) {
		t.Fatal("Observable device must be returned unwrapped")
	}
	if d.obs != Observer(r) {
		t.Fatal("observer was not attached via SetObserver")
	}
}

func TestObservedShimForwardsAndObserves(t *testing.T) {
	d := &fakeDevice{latency: 95}
	r := &recorder{}
	w := Observe(d, r)
	if w == Device(d) {
		t.Fatal("non-Observable device should be wrapped")
	}

	done := w.Access(1000, 0x40, DemandRead)
	if done != 1095 {
		t.Fatalf("wrapped Access returned %v, want 1095 (timing must be unperturbed)", done)
	}
	w.Access(2000, 0x80, Write)

	if len(r.got) != 2 {
		t.Fatalf("observed %d accesses, want 2", len(r.got))
	}
	a := r.got[0]
	if a.Kind != DemandRead || a.Start != 1000 || a.Done != 1095 || a.Latency() != 95 {
		t.Fatalf("observation wrong: %+v", a)
	}
	if a.Attributed {
		t.Fatal("generic shim must not claim component attribution")
	}

	if w.Name() != "fake" {
		t.Fatalf("Name not forwarded: %q", w.Name())
	}
	if s := w.Stats(); s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("Stats not forwarded: %+v", s)
	}
	w.Reset()
	if d.resets != 1 {
		t.Fatal("Reset not forwarded")
	}
}
