package mem

// AccessObservation describes one completed device access for telemetry
// consumers. Observation is strictly read-only: observers see completed
// requests after the device has committed their timing, so attaching
// one never changes simulated results.
type AccessObservation struct {
	Kind  Kind
	Start float64 // request arrival, simulated ns
	Done  float64 // completion, simulated ns

	// Component attribution (the CPMU-style breakdown): valid only when
	// Attributed is set — devices that cannot split their latency leave
	// the components zero and observers fall back to Latency().
	LinkReqNs   float64 // request flit transmission + propagation
	SchedWaitNs float64 // transaction layer, hiccup, and thermal waits
	MediaNs     float64 // DRAM bank/bus service
	LinkRspNs   float64 // response flit transmission + propagation
	Attributed  bool

	// Hiccup/Thermal flag requests delayed by each governor.
	Hiccup  bool
	Thermal bool
}

// Latency returns the end-to-end request latency in simulated ns.
func (a AccessObservation) Latency() float64 { return a.Done - a.Start }

// Observer receives one observation per completed access. Implementations
// used from the experiment engine are called from a single goroutine per
// device instance.
type Observer interface {
	ObserveAccess(AccessObservation)
}

// Observable is implemented by devices that can stream natively
// attributed observations (e.g. the CXL expander, whose controller
// pipeline knows each request's component times). SetObserver(nil)
// detaches; the detached path must cost a nil check and no allocations.
type Observable interface {
	SetObserver(Observer)
}

// Observe attaches o to dev. Devices implementing Observable report with
// full component attribution; any other device is wrapped in a
// transparent timing shim that observes end-to-end latency only. Either
// way the returned device has identical simulated behaviour to dev —
// same completion times, same internal state evolution — because
// observation happens strictly after each access completes.
func Observe(dev Device, o Observer) Device {
	if o == nil {
		return dev
	}
	if ob, ok := dev.(Observable); ok {
		ob.SetObserver(o)
		return dev
	}
	return &observed{dev: dev, obs: o}
}

// observed is the generic timing shim for non-Observable devices.
type observed struct {
	dev Device
	obs Observer
}

func (d *observed) Access(now float64, addr uint64, kind Kind) float64 {
	done := d.dev.Access(now, addr, kind)
	d.obs.ObserveAccess(AccessObservation{Kind: kind, Start: now, Done: done})
	return done
}

func (d *observed) Name() string       { return d.dev.Name() }
func (d *observed) Reset()             { d.dev.Reset() }
func (d *observed) Stats() DeviceStats { return d.dev.Stats() }
