package mlc

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
)

// rampDev's latency grows with instantaneous load (requests in the last
// 100ns window), giving loaded-latency curves something to bend on.
type rampDev struct {
	base        float64
	windowStart float64
	count       float64
	level       float64
}

func (d *rampDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if now-d.windowStart > 100 {
		d.level = d.count / (now - d.windowStart)
		d.windowStart = now
		d.count = 0
	}
	d.count++
	return now + d.base + d.level*400
}
func (d *rampDev) Name() string           { return "ramp" }
func (d *rampDev) Reset()                 { d.windowStart, d.count, d.level = 0, 0, 0 }
func (d *rampDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.DurationNs = 40_000
	return cfg
}

func TestIdleLatencyFixedDevice(t *testing.T) {
	d := &rampDev{base: 150}
	got := IdleLatency(d, testCfg())
	// A single chaser is light load; latency should be near base.
	if got < 150 || got > 170 {
		t.Fatalf("idle latency = %v, want ~150", got)
	}
}

func TestBandwidthPositive(t *testing.T) {
	d := &rampDev{base: 100}
	bw := Bandwidth(d, 1.0, testCfg())
	if bw <= 0 {
		t.Fatalf("bandwidth = %v", bw)
	}
}

func TestLoadedLatencyMonotone(t *testing.T) {
	d := &rampDev{base: 100}
	pts := LoadedLatency(d, 1.0, []float64{5000, 500, 0}, testCfg())
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Decreasing injected delay raises bandwidth and (here) latency.
	if !(pts[0].BandwidthGBs < pts[2].BandwidthGBs) {
		t.Fatalf("bandwidth not increasing with load: %+v", pts)
	}
	if !(pts[0].AvgLatencyNs < pts[2].AvgLatencyNs) {
		t.Fatalf("loaded latency not increasing with load: %+v", pts)
	}
	for _, p := range pts {
		if p.P50Ns > p.P999Ns {
			t.Fatalf("p50 %v > p99.9 %v", p.P50Ns, p.P999Ns)
		}
	}
}

func TestRWRatiosShape(t *testing.T) {
	ratios := RWRatios()
	if len(ratios) != 6 {
		t.Fatalf("got %d ratios, want 6", len(ratios))
	}
	if ratios[0].ReadFrac != 1.0 || ratios[len(ratios)-1].ReadFrac != 0.5 {
		t.Fatalf("ratio endpoints wrong: %+v", ratios)
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i].ReadFrac >= ratios[i-1].ReadFrac {
			t.Fatal("read fractions not strictly decreasing")
		}
	}
}

func TestStandardDelaysDescending(t *testing.T) {
	ds := StandardDelays()
	for i := 1; i < len(ds); i++ {
		if ds[i] >= ds[i-1] {
			t.Fatal("delays not descending")
		}
	}
	if ds[len(ds)-1] != 0 {
		t.Fatal("sweep must end at zero delay (full load)")
	}
}
