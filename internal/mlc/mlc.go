// Package mlc reimplements the Intel Memory Latency Checker methodology
// over simulated devices: idle latency (dependent pointer chase),
// bandwidth matrices (saturating traffic), and loaded-latency curves
// (one latency thread contending with 31 traffic threads that inject
// configurable compute delays) — the tooling behind the paper's Table 1
// and Figures 1, 3a, 3c, and 5.
package mlc

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/traffic"
)

// Config controls a measurement run.
type Config struct {
	WorkingSet uint64  // per-thread working set, bytes
	DurationNs float64 // simulated time per measurement
	Threads    int     // traffic threads (the paper uses 31)
	MLP        int     // outstanding requests per traffic thread
	Seed       uint64
}

// DefaultConfig returns the paper's measurement shape scaled to
// simulation-friendly durations.
func DefaultConfig() Config {
	return Config{
		WorkingSet: 256 << 20,
		DurationNs: 300_000,
		Threads:    31,
		MLP:        32,
		Seed:       1,
	}
}

// IdleLatency measures the average dependent-load latency with no other
// traffic, like "mlc --latency_matrix". The device is Reset first.
func IdleLatency(dev mem.Device, cfg Config) float64 {
	dev.Reset()
	pc := traffic.NewPointerChaser(dev, cfg.WorkingSet, cfg.Seed)
	pc.Record = true
	traffic.Run([]traffic.Thread{pc}, cfg.DurationNs)
	if len(pc.Latencies) == 0 {
		return 0
	}
	return stats.Mean(pc.Latencies)
}

// Bandwidth measures achieved bandwidth (GB/s) with all threads issuing
// traffic at the given read fraction and no injected delay, like
// "mlc --bandwidth_matrix". The device is Reset first.
func Bandwidth(dev mem.Device, readFrac float64, cfg Config) float64 {
	dev.Reset()
	threads := make([]traffic.Thread, cfg.Threads)
	gens := make([]*traffic.LoadGenerator, cfg.Threads)
	for i := range threads {
		g := traffic.NewLoadGenerator(dev, cfg.WorkingSet, readFrac, cfg.Seed+uint64(i)*101)
		g.Base = uint64(i) * cfg.WorkingSet
		g.MLP = cfg.MLP
		g.Sequential = true // MLC streams buffers (row-friendly)
		gens[i] = g
		threads[i] = g
	}
	end := traffic.Run(threads, cfg.DurationNs)
	if end <= 0 {
		return 0
	}
	total := 0.0
	for _, g := range gens {
		total += g.Bytes
	}
	return total / end // bytes per ns == GB/s
}

// LoadedPoint is one point of a loaded-latency curve.
type LoadedPoint struct {
	InjectDelayNs float64
	BandwidthGBs  float64
	AvgLatencyNs  float64
	P50Ns, P999Ns float64
}

// LoadedLatency sweeps the injected traffic-thread delay and, for each
// level, measures the foreground pointer-chase latency distribution and
// the aggregate bandwidth — Figure 3a (readFrac 1.0) and Figure 5
// (various read/write ratios). Delays are in ns; the paper's "0-20K
// cycles" at ~2.1 GHz spans roughly 0-9500 ns.
func LoadedLatency(dev mem.Device, readFrac float64, delaysNs []float64, cfg Config) []LoadedPoint {
	out := make([]LoadedPoint, 0, len(delaysNs))
	for di, delay := range delaysNs {
		dev.Reset()
		pc := traffic.NewPointerChaser(dev, cfg.WorkingSet, cfg.Seed+uint64(di))
		pc.Record = true
		threads := make([]traffic.Thread, 0, cfg.Threads+1)
		threads = append(threads, pc)
		gens := make([]*traffic.LoadGenerator, 0, cfg.Threads)
		for i := 0; i < cfg.Threads; i++ {
			g := traffic.NewLoadGenerator(dev, cfg.WorkingSet, readFrac, cfg.Seed+uint64(di*1000+i)*37)
			g.Base = uint64(i+1) * cfg.WorkingSet
			g.MLP = cfg.MLP
			g.Sequential = true
			g.DelayNs = delay
			gens = append(gens, g)
			threads = append(threads, g)
		}
		end := traffic.Run(threads, cfg.DurationNs)
		if end <= 0 || len(pc.Latencies) == 0 {
			continue
		}
		total := 0.0
		for _, g := range gens {
			total += g.Bytes
		}
		total += float64(pc.Count) * mem.LineSize
		ps := stats.Percentiles(pc.Latencies, 50, 99.9)
		out = append(out, LoadedPoint{
			InjectDelayNs: delay,
			BandwidthGBs:  total / end,
			AvgLatencyNs:  stats.Mean(pc.Latencies),
			P50Ns:         ps[0],
			P999Ns:        ps[1],
		})
	}
	return out
}

// RWRatios returns the paper's Figure 5 read:write mixes as read
// fractions: 1:0, 4:1, 3:1, 2:1, 3:2, 1:1.
func RWRatios() []struct {
	Name     string
	ReadFrac float64
} {
	return []struct {
		Name     string
		ReadFrac float64
	}{
		{"1:0", 1.0},
		{"4:1", 0.8},
		{"3:1", 0.75},
		{"2:1", 2.0 / 3.0},
		{"3:2", 0.6},
		{"1:1", 0.5},
	}
}

// StandardDelays returns the paper's injected-delay sweep (0-20K cycles
// at ~2.1 GHz) as ns values, descending from light to heavy load.
func StandardDelays() []float64 {
	return []float64{9500, 4800, 2400, 1200, 700, 450, 330, 240, 140, 70, 30, 0}
}
