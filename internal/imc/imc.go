// Package imc models the CPU's integrated memory controller in front of
// socket-local DDR. Compared with the third-party CXL controllers in
// package cxl it is deliberately boring: a short fixed pipeline, no
// transaction layer, no batching pathologies, no thermal governor —
// which is exactly why local and NUMA latencies stay stable in the
// paper while CXL devices do not.
package imc

import (
	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/mem"
)

// Config describes an integrated memory controller and its DRAM.
type Config struct {
	Name string
	// PipelineNs is the round-trip controller latency: uncore traversal
	// past the LLC, queue insertion, scheduling, and the return path.
	PipelineNs float64
	DRAM       dram.Config
}

// Controller implements mem.Device for local DRAM.
type Controller struct {
	cfg   Config
	mod   *dram.Module
	stats mem.DeviceStats
}

var _ mem.Device = (*Controller)(nil)

// New constructs a Controller.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg, mod: dram.New(cfg.DRAM)}
}

// Name implements mem.Device.
func (c *Controller) Name() string { return c.cfg.Name }

// Reset implements mem.Device.
func (c *Controller) Reset() {
	c.mod.Reset()
	c.stats = mem.DeviceStats{}
}

// Module exposes the DRAM backend (for calibration tests).
func (c *Controller) Module() *dram.Module { return c.mod }

// Access implements mem.Device.
func (c *Controller) Access(now float64, addr uint64, kind mem.Kind) float64 {
	isWrite := kind == mem.Write
	t := now + c.cfg.PipelineNs/2
	start, done := c.mod.Access(t, addr, isWrite)
	var completion float64
	if isWrite {
		// Posted write: the CPU is done once the controller absorbs it,
		// which we approximate as the scheduled data-transfer start.
		completion = start
		c.stats.Writes++
	} else {
		completion = done + c.cfg.PipelineNs/2
		c.stats.Reads++
	}
	c.stats.RowHits = c.mod.RowHits()
	c.stats.RowMisses = c.mod.RowMisses()
	c.stats.BusyNs = c.mod.BusyNs()
	c.stats.LastDone = completion
	return completion
}

// Stats implements mem.Device.
func (c *Controller) Stats() mem.DeviceStats { return c.stats }

// PeakBandwidth returns the DRAM aggregate bandwidth in GB/s.
func (c *Controller) PeakBandwidth() float64 { return c.mod.PeakBandwidth() }
