package imc

import (
	"testing"

	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/mem"
)

func testController() *Controller {
	cfg := dram.DefaultConfig()
	cfg.Timing.TREFI = 0
	return New(Config{Name: "Local", PipelineNs: 20, DRAM: cfg})
}

func TestReadIncludesPipeline(t *testing.T) {
	c := testController()
	done := c.Access(0, 0, mem.DemandRead)
	tm := c.Module().Config().Timing
	raw := tm.TRCD + tm.TCAS + mem.LineSize/c.Module().Config().ChannelBW
	if want := raw + 20; done != want {
		t.Fatalf("read completion = %v, want %v", done, want)
	}
}

func TestWritePosted(t *testing.T) {
	c := testController()
	read := c.Access(0, 0, mem.DemandRead)
	c.Reset()
	write := c.Access(0, 0, mem.Write)
	if write >= read {
		t.Fatalf("posted write (%v) not earlier than read (%v)", write, read)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := testController()
	for i := 0; i < 10; i++ {
		c.Access(0, uint64(i)*mem.LineSize, mem.DemandRead)
	}
	c.Access(0, 4096, mem.Write)
	s := c.Stats()
	if s.Reads != 10 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.RowHits+s.RowMisses != 11 {
		t.Fatalf("row stats = %d+%d", s.RowHits, s.RowMisses)
	}
	c.Reset()
	if c.Stats().Reads != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestAllReadKindsCountAsReads(t *testing.T) {
	c := testController()
	for _, k := range []mem.Kind{mem.DemandRead, mem.PrefetchL1, mem.PrefetchL2, mem.RFO} {
		c.Access(0, 0, k)
	}
	if got := c.Stats().Reads; got != 4 {
		t.Fatalf("read-kind count = %d, want 4", got)
	}
}

func TestNameAndPeak(t *testing.T) {
	c := testController()
	if c.Name() != "Local" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.PeakBandwidth() != c.Module().PeakBandwidth() {
		t.Fatal("PeakBandwidth mismatch")
	}
}
