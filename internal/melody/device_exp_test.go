package melody

import (
	"fmt"
	"strings"
	"testing"
)

// TestDeviceExperimentsSmoke executes the device-level figure
// reproductions at reduced duration and sanity-checks their structure.
// Accuracy properties are asserted by the platform/cxl calibration
// tests; this guards the experiment plumbing itself.
func TestDeviceExperimentsSmoke(t *testing.T) {
	o := Options{Seed: 1, DurationNs: 30_000}
	cases := []struct {
		id       string
		mustHave []string
	}{
		{"table1", []string{"SPR2S", "CXL-D", "ref"}},
		{"fig1", []string{"Socket-local DRAM", "CXL+Switch", "CXL+multi-hop"}},
		{"fig3b", []string{"Local:", "CXL-C:", "32 thr"}},
		{"fig4", []string{"NUMA:", "7 rw thr"}},
		{"fig6", []string{"CXL-B:", "p99.9"}},
	}
	for _, c := range cases {
		e, ok := ExperimentByID(c.id)
		if !ok {
			t.Fatalf("%s not registered", c.id)
		}
		rep := e.Run(testCtx(o))
		joined := strings.Join(rep.Lines, "\n")
		for _, want := range c.mustHave {
			if !strings.Contains(joined, want) {
				t.Fatalf("%s report missing %q:\n%s", c.id, want, joined)
			}
		}
		if len(rep.Notes) == 0 {
			t.Fatalf("%s has no paper-expectation notes", c.id)
		}
	}
}

// TestFig3cTailGrowsWithLoadOnCXL checks the Figure 3c property at the
// experiment level: CXL-A's p99.9-p50 gap grows with utilization while
// Local's stays flat.
func TestFig3cTailGrowsWithLoadOnCXL(t *testing.T) {
	rep := Fig3c(testCtx(Options{Seed: 1, DurationNs: 60_000}))
	var localGaps, cxlAGaps []float64
	section := ""
	for _, l := range rep.Lines {
		if strings.HasSuffix(l, ":") {
			section = strings.TrimSuffix(l, ":")
			continue
		}
		idx := strings.LastIndex(l, "gap(p99.9-p50)")
		if idx < 0 {
			continue
		}
		var gap float64
		if _, err := fmtSscanField(l[idx:], &gap); err != nil {
			continue
		}
		switch section {
		case "Local":
			localGaps = append(localGaps, gap)
		case "CXL-A":
			cxlAGaps = append(cxlAGaps, gap)
		}
	}
	if len(localGaps) < 3 || len(cxlAGaps) < 3 {
		t.Fatalf("fig3c parse failed: local=%d cxl=%d", len(localGaps), len(cxlAGaps))
	}
	if last := cxlAGaps[len(cxlAGaps)-1]; last < cxlAGaps[0]*1.5 && last < 150 {
		t.Fatalf("CXL-A gap did not grow with load: %v", cxlAGaps)
	}
	if last := localGaps[len(localGaps)-1]; last > 250 {
		t.Fatalf("Local gap exploded under load: %v", localGaps)
	}
}

// fmtSscanField parses "gap(p99.9-p50) NNN ns".
func fmtSscanField(s string, v *float64) (int, error) {
	fields := strings.Fields(s)
	return fmt.Sscanf(fields[1], "%f", v)
}
