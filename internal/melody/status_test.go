package melody

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestRunStatusLifecycle(t *testing.T) {
	s := NewRunStatus(NewTelemetry())
	s.Declare([]string{"fig5", "fig8a"}, []string{"Curves", "CDFs"})

	snap := s.Snapshot()
	if len(snap.Experiments) != 2 || snap.Experiments[0].State != "pending" {
		t.Fatalf("declared snapshot = %+v", snap.Experiments)
	}

	s.BeginExperiment("fig5", "Curves")
	s.CellDone("fig5", 3, 10)
	snap = s.Snapshot()
	if e := snap.Experiments[0]; e.State != "running" || e.Done != 3 || e.Total != 10 {
		t.Fatalf("running snapshot = %+v", e)
	}

	s.EndExperiment("fig5", 2.5)
	s.BeginExperiment("fig8a", "")
	s.EndExperiment("fig8a", 1.0)
	s.Finish(false)
	snap = s.Snapshot()
	if !snap.Done || snap.Interrupted {
		t.Fatalf("finished snapshot flags = done=%v interrupted=%v", snap.Done, snap.Interrupted)
	}
	if e := snap.Experiments[0]; e.State != "done" || e.Done != e.Total || e.WallS != 2.5 {
		t.Fatalf("done snapshot = %+v", e)
	}
	// Order is declaration order, not completion order.
	if snap.Experiments[0].ID != "fig5" || snap.Experiments[1].ID != "fig8a" {
		t.Fatalf("order = %s,%s", snap.Experiments[0].ID, snap.Experiments[1].ID)
	}
}

func TestRunStatusInterrupted(t *testing.T) {
	s := NewRunStatus(nil)
	s.BeginExperiment("fig5", "Curves")
	s.Finish(true)
	snap := s.Snapshot()
	if !snap.Interrupted || !snap.Done {
		t.Fatalf("interrupted run: %+v", snap)
	}
}

func TestRunStatusProgressNeverRegresses(t *testing.T) {
	s := NewRunStatus(nil)
	s.CellDone("fig5", 8, 10)
	// A smaller later report within the same batch must not roll back.
	s.CellDone("fig5", 2, 10)
	if e := s.Snapshot().Experiments[0]; e.Done != 8 {
		t.Fatalf("progress rolled back: %+v", e)
	}
	// A new batch (different total) may reset.
	s.CellDone("fig5", 1, 20)
	if e := s.Snapshot().Experiments[0]; e.Done != 1 || e.Total != 20 {
		t.Fatalf("new batch not adopted: %+v", e)
	}
}

func TestRunStatusNilSafe(t *testing.T) {
	var s *RunStatus
	s.Declare([]string{"x"}, nil)
	s.BeginExperiment("x", "")
	s.CellDone("x", 1, 2)
	s.EndExperiment("x", 1)
	s.Finish(false)
	if snap := s.Snapshot(); snap.Experiments == nil {
		t.Fatal("nil status snapshot has nil experiments")
	}
}

func TestRunStatusSnapshotIsJSON(t *testing.T) {
	tel := NewTelemetry()
	tel.cacheHit.Add(3)
	tel.cacheMiss.Add(1)
	s := NewRunStatus(tel)
	s.BeginExperiment("fig5", "Curves")
	raw, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	cache := got["cache"].(map[string]any)
	if cache["hit_rate"].(float64) != 0.75 {
		t.Fatalf("hit rate = %v", cache["hit_rate"])
	}
}

// TestRunStatusConcurrentReadersAndWriters is race coverage for the
// /progress path: scrapers snapshot while the engine reports progress.
func TestRunStatusConcurrentReadersAndWriters(t *testing.T) {
	s := NewRunStatus(NewTelemetry())
	s.Declare([]string{"fig5"}, []string{"Curves"})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			s.CellDone("fig5", i, 5000)
		}
		s.Finish(false)
	}()
	go func() {
		defer wg.Done()
		prev := -1
		for i := 0; i < 5000; i++ {
			snap := s.Snapshot()
			if len(snap.Experiments) != 1 {
				t.Errorf("snapshot lost experiments: %+v", snap)
				return
			}
			if d := snap.Experiments[0].Done; d < prev {
				t.Errorf("progress went backwards: %d after %d", d, prev)
				return
			} else {
				prev = d
			}
		}
	}()
	wg.Wait()
}

func TestCacheStatsNilTelemetry(t *testing.T) {
	var tel *Telemetry
	if cs := tel.CacheStats(); cs != (CacheStats{}) {
		t.Fatalf("nil telemetry cache stats = %+v", cs)
	}
	if tel.CellsRun() != 0 {
		t.Fatal("nil telemetry cells run != 0")
	}
}
