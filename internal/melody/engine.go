package melody

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"github.com/moatlab/melody/internal/obs/tracespan"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

// Engine executes experiments over a pool of shared, per-platform
// Runners. Sharing the runners across experiments means a figure never
// recomputes a (workload, config) cell another figure already measured
// — in particular the local-DRAM baselines every slowdown needs — and
// the singleflight cache keeps that true when cells are requested
// concurrently.
type Engine struct {
	// Opts scales every experiment the engine runs.
	Opts Options

	// Workers bounds cell-level concurrency (0 = NumCPU).
	Workers int

	// Progress, when set, observes batch execution: it is called as
	// cells of an experiment's declared set complete. Calls are
	// serialized by the engine.
	Progress func(experimentID string, done, total int)

	// Obs, when set, collects run telemetry (metrics registry, trace
	// spans, per-cell timings) across every runner the engine creates.
	// Set it before the first Run; observation never changes results.
	Obs *Telemetry

	mu         sync.Mutex
	runners    map[string]*Runner
	progressMu sync.Mutex
}

// NewEngine returns an engine executing experiments under o.
func NewEngine(o Options) *Engine {
	return &Engine{Opts: o, runners: map[string]*Runner{}}
}

// Run executes one experiment to completion.
func (g *Engine) Run(ctx context.Context, e Experiment) *Report {
	RegisterWorkloads()
	g.Obs.beginExperiment(e.ID)
	sp := g.Obs.experimentSpan(e.ID, e.Title)
	// A request-plane span mirrors the engine-plane one when the caller's
	// ctx is traced (nil no-op otherwise): the experiment becomes a child
	// of Execute's run span and the parent of the Runner's cell spans.
	ctx, tsp := tracespan.Start(ctx, "experiment",
		tracespan.String("experiment", e.ID))
	// The experiment id becomes a pprof label for the scope of this
	// experiment — worker goroutines spawned by runAll inherit it, so a
	// host CPU capture overlapping the run splits by figure
	// (`go tool pprof -tagfocus experiment=fig8f`). One Do per
	// experiment, nothing on the per-cell path: the simulate loop stays
	// allocation-free with profiling off (pinned in tracing_test.go).
	var rep *Report
	pprof.Do(ctx, pprof.Labels("experiment", e.ID), func(ctx context.Context) {
		rep = e.Run(g.context(ctx, e.ID))
	})
	tsp.End()
	sp.End()
	if g.Obs != nil {
		g.Obs.Registry.Counter("engine/experiments_run").Inc()
	}
	return rep
}

// RunByID executes a registered experiment.
func (g *Engine) RunByID(ctx context.Context, id string) (*Report, bool) {
	e, ok := ExperimentByID(id)
	if !ok {
		return nil, false
	}
	return g.Run(ctx, e), true
}

// context builds the per-experiment ExperimentContext.
func (g *Engine) context(ctx context.Context, id string) *ExperimentContext {
	return &ExperimentContext{eng: g, ctx: ctx, id: id, Opts: g.Opts}
}

// runner returns the shared Runner for p, creating it on first use.
func (g *Engine) runner(p platform.Platform) *Runner {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.runners[p.CPU.Name]; ok {
		return r
	}
	r := g.newRunner(p)
	g.runners[p.CPU.Name] = r
	return r
}

// newRunner builds a Runner honouring the engine's options.
func (g *Engine) newRunner(p platform.Platform) *Runner {
	o := g.Opts
	r := NewRunner(p)
	r.Seed = o.seed()
	r.Workers = g.Workers
	r.Obs = g.Obs
	if o.Instructions > 0 {
		r.Instructions = o.Instructions
	}
	if o.Warmup > 0 {
		r.Warmup = o.Warmup
	}
	r.SampleEveryCycles = o.SampleEveryCycles
	return r
}

// report forwards batch progress to the engine's observer.
func (g *Engine) report(id string, done, total int) {
	if g.Progress == nil {
		return
	}
	g.progressMu.Lock()
	g.Progress(id, done, total)
	g.progressMu.Unlock()
}

// RunExperiment executes a registered experiment with a one-shot engine
// — the convenience path for tests, benchmarks and library callers that
// do not need cross-experiment cache sharing.
func RunExperiment(ctx context.Context, id string, o Options, workers int) (*Report, bool) {
	g := NewEngine(o)
	g.Workers = workers
	return g.RunByID(ctx, id)
}

// ExperimentContext is what every experiment receives: the experiment's
// options plus access to the engine's shared runners, batch submission
// with progress reporting, and the run's cancellation context.
type ExperimentContext struct {
	eng  *Engine
	ctx  context.Context
	id   string
	Opts Options
}

// Context returns the run's cancellation context.
func (ec *ExperimentContext) Context() context.Context { return ec.ctx }

// Runner returns the engine-shared Runner for p: results are memoized
// across every experiment the engine runs. Experiments that mutate
// runner knobs (sampling interval, prefetchers) or register impure
// MemConfigs must use IsolatedRunner instead.
func (ec *ExperimentContext) Runner(p platform.Platform) *Runner {
	return ec.eng.runner(p)
}

// IsolatedRunner returns a fresh private Runner for p, configured from
// the experiment's options but sharing no cache with other experiments.
func (ec *ExperimentContext) IsolatedRunner(p platform.Platform) *Runner {
	return ec.eng.newRunner(p)
}

// Declare submits an experiment's full cell set for parallel execution
// on r, reporting progress as cells complete. Results land in r's cache,
// so the experiment's subsequent Run/Slowdown calls are pure lookups;
// declaring up front is what lets a figure's whole grid run wide instead
// of serializing on its reporting order.
func (ec *ExperimentContext) Declare(r *Runner, cells []RunRequest) error {
	total := len(cells)
	var done atomic.Int64
	_, err := r.runAll(ec.ctx, cells, func() {
		ec.eng.report(ec.id, int(done.Add(1)), total)
	})
	return err
}

// Run executes (or fetches) one cell on r under the experiment's
// cancellation context — the context-first form experiments use in
// place of the deprecated Runner.Run. A canceled run yields the zero
// Result; the engine loop discards the interrupted experiment's
// report, so partial figures never escape.
func (ec *ExperimentContext) Run(r *Runner, spec workload.Spec, mc MemConfig) Result {
	res, _ := r.RunCtx(ec.ctx, RunRequest{Spec: spec, Config: mc})
	return res
}

// Slowdown measures one workload's slowdown on target vs the local
// baseline under the experiment's context (context-first form of the
// deprecated Runner.Slowdown).
func (ec *ExperimentContext) Slowdown(r *Runner, spec workload.Spec, target MemConfig) float64 {
	out, err := r.SlowdownCtx(ec.ctx, spec, target)
	if err != nil {
		return 0
	}
	return out
}

// Slowdowns evaluates specs against target on r under the experiment's
// context (context-first form of the deprecated Runner.Slowdowns).
// Experiments Declare their full cell set up front, so these calls are
// normally pure cache lookups; Slowdowns therefore does not re-declare.
func (ec *ExperimentContext) Slowdowns(r *Runner, specs []workload.Spec, target MemConfig) []float64 {
	out, err := r.SlowdownsCtx(ec.ctx, specs, target)
	if err != nil {
		return make([]float64, len(specs))
	}
	return out
}
