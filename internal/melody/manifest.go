package melody

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"

	"github.com/moatlab/melody/internal/obs"
)

// ExperimentTiming is one experiment's wall time in the run manifest.
type ExperimentTiming struct {
	ID    string  `json:"id"`
	WallS float64 `json:"wall_s"`
}

// Manifest is the -metrics output: enough provenance to reproduce the
// run (versions, seed, parallelism), plus where the time went (per
// experiment and per cell) and the full telemetry registry dump. It is
// also the input format of the melodydiff regression gate, which is why
// it lives here rather than in cmd/melody: writer and reader must share
// one schema.
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	Seed      uint64 `json:"seed"`
	Workers   int    `json:"workers"`
	Workloads int    `json:"workloads"`
	// SpecHash is the content address of the RunSpec that produced this
	// run (see internal/melody/spec); runs started from raw Options lack
	// it. It ties a manifest back to the exact submitted spec.
	SpecHash string `json:"spec_hash,omitempty"`
	// Interrupted marks a manifest flushed after SIGINT/SIGTERM: it
	// covers only the cells that completed before cancellation.
	Interrupted bool               `json:"interrupted,omitempty"`
	Experiments []ExperimentTiming `json:"experiments"`
	Cells       []CellTiming       `json:"cells"`
	// Timeseries holds the per-cell sampled streams when -sample-every
	// was set (sorted by workload then config).
	Timeseries []SampledSeries `json:"timeseries"`
	Registry   obs.Snapshot    `json:"registry"`
}

// BuildManifest assembles the manifest from a finished (or
// interrupted) run.
func BuildManifest(seed uint64, workers, workloads int, exps []ExperimentTiming, tel *Telemetry) Manifest {
	m := Manifest{
		Tool:        "melody",
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Workers:     workers,
		Workloads:   workloads,
		Experiments: exps,
		Cells:       tel.Cells(),
		Timeseries:  tel.SampledSeries(),
		Registry:    tel.Registry.Snapshot(),
	}
	if m.Experiments == nil {
		m.Experiments = []ExperimentTiming{}
	}
	if m.Cells == nil {
		m.Cells = []CellTiming{}
	}
	// The telemetry log records cells in completion order, which worker
	// scheduling makes nondeterministic; the manifest sorts them so two
	// runs of one configuration emit identical cell lists (melodydiff
	// and the byte-identity contract both lean on this).
	sort.Slice(m.Cells, func(i, j int) bool {
		a, b := m.Cells[i], m.Cells[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		return a.Seed < b.Seed
	})
	if m.Timeseries == nil {
		m.Timeseries = []SampledSeries{}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
	}
	return m
}

// StripHostTime zeroes every host-wall-clock field: per-cell WallMs,
// per-experiment WallS, and the runner/cell_wall_ms registry histogram.
// What remains is a pure function of (seed, workloads, experiment set)
// — the projection under which two runs of the same configuration are
// byte-identical, which both the serve-isolation tests and melodydiff's
// alignment rely on. Simulated-time metrics (device latency histograms,
// counter streams) are untouched: they are deterministic already.
func (m *Manifest) StripHostTime() {
	for i := range m.Experiments {
		m.Experiments[i].WallS = 0
	}
	for i := range m.Cells {
		m.Cells[i].WallMs = 0
	}
	delete(m.Registry.Histograms, "runner/cell_wall_ms")
}

// Address returns the manifest's content address: "sha256:" plus the
// hex digest of its canonical encoding under the StripHostTime
// projection. Because that projection removes every nondeterministic
// field, two runs of the same spec on one host — via CLI flags or the
// job API — produce manifests with equal addresses; the job store and
// the CI parity gate both key on this.
func (m Manifest) Address() (string, error) {
	// StripHostTime mutates; work on a copy deep enough to cover the
	// fields it touches (timing slices and the histogram map).
	c := m
	c.Experiments = append([]ExperimentTiming(nil), m.Experiments...)
	c.Cells = append([]CellTiming(nil), m.Cells...)
	hists := make(map[string]obs.Summary, len(m.Registry.Histograms))
	for k, v := range m.Registry.Histograms {
		hists[k] = v
	}
	c.Registry.Histograms = hists
	c.StripHostTime()
	raw, err := EncodeManifest(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// WriteManifest writes m as indented JSON.
func WriteManifest(path string, m Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodeManifest renders m exactly as WriteManifest would (for
// byte-identity tests and in-memory diffing).
func EncodeManifest(m Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", " ")
}

// LoadManifest reads a -metrics manifest back.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return Manifest{}, fmt.Errorf("manifest %s: %w", path, err)
	}
	return m, nil
}

// DecodeManifest parses manifest bytes wherever they came from — a
// file, the run ledger, or a /runs/{id}/manifest response.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, err
	}
	if m.Tool != "" && m.Tool != "melody" {
		return Manifest{}, fmt.Errorf("written by %q, not melody", m.Tool)
	}
	return m, nil
}
