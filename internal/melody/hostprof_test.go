package melody

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs/hostprof"
)

// TestExecutePprofLabels pins the label plumbing: while Execute runs,
// the executing goroutines carry spec_hash and experiment pprof labels
// (set via pprof.Do in Execute and Engine.Run and inherited by the
// runner's workers). The goroutine profile records labels without
// needing CPU samples, so the check is deterministic.
func TestExecutePprofLabels(t *testing.T) {
	sp := tracingSpec()
	hash, err := sp.Normalized().Hash()
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hooks := ExecHooks{
		// Progress fires from inside the experiment's labeled scope; hold
		// the run there while the main goroutine snapshots.
		Progress: func(string, int, int) {
			once.Do(func() { close(started) })
			<-release
		},
	}

	done := make(chan error, 1)
	go func() {
		_, err := Execute(context.Background(), sp, hooks)
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("run never reached a progress callback")
	}

	p := hostprof.New(hostprof.Config{Types: []string{hostprof.TypeGoroutine}, Watchdog: hostprof.WatchdogConfig{Disabled: true}})
	pr := captureGoroutineProfile(t, p)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if !hasLabel(pr, "spec_hash", hash) {
		t.Fatalf("no goroutine carried spec_hash=%s; values: %v", hash, pr.LabelValues("spec_hash"))
	}
	if !hasLabel(pr, "experiment", "fig8f") {
		t.Fatalf("no goroutine carried experiment=fig8f; values: %v", pr.LabelValues("experiment"))
	}
}

func captureGoroutineProfile(t *testing.T, p *hostprof.Profiler) *hostprof.Parsed {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)
	deadline := time.After(10 * time.Second)
	for p.Store().Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("profiler captured nothing")
		case <-time.After(5 * time.Millisecond):
		}
	}
	caps := p.Store().List(hostprof.Filter{Type: hostprof.TypeGoroutine})
	full, ok := p.Store().Get(caps[0].ID)
	if !ok {
		t.Fatal("capture vanished")
	}
	pr, err := hostprof.Parse(full.Bytes)
	if err != nil {
		t.Fatalf("parse goroutine capture: %v", err)
	}
	return pr
}

func hasLabel(p *hostprof.Parsed, key, want string) bool {
	for _, v := range p.LabelValues(key) {
		if v == want {
			return true
		}
	}
	return false
}

// TestManifestParityProfilingOnOff pins the acceptance criterion: the
// same spec run with the continuous profiler actively capturing yields
// a manifest byte-identical (under StripHostTime) to a run with no
// profiler at all. Host profiling is observation of the process, never
// of the simulation.
func TestManifestParityProfilingOnOff(t *testing.T) {
	sp := tracingSpec()
	run := func() []byte {
		tel := NewTelemetry()
		out, err := Execute(context.Background(), sp, ExecHooks{Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		m := *out.Manifest
		m.StripHostTime()
		raw, err := EncodeManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	plain := run()

	// Profiler on: tight cadence so rounds (CPU windows, heap snapshots,
	// mutex/block rate flips) actually overlap the execution.
	p := hostprof.New(hostprof.Config{
		Interval:    50 * time.Millisecond,
		CPUDuration: 20 * time.Millisecond,
		Watchdog:    hostprof.WatchdogConfig{Disabled: true},
	})
	ctx, cancel := context.WithCancel(context.Background())
	profDone := make(chan struct{})
	go func() { p.Run(ctx); close(profDone) }()
	profiled := run()
	cancel()
	<-profDone

	if p.Store().Len() == 0 {
		t.Fatal("profiler captured nothing — parity check proved nothing")
	}
	if !bytes.Equal(plain, profiled) {
		i := 0
		for i < len(plain) && i < len(profiled) && plain[i] == profiled[i] {
			i++
		}
		t.Fatalf("manifests differ at byte %d with profiling on vs off", i)
	}
	if bytes.Contains(profiled, []byte("hostprof")) {
		t.Fatal("manifest leaked profiler state")
	}
}
