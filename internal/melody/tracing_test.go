package melody

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/tracespan"
	"github.com/moatlab/melody/internal/workload"
)

// tracingSpec is a cheap but real run: one experiment, a few cells.
func tracingSpec() spec.RunSpec {
	return spec.RunSpec{
		Version:      spec.Version,
		Experiments:  []string{"fig8f"},
		Workloads:    5,
		Instructions: 120_000,
		Warmup:       30_000,
		Seed:         1,
		Workers:      2,
	}
}

// TestExecuteSpanTree drives the real execution path under a traced
// context and asserts the acceptance-criteria chain: the caller's span
// (the job worker's "exec" in production) parents a run span, which
// parents an experiment span, whose leaves are cell spans.
func TestExecuteSpanTree(t *testing.T) {
	store := tracespan.NewStore(0, 0)
	tr := tracespan.NewTracer(store)
	ctx, execSpan := tr.StartRoot(context.Background(), "exec", tracespan.SpanContext{})

	sp := tracingSpec()
	out, err := Execute(ctx, sp, ExecHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Interrupted {
		t.Fatal("run interrupted")
	}
	execSpan.End()

	sum, spans, ok := store.Get(execSpan.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	roots := tracespan.BuildTree(spans)
	if len(roots) != 1 || roots[0].Name != "exec" {
		t.Fatalf("tree roots = %d (%q), want single exec root", len(roots), sum.Root)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "run" {
		t.Fatalf("exec children = %+v, want one run span", roots[0].Children)
	}
	run := roots[0].Children[0]
	hash, _ := sp.Normalized().Hash()
	if got := run.Attr("spec_hash"); got != hash {
		t.Fatalf("run span spec_hash = %q, want %q", got, hash)
	}
	if len(run.Children) != 1 || run.Children[0].Name != "experiment" {
		t.Fatalf("run children = %+v, want one experiment span", run.Children)
	}
	exp := run.Children[0]
	if got := exp.Attr("experiment"); got != "fig8f" {
		t.Fatalf("experiment span id attr = %q", got)
	}
	if len(exp.Children) == 0 {
		t.Fatal("experiment span has no cell children")
	}
	for _, cell := range exp.Children {
		if cell.Name != "cell" {
			t.Fatalf("experiment child = %q, want cell", cell.Name)
		}
		if len(cell.Children) != 0 {
			t.Fatal("cell spans must be leaves")
		}
		if cell.Attr("workload") == "" || cell.Attr("config") == "" || cell.Attr("outcome") == "" {
			t.Fatalf("cell span missing attrs: %+v", cell.Attrs)
		}
	}
	// The trace summary's spec hash joins /traces to the manifest store.
	if sum.SpecHash != hash {
		t.Fatalf("trace summary spec_hash = %q, want %q", sum.SpecHash, hash)
	}
}

// TestManifestParityTracingOnOff pins the observation-only contract:
// the same spec run with and without a traced context yields
// byte-identical manifests under StripHostTime.
func TestManifestParityTracingOnOff(t *testing.T) {
	sp := tracingSpec()
	run := func(ctx context.Context) []byte {
		tel := NewTelemetry()
		out, err := Execute(ctx, sp, ExecHooks{Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		m := *out.Manifest
		m.StripHostTime()
		raw, err := EncodeManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	plain := run(context.Background())

	tr := tracespan.NewTracer(tracespan.NewStore(0, 0))
	ctx, span := tr.StartRoot(context.Background(), "exec", tracespan.SpanContext{})
	traced := run(ctx)
	span.End()

	if !bytes.Equal(plain, traced) {
		i := 0
		for i < len(plain) && i < len(traced) && plain[i] == traced[i] {
			i++
		}
		t.Fatalf("manifests differ at byte %d with tracing on vs off", i)
	}
	// Sanity: the traced run actually recorded spans.
	if tr.Store().Stats().Added == 0 {
		t.Fatal("traced run recorded no spans — parity check proved nothing")
	}
	// And neither manifest mentions tracing at all.
	var m map[string]any
	if err := json.Unmarshal(plain, &m); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("trace_id")) {
		t.Fatal("manifest leaked trace ids")
	}
}

// TestNoTracerCellPathZeroAlloc pins the disabled path's cost at zero
// allocations: the per-cell instrumentation sequence (span lookup plus
// post-completion reporting) with no span in ctx.
func TestNoTracerCellPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	req := RunRequest{Spec: workload.Spec{Name: "w0"}, Config: MemConfig{Name: "Local"}}
	allocs := testing.AllocsPerRun(1000, func() {
		parent := tracespan.SpanFrom(ctx)
		var t0 time.Time
		if parent != nil {
			t0 = time.Now()
		}
		cellChild(parent, 0, req, t0, cacheHit)
	})
	if allocs != 0 {
		t.Fatalf("untraced cell path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkUntracedCellOverhead is the benchmark guard behind the
// acceptance criterion; run with -benchmem to see 0 B/op, 0 allocs/op.
func BenchmarkUntracedCellOverhead(b *testing.B) {
	ctx := context.Background()
	req := RunRequest{Spec: workload.Spec{Name: "w0"}, Config: MemConfig{Name: "Local"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parent := tracespan.SpanFrom(ctx)
		var t0 time.Time
		if parent != nil {
			t0 = time.Now()
		}
		cellChild(parent, 0, req, t0, cacheHit)
	}
}
