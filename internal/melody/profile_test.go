package melody

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/workload"
)

// profileCells runs a small sampled grid and returns the telemetry.
func profileCells(t *testing.T, workers int) *Telemetry {
	t.Helper()
	RegisterWorkloads()
	p := platform.SKX2S()
	specs := samplingSpecs(t, "605.mcf_s", "micro-chase-256m")
	tel := NewTelemetry()
	r := fastRunner(p)
	r.Workers = workers
	r.Obs = tel
	r.SampleEveryCycles = 20_000
	if _, err := r.RunAll(context.Background(), Cells(specs, Local(p), CXL(p, cxl.ProfileB()))); err != nil {
		t.Fatal(err)
	}
	return tel
}

// TestProfileReconcilesWithCounters pins the acceptance criterion:
// total sim_cycles across a cell's profile samples equals the cell's
// cumulative cycle counter at the last sample — i.e. the Spa counter
// totals within one sampling interval of the run's end — and sim_ns
// likewise reconciles with the sampled simulated time.
func TestProfileReconcilesWithCounters(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	spec, ok := workload.ByName("micro-chase-256m")
	if !ok {
		t.Fatal("micro-chase-256m not in catalog")
	}
	r := fastRunner(p)
	r.SampleEveryCycles = 20_000
	res := r.Run(spec, CXL(p, cxl.ProfileB()))
	if len(res.Sampled) == 0 {
		t.Fatal("no sampled stream")
	}

	b := NewProfileBuilder()
	AddCellProfile(b, res.Workload, p.CPU.Name, res.Config, res.Sampled)

	last := res.Sampled[len(res.Sampled)-1]
	wantCycles := last.Counters[counters.Cycles]
	if got := b.Total(0); math.Abs(got-wantCycles) > 1e-6*wantCycles {
		t.Fatalf("profile sim_cycles total %v, want %v (last-sample cycle counter)", got, wantCycles)
	}
	if got := b.Total(1); math.Abs(got-last.TimeNs) > 1e-6*last.TimeNs {
		t.Fatalf("profile sim_ns total %v, want %v (last-sample sim time)", got, last.TimeNs)
	}
	// The profiled span covers warmup plus most of the measurement
	// window, so it must dominate the measurement delta alone.
	if b.Total(0) < res.Delta[counters.Cycles] {
		t.Fatalf("profile total %v below measurement-window cycles %v", b.Total(0), res.Delta[counters.Cycles])
	}
}

// TestProfileHasDeviceFrames: a CXL cell's DRAM-bound stall cycles
// must refine into the expander's component frames, and the stacks
// must follow the workload → platform → source → level → component
// hierarchy with the config attached as a pprof label.
func TestProfileHasDeviceFrames(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	spec, ok := workload.ByName("micro-chase-256m")
	if !ok {
		t.Fatal("micro-chase-256m not in catalog")
	}
	r := fastRunner(p)
	r.SampleEveryCycles = 20_000
	res := r.Run(spec, CXL(p, cxl.ProfileB()))

	prof := BuildProfile([]SampledSeries{{
		Workload: res.Workload, Config: res.Config, Platform: p.CPU.Name,
		Samples: res.Sampled,
	}})
	if len(prof.Samples) == 0 {
		t.Fatal("profile has no samples")
	}

	devNames := map[string]bool{}
	for _, n := range spa.DeviceComponentNames() {
		devNames[n] = true
	}
	var deviceLeaves int
	for _, s := range prof.Samples {
		if s.Stack[0] != res.Workload || s.Stack[1] != p.CPU.Name {
			t.Fatalf("stack roots = %v, want workload then platform", s.Stack[:2])
		}
		if len(s.Labels) != 1 || s.Labels[0].Key != "config" || s.Labels[0].Str != res.Config {
			t.Fatalf("labels = %v, want config=%s", s.Labels, res.Config)
		}
		leaf := s.Stack[len(s.Stack)-1]
		if devNames[leaf] {
			deviceLeaves++
			if len(s.Stack) != 5 {
				t.Fatalf("device leaf %q at depth %d, want 5-frame stack %v", leaf, len(s.Stack), s.Stack)
			}
			if s.Stack[3] != spa.ComponentLabel("DRAM") {
				t.Fatalf("device leaf under %q, want DRAM level", s.Stack[3])
			}
		}
	}
	if deviceLeaves == 0 {
		t.Fatal("pointer-chase on CXL produced no device-component frames")
	}
}

// TestProfileByteIdenticalAcrossWorkers pins the determinism
// acceptance criterion: the emitted profile bytes are identical for
// -j1 and -jN runs of the same seed.
func TestProfileByteIdenticalAcrossWorkers(t *testing.T) {
	encode := func(workers int) []byte {
		tel := profileCells(t, workers)
		var buf bytes.Buffer
		if err := BuildProfile(tel.SampledSeries()).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := encode(1), encode(6)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("profile bytes differ across -j widths (%d vs %d bytes)", len(serial), len(parallel))
	}
}

// TestProfilesByExperiment: engine-run cells are stamped with the
// experiment that computed them and group into per-experiment
// profiles; cache-shared cells attribute to the first experiment.
func TestProfilesByExperiment(t *testing.T) {
	tel := NewTelemetry()
	g := NewEngine(Options{MaxWorkloads: 4, Instructions: 200_000, Warmup: 50_000,
		SampleEveryCycles: 50_000, Seed: 1})
	g.Obs = tel
	if _, ok := g.RunByID(context.Background(), "fig8f"); !ok {
		t.Fatal("fig8f not registered")
	}
	series := tel.SampledSeries()
	if len(series) == 0 {
		t.Fatal("engine run collected no sampled series")
	}
	for _, s := range series {
		if s.Experiment != "fig8f" {
			t.Fatalf("series %s@%s stamped %q, want fig8f", s.Workload, s.Config, s.Experiment)
		}
		if s.Platform == "" {
			t.Fatalf("series %s@%s has no platform", s.Workload, s.Config)
		}
	}
	profs := ProfilesByExperiment(series)
	if len(profs) != 1 || profs["fig8f"] == nil {
		t.Fatalf("profiles grouped as %v, want one fig8f entry", profs)
	}
	if len(profs["fig8f"].Samples) == 0 {
		t.Fatal("fig8f profile is empty")
	}
	var found bool
	for _, c := range profs["fig8f"].Comments {
		if strings.Contains(c, "sampled cells") {
			found = true
		}
	}
	if !found {
		t.Fatal("profile missing provenance comment")
	}
}
