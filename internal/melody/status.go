package melody

import (
	"sync"
	"sync/atomic"

	"github.com/moatlab/melody/internal/obs"
)

// RunStatus is the live view of an in-flight run that the observatory's
// /progress endpoint serves. Writers — the engine's progress callback
// and cmd/melody's experiment loop — rebuild an immutable experiment
// list under a mutex and publish it through an atomic pointer; readers
// load the pointer and never take the write lock, so a scraper polling
// /progress cannot delay a cell completion. Cache statistics and wall
// summaries are filled at read time from the Telemetry's atomics.
//
// Like Telemetry, RunStatus observes and never steers: it has no
// channel back into the engine, and a nil *RunStatus is a no-op on
// every method.
type RunStatus struct {
	tel *Telemetry

	mu    sync.Mutex
	order []string
	exps  map[string]*ExperimentProgress

	view atomic.Pointer[progressView]
}

// progressView is the immutable write-side snapshot.
type progressView struct {
	experiments []ExperimentProgress
	interrupted bool
	done        bool
}

// ExperimentProgress is one experiment's place in the run plan.
type ExperimentProgress struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// State is "pending", "running" or "done".
	State string  `json:"state"`
	Done  int     `json:"done"`
	Total int     `json:"total"`
	WallS float64 `json:"wall_s,omitempty"`
}

// ProgressSnapshot is the /progress JSON payload.
type ProgressSnapshot struct {
	Interrupted bool                 `json:"interrupted"`
	Done        bool                 `json:"done"`
	Experiments []ExperimentProgress `json:"experiments"`
	CellsRun    uint64               `json:"cells_run"`
	Cache       CacheStats           `json:"cache"`
	// CellWallMs digests host wall time per computed cell.
	CellWallMs obs.Summary `json:"cell_wall_ms"`
}

// NewRunStatus returns a status board reading live counters from tel
// (which may be nil).
func NewRunStatus(tel *Telemetry) *RunStatus {
	s := &RunStatus{tel: tel, exps: map[string]*ExperimentProgress{}}
	s.view.Store(&progressView{})
	return s
}

// Declare records the run plan up front so /progress can show pending
// experiments before they start.
func (s *RunStatus) Declare(ids, titles []string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		if _, ok := s.exps[id]; ok {
			continue
		}
		ep := &ExperimentProgress{ID: id, State: "pending"}
		if i < len(titles) {
			ep.Title = titles[i]
		}
		s.exps[id] = ep
		s.order = append(s.order, id)
	}
	s.publishLocked()
}

// BeginExperiment marks id running.
func (s *RunStatus) BeginExperiment(id, title string) {
	s.update(id, func(ep *ExperimentProgress) {
		ep.State = "running"
		if title != "" {
			ep.Title = title
		}
	})
}

// CellDone records batch progress within id (engine Progress shape).
func (s *RunStatus) CellDone(id string, done, total int) {
	s.update(id, func(ep *ExperimentProgress) {
		ep.State = "running"
		// Experiments submit several batches; keep the running maximum
		// per batch so a later, smaller batch never rolls progress back.
		if done >= ep.Done || total != ep.Total {
			ep.Done, ep.Total = done, total
		}
	})
}

// EndExperiment marks id done with its wall time.
func (s *RunStatus) EndExperiment(id string, wallS float64) {
	s.update(id, func(ep *ExperimentProgress) {
		ep.State = "done"
		ep.WallS = wallS
		if ep.Total > 0 {
			ep.Done = ep.Total
		}
	})
}

// Finish marks the whole run complete (or interrupted).
func (s *RunStatus) Finish(interrupted bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := *s.view.Load()
	v.done, v.interrupted = true, interrupted
	v.experiments = s.renderLocked()
	s.view.Store(&v)
}

// update applies fn to id's entry (creating it on first sight) and
// republishes the view.
func (s *RunStatus) update(id string, fn func(*ExperimentProgress)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.exps[id]
	if !ok {
		ep = &ExperimentProgress{ID: id, State: "pending"}
		s.exps[id] = ep
		s.order = append(s.order, id)
	}
	fn(ep)
	s.publishLocked()
}

// renderLocked copies the experiment list in declaration order.
func (s *RunStatus) renderLocked() []ExperimentProgress {
	out := make([]ExperimentProgress, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.exps[id])
	}
	return out
}

// publishLocked swaps in a fresh immutable view.
func (s *RunStatus) publishLocked() {
	old := s.view.Load()
	s.view.Store(&progressView{
		experiments: s.renderLocked(),
		interrupted: old.interrupted,
		done:        old.done,
	})
}

// Snapshot assembles the /progress payload: the atomically published
// experiment view plus live counter reads. Safe to call from any
// goroutine at any rate.
func (s *RunStatus) Snapshot() ProgressSnapshot {
	if s == nil {
		return ProgressSnapshot{Experiments: []ExperimentProgress{}}
	}
	v := s.view.Load()
	snap := ProgressSnapshot{
		Interrupted: v.interrupted,
		Done:        v.done,
		Experiments: v.experiments,
		CellsRun:    s.tel.CellsRun(),
		Cache:       s.tel.CacheStats(),
		CellWallMs:  s.tel.CellWallSummary(),
	}
	if snap.Experiments == nil {
		snap.Experiments = []ExperimentProgress{}
	}
	return snap
}
