package spec

import (
	"reflect"
	"testing"
)

// FuzzDecode asserts the decode/encode contract on arbitrary input:
// Decode never panics, and anything it accepts must survive a full
// Encode → Decode round trip unchanged (decode(encode(s)) == s) with a
// stable content address.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		`{"version":1,"experiments":["fig8f"],"workloads":8,"instructions":200000,"warmup":50000,"duration_ns":0,"sample_every":0,"seed":1,"workers":4,"output":{"reports":false}}`,
		`{"experiments":["table1","fig5"]}`,
		`{"version":2,"experiments":["fig5"]}`,
		`{"experiments":["fig5"],"output":{"reports":true}}`,
		`{"experiments":[]}`,
		`not json`,
		`{"experiments":["fig5"],"unknown":"field"}`,
		`{"experiments":["fig5"],"seed":18446744073709551615}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected input is fine; not panicking is the contract
		}
		raw, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted spec %+v fails to encode: %v", s, err)
		}
		s2, err := Decode(raw)
		if err != nil {
			t.Fatalf("canonical encoding of %+v fails to decode: %v", s, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip drift:\n first: %+v\nsecond: %+v", s, s2)
		}
		h1, err1 := s.Hash()
		h2, err2 := s2.Hash()
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("hash instability: %q (%v) vs %q (%v)", h1, err1, h2, err2)
		}
	})
}
