// Package spec defines the versioned RunSpec: the single, canonical
// description of "one melody run" shared by every client of the
// execution engine. The CLI parses its flags into a RunSpec, the job
// API decodes one from a POST body, the content-addressed run store
// keys stored manifests by its hash, and the manifest records the hash
// for provenance — so "the same experiment" means exactly one thing
// across all four layers.
//
// Canonical form: Encode normalizes the spec (defaults filled in) and
// marshals it with every field present in a fixed order, so two specs
// that describe the same run — e.g. seed 0 and the default seed 1 —
// encode to identical bytes and hash to the same content address.
// Decode is strict: unknown fields and unsupported versions are
// rejected with a clear error rather than silently dropped, because a
// silently narrowed spec would be cached under the wrong identity.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// Version is the RunSpec schema version this build speaks. Breaking
// schema changes bump it; Decode rejects every other version.
const Version = 1

// DefaultSeed is the seed a zero-valued spec normalizes to, matching
// the engine's Options.seed() behaviour.
const DefaultSeed = 1

// Output selects what a run delivers beyond the manifest.
type Output struct {
	// Reports includes the rendered per-experiment text reports in the
	// job result (the CLI always prints them; API clients opt in).
	Reports bool `json:"reports"`
}

// RunSpec is one experiment run: which experiments to execute and
// every knob that changes their results or artifacts. Fields mirror
// melody.Options plus the execution-level settings (workers, output).
//
// Identity note: Workers is part of the spec — and therefore of the
// content address — because the manifest records it, even though
// results are bit-identical across worker counts.
type RunSpec struct {
	Version     int      `json:"version"`
	Experiments []string `json:"experiments"`
	// Workloads caps the catalog subset (0 = all 265).
	Workloads int `json:"workloads"`
	// Instructions/Warmup override the runner budgets (0 = default).
	Instructions uint64 `json:"instructions"`
	Warmup       uint64 `json:"warmup"`
	// DurationNs scales device-level measurements (0 = default).
	DurationNs float64 `json:"duration_ns"`
	// SampleEveryCycles enables cycle-driven sampling (0 = off).
	SampleEveryCycles uint64 `json:"sample_every"`
	// Seed is the base simulation seed (0 normalizes to DefaultSeed).
	Seed uint64 `json:"seed"`
	// Workers bounds cell-level concurrency (0 = NumCPU).
	Workers int    `json:"workers"`
	Output  Output `json:"output"`
}

// Normalized returns the spec with defaults made explicit: a zero
// Version becomes the current Version and a zero Seed becomes
// DefaultSeed. Experiment order is preserved — it is semantic (reports
// render and experiments execute in spec order).
func (s RunSpec) Normalized() RunSpec {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	return s
}

// VersionError reports a spec whose version this build does not speak.
type VersionError struct {
	Got int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("spec: unsupported RunSpec version %d (this melody speaks version %d)", e.Got, Version)
}

// Validate checks structural validity. It does not check that the
// experiment ids exist — that is the executor's knowledge (see
// melody.VetSpec); keeping id resolution out of this package lets the
// job queue validate admission without importing the engine.
func (s RunSpec) Validate() error {
	if s.Version != Version {
		return &VersionError{Got: s.Version}
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("spec: no experiments given")
	}
	seen := make(map[string]bool, len(s.Experiments))
	for _, id := range s.Experiments {
		if id == "" {
			return fmt.Errorf("spec: empty experiment id")
		}
		if seen[id] {
			return fmt.Errorf("spec: duplicate experiment %q", id)
		}
		seen[id] = true
	}
	if s.Workloads < 0 {
		return fmt.Errorf("spec: negative workloads %d", s.Workloads)
	}
	if s.Workers < 0 {
		return fmt.Errorf("spec: negative workers %d", s.Workers)
	}
	if s.DurationNs < 0 || math.IsNaN(s.DurationNs) || math.IsInf(s.DurationNs, 0) {
		return fmt.Errorf("spec: invalid duration_ns %v", s.DurationNs)
	}
	return nil
}

// Encode renders the canonical JSON form: normalized, validated, every
// field present, fixed field order. Equal runs encode to equal bytes.
func Encode(s RunSpec) ([]byte, error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Decode parses a spec strictly: the version must be one this build
// speaks (an absent or zero version means "current"), and unknown
// fields are an error — a spec this build cannot fully honour must not
// be half-executed and cached under a narrowed identity. The returned
// spec is normalized and validated.
func Decode(data []byte) (RunSpec, error) {
	// Read the version loosely first so a future-versioned spec fails
	// with "unsupported version", not "unknown field".
	var v struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return RunSpec{}, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	if v.Version != 0 && v.Version != Version {
		return RunSpec{}, &VersionError{Got: v.Version}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("spec: %w", err)
	}
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}

// Hash returns the spec's content address: "sha256:" plus the hex
// digest of the canonical encoding. Two invocations describing the
// same run — CLI flags or API body — hash identically, which is what
// lets the run store answer a resubmitted spec from cache.
func (s RunSpec) Hash() (string, error) {
	raw, err := Encode(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
