package spec

import (
	"reflect"
	"strings"
	"testing"
)

func valid() RunSpec {
	return RunSpec{
		Version:           Version,
		Experiments:       []string{"fig8f", "fig5"},
		Workloads:         8,
		Instructions:      200_000,
		Warmup:            50_000,
		SampleEveryCycles: 20_000,
		Seed:              3,
		Workers:           4,
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []RunSpec{
		valid(),
		{Experiments: []string{"table1"}}, // zero version+seed normalize
		{Version: 1, Experiments: []string{"fig5"}, Seed: 99}, // explicit seed
		{Experiments: []string{"fig5"}, Output: Output{Reports: true}},
		{Experiments: []string{"fig5"}, DurationNs: 400_000, Workloads: 265},
	}
	for _, s := range cases {
		raw, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", s, err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", s, err)
		}
		if want := s.Normalized(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := RunSpec{Experiments: []string{"fig5"}}.Normalized()
	if n.Version != Version || n.Seed != DefaultSeed {
		t.Fatalf("normalized = %+v", n)
	}
}

// TestHashIdentity: specs describing the same run hash identically;
// specs differing in any result-affecting knob do not.
func TestHashIdentity(t *testing.T) {
	base := valid()
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("hash shape: %q", h1)
	}

	// Default-vs-explicit must collapse to one identity.
	implicit := base
	implicit.Seed = 0
	explicit := base
	explicit.Seed = DefaultSeed
	hi, _ := implicit.Hash()
	he, _ := explicit.Hash()
	if hi != he {
		t.Fatalf("seed 0 and seed %d hash differently: %s vs %s", DefaultSeed, hi, he)
	}

	// Each knob perturbs the address.
	perturb := []func(*RunSpec){
		func(s *RunSpec) { s.Experiments = []string{"fig5", "fig8f"} }, // order is semantic
		func(s *RunSpec) { s.Workloads++ },
		func(s *RunSpec) { s.Instructions++ },
		func(s *RunSpec) { s.Warmup++ },
		func(s *RunSpec) { s.DurationNs = 1 },
		func(s *RunSpec) { s.SampleEveryCycles++ },
		func(s *RunSpec) { s.Seed++ },
		func(s *RunSpec) { s.Workers++ },
		func(s *RunSpec) { s.Output.Reports = true },
	}
	for i, p := range perturb {
		s := valid()
		p(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("perturb %d: %v", i, err)
		}
		if h == h1 {
			t.Fatalf("perturb %d did not change the hash", i)
		}
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	_, err := Decode([]byte(`{"version": 7, "experiments": ["fig5"]}`))
	if err == nil {
		t.Fatal("version 7 accepted")
	}
	var ve *VersionError
	if !asVersionError(err, &ve) {
		t.Fatalf("error %v is not a *VersionError", err)
	}
	if !strings.Contains(err.Error(), "version 7") || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("unclear version error: %v", err)
	}
}

// asVersionError avoids importing errors just for one assertion.
func asVersionError(err error, target **VersionError) bool {
	ve, ok := err.(*VersionError)
	if ok {
		*target = ve
	}
	return ok
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string // substring of the error
	}{
		{"not json", `{`, "invalid JSON"},
		{"unknown field", `{"experiments":["fig5"],"frobnicate":1}`, "frobnicate"},
		{"no experiments", `{"version":1,"experiments":[]}`, "no experiments"},
		{"empty id", `{"experiments":[""]}`, "empty experiment"},
		{"duplicate id", `{"experiments":["fig5","fig5"]}`, "duplicate"},
		{"negative workloads", `{"experiments":["fig5"],"workloads":-1}`, "negative workloads"},
		{"negative workers", `{"experiments":["fig5"],"workers":-2}`, "negative workers"},
		{"negative duration", `{"experiments":["fig5"],"duration_ns":-1}`, "duration_ns"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode([]byte(c.raw))
			if err == nil {
				t.Fatalf("Decode(%s) accepted", c.raw)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Decode(%s) error %q missing %q", c.raw, err, c.want)
			}
		})
	}
}

func TestEncodeValidates(t *testing.T) {
	if _, err := Encode(RunSpec{}); err == nil {
		t.Fatal("Encode accepted an empty spec")
	}
	if _, err := (RunSpec{}).Hash(); err == nil {
		t.Fatal("Hash accepted an empty spec")
	}
}
