package melody

import (
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/mlc"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/traffic"
)

// deviceSet returns the Figure-3-style comparison set on SPR: local
// DRAM, NUMA, and the four CXL devices.
func deviceSet(seed uint64) []struct {
	Name string
	Dev  mem.Device
} {
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()
	return []struct {
		Name string
		Dev  mem.Device
	}{
		{"Local", spr.LocalDevice()},
		{"NUMA", spr.NUMADevice(seed)},
		{"CXL-A", spr.CXLDevice(cxl.ProfileA(), seed)},
		{"CXL-B", spr.CXLDevice(cxl.ProfileB(), seed)},
		{"CXL-C", spr.CXLDevice(cxl.ProfileC(), seed)},
		{"CXL-D", emrP.CXLDevice(cxl.ProfileD(), seed)},
	}
}

// Table1 regenerates the testbed table: idle latency and bandwidth for
// every platform (local + remote) and CXL device (local + remote host).
func Table1(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "table1", Title: "Testbed idle latency and bandwidth"}
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = o.durationNs()
	cfg.Seed = o.seed()

	r.Printf("%-8s %10s %10s %10s %10s   (reference)", "Server", "LocLat ns", "LocBW GB/s", "RemLat ns", "RemBW GB/s")
	for _, p := range platform.Platforms() {
		ll := p.CPU.MissOverheadNs + mlc.IdleLatency(p.LocalDevice(), cfg)
		lb := mlc.Bandwidth(p.LocalDevice(), 1.0, cfg)
		rl := p.CPU.MissOverheadNs + mlc.IdleLatency(p.NUMADevice(o.seed()), cfg)
		rb := mlc.Bandwidth(p.NUMADevice(o.seed()), 1.0, cfg)
		r.Printf("%-8s %10.0f %10.1f %10.0f %10.1f   (ref %g/%g, %g/%g)",
			p.CPU.Name, ll, lb, rl, rb, p.RefLocalLat, p.RefLocalBW, p.RefRemoteLat, p.RefRemoteBW)
	}
	r.Printf("%-8s %10s %10s %10s %10s", "CXL", "LocLat ns", "LocBW GB/s", "RemLat ns", "RemBW GB/s")
	refs := map[string][4]float64{
		"CXL-A": {214, 24, 375, 14}, "CXL-B": {271, 22, 473, 13},
		"CXL-C": {394, 18, 621, 14}, "CXL-D": {239, 52, 333, 14},
	}
	for _, prof := range cxl.Profiles() {
		host := platform.SPR2S()
		if prof.Name == "CXL-D" {
			host = platform.EMR2SPrime()
		}
		ll := host.CPU.MissOverheadNs + mlc.IdleLatency(host.CXLDevice(prof, o.seed()), cfg)
		lb := mlc.Bandwidth(host.CXLDevice(prof, o.seed()), 1.0, cfg)
		rl := host.CPU.MissOverheadNs + mlc.IdleLatency(host.CXLNUMADevice(prof, o.seed()), cfg)
		rb := mlc.Bandwidth(host.CXLNUMADevice(prof, o.seed()), 1.0, cfg)
		ref := refs[prof.Name]
		r.Printf("%-8s %10.0f %10.1f %10.0f %10.1f   (ref %g/%g, %g/%g)",
			prof.Name, ll, lb, rl, rb, ref[0], ref[1], ref[2], ref[3])
	}
	r.Note("local idle latencies 81-117 ns; CXL 214-394 ns; CXL read BW 18-52 GB/s")
	return r
}

// Fig1 regenerates the latency/bandwidth spectrum: each configuration's
// achieved bandwidth and idle latency, including switch and multi-hop
// points.
func Fig1(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig1", Title: "Sub-us CXL latency/bandwidth spectrum"}
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = o.durationNs()
	cfg.Seed = o.seed()
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()

	points := []struct {
		Name string
		Dev  func() mem.Device
		Base float64
	}{
		{"Socket-local DRAM", func() mem.Device { return spr.LocalDevice() }, spr.CPU.MissOverheadNs},
		{"NUMA", func() mem.Device { return spr.NUMADevice(o.seed()) }, spr.CPU.MissOverheadNs},
		{"CXL-A", func() mem.Device { return spr.CXLDevice(cxl.ProfileA(), o.seed()) }, spr.CPU.MissOverheadNs},
		{"CXL-D", func() mem.Device { return emrP.CXLDevice(cxl.ProfileD(), o.seed()) }, emrP.CPU.MissOverheadNs},
		{"CXL+NUMA", func() mem.Device { return spr.CXLNUMADevice(cxl.ProfileA(), o.seed()) }, spr.CPU.MissOverheadNs},
		{"CXL+Switch", func() mem.Device { return spr.CXLSwitchDevice(cxl.ProfileA(), o.seed()) }, spr.CPU.MissOverheadNs},
		{"CXL+multi-hop", func() mem.Device {
			return platform.SKX8S().CXLNUMADevice(cxl.ProfileA(), o.seed())
		}, platform.SKX8S().CPU.MissOverheadNs},
	}
	r.Printf("%-18s %12s %12s", "Config", "BW GB/s", "Latency ns")
	for _, p := range points {
		lat := p.Base + mlc.IdleLatency(p.Dev(), cfg)
		bw := mlc.Bandwidth(p.Dev(), 1.0, cfg)
		r.Printf("%-18s %12.1f %12.0f", p.Name, bw, lat)
	}
	r.Note("latency spectrum ~110 ns (local) to ~600+ ns (switch/multi-hop); bandwidth 7-250 GB/s")
	return r
}

// Fig3a regenerates the loaded-latency curves: average latency vs
// achieved bandwidth as the injected traffic delay decreases.
func Fig3a(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig3a", Title: "Loaded latency vs bandwidth (read-only traffic)"}
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = o.durationNs()
	cfg.Seed = o.seed()
	for _, d := range deviceSet(o.seed()) {
		pts := mlc.LoadedLatency(d.Dev, 1.0, mlc.StandardDelays(), cfg)
		r.Printf("%s:", d.Name)
		for _, p := range pts {
			r.Printf("  delay %6.0f ns -> %7.1f GB/s, avg %7.0f ns (p50 %6.0f, p99.9 %7.0f)",
				p.InjectDelayNs, p.BandwidthGBs, p.AvgLatencyNs, p.P50Ns, p.P999Ns)
		}
	}
	r.Note("latency stays flat at low load and spikes near each device's saturation point")
	r.Note("CXL-A/B/C spike to us-level latencies before saturating; local/NUMA/CXL-D stay controlled")
	return r
}

// Fig3b regenerates the pointer-chase latency distributions with
// prefetchers off, for 1-32 co-located chasers.
func Fig3b(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig3b", Title: "Pointer-chase latency CDFs (prefetchers off)"}
	for _, d := range deviceSet(o.seed()) {
		r.Printf("%s:", d.Name)
		for _, threads := range []int{1, 2, 4, 8, 16, 32} {
			cfg := mio.DefaultConfig()
			cfg.DurationNs = o.durationNs() * 2
			cfg.ChaseThreads = threads
			cfg.Seed = o.seed()
			res := mio.Run(d.Dev, cfg)
			s := res.Summary
			r.Printf("  %2d thr: p50 %6.0f  p99 %7.0f  p99.9 %7.0f  p99.99 %8.0f  max %8.0f",
				threads, s.P50, s.P99, s.P999, res.Percentile(99.99), s.Max)
		}
	}
	r.Note("local/NUMA p99.9-p50 gaps stay under ~60 ns; CXL-B/C reach 150+ ns with 1 us outliers")
	return r
}

// Fig3c regenerates the tail-gap-vs-utilization curves: p99.9-p50 of a
// foreground chase as background read threads push utilization up.
func Fig3c(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig3c", Title: "p99.9 - p50 latency gap vs bandwidth utilization"}
	peaks := map[string]float64{"Local": 218, "NUMA": 97, "CXL-A": 24, "CXL-B": 22, "CXL-C": 18, "CXL-D": 52}
	for _, d := range deviceSet(o.seed()) {
		r.Printf("%s:", d.Name)
		for _, noise := range []int{0, 2, 4, 8, 16, 24} {
			cfg := mio.DefaultConfig()
			cfg.DurationNs = o.durationNs() * 2
			cfg.Noise = mio.NoiseRead
			cfg.NoiseThreads = noise
			cfg.NoiseDelayNs = 120
			cfg.Seed = o.seed()
			res := mio.Run(d.Dev, cfg)
			util := res.BandwidthGBs / peaks[d.Name] * 100
			r.Printf("  %2d rd thr: util %5.1f%%  p50 %6.0f  gap(p99.9-p50) %7.0f ns",
				noise, util, res.Percentile(50), res.TailGap())
		}
	}
	r.Note("local/NUMA gaps stay flat to 90%%+ utilization; CXL-A grows from ~30%%, CXL-D from ~70%%")
	return r
}

// Fig4 regenerates the latency distributions under mixed read/write
// noise threads.
func Fig4(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig4", Title: "Latency CDFs under read/write noise"}
	for _, d := range deviceSet(o.seed()) {
		r.Printf("%s:", d.Name)
		for _, noise := range []int{0, 1, 3, 5, 7} {
			cfg := mio.DefaultConfig()
			cfg.DurationNs = o.durationNs() * 2
			cfg.Noise = mio.NoiseReadWrite
			cfg.NoiseThreads = noise
			cfg.NoiseDelayNs = 200
			cfg.Seed = o.seed()
			res := mio.Run(d.Dev, cfg)
			s := res.Summary
			r.Printf("  %d rw thr: p50 %6.0f  p90 %6.0f  p99 %7.0f  p99.9 %7.0f",
				noise, s.P50, s.P90, s.P99, s.P999)
		}
	}
	r.Note("three of four CXL devices show growing high-percentile latencies with R/W noise")
	return r
}

// Fig5 regenerates the latency-bandwidth curves across read:write
// ratios, exposing each device's peak-bandwidth mix.
func Fig5(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig5", Title: "Latency-bandwidth curves across R:W ratios"}
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = o.durationNs()
	cfg.Seed = o.seed()
	delays := []float64{2400, 700, 240, 70, 0}
	for _, d := range deviceSet(o.seed()) {
		r.Printf("%s:", d.Name)
		bestBW, bestRatio := 0.0, ""
		for _, ratio := range mlc.RWRatios() {
			pts := mlc.LoadedLatency(d.Dev, ratio.ReadFrac, delays, cfg)
			peak := 0.0
			for _, p := range pts {
				if p.BandwidthGBs > peak {
					peak = p.BandwidthGBs
				}
			}
			if peak > bestBW {
				bestBW, bestRatio = peak, ratio.Name
			}
			last := pts[len(pts)-1]
			r.Printf("  R:W %-4s peak %6.1f GB/s (at full load: %6.1f GB/s, %6.0f ns)",
				ratio.Name, peak, last.BandwidthGBs, last.AvgLatencyNs)
		}
		r.Printf("  -> peak bandwidth at R:W %s (%.1f GB/s)", bestRatio, bestBW)
	}
	r.Note("local DRAM peaks read-only; full-duplex CXL devices peak under mixed ratios")
	r.Note("FPGA-based CXL-C peaks read-only and degrades as writes mix in")
	return r
}

// Fig6 regenerates the prefetchers-on latency distributions: strided
// chases whose lines a prefetcher fetches ahead.
func Fig6(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig6", Title: "Latency CDFs with prefetchers on (strided chase)"}
	for _, d := range deviceSet(o.seed()) {
		r.Printf("%s:", d.Name)
		for _, threads := range []int{1, 4, 16, 32} {
			cfg := mio.DefaultPrefetchedConfig()
			cfg.Chasers = threads
			cfg.Samples = 20_000 * threads
			cfg.Seed = o.seed()
			res := mio.RunPrefetched(d.Dev, cfg)
			s := res.Summary
			r.Printf("  %2d thr: p50 %5.0f  p99 %6.0f  p99.9 %7.0f  max %8.0f",
				threads, s.P50, s.P99, s.P999, s.Max)
		}
	}
	r.Note("prefetching hides average latency (p50 near cache-hit cost) but CXL tails remain")
	return r
}

// Fig7 regenerates the real-workload tail evidence: (a/b) a namd-like
// low-bandwidth phase stream shows latency spikes on CXL-C; (c) Redis
// YCSB-C request-latency percentiles propagate device tails.
func Fig7(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "fig7", Title: "Tail latencies in real workloads"}

	// (a/b) 1 us-sampled probe latency while a low-rate phased stream
	// runs: the paper's 508.namd_r trace shows <1 GB/s bandwidth with
	// latency spikes to ~1 us on CXL-C.
	r.Printf("[a/b] probe latency time series under namd-like low-bandwidth load:")
	for _, d := range deviceSet(o.seed()) {
		if d.Name == "CXL-A" || d.Name == "CXL-D" {
			continue
		}
		probe := traffic.NewPointerChaser(d.Dev, 256<<20, o.seed())
		probe.Record = true
		bg := traffic.NewLoadGenerator(d.Dev, 64<<20, 0.9, o.seed()+7)
		bg.Base = 1 << 33
		bg.MLP = 2
		bg.DelayNs = 400 // <1 GB/s offered
		bg.Sequential = true
		traffic.Run([]traffic.Thread{probe, bg}, o.durationNs()*4)
		s := stats.Summarize(probe.Latencies)
		r.Printf("  %-6s bw %5.2f GB/s  p50 %5.0f  p99 %6.0f  p99.9 %7.0f  max %8.0f ns",
			d.Name, bg.Bytes/(o.durationNs()*4), s.P50, s.P99, s.P999, s.Max)
	}

	// (c) Redis YCSB-C request latency percentiles.
	r.Printf("[c] Redis/YCSB-C request-latency percentiles (us):")
	RegisterWorkloads()
	for _, row := range fig7cLatencies(o) {
		r.Printf("  %-8s p50 %6.2f  p90 %6.2f  p99 %6.2f  p99.9 %7.2f", row.name,
			row.p50/1000, row.p90/1000, row.p99/1000, row.p999/1000)
	}
	r.Note("CXL-C shows probe spikes toward 1 us despite <1 GB/s load; local/NUMA stay flat")
	r.Note("Redis request tails on CXL-C exceed local/NUMA/CXL-B (device tails propagate)")
	return r
}
