package melody

import (
	"fmt"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/obs/profile"
	"github.com/moatlab/melody/internal/obs/sampler"
	"github.com/moatlab/melody/internal/spa"
)

// Simulated-time flame profiles: each cell's cycle-sampled stream is
// converted to synthetic pprof stacks
//
//	workload → platform → stall source (P1-P9) → memory level →
//	device component (link req / sched wait / media / link rsp)
//
// weighted by the sim_cycles / sim_ns each frame absorbed, with the
// memory config attached as a pprof label (filter with -tagfocus).
// Per-interval counter deltas go through spa.AttributeCycles (the same
// counter→frame mapping the phase narrative uses), and DRAM-level
// stall cycles on CXL cells are split across the expander's internal
// components in proportion to the interval's CPMU time deltas.
//
// Profile generation is strictly post-completion: it reads sampled
// streams a finished run already carries, so measured results are
// byte-identical with profiling on or off, and — because the streams
// and the builder's ordering are deterministic — the emitted profile
// is byte-identical across -j widths.

// NewProfileBuilder returns a builder with the simulated-time schema:
// sim_cycles (the default view) and sim_ns.
func NewProfileBuilder() *profile.Builder {
	return profile.NewBuilder(
		profile.ValueType{Type: "sim_cycles", Unit: "cycles"},
		profile.ValueType{Type: "sim_ns", Unit: "nanoseconds"},
	)
}

// AddCellProfile folds one cell's sampled stream into b as synthetic
// stacks. The stream's first interval is measured from counter zero,
// so the cell's whole simulated history (warmup included) up to the
// last sample is attributed; the run's tail past the last sample — at
// most one sampling interval — is the reconciliation slack quoted in
// the package docs.
func AddCellProfile(b *profile.Builder, workloadName, platformName, config string, samples []sampler.Sample) {
	labels := []profile.Label{{Key: "config", Str: config}}
	devNames := spa.DeviceComponentNames()
	var prev sampler.Sample
	for _, smp := range samples {
		d := smp.Counters.Delta(prev.Counters)
		dc := d[counters.Cycles]
		dt := smp.TimeNs - prev.TimeNs
		if dc <= 0 || dt <= 0 {
			prev = smp
			continue
		}
		nsPerCycle := dt / dc

		// Device-component fractions for this interval: how the
		// expander split its residence time while these stalls
		// accumulated.
		var comp [4]float64
		var compTotal float64
		if smp.HasDevice {
			lr, sw, md, rs := smp.Device.ComponentDelta(prev.Device)
			for i, v := range [4]float64{lr, sw, md, rs} {
				if v > 0 {
					comp[i] = v
					compTotal += v
				}
			}
		}

		for _, fr := range spa.AttributeCycles(d) {
			stack := make([]string, 0, 5)
			stack = append(stack, workloadName, platformName, fr.Source)
			if fr.Level != "" {
				stack = append(stack, spa.ComponentLabel(fr.Level))
			}
			if fr.Level == "DRAM" && compTotal > 0 {
				// DRAM-bound stall cycles refine to the device's
				// internal components; fractions sum to 1, so the
				// split preserves the partition total.
				for i, c := range comp {
					if c <= 0 {
						continue
					}
					cyc := fr.Cycles * c / compTotal
					b.Add(append(stack, devNames[i]), labels, cyc, cyc*nsPerCycle)
				}
			} else {
				b.Add(stack, labels, fr.Cycles, fr.Cycles*nsPerCycle)
			}
		}
		prev = smp
	}
}

// BuildProfile merges the per-cell profiles of series into one
// profile. DurationNanos is the summed simulated span of the streams.
func BuildProfile(series []SampledSeries) *profile.Profile {
	b := NewProfileBuilder()
	var durationNs float64
	cells := 0
	for _, s := range series {
		if len(s.Samples) == 0 {
			continue
		}
		AddCellProfile(b, s.Workload, s.Platform, s.Config, s.Samples)
		durationNs += s.Samples[len(s.Samples)-1].TimeNs
		cells++
	}
	p := b.Profile()
	p.DurationNanos = int64(durationNs)
	p.Comments = []string{
		fmt.Sprintf("melody simulated-time profile: %d sampled cells", cells),
		"stacks: workload > platform > stall source (P1-P9) > memory level > device component",
		"values are simulated cycles/ns, not host time; config is a pprof tag",
	}
	return p
}

// ProfilesByExperiment groups series by the experiment that computed
// them (empty experiment ids group under "run") and builds one merged
// profile per group — the per-experiment artifacts cmd/melody's
// -profile flag writes.
func ProfilesByExperiment(series []SampledSeries) map[string]*profile.Profile {
	groups := map[string][]SampledSeries{}
	for _, s := range series {
		id := s.Experiment
		if id == "" {
			id = "run"
		}
		groups[id] = append(groups[id], s)
	}
	out := make(map[string]*profile.Profile, len(groups))
	for id, g := range groups {
		out[id] = BuildProfile(g)
	}
	return out
}
