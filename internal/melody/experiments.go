package melody

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure: human-readable lines plus
// notes comparing against the paper's published shape.
type Report struct {
	ID    string
	Title string
	Lines []string
	Notes []string
}

// Printf appends a formatted line to the report.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Note appends an expectation note.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Notes) > 0 {
		b.WriteString("-- paper expectations --\n")
		for _, n := range r.Notes {
			b.WriteString("  ")
			b.WriteString(n)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Options scales experiments: full-fidelity runs take tens of minutes,
// so tests and quick CLI invocations subsample.
type Options struct {
	// MaxWorkloads caps the catalog subset (0 = all 265).
	MaxWorkloads int
	// Instructions/Warmup override the runner budgets (0 = default).
	Instructions uint64
	Warmup       uint64
	// DurationNs scales device-level measurements (0 = default).
	DurationNs float64
	// SampleEveryCycles enables cycle-driven sampling on every runner
	// the engine creates (0 = off).
	SampleEveryCycles uint64
	Seed              uint64
}

// DefaultOptions returns a configuration suitable for interactive use:
// a representative catalog subset and moderate measurement windows.
func DefaultOptions() Options {
	return Options{MaxWorkloads: 48, Seed: 1}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) durationNs() float64 {
	if o.DurationNs <= 0 {
		return 200_000
	}
	return o.DurationNs
}

// Experiment is a registered reproduction. Run receives the
// ExperimentContext carrying the options, the engine's shared runners,
// and the batch-submission API (see Engine).
type Experiment struct {
	ID    string
	Title string
	Run   func(*ExperimentContext) *Report
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Testbed idle latency and bandwidth (Table 1)", Table1},
		{"table2", "Spa CPU counters (Table 2)", Table2},
		{"fig1", "Sub-us CXL latency/bandwidth spectrum (Figure 1)", Fig1},
		{"fig3a", "Loaded latency vs bandwidth (Figure 3a)", Fig3a},
		{"fig3b", "Pointer-chase latency distributions, prefetchers off (Figure 3b)", Fig3b},
		{"fig3c", "p99.9-p50 gap vs utilization (Figure 3c)", Fig3c},
		{"fig4", "Latency distributions under R/W noise (Figure 4)", Fig4},
		{"fig5", "Latency-bandwidth curves across R:W ratios (Figure 5)", Fig5},
		{"fig6", "Latency distributions with prefetchers on (Figure 6)", Fig6},
		{"fig7", "Tail latencies in real workloads (Figure 7)", Fig7},
		{"fig8a", "Slowdown CDFs across devices (Figure 8a/8b)", Fig8a},
		{"fig8c", "CXL+NUMA vs 2-hop NUMA (Figure 8c)", Fig8c},
		{"fig8d", "520.omnetpp tail latencies under CXL+NUMA (Figure 8d)", Fig8d},
		{"fig8e", "SPR vs EMR slowdowns (Figure 8e)", Fig8e},
		{"fig8f", "NUMA vs 1x/2x CXL-D (Figure 8f)", Fig8f},
		{"fig9a", "Slowdown distributions across 11 setups (Figure 9a)", Fig9a},
		{"fig9b", "YCSB slowdowns on Redis and VoltDB (Figure 9b)", Fig9b},
		{"fig11", "Spa estimator accuracy (Figure 11)", Fig11},
		{"fig12a", "L1PF vs L2PF miss shift (Figure 12a)", Fig12a},
		{"fig12b", "L2 slowdown vs L2PF coverage loss (Figure 12b)", Fig12b},
		{"fig14", "Spa slowdown breakdown per workload (Figure 14)", Fig14},
		{"fig15", "Slowdown-component CDFs (Figure 15)", Fig15},
		{"fig16", "Period-based slowdown over time (Figure 16)", Fig16},
		{"tuning", "Spa-guided object placement (505/605.mcf use case)", Tuning},
		{"ablations", "Model ablations: prefetchers, L2PF budget, hiccups", Ablations},
		{"predict", "Spa-based slowdown prediction (tech-report extension)", Predict},
		{"cpmu", "White-box device latency attribution (CXL 3.0 CPMU)", CPMUExp},
		{"tiering", "Spa-metric vs access-count tiering (extension)", TieringExp},
	}
}

// ExperimentByID finds a registered experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fractionBelow is a tiny local helper for CDF summaries.
func fractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// sortedCopy returns xs sorted ascending.
func sortedCopy(xs []float64) []float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp
}
