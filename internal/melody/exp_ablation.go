package melody

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

// Ablations exercises the design choices DESIGN.md calls out:
// (a) hardware prefetchers on/off (the paper reports a 50% drop for
// 603.bwaves and 10% for bc-kron with prefetchers disabled);
// (b) the L2 streamer's in-flight budget, the mechanism behind the
// Figure 12 coverage loss;
// (c) the controller hiccup processes behind CXL-B's tail latencies.
func Ablations(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "ablations", Title: "Model ablations"}
	RegisterWorkloads()
	emr := platform.EMR2S()

	// (a) prefetchers on/off for a streaming and a graph workload.
	r.Printf("[prefetchers on vs off] (local DRAM runtime)")
	for _, name := range []string{"603.bwaves_s", "bfs-kron"} {
		spec, ok := workload.ByName(name)
		if !ok {
			continue
		}
		on := ec.Runner(emr)
		off := ec.IsolatedRunner(emr)
		off.PrefetchersOff = true
		cOn := ec.Run(on, spec, Local(emr)).Cycles()
		cOff := ec.Run(off, spec, Local(emr)).Cycles()
		r.Printf("  %-14s prefetchers-off costs %+.0f%% runtime", name, (cOff/cOn-1)*100)
	}

	// (b) L2PF in-flight budget sweep on CXL-B for a stream workload.
	r.Printf("[L2 streamer in-flight budget] (stream on CXL-B)")
	spec, _ := workload.ByName("micro-seq-256m-mr25")
	instr := o.Instructions
	if instr == 0 {
		instr = 500_000
	}
	for _, budget := range []int{8, 24, 64} {
		dev := emr.CXLDevice(cxl.ProfileB(), o.seed())
		w := spec.Build(o.seed())
		m := core.New(core.Config{CPU: emr.CPU, Device: dev,
			MaxInstructions: instr, L2PFMaxInflight: budget})
		w.Run(m)
		c := m.Counters()
		r.Printf("  budget %2d: IPC %.2f  L2PF dropped %6.0f  L1PF-L3-miss %6.0f",
			budget, c.IPC(), c[counters.L2PFDropped], c[counters.L1PFL3Miss])
	}

	// (c) CXL-B tails with and without controller hiccups.
	r.Printf("[controller hiccups] (CXL-B pointer-chase tail gap)")
	quiet := cxl.ProfileB()
	quiet.MC.HiccupPeriodNs = 0
	quiet.MC.MajorHiccupPeriodNs = 0
	for _, v := range []struct {
		name string
		prof cxl.Profile
	}{{"with hiccups", cxl.ProfileB()}, {"without", quiet}} {
		cfg := mio.DefaultConfig()
		cfg.DurationNs = o.durationNs() * 3
		cfg.Seed = o.seed()
		res := mio.Run(emr.CXLDevice(v.prof, o.seed()), cfg)
		r.Printf("  %-13s p50 %4.0f ns  p99.9 %5.0f ns  gap %4.0f ns",
			v.name, res.Percentile(50), res.Percentile(99.9), res.TailGap())
	}
	r.Note("prefetchers-off slows streaming workloads dramatically (paper: ~50%% for bwaves)")
	r.Note("larger L2PF budgets restore coverage under CXL latency")
	r.Note("removing hiccups collapses CXL-B's tail gap toward local/NUMA levels")
	return r
}
