package melody

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/sampler"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/workload"
)

// samplingSpecs picks a small named subset — sampling tests need only
// a few representative cells, not the 8+ of testSubset.
func samplingSpecs(t *testing.T, names ...string) []workload.Spec {
	t.Helper()
	RegisterWorkloads()
	var out []workload.Spec
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("workload %s not in catalog", n)
		}
		out = append(out, s)
	}
	return out
}

// TestSamplingDoesNotPerturbResults pins the acceptance criterion:
// measurement Deltas are byte-identical with cycle sampling on or off,
// across configs with and without a CPMU probe.
func TestSamplingDoesNotPerturbResults(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	specs := samplingSpecs(t, "605.mcf_s", "micro-chase-256m", "micro-seqread-256m", "625.x264_s")
	configs := []MemConfig{Local(p), CXL(p, cxl.ProfileA())}

	run := func(every uint64) []Result {
		r := fastRunner(p)
		r.SampleEveryCycles = every
		results, err := r.RunAll(context.Background(), Cells(specs, configs...))
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	plain, sampled := run(0), run(20_000)
	for i := range plain {
		if plain[i].Delta != sampled[i].Delta {
			t.Fatalf("cell %s @ %s: Delta differs with sampling on",
				plain[i].Workload, plain[i].Config)
		}
		if len(plain[i].Sampled) != 0 {
			t.Fatal("unsampled run carries a sampled stream")
		}
		if len(sampled[i].Sampled) == 0 {
			t.Fatalf("cell %s @ %s: sampling on but stream empty",
				sampled[i].Workload, sampled[i].Config)
		}
	}
	// CXL cells carry device state; Local cells are CPU-only.
	for _, res := range sampled {
		wantDev := res.Config != "Local"
		for _, s := range res.Sampled {
			if s.HasDevice != wantDev {
				t.Fatalf("cell %s @ %s: HasDevice = %v", res.Workload, res.Config, s.HasDevice)
			}
		}
	}
}

// TestSamplingDeterministicAcrossWorkers: the sampled stream itself is
// part of the deterministic contract — identical across -j widths.
func TestSamplingDeterministicAcrossWorkers(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	specs := samplingSpecs(t, "605.mcf_s", "micro-chase-256m", "micro-randstore-64m")
	cells := Cells(specs, Local(p), CXL(p, cxl.ProfileB()))

	run := func(workers int) []Result {
		r := fastRunner(p)
		r.Workers = workers
		r.SampleEveryCycles = 50_000
		results, err := r.RunAll(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		a, b := serial[i].Sampled, parallel[i].Sampled
		if len(a) != len(b) {
			t.Fatalf("cell %d: %d vs %d samples across -j widths", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("cell %d sample %d differs across -j widths", i, k)
			}
		}
	}
}

func TestTelemetryCollectsSampledSeries(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	specs := samplingSpecs(t, "605.mcf_s", "micro-chase-256m", "micro-randstore-64m")

	tel := NewTelemetry()
	tel.Trace = obs.NewTrace()
	r := fastRunner(p)
	r.Workers = 4
	r.Obs = tel
	r.SampleEveryCycles = 50_000
	if _, err := r.RunAll(context.Background(), Cells(specs, Local(p), CXL(p, cxl.ProfileA()))); err != nil {
		t.Fatal(err)
	}

	series := tel.SampledSeries()
	if len(series) != len(specs)*2 {
		t.Fatalf("got %d sampled series, want %d", len(series), len(specs)*2)
	}
	for i := 1; i < len(series); i++ {
		a, b := series[i-1], series[i]
		if a.Workload > b.Workload || (a.Workload == b.Workload && a.Config >= b.Config) {
			t.Fatalf("series not sorted: %s@%s before %s@%s", a.Workload, a.Config, b.Workload, b.Config)
		}
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["runner/cells_sampled"] != uint64(len(series)) {
		t.Fatalf("cells_sampled = %d, series = %d", snap.Counters["runner/cells_sampled"], len(series))
	}

	// The trace carries counter tracks for every Spa counter and the
	// CPMU device-state tracks, all as valid "C" events.
	raw, err := json.Marshal(tel.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "C" {
			tracks[e.Name] = true
			if _, ok := e.Args["value"].(float64); !ok {
				t.Fatalf("counter event %q without numeric value", e.Name)
			}
		}
	}
	for _, name := range sampler.SpaTrackNames() {
		if !tracks[name] {
			t.Fatalf("trace missing Spa counter track %q (have %v)", name, tracks)
		}
	}
	for _, name := range sampler.CPMUTrackNames {
		if !tracks[name] {
			t.Fatalf("trace missing CPMU track %q", name)
		}
	}
}

// TestSampledStreamFeedsPeriodSpa closes the loop the tentpole exists
// for: sampled streams from a baseline and a CXL run of the same
// workload drive the period-resolved Spa report.
func TestSampledStreamFeedsPeriodSpa(t *testing.T) {
	RegisterWorkloads()
	p := platform.SKX2S()
	spec, ok := workload.ByName("micro-chase-256m")
	if !ok {
		t.Skip("micro-chase-256m not in catalog")
	}
	r := fastRunner(p)
	r.SampleEveryCycles = 20_000
	base := r.Run(spec, Local(p))
	tgt := r.Run(spec, CXL(p, cxl.ProfileB()))

	periods := spa.AnalyzePeriods(
		sampler.CoreSamplesOf(base.Sampled),
		sampler.CoreSamplesOf(tgt.Sampled), 100_000)
	if len(periods) == 0 {
		t.Fatal("no periods from sampled streams")
	}
	rep := spa.NewReport(periods, 100_000)
	if len(rep.Phases) == 0 {
		t.Fatal("report has no phases")
	}
	rep.AttributeDevice(tgt.Sampled)
	var attributed bool
	for _, ph := range rep.Phases {
		if ph.Device.Valid {
			attributed = true
		}
	}
	if !attributed {
		t.Fatal("no phase received device attribution from the CXL stream")
	}
}
