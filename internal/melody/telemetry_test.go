package melody

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/platform"
)

// TestTelemetryDoesNotPerturbReport pins the telemetry contract: the
// report an experiment renders is byte-identical with and without a
// Telemetry (and Trace) attached, for the same seed and worker count.
func TestTelemetryDoesNotPerturbReport(t *testing.T) {
	o := Options{MaxWorkloads: 8, Instructions: 200_000, Warmup: 50_000, Seed: 1}
	ctx := context.Background()

	plain := NewEngine(o)
	plain.Workers = 4
	repPlain, ok := plain.RunByID(ctx, "fig8f")
	if !ok {
		t.Fatal("fig8f not registered")
	}

	tel := NewTelemetry()
	tel.Trace = obs.NewTrace()
	observed := NewEngine(o)
	observed.Workers = 4
	observed.Obs = tel
	repObs, _ := observed.RunByID(ctx, "fig8f")

	if repPlain.String() != repObs.String() {
		t.Fatalf("telemetry perturbed the report:\n--- without ---\n%s\n--- with ---\n%s",
			repPlain.String(), repObs.String())
	}

	// The run must actually have been observed.
	cells := tel.Cells()
	if len(cells) == 0 {
		t.Fatal("telemetry logged no cells")
	}
	for _, c := range cells {
		if c.Workload == "" || c.Config == "" || c.Platform == "" || c.WallMs < 0 {
			t.Fatalf("malformed cell timing: %+v", c)
		}
	}
	s := tel.Registry.Snapshot()
	if s.Counters["runner/cells_run"] != uint64(len(cells)) {
		t.Fatalf("cells_run = %d, cells logged = %d", s.Counters["runner/cells_run"], len(cells))
	}
	if s.Counters["engine/experiments_run"] != 1 {
		t.Fatalf("experiments_run = %d", s.Counters["engine/experiments_run"])
	}
	var sawLatency, sawComponent bool
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, "device/") && strings.HasSuffix(name, "/latency_ns") && h.Count > 0 {
			sawLatency = true
		}
		if strings.HasSuffix(name, "/link_req_ns") && h.Count > 0 {
			sawComponent = true
		}
	}
	if !sawLatency {
		t.Fatal("no device latency histogram collected")
	}
	if !sawComponent {
		t.Fatal("no CXL component histogram collected (native attribution missing)")
	}
	if tel.Trace.Len() == 0 {
		t.Fatal("trace recorded no events")
	}
	if _, err := json.Marshal(tel.Trace); err != nil {
		t.Fatalf("trace does not marshal: %v", err)
	}
	if _, err := json.Marshal(tel.Registry); err != nil {
		t.Fatalf("registry does not marshal: %v", err)
	}
}

// TestTelemetryCacheOutcomes pins the cache-outcome counters: a repeated
// sequential cell is one miss then one hit.
func TestTelemetryCacheOutcomes(t *testing.T) {
	specs := testSubset(t, 8)
	emr := platform.EMR2S()
	r := fastRunner(emr)
	tel := NewTelemetry()
	r.Obs = tel

	req := RunRequest{Spec: specs[0], Config: Local(emr)}
	if _, err := r.RunCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	s := tel.Registry.Snapshot()
	if s.Counters["runner/cache_miss"] != 1 || s.Counters["runner/cache_hit"] != 1 {
		t.Fatalf("outcomes = miss %d hit %d wait %d, want 1/1/0",
			s.Counters["runner/cache_miss"], s.Counters["runner/cache_hit"],
			s.Counters["runner/cache_wait"])
	}
}

// TestTelemetryCacheSingleflight pins that concurrent requests for one
// cell compute exactly once and every other requester is a hit or wait.
func TestTelemetryCacheSingleflight(t *testing.T) {
	specs := testSubset(t, 8)
	emr := platform.EMR2S()
	r := fastRunner(emr)
	tel := NewTelemetry()
	r.Obs = tel

	req := RunRequest{Spec: specs[1], Config: CXL(emr, cxl.ProfileA())}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.RunCtx(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := tel.Registry.Snapshot()
	miss, hit, wait := s.Counters["runner/cache_miss"], s.Counters["runner/cache_hit"], s.Counters["runner/cache_wait"]
	if miss != 1 {
		t.Fatalf("cell computed %d times, want 1", miss)
	}
	if hit+wait != n-1 {
		t.Fatalf("hit %d + wait %d != %d", hit, wait, n-1)
	}
}

// TestNilTelemetryIsInert pins the disabled path: a runner without Obs
// works and records nothing anywhere.
func TestNilTelemetryIsInert(t *testing.T) {
	var tel *Telemetry
	tel.countCache(cacheHit)
	tel.cellDone(CellTiming{}, nil)
	if tel.Cells() != nil {
		t.Fatal("nil telemetry returned cells")
	}
	sp := tel.cellSpan(0, RunRequest{})
	endCellSpan(sp, cacheHit)
	sp2 := tel.experimentSpan("x", "y")
	sp2.End()
}
