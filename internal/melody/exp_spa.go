package melody

import (
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/topology"
	"github.com/moatlab/melody/internal/workload"
)

// Table2 documents the nine Spa counters.
func Table2(ec *ExperimentContext) *Report {
	r := &Report{ID: "table2", Title: "CPU counters for Spa"}
	descs := []string{
		"#c while mem subsys has >=1 outstanding load",
		"#c where the store buffer was full",
		"#c while an L1-miss demand load is outstanding",
		"#c while an L2-miss demand load is outstanding",
		"#c while an L3-miss demand load is outstanding",
		"#c without retired uops",
		"#c when 1 uop was executed on all ports",
		"#c when 2 uops were executed on all ports",
		"#c stalled on serializing operations",
	}
	for i, id := range counters.SpaSet() {
		r.Printf("  P%d %-18s %s", i+1, id.String(), descs[i])
	}
	return r
}

// Fig11 regenerates the Spa accuracy CDFs: |estimate - actual| for the
// three estimators, across the catalog on NUMA, CXL-A, and CXL-B.
func Fig11(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig11", Title: "Spa estimator accuracy (|estimated - actual| slowdown)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	targets := []MemConfig{NUMA(emr), CXL(emr, cxl.ProfileA()), CXL(emr, cxl.ProfileB())}
	ec.Declare(run, Cells(specs, append([]MemConfig{Local(emr)}, targets...)...))
	for _, mc := range targets {
		var errTotal, errBackend, errMemory []float64
		for _, s := range specs {
			base := ec.Run(run, s, Local(emr))
			tgt := ec.Run(run, s, mc)
			b := spa.Analyze(base.Delta, tgt.Delta)
			et, eb, em := spa.AccuracyErrors(b)
			errTotal = append(errTotal, et)
			errBackend = append(errBackend, eb)
			errMemory = append(errMemory, em)
		}
		within := func(errs []float64, lim float64) float64 {
			return fractionBelow(errs, lim) * 100
		}
		r.Printf("  %-8s ds:      <=2%%: %5.1f%%  <=5%%: %5.1f%%  p99 err: %5.2f%%",
			mc.Name, within(errTotal, 0.02), within(errTotal, 0.05), stats.Percentile(errTotal, 99)*100)
		r.Printf("  %-8s backend: <=2%%: %5.1f%%  <=5%%: %5.1f%%  p99 err: %5.2f%%",
			"", within(errBackend, 0.02), within(errBackend, 0.05), stats.Percentile(errBackend, 99)*100)
		r.Printf("  %-8s memory:  <=2%%: %5.1f%%  <=5%%: %5.1f%%  p99 err: %5.2f%%",
			"", within(errMemory, 0.02), within(errMemory, 0.05), stats.Percentile(errMemory, 99)*100)
	}
	r.Note("ds within 5%% for ~100%% of workloads; backend for ~96%%; memory-only for ~95%%")
	return r
}

// pfSensitive selects the prefetch-sensitive (streaming) workloads the
// Figure 12 analysis applies to.
func pfSensitive(max int) []workload.Spec {
	var out []workload.Spec
	for _, s := range selectWorkloads(0) {
		if s.Profile.SeqFrac >= 0.5 && s.New == nil {
			out = append(out, s)
		}
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Fig12a regenerates the L1PF/L2PF miss-shift scatter: under CXL the
// decrease in L2PF-L3-misses is matched by an increase in
// L1PF-L3-misses (y=x, Pearson ~0.99).
func Fig12a(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig12a", Title: "L1PF-L3-miss increase vs L2PF-L3-miss decrease"}
	max := ec.Opts.MaxWorkloads
	if max == 0 {
		max = 24
	}
	specs := pfSensitive(max)
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	ec.Declare(run, Cells(specs, Local(emr), CXL(emr, cxl.ProfileB())))
	var dec, inc []float64
	for _, s := range specs {
		base := ec.Run(run, s, Local(emr))
		tgt := ec.Run(run, s, CXL(emr, cxl.ProfileB()))
		d := tgt.Delta.Delta(base.Delta)
		decL2 := -d[counters.L2PFL3Miss]
		incL1 := d[counters.L1PFL3Miss]
		if decL2 > 0 || incL1 > 0 {
			dec = append(dec, decL2)
			inc = append(inc, incL1)
			r.Printf("  %-26s L2PF-L3-miss %+8.0f   L1PF-L3-miss %+8.0f",
				s.Name, -decL2, incL1)
		}
	}
	slope, _ := stats.LinearFit(dec, inc)
	r.Printf("  Pearson r = %.3f, slope = %.2f (n=%d)", stats.Pearson(dec, inc), slope, len(dec))
	r.Note("strong linear relationship near y=x (paper: Pearson 0.99)")
	return r
}

// Fig12b regenerates the per-workload link between L2 cache slowdown
// and L2 prefetcher coverage loss.
func Fig12b(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig12b", Title: "L2 slowdown vs L2PF coverage decrease"}
	max := ec.Opts.MaxWorkloads
	if max == 0 {
		max = 20
	}
	specs := pfSensitive(max)
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	ec.Declare(run, Cells(specs, Local(emr), CXL(emr, cxl.ProfileB())))
	coverage := func(c counters.Snapshot) float64 {
		covered := c[counters.L2PFL3Miss] + c[counters.L2PFL3Hit]
		all := covered + c[counters.L1PFL3Miss] + c[counters.DemandL3Miss]
		if all == 0 {
			return 0
		}
		return covered / all
	}
	var slowdowns, covDrops []float64
	for _, s := range specs {
		base := ec.Run(run, s, Local(emr))
		tgt := ec.Run(run, s, CXL(emr, cxl.ProfileB()))
		b := spa.Analyze(base.Delta, tgt.Delta)
		drop := coverage(base.Delta) - coverage(tgt.Delta)
		slowdowns = append(slowdowns, b.L1+b.L2+b.L3)
		covDrops = append(covDrops, drop)
		r.Printf("  %-26s cache slowdown %6.1f%%   L2PF coverage drop %6.1f%%",
			s.Name, (b.L1+b.L2+b.L3)*100, drop*100)
	}
	r.Printf("  Pearson(cache slowdown, coverage drop) = %.3f", stats.Pearson(slowdowns, covDrops))
	r.Note("workloads with cache slowdown consistently lose L2PF coverage (2-38%% in the paper)")
	return r
}

// Fig14 regenerates the per-workload slowdown breakdown for NUMA,
// CXL-A, and CXL-B across the suites.
func Fig14(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig14", Title: "Spa slowdown breakdown per workload"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	targets := []MemConfig{NUMA(emr), CXL(emr, cxl.ProfileA()), CXL(emr, cxl.ProfileB())}
	ec.Declare(run, Cells(specs, append([]MemConfig{Local(emr)}, targets...)...))
	for _, mc := range targets {
		r.Printf("[%s]", mc.Name)
		r.Printf("  %-26s %7s %7s %6s %6s %6s %6s %6s %6s", "workload",
			"total", "DRAM", "L3", "L2", "L1", "store", "core", "other")
		for _, s := range specs {
			base := ec.Run(run, s, Local(emr))
			tgt := ec.Run(run, s, mc)
			b := spa.Analyze(base.Delta, tgt.Delta)
			r.Printf("  %-26s %6.1f%% %6.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%",
				s.Name, b.Actual*100, b.DRAM*100, b.L3*100, b.L2*100, b.L1*100,
				b.Store*100, b.Core*100, b.Other*100)
		}
	}
	r.Note("slowdown sources vary: store-buffer-bound (random-store kernels), cache/prefetch-bound (streams), demand-read-bound (graph, Redis, VoltDB)")
	return r
}

// Fig15 regenerates the CDFs of per-component slowdowns across the
// catalog.
func Fig15(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig15", Title: "Slowdown-component CDFs (CXL-B)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	ec.Declare(run, Cells(specs, Local(emr), CXL(emr, cxl.ProfileB())))
	comp := map[string][]float64{}
	for _, s := range specs {
		base := ec.Run(run, s, Local(emr))
		tgt := ec.Run(run, s, CXL(emr, cxl.ProfileB()))
		b := spa.Analyze(base.Delta, tgt.Delta)
		comp["Store"] = append(comp["Store"], b.Store)
		comp["L1"] = append(comp["L1"], b.L1)
		comp["L2"] = append(comp["L2"], b.L2)
		comp["L3"] = append(comp["L3"], b.L3)
		comp["DRAM"] = append(comp["DRAM"], b.DRAM)
	}
	for _, name := range []string{"Store", "L1", "L2", "L3", "DRAM"} {
		xs := comp[name]
		over5 := (1 - fractionBelow(xs, 0.05)) * 100
		r.Printf("  %-6s >=5%% slowdown for %5.1f%% of workloads (p50 %5.1f%%, p90 %6.1f%%, max %7.1f%%)",
			name, over5, stats.Percentile(xs, 50)*100, stats.Percentile(xs, 90)*100, stats.Max(xs)*100)
	}
	r.Note("40%%+ of workloads see >=5%% demand-read (DRAM) slowdown; 15%%+ see >=5%% cache slowdown")
	return r
}

// Fig16 regenerates the period-based breakdown time series for the
// paper's three phased SPEC workloads on CXL-B. Time sampling is a
// runner-level knob, so it runs on an isolated runner rather than
// mutating the shared one.
func Fig16(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig16", Title: "Period-based slowdown breakdown (CXL-B)"}
	RegisterWorkloads()
	emr := platform.EMR2S()
	for _, name := range []string{"602.gcc_s", "605.mcf_s", "631.deepsjeng_s"} {
		spec, ok := workload.ByName(name)
		if !ok {
			continue
		}
		run := ec.IsolatedRunner(emr)
		run.SampleIntervalNs = 2_000 // "1 ms" sampling scaled to sim windows
		ec.Declare(run, Cells([]workload.Spec{spec}, Local(emr), CXL(emr, cxl.ProfileB())))
		base := ec.Run(run, spec, Local(emr))
		tgt := ec.Run(run, spec, CXL(emr, cxl.ProfileB()))
		period := run.Instructions / 12
		periods := spa.AnalyzePeriods(base.Samples, tgt.Samples, period)
		r.Printf("%s: %d periods of %d instructions", name, len(periods), period)
		for _, p := range periods {
			r.Printf("  @%9d  total %6.1f%%  DRAM %6.1f%%  cache %6.1f%%  store %6.1f%%  other %6.1f%%",
				p.StartInstr, p.Actual*100, p.DRAM*100, (p.L1+p.L2+p.L3)*100,
				p.Store*100, (p.Core+p.Other)*100)
		}
	}
	r.Note("per-period slowdowns expose phases the workload-level average hides (602.gcc's heavy first two-thirds)")
	return r
}

// Tuning regenerates the §5.7 placement use case: identify a
// latency-critical object with Spa attribution and relocate it to local
// DRAM, collapsing the slowdown.
func Tuning(ec *ExperimentContext) *Report {
	r := &Report{ID: "tuning", Title: "Spa-guided object placement (mcf-style workload)"}
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("605.mcf_s")
	run := ec.Runner(emr)
	cxlCfg := CXL(emr, cxl.ProfileA())
	ec.Declare(run, Cells([]workload.Spec{spec}, Local(emr), cxlCfg))

	base := ec.Run(run, spec, Local(emr))
	all := ec.Run(run, spec, cxlCfg)
	slowAll := (all.Cycles() - base.Cycles()) / base.Cycles()
	r.Printf("  all objects on CXL-A: slowdown %.1f%%", slowAll*100)

	advice := spa.Advise(all.Regions)
	for _, a := range advice {
		r.Printf("  object %-8s stall share %5.1f%%  miss share %5.1f%%",
			a.Name, a.StallShare*100, a.MissShare*100)
	}
	top := spa.TopObjects(advice, 0.55)
	r.Printf("  relocating %v to local DRAM...", top)

	// Rebuild the workload to learn its object addresses (the arena
	// layout depends only on the profile, not the seed), then place the
	// advised objects on local DRAM and the rest on CXL.
	w := spec.Build(run.Seed).(*workload.Synthetic)
	var regions []topology.Region
	localDev := emr.LocalDevice()
	for _, name := range top {
		if obj, ok := w.Arena().ByName(name); ok {
			regions = append(regions, topology.Region{Base: obj.Base, Size: obj.Size, Device: localDev})
		}
	}
	placed := MemConfig{Name: "CXL-A+placement", Build: func(seed uint64) mem.Device {
		dev, err := topology.NewPlacement("tiered", emr.CXLDevice(cxl.ProfileA(), seed), regions)
		if err != nil {
			panic(err)
		}
		return dev
	}}
	after := ec.Run(run, spec, placed)
	slowAfter := (after.Cycles() - base.Cycles()) / base.Cycles()
	r.Printf("  with hot objects on local DRAM: slowdown %.1f%%", slowAfter*100)
	r.Note("paper: relocating two hot objects cut 605.mcf's slowdown from 13%% to 2%%")
	return r
}
