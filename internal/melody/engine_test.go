package melody

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

// detGrid is the 6-workload x 3-config grid the determinism tests sweep.
func detGrid(t *testing.T) ([]workload.Spec, []MemConfig) {
	t.Helper()
	RegisterWorkloads()
	emr := platform.EMR2S()
	names := []string{
		"605.mcf_s", "625.x264_s", "520.omnetpp_r",
		"micro-chase-256m", "redis-ycsb-C", "603.bwaves_s",
	}
	var specs []workload.Spec
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("workload %s missing", n)
		}
		specs = append(specs, s)
	}
	configs := []MemConfig{Local(emr), NUMA(emr), CXL(emr, cxl.ProfileA())}
	return specs, configs
}

// TestParallelDeterminism asserts the engine's core guarantee: a cell's
// result is a pure function of its identity, so an 8-worker schedule is
// bit-identical to the sequential one.
func TestParallelDeterminism(t *testing.T) {
	specs, configs := detGrid(t)
	emr := platform.EMR2S()
	cells := Cells(specs, configs...)

	measure := func(workers int) []Result {
		r := fastRunner(emr)
		r.Workers = workers
		out, err := r.RunAll(context.Background(), cells)
		if err != nil {
			t.Fatalf("RunAll(workers=%d): %v", workers, err)
		}
		return out
	}
	seq := measure(1)
	par := measure(8)
	if len(seq) != len(cells) || len(par) != len(cells) {
		t.Fatalf("result count: seq=%d par=%d want %d", len(seq), len(par), len(cells))
	}
	for i := range cells {
		if seq[i].Workload != par[i].Workload || seq[i].Config != par[i].Config {
			t.Fatalf("cell %d identity mismatch: %s/%s vs %s/%s", i,
				seq[i].Workload, seq[i].Config, par[i].Workload, par[i].Config)
		}
		if seq[i].Delta != par[i].Delta {
			t.Fatalf("cell %d (%s on %s): parallel Delta differs from sequential",
				i, cells[i].Spec.Name, cells[i].Config.Name)
		}
	}
}

// TestSchedulingOrderIndependence asserts that the order cells are
// submitted in does not leak into results (the seed-derivation property:
// no shared RNG advances between cells).
func TestSchedulingOrderIndependence(t *testing.T) {
	specs, configs := detGrid(t)
	emr := platform.EMR2S()
	cells := Cells(specs, configs...)
	reversed := make([]RunRequest, len(cells))
	for i, c := range cells {
		reversed[len(cells)-1-i] = c
	}

	a := fastRunner(emr)
	fwd, err := a.RunAll(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	b := fastRunner(emr)
	rev, err := b.RunAll(context.Background(), reversed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if fwd[i].Delta != rev[len(cells)-1-i].Delta {
			t.Fatalf("cell %s on %s depends on submission order",
				cells[i].Spec.Name, cells[i].Config.Name)
		}
	}
}

// TestCacheSingleflight asserts a cell is computed exactly once even
// under heavy concurrent demand: 16 goroutines requesting the same cell
// must trigger a single MemConfig.Build. Run with -race.
func TestCacheSingleflight(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("625.x264_s")

	var builds atomic.Int64
	counted := MemConfig{Name: "Local", Build: func(seed uint64) mem.Device {
		builds.Add(1)
		return emr.LocalDevice()
	}}

	r := fastRunner(emr)
	r.Instructions = 200_000
	r.Warmup = 50_000
	var wg sync.WaitGroup
	results := make([]Result, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(spec, counted)
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("cell built %d times, want exactly 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Delta != results[0].Delta {
			t.Fatal("concurrent requesters observed different results")
		}
	}
}

// TestRunAllDuplicateCells asserts bulk submission deduplicates: a batch
// repeating one cell computes it once and hands every slot the result.
func TestRunAllDuplicateCells(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("508.namd_r")

	var builds atomic.Int64
	counted := MemConfig{Name: "Local", Build: func(seed uint64) mem.Device {
		builds.Add(1)
		return emr.LocalDevice()
	}}
	r := fastRunner(emr)
	r.Workers = 8
	reqs := make([]RunRequest, 12)
	for i := range reqs {
		reqs[i] = RunRequest{Spec: spec, Config: counted}
	}
	out, err := r.RunAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("duplicate cells built %d times, want 1", n)
	}
	for i := range out {
		if out[i].Delta != out[0].Delta {
			t.Fatal("duplicate cells returned different results")
		}
	}
}

// TestRunCtxCancellation asserts a cancelled context refuses new work.
func TestRunCtxCancellation(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("625.x264_s")
	r := fastRunner(emr)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, RunRequest{Spec: spec, Config: Local(emr)}); err == nil {
		t.Fatal("RunCtx on cancelled context succeeded")
	}
	if _, err := r.RunAll(ctx, Cells([]workload.Spec{spec}, Local(emr), NUMA(emr))); err == nil {
		t.Fatal("RunAll on cancelled context succeeded")
	}
}

// TestEngineSharesRunners asserts experiments on one engine share a
// per-platform runner (and with it the baseline cache), while
// IsolatedRunner always returns a private one.
func TestEngineSharesRunners(t *testing.T) {
	g := NewEngine(Options{Seed: 1})
	ecA := g.context(context.Background(), "a")
	ecB := g.context(context.Background(), "b")
	emr := platform.EMR2S()
	if ecA.Runner(emr) != ecB.Runner(emr) {
		t.Fatal("experiments on one engine got different shared runners")
	}
	if ecA.Runner(emr) == ecA.IsolatedRunner(emr) {
		t.Fatal("IsolatedRunner returned the shared runner")
	}
	if ecA.Runner(platform.SKX2S()) == ecA.Runner(emr) {
		t.Fatal("distinct platforms share a runner")
	}
}

// TestEngineProgress asserts Declare reports completion counts up to the
// declared total.
func TestEngineProgress(t *testing.T) {
	specs, configs := detGrid(t)
	g := NewEngine(Options{Instructions: 200_000, Warmup: 50_000, Seed: 1})
	g.Workers = 4
	var calls atomic.Int64
	var maxDone atomic.Int64
	g.Progress = func(id string, done, total int) {
		calls.Add(1)
		if int64(done) > maxDone.Load() {
			maxDone.Store(int64(done))
		}
		if total != len(specs)*len(configs) {
			t.Errorf("total = %d, want %d", total, len(specs)*len(configs))
		}
	}
	ec := g.context(context.Background(), "test")
	if err := ec.Declare(ec.Runner(platform.EMR2S()), Cells(specs, configs...)); err != nil {
		t.Fatal(err)
	}
	want := int64(len(specs) * len(configs))
	if calls.Load() != want || maxDone.Load() != want {
		t.Fatalf("progress: %d calls, max done %d, want %d", calls.Load(), maxDone.Load(), want)
	}
}

// TestDeriveSeed pins the seed-derivation contract: stable, config-
// sensitive for device state, config-blind for the instruction stream.
func TestDeriveSeed(t *testing.T) {
	if deriveSeed("a", "x", 1) != deriveSeed("a", "x", 1) {
		t.Fatal("deriveSeed not deterministic")
	}
	if deriveSeed("a", "x", 1) == deriveSeed("a", "y", 1) {
		t.Fatal("deriveSeed ignores config")
	}
	if deriveSeed("a", "x", 1) == deriveSeed("b", "x", 1) {
		t.Fatal("deriveSeed ignores workload")
	}
	if deriveSeed("a", "x", 1) == deriveSeed("a", "x", 2) {
		t.Fatal("deriveSeed ignores base seed")
	}
}
