package melody

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/tiering"
	"github.com/moatlab/melody/internal/workload"
)

// Predict validates the Spa-based performance predictor (§5.7
// "Performance prediction and metric"): calibrate each workload on
// CXL-A, predict its slowdown on NUMA, CXL-B and CXL-D from latency
// alone, and compare with measurement.
func Predict(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "predict", Title: "Spa-based slowdown prediction at unseen latencies"}
	specs := selectWorkloads(o.MaxWorkloads)
	emr := platform.EMR2S()
	run := ec.Runner(emr)

	l0 := emr.RefLocalLat
	calCfg := CXL(emr, cxl.ProfileA())
	targets := []struct {
		mc  MemConfig
		lat float64
	}{
		{NUMA(emr), emr.RefRemoteLat},
		{CXL(emr, cxl.ProfileB()), 271},
	}
	ec.Declare(run, Cells(specs, Local(emr), calCfg, NUMA(emr), CXL(emr, cxl.ProfileB())))

	var errs []float64
	for _, s := range specs {
		base := ec.Run(run, s, Local(emr))
		cal := ec.Run(run, s, calCfg)
		pred := spa.NewPredictor(base.Delta, cal.Delta, l0, 214)
		for _, tgt := range targets {
			actual := ec.Slowdown(run, s, tgt.mc)
			p := pred.Predict(tgt.lat)
			errs = append(errs, spa.PredictionError(p, actual))
		}
	}
	r.Printf("  %d predictions across %d workloads x {NUMA, CXL-B}:", len(errs), len(specs))
	r.Printf("  |error| <= 5%%: %5.1f%%   <= 10%%: %5.1f%%   median %5.2f%%   p90 %5.2f%%",
		fractionBelow(errs, 0.05)*100, fractionBelow(errs, 0.10)*100,
		stats.Percentile(errs, 50)*100, stats.Percentile(errs, 90)*100)
	r.Note("latency-linear extrapolation from one calibration point tracks latency-bound workloads;")
	r.Note("bandwidth-saturated and tail-dominated workloads diverge (device heterogeneity, Finding #1)")
	return r
}

// CPMUExp demonstrates the white-box tail analysis the paper proposes
// via the CXL 3.0 performance monitoring unit: per-component latency
// attribution inside each device, pinpointing *where* tails originate.
func CPMUExp(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "cpmu", Title: "White-box device latency attribution (CXL 3.0 CPMU)"}
	r.Printf("  %-7s %9s %9s %9s %9s %9s %9s %8s %8s", "device",
		"linkReq", "sched", "media", "linkRsp", "p50", "p99.9", "hiccups", "thermal")
	for _, prof := range cxl.Profiles() {
		dev := cxl.New(prof, o.seed())
		dev.PMU().Enable()
		cfg := mio.DefaultConfig()
		cfg.DurationNs = o.durationNs() * 4
		cfg.ChaseThreads = 4
		cfg.Seed = o.seed()
		mio.Run(dev, cfg)
		pmu := dev.PMU()
		lr, sw, md, lp := pmu.Breakdown()
		r.Printf("  %-7s %8.1f  %8.1f  %8.1f  %8.1f  %8.0f  %8.0f  %7d  %7d",
			prof.Name, lr, sw, md, lp, pmu.Percentile(50), pmu.Percentile(99.9),
			pmu.HiccupStalls, pmu.ThermalStalls)
	}
	r.Note("tails on CXL-B/C originate in scheduler wait (hiccups), not media — the paper's hypothesis")
	r.Note("a real CPMU would expose exactly this breakdown; the simulator provides it natively")
	return r
}

// TieringExp compares tiering policies on a latency-bound workload: a
// conventional access-count policy vs the Spa stall-metric policy, with
// static all-local / all-CXL endpoints (§5.7 "smarter tiering policy
// designs").
func TieringExp(ec *ExperimentContext) *Report {
	o := ec.Opts
	r := &Report{ID: "tiering", Title: "Spa-metric vs access-count tiering policies"}
	RegisterWorkloads()
	// SKX2S: its 13.8 MB LLC does not shield a 32 MB hot set, so the
	// tiering decision is visible within simulation-scale windows.
	host := platform.SKX2S()
	spec, _ := workload.ByName("micro-hot80-32m")
	instr := o.Instructions
	if instr == 0 {
		instr = 800_000
	}

	runOn := func(mkDev func() mem.Device) float64 {
		w := spec.Build(o.seed())
		m := core.New(core.Config{CPU: host.CPU, Device: mkDev(), MaxInstructions: instr})
		if pl, ok := w.(workload.Preloader); ok {
			for _, obj := range pl.PreloadObjects() {
				m.Preload(obj.Base, obj.Size)
			}
		}
		w.Run(m)
		return m.Counters().IPC()
	}

	local := runOn(func() mem.Device { return host.LocalDevice() })
	all := runOn(func() mem.Device { return host.CXLDevice(cxl.ProfileA(), o.seed()) })
	tiered := func(p tiering.Policy) float64 {
		return runOn(func() mem.Device {
			cfg := tiering.DefaultConfig()
			cfg.Policy = p
			cfg.FastPages = 12 << 10 // 48 MiB of local DRAM: fits the hot set
			cfg.EpochAccesses = 30_000
			cfg.MigrateBatch = 8192
			// Migrations run in the background; only residual
			// interference lands on the access timeline.
			cfg.MigrationCostNs = 40
			return tiering.New(host.LocalDevice(), host.CXLDevice(cxl.ProfileA(), o.seed()), cfg)
		})
	}
	count := tiered(tiering.PolicyAccessCount)
	spaP := tiered(tiering.PolicySpa)

	r.Printf("  %-22s IPC %.3f", "all local DRAM", local)
	r.Printf("  %-22s IPC %.3f", "tiered (spa metric)", spaP)
	r.Printf("  %-22s IPC %.3f", "tiered (access count)", count)
	r.Printf("  %-22s IPC %.3f", "all CXL-A", all)
	r.Printf("  spa policy recovers %.0f%% of the all-local gap (access count: %.0f%%)",
		(spaP-all)/(local-all)*100, (count-all)/(local-all)*100)
	r.Note("both policies sit between the static endpoints; the stall-metric policy wins when")
	r.Note("access counts and stall contribution diverge (prefetched or overlapped traffic)")
	return r
}
