package melody

import (
	"bytes"
	"path/filepath"
	"testing"
)

func smallManifest(t *testing.T) Manifest {
	t.Helper()
	tel := NewTelemetry()
	tel.cellDone(CellTiming{Workload: "w", Config: "Local", Platform: "EMR2S", Seed: 9, WallMs: 3.2}, nil)
	tel.Registry.Histogram("device/EMR2S/CXL-B/latency_ns").Record(250)
	return BuildManifest(7, 4, 8, []ExperimentTiming{{ID: "fig5", WallS: 1.25}}, tel)
}

func TestManifestRoundTrip(t *testing.T) {
	m := smallManifest(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.Workers != 4 || got.Workloads != 8 {
		t.Fatalf("round trip lost header: %+v", got)
	}
	if len(got.Cells) != 1 || got.Cells[0].Workload != "w" {
		t.Fatalf("round trip lost cells: %+v", got.Cells)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].WallS != 1.25 {
		t.Fatalf("round trip lost experiments: %+v", got.Experiments)
	}
	if _, ok := got.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]; !ok {
		t.Fatal("round trip lost registry histograms")
	}
}

func TestLoadManifestRejectsForeign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteManifest(path, Manifest{Tool: "other"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("foreign manifest accepted")
	}
	if _, err := LoadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestStripHostTime(t *testing.T) {
	m := smallManifest(t)
	m.StripHostTime()
	if m.Cells[0].WallMs != 0 || m.Experiments[0].WallS != 0 {
		t.Fatalf("host time survives strip: %+v %+v", m.Cells[0], m.Experiments[0])
	}
	if _, ok := m.Registry.Histograms["runner/cell_wall_ms"]; ok {
		t.Fatal("cell wall histogram survives strip")
	}
	if _, ok := m.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]; !ok {
		t.Fatal("strip removed simulated-time histogram")
	}
	// Two manifests from observationally different runs of the same
	// configuration agree after stripping.
	n := smallManifest(t)
	n.Cells[0].WallMs = 99
	n.Experiments[0].WallS = 42
	n.StripHostTime()
	a, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeManifest(n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("stripped manifests differ:\n%s\nvs\n%s", a, b)
	}
}

func TestManifestInterruptedFlag(t *testing.T) {
	m := smallManifest(t)
	a, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(a, []byte(`"interrupted"`)) {
		t.Fatal("clean manifest carries interrupted key (breaks byte-compat with prior PRs)")
	}
	m.Interrupted = true
	b, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"interrupted": true`)) {
		t.Fatal("interrupted manifest missing flag")
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Interrupted {
		t.Fatal("interrupted flag lost in round trip")
	}
}
