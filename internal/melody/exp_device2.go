package melody

import (
	"github.com/moatlab/melody/internal/apps/kvstore"
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/stats"
)

// fig7cRow is one config's Redis request-latency percentiles (ns).
type fig7cRow struct {
	name                string
	p50, p90, p99, p999 float64
}

// fig7cLatencies runs Redis YCSB-C on four configs recording per-op
// latency through the core model.
func fig7cLatencies(o Options) []fig7cRow {
	spr := platform.SPR2S()
	configs := []struct {
		name string
		dev  func() mem.Device
	}{
		{"Local", func() mem.Device { return spr.LocalDevice() }},
		{"NUMA", func() mem.Device { return spr.NUMADevice(o.seed()) }},
		{"CXL-B", func() mem.Device { return spr.CXLDevice(cxl.ProfileB(), o.seed()) }},
		{"CXL-C", func() mem.Device { return spr.CXLDevice(cxl.ProfileC(), o.seed()) }},
	}
	instr := o.Instructions
	if instr == 0 {
		instr = 1_500_000
	}
	var rows []fig7cRow
	for _, c := range configs {
		y := kvstore.NewYCSB("redis-ycsb-C", kvstore.RedisConfig(), kvstore.YCSBMixes()["C"], o.seed())
		y.RecordOpLatency = true
		m := core.New(core.Config{CPU: spr.CPU, Device: c.dev(), MaxInstructions: instr})
		for _, obj := range y.PreloadObjects() {
			m.Preload(obj.Base, obj.Size)
		}
		y.Run(m)
		ps := stats.Percentiles(y.OpLatenciesNs, 50, 90, 99, 99.9)
		rows = append(rows, fig7cRow{c.name, ps[0], ps[1], ps[2], ps[3]})
	}
	return rows
}
