// Package melody orchestrates the paper's experiments: it runs catalog
// workloads on (platform, memory-config) combinations through the core
// model, computes slowdowns against the local-DRAM baseline, applies Spa
// analysis, and regenerates every table and figure of the evaluation as
// a text report plus typed data.
package melody

import (
	"fmt"

	"github.com/moatlab/melody/internal/apps/graph"
	"github.com/moatlab/melody/internal/apps/kvstore"
	"github.com/moatlab/melody/internal/apps/tablestore"
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

// RegisterWorkloads installs the app-backed workloads (GAPBS, Redis,
// VoltDB, memcached) into the catalog exactly once.
func RegisterWorkloads() {
	registerOnce.Do(func() {
		graph.Register()
		kvstore.Register()
		tablestore.Register()
	})
}

var registerOnce doOnce

// doOnce is a tiny sync.Once replacement that keeps this file's imports
// minimal and the zero value useful.
type doOnce struct{ done bool }

func (o *doOnce) Do(f func()) {
	if !o.done {
		o.done = true
		f()
	}
}

// MemConfig names a buildable memory configuration.
type MemConfig struct {
	Name  string
	Build func(seed uint64) mem.Device
}

// Standard configurations for a platform.

// Local returns the socket-local DRAM baseline config.
func Local(p platform.Platform) MemConfig {
	return MemConfig{Name: "Local", Build: func(seed uint64) mem.Device { return p.LocalDevice() }}
}

// NUMA returns the one-hop remote config.
func NUMA(p platform.Platform) MemConfig {
	return MemConfig{Name: "NUMA", Build: func(seed uint64) mem.Device { return p.NUMADevice(seed) }}
}

// CXL returns a locally attached CXL device config.
func CXL(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name, Build: func(seed uint64) mem.Device { return p.CXLDevice(prof, seed) }}
}

// CXLNUMA returns the cross-socket CXL config.
func CXLNUMA(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name + "+NUMA", Build: func(seed uint64) mem.Device { return p.CXLNUMADevice(prof, seed) }}
}

// CXLSwitch returns the switch-attached CXL config.
func CXLSwitch(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name + "+Switch", Build: func(seed uint64) mem.Device { return p.CXLSwitchDevice(prof, seed) }}
}

// CXLInterleave returns an n-way interleaved CXL config.
func CXLInterleave(p platform.Platform, prof cxl.Profile, n int) MemConfig {
	return MemConfig{Name: fmt.Sprintf("%sx%d", prof.Name, n),
		Build: func(seed uint64) mem.Device { return p.CXLInterleaveDevice(prof, n, seed) }}
}

// Result is one workload execution's measurement.
type Result struct {
	Workload string
	Config   string
	// Delta covers the measurement window (after warmup).
	Delta counters.Snapshot
	// Samples covers the whole run (time-based, for period analysis).
	Samples []core.Sample
	// Regions holds per-object attribution when requested.
	Regions []core.RegionStat
}

// Cycles returns the measurement window's cycle count.
func (r Result) Cycles() float64 { return r.Delta[counters.Cycles] }

// Runner executes workloads with memoization: the local-DRAM baseline
// of a workload is shared by every figure that needs its slowdown.
type Runner struct {
	Platform platform.Platform

	// Instructions is the measurement window; Warmup precedes it.
	Instructions uint64
	Warmup       uint64

	// SampleIntervalNs enables time sampling (period analysis).
	SampleIntervalNs float64

	// PrefetchersOff disables HW prefetching (ablations).
	PrefetchersOff bool

	Seed uint64

	cache map[string]Result
}

// NewRunner returns a Runner with the defaults used across experiments.
func NewRunner(p platform.Platform) *Runner {
	return &Runner{
		Platform:     p,
		Instructions: 1_200_000,
		Warmup:       250_000,
		Seed:         1,
		cache:        map[string]Result{},
	}
}

func (r *Runner) key(spec workload.Spec, mc MemConfig) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%g|%v|%d",
		spec.Name, mc.Name, r.Platform.CPU.Name, r.Instructions, r.Warmup,
		r.SampleIntervalNs, r.PrefetchersOff, r.Seed)
}

// Run executes (or returns the cached) measurement of spec on mc.
func (r *Runner) Run(spec workload.Spec, mc MemConfig) Result {
	k := r.key(spec, mc)
	if res, ok := r.cache[k]; ok {
		return res
	}
	res := r.runOnce(spec, mc)
	r.cache[k] = res
	return res
}

func (r *Runner) runOnce(spec workload.Spec, mc MemConfig) Result {
	dev := mc.Build(r.Seed)
	var machineDev mem.Device = dev
	if threads := spec.Siblings.BuildThreads(dev, r.Seed+101); threads != nil {
		machineDev = core.NewContendedDevice(dev, threads)
	}
	instr := r.Instructions
	if spec.Instructions > 0 {
		instr = spec.Instructions
	}
	w := spec.Build(r.Seed)
	m := core.New(core.Config{
		CPU:              r.Platform.CPU,
		Device:           machineDev,
		PrefetchersOff:   r.PrefetchersOff,
		MaxInstructions:  r.Warmup,
		SampleIntervalNs: r.SampleIntervalNs,
	})
	if syn, ok := w.(*workload.Synthetic); ok {
		m.SetRegions(syn.Arena().Objects())
	}
	if pl, ok := w.(workload.Preloader); ok {
		for _, o := range pl.PreloadObjects() {
			m.Preload(o.Base, o.Size)
		}
	}
	w.Run(m)
	before := m.Counters()
	m.SetMaxInstructions(r.Warmup + instr)
	w.Run(m)
	after := m.Counters()

	return Result{
		Workload: spec.Name,
		Config:   mc.Name,
		Delta:    after.Delta(before),
		Samples:  m.Samples(),
		Regions:  m.RegionStats(),
	}
}

// Slowdown measures spec's slowdown of target relative to the local
// baseline: S = (c_target - c_local) / c_local.
func (r *Runner) Slowdown(spec workload.Spec, target MemConfig) float64 {
	base := r.Run(spec, Local(r.Platform))
	tgt := r.Run(spec, target)
	c := base.Cycles()
	if c <= 0 {
		return 0
	}
	return (tgt.Cycles() - c) / c
}

// Slowdowns evaluates a workload set against one target config.
func (r *Runner) Slowdowns(specs []workload.Spec, target MemConfig) []float64 {
	out := make([]float64, len(specs))
	for i, s := range specs {
		out[i] = r.Slowdown(s, target)
	}
	return out
}
