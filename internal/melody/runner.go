// Package melody orchestrates the paper's experiments: it runs catalog
// workloads on (platform, memory-config) combinations through the core
// model, computes slowdowns against the local-DRAM baseline, applies Spa
// analysis, and regenerates every table and figure of the evaluation as
// a text report plus typed data.
package melody

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/apps/graph"
	"github.com/moatlab/melody/internal/apps/kvstore"
	"github.com/moatlab/melody/internal/apps/tablestore"
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/sampler"
	"github.com/moatlab/melody/internal/obs/tracespan"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

// RegisterWorkloads installs the app-backed workloads (GAPBS, Redis,
// VoltDB, memcached) into the catalog exactly once. Safe for concurrent
// use.
func RegisterWorkloads() {
	registerOnce.Do(func() {
		graph.Register()
		kvstore.Register()
		tablestore.Register()
	})
}

var registerOnce sync.Once

// MemConfig names a buildable memory configuration.
//
// Contract: Build must be a pure function of seed — given the same seed
// it returns a freshly constructed, behaviourally identical device, with
// no dependence on call order or shared mutable state. The Runner caches
// results by Name alone, so two MemConfigs with the same Name handed to
// the same Runner must describe the same configuration; instrumented or
// otherwise impure configs (e.g. latency-recording wrappers) need a
// Runner of their own and a Name not shared with a pure config.
type MemConfig struct {
	Name  string
	Build func(seed uint64) mem.Device
}

// Standard configurations for a platform.

// Local returns the socket-local DRAM baseline config.
func Local(p platform.Platform) MemConfig {
	return MemConfig{Name: "Local", Build: func(seed uint64) mem.Device { return p.LocalDevice() }}
}

// NUMA returns the one-hop remote config.
func NUMA(p platform.Platform) MemConfig {
	return MemConfig{Name: "NUMA", Build: func(seed uint64) mem.Device { return p.NUMADevice(seed) }}
}

// CXL returns a locally attached CXL device config.
func CXL(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name, Build: func(seed uint64) mem.Device { return p.CXLDevice(prof, seed) }}
}

// CXLNUMA returns the cross-socket CXL config.
func CXLNUMA(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name + "+NUMA", Build: func(seed uint64) mem.Device { return p.CXLNUMADevice(prof, seed) }}
}

// CXLSwitch returns the switch-attached CXL config.
func CXLSwitch(p platform.Platform, prof cxl.Profile) MemConfig {
	return MemConfig{Name: prof.Name + "+Switch", Build: func(seed uint64) mem.Device { return p.CXLSwitchDevice(prof, seed) }}
}

// CXLInterleave returns an n-way interleaved CXL config.
func CXLInterleave(p platform.Platform, prof cxl.Profile, n int) MemConfig {
	return MemConfig{Name: fmt.Sprintf("%sx%d", prof.Name, n),
		Build: func(seed uint64) mem.Device { return p.CXLInterleaveDevice(prof, n, seed) }}
}

// RunRequest names one experiment cell: a workload on a memory config.
type RunRequest struct {
	Spec   workload.Spec
	Config MemConfig
}

// Cells builds the (workload, config) cross product, the unit of batch
// submission: experiments declare their full cell set up front and the
// runner executes it across the worker pool.
func Cells(specs []workload.Spec, configs ...MemConfig) []RunRequest {
	out := make([]RunRequest, 0, len(specs)*len(configs))
	for _, mc := range configs {
		for _, s := range specs {
			out = append(out, RunRequest{Spec: s, Config: mc})
		}
	}
	return out
}

// Result is one workload execution's measurement.
type Result struct {
	Workload string
	Config   string
	// Delta covers the measurement window (after warmup).
	Delta counters.Snapshot
	// Samples covers the whole run (time-based, for period analysis).
	Samples []core.Sample
	// Sampled is the cycle-driven "simulated perf" stream (counter
	// snapshots plus device CPMU state) when SampleEveryCycles is set.
	Sampled []sampler.Sample
	// Regions holds per-object attribution when requested.
	Regions []core.RegionStat
}

// Cycles returns the measurement window's cycle count.
func (r Result) Cycles() float64 { return r.Delta[counters.Cycles] }

// Runner executes workloads with memoization: the local-DRAM baseline
// of a workload is shared by every figure that needs its slowdown. The
// cache is a sharded singleflight, so concurrent requests for the same
// cell compute it exactly once, and bulk submissions (RunAll, Slowdowns)
// fan out across a worker pool. Every cell's seed is derived from its
// cache identity (workload, config, base seed), so results are
// bit-identical regardless of scheduling order or worker count.
type Runner struct {
	Platform platform.Platform

	// Instructions is the measurement window; Warmup precedes it.
	Instructions uint64
	Warmup       uint64

	// SampleIntervalNs enables time sampling (period analysis).
	SampleIntervalNs float64

	// SampleEveryCycles enables the cycle-driven sampling layer: every
	// cell gets its own obs/sampler collecting counter snapshots (and,
	// on CXL devices, CPMU state probes) every N simulated cycles.
	// Sampling is observation-only — Delta is byte-identical with it on
	// or off — but it is part of the cache identity, since Results
	// carry the sampled stream.
	SampleEveryCycles uint64

	// PrefetchersOff disables HW prefetching (ablations).
	PrefetchersOff bool

	Seed uint64

	// Workers bounds bulk-submission concurrency (0 = NumCPU).
	Workers int

	// Obs, when set, collects engine telemetry: cache-outcome counters,
	// per-cell wall times, per-config device latency histograms, and
	// worker-occupancy trace spans. Observation is strictly passive —
	// results are byte-identical with Obs set or nil — and a nil Obs
	// costs a nil check per cell, nothing per simulated access.
	Obs *Telemetry

	cache resultCache
}

// NewRunner returns a Runner with the defaults used across experiments.
func NewRunner(p platform.Platform) *Runner {
	return &Runner{
		Platform:     p,
		Instructions: 1_200_000,
		Warmup:       250_000,
		Seed:         1,
	}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.NumCPU()
}

func (r *Runner) key(spec workload.Spec, mc MemConfig) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%g|%d|%v|%d",
		spec.Name, mc.Name, r.Platform.CPU.Name, r.Instructions, r.Warmup,
		r.SampleIntervalNs, r.SampleEveryCycles, r.PrefetchersOff, r.Seed)
}

// splitmix64 is the finalizer the per-cell seed derivation uses (the
// same mixer behind sim.Rand).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a cell identity string.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// deriveSeed maps a cell identity onto an independent seed stream:
// splitmix64 of the hashed "workload|config" identity mixed with the
// base seed. Because the derivation depends only on the cache key —
// never on execution order — parallel and sequential schedules produce
// bit-identical results.
//
// The workload instruction stream is seeded from the workload identity
// alone (config ""): Spa's differential analysis subtracts counters of
// the same workload on two configs, which is only meaningful when both
// runs execute the same instruction stream. Device and sibling-traffic
// state, which the differential is designed to expose, get the full
// per-cell seed.
func deriveSeed(workloadName, configName string, base uint64) uint64 {
	return splitmix64(fnv1a(workloadName+"|"+configName) ^ splitmix64(base))
}

// Run executes (or returns the cached) measurement of spec on mc.
// It is safe for concurrent use; equal cells are computed exactly once.
//
// Deprecated: use RunCtx, the context-first core this wraps with
// context.Background(). Experiments should go through
// ExperimentContext.Run, which threads the run's cancellation context.
func (r *Runner) Run(spec workload.Spec, mc MemConfig) Result {
	res, _ := r.RunCtx(context.Background(), RunRequest{Spec: spec, Config: mc})
	return res
}

// RunCtx executes (or returns the cached) measurement of one cell. If
// another goroutine is already computing the same cell, it waits for
// that computation instead of duplicating it; ctx cancels the wait (and
// refuses to start new work) but never aborts a simulation mid-run.
//
// RunCtx, RunAll, SlowdownCtx and SlowdownsCtx are the Runner's core
// API; the context-free names are deprecated wrappers kept for
// external callers.
func (r *Runner) RunCtx(ctx context.Context, req RunRequest) (Result, error) {
	res, _, err := r.runCtx(ctx, req)
	return res, err
}

// runCtx is RunCtx plus the cache outcome, which telemetry and the
// worker-span instrumentation consume.
func (r *Runner) runCtx(ctx context.Context, req RunRequest) (Result, cacheOutcome, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, cacheHit, err
	}
	res, oc, err := r.cache.get(ctx, r.key(req.Spec, req.Config), func() Result {
		return r.runOnce(req)
	})
	if err == nil {
		r.Obs.countCache(oc)
	}
	return res, oc, err
}

// RunAll executes a batch of cells across the worker pool and returns
// results in request order. It is the bulk primitive behind Slowdowns
// and the experiment engine's cell submission.
func (r *Runner) RunAll(ctx context.Context, reqs []RunRequest) ([]Result, error) {
	return r.runAll(ctx, reqs, nil)
}

// runAll fans reqs out over min(workers, len(reqs)) goroutines; onDone
// (optional) observes completions for progress reporting.
//
// When ctx carries a request-plane span (a traced job submission), each
// completed cell is additionally reported post-completion as a "cell"
// child span, from the timestamps this loop already takes — the
// simulated path below runCtx never sees the tracer, and with no span
// in ctx the per-cell cost is one nil comparison (zero allocations,
// benchmark-pinned in tracing_test.go).
func (r *Runner) runAll(ctx context.Context, reqs []RunRequest, onDone func()) ([]Result, error) {
	results := make([]Result, len(reqs))
	parent := tracespan.SpanFrom(ctx)
	workers := r.workers()
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, req := range reqs {
			sp := r.Obs.cellSpan(0, req)
			var t0 time.Time
			if parent != nil {
				t0 = time.Now()
			}
			res, oc, err := r.runCtx(ctx, req)
			endCellSpan(sp, oc)
			if err != nil {
				return nil, err
			}
			cellChild(parent, 0, req, t0, oc)
			results[i] = res
			if onDone != nil {
				onDone()
			}
		}
		return results, nil
	}

	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstEr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				sp := r.Obs.cellSpan(worker, reqs[i])
				var t0 time.Time
				if parent != nil {
					t0 = time.Now()
				}
				res, oc, err := r.runCtx(ctx, reqs[i])
				endCellSpan(sp, oc)
				if err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					continue
				}
				cellChild(parent, worker, reqs[i], t0, oc)
				results[i] = res
				if onDone != nil {
					onDone()
				}
			}
		}(w)
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

// cellChild reports one completed cell as a child span of the request
// trace. Recording is post-completion — the caller measured, then
// reports — so the simulated hot path never interacts with the tracer;
// a nil parent (untraced run) records nothing and allocates nothing.
func cellChild(parent *tracespan.Span, worker int, req RunRequest, t0 time.Time, oc cacheOutcome) {
	if parent == nil {
		return
	}
	parent.Child("cell", t0, time.Now(),
		tracespan.String("workload", req.Spec.Name),
		tracespan.String("config", req.Config.Name),
		tracespan.String("outcome", oc.String()),
		tracespan.String("worker", fmt.Sprint(worker)),
	)
}

// buildDevice is the single call site for MemConfig.Build: every device
// a Runner measures against is constructed here, from the cell-derived
// seed, under the purity contract documented on MemConfig.
func (r *Runner) buildDevice(mc MemConfig, seed uint64) mem.Device {
	return mc.Build(seed)
}

func (r *Runner) runOnce(req RunRequest) Result {
	spec, mc := req.Spec, req.Config
	cell := deriveSeed(spec.Name, mc.Name, r.Seed)
	stream := deriveSeed(spec.Name, "", r.Seed)
	dev := r.buildDevice(mc, cell)

	// Cycle-driven sampling attaches its device probe to the raw device
	// — before any observation wrapper — so CPMU state reads the
	// expander itself. Configs whose device is not a bare CXL expander
	// (Local, NUMA, topology wrappers) sample CPU counters only.
	var smp *sampler.Sampler
	if r.SampleEveryCycles > 0 {
		prober, _ := dev.(cxl.StateProber)
		smp = sampler.New(prober)
	}

	// Telemetry: observe the device path and time the cell. The observer
	// sees completed accesses only — it cannot change their timing — so
	// the measured Result is identical with telemetry on or off.
	var devObs *obs.DeviceObserver
	var wallStart time.Time
	if r.Obs != nil {
		devObs = obs.NewDeviceObserver()
		dev = mem.Observe(dev, devObs)
		wallStart = time.Now()
	}

	var machineDev mem.Device = dev
	if threads := spec.Siblings.BuildThreads(dev, cell+101); threads != nil {
		machineDev = core.NewContendedDevice(dev, threads)
	}
	instr := r.Instructions
	if spec.Instructions > 0 {
		instr = spec.Instructions
	}
	w := spec.Build(stream)
	cfg := core.Config{
		CPU:              r.Platform.CPU,
		Device:           machineDev,
		PrefetchersOff:   r.PrefetchersOff,
		MaxInstructions:  r.Warmup,
		SampleIntervalNs: r.SampleIntervalNs,
	}
	if smp != nil {
		cfg.Sampler = smp
		cfg.SampleEveryCycles = r.SampleEveryCycles
	}
	m := core.New(cfg)
	if syn, ok := w.(*workload.Synthetic); ok {
		m.SetRegions(syn.Arena().Objects())
	}
	if pl, ok := w.(workload.Preloader); ok {
		for _, o := range pl.PreloadObjects() {
			m.Preload(o.Base, o.Size)
		}
	}
	w.Run(m)
	before := m.Counters()
	m.SetMaxInstructions(r.Warmup + instr)
	w.Run(m)
	after := m.Counters()

	var sampled []sampler.Sample
	if smp != nil {
		sampled = smp.Samples()
	}

	if r.Obs != nil {
		ct := CellTiming{
			Workload: spec.Name,
			Config:   mc.Name,
			Platform: r.Platform.CPU.Name,
			Seed:     cell,
			WallMs:   float64(time.Since(wallStart)) / float64(time.Millisecond),
		}
		r.Obs.cellDone(ct, devObs)
		r.Obs.cellSampled(ct, sampled, wallStart)
	}

	return Result{
		Workload: spec.Name,
		Config:   mc.Name,
		Delta:    after.Delta(before),
		Samples:  m.Samples(),
		Sampled:  sampled,
		Regions:  m.RegionStats(),
	}
}

// SlowdownCtx measures spec's slowdown of target relative to the local
// baseline, S = (c_target - c_local) / c_local, submitting both cells
// as one batch under ctx.
func (r *Runner) SlowdownCtx(ctx context.Context, spec workload.Spec, target MemConfig) (float64, error) {
	out, err := r.SlowdownsCtx(ctx, []workload.Spec{spec}, target)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Slowdown measures spec's slowdown of target relative to the local
// baseline: S = (c_target - c_local) / c_local.
//
// Deprecated: use SlowdownCtx (or ExperimentContext.Slowdown inside
// experiments), which this wraps with context.Background().
func (r *Runner) Slowdown(spec workload.Spec, target MemConfig) float64 {
	out, _ := r.SlowdownCtx(context.Background(), spec, target)
	return out
}

// Slowdowns evaluates a workload set against one target config, fanning
// the baseline and target cells out across the worker pool.
//
// Deprecated: use SlowdownsCtx (or ExperimentContext.Slowdowns inside
// experiments), which this wraps with context.Background().
func (r *Runner) Slowdowns(specs []workload.Spec, target MemConfig) []float64 {
	out, _ := r.SlowdownsCtx(context.Background(), specs, target)
	return out
}

// SlowdownsCtx is Slowdowns with cancellation: it submits the full
// baseline + target cell set as one batch and derives the slowdowns
// from the results.
func (r *Runner) SlowdownsCtx(ctx context.Context, specs []workload.Spec, target MemConfig) ([]float64, error) {
	reqs := append(Cells(specs, Local(r.Platform)), Cells(specs, target)...)
	results, err := r.RunAll(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(specs))
	for i := range specs {
		base, tgt := results[i], results[len(specs)+i]
		if c := base.Cycles(); c > 0 {
			out[i] = (tgt.Cycles() - c) / c
		}
	}
	return out, nil
}

// resultCache is a sharded singleflight result store: the shard map
// bounds lock contention and the per-entry done channel lets concurrent
// requesters of one cell wait on a single computation.
type resultCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 32

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{}
	res  Result
}

// cacheOutcome classifies one cache lookup for telemetry: the requester
// computed the cell, found it complete, or waited on another computer.
type cacheOutcome uint8

const (
	cacheComputed cacheOutcome = iota
	cacheHit
	cacheWaited
)

// String implements fmt.Stringer.
func (o cacheOutcome) String() string {
	switch o {
	case cacheComputed:
		return "computed"
	case cacheHit:
		return "hit"
	case cacheWaited:
		return "waited"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

func (c *resultCache) get(ctx context.Context, key string, compute func() Result) (Result, cacheOutcome, error) {
	sh := &c.shards[fnv1a(key)%cacheShards]
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		if sh.m == nil {
			sh.m = map[string]*cacheEntry{}
		}
		sh.m[key] = e
		sh.mu.Unlock()
		// Leader: compute outside the shard lock, then publish. The
		// computation is never aborted mid-run so waiters always get a
		// completed result.
		e.res = compute()
		close(e.done)
		return e.res, cacheComputed, nil
	}
	sh.mu.Unlock()
	select {
	case <-e.done:
		return e.res, cacheHit, nil
	default:
	}
	select {
	case <-e.done:
		return e.res, cacheWaited, nil
	case <-ctx.Done():
		return Result{}, cacheWaited, ctx.Err()
	}
}
