package melody

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"time"

	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// This file is the one execution path behind every melody front end.
// The CLI parses flags into a spec.RunSpec; the job API decodes one
// from a POST body; both hand it to Execute. Keeping a single entry
// point is what makes the acceptance contract hold: an API-submitted
// spec and the equivalent CLI invocation run the same engine the same
// way and produce byte-identical manifests (equal content addresses).

// ExecHooks observes an Execute call. Every field is optional; hooks
// are called from the executing goroutine (Progress from the engine's
// serialized progress path) and must not block for long.
type ExecHooks struct {
	// Telemetry, when set, is attached to the engine and used to build
	// the outcome's Manifest. A nil Telemetry runs without observation
	// and without a manifest — the CLI's fast path when no artifact or
	// serving flag asked for one.
	Telemetry *Telemetry

	// Progress observes cell completions (engine Progress shape).
	Progress func(experimentID string, done, total int)

	// ExperimentStart/ExperimentEnd bracket each experiment. End fires
	// even when the run was interrupted during the experiment.
	ExperimentStart func(id, title string)
	ExperimentEnd   func(id string, wallS float64)

	// ReportDone delivers each completed experiment's report in spec
	// order; interrupted experiments never reach it.
	ReportDone func(id string, rep *Report, wallS float64)

	// Log, when set, receives structured run/experiment lifecycle lines,
	// each stamped with the spec's content hash. The job service passes
	// a logger pre-bound with job_id so one job's execution lines join
	// its queue-transition lines; nil is silent. Logging is pure
	// observation: manifests are byte-identical with and without it.
	Log *slog.Logger
}

// ExecOutcome is what one spec execution produced.
type ExecOutcome struct {
	// Spec is the normalized spec that ran.
	Spec spec.RunSpec
	// Reports holds one report per completed experiment, in spec order.
	Reports []*Report
	// Timings mirrors Reports with wall times.
	Timings []ExperimentTiming
	// Interrupted marks a run cut short by context cancellation; the
	// outcome (and manifest) covers only the completed prefix.
	Interrupted bool
	// Manifest is the run manifest, built when Telemetry was attached
	// (nil otherwise). Its SpecHash is the spec's content address.
	Manifest *Manifest
}

// ResolveSpec normalizes and validates sp and resolves its experiment
// ids against the registry, returning the experiments in spec order.
func ResolveSpec(sp spec.RunSpec) (spec.RunSpec, []Experiment, error) {
	n := sp.Normalized()
	if err := n.Validate(); err != nil {
		return n, nil, err
	}
	exps := make([]Experiment, 0, len(n.Experiments))
	for _, id := range n.Experiments {
		e, ok := ExperimentByID(id)
		if !ok {
			return n, nil, fmt.Errorf("unknown experiment %q (try `melody list`)", id)
		}
		exps = append(exps, e)
	}
	return n, exps, nil
}

// VetSpec reports whether sp could execute: structurally valid and
// every experiment id registered. The job queue uses it as its
// admission check so a doomed spec is rejected at POST time, not
// discovered as a failed job.
func VetSpec(sp spec.RunSpec) error {
	_, _, err := ResolveSpec(sp)
	return err
}

// Execute runs sp to completion (or to ctx cancellation) on a fresh
// Engine and returns the outcome. Cancellation is graceful and mirrors
// the CLI's SIGINT behaviour: in-flight cells finish, no new work
// starts, and the outcome — including a partial manifest flagged
// Interrupted — covers everything that completed. Execute returns an
// error only for specs that cannot run at all (invalid, unknown ids);
// an interrupted run is a valid outcome, not an error.
func Execute(ctx context.Context, sp spec.RunSpec, h ExecHooks) (ExecOutcome, error) {
	n, exps, err := ResolveSpec(sp)
	if err != nil {
		return ExecOutcome{}, err
	}
	RegisterWorkloads()

	log := h.Log
	if log == nil {
		log = svclog.Discard()
	}
	// The spec hash is the run's identity everywhere (manifest SpecHash,
	// job store key, log correlation); compute it once up front.
	hash, hashErr := n.Hash()
	// When the caller's ctx carries an active span (the job worker's
	// exec span, or any traced entry point), the whole run becomes a
	// child span and each experiment below it another — purely
	// observational, like the log lines: with no span in ctx every
	// tracespan call is a nil no-op and nothing here allocates.
	ctx, runSpan := tracespan.Start(ctx, "run",
		tracespan.String(svclog.KeySpecHash, hash),
		tracespan.String("experiments", fmt.Sprint(len(exps))),
	)
	defer runSpan.End()
	log.Info("run started",
		svclog.KeySpecHash, hash,
		"experiments", len(exps),
		"workloads", n.Workloads,
		"workers", n.Workers,
		"seed", n.Seed,
	)

	eng := NewEngine(Options{
		MaxWorkloads:      n.Workloads,
		Instructions:      n.Instructions,
		Warmup:            n.Warmup,
		DurationNs:        n.DurationNs,
		SampleEveryCycles: n.SampleEveryCycles,
		Seed:              n.Seed,
	})
	eng.Workers = n.Workers
	eng.Obs = h.Telemetry
	eng.Progress = h.Progress

	out := ExecOutcome{Spec: n}
	// Run under a spec_hash pprof label: host CPU profiles captured while
	// this run executes (internal/obs/hostprof) attribute its samples to
	// the spec, alongside the job_id label the job worker already set.
	// Labels are inherited by every goroutine the engine spawns inside
	// this scope; like the log lines, they are pure observation.
	pprof.Do(ctx, pprof.Labels(svclog.KeySpecHash, hash), func(ctx context.Context) {
		for _, e := range exps {
			if ctx.Err() != nil {
				out.Interrupted = true
				runSpan.SetAttr("interrupted", "true")
				break
			}
			if h.ExperimentStart != nil {
				h.ExperimentStart(e.ID, e.Title)
			}
			log.Debug("experiment started", svclog.KeySpecHash, hash, "experiment", e.ID, "title", e.Title)
			start := time.Now()
			rep := eng.Run(ctx, e)
			wallS := time.Since(start).Seconds()
			if h.ExperimentEnd != nil {
				h.ExperimentEnd(e.ID, wallS)
			}
			log.Info("experiment finished",
				svclog.KeySpecHash, hash, "experiment", e.ID,
				"wall_s", wallS, "interrupted", ctx.Err() != nil)
			if ctx.Err() != nil {
				// The experiment was cut mid-flight: its report covers an
				// arbitrary prefix of its cells, so it is not recorded.
				out.Interrupted = true
				runSpan.SetAttr("interrupted", "true")
				break
			}
			out.Reports = append(out.Reports, rep)
			out.Timings = append(out.Timings, ExperimentTiming{ID: e.ID, WallS: wallS})
			if h.ReportDone != nil {
				h.ReportDone(e.ID, rep, wallS)
			}
		}
	})

	if h.Telemetry != nil {
		m := BuildManifest(n.Seed, n.Workers, n.Workloads, out.Timings, h.Telemetry)
		m.Interrupted = out.Interrupted
		if hashErr == nil {
			m.SpecHash = hash
		}
		out.Manifest = &m
	}
	log.Info("run finished",
		svclog.KeySpecHash, hash,
		"experiments_completed", len(out.Reports),
		"interrupted", out.Interrupted,
	)
	return out, nil
}
