package melody

import (
	"fmt"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/workload"
)

// selectWorkloads subsamples the catalog evenly (keeping suite
// diversity by stride) to at most max entries.
func selectWorkloads(max int) []workload.Spec {
	RegisterWorkloads()
	all := workload.Catalog()
	if max <= 0 || max >= len(all) {
		return all
	}
	out := make([]workload.Spec, 0, max)
	stride := float64(len(all)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, all[int(float64(i)*stride)])
	}
	return out
}

// cdfSummary prints the slowdown CDF highlights the paper quotes.
func cdfSummary(r *Report, name string, slowdowns []float64) {
	sorted := sortedCopy(slowdowns)
	r.Printf("  %-12s <5%%: %4.0f%%  <10%%: %4.0f%%  <50%%: %4.0f%%  p90: %6.1f%%  max: %7.1f%%",
		name,
		fractionBelow(sorted, 0.05)*100,
		fractionBelow(sorted, 0.10)*100,
		fractionBelow(sorted, 0.50)*100,
		stats.PercentileSorted(sorted, 90)*100,
		stats.PercentileSorted(sorted, 100)*100)
}

// Fig8a regenerates the slowdown CDFs over the catalog for NUMA and the
// four CXL devices on EMR (Figures 8a and 8b).
func Fig8a(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig8a", Title: "Slowdown CDFs across devices (EMR host)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	emr := platform.EMR2S()
	emrP := platform.EMR2SPrime()
	run := ec.Runner(emr)
	runP := ec.Runner(emrP)

	// The paper evaluates only 60 workloads on CXL-C (16 GB capacity).
	small := specs
	if len(small) > 60 {
		small = small[:60]
	}
	cells := Cells(specs, Local(emr), NUMA(emr), CXL(emr, cxl.ProfileA()), CXL(emr, cxl.ProfileB()))
	cells = append(cells, Cells(small, CXL(emr, cxl.ProfileC()))...)
	ec.Declare(run, cells)
	ec.Declare(runP, Cells(specs, Local(emrP), CXL(emrP, cxl.ProfileD())))

	r.Printf("%d workloads:", len(specs))
	cdfSummary(r, "NUMA", ec.Slowdowns(run, specs, NUMA(emr)))
	cdfSummary(r, "CXL-D", ec.Slowdowns(runP, specs, CXL(emrP, cxl.ProfileD())))
	cdfSummary(r, "CXL-A", ec.Slowdowns(run, specs, CXL(emr, cxl.ProfileA())))
	cdfSummary(r, "CXL-B", ec.Slowdowns(run, specs, CXL(emr, cxl.ProfileB())))
	cdfSummary(r, "CXL-C", ec.Slowdowns(run, small, CXL(emr, cxl.ProfileC())))
	r.Note("ordering NUMA <= CXL-D <= CXL-A <= CXL-B <= CXL-C across the CDF")
	r.Note("many workloads tolerate CXL: tens of percent of the catalog under 10%% slowdown on D/A")
	r.Note("a bandwidth-bound tail reaches 1.5-5.8x on CXL-A/B but not on NUMA/CXL-D")
	return r
}

// Fig8c regenerates the CXL+NUMA vs 2-hop-NUMA comparison: despite
// better nominal latency/bandwidth, CXL+NUMA behaves worse for many
// workloads because of tail pathologies.
func Fig8c(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig8c", Title: "CXL+NUMA vs 2-hop NUMA (SKX8S-410ns)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	// The paper uses the 121 workloads runnable on both setups; we use
	// the non-bandwidth classes (the comparison is about latency).
	var subset []workload.Spec
	for _, s := range specs {
		if s.Class != workload.ClassBandwidth {
			subset = append(subset, s)
		}
	}
	emr := platform.EMR2S()
	skx8 := platform.SKX8S()
	runEMR := ec.Runner(emr)
	runSKX := ec.Runner(skx8)
	ec.Declare(runEMR, Cells(subset, Local(emr), CXL(emr, cxl.ProfileA()), CXLNUMA(emr, cxl.ProfileA())))
	ec.Declare(runSKX, Cells(subset, Local(skx8), NUMA(skx8)))

	r.Printf("%d workloads:", len(subset))
	cdfSummary(r, "CXL-A", ec.Slowdowns(runEMR, subset, CXL(emr, cxl.ProfileA())))
	cdfSummary(r, "SKX8S-410ns", ec.Slowdowns(runSKX, subset, NUMA(skx8)))
	cdfSummary(r, "CXL-A+NUMA", ec.Slowdowns(runEMR, subset, CXLNUMA(emr, cxl.ProfileA())))
	r.Note("CXL-A+NUMA is worse than plain 410 ns NUMA for much of the CDF despite better nominal specs")
	return r
}

// recordingDevice captures per-demand-read latencies.
type recordingDevice struct {
	inner mem.Device
	lats  []float64
}

func (d *recordingDevice) Name() string           { return d.inner.Name() }
func (d *recordingDevice) Reset()                 { d.inner.Reset(); d.lats = nil }
func (d *recordingDevice) Stats() mem.DeviceStats { return d.inner.Stats() }
func (d *recordingDevice) Access(now float64, addr uint64, kind mem.Kind) float64 {
	done := d.inner.Access(now, addr, kind)
	if kind == mem.DemandRead && len(d.lats) < 400_000 {
		d.lats = append(d.lats, done-now)
	}
	return done
}

// Fig8d regenerates the omnetpp deep-dive: memory-latency distributions
// under CXL-A vs CXL-A+NUMA at full, half, and quarter intensity.
// Its configs are latency-recording wrappers (impure by design) and its
// specs are intensity-scaled variants sharing the catalog name, so each
// intensity runs on an isolated runner rather than the shared cache.
func Fig8d(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig8d", Title: "520.omnetpp latency CDFs and load scaling"}
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("520.omnetpp_r")

	intensities := []struct {
		name  string
		scale float64
	}{{"full", 1}, {"1/2 load", 0.5}, {"1/4 load", 0.25}}

	for _, in := range intensities {
		// Scaling the paper's way: fewer simulated LANs shrink both the
		// event rate and the network state.
		s := spec
		s.Profile.MemRatio *= in.scale
		s.Profile.WorkingSetMB *= in.scale
		if in.scale > 0 {
			s.Siblings.DelayNs /= in.scale
		}
		run := ec.IsolatedRunner(emr)
		base := ec.Run(run, s, Local(emr))
		for _, mc := range []MemConfig{CXL(emr, cxl.ProfileA()), CXLNUMA(emr, cxl.ProfileA())} {
			// Record device-level latencies during the run.
			rec := &recordingDevice{}
			mcRec := MemConfig{Name: mc.Name, Build: func(seed uint64) mem.Device {
				rec.inner = mc.Build(seed)
				return rec
			}}
			tgt := ec.Run(run, s, mcRec)
			slow := (tgt.Cycles() - base.Cycles()) / base.Cycles()
			ps := stats.Percentiles(rec.lats, 50, 98, 99.9)
			r.Printf("  %-9s %-12s slowdown %6.1f%%  lat p50 %5.0f  p98 %6.0f  p99.9 %7.0f ns",
				in.name, mc.Name, slow*100, ps[0], ps[1], ps[2])
		}
	}
	r.Note("CXL-A+NUMA slowdown far exceeds plain CXL-A; its latency tail starts by ~p98")
	r.Note("halving and quartering intensity collapses both the tail and the slowdown")
	return r
}

// Fig8e contrasts SPR and EMR: the bigger LLC alone does not change the
// slowdown picture.
func Fig8e(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig8e", Title: "SPR vs EMR slowdown CDFs (CXL-A/B)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	spr, emr := platform.SPR2S(), platform.EMR2S()
	runSPR, runEMR := ec.Runner(spr), ec.Runner(emr)
	ec.Declare(runSPR, Cells(specs, Local(spr), CXL(spr, cxl.ProfileA()), CXL(spr, cxl.ProfileB())))
	ec.Declare(runEMR, Cells(specs, Local(emr), CXL(emr, cxl.ProfileA()), CXL(emr, cxl.ProfileB())))
	cdfSummary(r, "SPR:CXL-A", ec.Slowdowns(runSPR, specs, CXL(spr, cxl.ProfileA())))
	cdfSummary(r, "EMR:CXL-A", ec.Slowdowns(runEMR, specs, CXL(emr, cxl.ProfileA())))
	cdfSummary(r, "SPR:CXL-B", ec.Slowdowns(runSPR, specs, CXL(spr, cxl.ProfileB())))
	cdfSummary(r, "EMR:CXL-B", ec.Slowdowns(runEMR, specs, CXL(emr, cxl.ProfileB())))
	r.Note("EMR's larger LLC leaves the slowdown pattern similar to SPR")
	return r
}

// Fig8f compares NUMA vs one and two hardware-interleaved CXL-D devices
// over the SPEC suite: matching bandwidth closes most of the gap.
func Fig8f(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig8f", Title: "NUMA vs CXL-D x1/x2 (SPEC CPU 2017 on EMR')"}
	RegisterWorkloads()
	specs := workload.BySuite("SPEC CPU 2017")
	if ec.Opts.MaxWorkloads > 0 && ec.Opts.MaxWorkloads < len(specs) {
		specs = specs[:ec.Opts.MaxWorkloads]
	}
	emrP := platform.EMR2SPrime()
	run := ec.Runner(emrP)
	ec.Declare(run, Cells(specs, Local(emrP), NUMA(emrP),
		CXLInterleave(emrP, cxl.ProfileD(), 2), CXL(emrP, cxl.ProfileD())))
	cdfSummary(r, "NUMA*", ec.Slowdowns(run, specs, NUMA(emrP)))
	cdfSummary(r, "CXL-D x2", ec.Slowdowns(run, specs, CXLInterleave(emrP, cxl.ProfileD(), 2)))
	cdfSummary(r, "CXL-D x1", ec.Slowdowns(run, specs, CXL(emrP, cxl.ProfileD())))
	r.Note("interleaving two CXL-D devices reduces the worst slowdowns toward the NUMA curve")
	return r
}

// Fig9a regenerates the violin plot data: slowdown distributions for
// the catalog across all 11 latency setups.
func Fig9a(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig9a", Title: "Slowdown distributions across 11 setups (140-410 ns)"}
	specs := selectWorkloads(ec.Opts.MaxWorkloads)
	for _, setup := range platform.LatencySetups() {
		run := ec.Runner(setup.Platform)
		mc := MemConfig{Name: setup.Name, Build: setup.Build}
		ec.Declare(run, Cells(specs, Local(setup.Platform), mc))
		s := ec.Slowdowns(run, specs, mc)
		sum := stats.Summarize(s)
		r.Printf("  %-12s (ref %3.0f ns): p25 %6.1f%%  p50 %6.1f%%  p75 %6.1f%%  p90 %7.1f%%  max %8.1f%%  [<10%%: %3.0f%%, <50%%: %3.0f%%]",
			setup.Name, setup.RefLatencyNs,
			sum.P25*100, sum.P50*100, sum.P75*100, sum.P90*100, sum.Max*100,
			fractionBelow(s, 0.10)*100, fractionBelow(s, 0.50)*100)
	}
	r.Note("slowdowns worsen with setup latency; at 410 ns a meaningful fraction still stays under 10%%")
	return r
}

// Fig9b regenerates the YCSB slowdowns on the Redis-like and
// VoltDB-like stores under NUMA, CXL-A, CXL-B.
func Fig9b(ec *ExperimentContext) *Report {
	r := &Report{ID: "fig9b", Title: "YCSB A-F slowdowns on Redis and VoltDB"}
	RegisterWorkloads()
	emr := platform.EMR2S()
	run := ec.Runner(emr)
	configs := []MemConfig{NUMA(emr), CXL(emr, cxl.ProfileA()), CXL(emr, cxl.ProfileB())}
	var specs []workload.Spec
	for _, store := range []string{"redis-ycsb-", "voltdb-ycsb-"} {
		for _, wl := range []string{"A", "B", "C", "D", "E", "F"} {
			if spec, ok := workload.ByName(store + wl); ok {
				specs = append(specs, spec)
			}
		}
	}
	ec.Declare(run, Cells(specs, append([]MemConfig{Local(emr)}, configs...)...))
	for _, spec := range specs {
		line := "  " + spec.Name + ":"
		for _, mc := range configs {
			line += "  " + mc.Name + " " + percent(ec.Slowdown(run, spec, mc))
		}
		r.Printf("%s", line)
	}
	r.Note("slowdowns grow super-linearly from NUMA to CXL-A to CXL-B")
	r.Note("both stores degrade super-linearly; the SQL-heavy table store dilutes memory time slightly")
	return r
}

// percent formats a slowdown fraction as "12.3%".
func percent(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

var _ = core.Sample{} // reserved for future sampling-based figures
