package melody

import (
	"sort"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/sampler"
)

// Trace track layout: the engine's experiment phases render as one
// process, the runner's worker pool as another (one track per worker,
// showing occupancy over time). Sampled cells get one process each,
// numbered upward from tracePidSamples, holding that cell's counter
// tracks.
const (
	tracePidEngine  = 1
	tracePidWorkers = 2
	tracePidSamples = 100
)

// CellTiming is one executed cell's engine-side cost, collected for the
// -metrics run manifest. WallMs is host wall time, not simulated time.
type CellTiming struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"`
	Platform string  `json:"platform"`
	Seed     uint64  `json:"seed"`
	WallMs   float64 `json:"wall_ms"`
}

// Telemetry aggregates engine observability: a Registry of counters and
// histograms (cache outcomes, per-cell wall times, per-config device
// latency breakdowns), an optional Trace of spans (experiment phases,
// worker occupancy), and the per-cell timing log. Attach one to an
// Engine (or Runner) to enable collection; a nil *Telemetry disables
// everything at the cost of a nil check.
//
// Telemetry observes the engine, it never steers it: results — and the
// reports rendered from them — are byte-identical with and without a
// Telemetry attached, which TestTelemetryDoesNotPerturbReport pins.
type Telemetry struct {
	Registry *obs.Registry
	// Trace, when non-nil, records spans. Set it before running.
	Trace *obs.Trace

	cacheMiss    *obs.Counter
	cacheHit     *obs.Counter
	cacheWait    *obs.Counter
	cellsRun     *obs.Counter
	cellsSampled *obs.Counter
	cellWall     *obs.Histogram

	mu      sync.Mutex
	exp     string // current experiment id (engine-stamped)
	cells   []CellTiming
	sampled []SampledSeries
}

// SampledSeries is one cell's cycle-driven sampled stream, kept for
// the -metrics time-series export and the simulated-time profile
// assembly. Experiment is the experiment that computed the cell; with
// the engine's cross-experiment cache a cell shared by several
// experiments is recorded once, under the experiment that ran first.
type SampledSeries struct {
	Workload   string           `json:"workload"`
	Config     string           `json:"config"`
	Platform   string           `json:"platform"`
	Experiment string           `json:"experiment,omitempty"`
	Samples    []sampler.Sample `json:"samples"`
}

// NewTelemetry returns a Telemetry with a fresh Registry and no Trace.
func NewTelemetry() *Telemetry {
	reg := obs.NewRegistry()
	return &Telemetry{
		Registry:     reg,
		cacheMiss:    reg.Counter("runner/cache_miss"),
		cacheHit:     reg.Counter("runner/cache_hit"),
		cacheWait:    reg.Counter("runner/cache_wait"),
		cellsRun:     reg.Counter("runner/cells_run"),
		cellsSampled: reg.Counter("runner/cells_sampled"),
		cellWall:     reg.Histogram("runner/cell_wall_ms"),
	}
}

// CacheStats is a live read of the runner cache-outcome counters,
// consumed by the observatory's /progress endpoint. Taken from atomics,
// so reading it mid-run never blocks the engine.
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Waits   uint64  `json:"waits"`
	HitRate float64 `json:"hit_rate"`
}

// CacheStats returns the current cache-outcome counts (zero on nil).
func (t *Telemetry) CacheStats() CacheStats {
	if t == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Hits:   t.cacheHit.Value(),
		Misses: t.cacheMiss.Value(),
		Waits:  t.cacheWait.Value(),
	}
	if total := s.Hits + s.Misses + s.Waits; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// CellsRun returns the number of cells computed so far (lock-free).
func (t *Telemetry) CellsRun() uint64 {
	if t == nil {
		return 0
	}
	return t.cellsRun.Value()
}

// CellWallSummary digests the per-cell wall-time histogram. It holds
// only that histogram's lock, for one pass over its buckets.
func (t *Telemetry) CellWallSummary() obs.Summary {
	if t == nil {
		return obs.Summary{}
	}
	return t.cellWall.Summarize()
}

// Cells returns a copy of the per-cell timing log.
func (t *Telemetry) Cells() []CellTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]CellTiming(nil), t.cells...)
}

// countCache records one cache lookup's outcome.
func (t *Telemetry) countCache(oc cacheOutcome) {
	if t == nil {
		return
	}
	switch oc {
	case cacheComputed:
		t.cacheMiss.Inc()
	case cacheHit:
		t.cacheHit.Inc()
	case cacheWaited:
		t.cacheWait.Inc()
	}
}

// cellDone logs one computed cell: its wall time and, when a device
// observer ran, its latency breakdown merged into the registry under
// "device/<platform>/<config>/...".
func (t *Telemetry) cellDone(ct CellTiming, do *obs.DeviceObserver) {
	if t == nil {
		return
	}
	t.cellsRun.Inc()
	t.cellWall.Record(ct.WallMs)
	do.MergeInto(t.Registry, "device/"+ct.Platform+"/"+ct.Config)
	t.mu.Lock()
	t.cells = append(t.cells, ct)
	t.mu.Unlock()
}

// cellSampled records one cell's sampled stream: into the time-series
// log for the -metrics export, and — when a trace is attached — as
// Perfetto counter tracks under a per-cell process, with simulated time
// mapped onto the cell's wall-clock span so the tracks line up with
// the worker span that computed them.
func (t *Telemetry) cellSampled(ct CellTiming, samples []sampler.Sample, wallStart time.Time) {
	if t == nil || len(samples) == 0 {
		return
	}
	t.cellsSampled.Inc()
	t.mu.Lock()
	t.sampled = append(t.sampled, SampledSeries{
		Workload: ct.Workload, Config: ct.Config, Platform: ct.Platform,
		Experiment: t.exp, Samples: samples,
	})
	pid := tracePidSamples + len(t.sampled) - 1
	t.mu.Unlock()
	if t.Trace == nil {
		return
	}
	t.Trace.SetProcessName(pid, "samples: "+ct.Workload+" @ "+ct.Config)
	startUs := t.Trace.StampUs(wallStart)
	sampler.AppendCounterTracks(t.Trace, pid, samples, startUs, startUs+ct.WallMs*1000)
}

// SampledSeries returns the collected per-cell streams sorted by
// (workload, config, platform, experiment) — a deterministic order
// regardless of worker scheduling.
func (t *Telemetry) SampledSeries() []SampledSeries {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SampledSeries(nil), t.sampled...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Config != out[j].Config {
			return out[i].Config < out[j].Config
		}
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Experiment < out[j].Experiment
	})
	return out
}

// beginExperiment stamps subsequently sampled cells with the running
// experiment's id. The engine calls it at the top of each Run;
// experiments execute sequentially per engine, so the stamp — and the
// per-experiment profile grouping built on it — is deterministic.
func (t *Telemetry) beginExperiment(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.exp = id
	t.mu.Unlock()
}

// cellSpan opens a trace span on the worker's track covering one cell
// submission (compute, cache hit, or wait on another worker's compute).
func (t *Telemetry) cellSpan(worker int, req RunRequest) obs.Span {
	if t == nil || t.Trace == nil {
		return obs.Span{}
	}
	t.Trace.SetProcessName(tracePidWorkers, "runner workers")
	t.Trace.SetThreadName(tracePidWorkers, worker, "worker")
	return t.Trace.Begin(tracePidWorkers, worker, req.Spec.Name+" @ "+req.Config.Name, "cell")
}

// endCellSpan completes a cell span, attaching the cache outcome. The
// inactive (telemetry-off) path builds no args and allocates nothing.
func endCellSpan(sp obs.Span, oc cacheOutcome) {
	if !sp.Active() {
		return
	}
	sp.EndWith(map[string]any{"outcome": oc.String()})
}

// experimentSpan opens a trace span covering one experiment phase.
func (t *Telemetry) experimentSpan(id, title string) obs.Span {
	if t == nil || t.Trace == nil {
		return obs.Span{}
	}
	t.Trace.SetProcessName(tracePidEngine, "melody engine")
	t.Trace.SetThreadName(tracePidEngine, 0, "experiments")
	sp := t.Trace.Begin(tracePidEngine, 0, id, "experiment")
	t.Trace.Instant(tracePidEngine, 0, title, "experiment", nil)
	return sp
}
