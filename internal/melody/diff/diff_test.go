package diff

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/sampler"
)

// baseManifest builds a manifest with one latency histogram, one stall
// counter, one sampled stream, and one cell — the full gating surface.
func baseManifest() melody.Manifest {
	var snap counters.Snapshot
	snap[counters.Cycles] = 1_000_000
	snap[counters.StallsL3Miss] = 40_000
	snap[counters.Instructions] = 400_000
	return melody.Manifest{
		Tool: "melody", Seed: 7, Workers: 4, Workloads: 8,
		Cells: []melody.CellTiming{
			{Workload: "w1", Config: "CXL-B", Platform: "EMR2S", Seed: 11, WallMs: 5},
		},
		Timeseries: []melody.SampledSeries{{
			Workload: "w1", Config: "CXL-B", Platform: "EMR2S", Experiment: "fig5",
			Samples: []sampler.Sample{
				{TimeNs: 100, Counters: counters.Snapshot{}, HasDevice: true,
					Device: cxl.CPMUState{ReadGBs: 10, WriteGBs: 4}},
				{TimeNs: 200, Counters: snap, HasDevice: true,
					Device: cxl.CPMUState{ReadGBs: 12, WriteGBs: 6}},
			},
		}},
		Registry: obs.Snapshot{
			Counters: map[string]uint64{
				"device/EMR2S/CXL-B/hiccup_stalls": 100,
				"runner/cache_hit":                 5,
			},
			Gauges: map[string]float64{},
			Histograms: map[string]obs.Summary{
				"device/EMR2S/CXL-B/latency_ns": {Count: 1000, Mean: 400, P99: 900},
				"runner/cell_wall_ms":           {Count: 1, Mean: 5, P99: 5},
			},
		},
	}
}

func TestCompareIdenticalIsClean(t *testing.T) {
	rep := Compare(baseManifest(), baseManifest(), Options{})
	if rep.HasRegressions() || len(rep.Improvements) != 0 {
		t.Fatalf("identical manifests produced deltas: %+v", rep)
	}
	if rep.Within == 0 {
		t.Fatal("no gated metrics were compared")
	}
	if len(rep.Notes) != 0 || len(rep.OnlyOld) != 0 || len(rep.OnlyNew) != 0 {
		t.Fatalf("identical manifests produced notes: %+v", rep)
	}
}

func TestCompareLatencyRegression(t *testing.T) {
	newM := baseManifest()
	h := newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]
	h.Mean, h.P99 = 480, 1100 // +20%, +22%
	newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"] = h

	rep := Compare(baseManifest(), newM, Options{Threshold: 0.05})
	if !rep.HasRegressions() || len(rep.Regressions) != 2 {
		t.Fatalf("latency regression missed: %+v", rep.Regressions)
	}
	// Worst offender first.
	if rep.Regressions[0].Metric != "device/EMR2S/CXL-B/latency_ns p99" {
		t.Fatalf("order = %v", rep.Regressions)
	}
	if d := rep.Regressions[1]; math.Abs(d.RelDelta-0.20) > 1e-9 || !d.Regressed {
		t.Fatalf("mean delta = %+v", d)
	}
}

func TestCompareLatencyImprovementAndThreshold(t *testing.T) {
	newM := baseManifest()
	h := newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]
	h.Mean = 320 // -20%: improvement
	h.P99 = 909  // +1%: within default 5%
	newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"] = h

	rep := Compare(baseManifest(), newM, Options{})
	if rep.HasRegressions() {
		t.Fatalf("improvement flagged as regression: %+v", rep.Regressions)
	}
	if len(rep.Improvements) != 1 || !rep.Improvements[0].Improved {
		t.Fatalf("improvements = %+v", rep.Improvements)
	}
}

func TestCompareBandwidthLowerIsWorse(t *testing.T) {
	newM := baseManifest()
	for i := range newM.Timeseries[0].Samples {
		newM.Timeseries[0].Samples[i].Device.ReadGBs *= 0.5
	}
	rep := Compare(baseManifest(), newM, Options{})
	if len(rep.Regressions) != 1 ||
		rep.Regressions[0].Metric != "w1 @ CXL-B @ EMR2S @ fig5 read_gbs" {
		t.Fatalf("bandwidth drop missed: %+v", rep.Regressions)
	}
	// Bandwidth *gain* is an improvement, not a regression.
	gain := baseManifest()
	for i := range gain.Timeseries[0].Samples {
		gain.Timeseries[0].Samples[i].Device.WriteGBs *= 2
	}
	rep = Compare(baseManifest(), gain, Options{})
	if rep.HasRegressions() || len(rep.Improvements) != 1 {
		t.Fatalf("bandwidth gain misclassified: %+v", rep)
	}
}

func TestCompareSpaCounterRegression(t *testing.T) {
	newM := baseManifest()
	last := len(newM.Timeseries[0].Samples) - 1
	newM.Timeseries[0].Samples[last].Counters[counters.StallsL3Miss] *= 2
	rep := Compare(baseManifest(), newM, Options{})
	if len(rep.Regressions) != 1 ||
		!strings.HasSuffix(rep.Regressions[0].Metric, counters.StallsL3Miss.String()) {
		t.Fatalf("stall counter regression missed: %+v", rep.Regressions)
	}
}

func TestCompareStallCounterAndHostTimeHandling(t *testing.T) {
	newM := baseManifest()
	newM.Registry.Counters["device/EMR2S/CXL-B/hiccup_stalls"] = 200
	// Host wall-time histogram changes must never gate.
	newM.Registry.Histograms["runner/cell_wall_ms"] = obs.Summary{Count: 1, Mean: 5000, P99: 5000}
	// Cache-outcome counters inform, never gate.
	newM.Registry.Counters["runner/cache_hit"] = 0

	rep := Compare(baseManifest(), newM, Options{})
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "device/EMR2S/CXL-B/hiccup_stalls" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
}

func TestCompareNotesAndAlignment(t *testing.T) {
	oldM, newM := baseManifest(), baseManifest()
	newM.Seed = 8
	newM.Interrupted = true
	newM.Cells[0].Seed = 99
	newM.Registry.Histograms["device/EMR2S/Local/latency_ns"] = obs.Summary{Count: 1, Mean: 100}
	delete(newM.Registry.Counters, "runner/cache_hit")
	h := newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]
	h.Count = 999
	newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"] = h

	rep := Compare(oldM, newM, Options{})
	joined := strings.Join(rep.Notes, "\n")
	for _, want := range []string{"seed differs", "interrupted run", "derived seed changed", "sample count drifted"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "histogram device/EMR2S/Local/latency_ns" {
		t.Fatalf("only_new = %v", rep.OnlyNew)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "counter runner/cache_hit" {
		t.Fatalf("only_old = %v", rep.OnlyOld)
	}
}

func TestCompareZeroOldValue(t *testing.T) {
	oldM, newM := baseManifest(), baseManifest()
	oldM.Registry.Counters["device/EMR2S/CXL-B/hiccup_stalls"] = 0
	rep := Compare(oldM, newM, Options{})
	if len(rep.Regressions) != 1 || !math.IsInf(rep.Regressions[0].RelDelta, 1) {
		t.Fatalf("zero->nonzero not flagged: %+v", rep.Regressions)
	}
	// Zero on both sides is clean.
	newM.Registry.Counters["device/EMR2S/CXL-B/hiccup_stalls"] = 0
	if rep := Compare(oldM, newM, Options{}); rep.HasRegressions() {
		t.Fatalf("zero==zero flagged: %+v", rep.Regressions)
	}
}

func TestReportTableAndJSON(t *testing.T) {
	newM := baseManifest()
	h := newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"]
	h.Mean = 480
	newM.Registry.Histograms["device/EMR2S/CXL-B/latency_ns"] = h
	rep := Compare(baseManifest(), newM, Options{})
	rep.OldPath, rep.NewPath = "a.json", "b.json"

	table := rep.Table()
	for _, want := range []string{"a.json vs b.json", "REGR", "latency_ns mean", "+20.0%"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Regressions) != 1 || round.Regressions[0].Metric != rep.Regressions[0].Metric {
		t.Fatalf("JSON round trip lost regressions: %+v", round)
	}

	clean := Compare(baseManifest(), baseManifest(), Options{})
	if got := clean.Table(); !strings.Contains(got, "no changes beyond threshold") {
		t.Fatalf("clean table:\n%s", got)
	}
}

func TestCompareDefaultThreshold(t *testing.T) {
	rep := Compare(baseManifest(), baseManifest(), Options{})
	if rep.Threshold != DefaultThreshold {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
	rep = Compare(baseManifest(), baseManifest(), Options{Threshold: 0.2})
	if rep.Threshold != 0.2 {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
}
