// Package diff is the cross-run regression gate: it aligns two
// -metrics run manifests cell by cell and metric by metric, computes
// direction-aware relative deltas, and classifies each against a noise
// threshold. The paper's method (Spa) is differential analysis between
// configurations of one run; melodydiff applies the same idea between
// *runs* — old binary vs new binary, old calibration vs new — turning
// the manifest the engine already emits into a CI perf gate.
//
// Alignment keys are identity, not order: registry series align by
// metric path (which embeds platform and memory config), sampled
// streams by (workload, config, platform, experiment). Host wall-time
// fields are deliberately excluded from gating — they measure the CI
// machine, not the simulator — so the gate only trips on simulated-
// time changes, which are deterministic per seed.
package diff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/melody"
)

// DefaultThreshold is the relative noise threshold: simulated metrics
// are deterministic per seed, so even small true deltas are signal,
// but calibration tweaks legitimately move latencies by a few percent.
const DefaultThreshold = 0.05

// Options configures a comparison.
type Options struct {
	// Threshold is the relative delta beyond which a change in the
	// worse direction is a regression (0 = DefaultThreshold).
	Threshold float64
}

// Direction classifies what "worse" means for a metric.
type Direction string

const (
	// HigherWorse marks latencies and stall counts.
	HigherWorse Direction = "higher_is_worse"
	// LowerWorse marks bandwidths and throughputs.
	LowerWorse Direction = "lower_is_worse"
	// Info marks metrics reported but never gated (host times, cache
	// outcome counts).
	Info Direction = "info"
)

// Delta is one aligned metric's comparison.
type Delta struct {
	Metric    string    `json:"metric"`
	Old       float64   `json:"old"`
	New       float64   `json:"new"`
	RelDelta  float64   `json:"rel_delta"`
	Direction Direction `json:"direction"`
	Regressed bool      `json:"regressed"`
	Improved  bool      `json:"improved"`
}

// Report is a full comparison, serializable as the machine-readable
// output next to the human table.
type Report struct {
	OldPath      string  `json:"old"`
	NewPath      string  `json:"new"`
	Threshold    float64 `json:"threshold"`
	Regressions  []Delta `json:"regressions"`
	Improvements []Delta `json:"improvements"`
	// Within counts gated metrics inside the noise threshold.
	Within int `json:"within"`
	// OnlyOld/OnlyNew list alignment keys present on one side only —
	// usually a changed experiment set, worth seeing in CI logs.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// Notes carries non-gating observations: seed mismatches,
	// interrupted inputs, determinism drift in event counts.
	Notes []string `json:"notes,omitempty"`
}

// HasRegressions reports whether the gate should fail.
func (r *Report) HasRegressions() bool { return len(r.Regressions) > 0 }

// Compare aligns two manifests and classifies every shared metric.
func Compare(oldM, newM melody.Manifest, opt Options) *Report {
	th := opt.Threshold
	if th <= 0 {
		th = DefaultThreshold
	}
	rep := &Report{Threshold: th}
	c := comparer{rep: rep, threshold: th}

	if oldM.Seed != newM.Seed {
		c.notef("seed differs (%d vs %d): cells are not directly comparable", oldM.Seed, newM.Seed)
	}
	if oldM.Workloads != newM.Workloads {
		c.notef("workload subset differs (%d vs %d)", oldM.Workloads, newM.Workloads)
	}
	if oldM.Interrupted {
		c.notef("old manifest is from an interrupted run")
	}
	if newM.Interrupted {
		c.notef("new manifest is from an interrupted run")
	}

	c.compareRegistry(oldM, newM)
	c.compareTimeseries(oldM, newM)
	c.compareCells(oldM, newM)

	sortDeltas(rep.Regressions)
	sortDeltas(rep.Improvements)
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	return rep
}

// sortDeltas orders by descending magnitude, then name — the worst
// offender leads the CI log.
func sortDeltas(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool {
		mi, mj := math.Abs(ds[i].RelDelta), math.Abs(ds[j].RelDelta)
		if mi != mj {
			return mi > mj
		}
		return ds[i].Metric < ds[j].Metric
	})
}

type comparer struct {
	rep       *Report
	threshold float64
}

func (c *comparer) notef(format string, args ...any) {
	c.rep.Notes = append(c.rep.Notes, fmt.Sprintf(format, args...))
}

// observe classifies one aligned metric pair.
func (c *comparer) observe(metric string, old, new float64, dir Direction) {
	const floor = 1e-9
	if math.Abs(old) < floor && math.Abs(new) < floor {
		if dir != Info {
			c.rep.Within++
		}
		return
	}
	var rel float64
	if old != 0 {
		rel = (new - old) / math.Abs(old)
	} else {
		rel = math.Inf(sign(new))
	}
	d := Delta{Metric: metric, Old: old, New: new, RelDelta: rel, Direction: dir}
	if dir == Info {
		return
	}
	worse := (dir == HigherWorse && rel > 0) || (dir == LowerWorse && rel < 0)
	beyond := math.Abs(rel) > c.threshold || math.IsInf(rel, 0)
	switch {
	case worse && beyond:
		d.Regressed = true
		c.rep.Regressions = append(c.rep.Regressions, d)
	case !worse && beyond:
		d.Improved = true
		c.rep.Improvements = append(c.rep.Improvements, d)
	default:
		c.rep.Within++
	}
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// compareRegistry aligns the telemetry registry dumps.
func (c *comparer) compareRegistry(oldM, newM melody.Manifest) {
	// Histograms: latency distributions gate on mean and p99.
	for _, name := range unionKeys(oldM.Registry.Histograms, newM.Registry.Histograms,
		&c.rep.OnlyOld, &c.rep.OnlyNew, "histogram ") {
		o, n := oldM.Registry.Histograms[name], newM.Registry.Histograms[name]
		dir := histogramDirection(name)
		c.observe(name+" mean", o.Mean, n.Mean, dir)
		c.observe(name+" p99", o.P99, n.P99, dir)
		if dir != Info && o.Count != n.Count {
			c.notef("histogram %s sample count drifted: %d vs %d", name, o.Count, n.Count)
		}
	}
	// Counters: stall counts gate; everything else informs.
	for _, name := range unionKeys(oldM.Registry.Counters, newM.Registry.Counters,
		&c.rep.OnlyOld, &c.rep.OnlyNew, "counter ") {
		o, n := oldM.Registry.Counters[name], newM.Registry.Counters[name]
		c.observe(name, float64(o), float64(n), counterDirection(name))
	}
}

// histogramDirection: simulated-time latency histograms (_ns) gate
// higher-is-worse; host wall-time histograms (_ms) never gate.
func histogramDirection(name string) Direction {
	if strings.HasSuffix(name, "_ns") {
		return HigherWorse
	}
	return Info
}

// counterDirection: device stall counters gate; runner/engine
// bookkeeping (cache outcomes, cells run) and access counts inform.
func counterDirection(name string) Direction {
	if strings.HasSuffix(name, "_stalls") {
		return HigherWorse
	}
	return Info
}

// timeseriesKey aligns sampled streams across runs.
func timeseriesKey(s melody.SampledSeries) string {
	return s.Workload + " @ " + s.Config + " @ " + s.Platform + " @ " + s.Experiment
}

// gatedSpaCounters are the per-cell counters worth gating: total
// cycles (the slowdown itself) and the Spa stall set it decomposes
// into. Higher is always worse — more stall cycles on the same
// instruction stream.
var gatedSpaCounters = []counters.ID{
	counters.Cycles,
	counters.BoundOnLoads, counters.BoundOnStores,
	counters.StallsL1DMiss, counters.StallsL2Miss, counters.StallsL3Miss,
	counters.RetiredStalls, counters.OnePortsUtil, counters.TwoPortsUtil,
	counters.StallsScoreboard,
}

// compareTimeseries aligns per-cell sampled streams: final cumulative
// Spa counters (higher worse) and mean device bandwidth (lower worse).
func (c *comparer) compareTimeseries(oldM, newM melody.Manifest) {
	oldS := indexSeries(oldM.Timeseries)
	newS := indexSeries(newM.Timeseries)
	for _, key := range unionKeys(oldS, newS, &c.rep.OnlyOld, &c.rep.OnlyNew, "timeseries ") {
		o, n := oldS[key], newS[key]
		if len(o.Samples) == 0 || len(n.Samples) == 0 {
			continue
		}
		oLast := o.Samples[len(o.Samples)-1].Counters
		nLast := n.Samples[len(n.Samples)-1].Counters
		for _, id := range gatedSpaCounters {
			c.observe(key+" "+id.String(), oLast[id], nLast[id], HigherWorse)
		}
		oRead, oWrite, oOK := meanBandwidth(o)
		nRead, nWrite, nOK := meanBandwidth(n)
		if oOK && nOK {
			c.observe(key+" read_gbs", oRead, nRead, LowerWorse)
			c.observe(key+" write_gbs", oWrite, nWrite, LowerWorse)
		}
	}
}

// meanBandwidth averages the CPMU's per-window bandwidth over the
// stream (ok=false when the cell had no device probe).
func meanBandwidth(s melody.SampledSeries) (read, write float64, ok bool) {
	var n int
	for _, smp := range s.Samples {
		if !smp.HasDevice {
			continue
		}
		read += smp.Device.ReadGBs
		write += smp.Device.WriteGBs
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	return read / float64(n), write / float64(n), true
}

func indexSeries(ss []melody.SampledSeries) map[string]melody.SampledSeries {
	out := make(map[string]melody.SampledSeries, len(ss))
	for _, s := range ss {
		out[timeseriesKey(s)] = s
	}
	return out
}

// compareCells checks per-cell identity: a seed change for the same
// (workload, config, platform) means the runs measured different
// device state — worth a note even when metrics happen to agree.
func (c *comparer) compareCells(oldM, newM melody.Manifest) {
	type cellKey struct{ w, cfg, p string }
	oldC := map[cellKey]uint64{}
	for _, cell := range oldM.Cells {
		oldC[cellKey{cell.Workload, cell.Config, cell.Platform}] = cell.Seed
	}
	for _, cell := range newM.Cells {
		if seed, ok := oldC[cellKey{cell.Workload, cell.Config, cell.Platform}]; ok && seed != cell.Seed {
			c.notef("cell %s @ %s (%s): derived seed changed %d -> %d",
				cell.Workload, cell.Config, cell.Platform, seed, cell.Seed)
		}
	}
}

// unionKeys returns the sorted union of both maps' keys, appending
// one-sided keys (prefixed for context) to the report's OnlyOld /
// OnlyNew lists and keeping only shared keys in the result.
func unionKeys[V any](oldM, newM map[string]V, onlyOld, onlyNew *[]string, prefix string) []string {
	var shared []string
	for k := range oldM {
		if _, ok := newM[k]; ok {
			shared = append(shared, k)
		} else {
			*onlyOld = append(*onlyOld, prefix+k)
		}
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			*onlyNew = append(*onlyNew, prefix+k)
		}
	}
	sort.Strings(shared)
	return shared
}

// Table renders the human-readable comparison.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "melodydiff: %s vs %s (threshold ±%.1f%%)\n",
		orDash(r.OldPath), orDash(r.NewPath), r.Threshold*100)
	if len(r.Regressions) == 0 && len(r.Improvements) == 0 {
		fmt.Fprintf(&b, "no changes beyond threshold; %d gated metrics within noise\n", r.Within)
	} else {
		fmt.Fprintf(&b, "%-6s  %-64s %14s %14s %9s\n", "STATUS", "METRIC", "OLD", "NEW", "DELTA")
		for _, d := range r.Regressions {
			writeRow(&b, "REGR", d)
		}
		for _, d := range r.Improvements {
			writeRow(&b, "IMPR", d)
		}
		fmt.Fprintf(&b, "%d regressions, %d improvements, %d gated metrics within ±%.1f%%\n",
			len(r.Regressions), len(r.Improvements), r.Within, r.Threshold*100)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.OnlyOld) > 0 {
		fmt.Fprintf(&b, "only in old: %s\n", strings.Join(r.OnlyOld, ", "))
	}
	if len(r.OnlyNew) > 0 {
		fmt.Fprintf(&b, "only in new: %s\n", strings.Join(r.OnlyNew, ", "))
	}
	return b.String()
}

func writeRow(b *strings.Builder, status string, d Delta) {
	delta := fmt.Sprintf("%+.1f%%", d.RelDelta*100)
	if math.IsInf(d.RelDelta, 0) {
		delta = "new!=0"
	}
	fmt.Fprintf(b, "%-6s  %-64s %14.4g %14.4g %9s\n", status, d.Metric, d.Old, d.New, delta)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
