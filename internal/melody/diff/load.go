package diff

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/moatlab/melody/internal/melody"
)

// fetchTimeout bounds one manifest fetch from a live observatory: a
// manifest is a single buffered response, so a slow answer means a
// wedged service, not a big payload.
const fetchTimeout = 30 * time.Second

// Load resolves one comparison operand into a manifest. Operands are
// either file paths or http(s) URLs — typically a live observatory's
// `/runs/{id}/manifest` — so the CLI gate works against a running
// service as easily as against artifacts on disk.
func Load(operand string) (melody.Manifest, error) {
	if strings.HasPrefix(operand, "http://") || strings.HasPrefix(operand, "https://") {
		return loadURL(operand)
	}
	return melody.LoadManifest(operand)
}

func loadURL(url string) (melody.Manifest, error) {
	client := &http.Client{Timeout: fetchTimeout}
	resp, err := client.Get(url)
	if err != nil {
		return melody.Manifest{}, fmt.Errorf("fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	// Bound the read: a manifest is megabytes at the outside, and a
	// misdirected URL should not buffer an arbitrary stream.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return melody.Manifest{}, fmt.Errorf("fetch %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return melody.Manifest{}, fmt.Errorf("fetch %s: %s: %s",
			url, resp.Status, strings.TrimSpace(firstLine(body)))
	}
	m, err := melody.DecodeManifest(body)
	if err != nil {
		return melody.Manifest{}, fmt.Errorf("manifest from %s: %w", url, err)
	}
	return m, nil
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
