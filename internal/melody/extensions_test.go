package melody

import (
	"fmt"
	"strings"
	"testing"
)

func TestCPMUExpShowsSchedulerTails(t *testing.T) {
	rep := CPMUExp(testCtx(Options{Seed: 1, DurationNs: 60_000}))
	if len(rep.Lines) < 5 {
		t.Fatalf("cpmu report too short: %v", rep.Lines)
	}
	joined := strings.Join(rep.Lines, "\n")
	for _, dev := range []string{"CXL-A", "CXL-B", "CXL-C", "CXL-D"} {
		if !strings.Contains(joined, dev) {
			t.Fatalf("cpmu report missing %s", dev)
		}
	}
}

func TestPredictSmoke(t *testing.T) {
	rep := Predict(testCtx(Options{MaxWorkloads: 8, Instructions: 300_000, Warmup: 80_000, Seed: 1}))
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "predictions") {
		t.Fatalf("predict report malformed:\n%s", joined)
	}
	// The median prediction error line must be present; detailed
	// accuracy is asserted in the spa package tests.
	if !strings.Contains(joined, "median") {
		t.Fatalf("predict report missing summary:\n%s", joined)
	}
}

func TestTieringBetweenEndpoints(t *testing.T) {
	rep := TieringExp(testCtx(Options{Seed: 1, Instructions: 700_000}))
	var local, all, spaP float64
	for _, l := range rep.Lines {
		switch {
		case strings.Contains(l, "all local DRAM"):
			local = lastField(t, l)
		case strings.Contains(l, "all CXL-A"):
			all = lastField(t, l)
		case strings.Contains(l, "spa metric"):
			spaP = lastField(t, l)
		}
	}
	if !(all < spaP && spaP < local) {
		t.Fatalf("tiering not between endpoints: all=%v tiered=%v local=%v", all, spaP, local)
	}
	recovery := (spaP - all) / (local - all)
	if recovery < 0.1 {
		t.Fatalf("tiering recovered only %.0f%% of the gap", recovery*100)
	}
}

// lastField parses the trailing float on a report line.
func lastField(t *testing.T, line string) float64 {
	t.Helper()
	fields := strings.Fields(line)
	var v float64
	if _, err := fmt.Sscanf(fields[len(fields)-1], "%f", &v); err != nil {
		t.Fatalf("cannot parse %q: %v", line, err)
	}
	return v
}
