package melody

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/workload"
)

// testCtx builds a one-shot ExperimentContext for calling experiment
// functions directly in tests.
func testCtx(o Options) *ExperimentContext {
	RegisterWorkloads()
	return NewEngine(o).context(context.Background(), "test")
}

// fastRunner returns a runner with small windows for test speed.
func fastRunner(p platform.Platform) *Runner {
	r := NewRunner(p)
	r.Instructions = 400_000
	r.Warmup = 100_000
	return r
}

// testSubset picks a diverse, fast catalog subset.
func testSubset(t *testing.T, n int) []workload.Spec {
	t.Helper()
	RegisterWorkloads()
	names := []string{
		"605.mcf_s", "520.omnetpp_r", "625.x264_s", "508.namd_r",
		"602.gcc_s", "pts-sqlite", "parsec-canneal", "spark-kmeans",
		"micro-chase-256m", "micro-seqread-256m", "micro-randstore-64m",
		"dlrm-embedding", "redis-ycsb-C", "voltdb-ycsb-A",
		"603.bwaves_s", "619.lbm_s",
	}
	var out []workload.Spec
	for _, name := range names {
		if s, ok := workload.ByName(name); ok {
			out = append(out, s)
		}
		if len(out) == n {
			break
		}
	}
	if len(out) < 8 {
		t.Fatal("test subset too small")
	}
	return out
}

// TestRunnerCaching verifies baseline reuse.
func TestRunnerCaching(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	r := fastRunner(emr)
	spec, _ := workload.ByName("625.x264_s")
	a := r.Run(spec, Local(emr))
	b := r.Run(spec, Local(emr))
	if a.Cycles() != b.Cycles() {
		t.Fatal("cached run differed")
	}
}

// TestRunnerDeterminism verifies same-seed reproducibility.
func TestRunnerDeterminism(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("605.mcf_s")
	a := fastRunner(emr).Run(spec, Local(emr))
	b := fastRunner(emr).Run(spec, Local(emr))
	if a.Cycles() != b.Cycles() {
		t.Fatalf("same seed diverged: %v vs %v", a.Cycles(), b.Cycles())
	}
}

// TestSlowdownOrdering asserts the Figure 8a device ordering on median
// slowdown: NUMA <= CXL-D <= CXL-A <= CXL-B <= CXL-C.
func TestSlowdownOrdering(t *testing.T) {
	specs := testSubset(t, 12)
	emr := platform.EMR2S()
	emrP := platform.EMR2SPrime()
	run, runP := fastRunner(emr), fastRunner(emrP)
	med := func(xs []float64) float64 { return stats.Percentile(xs, 50) }

	numa := med(run.Slowdowns(specs, NUMA(emr)))
	d := med(runP.Slowdowns(specs, CXL(emrP, cxl.ProfileD())))
	a := med(run.Slowdowns(specs, CXL(emr, cxl.ProfileA())))
	b := med(run.Slowdowns(specs, CXL(emr, cxl.ProfileB())))
	c := med(run.Slowdowns(specs, CXL(emr, cxl.ProfileC())))
	t.Logf("median slowdowns: NUMA %.1f%% D %.1f%% A %.1f%% B %.1f%% C %.1f%%",
		numa*100, d*100, a*100, b*100, c*100)
	// The paper's CDF ordering is NUMA <= D <= A <= B <= C. CXL-D runs
	// on its own host platform (EMR2S', much larger LLC), which lets it
	// beat NUMA for cache-friendly medians — the same confound the
	// paper's Figure 8a carries ("CXL-D performs almost as well as
	// NUMA"). The robust orderings are D <= A <= B <= C and NUMA <= A.
	if !(d <= a && a <= b && b <= c && numa <= a) {
		t.Fatalf("device ordering violated: NUMA=%v D=%v A=%v B=%v C=%v", numa, d, a, b, c)
	}
	if numa > 0.5 {
		t.Fatalf("median NUMA slowdown %v too large", numa)
	}
}

// TestBandwidthTail asserts Figure 8b: bandwidth-bound workloads suffer
// 1.5x+ on CXL-A/B but far less on NUMA.
func TestBandwidthTail(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	run := fastRunner(emr)
	spec, _ := workload.ByName("603.bwaves_s")
	numa := run.Slowdown(spec, NUMA(emr))
	a := run.Slowdown(spec, CXL(emr, cxl.ProfileA()))
	if a < 1.5 {
		t.Fatalf("bandwidth-bound CXL-A slowdown = %.0f%%, want >= 150%%", a*100)
	}
	if a < numa*3 {
		t.Fatalf("bandwidth tail not CXL-specific: NUMA %.0f%% vs CXL-A %.0f%%", numa*100, a*100)
	}
}

// TestComputeTolerance asserts that compute-bound workloads tolerate
// CXL (the paper's "drop-in replacement" population).
func TestComputeTolerance(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	run := fastRunner(emr)
	for _, name := range []string{"625.x264_s", "508.namd_r", "pts-openssl"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if s := run.Slowdown(spec, CXL(emr, cxl.ProfileA())); s > 0.10 {
			t.Fatalf("%s slows %.1f%% on CXL-A, want < 10%%", name, s*100)
		}
	}
}

// TestCXLNUMAPathology asserts Figure 8c/8d: CXL+NUMA is far worse than
// plain CXL for the omnetpp-like workload, and reducing intensity
// shrinks the gap.
func TestCXLNUMAPathology(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("520.omnetpp_r")
	run := fastRunner(emr)
	cxlS := run.Slowdown(spec, CXL(emr, cxl.ProfileA()))
	mixS := run.Slowdown(spec, CXLNUMA(emr, cxl.ProfileA()))
	t.Logf("omnetpp: CXL-A %.0f%%, CXL-A+NUMA %.0f%%", cxlS*100, mixS*100)
	if mixS < cxlS*1.8 {
		t.Fatalf("CXL+NUMA pathology missing: CXL %.0f%% vs CXL+NUMA %.0f%%", cxlS*100, mixS*100)
	}
	// Quarter intensity must shrink the CXL+NUMA slowdown substantially.
	// The paper scales omnetpp by simulating fewer LANs, which shrinks
	// both the event rate and the network state.
	light := spec
	light.Profile.MemRatio *= 0.25
	light.Profile.WorkingSetMB /= 4
	light.Siblings.DelayNs *= 4
	lightRun := fastRunner(emr)
	lightMix := lightRun.Slowdown(light, CXLNUMA(emr, cxl.ProfileA()))
	if lightMix > mixS*0.7 {
		t.Fatalf("intensity scaling did not shrink pathology: full %.0f%% vs 1/4 %.0f%%",
			mixS*100, lightMix*100)
	}
}

// TestSpaAccuracyAcrossCatalog asserts the Figure 11 property: Spa's
// memory-stall estimator within 5%% absolute for >= 90%% of workloads.
func TestSpaAccuracyAcrossCatalog(t *testing.T) {
	specs := testSubset(t, 16)
	emr := platform.EMR2S()
	run := fastRunner(emr)
	within := 0
	for _, s := range specs {
		base := run.Run(s, Local(emr))
		tgt := run.Run(s, CXL(emr, cxl.ProfileA()))
		b := spa.Analyze(base.Delta, tgt.Delta)
		_, _, em := spa.AccuracyErrors(b)
		if em <= 0.05 {
			within++
		} else {
			t.Logf("%s: memory estimator error %.1f%% (S=%.1f%%)", s.Name, em*100, b.Actual*100)
		}
	}
	if frac := float64(within) / float64(len(specs)); frac < 0.9 {
		t.Fatalf("only %.0f%% of workloads within 5%% Spa error", frac*100)
	}
}

// TestFig12Shift asserts the prefetcher miss-shift correlation.
func TestFig12Shift(t *testing.T) {
	o := Options{MaxWorkloads: 10, Instructions: 400_000, Warmup: 100_000, Seed: 1}
	rep := Fig12a(testCtx(o))
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "Pearson") {
		t.Fatal("fig12a produced no correlation line")
	}
	// Recompute directly for the assertion.
	specs := pfSensitive(10)
	emr := platform.EMR2S()
	run := fastRunner(emr)
	var dec, inc []float64
	for _, s := range specs {
		base := run.Run(s, Local(emr))
		tgt := run.Run(s, CXL(emr, cxl.ProfileB()))
		d := tgt.Delta.Delta(base.Delta)
		dec = append(dec, -d[counters.L2PFL3Miss])
		inc = append(inc, d[counters.L1PFL3Miss])
	}
	r := stats.Pearson(dec, inc)
	if r < 0.8 {
		t.Fatalf("L1PF/L2PF shift Pearson = %.2f, want >= 0.8", r)
	}
}

// TestYCSBSuperlinear asserts Figure 9b's latency sensitivity trend.
func TestYCSBSuperlinear(t *testing.T) {
	RegisterWorkloads()
	emr := platform.EMR2S()
	run := fastRunner(emr)
	for _, name := range []string{"redis-ycsb-A", "voltdb-ycsb-A"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		numa := run.Slowdown(spec, NUMA(emr))
		a := run.Slowdown(spec, CXL(emr, cxl.ProfileA()))
		b := run.Slowdown(spec, CXL(emr, cxl.ProfileB()))
		t.Logf("%s: NUMA %.1f%% CXL-A %.1f%% CXL-B %.1f%%", name, numa*100, a*100, b*100)
		if !(numa < a && a < b) {
			t.Fatalf("%s: slowdown not increasing with latency: %v %v %v", name, numa, a, b)
		}
	}
}

// TestTuningUseCase asserts the §5.7 outcome: placement collapses the
// slowdown by at least 3x.
func TestTuningUseCase(t *testing.T) {
	rep := Tuning(testCtx(Options{Instructions: 400_000, Warmup: 100_000, Seed: 1}))
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "relocating") {
		t.Fatalf("tuning report incomplete:\n%s", joined)
	}
	// Extract the two slowdown figures from the report.
	var before, after float64
	for _, l := range rep.Lines {
		if strings.Contains(l, "all objects on CXL-A") {
			if _, err := sscanfLast(l, &before); err != nil {
				t.Fatal(err)
			}
		}
		if strings.Contains(l, "with hot objects on local DRAM") {
			if _, err := sscanfLast(l, &after); err != nil {
				t.Fatal(err)
			}
		}
	}
	if before < 0.1 || after > before/3 {
		t.Fatalf("placement did not collapse slowdown: before %.1f%% after %.1f%%", before, after)
	}
}

// sscanfLast extracts the trailing "NN.N%" figure from a report line
// as a fraction.
func sscanfLast(line string, out *float64) (int, error) {
	idx := strings.LastIndex(line, " ")
	s := strings.TrimSuffix(line[idx+1:], "%")
	var v float64
	n, err := fmt.Sscanf(s, "%f", &v)
	*out = v / 100
	return n, err
}

// TestFig16Phases asserts the period analysis exposes gcc's phases.
func TestFig16Phases(t *testing.T) {
	rep := Fig16(testCtx(Options{Instructions: 600_000, Warmup: 100_000, Seed: 1}))
	if len(rep.Lines) < 10 {
		t.Fatalf("fig16 produced %d lines", len(rep.Lines))
	}
}

// TestAllExperimentsRegistered checks the registry covers every paper
// artifact.
func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig3a", "fig3b", "fig3c", "fig4",
		"fig5", "fig6", "fig7", "fig8a", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig11", "fig12a", "fig12b", "fig14", "fig15", "fig16", "tuning", "ablations", "predict", "cpmu", "tiering"}
	for _, id := range want {
		if _, ok := ExperimentByID(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Experiments()), len(want))
	}
}

// TestCatalogIs265 asserts the paper's workload count after app
// registration.
func TestCatalogIs265(t *testing.T) {
	RegisterWorkloads()
	if n := len(workload.Catalog()); n != 265 {
		t.Fatalf("catalog has %d workloads, want 265", n)
	}
}
