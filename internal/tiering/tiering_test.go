package tiering

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

type fixedDev struct {
	lat      float64
	accesses uint64
}

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	d.accesses++
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 { d.accesses = 0 }
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.FastPages = 64
	cfg.EpochAccesses = 2000
	cfg.MigrateBatch = 64
	cfg.MigrationCostNs = 0
	return cfg
}

// hotTrafficAvg runs a hot/cold access mix and returns the average
// demand latency over the last half of the run.
func hotTrafficAvg(t *testing.T, policy Policy) float64 {
	t.Helper()
	fast := &fixedDev{lat: 100}
	slow := &fixedDev{lat: 400}
	cfg := testConfig()
	cfg.Policy = policy
	td := New(fast, slow, cfg)
	r := sim.NewRand(1)
	now := 0.0
	var sum float64
	var n int
	const total = 40_000
	for i := 0; i < total; i++ {
		var page uint64
		if r.Bool(0.9) {
			page = r.Uint64n(32) // hot: 32 pages
		} else {
			page = 1000 + r.Uint64n(100_000) // cold tail
		}
		done := td.Access(now, page*4096+r.Uint64n(64)*64, mem.DemandRead)
		if i > total/2 {
			sum += done - now
			n++
		}
		now = done
	}
	return sum / float64(n)
}

func TestHotPagesGetPromoted(t *testing.T) {
	avg := hotTrafficAvg(t, PolicySpa)
	// 90% of accesses hit 32 hot pages, which fit the 64-page fast
	// tier: steady-state latency must approach 0.9*100 + 0.1*400 = 130.
	if avg > 180 {
		t.Fatalf("steady-state latency %v; hot set not promoted", avg)
	}
}

func TestBothPoliciesBeatStatic(t *testing.T) {
	static := 400.0 // everything on slow
	for _, p := range []Policy{PolicyAccessCount, PolicySpa} {
		if avg := hotTrafficAvg(t, p); avg >= static*0.6 {
			t.Fatalf("policy %v: avg %v, want well below all-slow %v", p, avg, static)
		}
	}
}

// TestSpaPolicyIgnoresCheapTraffic is the paper's point: a page hammered
// by prefetches (which do not stall the CPU) should lose the fast tier
// to a page whose demand loads stall — access counting gets this wrong.
func TestSpaPolicyIgnoresCheapTraffic(t *testing.T) {
	run := func(policy Policy) (demandAvg float64) {
		fast := &fixedDev{lat: 100}
		slow := &fixedDev{lat: 400}
		cfg := testConfig()
		cfg.FastPages = 8
		cfg.Policy = policy
		td := New(fast, slow, cfg)
		r := sim.NewRand(2)
		now := 0.0
		var sum float64
		var n int
		const total = 60_000
		for i := 0; i < total; i++ {
			if r.Bool(0.7) {
				// Prefetch storm concentrated on 4 pages: they dominate
				// access counts but never stall the CPU.
				page := 100 + r.Uint64n(4)
				now = td.Access(now, page*4096, mem.PrefetchL2)
				continue
			}
			// Demand traffic on pages 0..7.
			page := r.Uint64n(8)
			done := td.Access(now, page*4096+r.Uint64n(64)*64, mem.DemandRead)
			if i > total/2 {
				sum += done - now
				n++
			}
			now = done
		}
		return sum / float64(n)
	}
	spaAvg := run(PolicySpa)
	countAvg := run(PolicyAccessCount)
	if spaAvg >= countAvg {
		t.Fatalf("Spa policy (%v) not better than access count (%v) under cheap-traffic interference",
			spaAvg, countAvg)
	}
	if spaAvg > 150 {
		t.Fatalf("Spa policy failed to keep demand pages fast: %v", spaAvg)
	}
}

func TestCapacityRespected(t *testing.T) {
	fast := &fixedDev{lat: 100}
	slow := &fixedDev{lat: 400}
	cfg := testConfig()
	cfg.FastPages = 16
	td := New(fast, slow, cfg)
	r := sim.NewRand(3)
	now := 0.0
	for i := 0; i < 30_000; i++ {
		now = td.Access(now, r.Uint64n(64)*4096, mem.DemandRead)
	}
	if td.FastResidentPages() > 16 {
		t.Fatalf("fast tier holds %d pages, capacity 16", td.FastResidentPages())
	}
	if td.Epochs() == 0 || td.Migrations() == 0 {
		t.Fatal("no tiering activity")
	}
}

func TestMigrationCostDelays(t *testing.T) {
	mk := func(cost float64) float64 {
		fast := &fixedDev{lat: 100}
		slow := &fixedDev{lat: 400}
		cfg := testConfig()
		cfg.MigrationCostNs = cost
		td := New(fast, slow, cfg)
		r := sim.NewRand(4)
		now := 0.0
		for i := 0; i < 20_000; i++ {
			now = td.Access(now, r.Uint64n(256)*4096, mem.DemandRead)
		}
		return now
	}
	if free, costly := mk(0), mk(2_000); costly <= free {
		t.Fatalf("migration cost had no effect: %v vs %v", free, costly)
	}
}

func TestResetClears(t *testing.T) {
	td := New(&fixedDev{lat: 100}, &fixedDev{lat: 400}, testConfig())
	r := sim.NewRand(5)
	now := 0.0
	for i := 0; i < 5_000; i++ {
		now = td.Access(now, r.Uint64n(64)*4096, mem.DemandRead)
	}
	td.Reset()
	if td.FastResidentPages() != 0 || td.Epochs() != 0 {
		t.Fatal("Reset left tiering state")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity config accepted")
		}
	}()
	New(&fixedDev{}, &fixedDev{}, Config{})
}
