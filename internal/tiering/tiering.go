// Package tiering implements a page-granularity memory-tiering
// simulator over a fast (local DRAM) and a slow (CXL) device — the
// paper's §5.7 direction: "By directly measuring performance losses
// through stall cycles, Spa enables smarter tiering policy designs".
//
// The TieredDevice wraps both tiers behind one mem.Device. Pages start
// in the slow tier (capacity-driven placement); every epoch the policy
// ranks pages and migrates the most valuable into the limited fast
// tier, paying migration bandwidth.
//
// Two promotion policies are provided:
//
//   - PolicyAccessCount ranks pages by access frequency — the
//     conventional LLC-miss/PMU-sampling approach the paper critiques.
//   - PolicySpa ranks pages by accumulated *device latency* — the
//     tiering analog of Spa's stall-cycle metric: a page whose accesses
//     stall the CPU longest is worth the most to promote, even when a
//     frequently-touched page is cheap (e.g. prefetched or overlapped).
package tiering

import (
	"sort"

	"github.com/moatlab/melody/internal/mem"
)

const pageBytes = 4096

// Policy selects how pages are ranked for promotion.
type Policy uint8

const (
	// PolicyAccessCount promotes the most-accessed pages.
	PolicyAccessCount Policy = iota
	// PolicySpa promotes the pages with the largest accumulated
	// device-latency contribution (the Spa-style stall metric).
	PolicySpa
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == PolicySpa {
		return "spa"
	}
	return "access-count"
}

// Config parameterizes the tiered device.
type Config struct {
	// FastPages is the fast-tier capacity in 4 KiB pages.
	FastPages int
	// EpochAccesses is the migration-decision interval.
	EpochAccesses uint64
	// MigrateBatch bounds pages moved per epoch (migration costs
	// bandwidth; moving everything at once would stall the system).
	MigrateBatch int
	// MigrationCostNs is charged to the device timeline per migrated
	// page (64 line transfers at slow-tier bandwidth, amortized).
	MigrationCostNs float64
	Policy          Policy
}

// DefaultConfig returns a sensible tiering setup.
func DefaultConfig() Config {
	return Config{
		FastPages:       4096, // 16 MiB fast tier
		EpochAccesses:   20_000,
		MigrateBatch:    512,
		MigrationCostNs: 400,
		Policy:          PolicySpa,
	}
}

type pageStat struct {
	page    uint64
	count   uint64
	stallNs float64
	inFast  bool
}

// TieredDevice routes accesses to the fast or slow tier by page
// placement and migrates pages per epoch. Not safe for concurrent use.
type TieredDevice struct {
	cfg  Config
	fast mem.Device
	slow mem.Device

	pages map[uint64]*pageStat
	nFast int

	sinceEpoch uint64
	epochs     uint64
	migrations uint64

	// busyUntil serializes migration cost into the access timeline.
	migrateBusyUntil float64
}

var _ mem.Device = (*TieredDevice)(nil)

// New builds a tiered device over fast and slow tiers.
func New(fast, slow mem.Device, cfg Config) *TieredDevice {
	if cfg.FastPages <= 0 || cfg.EpochAccesses == 0 {
		panic("tiering: invalid config")
	}
	return &TieredDevice{cfg: cfg, fast: fast, slow: slow, pages: map[uint64]*pageStat{}}
}

// Name implements mem.Device.
func (t *TieredDevice) Name() string { return "Tiered(" + t.cfg.Policy.String() + ")" }

// Reset implements mem.Device.
func (t *TieredDevice) Reset() {
	t.fast.Reset()
	t.slow.Reset()
	t.pages = map[uint64]*pageStat{}
	t.nFast = 0
	t.sinceEpoch, t.epochs, t.migrations = 0, 0, 0
	t.migrateBusyUntil = 0
}

// Stats implements mem.Device (slow-tier stats; tier details via
// methods).
func (t *TieredDevice) Stats() mem.DeviceStats { return t.slow.Stats() }

// Epochs and Migrations expose tiering activity.
func (t *TieredDevice) Epochs() uint64     { return t.epochs }
func (t *TieredDevice) Migrations() uint64 { return t.migrations }

// FastResidentPages returns the current fast-tier population.
func (t *TieredDevice) FastResidentPages() int { return t.nFast }

// Access implements mem.Device.
func (t *TieredDevice) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if t.migrateBusyUntil > now {
		now = t.migrateBusyUntil
	}
	page := addr / pageBytes
	ps := t.pages[page]
	if ps == nil {
		ps = &pageStat{page: page}
		t.pages[page] = ps
	}
	var done float64
	if ps.inFast {
		done = t.fast.Access(now, addr, kind)
	} else {
		done = t.slow.Access(now, addr, kind)
	}
	ps.count++
	if kind == mem.DemandRead {
		// Only demand latency stalls the CPU — prefetches and posted
		// writes are off the critical path. This asymmetry is exactly
		// what the Spa policy exploits and access counting misses.
		ps.stallNs += done - now
	}

	t.sinceEpoch++
	if t.sinceEpoch >= t.cfg.EpochAccesses {
		t.rebalance(done)
		t.sinceEpoch = 0
	}
	return done
}

// rebalance promotes the top-ranked pages into the fast tier (demoting
// as needed) and decays history so the policy tracks phase changes.
func (t *TieredDevice) rebalance(now float64) {
	t.epochs++
	ranked := make([]*pageStat, 0, len(t.pages))
	for _, ps := range t.pages {
		ranked = append(ranked, ps)
	}
	score := func(ps *pageStat) float64 {
		if t.cfg.Policy == PolicySpa {
			return ps.stallNs
		}
		return float64(ps.count)
	}
	sort.Slice(ranked, func(i, j int) bool { return score(ranked[i]) > score(ranked[j]) })

	// Desired fast set: the top FastPages by score.
	want := map[uint64]bool{}
	for i := 0; i < len(ranked) && i < t.cfg.FastPages; i++ {
		if score(ranked[i]) > 0 {
			want[ranked[i].page] = true
		}
	}

	// Demote first (frees capacity), then promote, bounded per epoch.
	moved := 0
	for _, ps := range ranked {
		if ps.inFast && !want[ps.page] && moved < t.cfg.MigrateBatch {
			ps.inFast = false
			t.nFast--
			moved++
		}
	}
	for _, ps := range ranked {
		if moved >= t.cfg.MigrateBatch || t.nFast >= t.cfg.FastPages {
			break
		}
		if !ps.inFast && want[ps.page] {
			ps.inFast = true
			t.nFast++
			moved++
		}
	}
	t.migrations += uint64(moved)
	t.migrateBusyUntil = now + float64(moved)*t.cfg.MigrationCostNs

	// Exponential decay keeps rankings responsive to phases.
	for _, ps := range ranked {
		ps.count /= 2
		ps.stallNs /= 2
	}
}
