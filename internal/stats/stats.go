// Package stats provides the statistical primitives Melody experiments
// rely on: percentiles, empirical CDFs, correlation, linear fits, and the
// distribution summaries behind the paper's violin plots.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data the caller has already sorted
// ascending. It avoids the copy and re-sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles evaluates several percentiles with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = PercentileSorted(sorted, p)
	}
	return out
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FractionBelow returns the fraction of xs strictly below limit.
func FractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one (value, cumulative fraction) step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical CDF of xs: for each distinct value v the
// fraction of samples <= v. The result is sorted by Value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into one step.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at value v.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	// Binary search for the last point with Value <= v.
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid].Value <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return cdf[lo-1].Fraction
}

// Pearson returns the Pearson correlation coefficient of (xs, ys).
// It returns NaN if the lengths differ, are < 2, or either side has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of ys ~ xs.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Summary is a compact distribution description — the data behind one
// violin in the paper's Figure 9a.
type Summary struct {
	N              int
	Mean, Stddev   float64
	Min, Max       float64
	P25, P50, P75  float64
	P90, P99, P999 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P25:    PercentileSorted(sorted, 25),
		P50:    PercentileSorted(sorted, 50),
		P75:    PercentileSorted(sorted, 75),
		P90:    PercentileSorted(sorted, 90),
		P99:    PercentileSorted(sorted, 99),
		P999:   PercentileSorted(sorted, 99.9),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f p99=%.2f p99.9=%.2f max=%.2f",
		s.N, s.Mean, s.Stddev, s.Min, s.P25, s.P50, s.P75, s.P90, s.P99, s.P999, s.Max)
}

// Histogram bins xs into nbins equal-width bins over [min, max] and
// returns the bin counts. Values outside the range clamp to the edge
// bins. Used for violin-style density summaries.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || max <= min {
		return counts
	}
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
