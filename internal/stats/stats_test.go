package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty slice should be NaN")
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile single-element p=%v = %v", p, got)
		}
	}
}

func TestPercentilesMatchSingleCalls(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6}
	ps := []float64{10, 50, 90, 99}
	multi := Percentiles(xs, ps...)
	for i, p := range ps {
		if single := Percentile(xs, p); !almost(multi[i], single, 1e-12) {
			t.Errorf("Percentiles[%v]=%v, Percentile=%v", p, multi[i], single)
		}
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := Percentile(xs, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Stddev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := FractionBelow(xs, 3); !almost(got, 0.4, 1e-12) {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := FractionBelow(xs, 100); !almost(got, 1, 1e-12) {
		t.Fatalf("FractionBelow(all) = %v", got)
	}
}

func TestCDFSteps(t *testing.T) {
	xs := []float64{1, 1, 2, 3}
	cdf := CDF(xs)
	if len(cdf) != 3 {
		t.Fatalf("CDF has %d steps, want 3", len(cdf))
	}
	if !almost(CDFAt(cdf, 1), 0.5, 1e-12) {
		t.Fatalf("CDFAt(1) = %v", CDFAt(cdf, 1))
	}
	if !almost(CDFAt(cdf, 2.5), 0.75, 1e-12) {
		t.Fatalf("CDFAt(2.5) = %v", CDFAt(cdf, 2.5))
	}
	if CDFAt(cdf, 0) != 0 {
		t.Fatalf("CDFAt below min = %v", CDFAt(cdf, 0))
	}
	if CDFAt(cdf, 99) != 1 {
		t.Fatalf("CDFAt above max = %v", CDFAt(cdf, 99))
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		cdf := CDF(xs)
		prevV, prevF := math.Inf(-1), 0.0
		for _, p := range cdf {
			if p.Value <= prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		if len(cdf) > 0 && !almost(cdf[len(cdf)-1].Fraction, 1, 1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("Pearson with zero variance should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Fatal("Pearson with n<2 should be NaN")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Fatalf("LinearFit = %v, %v", slope, intercept)
	}
}

func TestSummarizeOrdering(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
	if !(s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 &&
		s.P75 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("summary quantiles not ordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 5, -3}
	h := Histogram(xs, 0, 2, 4)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram total = %d, want %d (clamping)", total, len(xs))
	}
	if h[0] < 2 { // 0, 0.5 and the clamped -3
		t.Fatalf("first bin = %d", h[0])
	}
}
