package core

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/vm"
)

// RegionStat accumulates per-object attribution: which allocation's
// demand misses stall the core, and for how long. This is the simulator
// equivalent of the paper's Pin + addr2line workflow (§5.7) that
// identified 605.mcf's two hot 2 GB objects.
type RegionStat struct {
	Object       vm.Object
	DemandMisses uint64
	StallCycles  float64
}

// SetRegions enables per-object attribution for the given allocations.
// Call before running a workload; pass nil to disable.
func (m *Machine) SetRegions(objs []vm.Object) {
	m.regions = m.regions[:0]
	for _, o := range objs {
		m.regions = append(m.regions, RegionStat{Object: o})
	}
}

// RegionStats returns the accumulated attribution.
func (m *Machine) RegionStats() []RegionStat { return m.regions }

// regionIndex finds the region containing addr (-1 if none). Linear
// scan: placement analyses track a handful of objects.
func (m *Machine) regionIndex(addr uint64) int {
	for i := range m.regions {
		if m.regions[i].Object.Contains(addr) {
			return i
		}
	}
	return -1
}

// Preload installs an address range into the LLC (and the leading edge
// into L2) as already-resident clean lines, modelling the steady-state
// residency a long-running program would have built up — simulation
// windows are far too short to warm hundreds of megabytes organically.
// Total preloading is capped at 85% of LLC capacity; later calls
// preload less once the budget is spent.
func (m *Machine) Preload(base, size uint64) {
	capacity := uint64(float64(m.l3.Sets()*m.l3.Ways()) * 0.85)
	l2cap := uint64(float64(m.l2.Sets()*m.l2.Ways()) * 0.5)
	lines := size / mem.LineSize
	for i := uint64(0); i < lines; i++ {
		if m.preloaded >= capacity {
			return
		}
		addr := base + i*mem.LineSize
		m.l3.Insert(addr, 0, false)
		if i < l2cap {
			m.l2.Insert(addr, 0, false)
		}
		m.preloaded++
	}
}
