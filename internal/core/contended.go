package core

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/traffic"
)

// ContendedDevice co-simulates background traffic threads with the
// foreground core: before each foreground access, every background
// thread is advanced to the current simulated time, so their requests
// land on the shared device in timestamp order. This is how
// multi-threaded workloads are modelled — one representative core in
// detail, siblings as calibrated traffic (DESIGN.md §3.2).
type ContendedDevice struct {
	inner   mem.Device
	threads []traffic.Thread
	wake    []float64
	alive   []bool
}

var _ mem.Device = (*ContendedDevice)(nil)

// NewContendedDevice wraps inner with background threads.
func NewContendedDevice(inner mem.Device, threads []traffic.Thread) *ContendedDevice {
	c := &ContendedDevice{inner: inner, threads: threads}
	c.wake = make([]float64, len(threads))
	c.alive = make([]bool, len(threads))
	for i := range c.alive {
		c.alive[i] = true
	}
	return c
}

// Name implements mem.Device.
func (c *ContendedDevice) Name() string { return c.inner.Name() }

// Reset implements mem.Device. Background thread state is external;
// callers construct fresh threads per run.
func (c *ContendedDevice) Reset() {
	c.inner.Reset()
	for i := range c.wake {
		c.wake[i] = 0
		c.alive[i] = true
	}
}

// Stats implements mem.Device.
func (c *ContendedDevice) Stats() mem.DeviceStats { return c.inner.Stats() }

// advance steps background threads up to time now.
func (c *ContendedDevice) advance(now float64) {
	for {
		best := -1
		for i := range c.threads {
			if c.alive[i] && (best < 0 || c.wake[i] < c.wake[best]) {
				best = i
			}
		}
		if best < 0 || c.wake[best] > now {
			return
		}
		next := c.threads[best].Step(c.wake[best])
		if next <= c.wake[best] {
			c.alive[best] = false
			continue
		}
		c.wake[best] = next
	}
}

// Access implements mem.Device.
func (c *ContendedDevice) Access(now float64, addr uint64, kind mem.Kind) float64 {
	c.advance(now)
	return c.inner.Access(now, addr, kind)
}
