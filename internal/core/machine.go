// Package core implements the CPU-backend model that executes workloads
// against the simulated memory hierarchy and accounts stall cycles the
// way Intel's PMU does (paper Table 2, Figure 10).
//
// The model is an interval-style simplification of an out-of-order
// backend: µops issue up to a run-ahead window (ROB/width), loads occupy
// line-fill buffers, stores drain through a finite store buffer, and
// retirement is in-order at the configured width. Whenever retirement
// waits on an incomplete µop the stall window is attributed to the
// hierarchy level that resolved it — which yields exactly the nesting
// semantics of BOUND_ON_LOADS ⊇ STALLS_L1D_MISS ⊇ STALLS_L2_MISS ⊇
// STALLS_L3_MISS that Spa's differential analysis relies on.
//
// Hardware prefetchers run against the same hierarchy: lines installed
// by an in-flight prefetch are *pending* and a demand access to one is a
// delayed hit, stalling at the cache level rather than DRAM — the
// paper's cache-slowdown mechanism (§5.4, Figure 13). The L2 streamer
// has a finite in-flight budget, so longer memory latencies reduce its
// issue rate and shift fetches to the L1 prefetcher (Figure 12).
package core

import (
	"github.com/moatlab/melody/internal/cache"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/prefetch"
	"github.com/moatlab/melody/internal/sim"
)

// Config assembles a Machine.
type Config struct {
	CPU    platform.CPU
	Device mem.Device

	// PrefetchersOff disables both hardware prefetchers (the paper's
	// ablation in §5.4).
	PrefetchersOff bool

	// MaxInstructions bounds the run; Done() turns true past it.
	MaxInstructions uint64

	// SampleIntervalNs enables time-based counter sampling (the paper
	// samples every 1 ms for period-based Spa analysis).
	SampleIntervalNs float64

	// Sampler, together with SampleEveryCycles, enables deterministic
	// cycle-based sampling: the hook receives a counter snapshot every
	// SampleEveryCycles simulated cycles, derived purely from the sim
	// clock (never wall time), so sampled streams are bit-identical
	// across runs and worker schedules. Sampling is observation-only:
	// the hook cannot change machine state, and the detached path
	// (Sampler nil) costs one branch and zero allocations per retire.
	Sampler           Sampler
	SampleEveryCycles uint64

	// L2PFMaxInflight is the L2 streamer's in-flight budget (issue
	// slots). 0 selects the default.
	L2PFMaxInflight int
}

// Sampler receives periodic counter snapshots from the machine loop.
// Implementations must treat the snapshot as read-only truth about the
// machine at timeNs; they are called on the simulation goroutine.
type Sampler interface {
	Sample(timeNs float64, c counters.Snapshot)
}

// Sample is one time-based counter reading.
type Sample struct {
	TimeNs   float64
	Counters counters.Snapshot
}

// resolution levels for stall classification.
const (
	levelL1 = iota
	levelL2
	levelL3
	levelDRAM
)

// Machine executes one workload thread. Not safe for concurrent use.
type Machine struct {
	cfg        Config
	dev        mem.Device
	nsPerCycle float64
	issueStep  float64 // ns per µop at issue width
	robWindow  float64 // ns of permissible issue run-ahead

	l1, l2, l3 *cache.Cache
	l1pf, l2pf *prefetch.Streamer

	lfb     *sim.TimeHeap // outstanding L1-miss fills (completion ns)
	sb      *sim.TimeHeap // store-buffer drain times (ns)
	l2pfQ   *sim.TimeHeap // in-flight L2 prefetches
	l2pfMax int

	issueNs  float64
	retireNs float64
	depReady float64 // availability of the most recent load's value

	// robRing holds the retirement times of the last ROB µops; a new op
	// cannot issue before the op ROB slots older has retired.
	robRing []float64
	robPos  int

	instr uint64
	ctr   counters.Snapshot

	pfBuf []uint64

	samples      []Sample
	nextSampleNs float64

	hook       Sampler
	hookStepNs float64
	nextHookNs float64

	regions   []RegionStat
	preloaded uint64
}

// New builds a Machine over cfg. The device is not Reset; callers own
// device lifecycle so contended setups can share one device.
func New(cfg Config) *Machine {
	cpu := cfg.CPU
	if cpu.FreqGHz <= 0 || cpu.RetireWidth <= 0 {
		panic("core: invalid CPU config")
	}
	l2pfMax := cfg.L2PFMaxInflight
	if l2pfMax <= 0 {
		l2pfMax = 24
	}
	m := &Machine{
		cfg:        cfg,
		dev:        cfg.Device,
		nsPerCycle: 1 / cpu.FreqGHz,
		l1:         cache.New(cpu.L1DBytes, 8),
		l2:         cache.New(cpu.L2Bytes, 16),
		l3:         cache.New(cpu.L3Bytes, 16),
		l1pf:       prefetch.New(prefetch.L1Config()),
		l2pf:       prefetch.New(prefetch.L2Config()),
		lfb:        &sim.TimeHeap{},
		sb:         &sim.TimeHeap{},
		l2pfQ:      &sim.TimeHeap{},
		l2pfMax:    l2pfMax,
	}
	m.issueStep = m.nsPerCycle / float64(cpu.RetireWidth)
	m.robWindow = float64(cpu.ROB) / float64(cpu.RetireWidth) * m.nsPerCycle
	m.robRing = make([]float64, cpu.ROB)
	if cfg.SampleIntervalNs > 0 {
		m.nextSampleNs = cfg.SampleIntervalNs
	}
	if cfg.Sampler != nil && cfg.SampleEveryCycles > 0 {
		m.hook = cfg.Sampler
		m.hookStepNs = float64(cfg.SampleEveryCycles) * m.nsPerCycle
		m.nextHookNs = m.hookStepNs
	}
	return m
}

// latencies in ns.
func (m *Machine) l1Lat() float64 { return float64(m.cfg.CPU.L1Lat) * m.nsPerCycle }
func (m *Machine) l2Lat() float64 { return float64(m.cfg.CPU.L2Lat) * m.nsPerCycle }
func (m *Machine) l3Lat() float64 { return float64(m.cfg.CPU.L3Lat) * m.nsPerCycle }

// Done reports whether the instruction budget is exhausted.
func (m *Machine) Done() bool {
	return m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions
}

// SetMaxInstructions replaces the instruction budget, letting callers
// run a warmup phase, snapshot counters, and continue measuring.
func (m *Machine) SetMaxInstructions(n uint64) {
	m.cfg.MaxInstructions = n
}

// Instructions returns the retired instruction count.
func (m *Machine) Instructions() uint64 { return m.instr }

// TimeNs returns the current retirement time.
func (m *Machine) TimeNs() float64 { return m.retireNs }

// Counters returns a snapshot including Cycles and Instructions.
func (m *Machine) Counters() counters.Snapshot {
	c := m.ctr
	c[counters.Cycles] = m.retireNs / m.nsPerCycle
	c[counters.Instructions] = float64(m.instr)
	return c
}

// Samples returns time-based counter samples (if sampling was enabled).
func (m *Machine) Samples() []Sample { return m.samples }

// cycles converts a ns duration to cycles.
func (m *Machine) cycles(ns float64) float64 { return ns / m.nsPerCycle }

// maybeSample records counter snapshots at the configured cadences:
// the time-based series (SampleIntervalNs) and the cycle-based hook
// (Sampler + SampleEveryCycles). Both cadences derive from the sim
// clock, so sampling is deterministic; with neither configured this is
// two predictable branches and no work.
func (m *Machine) maybeSample() {
	if m.nextSampleNs != 0 {
		for m.retireNs >= m.nextSampleNs {
			m.samples = append(m.samples, Sample{TimeNs: m.nextSampleNs, Counters: m.Counters()})
			m.nextSampleNs += m.cfg.SampleIntervalNs
		}
	}
	if m.hook != nil {
		for m.retireNs >= m.nextHookNs {
			m.hook.Sample(m.nextHookNs, m.Counters())
			m.nextHookNs += m.hookStepNs
		}
	}
}

// advanceIssue moves the issue clock for one µop. Issue may run ahead
// of retirement (out-of-order execution) but an op cannot dispatch
// before the op ROB slots older has retired.
func (m *Machine) advanceIssue() float64 {
	t := m.issueNs + m.issueStep
	if bound := m.robRing[m.robPos]; t < bound {
		t = bound
	}
	m.issueNs = t
	return t
}

// robRetire records the current op's retirement time in the ROB ring.
func (m *Machine) robRetire() {
	m.robRing[m.robPos] = m.retireNs
	m.robPos++
	if m.robPos == len(m.robRing) {
		m.robPos = 0
	}
}

// robRetireN records retirement for n µops retired together (compute
// bundles); intermediate slots inherit the same completion time.
func (m *Machine) robRetireN(n uint64) {
	steps := n
	if steps > uint64(len(m.robRing)) {
		steps = uint64(len(m.robRing))
	}
	for i := uint64(0); i < steps; i++ {
		m.robRetire()
	}
}

// retireAt retires one µop whose result is available at ready,
// accounting the stall against the given level (levelL1..levelDRAM, or
// the special store/serialize paths handled by callers).
func (m *Machine) retireLoadAt(ready float64, level int) (stallCycles float64) {
	tentative := m.retireNs + m.issueStep
	if ready > tentative {
		stall := m.cycles(ready - tentative)
		stallCycles = stall
		m.ctr[counters.RetiredStalls] += stall
		m.ctr[counters.BoundOnLoads] += stall
		if level >= levelL2 {
			m.ctr[counters.StallsL1DMiss] += stall
		}
		if level >= levelL3 {
			m.ctr[counters.StallsL2Miss] += stall
		}
		if level >= levelDRAM {
			m.ctr[counters.StallsL3Miss] += stall
		}
		m.retireNs = ready
	} else {
		m.retireNs = tentative
	}
	m.robRetire()
	m.maybeSample()
	return stallCycles
}

// deviceRead issues a read-class request to the backing device,
// including the CPU-side miss overhead on both directions.
func (m *Machine) deviceRead(t float64, addr uint64, kind mem.Kind) float64 {
	half := m.cfg.CPU.MissOverheadNs / 2
	return m.dev.Access(t+half, addr, kind) + half
}

// lfbAcquire blocks until a line-fill buffer is free at time t and
// returns the (possibly later) issue time.
func (m *Machine) lfbAcquire(t float64) float64 {
	for m.lfb.Len() > 0 && m.lfb.Min() <= t {
		m.lfb.PopMin()
	}
	for m.lfb.Len() >= m.cfg.CPU.LFBEntries {
		free := m.lfb.PopMin()
		if free > t {
			t = free
		}
	}
	return t
}

// lookupLoad resolves a demand load at time t and returns the level that
// resolved it and when the value is available.
func (m *Machine) lookupLoad(t float64, addr uint64) (level int, ready float64) {
	if e, hit := m.l1.Probe(addr); hit {
		ready = t + m.l1Lat()
		if lr := m.l1.ReadyAt(e); lr > ready {
			// Delayed hit on an in-flight (prefetched) line: stalls
			// land at the cache, not DRAM.
			ready = lr
			m.ctr[counters.DelayedHits]++
		}
		return levelL1, ready
	}
	t = m.lfbAcquire(t)
	m.trainL2(addr, t)
	if e, hit := m.l2.Probe(addr); hit {
		ready = t + m.l2Lat()
		if lr := m.l2.ReadyAt(e); lr > ready {
			ready = lr
			m.ctr[counters.DelayedHits]++
		}
		m.fillL1(addr, ready)
		m.lfb.Push(ready)
		return levelL2, ready
	}
	if e, hit := m.l3.Probe(addr); hit {
		ready = t + m.l3Lat()
		if lr := m.l3.ReadyAt(e); lr > ready {
			ready = lr
			m.ctr[counters.DelayedHits]++
		}
		m.fillL1(addr, ready)
		m.fillL2(addr, ready)
		m.lfb.Push(ready)
		return levelL3, ready
	}
	m.ctr[counters.DemandL3Miss]++
	ready = m.deviceRead(t, addr, mem.DemandRead)
	m.fillL1(addr, ready)
	m.fillL2(addr, ready)
	m.fillL3(addr, ready, false)
	m.lfb.Push(ready)
	return levelDRAM, ready
}

// fill helpers. L1/L2 victims are dropped silently (their dirty state is
// tracked at the LLC); dirty LLC victims write back to the device.
func (m *Machine) fillL1(addr uint64, ready float64) {
	m.l1.Insert(addr, ready, false)
}

func (m *Machine) fillL2(addr uint64, ready float64) {
	m.l2.Insert(addr, ready, false)
}

func (m *Machine) fillL3(addr uint64, ready float64, dirty bool) {
	v := m.l3.Insert(addr, ready, dirty)
	if v.Evicted && v.Dirty {
		// Posted writeback; does not block the core.
		m.dev.Access(ready, v.Addr, mem.Write)
	}
}

// Load executes one demand load. dependent marks it as consuming the
// previous load's value (pointer chasing).
func (m *Machine) Load(addr uint64, dependent bool) {
	m.instr++
	m.ctr[counters.DemandLoads]++
	t := m.advanceIssue()
	if dependent && m.depReady > t {
		t = m.depReady
	}
	level, ready := m.lookupLoad(t, addr)
	m.depReady = ready
	stall := m.retireLoadAt(ready, level)
	if len(m.regions) > 0 && level == levelDRAM {
		if i := m.regionIndex(addr); i >= 0 {
			m.regions[i].DemandMisses++
			m.regions[i].StallCycles += stall
		}
	}
	if !m.cfg.PrefetchersOff {
		m.runL1Prefetch(addr, t)
	}
}

// Store executes one store. Retirement only stalls when the store
// buffer is full (BOUND_ON_STORES); the RFO round trip is hidden by the
// buffer but determines how fast entries drain.
func (m *Machine) Store(addr uint64) {
	m.instr++
	m.ctr[counters.StoreOps]++
	t := m.advanceIssue()

	for m.sb.Len() > 0 && m.sb.Min() <= t {
		m.sb.PopMin()
	}
	tentative := m.retireNs + m.issueStep
	if m.sb.Len() >= m.cfg.CPU.SBEntries {
		free := m.sb.PopMin()
		if free > tentative {
			stall := m.cycles(free - tentative)
			m.ctr[counters.RetiredStalls] += stall
			m.ctr[counters.BoundOnStores] += stall
			m.retireNs = free
		} else {
			m.retireNs = tentative
		}
		if free > t {
			t = free
		}
	} else {
		m.retireNs = tentative
	}

	drain := m.rfo(t, addr)
	m.sb.Push(drain)
	m.robRetire()
	m.maybeSample()
	if !m.cfg.PrefetchersOff {
		m.runL1Prefetch(addr, t)
	}
}

// rfo obtains ownership of addr's line for a store and returns the
// store-buffer drain time.
func (m *Machine) rfo(t float64, addr uint64) float64 {
	if e, hit := m.l1.Probe(addr); hit {
		ready := t + m.l1Lat()
		if lr := m.l1.ReadyAt(e); lr > ready {
			ready = lr
		}
		m.l1.MarkDirty(e)
		m.markL3Dirty(addr, ready)
		return ready
	}
	t = m.lfbAcquire(t)
	m.trainL2(addr, t)
	if e, hit := m.l2.Probe(addr); hit {
		ready := t + m.l2Lat()
		if lr := m.l2.ReadyAt(e); lr > ready {
			ready = lr
		}
		m.fillL1(addr, ready)
		m.markL3Dirty(addr, ready)
		m.lfb.Push(ready)
		return ready
	}
	if e, hit := m.l3.Probe(addr); hit {
		ready := t + m.l3Lat()
		if lr := m.l3.ReadyAt(e); lr > ready {
			ready = lr
		}
		m.fillL1(addr, ready)
		m.fillL2(addr, ready)
		m.l3.MarkDirty(e)
		m.lfb.Push(ready)
		return ready
	}
	ready := m.deviceRead(t, addr, mem.RFO)
	m.fillL1(addr, ready)
	m.fillL2(addr, ready)
	m.fillL3(addr, ready, true)
	m.lfb.Push(ready)
	return ready
}

// markL3Dirty marks addr dirty in the LLC, inserting it if the line is
// L1-resident but fell out of the LLC.
func (m *Machine) markL3Dirty(addr uint64, ready float64) {
	if e, ok := m.l3.Peek(addr); ok {
		m.l3.MarkDirty(e)
		return
	}
	m.fillL3(addr, ready, true)
}

// Compute retires n µops at the CPU's default ILP (near retire width).
func (m *Machine) Compute(n uint64) {
	m.ComputeILP(n, float64(m.cfg.CPU.RetireWidth))
}

// ComputeILP retires n µops that sustain the given ILP (µops/cycle).
func (m *Machine) ComputeILP(n uint64, ilp float64) {
	if n == 0 {
		return
	}
	width := float64(m.cfg.CPU.RetireWidth)
	if ilp <= 0 || ilp > width {
		ilp = width
	}
	m.instr += n
	cyc := float64(n) / ilp
	switch {
	case ilp <= 1.2:
		m.ctr[counters.OnePortsUtil] += cyc
	case ilp <= 2.2:
		m.ctr[counters.TwoPortsUtil] += cyc
	}
	m.retireNs += cyc * m.nsPerCycle
	m.issueNs += float64(n) / width * m.nsPerCycle
	if m.issueNs < m.retireNs {
		m.issueNs = m.retireNs
	}
	m.robRetireN(n)
	m.maybeSample()
}

// Serialize models a serializing operation (fence, scoreboard flush):
// retirement waits for all outstanding memory work.
func (m *Machine) Serialize() {
	m.instr++
	t := m.retireNs
	if m.depReady > t {
		t = m.depReady
	}
	for m.lfb.Len() > 0 {
		if v := m.lfb.PopMin(); v > t {
			t = v
		}
	}
	for m.sb.Len() > 0 {
		if v := m.sb.PopMin(); v > t {
			t = v
		}
	}
	if t > m.retireNs {
		stall := m.cycles(t - m.retireNs)
		m.ctr[counters.RetiredStalls] += stall
		m.ctr[counters.StallsScoreboard] += stall
		m.retireNs = t
	}
	m.issueNs = m.retireNs
	m.robRetire()
	m.maybeSample()
}

// runL1Prefetch trains the L1 prefetcher and issues its proposals.
func (m *Machine) runL1Prefetch(addr uint64, t float64) {
	m.pfBuf = m.l1pf.Observe(addr, m.pfBuf[:0])
	for _, pf := range m.pfBuf {
		m.issueL1Prefetch(pf, t)
	}
}

// issueL1Prefetch fetches one line toward L1 on the prefetcher's behalf.
func (m *Machine) issueL1Prefetch(addr uint64, t float64) {
	if _, hit := m.l1.Peek(addr); hit {
		return
	}
	// Prefetches are dropped rather than queued when fill buffers are
	// exhausted.
	for m.lfb.Len() > 0 && m.lfb.Min() <= t {
		m.lfb.PopMin()
	}
	if m.lfb.Len() >= m.cfg.CPU.LFBEntries {
		return
	}
	m.ctr[counters.L1PFIssued]++
	// The request reaches the L2 level, so it trains the L2 streamer —
	// on covered streams this is the streamer's main training source.
	m.trainL2(addr, t)
	if e, hit := m.l2.Peek(addr); hit {
		ready := t + m.l2Lat()
		if lr := m.l2.ReadyAt(e); lr > ready {
			ready = lr // late L2 prefetch: L1PF hits a pending line
		}
		m.fillL1(addr, ready)
		m.lfb.Push(ready)
		return
	}
	if e, hit := m.l3.Peek(addr); hit {
		ready := t + m.l3Lat()
		if lr := m.l3.ReadyAt(e); lr > ready {
			ready = lr
		}
		m.fillL1(addr, ready)
		m.fillL2(addr, ready)
		m.lfb.Push(ready)
		return
	}
	// The L2 streamer did not cover this line; the L1 prefetcher goes
	// all the way to (CXL) memory (Figure 12a's L1PF-L3-miss increase).
	m.ctr[counters.L1PFL3Miss]++
	ready := m.deviceRead(t, addr, mem.PrefetchL1)
	m.fillL1(addr, ready)
	m.fillL2(addr, ready)
	m.fillL3(addr, ready, false)
	m.lfb.Push(ready)
}

// trainL2 feeds the L2 streamer with L2-level traffic and issues its
// proposals, subject to the engine's in-flight budget.
func (m *Machine) trainL2(addr uint64, t float64) {
	if m.cfg.PrefetchersOff {
		return
	}
	buf := m.l2pf.Observe(addr, m.pfBuf[:0])
	for _, pf := range buf {
		m.issueL2Prefetch(pf, t)
	}
}

// issueL2Prefetch fetches one line toward L2 on the streamer's behalf.
func (m *Machine) issueL2Prefetch(addr uint64, t float64) {
	if _, hit := m.l2.Peek(addr); hit {
		return
	}
	if e, hit := m.l3.Peek(addr); hit {
		ready := t + m.l3Lat()
		if lr := m.l3.ReadyAt(e); lr > ready {
			ready = lr
		}
		m.ctr[counters.L2PFIssued]++
		m.ctr[counters.L2PFL3Hit]++
		m.fillL2(addr, ready)
		return
	}
	for m.l2pfQ.Len() > 0 && m.l2pfQ.Min() <= t {
		m.l2pfQ.PopMin()
	}
	if m.l2pfQ.Len() >= m.l2pfMax {
		// Out of issue slots: with long (CXL) latencies slots stay
		// occupied longer, so coverage drops and the L1 prefetcher
		// inherits the fetch (paper §5.4).
		m.ctr[counters.L2PFDropped]++
		return
	}
	m.ctr[counters.L2PFIssued]++
	m.ctr[counters.L2PFL3Miss]++
	ready := m.deviceRead(t, addr, mem.PrefetchL2)
	m.fillL2(addr, ready)
	m.fillL3(addr, ready, false)
	m.l2pfQ.Push(ready)
}
