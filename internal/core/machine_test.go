package core

import (
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/traffic"
)

// fixedDev is a deterministic constant-latency device for unit tests.
type fixedDev struct {
	lat   float64
	stats mem.DeviceStats
}

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		d.stats.Writes++
		return now + d.lat/4
	}
	d.stats.Reads++
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 { d.stats = mem.DeviceStats{} }
func (d *fixedDev) Stats() mem.DeviceStats { return d.stats }

func testCPU() platform.CPU {
	cpu := platform.SKX2S().CPU
	cpu.MissOverheadNs = 0 // keep arithmetic simple in tests
	return cpu
}

func newMachine(lat float64) *Machine {
	return New(Config{CPU: testCPU(), Device: &fixedDev{lat: lat}})
}

func TestPureComputeNoStalls(t *testing.T) {
	m := newMachine(100)
	m.Compute(100000)
	c := m.Counters()
	if c[counters.RetiredStalls] != 0 {
		t.Fatalf("compute produced %v stall cycles", c[counters.RetiredStalls])
	}
	if ipc := c.IPC(); ipc < 3.9 || ipc > 4.1 {
		t.Fatalf("compute IPC = %v, want ~4", ipc)
	}
}

func TestL1ResidentLoadsFast(t *testing.T) {
	m := newMachine(100)
	// 16KB working set fits in the 32KB L1.
	for i := 0; i < 50000; i++ {
		m.Load(uint64(i%256)*mem.LineSize, false)
		m.Compute(3)
	}
	c := m.Counters()
	if c[counters.StallsL1DMiss] > c[counters.Cycles]*0.05 {
		t.Fatalf("L1-resident loop has %v L1-miss stall cycles", c[counters.StallsL1DMiss])
	}
	if c[counters.DemandL3Miss] > 300 {
		t.Fatalf("L1-resident loop reached DRAM %v times", c[counters.DemandL3Miss])
	}
}

func TestPointerChaseStallsOnDRAM(t *testing.T) {
	m := newMachine(200)
	m.cfg.PrefetchersOff = true
	r := sim.NewRand(1)
	const ws = 256 << 20
	for i := 0; i < 20000; i++ {
		m.Load(r.Uint64n(ws/mem.LineSize)*mem.LineSize, true)
	}
	c := m.Counters()
	total := c[counters.Cycles]
	if c[counters.StallsL3Miss] < total*0.8 {
		t.Fatalf("pointer chase: DRAM stalls %v of %v cycles, want >80%%",
			c[counters.StallsL3Miss], total)
	}
	// Counter nesting must hold.
	if !(c[counters.BoundOnLoads] >= c[counters.StallsL1DMiss] &&
		c[counters.StallsL1DMiss] >= c[counters.StallsL2Miss] &&
		c[counters.StallsL2Miss] >= c[counters.StallsL3Miss]) {
		t.Fatalf("stall nesting violated: P1=%v P3=%v P4=%v P5=%v",
			c[counters.BoundOnLoads], c[counters.StallsL1DMiss],
			c[counters.StallsL2Miss], c[counters.StallsL3Miss])
	}
}

func TestSlowerDeviceSlowsChase(t *testing.T) {
	run := func(lat float64) float64 {
		m := newMachine(lat)
		r := sim.NewRand(1)
		for i := 0; i < 20000; i++ {
			m.Load(r.Uint64n((256<<20)/mem.LineSize)*mem.LineSize, true)
		}
		return m.Counters()[counters.Cycles]
	}
	local, cxl := run(100), run(300)
	slowdown := cxl/local - 1
	// Dependent loads at 20k instructions: nearly all time is memory, so
	// a 3x latency increase should slow by roughly 2.5-3x.
	if slowdown < 1.5 {
		t.Fatalf("3x device latency gave only %.0f%% slowdown", slowdown*100)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	run := func(dependent bool) float64 {
		m := newMachine(200)
		m.cfg.PrefetchersOff = true
		r := sim.NewRand(1)
		for i := 0; i < 20000; i++ {
			m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, dependent)
		}
		return m.Counters()[counters.Cycles]
	}
	dep, indep := run(true), run(false)
	if indep > dep/3 {
		t.Fatalf("MLP: independent loads (%v cycles) not much faster than dependent (%v)", indep, dep)
	}
}

func TestStreamingPrefetchHelps(t *testing.T) {
	run := func(off bool) float64 {
		m := newMachine(150)
		m.cfg.PrefetchersOff = off
		for i := uint64(0); i < 100000; i++ {
			m.Load(i*mem.LineSize, false)
			m.Compute(4)
		}
		return m.Counters()[counters.Cycles]
	}
	on, off := run(false), run(true)
	if on > off*0.7 {
		t.Fatalf("prefetch on (%v cycles) not much faster than off (%v)", on, off)
	}
}

func TestPrefetchersOffNoCacheStalls(t *testing.T) {
	// Paper §5.4: with prefetchers disabled there are virtually no
	// cache-level stalls — everything shifts to DRAM.
	m := newMachine(250)
	m.cfg.PrefetchersOff = true
	for i := uint64(0); i < 50000; i++ {
		m.Load(i*mem.LineSize, false)
		m.Compute(4)
	}
	c := m.Counters()
	sCache := (c[counters.BoundOnLoads] - c[counters.StallsL1DMiss]) +
		(c[counters.StallsL1DMiss] - c[counters.StallsL2Miss]) +
		(c[counters.StallsL2Miss] - c[counters.StallsL3Miss])
	if sCache > c[counters.Cycles]*0.05 {
		t.Fatalf("prefetchers off but cache stalls = %v of %v cycles", sCache, c[counters.Cycles])
	}
	if c[counters.L1PFIssued]+c[counters.L2PFIssued] != 0 {
		t.Fatal("prefetches issued while disabled")
	}
}

func TestStreamingCXLShiftsStallsToCache(t *testing.T) {
	// With prefetchers on, higher memory latency converts DRAM stalls
	// into delayed hits at the caches (the paper's Figure 13 flow).
	run := func(lat float64) (cacheStalls, cycles float64) {
		m := newMachine(lat)
		for i := uint64(0); i < 100000; i++ {
			m.Load(i*mem.LineSize, false)
			m.Compute(6)
		}
		c := m.Counters()
		cacheStalls = c[counters.BoundOnLoads] - c[counters.StallsL3Miss]
		return cacheStalls, c[counters.Cycles]
	}
	localStall, localCycles := run(60)
	cxlStall, _ := run(350)
	if cxlStall <= localStall {
		t.Fatalf("cache stalls did not grow under CXL latency: local=%v cxl=%v (local cycles %v)",
			localStall, cxlStall, localCycles)
	}
}

func TestL2PFBudgetDropsUnderLatency(t *testing.T) {
	// The compute/load ratio puts line demand (~0.15 lines/ns) between
	// the streamer's issue capacity at local latency (12/60ns) and at
	// CXL latency (12/400ns) — the regime where latency costs coverage.
	run := func(lat float64) (dropped, l1pfMiss, l2pfMiss float64) {
		m := newMachine(lat)
		for i := uint64(0); i < 50000; i++ {
			m.Load(i*mem.LineSize, false)
			m.Compute(60)
		}
		c := m.Counters()
		return c[counters.L2PFDropped], c[counters.L1PFL3Miss], c[counters.L2PFL3Miss]
	}
	dLocal, _, l2Local := run(60)
	dCXL, l1CXL, l2CXL := run(400)
	if dCXL <= dLocal {
		t.Fatalf("L2PF drops did not increase with latency: %v -> %v", dLocal, dCXL)
	}
	if l2CXL >= l2Local {
		t.Fatalf("L2PF-L3-miss did not decrease under CXL: %v -> %v", l2Local, l2CXL)
	}
	if l1CXL == 0 {
		t.Fatal("L1PF never reached DRAM under CXL")
	}
}

func TestStoreBufferStalls(t *testing.T) {
	m := newMachine(300)
	m.cfg.PrefetchersOff = true
	r := sim.NewRand(3)
	for i := 0; i < 30000; i++ {
		m.Store(r.Uint64n((1<<30)/mem.LineSize) * mem.LineSize)
	}
	c := m.Counters()
	if c[counters.BoundOnStores] == 0 {
		t.Fatal("store blast never filled the store buffer")
	}
	if c[counters.BoundOnStores] < c[counters.Cycles]*0.3 {
		t.Fatalf("store-bound workload: P2 = %v of %v cycles", c[counters.BoundOnStores], c[counters.Cycles])
	}
}

func TestSerializeScoreboardStalls(t *testing.T) {
	// A fence after a store must wait for the store buffer to drain.
	m := newMachine(200)
	r := sim.NewRand(5)
	for i := 0; i < 2000; i++ {
		m.Store(r.Uint64n((1<<30)/mem.LineSize) * mem.LineSize)
		m.Serialize()
	}
	if m.Counters()[counters.StallsScoreboard] == 0 {
		t.Fatal("serializing ops produced no scoreboard stalls")
	}
}

func TestPortUtilCounters(t *testing.T) {
	m := newMachine(100)
	m.ComputeILP(10000, 1.0)
	m.ComputeILP(10000, 2.0)
	c := m.Counters()
	if c[counters.OnePortsUtil] == 0 || c[counters.TwoPortsUtil] == 0 {
		t.Fatalf("port-util counters not populated: P7=%v P8=%v",
			c[counters.OnePortsUtil], c[counters.TwoPortsUtil])
	}
}

func TestSampling(t *testing.T) {
	m := New(Config{CPU: testCPU(), Device: &fixedDev{lat: 200}, SampleIntervalNs: 1000})
	r := sim.NewRand(7)
	for i := 0; i < 20000; i++ {
		m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, true)
	}
	s := m.Samples()
	if len(s) < 10 {
		t.Fatalf("only %d samples", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].TimeNs <= s[i-1].TimeNs {
			t.Fatal("samples not time-ordered")
		}
		if s[i].Counters[counters.Cycles] < s[i-1].Counters[counters.Cycles] {
			t.Fatal("counter samples not monotone")
		}
	}
}

func TestDoneBudget(t *testing.T) {
	m := New(Config{CPU: testCPU(), Device: &fixedDev{lat: 100}, MaxInstructions: 100})
	for !m.Done() {
		m.Compute(10)
	}
	if m.Instructions() < 100 {
		t.Fatalf("stopped at %d instructions", m.Instructions())
	}
}

func TestRetiredStallsCoversComponents(t *testing.T) {
	m := newMachine(250)
	r := sim.NewRand(9)
	for i := 0; i < 10000; i++ {
		switch i % 4 {
		case 0, 1:
			m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, i%8 == 0)
		case 2:
			m.Store(r.Uint64n((1<<30)/mem.LineSize) * mem.LineSize)
		case 3:
			m.Compute(8)
		}
	}
	c := m.Counters()
	sum := c[counters.BoundOnLoads] + c[counters.BoundOnStores] + c[counters.StallsScoreboard]
	if diff := c[counters.RetiredStalls] - sum; diff > 1 || diff < -1 {
		t.Fatalf("P6 (%v) != P1+P2+P9 (%v)", c[counters.RetiredStalls], sum)
	}
}

// tickThread issues one read per interval, counting its steps.
type tickThread struct {
	interval float64
	dev      mem.Device
	steps    int
}

func (t *tickThread) Step(now float64) float64 {
	t.dev.Access(now, 0x1000, mem.DemandRead)
	t.steps++
	return now + t.interval
}

func TestContendedDeviceAdvancesSiblings(t *testing.T) {
	dev := &fixedDev{lat: 100}
	bg := &tickThread{interval: 50, dev: dev}
	cd := NewContendedDevice(dev, []traffic.Thread{bg})
	cd.Access(1000, 0, mem.DemandRead)
	// Background should have stepped ~20 times by t=1000.
	if bg.steps < 15 || bg.steps > 25 {
		t.Fatalf("background thread stepped %d times by t=1000, want ~20", bg.steps)
	}
	before := bg.steps
	cd.Access(1000, 64, mem.DemandRead)
	if bg.steps != before {
		t.Fatal("background advanced without time passing")
	}
	cd.Access(2000, 128, mem.DemandRead)
	if bg.steps <= before {
		t.Fatal("background did not advance with time")
	}
}

func TestContendedDeviceSharesContention(t *testing.T) {
	// A core sharing a real DRAM device with heavy background traffic
	// must run slower than alone.
	run := func(bgThreads int) float64 {
		p := platform.SKX2S()
		inner := p.LocalDevice()
		var threads []traffic.Thread
		for i := 0; i < bgThreads; i++ {
			g := traffic.NewLoadGenerator(inner, 64<<20, 1.0, uint64(i)+1)
			g.Base = uint64(i+4) << 30
			g.MLP = 16
			g.Sequential = true
			threads = append(threads, g)
		}
		dev := NewContendedDevice(inner, threads)
		m := New(Config{CPU: testCPU(), Device: dev, PrefetchersOff: true})
		r := sim.NewRand(1)
		for i := 0; i < 5000; i++ {
			m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, true)
		}
		return m.Counters()[counters.Cycles]
	}
	alone, contended := run(0), run(8)
	if contended <= alone*1.02 {
		t.Fatalf("contention had no effect: alone=%v contended=%v", alone, contended)
	}
}

func TestDirtyEvictionsReachDevice(t *testing.T) {
	// Store to far more lines than the hierarchy holds: dirty LLC
	// victims must generate device write traffic.
	dev := &fixedDev{lat: 150}
	m := New(Config{CPU: testCPU(), Device: dev})
	lines := uint64(testCPU().L3Bytes/mem.LineSize) * 2
	for i := uint64(0); i < lines; i++ {
		m.Store(i * mem.LineSize)
	}
	if dev.stats.Writes == 0 {
		t.Fatal("no writebacks reached the device")
	}
	// Roughly one writeback per dirty line beyond capacity.
	if float64(dev.stats.Writes) < float64(lines)*0.3 {
		t.Fatalf("only %d writebacks for %d dirty lines", dev.stats.Writes, lines)
	}
}

func TestStoreStreamTriggersPrefetch(t *testing.T) {
	m := newMachine(150)
	for i := uint64(0); i < 20000; i++ {
		m.Store(i * mem.LineSize)
	}
	c := m.Counters()
	if c[counters.L1PFIssued] == 0 && c[counters.L2PFIssued] == 0 {
		t.Fatal("sequential stores trained no prefetcher")
	}
}

func TestPreloadMakesResident(t *testing.T) {
	m := newMachine(300)
	const span = 8 << 20 // 8MB fits the SKX L3
	m.Preload(0, span)
	for i := uint64(0); i < 5000; i++ {
		m.Load((i*97%(span/mem.LineSize))*mem.LineSize, false)
	}
	c := m.Counters()
	if c[counters.DemandL3Miss] > 50 {
		t.Fatalf("preloaded range still missed LLC %v times", c[counters.DemandL3Miss])
	}
}

func TestPreloadRespectsCapacity(t *testing.T) {
	m := newMachine(300)
	// Try to preload 4x the LLC; the budget must clamp.
	m.Preload(0, uint64(testCPU().L3Bytes)*4)
	if m.preloaded > uint64(float64(testCPU().L3Bytes/mem.LineSize)*0.86) {
		t.Fatalf("preloaded %d lines, beyond the 85%% cap", m.preloaded)
	}
}

// recordingSampler collects every hook invocation.
type recordingSampler struct {
	times []float64
	ctrs  []counters.Snapshot
}

func (s *recordingSampler) Sample(timeNs float64, c counters.Snapshot) {
	s.times = append(s.times, timeNs)
	s.ctrs = append(s.ctrs, c)
}

func TestCycleSamplerHookCadence(t *testing.T) {
	const every = 5000
	rec := &recordingSampler{}
	m := New(Config{CPU: testCPU(), Device: &fixedDev{lat: 200},
		Sampler: rec, SampleEveryCycles: every})
	r := sim.NewRand(7)
	for i := 0; i < 20000; i++ {
		m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, true)
	}
	if len(rec.times) < 10 {
		t.Fatalf("only %d hook samples", len(rec.times))
	}
	// Hook timestamps sit exactly on the cycle grid: k * every cycles.
	step := every / testCPU().FreqGHz // ns per sampling period
	for i, ts := range rec.times {
		want := float64(i+1) * step
		if diff := ts - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("sample %d at %v ns, want %v", i, ts, want)
		}
	}
	for i := 1; i < len(rec.ctrs); i++ {
		if rec.ctrs[i][counters.Cycles] < rec.ctrs[i-1][counters.Cycles] {
			t.Fatal("hook counters not monotone")
		}
	}
}

// TestCycleSamplerObservationOnly pins the invariant the whole sampling
// subsystem rests on: attaching a Sampler changes nothing about the run.
func TestCycleSamplerObservationOnly(t *testing.T) {
	run := func(hook Sampler) counters.Snapshot {
		cfg := Config{CPU: testCPU(), Device: &fixedDev{lat: 200}}
		if hook != nil {
			cfg.Sampler = hook
			cfg.SampleEveryCycles = 2000
		}
		m := New(cfg)
		r := sim.NewRand(3)
		for i := 0; i < 15000; i++ {
			switch i % 3 {
			case 0:
				m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, i%6 == 0)
			case 1:
				m.Store(r.Uint64n(1<<20) * mem.LineSize)
			case 2:
				m.Compute(5)
			}
		}
		return m.Counters()
	}
	plain, sampled := run(nil), run(&recordingSampler{})
	if plain != sampled {
		t.Fatalf("sampler perturbed the run:\nwithout: %v\nwith:    %v", plain, sampled)
	}
}

// TestDetachedSamplerZeroAlloc asserts the no-sampler hot path allocates
// nothing per access — the "zero overhead when detached" contract.
func TestDetachedSamplerZeroAlloc(t *testing.T) {
	m := newMachine(100)
	// Warm the L1 so steady-state loads stay on the fast path.
	for i := 0; i < 1024; i++ {
		m.Load(uint64(i%128)*mem.LineSize, false)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		m.Load(uint64(i%128)*mem.LineSize, false)
		i++
	})
	if allocs != 0 {
		t.Fatalf("detached load path allocates %.1f bytes-objects per op", allocs)
	}
}
