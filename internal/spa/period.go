package spa

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
)

// Period-based Spa (paper §5.6). The same instructions take different
// wall-clock time on DRAM and CXL, so time-sampled counters cannot be
// compared directly. Since the retired-instruction count is invariant
// across memory backends, both runs' samples are re-aligned onto a
// common instruction axis: counter values at each period boundary are
// linearly interpolated between the bracketing time samples
// (the paper's "proportional adjustment"), then differenced per period.

// PeriodBreakdown is one instruction-period's analysis.
type PeriodBreakdown struct {
	// StartInstr is the period's first instruction index.
	StartInstr uint64
	Breakdown
}

// interpolate returns the counter snapshot at the given instruction
// index, linearly interpolated between time samples. Samples must be in
// time order with monotone instruction counts.
func interpolate(samples []core.Sample, instr float64) counters.Snapshot {
	if len(samples) == 0 {
		return counters.Snapshot{}
	}
	// Find the first sample at or past the target instruction count.
	lo := 0
	hi := len(samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if samples[mid].Counters[counters.Instructions] < instr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// Before the first sample: scale it proportionally from zero.
		first := samples[0]
		fi := first.Counters[counters.Instructions]
		if fi <= 0 {
			return counters.Snapshot{}
		}
		return first.Counters.Scale(instr / fi)
	}
	if lo == len(samples) {
		return samples[len(samples)-1].Counters
	}
	a, b := samples[lo-1], samples[lo]
	ai := a.Counters[counters.Instructions]
	bi := b.Counters[counters.Instructions]
	if bi <= ai {
		return a.Counters
	}
	frac := (instr - ai) / (bi - ai)
	return a.Counters.Add(b.Counters.Delta(a.Counters).Scale(frac))
}

// AnalyzePeriods aligns a baseline and a target sample series onto
// periodInstr-sized instruction periods and returns per-period
// breakdowns. The series should come from core.Machine sampling
// (SampleIntervalNs), mirroring the paper's 1 ms sampling converted to
// 1 B-instruction periods.
func AnalyzePeriods(base, target []core.Sample, periodInstr uint64) []PeriodBreakdown {
	if periodInstr == 0 || len(base) == 0 || len(target) == 0 {
		return nil
	}
	maxInstr := base[len(base)-1].Counters[counters.Instructions]
	if ti := target[len(target)-1].Counters[counters.Instructions]; ti < maxInstr {
		maxInstr = ti
	}

	var out []PeriodBreakdown
	var prevBase, prevTarget counters.Snapshot
	for start := uint64(0); float64(start+periodInstr) <= maxInstr; start += periodInstr {
		end := float64(start + periodInstr)
		curBase := interpolate(base, end)
		curTarget := interpolate(target, end)
		pb := curBase.Delta(prevBase)
		pt := curTarget.Delta(prevTarget)
		out = append(out, PeriodBreakdown{
			StartInstr: start,
			Breakdown:  Analyze(pb, pt),
		})
		prevBase, prevTarget = curBase, curTarget
	}
	return out
}
