package spa

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/vm"
)

func TestAdviseZeroStallsNoNaN(t *testing.T) {
	stats := []core.RegionStat{
		{Object: vm.Object{Name: "a", Base: 0, Size: 100}},
		{Object: vm.Object{Name: "b", Base: 200, Size: 100}},
	}
	advice := Advise(stats)
	if len(advice) != 2 {
		t.Fatalf("got %d advices", len(advice))
	}
	for _, a := range advice {
		if math.IsNaN(a.StallShare) || math.IsNaN(a.MissShare) {
			t.Fatalf("zero-stall division produced NaN: %+v", a)
		}
		if a.StallShare != 0 || a.MissShare != 0 {
			t.Fatalf("zero activity yielded nonzero share: %+v", a)
		}
	}
	// All-zero shares fall through to the name tie-break.
	if advice[0].Name != "a" || advice[1].Name != "b" {
		t.Fatalf("zero-stall ordering not by name: %v, %v", advice[0].Name, advice[1].Name)
	}
}

func TestAdviseTieOrderingDeterministic(t *testing.T) {
	mk := func(name string, misses uint64, stalls float64) core.RegionStat {
		return core.RegionStat{Object: vm.Object{Name: name, Size: 64},
			DemandMisses: misses, StallCycles: stalls}
	}
	// Equal stall shares; "y" and "z" also tie on misses.
	stats := []core.RegionStat{
		mk("z", 10, 500), mk("x", 40, 500), mk("y", 10, 500),
	}
	want := []string{"x", "y", "z"} // miss share first, then name
	for perm := 0; perm < 3; perm++ {
		in := append([]core.RegionStat{}, stats[perm:]...)
		in = append(in, stats[:perm]...)
		advice := Advise(in)
		for i, a := range advice {
			if a.Name != want[i] {
				t.Fatalf("perm %d: rank %d = %q, want %q", perm, i, a.Name, want[i])
			}
		}
	}
}

func TestTopObjectsEmptyAdvice(t *testing.T) {
	if top := TopObjects(nil, 0.9); top != nil {
		t.Fatalf("TopObjects(nil) = %v", top)
	}
}
