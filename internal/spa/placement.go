package spa

import (
	"sort"

	"github.com/moatlab/melody/internal/core"
)

// Placement advisory (paper §5.7): rank a workload's objects by their
// contribution to CXL-induced DRAM stalls and suggest which to relocate
// to local DRAM. The paper's version used Intel Pin and addr2line; the
// simulator attributes stalls per vm object directly.

// Advice ranks one object.
type Advice struct {
	Name string
	// StallShare is the object's fraction of all attributed DRAM stall
	// cycles.
	StallShare float64
	// MissShare is its fraction of demand misses.
	MissShare float64
}

// Advise ranks the profiled regions by stall contribution, descending.
func Advise(stats []core.RegionStat) []Advice {
	var totalStall, totalMiss float64
	for _, s := range stats {
		totalStall += s.StallCycles
		totalMiss += float64(s.DemandMisses)
	}
	out := make([]Advice, 0, len(stats))
	for _, s := range stats {
		a := Advice{Name: s.Object.Name}
		if totalStall > 0 {
			a.StallShare = s.StallCycles / totalStall
		}
		if totalMiss > 0 {
			a.MissShare = float64(s.DemandMisses) / totalMiss
		}
		out = append(out, a)
	}
	// Deterministic ranking: stall share, then miss share, then name —
	// ties (common when many objects contribute nothing) must not
	// depend on input order or sort instability.
	sort.Slice(out, func(i, j int) bool {
		if out[i].StallShare != out[j].StallShare {
			return out[i].StallShare > out[j].StallShare
		}
		if out[i].MissShare != out[j].MissShare {
			return out[i].MissShare > out[j].MissShare
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopObjects returns the names of objects that together cover at least
// the given share of stalls — the relocation candidates.
func TopObjects(advice []Advice, share float64) []string {
	var names []string
	covered := 0.0
	for _, a := range advice {
		if covered >= share {
			break
		}
		names = append(names, a.Name)
		covered += a.StallShare
	}
	return names
}
