package spa

import "github.com/moatlab/melody/internal/counters"

// Performance prediction (paper §5.7 and the companion technical
// report): because Spa isolates the stall cycles that scale with memory
// latency, a workload's slowdown at an *unseen* latency can be
// predicted from its behaviour at one measured latency.
//
// The model: the memory-subsystem stall delta grows linearly with the
// added round-trip latency (each blocking miss costs the latency
// difference), while core/frontend contributions stay flat. Given a
// baseline at L0 and a measurement at L1, the slowdown at L2 is
//
//	S(L2) ≈ ΔsMemory(L1)/c × (L2-L0)/(L1-L0)
//
// Bandwidth saturation and device tails break pure linearity — exactly
// the divergences the paper attributes to device heterogeneity — so
// Predict is an estimator, and PredictionError quantifies it.

// Predictor extrapolates slowdowns from one calibration measurement.
type Predictor struct {
	// BaseLatencyNs is the local-DRAM idle latency (L0).
	BaseLatencyNs float64
	// CalLatencyNs is the calibration device's idle latency (L1).
	CalLatencyNs float64
	// memStallPerCycle is ΔsMemory/c from the calibration pair.
	memStallPerCycle float64
	// corePerCycle is the latency-independent remainder.
	corePerCycle float64
}

// NewPredictor calibrates a predictor from a baseline snapshot (local
// DRAM, latency l0) and a measurement snapshot (a CXL device or NUMA,
// latency l1).
func NewPredictor(base, cal counters.Snapshot, l0, l1 float64) Predictor {
	b := Analyze(base, cal)
	return Predictor{
		BaseLatencyNs:    l0,
		CalLatencyNs:     l1,
		memStallPerCycle: b.EstMemory,
		corePerCycle:     b.Core,
	}
}

// Predict returns the estimated slowdown at device latency l2 (ns).
func (p Predictor) Predict(l2 float64) float64 {
	den := p.CalLatencyNs - p.BaseLatencyNs
	if den <= 0 {
		return 0
	}
	scale := (l2 - p.BaseLatencyNs) / den
	return p.memStallPerCycle*scale + p.corePerCycle
}

// PredictionError compares a prediction with a measured slowdown and
// returns the absolute error.
func PredictionError(predicted, actual float64) float64 {
	d := predicted - actual
	if d < 0 {
		return -d
	}
	return d
}
