package spa

import (
	"bytes"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/obs/sampler"
)

// pb builds one period whose breakdown is dominated by the named
// component with the given magnitude.
func pb(start uint64, comp string, v float64) PeriodBreakdown {
	b := Breakdown{Actual: v * 1.25}
	switch comp {
	case "DRAM":
		b.DRAM = v
	case "L3":
		b.L3 = v
	case "Core":
		b.Core = v
	case "Store":
		b.Store = v
	}
	b.Other = b.Actual - b.Sum()
	return PeriodBreakdown{StartInstr: start, Breakdown: b}
}

func TestNewReportMergesAdjacentPhases(t *testing.T) {
	const pi = 1000
	periods := []PeriodBreakdown{
		pb(0, "DRAM", 0.40),
		pb(1000, "DRAM", 0.60),
		pb(2000, "DRAM", 0.50),
		pb(3000, "Core", 0.30),
		pb(4000, "Core", 0.20),
		pb(5000, "Store", 0.80),
	}
	r := NewReport(periods, pi)
	if len(r.Phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(r.Phases), r.Phases)
	}
	ph := r.Phases[0]
	if ph.StartInstr != 0 || ph.EndInstr != 3000 || ph.Periods != 3 || ph.Dominant != "DRAM" {
		t.Fatalf("phase 0 wrong: %+v", ph)
	}
	if ph.DRAM != 0.5 {
		t.Fatalf("phase 0 mean DRAM %v, want 0.5", ph.DRAM)
	}
	if ph.DominantShare < 0.75 {
		t.Fatalf("phase 0 dominant share %v, want >= 0.75", ph.DominantShare)
	}
	if r.Phases[1].Dominant != "Core" || r.Phases[1].StartInstr != 3000 || r.Phases[1].EndInstr != 5000 {
		t.Fatalf("phase 1 wrong: %+v", r.Phases[1])
	}
	if r.Phases[2].Dominant != "Store" || r.Phases[2].Periods != 1 {
		t.Fatalf("phase 2 wrong: %+v", r.Phases[2])
	}
}

func TestNewReportSplitsNonContiguousPeriods(t *testing.T) {
	// A gap in the period sequence breaks a phase even when the
	// dominant component matches.
	periods := []PeriodBreakdown{pb(0, "DRAM", 0.5), pb(2000, "DRAM", 0.5)}
	r := NewReport(periods, 1000)
	if len(r.Phases) != 2 {
		t.Fatalf("gap merged across: %+v", r.Phases)
	}
}

// devSample builds one sampled point with cumulative device time split
// across components.
func devSample(instr, linkReq, sched, media, rsp float64) sampler.Sample {
	var c counters.Snapshot
	c[counters.Instructions] = instr
	return sampler.Sample{
		TimeNs: instr, Counters: c, HasDevice: true,
		Device: cxl.CPMUState{LinkReqNs: linkReq, SchedWaitNs: sched,
			MediaNs: media, LinkRspNs: rsp},
	}
}

func TestAttributeDevice(t *testing.T) {
	r := Report{PeriodInstr: 1000, Phases: []Phase{
		{StartInstr: 0, EndInstr: 1000, Periods: 1, Dominant: "DRAM"},
		{StartInstr: 1000, EndInstr: 2000, Periods: 1, Dominant: "DRAM"},
	}}
	// Phase 1: scheduler wait grows by 300 of 400 total device ns.
	target := []sampler.Sample{
		devSample(0, 0, 0, 0, 0),
		devSample(1000, 100, 50, 100, 50),  // phase 0 total 300
		devSample(2000, 150, 350, 150, 50), // phase 1 deltas: 50, 300, 50, 0
	}
	r.AttributeDevice(target)
	ph := r.Phases[1]
	if !ph.Device.Valid {
		t.Fatal("device attribution missing")
	}
	if ph.Device.SchedWait != 0.75 {
		t.Fatalf("sched wait share %v, want 0.75", ph.Device.SchedWait)
	}
	name, share := ph.Device.Dominant()
	if name != "CXL scheduler wait" || share != 0.75 {
		t.Fatalf("dominant = %q %v", name, share)
	}
	sum := ph.Device.LinkReq + ph.Device.SchedWait + ph.Device.Media + ph.Device.LinkRsp
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestAttributeDeviceWithoutStream(t *testing.T) {
	r := Report{Phases: []Phase{{StartInstr: 0, EndInstr: 1000}}}
	r.AttributeDevice(nil)
	if r.Phases[0].Device.Valid {
		t.Fatal("attribution valid with no samples")
	}
	// CPU-only samples (no probe) must not attribute either.
	var c counters.Snapshot
	c[counters.Instructions] = 2000
	r.AttributeDevice([]sampler.Sample{{TimeNs: 1, Counters: c}})
	if r.Phases[0].Device.Valid {
		t.Fatal("attribution valid without device state")
	}
}

func TestNarrative(t *testing.T) {
	r := Report{PeriodInstr: 50_000_000, Phases: []Phase{{
		StartInstr: 0, EndInstr: 50_000_000, Periods: 1,
		Breakdown: Breakdown{Actual: 0.43, DRAM: 0.31},
		Dominant:  "DRAM", DominantShare: 0.72,
		Device: DeviceShare{SchedWait: 0.54, Media: 0.30, LinkReq: 0.10, LinkRsp: 0.06, Valid: true},
	}}}
	var buf bytes.Buffer
	r.Narrative(&buf)
	got := buf.String()
	for _, want := range []string{
		"instructions 0–50M", "slowdown 43%", "72% of added stalls",
		"loads bound on DRAM/CXL", "attributed to CXL scheduler wait", "54% of device time",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("narrative missing %q:\n%s", want, got)
		}
	}
}

func TestFmtInstr(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 500: "500", 1500: "1.5K", 50_000_000: "50M", 1_200_000_000: "1.2B",
	}
	for n, want := range cases {
		if got := fmtInstr(n); got != want {
			t.Errorf("fmtInstr(%d) = %q, want %q", n, got, want)
		}
	}
}
