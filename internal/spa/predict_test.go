package spa

import (
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/workload"
)

func runAtLatency(t *testing.T, lat float64) (cycles float64, snap core.Sample) {
	t.Helper()
	p := workload.Profile{WorkingSetMB: 256, MemRatio: 0.35, DepFrac: 0.6}
	w := workload.NewSynthetic("pred", p, 1)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat}, MaxInstructions: 150_000})
	w.Run(m)
	return m.Counters()[0], core.Sample{Counters: m.Counters()}
}

func TestPredictInterpolates(t *testing.T) {
	// Calibrate on (100 -> 300) and predict 200 and 400; compare with
	// actual runs at those latencies.
	_, base := runAtLatency(t, 100)
	_, cal := runAtLatency(t, 300)
	pred := NewPredictor(base.Counters, cal.Counters, 100, 300)

	for _, l := range []float64{200, 400} {
		_, act := runAtLatency(t, l)
		actual := Analyze(base.Counters, act.Counters).Actual
		got := pred.Predict(l)
		if err := PredictionError(got, actual); err > 0.10 {
			t.Fatalf("latency %v: predicted %.2f, actual %.2f (err %.2f)", l, got, actual, err)
		}
	}
}

func TestPredictAtCalibrationPoint(t *testing.T) {
	_, base := runAtLatency(t, 100)
	_, cal := runAtLatency(t, 300)
	pred := NewPredictor(base.Counters, cal.Counters, 100, 300)
	want := Analyze(base.Counters, cal.Counters).Actual
	if err := PredictionError(pred.Predict(300), want); err > 0.03 {
		t.Fatalf("prediction at calibration point off by %.2f", err)
	}
}

func TestPredictAtBaseIsZero(t *testing.T) {
	_, base := runAtLatency(t, 100)
	_, cal := runAtLatency(t, 300)
	pred := NewPredictor(base.Counters, cal.Counters, 100, 300)
	if got := pred.Predict(100); got > 0.05 || got < -0.05 {
		t.Fatalf("prediction at base latency = %v, want ~0", got)
	}
}

func TestPredictDegenerate(t *testing.T) {
	_, base := runAtLatency(t, 100)
	pred := NewPredictor(base.Counters, base.Counters, 100, 100)
	if got := pred.Predict(500); got != 0 {
		t.Fatalf("degenerate predictor returned %v", got)
	}
}
