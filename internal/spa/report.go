package spa

import (
	"fmt"
	"io"
	"strconv"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/obs/sampler"
)

// Phase-resolved Spa reporting: the per-period breakdowns from
// AnalyzePeriods are segmented into phases — maximal runs of adjacent
// instruction periods sharing the same dominant stall component — and
// each phase's device-resident time is attributed to the expander's
// internal components by differencing the cumulative CPMU accumulators
// carried in a sampled stream. The output is the narrative the paper
// builds by hand in §5.6: "instructions 0–50M: 72% of added stalls are
// loads bound on DRAM/CXL, attributed to CXL scheduler wait".

// DeviceShare attributes a phase's device-resident time across the
// expander's components (fractions of the phase's total device time),
// plus the governor events that fired inside the phase.
type DeviceShare struct {
	LinkReq   float64 `json:"link_req"`
	SchedWait float64 `json:"sched_wait"`
	Media     float64 `json:"media"`
	LinkRsp   float64 `json:"link_rsp"`
	Hiccups   uint64  `json:"hiccups"`
	Thermals  uint64  `json:"thermals"`
	// Valid reports whether a sampled device stream covered the phase.
	Valid bool `json:"valid"`
}

// DeviceComponentNames returns the expander-internal component labels
// in CPMU order (link request, scheduler wait, media, link response) —
// the frame vocabulary shared by the narrative's attribution and the
// simulated-time profile's device-level stack frames.
func DeviceComponentNames() []string {
	return []string{"CXL link request", "CXL scheduler wait", "media access", "CXL link response"}
}

// Dominant returns the largest device component's label and share.
func (d DeviceShare) Dominant() (string, float64) {
	names := DeviceComponentNames()
	vals := []float64{d.LinkReq, d.SchedWait, d.Media, d.LinkRsp}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best], vals[best]
}

// Phase is a maximal run of adjacent instruction periods with the same
// dominant stall component. Breakdown is the equal-weight mean of the
// merged periods' breakdowns (periods cover equal instruction spans).
type Phase struct {
	StartInstr uint64
	EndInstr   uint64
	Periods    int
	Breakdown
	// Dominant is the phase's dominant component (a ComponentNames
	// entry); DominantShare its fraction of the phase's added stalls.
	Dominant      string
	DominantShare float64
	Device        DeviceShare
}

// Report is the phase-resolved analysis of one baseline/target pair.
type Report struct {
	PeriodInstr uint64
	Phases      []Phase
}

// componentValue extracts one named component from a breakdown.
func componentValue(b Breakdown, name string) float64 {
	for i, n := range ComponentNames() {
		if n == name {
			return b.Components()[i]
		}
	}
	return 0
}

// dominantComponent returns the largest component's name and its share
// of the positive (added-stall) total.
func dominantComponent(b Breakdown) (string, float64) {
	names := ComponentNames()
	comps := b.Components()
	best, total := 0, 0.0
	for i, v := range comps {
		if v > comps[best] {
			best = i
		}
		if v > 0 {
			total += v
		}
	}
	share := 0.0
	if total > 0 && comps[best] > 0 {
		share = comps[best] / total
	}
	return names[best], share
}

// NewReport segments per-period breakdowns (from AnalyzePeriods) into
// phases. periodInstr must match the AnalyzePeriods call.
func NewReport(periods []PeriodBreakdown, periodInstr uint64) Report {
	r := Report{PeriodInstr: periodInstr}
	if periodInstr == 0 {
		return r
	}
	i := 0
	for i < len(periods) {
		name, _ := dominantComponent(periods[i].Breakdown)
		j := i + 1
		for j < len(periods) {
			n, _ := dominantComponent(periods[j].Breakdown)
			if n != name || periods[j].StartInstr != periods[j-1].StartInstr+periodInstr {
				break
			}
			j++
		}
		var sum Breakdown
		for _, p := range periods[i:j] {
			sum.Actual += p.Actual
			sum.EstTotal += p.EstTotal
			sum.EstBackend += p.EstBackend
			sum.EstMemory += p.EstMemory
			sum.Store += p.Store
			sum.L1 += p.L1
			sum.L2 += p.L2
			sum.L3 += p.L3
			sum.DRAM += p.DRAM
			sum.Core += p.Core
			sum.Other += p.Other
		}
		k := float64(j - i)
		mean := Breakdown{
			Actual: sum.Actual / k, EstTotal: sum.EstTotal / k,
			EstBackend: sum.EstBackend / k, EstMemory: sum.EstMemory / k,
			Store: sum.Store / k, L1: sum.L1 / k, L2: sum.L2 / k,
			L3: sum.L3 / k, DRAM: sum.DRAM / k, Core: sum.Core / k,
			Other: sum.Other / k,
		}
		ph := Phase{
			StartInstr: periods[i].StartInstr,
			EndInstr:   periods[j-1].StartInstr + periodInstr,
			Periods:    j - i,
			Breakdown:  mean,
			Dominant:   name,
		}
		// Share of the dominant component within the phase mean: the
		// dominant was chosen per period, so compute its share rather
		// than re-picking (averaging could shift the maximum).
		total := 0.0
		for _, v := range mean.Components() {
			if v > 0 {
				total += v
			}
		}
		if v := componentValue(mean, name); total > 0 && v > 0 {
			ph.DominantShare = v / total
		}
		r.Phases = append(r.Phases, ph)
		i = j
	}
	return r
}

// devAccum holds interpolated cumulative CPMU accumulators.
type devAccum struct {
	linkReq, schedWait, media, linkRsp float64
	hiccups, thermals                  float64
}

// deviceAt linearly interpolates the target stream's cumulative device
// accumulators at an instruction index, mirroring interpolate() for
// counter snapshots. Samples without device state contribute nothing.
func deviceAt(samples []sampler.Sample, instr float64) (devAccum, bool) {
	accum := func(s sampler.Sample) devAccum {
		return devAccum{
			linkReq: s.Device.LinkReqNs, schedWait: s.Device.SchedWaitNs,
			media: s.Device.MediaNs, linkRsp: s.Device.LinkRspNs,
			hiccups:  float64(s.Device.HiccupStalls),
			thermals: float64(s.Device.ThermalStalls),
		}
	}
	lo, hi := 0, len(samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if samples[mid].Counters[counters.Instructions] < instr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	switch {
	case len(samples) == 0 || !samples[0].HasDevice:
		return devAccum{}, false
	case lo == 0:
		first := samples[0]
		fi := first.Counters[counters.Instructions]
		if fi <= 0 {
			return devAccum{}, true
		}
		a := accum(first)
		frac := instr / fi
		return devAccum{a.linkReq * frac, a.schedWait * frac, a.media * frac,
			a.linkRsp * frac, a.hiccups * frac, a.thermals * frac}, true
	case lo == len(samples):
		return accum(samples[len(samples)-1]), true
	}
	a, b := samples[lo-1], samples[lo]
	ai := a.Counters[counters.Instructions]
	bi := b.Counters[counters.Instructions]
	if bi <= ai {
		return accum(a), true
	}
	frac := (instr - ai) / (bi - ai)
	av, bv := accum(a), accum(b)
	lerp := func(x, y float64) float64 { return x + (y-x)*frac }
	return devAccum{
		lerp(av.linkReq, bv.linkReq), lerp(av.schedWait, bv.schedWait),
		lerp(av.media, bv.media), lerp(av.linkRsp, bv.linkRsp),
		lerp(av.hiccups, bv.hiccups), lerp(av.thermals, bv.thermals),
	}, true
}

// AttributeDevice fills each phase's DeviceShare from the target (CXL)
// run's sampled stream: cumulative CPMU accumulators are interpolated
// at the phase's instruction boundaries and differenced, yielding the
// share of device-resident time each expander component contributed
// during exactly that phase.
func (r *Report) AttributeDevice(target []sampler.Sample) {
	for i := range r.Phases {
		ph := &r.Phases[i]
		a, okA := deviceAt(target, float64(ph.StartInstr))
		b, okB := deviceAt(target, float64(ph.EndInstr))
		if !okA || !okB {
			continue
		}
		dLinkReq := b.linkReq - a.linkReq
		dSched := b.schedWait - a.schedWait
		dMedia := b.media - a.media
		dRsp := b.linkRsp - a.linkRsp
		total := dLinkReq + dSched + dMedia + dRsp
		if total <= 0 {
			continue
		}
		ph.Device = DeviceShare{
			LinkReq: dLinkReq / total, SchedWait: dSched / total,
			Media: dMedia / total, LinkRsp: dRsp / total,
			Hiccups:  uint64(b.hiccups - a.hiccups + 0.5),
			Thermals: uint64(b.thermals - a.thermals + 0.5),
			Valid:    true,
		}
	}
}

// ComponentLabel renders a ComponentNames entry as the human-readable
// phrasing used by both the phase narrative and the simulated-time
// profile's memory-level stack frames.
func ComponentLabel(name string) string {
	switch name {
	case "DRAM":
		return "loads bound on DRAM/CXL"
	case "L3":
		return "loads bound on L3"
	case "L2":
		return "loads bound on L2"
	case "L1":
		return "loads bound on L1"
	case "Store":
		return "store-buffer stalls"
	case "Core":
		return "core-bound stalls"
	}
	return "unattributed stalls"
}

// fmtInstr renders an instruction index compactly (50M, 1.2B, ...).
func fmtInstr(n uint64) string {
	f := float64(n)
	trim := func(v float64) string { return strconv.FormatFloat(v, 'g', 3, 64) }
	switch {
	case n == 0:
		return "0"
	case f >= 1e9:
		return trim(f/1e9) + "B"
	case f >= 1e6:
		return trim(f/1e6) + "M"
	case f >= 1e3:
		return trim(f/1e3) + "K"
	}
	return strconv.FormatUint(n, 10)
}

// Narrative writes the phase-resolved table, one line per phase:
//
//	instructions 0–50M: slowdown 43%; 72% of added stalls are loads
//	bound on DRAM/CXL, attributed to CXL scheduler wait (54% of
//	device time)
func (r Report) Narrative(w io.Writer) {
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "instructions %s–%s: slowdown %.0f%%; %.0f%% of added stalls are %s",
			fmtInstr(ph.StartInstr), fmtInstr(ph.EndInstr),
			ph.Actual*100, ph.DominantShare*100, ComponentLabel(ph.Dominant))
		if ph.Device.Valid {
			name, share := ph.Device.Dominant()
			fmt.Fprintf(w, ", attributed to %s (%.0f%% of device time)", name, share*100)
		}
		fmt.Fprintln(w)
	}
}
