package spa

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/counters"
)

// frameDelta builds a delta snapshot honouring the core model's
// containment invariants (P6 = P1+P2+P9, P1 ⊇ P3 ⊇ P4 ⊇ P5).
func frameDelta() counters.Snapshot {
	var d counters.Snapshot
	d[counters.BoundOnLoads] = 100
	d[counters.StallsL1DMiss] = 60
	d[counters.StallsL2Miss] = 40
	d[counters.StallsL3Miss] = 30
	d[counters.BoundOnStores] = 20
	d[counters.StallsScoreboard] = 10
	d[counters.RetiredStalls] = 130 // P1 + P2 + P9
	d[counters.OnePortsUtil] = 5
	d[counters.TwoPortsUtil] = 3
	d[counters.Cycles] = 200
	return d
}

func TestAttributeCyclesPartitionIsTotal(t *testing.T) {
	d := frameDelta()
	frames := AttributeCycles(d)
	var sum float64
	for _, fr := range frames {
		if fr.Cycles <= 0 {
			t.Fatalf("frame %v has non-positive weight", fr)
		}
		sum += fr.Cycles
	}
	if math.Abs(sum-d[counters.Cycles]) > 1e-9 {
		t.Fatalf("partition sums to %v, want %v cycles", sum, d[counters.Cycles])
	}
}

func TestAttributeCyclesLevels(t *testing.T) {
	want := map[string]float64{
		"BOUND_ON_LOADS (P1)/L1":     40, // P1 - P3
		"BOUND_ON_LOADS (P1)/L2":     20, // P3 - P4
		"BOUND_ON_LOADS (P1)/L3":     10, // P4 - P5
		"BOUND_ON_LOADS (P1)/DRAM":   30, // P5
		"BOUND_ON_STORES (P2)/Store": 20,
		"1_PORTS_UTIL (P7)/":         5,
		"2_PORTS_UTIL (P8)/":         3,
		"STALLS.SCOREBD (P9)/":       10,
		FrameRetiring + "/":          62, // 200 - 130 - 5 - 3
	}
	got := map[string]float64{}
	for _, fr := range AttributeCycles(frameDelta()) {
		got[fr.Source+"/"+fr.Level] = fr.Cycles
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frames %v, want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("frame %q = %v, want %v", k, got[k], v)
		}
	}
}

// TestAttributeCyclesLevelVocabulary pins that levels speak the same
// language as the Report: every level is a ComponentNames entry and
// renders through ComponentLabel like the narrative does.
func TestAttributeCyclesLevelVocabulary(t *testing.T) {
	names := map[string]bool{}
	for _, n := range ComponentNames() {
		names[n] = true
	}
	for _, fr := range AttributeCycles(frameDelta()) {
		if fr.Level == "" {
			continue
		}
		if !names[fr.Level] {
			t.Fatalf("level %q is not a ComponentNames entry", fr.Level)
		}
		if ComponentLabel(fr.Level) == "unattributed stalls" {
			t.Fatalf("level %q has no narrative label", fr.Level)
		}
	}
}

// TestAttributeCyclesResidual exercises the clamp paths: stalls beyond
// the named sources land in the residual frame, and inconsistent
// counters never produce negative frames.
func TestAttributeCyclesResidual(t *testing.T) {
	var d counters.Snapshot
	d[counters.RetiredStalls] = 50
	d[counters.BoundOnLoads] = 30
	d[counters.Cycles] = 80
	got := map[string]float64{}
	for _, fr := range AttributeCycles(d) {
		got[fr.Source] += fr.Cycles
	}
	if got[FrameOtherStalls] != 20 {
		t.Fatalf("residual = %v, want 20", got[FrameOtherStalls])
	}
	if got[FrameRetiring] != 30 {
		t.Fatalf("retiring = %v, want 30", got[FrameRetiring])
	}

	// P6 below the named sources (cannot happen in the model) clamps
	// the residual rather than going negative.
	d[counters.RetiredStalls] = 10
	for _, fr := range AttributeCycles(d) {
		if fr.Cycles <= 0 {
			t.Fatalf("clamped input produced non-positive frame %v", fr)
		}
		if fr.Source == FrameOtherStalls {
			t.Fatalf("residual frame emitted for under-attributed P6")
		}
	}
}
