package spa

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/vm"
	"github.com/moatlab/melody/internal/workload"
)

type fixedDev struct{ lat float64 }

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		return now + d.lat/4
	}
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 {}
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

// runWorkload executes a profile on a device and returns counters plus
// samples.
func runWorkload(p workload.Profile, lat float64, instr uint64, sample float64) ([]core.Sample, counters.Snapshot) {
	w := workload.NewSynthetic("t", p, 1)
	m := core.New(core.Config{
		CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat},
		MaxInstructions: instr, SampleIntervalNs: sample,
	})
	w.Run(m)
	return m.Samples(), m.Counters()
}

func TestAnalyzeEstimatorsAgree(t *testing.T) {
	p := workload.Profile{WorkingSetMB: 256, MemRatio: 0.35, DepFrac: 0.6, StoreFrac: 0.2}
	_, base := runWorkload(p, 100, 200_000, 0)
	_, target := runWorkload(p, 350, 200_000, 0)
	b := Analyze(base, target)
	if b.Actual < 0.3 {
		t.Fatalf("expected a sizeable slowdown, got %v", b.Actual)
	}
	et, eb, em := AccuracyErrors(b)
	if et > 0.05 || eb > 0.05 || em > 0.08 {
		t.Fatalf("estimator errors too large: Δs=%v backend=%v memory=%v (S=%v)", et, eb, em, b.Actual)
	}
	// Error ordering: the Δs estimator must be at least as tight as the
	// memory-only one on average (it includes all stall sources).
	if et > em+1e-9 {
		t.Fatalf("Δs error (%v) worse than memory-only (%v)", et, em)
	}
}

func TestBreakdownSumsToActual(t *testing.T) {
	p := workload.Profile{WorkingSetMB: 256, MemRatio: 0.35, DepFrac: 0.5, StoreFrac: 0.3}
	_, base := runWorkload(p, 100, 200_000, 0)
	_, target := runWorkload(p, 300, 200_000, 0)
	b := Analyze(base, target)
	if math.Abs(b.Sum()+b.Other-b.Actual) > 1e-9 {
		t.Fatalf("components (%v) + other (%v) != actual (%v)", b.Sum(), b.Other, b.Actual)
	}
	if math.Abs(b.Other) > 0.1*math.Abs(b.Actual)+0.02 {
		t.Fatalf("unattributed share too large: other=%v of %v", b.Other, b.Actual)
	}
}

func TestDRAMDominatesForChase(t *testing.T) {
	p := workload.Profile{WorkingSetMB: 512, MemRatio: 0.4, DepFrac: 1}
	_, base := runWorkload(p, 100, 150_000, 0)
	_, target := runWorkload(p, 400, 150_000, 0)
	b := Analyze(base, target)
	if b.DRAM < 0.7*b.Actual {
		t.Fatalf("pointer chase: DRAM share %v of %v", b.DRAM, b.Actual)
	}
}

func TestStoreDominatesForWriteBlast(t *testing.T) {
	p := workload.Profile{WorkingSetMB: 512, MemRatio: 0.6, StoreFrac: 1}
	_, base := runWorkload(p, 100, 150_000, 0)
	_, target := runWorkload(p, 400, 150_000, 0)
	b := Analyze(base, target)
	if b.Store < 0.5*b.Actual {
		t.Fatalf("store blast: store share %v of %v", b.Store, b.Actual)
	}
}

func TestZeroBaselineSafe(t *testing.T) {
	b := Analyze(counters.Snapshot{}, counters.Snapshot{})
	if b.Actual != 0 || b.EstTotal != 0 {
		t.Fatalf("zero baseline produced %+v", b)
	}
}

func TestAnalyzePeriods(t *testing.T) {
	// Phased workload: memory-heavy then light; per-period breakdowns
	// must show higher slowdown in the heavy phases.
	// The light phase must be genuinely compute-dominated to contrast
	// with the heavy one (memory cost per op dwarfs compute per op).
	p := workload.Profile{
		WorkingSetMB: 256, MemRatio: 0.4, DepFrac: 0.8,
		PhaseInstr: 50_000, PhaseMemMult: []float64{1.5, 0.002},
	}
	baseS, _ := runWorkload(p, 100, 400_000, 500)
	targetS, _ := runWorkload(p, 400, 400_000, 500)
	periods := AnalyzePeriods(baseS, targetS, 50_000)
	if len(periods) < 6 {
		t.Fatalf("got %d periods", len(periods))
	}
	// Alternating phases: compare mean slowdown of even vs odd periods.
	var heavy, light float64
	var nh, nl int
	for _, pb := range periods {
		if (pb.StartInstr/50_000)%2 == 0 {
			heavy += pb.Actual
			nh++
		} else {
			light += pb.Actual
			nl++
		}
	}
	heavy /= float64(nh)
	light /= float64(nl)
	if heavy < light*1.5 {
		t.Fatalf("period analysis missed phases: heavy=%v light=%v", heavy, light)
	}
}

func TestAnalyzePeriodsEmpty(t *testing.T) {
	if got := AnalyzePeriods(nil, nil, 1000); got != nil {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestAdviseRanksHotObject(t *testing.T) {
	stats := []core.RegionStat{
		{Object: vm.Object{Name: "cold", Base: 0, Size: 100}, DemandMisses: 10, StallCycles: 100},
		{Object: vm.Object{Name: "hot", Base: 200, Size: 100}, DemandMisses: 1000, StallCycles: 90_000},
		{Object: vm.Object{Name: "warm", Base: 400, Size: 100}, DemandMisses: 100, StallCycles: 9_900},
	}
	advice := Advise(stats)
	if advice[0].Name != "hot" {
		t.Fatalf("top object = %s", advice[0].Name)
	}
	if advice[0].StallShare < 0.85 {
		t.Fatalf("hot share = %v", advice[0].StallShare)
	}
	top := TopObjects(advice, 0.8)
	if len(top) != 1 || top[0] != "hot" {
		t.Fatalf("TopObjects = %v", top)
	}
}

func TestRegionAttributionEndToEnd(t *testing.T) {
	// A synthetic workload with a hot object: region stats must
	// attribute most stalls to it.
	p := workload.Profile{WorkingSetMB: 64, MemRatio: 0.4, DepFrac: 0.8, HotFrac: 0.8, HotSetMB: 48}
	w := workload.NewSynthetic("hot", p, 1)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 300}, MaxInstructions: 150_000})
	m.SetRegions(w.Arena().Objects())
	w.Run(m)
	advice := Advise(m.RegionStats())
	if len(advice) == 0 || advice[0].Name != "hot" {
		t.Fatalf("expected hot object first, got %+v", advice)
	}
}
