package spa

import (
	"fmt"

	"github.com/moatlab/melody/internal/counters"
)

// Counter → frame mapping for the simulated-time flame profiles.
//
// A pprof profile wants a *partition*: every simulated cycle should
// appear under exactly one leaf, so flame-graph widths add up to the
// run. The nine Table-2 counters overlap by construction (P6 counts
// every no-retire stall; P3-P5 nest inside P1), but the core model
// accumulates them with exact containment — P6 = P1 + P2 + P9 and
// P1 ⊇ P3 ⊇ P4 ⊇ P5 — so a clean partition exists:
//
//	Cycles = retiring + P7 + P8 + P1 + P2 + P9 + residual
//	P1     = L1 + L2 + L3 + DRAM           (via MemStalls)
//
// where retiring = Cycles − P6 − P7 − P8 (cycles that retired µops at
// full width) and residual absorbs any P6 stalls the named sources do
// not cover (zero in the current model; kept so the partition stays
// total if the core grows new stall paths). Real hardware would not
// give exact containment; the residual frame is where the slack would
// land, mirroring Breakdown.Other.

// CycleFrame is one slice of an interval's cycle partition: a Table-2
// stall source, optionally refined to a memory level (a ComponentNames
// entry), carrying the simulated cycles it absorbed.
type CycleFrame struct {
	// Source is the stall-source frame name, e.g. "BOUND_ON_LOADS (P1)",
	// or the synthetic "retiring" / "other stalls" frames.
	Source string
	// Level refines memory-bound sources ("DRAM", "L3", "L2", "L1",
	// "Store"); empty for core-bound and non-stall sources. DRAM-level
	// cycles are the ones a device-component split can refine further.
	Level string
	// Cycles is the slice's weight in simulated cycles (>= 0).
	Cycles float64
}

// sourceFrame renders a Table-2 counter as its profile frame name.
func sourceFrame(id counters.ID, p int) string {
	return fmt.Sprintf("%s (P%d)", id, p)
}

// FrameRetiring and FrameOtherStalls name the two synthetic frames
// completing the partition.
const (
	FrameRetiring    = "retiring"
	FrameOtherStalls = "other stalls"
)

// AttributeCycles partitions one counter delta (an interval's worth of
// accumulation, or a whole run's) into stall-source frames. Every
// returned frame has positive weight; the weights sum to the delta's
// Cycles up to clamping (exact in the current core model). The Level
// strings are ComponentNames entries, so ComponentLabel renders them
// with the same phrasing the phase narrative uses.
func AttributeCycles(d counters.Snapshot) []CycleFrame {
	pos := func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}
	out := make([]CycleFrame, 0, 10)
	add := func(source, level string, cycles float64) {
		if cycles > 0 {
			out = append(out, CycleFrame{Source: source, Level: level, Cycles: cycles})
		}
	}

	store, l1, l2, l3, dram := MemStalls(d)
	loads := sourceFrame(counters.BoundOnLoads, 1)
	add(loads, "L1", pos(l1))
	add(loads, "L2", pos(l2))
	add(loads, "L3", pos(l3))
	add(loads, "DRAM", pos(dram))
	add(sourceFrame(counters.BoundOnStores, 2), "Store", pos(store))
	add(sourceFrame(counters.OnePortsUtil, 7), "", pos(d[counters.OnePortsUtil]))
	add(sourceFrame(counters.TwoPortsUtil, 8), "", pos(d[counters.TwoPortsUtil]))
	add(sourceFrame(counters.StallsScoreboard, 9), "", pos(d[counters.StallsScoreboard]))

	// Whatever part of the no-retire stalls (P6) the named sources do
	// not explain; exactly zero under the current core accounting.
	named := pos(d[counters.BoundOnLoads]) + pos(d[counters.BoundOnStores]) +
		pos(d[counters.StallsScoreboard])
	add(FrameOtherStalls, "", pos(d[counters.RetiredStalls])-named)

	// Cycles that retired µops: total minus no-retire stalls minus the
	// port-underutilization cycles counted by P7/P8.
	add(FrameRetiring, "",
		pos(d[counters.Cycles])-pos(d[counters.RetiredStalls])-
			pos(d[counters.OnePortsUtil])-pos(d[counters.TwoPortsUtil]))
	return out
}
