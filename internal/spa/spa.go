// Package spa implements the paper's Stall-based CXL performance
// analysis (§5): a root-cause breakdown of CXL-induced slowdowns using
// only the nine CPU counters of Table 2, differenced between a local
// DRAM run and a CXL run of the same instruction window.
//
// The arithmetic follows Equations (1)-(8):
//
//	Δs        = ΔP6                       (total additional stalls)
//	ΔsCore    = ΔP7 + ΔP8 + ΔP9
//	ΔsMemory  = ΔP1 + ΔP2
//	s_store=P2, s_L1=P1-P3, s_L2=P3-P4, s_L3=P4-P5, s_DRAM=P5
//	S ≈ Δs/c ≈ ΔsBackend/c ≈ ΔsMemory/c
//	S ≈ S_store + S_L1 + S_L2 + S_L3 + S_DRAM
//
// where c is the baseline (local DRAM) cycle count.
package spa

import (
	"fmt"

	"github.com/moatlab/melody/internal/counters"
)

// Breakdown is one workload's Spa analysis.
type Breakdown struct {
	// Actual is the measured slowdown S = (c'-c)/c.
	Actual float64

	// The three estimators of Figure 11.
	EstTotal   float64 // Δs / c        (ΔP6)
	EstBackend float64 // ΔsBackend / c (ΔP1+ΔP2+ΔP7+ΔP8+ΔP9)
	EstMemory  float64 // ΔsMemory / c  (ΔP1+ΔP2)

	// Component slowdowns (Equation 8). Other absorbs whatever the five
	// sources do not explain.
	Store, L1, L2, L3, DRAM float64
	Core                    float64
	Other                   float64
}

// Components returns the stacked-bar values in the paper's Figure 14
// order: DRAM, L3, L2, L1, Store, Core, Other.
func (b Breakdown) Components() []float64 {
	return []float64{b.DRAM, b.L3, b.L2, b.L1, b.Store, b.Core, b.Other}
}

// ComponentNames matches Components.
func ComponentNames() []string {
	return []string{"DRAM", "L3", "L2", "L1", "Store", "Core", "Other"}
}

// Sum returns the sum of all attributed components (excluding Other).
func (b Breakdown) Sum() float64 {
	return b.Store + b.L1 + b.L2 + b.L3 + b.DRAM + b.Core
}

// String renders the breakdown on one line.
func (b Breakdown) String() string {
	return fmt.Sprintf("S=%.1f%% [DRAM %.1f, L3 %.1f, L2 %.1f, L1 %.1f, store %.1f, core %.1f, other %.1f]",
		b.Actual*100, b.DRAM*100, b.L3*100, b.L2*100, b.L1*100, b.Store*100, b.Core*100, b.Other*100)
}

// MemStalls splits a snapshot's memory-bound stall cycles into the
// five memory sources of Equation (8): the store-buffer component and
// the L1/L2/L3/DRAM levels nested inside BOUND_ON_LOADS. The split is
// exact — l1+l2+l3+dram equals the snapshot's BoundOnLoads — which is
// what lets both the Report phases and the simulated-time profiles
// treat the levels as a partition.
func MemStalls(c counters.Snapshot) (store, l1, l2, l3, dram float64) {
	store = c[counters.BoundOnStores]
	l1 = c[counters.BoundOnLoads] - c[counters.StallsL1DMiss]
	l2 = c[counters.StallsL1DMiss] - c[counters.StallsL2Miss]
	l3 = c[counters.StallsL2Miss] - c[counters.StallsL3Miss]
	dram = c[counters.StallsL3Miss]
	return
}

// Analyze differences a baseline (local DRAM) snapshot against a target
// (CXL) snapshot covering the same instruction window and returns the
// slowdown breakdown. Snapshots must include Cycles.
func Analyze(base, target counters.Snapshot) Breakdown {
	c := base[counters.Cycles]
	if c <= 0 {
		return Breakdown{}
	}
	d := target.Delta(base)

	var b Breakdown
	b.Actual = d[counters.Cycles] / c
	b.EstTotal = d[counters.RetiredStalls] / c
	coreDelta := d[counters.OnePortsUtil] + d[counters.TwoPortsUtil] + d[counters.StallsScoreboard]
	memDelta := d[counters.BoundOnLoads] + d[counters.BoundOnStores]
	b.EstBackend = (coreDelta + memDelta) / c
	b.EstMemory = memDelta / c

	bs, bl1, bl2, bl3, bd := MemStalls(base)
	ts, tl1, tl2, tl3, td := MemStalls(target)
	b.Store = (ts - bs) / c
	b.L1 = (tl1 - bl1) / c
	b.L2 = (tl2 - bl2) / c
	b.L3 = (tl3 - bl3) / c
	b.DRAM = (td - bd) / c
	b.Core = coreDelta / c
	b.Other = b.Actual - b.Sum()
	return b
}

// AccuracyErrors returns the absolute differences |estimate - actual|
// for the three estimators, the quantities whose CDFs the paper plots
// in Figure 11a-c.
func AccuracyErrors(b Breakdown) (total, backend, memory float64) {
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(b.EstTotal - b.Actual), abs(b.EstBackend - b.Actual), abs(b.EstMemory - b.Actual)
}
