package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("exp mean = %v, want ~100", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(9)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(50, 10)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-50) > 0.5 {
		t.Fatalf("norm mean = %v, want ~50", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.5 {
		t.Fatalf("norm stddev = %v, want ~10", math.Sqrt(variance))
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(5, 2)
		if v < 5 {
			t.Fatalf("Pareto below min: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", p)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(23)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate and the top decile should hold most mass.
	if counts[0] < counts[1] {
		t.Fatalf("rank 0 (%d) not more popular than rank 1 (%d)", counts[0], counts[1])
	}
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/n < 0.5 {
		t.Fatalf("top 10%% keys hold only %.2f of mass, want > 0.5", float64(top)/n)
	}
}

func TestZipfPropertyInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw)%1000 + 1
		z := NewZipf(NewRand(seed), n, 0.99)
		for i := 0; i < 50; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(31)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators produced identical first draw")
	}
}
