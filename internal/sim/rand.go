// Package sim provides small deterministic building blocks shared by the
// simulator: a seedable PRNG and time/heap helpers. Everything in the
// repository that needs randomness goes through sim.Rand so that whole
// experiments are reproducible from a single seed.
package sim

import "math"

// Rand is a deterministic pseudo-random generator based on splitmix64.
// It is not safe for concurrent use; give each simulated thread its own.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a bounded Pareto-ish heavy-tailed value with the given
// minimum and shape alpha (> 0). Larger alpha means lighter tails.
func (r *Rand) Pareto(min, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = 1 - math.SmallestNonzeroFloat64
	}
	return min / math.Pow(1-u, 1/alpha)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives a new independent generator from this one's stream.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}

// Zipf draws from a Zipfian distribution over [0, n) with skew s (> 0,
// typically ~0.99 for YCSB). It uses the rejection method of Gray et al.
// adapted for repeated draws without precomputation tables.
type Zipf struct {
	r                *Rand
	n                uint64
	s                float64
	oneMinusS        float64
	zeta2, zetaN     float64
	alpha, eta, half float64
}

// NewZipf constructs a Zipf sampler over [0, n) with exponent s.
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("sim: NewZipf with zero n")
	}
	if s <= 0 || s == 1 {
		s = 0.99
	}
	z := &Zipf{r: r, n: n, s: s, oneMinusS: 1 - s}
	z.zeta2 = zeta(2, s)
	z.zetaN = zeta(n, s)
	z.alpha = 1 / (1 - s)
	z.eta = (1 - math.Pow(2/float64(n), 1-s)) / (1 - z.zeta2/z.zetaN)
	z.half = math.Pow(0.5, s)
	return z
}

func zeta(n uint64, s float64) float64 {
	// Truncated series; n can be large, so cap the exact sum and use the
	// integral approximation for the remainder.
	const exact = 10000
	sum := 0.0
	m := n
	if m > exact {
		m = exact
	}
	for i := uint64(1); i <= m; i++ {
		sum += math.Pow(float64(i), -s)
	}
	if n > exact && s != 1 {
		// integral of x^-s from exact to n
		sum += (math.Pow(float64(n), 1-s) - math.Pow(float64(exact), 1-s)) / (1 - s)
	}
	return sum
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
