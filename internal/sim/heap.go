package sim

// TimeHeap is a tiny min-heap of float64 timestamps used to model pools
// of parallel servers (DRAM banks, thread wakeups). The zero value is an
// empty heap.
type TimeHeap struct {
	ts []float64
}

// NewTimeHeap returns a heap pre-filled with n zero timestamps, i.e. n
// servers that are all free at time 0.
func NewTimeHeap(n int) *TimeHeap {
	return &TimeHeap{ts: make([]float64, n)}
}

// Len returns the number of timestamps in the heap.
func (h *TimeHeap) Len() int { return len(h.ts) }

// Min returns the smallest timestamp. It panics on an empty heap.
func (h *TimeHeap) Min() float64 { return h.ts[0] }

// Push inserts a timestamp.
func (h *TimeHeap) Push(t float64) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ts[parent] <= h.ts[i] {
			break
		}
		h.ts[parent], h.ts[i] = h.ts[i], h.ts[parent]
		i = parent
	}
}

// PopMin removes and returns the smallest timestamp.
func (h *TimeHeap) PopMin() float64 {
	min := h.ts[0]
	last := len(h.ts) - 1
	h.ts[0] = h.ts[last]
	h.ts = h.ts[:last]
	h.siftDown(0)
	return min
}

// ReplaceMin replaces the smallest timestamp with t and restores heap
// order. This is the common "take earliest-free server, occupy it until
// t" operation and avoids a pop+push pair.
func (h *TimeHeap) ReplaceMin(t float64) {
	h.ts[0] = t
	h.siftDown(0)
}

func (h *TimeHeap) siftDown(i int) {
	n := len(h.ts)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.ts[l] < h.ts[smallest] {
			smallest = l
		}
		if r < n && h.ts[r] < h.ts[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.ts[i], h.ts[smallest] = h.ts[smallest], h.ts[i]
		i = smallest
	}
}
