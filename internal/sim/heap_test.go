package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeHeapOrdering(t *testing.T) {
	h := &TimeHeap{}
	in := []float64{5, 3, 8, 1, 9, 2, 7}
	for _, v := range in {
		h.Push(v)
	}
	sorted := append([]float64(nil), in...)
	sort.Float64s(sorted)
	for _, want := range sorted {
		if got := h.PopMin(); got != want {
			t.Fatalf("PopMin = %v, want %v", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: %d", h.Len())
	}
}

func TestTimeHeapReplaceMin(t *testing.T) {
	h := NewTimeHeap(4)
	// All four servers free at t=0; occupy earliest until t=10, 20, 5, 1.
	for _, busy := range []float64{10, 20, 5, 1} {
		h.ReplaceMin(busy)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	h.ReplaceMin(100)
	if got := h.Min(); got != 5 {
		t.Fatalf("Min after replace = %v, want 5", got)
	}
}

func TestTimeHeapPropertySorted(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := &TimeHeap{}
		for _, v := range vals {
			h.Push(v)
		}
		prev := h.PopMin()
		for h.Len() > 0 {
			cur := h.PopMin()
			if cur < prev && !(cur != cur) { // tolerate NaN from fuzzing
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTimeHeapAllFree(t *testing.T) {
	h := NewTimeHeap(8)
	if h.Len() != 8 {
		t.Fatalf("Len = %d, want 8", h.Len())
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0", h.Min())
	}
}
