package tablestore

import (
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
)

type fixedDev struct{ lat float64 }

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		return now + d.lat/4
	}
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 {}
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func smallConfig() Config {
	return Config{Rows: 1 << 12, RowSize: 128, OpCompute: 600, OpILP: 2}
}

func newMachine(lat float64) *core.Machine {
	return core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat}, MaxInstructions: 120_000})
}

func TestSelectFindsRows(t *testing.T) {
	tb := NewTable(smallConfig())
	m := newMachine(100)
	for k := uint64(1); k <= 50; k++ {
		if !tb.Select(m, k) {
			t.Fatalf("row %d missing", k)
		}
	}
	if tb.Select(m, 1<<40) {
		t.Fatal("absent row selected")
	}
}

func TestIndexWalkIsDependentLoads(t *testing.T) {
	tb := NewTable(smallConfig())
	m := newMachine(100)
	before := m.Counters()
	tb.Select(m, 2048)
	d := m.Counters().Delta(before)
	// Binary search over 4096 rows = ~12 probes, plus 2 row lines.
	if d[counters.DemandLoads] < 12 {
		t.Fatalf("Select issued only %v loads (binary search missing?)", d[counters.DemandLoads])
	}
}

func TestUpdateWritesRowAndLog(t *testing.T) {
	tb := NewTable(smallConfig())
	m := newMachine(100)
	before := m.Counters()
	if !tb.Update(m, 99) {
		t.Fatal("update of present row failed")
	}
	d := m.Counters().Delta(before)
	// 2 row lines + 2 redo-log lines.
	if d[counters.StoreOps] < 4 {
		t.Fatalf("Update issued only %v stores", d[counters.StoreOps])
	}
}

func TestScanRange(t *testing.T) {
	tb := NewTable(smallConfig())
	m := newMachine(100)
	before := m.Counters()
	tb.ScanRange(m, 1, 16)
	d := m.Counters().Delta(before)
	if d[counters.DemandLoads] < 16*2 {
		t.Fatalf("ScanRange issued only %v loads", d[counters.DemandLoads])
	}
}

func TestYCSBMixesRun(t *testing.T) {
	for name, mix := range Mixes() {
		y := NewYCSB("t-"+name, smallConfig(), mix, 1)
		m := newMachine(150)
		y.Run(m)
		if m.Instructions() < 120_000 {
			t.Fatalf("mix %s ran %d instructions", name, m.Instructions())
		}
	}
}

func TestTableMoreLatencySensitiveThanFlatCompute(t *testing.T) {
	// The index walk serializes on memory latency: runtime must grow
	// substantially with device latency.
	run := func(lat float64) float64 {
		y := NewYCSB("t", smallConfig(), Mixes()["C"], 1)
		m := newMachine(lat)
		y.Run(m)
		return m.Counters()[counters.Cycles]
	}
	if fast, slow := run(100), run(400); slow < fast*1.3 {
		t.Fatalf("index-walking store barely slowed: %v vs %v", fast, slow)
	}
}

func TestSpecsShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("got %d voltdb specs, want 6", len(specs))
	}
	for _, s := range specs {
		if s.New == nil || s.Suite != "VoltDB" {
			t.Fatalf("bad spec %+v", s)
		}
	}
}
