// Package tablestore implements a VoltDB-like in-memory relational
// table executing against the simulated machine: fixed-width rows in
// row pages, a sorted primary index walked by binary search (a chain of
// dependent loads, which is why the paper's VoltDB numbers are more
// latency-sensitive than Redis in Figure 9b), and an append-only redo
// log for writes. A YCSB driver supplies the A-F mixes.
package tablestore

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/vm"
	"github.com/moatlab/melody/internal/workload"
)

// Config sizes a table.
type Config struct {
	Rows    uint64
	RowSize uint64 // bytes per row (fixed-width columns)
	// OpCompute is the per-transaction SQL execution cost
	// (plan lookup, expression evaluation, serialization).
	OpCompute uint64
	OpILP     float64
}

// VoltDBConfig mirrors a single-partition VoltDB-style table.
func VoltDBConfig() Config {
	return Config{Rows: 1 << 21, RowSize: 256, OpCompute: 4200, OpILP: 2.2}
}

// Table is the functional store bound to simulated memory.
type Table struct {
	cfg   Config
	arena *vm.Arena
	index vm.Object // sorted key array, 8B entries
	rows  vm.Object // row pages
	log   vm.Object // redo log

	keys    []uint64 // sorted (dense keys: 1..Rows; kept explicit for realism)
	logHead uint64
}

// NewTable builds and populates the table.
func NewTable(cfg Config) *Table {
	t := &Table{cfg: cfg}
	t.arena = vm.New(8 << 30)
	t.index = t.arena.Alloc("index", cfg.Rows*8)
	t.rows = t.arena.Alloc("rows", cfg.Rows*cfg.RowSize)
	t.log = t.arena.Alloc("redolog", 256<<20)
	t.keys = make([]uint64, cfg.Rows)
	for i := range t.keys {
		t.keys[i] = uint64(i) + 1
	}
	return t
}

// Arena exposes the table's objects.
func (t *Table) Arena() *vm.Arena { return t.arena }

func (t *Table) indexAddr(i uint64) uint64 { return t.index.Base + i*8 }
func (t *Table) rowAddr(i uint64) uint64   { return t.rows.Base + i*t.cfg.RowSize }

// find binary-searches the primary index through the machine and
// returns the row position. Each probe is a dependent load (the next
// address depends on the comparison result).
func (t *Table) find(m *core.Machine, key uint64) (uint64, bool) {
	lo, hi := uint64(0), uint64(len(t.keys))
	for lo < hi {
		mid := (lo + hi) / 2
		m.Load(t.indexAddr(mid), true)
		m.Compute(4)
		if t.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < uint64(len(t.keys)) && t.keys[lo] == key {
		return lo, true
	}
	return lo, false
}

// Select reads one row.
func (t *Table) Select(m *core.Machine, key uint64) bool {
	pos, ok := t.find(m, key)
	if !ok {
		return false
	}
	addr := t.rowAddr(pos)
	lines := (t.cfg.RowSize + mem.LineSize - 1) / mem.LineSize
	for i := uint64(0); i < lines; i++ {
		m.Load(addr+i*mem.LineSize, i == 0)
	}
	m.Compute(lines * 6) // column deserialization
	return true
}

// Update rewrites one row and appends a redo-log record.
func (t *Table) Update(m *core.Machine, key uint64) bool {
	pos, ok := t.find(m, key)
	if !ok {
		return false
	}
	addr := t.rowAddr(pos)
	lines := (t.cfg.RowSize + mem.LineSize - 1) / mem.LineSize
	for i := uint64(0); i < lines; i++ {
		m.Load(addr+i*mem.LineSize, i == 0) // read-modify
		m.Store(addr + i*mem.LineSize)
	}
	// Redo log append: sequential stores.
	for i := uint64(0); i < lines; i++ {
		m.Store(t.log.Base + (t.logHead+i*mem.LineSize)%t.log.Size)
	}
	t.logHead = (t.logHead + lines*mem.LineSize) % t.log.Size
	m.Compute(lines * 8)
	return true
}

// ScanRange reads n consecutive rows starting at key.
func (t *Table) ScanRange(m *core.Machine, key uint64, n int) {
	pos, _ := t.find(m, key)
	lines := (t.cfg.RowSize + mem.LineSize - 1) / mem.LineSize
	for r := uint64(0); r < uint64(n) && pos+r < t.cfg.Rows; r++ {
		addr := t.rowAddr(pos + r)
		for i := uint64(0); i < lines; i++ {
			m.Load(addr+i*mem.LineSize, false)
		}
		m.Compute(lines * 4)
	}
}

// YCSB drives a Table with one standard mix (reusing the kvstore mixes'
// shape: A 50/50, B 95/5, C read-only, D latest, E scan, F RMW).
type YCSB struct {
	name string
	t    *Table
	mix  Mix
	rng  *sim.Rand
	zipf *sim.Zipf
}

// Mix mirrors kvstore's YCSB mix locally to avoid a dependency.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
	ScanLen                         int
	Latest                          bool
}

// Mixes returns YCSB A-F for the table store.
func Mixes() map[string]Mix {
	return map[string]Mix{
		"A": {Read: 0.5, Update: 0.5},
		"B": {Read: 0.95, Update: 0.05},
		"C": {Read: 1.0},
		"D": {Read: 0.95, Insert: 0.05, Latest: true},
		"E": {Scan: 0.95, Insert: 0.05, ScanLen: 16},
		"F": {Read: 0.5, RMW: 0.5},
	}
}

var _ workload.Workload = (*YCSB)(nil)

// NewYCSB builds a driver over a fresh table.
func NewYCSB(name string, cfg Config, mix Mix, seed uint64) *YCSB {
	r := sim.NewRand(seed)
	return &YCSB{
		name: name,
		t:    NewTable(cfg),
		mix:  mix,
		rng:  r,
		zipf: sim.NewZipf(r.Fork(), cfg.Rows, 0.99),
	}
}

// Name implements workload.Workload.
func (y *YCSB) Name() string { return y.name }

// Table exposes the underlying table.
func (y *YCSB) Table() *Table { return y.t }

// PreloadObjects implements workload.Preloader: the primary index is
// hot in steady state; row pages are too large to stay resident.
func (y *YCSB) PreloadObjects() []vm.Object {
	return []vm.Object{y.t.index}
}

func (y *YCSB) nextKey() uint64 {
	if y.mix.Latest {
		return y.t.cfg.Rows - y.zipf.Next()
	}
	return y.zipf.Next() + 1
}

// Run implements workload.Workload.
func (y *YCSB) Run(m *core.Machine) {
	half := y.t.cfg.OpCompute / 2
	for !m.Done() {
		m.ComputeILP(half, y.t.cfg.OpILP)
		p := y.rng.Float64()
		mix := y.mix
		switch {
		case p < mix.Read:
			y.t.Select(m, y.nextKey())
		case p < mix.Read+mix.Update+mix.Insert:
			y.t.Update(m, y.nextKey())
		case p < mix.Read+mix.Update+mix.Insert+mix.Scan:
			y.t.ScanRange(m, y.nextKey(), mix.ScanLen)
		default:
			key := y.nextKey()
			y.t.Select(m, key)
			m.ComputeILP(400, y.t.cfg.OpILP)
			y.t.Update(m, key)
		}
		m.ComputeILP(half, y.t.cfg.OpILP)
	}
}

// Specs returns the VoltDB YCSB A-F catalog entries.
func Specs() []workload.Spec {
	var out []workload.Spec
	for _, wl := range []string{"A", "B", "C", "D", "E", "F"} {
		wl := wl
		out = append(out, workload.Spec{
			Name:  "voltdb-ycsb-" + wl,
			Suite: "VoltDB",
			Class: workload.ClassLatency,
			New: func(seed uint64) workload.Workload {
				return NewYCSB("voltdb-ycsb-"+wl, VoltDBConfig(), Mixes()[wl], seed)
			},
			Siblings: workload.Siblings{Threads: 7, ReadFrac: 0.85, MLP: 4, DelayNs: 300, WorkingSetMB: 256},
		})
	}
	return out
}

// Register adds the table-store specs to the workload catalog.
func Register() { workload.RegisterApps(Specs()) }
