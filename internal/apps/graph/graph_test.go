package graph

import (
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
)

type fixedDev struct{ lat float64 }

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		return now + d.lat/4
	}
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 {}
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

// small graphs keep unit tests quick.
const testN = 1 << 14

func TestBuildShapes(t *testing.T) {
	for _, name := range GraphNames {
		g := Build(name, testN, 8, 1)
		if g.N != testN {
			t.Fatalf("%s: N = %d", name, g.N)
		}
		if g.M() == 0 {
			t.Fatalf("%s: no edges", name)
		}
		if int(g.Offsets[g.N]) != g.M() {
			t.Fatalf("%s: CSR offsets inconsistent", name)
		}
		// Offsets monotone, edges in range.
		for u := uint32(0); u < g.N; u++ {
			if g.Offsets[u] > g.Offsets[u+1] {
				t.Fatalf("%s: offsets not monotone at %d", name, u)
			}
		}
		for _, v := range g.Edges {
			if v >= g.N {
				t.Fatalf("%s: edge target %d out of range", name, v)
			}
		}
	}
}

func TestDegreeSkew(t *testing.T) {
	// twitter must be much more skewed than urand.
	maxDeg := func(name string) int {
		g := Build(name, testN, 8, 1)
		max := 0
		for u := uint32(0); u < g.N; u++ {
			if d := int(g.Offsets[u+1] - g.Offsets[u]); d > max {
				max = d
			}
		}
		return max
	}
	if maxDeg("twitter") < 4*maxDeg("urand") {
		t.Fatalf("twitter max degree %d not skewed vs urand %d", maxDeg("twitter"), maxDeg("urand"))
	}
}

func TestRoadLowDegree(t *testing.T) {
	g := Build("road", testN, 8, 1)
	for u := uint32(0); u < g.N; u++ {
		if d := g.Offsets[u+1] - g.Offsets[u]; d > 4 {
			t.Fatalf("road node %d has degree %d", u, d)
		}
	}
}

func TestKernelsExecute(t *testing.T) {
	g := Build("urand", testN, 8, 1)
	for _, k := range Kernels {
		w := NewWithGraph(k, g, 1)
		m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 120}, MaxInstructions: 50_000})
		w.Run(m)
		c := m.Counters()
		if c[counters.Instructions] < 50_000 {
			t.Fatalf("%s: ran %v instructions", k, c[counters.Instructions])
		}
		if c[counters.DemandLoads] == 0 {
			t.Fatalf("%s: no loads issued", k)
		}
	}
}

func TestBFSCorrectness(t *testing.T) {
	// On a grid (road) graph every node is reachable, so an unbounded
	// BFS must label the whole graph with finite distances and the
	// source's neighbour with distance 1.
	g := Build("road", 1<<10, 4, 1)
	w := NewWithGraph("bfs", g, 7)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 50}, MaxInstructions: 50_000_000})
	w.bfs(m)
	src := uint32(0)
	for v, d := range w.vals {
		if d == 0 {
			src = uint32(v)
			break
		}
	}
	if w.vals[src] != 0 {
		t.Fatalf("no BFS source found")
	}
	reached := 0
	for _, d := range w.vals {
		if d != inf {
			reached++
		}
	}
	if reached != int(g.N) {
		t.Fatalf("BFS reached only %d/%d nodes of a connected grid", reached, g.N)
	}
}

func TestSpecsCount(t *testing.T) {
	specs := Specs()
	if len(specs) != 30 {
		t.Fatalf("got %d GAPBS specs, want 30", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
		if s.New == nil {
			t.Fatalf("%s has no constructor", s.Name)
		}
	}
}

// TestCCLabelsConnectedGrid: on a connected grid every node must end up
// with the same component label.
func TestCCLabelsConnectedGrid(t *testing.T) {
	g := Build("road", 1<<8, 4, 1)
	w := NewWithGraph("cc", g, 3)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 40}, MaxInstructions: 100_000_000})
	w.components(m)
	label := w.vals[0]
	for v, l := range w.vals {
		if l != label {
			t.Fatalf("node %d has label %d, node 0 has %d (grid is connected)", v, l, label)
		}
	}
}

// TestTriangleCountMatchesBruteForce verifies TC on a small graph.
func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := Build("urand", 1<<7, 6, 5)
	// Brute-force re-implementation of the kernel's ordered merge
	// intersection, computed independently of the Machine plumbing.
	brute := uint64(0)
	for u := uint32(0); u < g.N; u++ {
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Edges[i]
			if v <= u {
				continue
			}
			// Intersect adjacency of u and v (the kernel's merge).
			a, b := g.Offsets[u], g.Offsets[v]
			for a < g.Offsets[u+1] && b < g.Offsets[v+1] {
				x, y := g.Edges[a], g.Edges[b]
				switch {
				case x == y:
					brute++
					a++
					b++
				case x < y:
					a++
				default:
					b++
				}
			}
		}
	}
	w := NewWithGraph("tc", g, 7)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 40}, MaxInstructions: 1 << 40})
	count := w.trianglesCount(m)
	if count != brute {
		t.Fatalf("kernel counted %d, brute force %d", count, brute)
	}
}

// TestSSSPDistancesSane: distances must be 0 at the source and respect
// edge relaxation (no distance larger than a neighbour's + max weight).
func TestSSSPDistancesSane(t *testing.T) {
	g := Build("road", 1<<8, 4, 1)
	w := NewWithGraph("sssp", g, 11)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 40}, MaxInstructions: 100_000_000})
	w.sssp(m)
	reached := 0
	for u := uint32(0); u < g.N; u++ {
		du := w.vals[u]
		if du == inf {
			continue
		}
		reached++
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Edges[i]
			wgt := (u^v)%7 + 1
			if w.vals[v] != inf && w.vals[v] > du+wgt {
				t.Fatalf("triangle inequality violated: d[%d]=%d > d[%d]=%d + %d",
					v, w.vals[v], u, du, wgt)
			}
		}
	}
	if reached < 2 {
		t.Fatalf("SSSP reached only %d nodes", reached)
	}
}
