// Package graph implements GAPBS-style graph kernels (BFS, PageRank,
// connected components, SSSP, triangle counting, betweenness centrality)
// that actually execute over CSR graphs while performing their loads and
// stores through the simulated machine. The paper's graph inputs
// (twitter, web, kron, urand, road) are replaced by synthetic generators
// with matching shape: power-law degree distributions for twitter/web,
// RMAT for kron, uniform for urand, and near-diagonal locality for road.
package graph

import (
	"sort"
	"sync"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/vm"
)

// Graph is a CSR graph bound to simulated addresses.
type Graph struct {
	Name    string
	N       uint32   // nodes
	Offsets []uint32 // len N+1
	Edges   []uint32 // len M

	arena      *vm.Arena
	offsetsObj vm.Object
	edgesObj   vm.Object
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// Arena exposes the graph's allocations (for placement experiments).
func (g *Graph) Arena() *vm.Arena { return g.arena }

// simulated addresses of CSR elements.
func (g *Graph) offsetAddr(v uint32) uint64 { return g.offsetsObj.Base + uint64(v)*4 }
func (g *Graph) edgeAddr(i int) uint64      { return g.edgesObj.Base + uint64(i)*4 }

// DefaultNodes is the synthetic graph scale: large enough that kernel
// working sets exceed the biggest simulated LLC.
const DefaultNodes = 1 << 21

// DefaultDegree is the average out-degree.
const DefaultDegree = 12

// Build constructs the named synthetic graph ("twitter", "web", "kron",
// "urand", "road") at the given scale.
func Build(name string, n uint32, degree int, seed uint64) *Graph {
	r := sim.NewRand(seed)
	targets := make([][]uint32, n)
	m := int(n) * degree

	addEdge := func(u, v uint32) {
		if u != v {
			targets[u] = append(targets[u], v)
		}
	}

	switch name {
	case "urand":
		for i := 0; i < m; i++ {
			addEdge(uint32(r.Uint64n(uint64(n))), uint32(r.Uint64n(uint64(n))))
		}
	case "kron":
		// RMAT with the GAPBS parameters (a=0.57, b=0.19, c=0.19).
		bits := 0
		for 1<<bits < int(n) {
			bits++
		}
		for i := 0; i < m; i++ {
			var u, v uint32
			for b := 0; b < bits; b++ {
				p := r.Float64()
				switch {
				case p < 0.57: // a: top-left
				case p < 0.76: // b: top-right
					v |= 1 << b
				case p < 0.95: // c: bottom-left
					u |= 1 << b
				default: // d: bottom-right
					u |= 1 << b
					v |= 1 << b
				}
			}
			if u < n && v < n {
				addEdge(u, v)
			}
		}
	case "twitter":
		// Power-law degrees on both sides: sources and targets drawn
		// from independent Zipf distributions, like the follower graph.
		zSrc := sim.NewZipf(r, uint64(n), 0.6)
		zDst := sim.NewZipf(r.Fork(), uint64(n), 0.8)
		for i := 0; i < m; i++ {
			// Scatter the hot ranks across the id space so hubs are not
			// all low ids.
			u := uint32((zSrc.Next() * 0x9e3779b9) % uint64(n))
			v := uint32((zDst.Next() * 0x85ebca6b) % uint64(n))
			addEdge(u, v)
		}
	case "web":
		// Power-law plus host locality: most links stay near the source.
		z := sim.NewZipf(r, uint64(n), 0.7)
		for i := 0; i < m; i++ {
			u := uint32(r.Uint64n(uint64(n)))
			var v uint32
			if r.Bool(0.7) {
				// Local link within a 4K-node "site".
				base := u &^ 4095
				v = base + uint32(r.Uint64n(4096))
				if v >= n {
					v = n - 1
				}
			} else {
				v = uint32(z.Next())
			}
			addEdge(u, v)
		}
	case "road":
		// Grid-like: ~4 neighbours with adjacent ids.
		side := uint32(1)
		for side*side < n {
			side++
		}
		for u := uint32(0); u < n; u++ {
			x, y := u%side, u/side
			if x+1 < side && u+1 < n {
				addEdge(u, u+1)
				addEdge(u+1, u)
			}
			if y+1 < side && u+side < n {
				addEdge(u, u+side)
				addEdge(u+side, u)
			}
		}
	default:
		panic("graph: unknown generator " + name)
	}

	g := &Graph{Name: name, N: n}
	g.Offsets = make([]uint32, n+1)
	total := 0
	for u := uint32(0); u < n; u++ {
		sort.Slice(targets[u], func(i, j int) bool { return targets[u][i] < targets[u][j] })
		total += len(targets[u])
	}
	g.Edges = make([]uint32, 0, total)
	for u := uint32(0); u < n; u++ {
		g.Offsets[u] = uint32(len(g.Edges))
		g.Edges = append(g.Edges, targets[u]...)
		targets[u] = nil
	}
	g.Offsets[n] = uint32(len(g.Edges))

	g.arena = vm.New(2 << 30)
	g.offsetsObj = g.arena.Alloc("offsets", uint64(n+1)*4)
	g.edgesObj = g.arena.Alloc("edges", uint64(len(g.Edges))*4)
	return g
}

// Graphs are expensive to build, so instances are cached per
// (name, scale) for the life of the process. Addresses are
// deterministic, so sharing across runs is safe.
var (
	cacheMu sync.Mutex
	cache   = map[string]*Graph{}
)

// Get returns the cached default-scale instance of the named graph.
func Get(name string) *Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[name]; ok {
		return g
	}
	g := Build(name, DefaultNodes, DefaultDegree, 0x6a09e667f3bcc908)
	cache[name] = g
	return g
}

// loadOffsets reads offsets[u] and offsets[u+1] through the machine.
func (g *Graph) loadOffsets(m *core.Machine, u uint32) (uint32, uint32) {
	m.Load(g.offsetAddr(u), false)
	// offsets[u+1] is usually the same line; the cache model makes the
	// second load nearly free when it is.
	m.Load(g.offsetAddr(u+1), false)
	return g.Offsets[u], g.Offsets[u+1]
}
