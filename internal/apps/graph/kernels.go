package graph

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/vm"
	"github.com/moatlab/melody/internal/workload"
)

// Kernel names in GAPBS order.
var Kernels = []string{"bfs", "pr", "cc", "sssp", "tc", "bc"}

// GraphNames lists the synthetic inputs.
var GraphNames = []string{"twitter", "web", "road", "kron", "urand"}

// Workload runs one kernel over one graph until the machine budget is
// exhausted, restarting the traversal as needed.
type Workload struct {
	name   string
	kernel string
	g      *Graph
	rng    *sim.Rand

	// per-kernel property arrays in simulated memory
	prop  vm.Object // 4B per node (dist / rank / comp / depth)
	prop2 vm.Object // second array where the kernel needs one
	// Go-side values for actual execution
	vals  []uint32
	vals2 []float32
}

// New builds a kernel workload. The graph is built (or fetched from the
// process-wide cache) on first use.
func New(kernel, graphName string, seed uint64) *Workload {
	return NewWithGraph(kernel, Get(graphName), seed)
}

// NewWithGraph builds a kernel workload over an explicit graph instance
// (tests and custom scales).
func NewWithGraph(kernel string, g *Graph, seed uint64) *Workload {
	w := &Workload{
		name:   kernel + "-" + g.Name,
		kernel: kernel,
		g:      g,
		rng:    sim.NewRand(seed),
	}
	arena := vm.New(16 << 30) // kernel-private arrays above the graph
	w.prop = arena.Alloc("prop", uint64(g.N)*4)
	w.prop2 = arena.Alloc("prop2", uint64(g.N)*4)
	w.vals = make([]uint32, g.N)
	w.vals2 = make([]float32, g.N)
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return w.name }

// PreloadObjects implements workload.Preloader: the offsets array and
// per-node property arrays are the structures a long-running run keeps
// cached; edge lists stream.
func (w *Workload) PreloadObjects() []vm.Object {
	return []vm.Object{w.prop, w.prop2, {Name: "offsets", Base: w.g.offsetAddr(0), Size: uint64(w.g.N+1) * 4}}
}

func (w *Workload) propAddr(v uint32) uint64  { return w.prop.Base + uint64(v)*4 }
func (w *Workload) prop2Addr(v uint32) uint64 { return w.prop2.Base + uint64(v)*4 }

// Run implements workload.Workload.
func (w *Workload) Run(m *core.Machine) {
	for !m.Done() {
		switch w.kernel {
		case "bfs":
			w.bfs(m)
		case "pr":
			w.pagerank(m)
		case "cc":
			w.components(m)
		case "sssp":
			w.sssp(m)
		case "tc":
			w.triangles(m)
		case "bc":
			w.betweenness(m)
		default:
			panic("graph: unknown kernel " + w.kernel)
		}
	}
}

const inf = ^uint32(0)

// bfs runs a breadth-first search from a random source.
func (w *Workload) bfs(m *core.Machine) {
	g := w.g
	for i := range w.vals {
		w.vals[i] = inf
	}
	src := uint32(w.rng.Uint64n(uint64(g.N)))
	w.vals[src] = 0
	frontier := []uint32{src}
	for len(frontier) > 0 && !m.Done() {
		var next []uint32
		for _, u := range frontier {
			if m.Done() {
				return
			}
			start, end := g.loadOffsets(m, u)
			du := w.vals[u]
			for i := start; i < end && !m.Done(); i++ {
				m.Load(g.edgeAddr(int(i)), false) // edge list streams
				v := g.Edges[i]
				m.Load(w.propAddr(v), true) // dist[v]: random, dependent
				if w.vals[v] == inf {
					w.vals[v] = du + 1
					m.Store(w.propAddr(v))
					next = append(next, v)
				}
				m.Compute(4)
			}
		}
		frontier = next
	}
}

// pagerank runs synchronous PageRank sweeps.
func (w *Workload) pagerank(m *core.Machine) {
	g := w.g
	n := float64(g.N)
	for i := range w.vals2 {
		w.vals2[i] = float32(1 / n)
	}
	for iter := 0; iter < 3 && !m.Done(); iter++ {
		for u := uint32(0); u < g.N && !m.Done(); u++ {
			start, end := g.loadOffsets(m, u)
			var sum float32
			for i := start; i < end && !m.Done(); i++ {
				m.Load(g.edgeAddr(int(i)), false)
				v := g.Edges[i]
				m.Load(w.propAddr(v), true) // rank gather: random, dependent
				sum += w.vals2[v]
				m.Compute(3)
			}
			w.vals2[u] = 0.15/float32(n) + 0.85*sum
			m.Store(w.prop2Addr(u)) // sequential rank store
			m.Compute(6)
		}
	}
}

// components runs label-propagation connected components.
func (w *Workload) components(m *core.Machine) {
	g := w.g
	for i := range w.vals {
		w.vals[i] = uint32(i)
	}
	changed := true
	for changed && !m.Done() {
		changed = false
		for u := uint32(0); u < g.N && !m.Done(); u++ {
			start, end := g.loadOffsets(m, u)
			m.Load(w.propAddr(u), false)
			best := w.vals[u]
			for i := start; i < end && !m.Done(); i++ {
				m.Load(g.edgeAddr(int(i)), false)
				v := g.Edges[i]
				m.Load(w.propAddr(v), true)
				if w.vals[v] < best {
					best = w.vals[v]
				}
				m.Compute(2)
			}
			if best < w.vals[u] {
				w.vals[u] = best
				m.Store(w.propAddr(u))
				changed = true
			}
		}
	}
}

// sssp runs Bellman-Ford-style relaxation rounds with unit-ish weights
// derived from edge endpoints (deterministic, no stored weights).
func (w *Workload) sssp(m *core.Machine) {
	g := w.g
	for i := range w.vals {
		w.vals[i] = inf
	}
	src := uint32(w.rng.Uint64n(uint64(g.N)))
	w.vals[src] = 0
	for round := 0; round < 4 && !m.Done(); round++ {
		for u := uint32(0); u < g.N && !m.Done(); u++ {
			m.Load(w.propAddr(u), false)
			du := w.vals[u]
			if du == inf {
				m.Compute(1)
				continue
			}
			start, end := g.loadOffsets(m, u)
			for i := start; i < end && !m.Done(); i++ {
				m.Load(g.edgeAddr(int(i)), false)
				v := g.Edges[i]
				wgt := (u^v)%7 + 1
				m.Load(w.propAddr(v), true)
				if du+wgt < w.vals[v] {
					w.vals[v] = du + wgt
					m.Store(w.propAddr(v))
				}
				m.Compute(5)
			}
		}
	}
}

// triangles counts triangles by sorted adjacency intersection.
func (w *Workload) triangles(m *core.Machine) { w.trianglesCount(m) }

// trianglesCount runs the kernel and returns the triangle count (used
// by correctness tests).
func (w *Workload) trianglesCount(m *core.Machine) uint64 {
	g := w.g
	var count uint64
	for u := uint32(0); u < g.N && !m.Done(); u++ {
		uStart, uEnd := g.loadOffsets(m, u)
		for i := uStart; i < uEnd && !m.Done(); i++ {
			m.Load(g.edgeAddr(int(i)), false)
			v := g.Edges[i]
			if v <= u {
				m.Compute(1)
				continue
			}
			vStart, vEnd := g.loadOffsets(m, v)
			// Merge-intersect adjacency lists: two streaming loads.
			a, b := uStart, vStart
			for a < uEnd && b < vEnd && !m.Done() {
				m.Load(g.edgeAddr(int(a)), false)
				m.Load(g.edgeAddr(int(b)), false)
				x, y := g.Edges[a], g.Edges[b]
				switch {
				case x == y:
					count++
					a++
					b++
				case x < y:
					a++
				default:
					b++
				}
				m.Compute(3)
			}
		}
	}
	return count
}

// betweenness runs one BFS plus a reverse accumulation sweep.
func (w *Workload) betweenness(m *core.Machine) {
	w.bfs(m)
	if m.Done() {
		return
	}
	g := w.g
	// Reverse sweep: accumulate centrality along decreasing depth.
	for u := g.N; u > 0 && !m.Done(); u-- {
		v := u - 1
		m.Load(w.propAddr(v), false)
		if w.vals[v] == inf {
			m.Compute(1)
			continue
		}
		start, end := g.loadOffsets(m, v)
		for i := start; i < end && !m.Done(); i++ {
			m.Load(g.edgeAddr(int(i)), false)
			t := g.Edges[i]
			m.Load(w.prop2Addr(t), true)
			w.vals2[v] += w.vals2[t] * 0.5
			m.Compute(4)
		}
		m.Store(w.prop2Addr(v))
	}
}

// Specs returns the 30 GAPBS-style catalog entries (6 kernels x 5
// graphs).
func Specs() []workload.Spec {
	var out []workload.Spec
	for _, k := range Kernels {
		for _, gn := range GraphNames {
			k, gn := k, gn
			cls := workload.ClassLatency
			if k == "pr" || k == "tc" {
				cls = workload.ClassMixed
			}
			out = append(out, workload.Spec{
				Name:  k + "-" + gn,
				Suite: "GAPBS",
				Class: cls,
				New: func(seed uint64) workload.Workload {
					return New(k, gn, seed)
				},
				Siblings: workload.Siblings{Threads: 8, ReadFrac: 0.9, MLP: 6, DelayNs: 150, WorkingSetMB: 128},
			})
		}
	}
	return out
}

// Register adds the GAPBS specs to the workload catalog.
func Register() { workload.RegisterApps(Specs()) }
