package kvstore

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/vm"
	"github.com/moatlab/melody/internal/workload"
)

// Mix is a YCSB operation mix.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64 // fractions; sum to 1
	ScanLen                         int
	// Latest biases the key distribution toward recent inserts (YCSB-D).
	Latest bool
}

// YCSBMixes returns the standard workloads A-F.
func YCSBMixes() map[string]Mix {
	return map[string]Mix{
		"A": {Read: 0.5, Update: 0.5},
		"B": {Read: 0.95, Update: 0.05},
		"C": {Read: 1.0},
		"D": {Read: 0.95, Insert: 0.05, Latest: true},
		"E": {Scan: 0.95, Insert: 0.05, ScanLen: 16},
		"F": {Read: 0.5, RMW: 0.5},
	}
}

// YCSB drives a Store with one mix.
type YCSB struct {
	name   string
	store  *Store
	mix    Mix
	rng    *sim.Rand
	zipf   *sim.Zipf
	maxKey uint64

	// RecordOpLatency enables per-operation latency capture (the
	// request-level tail measurements of Figure 7c).
	RecordOpLatency bool
	OpLatenciesNs   []float64
}

var _ workload.Workload = (*YCSB)(nil)

// NewYCSB builds a driver over a fresh store.
func NewYCSB(name string, cfg Config, mix Mix, seed uint64) *YCSB {
	r := sim.NewRand(seed)
	return &YCSB{
		name:   name,
		store:  NewStore(cfg),
		mix:    mix,
		rng:    r,
		zipf:   sim.NewZipf(r.Fork(), cfg.Keys, 0.99),
		maxKey: cfg.Keys,
	}
}

// Name implements workload.Workload.
func (y *YCSB) Name() string { return y.name }

// Store exposes the underlying store (for placement experiments).
func (y *YCSB) Store() *Store { return y.store }

// PreloadObjects implements workload.Preloader: the hash table is hot
// in steady state; values are too large to stay resident.
func (y *YCSB) PreloadObjects() []vm.Object {
	return []vm.Object{y.store.table}
}

// nextKey draws a key per the mix's distribution.
func (y *YCSB) nextKey() uint64 {
	if y.mix.Latest {
		// Recent keys are hot: reverse the Zipf rank from the top.
		return y.maxKey - y.zipf.Next()
	}
	return y.zipf.Next() + 1
}

// Run implements workload.Workload.
func (y *YCSB) Run(m *core.Machine) {
	s := y.store
	half := s.cfg.OpCompute / 2
	for !m.Done() {
		opStart := m.TimeNs()
		// Request parse half, operation, response half.
		m.ComputeILP(half, s.cfg.OpILP)
		p := y.rng.Float64()
		mix := y.mix
		switch {
		case p < mix.Read:
			s.Get(m, y.nextKey())
		case p < mix.Read+mix.Update:
			s.Set(m, y.nextKey())
		case p < mix.Read+mix.Update+mix.Insert:
			y.maxKey++
			s.insert(y.maxKey, s.allocValue())
			s.Set(m, y.maxKey)
		case p < mix.Read+mix.Update+mix.Insert+mix.Scan:
			s.Scan(m, y.nextKey(), mix.ScanLen)
		default: // read-modify-write
			key := y.nextKey()
			s.Get(m, key)
			m.ComputeILP(200, s.cfg.OpILP)
			s.Set(m, key)
		}
		m.ComputeILP(half, s.cfg.OpILP)
		if y.RecordOpLatency {
			y.OpLatenciesNs = append(y.OpLatenciesNs, m.TimeNs()-opStart)
		}
	}
}

// Specs returns the Redis YCSB A-F and memcached entries.
func Specs() []workload.Spec {
	var out []workload.Spec
	for _, wl := range []string{"A", "B", "C", "D", "E", "F"} {
		wl := wl
		out = append(out, workload.Spec{
			Name:  "redis-ycsb-" + wl,
			Suite: "Redis",
			Class: workload.ClassLatency,
			New: func(seed uint64) workload.Workload {
				return NewYCSB("redis-ycsb-"+wl, RedisConfig(), YCSBMixes()[wl], seed)
			},
			Siblings: workload.Siblings{Threads: 7, ReadFrac: 0.9, MLP: 4, DelayNs: 250, WorkingSetMB: 256},
		})
	}
	for _, wl := range []string{"A", "C"} {
		wl := wl
		out = append(out, workload.Spec{
			Name:  "memcached-ycsb-" + wl,
			Suite: "Redis",
			Class: workload.ClassLatency,
			New: func(seed uint64) workload.Workload {
				return NewYCSB("memcached-ycsb-"+wl, MemcachedConfig(), YCSBMixes()[wl], seed)
			},
			Siblings: workload.Siblings{Threads: 7, ReadFrac: 0.95, MLP: 4, DelayNs: 250, WorkingSetMB: 256},
		})
	}
	return out
}

// Register adds the KV-store specs to the workload catalog.
func Register() { workload.RegisterApps(Specs()) }
