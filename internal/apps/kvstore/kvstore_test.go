package kvstore

import (
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
)

type fixedDev struct{ lat float64 }

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		return now + d.lat/4
	}
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 {}
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func smallConfig() Config {
	return Config{Keys: 1 << 12, ValueSize: 256, OpCompute: 400, OpILP: 2}
}

func newMachine(lat float64) *core.Machine {
	return core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat}, MaxInstructions: 100_000})
}

func TestGetFindsPopulatedKeys(t *testing.T) {
	s := NewStore(smallConfig())
	m := newMachine(100)
	for k := uint64(1); k <= 100; k++ {
		if !s.Get(m, k) {
			t.Fatalf("key %d missing after load phase", k)
		}
	}
	if s.Get(m, 1<<40) {
		t.Fatal("absent key found")
	}
}

func TestSetThenGet(t *testing.T) {
	s := NewStore(smallConfig())
	m := newMachine(100)
	s.Set(m, 7)
	if !s.Get(m, 7) {
		t.Fatal("key lost after Set")
	}
}

func TestOperationsTouchMemory(t *testing.T) {
	s := NewStore(smallConfig())
	m := newMachine(100)
	before := m.Counters()
	s.Get(m, 42)
	d := m.Counters().Delta(before)
	// At least one probe plus value lines (256B = 4 lines).
	if d[counters.DemandLoads] < 5 {
		t.Fatalf("Get issued only %v loads", d[counters.DemandLoads])
	}
	before = m.Counters()
	s.Set(m, 42)
	d = m.Counters().Delta(before)
	if d[counters.StoreOps] < 4 {
		t.Fatalf("Set issued only %v stores", d[counters.StoreOps])
	}
}

func TestScanReadsSequentially(t *testing.T) {
	s := NewStore(smallConfig())
	m := newMachine(100)
	before := m.Counters()
	s.Scan(m, 10, 8)
	d := m.Counters().Delta(before)
	if d[counters.DemandLoads] < 8*4 {
		t.Fatalf("Scan of 8x256B issued only %v loads", d[counters.DemandLoads])
	}
}

func TestYCSBRunsAllMixes(t *testing.T) {
	for name, mix := range YCSBMixes() {
		y := NewYCSB("t-"+name, smallConfig(), mix, 1)
		m := newMachine(150)
		y.Run(m)
		if m.Instructions() < 100_000 {
			t.Fatalf("mix %s ran %d instructions", name, m.Instructions())
		}
	}
}

func TestYCSBOpLatencyRecording(t *testing.T) {
	y := NewYCSB("t", smallConfig(), YCSBMixes()["C"], 1)
	y.RecordOpLatency = true
	m := newMachine(200)
	y.Run(m)
	if len(y.OpLatenciesNs) < 10 {
		t.Fatalf("recorded %d op latencies", len(y.OpLatenciesNs))
	}
	for _, l := range y.OpLatenciesNs {
		if l <= 0 {
			t.Fatal("non-positive op latency")
		}
	}
}

func TestYCSBLatencySensitivity(t *testing.T) {
	run := func(lat float64) float64 {
		y := NewYCSB("t", smallConfig(), YCSBMixes()["C"], 1)
		m := newMachine(lat)
		y.Run(m)
		return m.Counters()[counters.Cycles]
	}
	if fast, slow := run(100), run(400); slow <= fast*1.05 {
		t.Fatalf("4x memory latency barely slowed YCSB-C: %v vs %v", fast, slow)
	}
}

func TestSpecsShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("got %d kvstore specs, want 8 (6 redis + 2 memcached)", len(specs))
	}
	for _, s := range specs {
		if s.New == nil || s.Suite != "Redis" {
			t.Fatalf("bad spec %+v", s)
		}
	}
}
