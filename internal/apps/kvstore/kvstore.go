// Package kvstore implements a Redis-like in-memory key-value store
// that executes against the simulated machine: an open-addressing hash
// table and a value log live in simulated memory, and every probe and
// value transfer is a machine load/store. A YCSB driver (workloads A-F)
// generates the operation mix the paper uses for Redis, VoltDB and
// memcached (Figures 7c and 9b).
package kvstore

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/vm"
)

// Config sizes a store.
type Config struct {
	Keys      uint64 // populated records
	ValueSize uint64 // bytes per value
	// OpCompute is the per-operation command processing cost in
	// instructions (parsing, dispatch, response).
	OpCompute uint64
	// OpILP is the ILP of that processing.
	OpILP float64
}

// RedisConfig mirrors a Redis-style deployment under YCSB defaults
// (1 KB values).
func RedisConfig() Config {
	return Config{Keys: 1 << 20, ValueSize: 1024, OpCompute: 1800, OpILP: 2.2}
}

// MemcachedConfig mirrors a memcached-style deployment (small values,
// lighter protocol).
func MemcachedConfig() Config {
	return Config{Keys: 1 << 21, ValueSize: 128, OpCompute: 900, OpILP: 2.4}
}

type slot struct {
	key     uint64 // 0 = empty
	valAddr uint64
}

// Store is the functional KV store bound to simulated memory.
type Store struct {
	cfg     Config
	arena   *vm.Arena
	table   vm.Object
	values  vm.Object
	slots   []slot
	nSlots  uint64
	logHead uint64
}

// NewStore builds and populates a store (population is instantaneous —
// it happens before the measured run, like YCSB's load phase).
func NewStore(cfg Config) *Store {
	nSlots := uint64(1)
	for nSlots < cfg.Keys*2 {
		nSlots <<= 1
	}
	s := &Store{cfg: cfg, nSlots: nSlots}
	s.arena = vm.New(4 << 30)
	s.table = s.arena.Alloc("hashtable", nSlots*16)
	s.values = s.arena.Alloc("valuelog", (cfg.Keys+cfg.Keys/4)*cfg.ValueSize)
	s.slots = make([]slot, nSlots)
	for k := uint64(1); k <= cfg.Keys; k++ {
		s.insert(k, s.allocValue())
	}
	return s
}

// Arena exposes the store's objects for placement experiments.
func (s *Store) Arena() *vm.Arena { return s.arena }

func (s *Store) allocValue() uint64 {
	addr := s.values.Base + s.logHead
	s.logHead = (s.logHead + s.cfg.ValueSize) % s.values.Size
	return addr
}

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// insert adds a key without simulation (load phase only).
func (s *Store) insert(key, valAddr uint64) {
	h := hashKey(key) & (s.nSlots - 1)
	for s.slots[h].key != 0 && s.slots[h].key != key {
		h = (h + 1) & (s.nSlots - 1)
	}
	s.slots[h] = slot{key: key, valAddr: valAddr}
}

func (s *Store) slotAddr(h uint64) uint64 { return s.table.Base + h*16 }

// lookup probes the table through the machine and returns the slot
// index; found is false for absent keys.
func (s *Store) lookup(m *core.Machine, key uint64) (idx uint64, found bool) {
	h := hashKey(key) & (s.nSlots - 1)
	for probes := 0; probes < 64; probes++ {
		// The probe address depends on the hash computation and, for
		// collisions, on having read the previous slot: dependent.
		m.Load(s.slotAddr(h), true)
		m.Compute(6)
		sl := s.slots[h]
		if sl.key == key {
			return h, true
		}
		if sl.key == 0 {
			return h, false
		}
		h = (h + 1) & (s.nSlots - 1)
	}
	return h, false
}

// Get reads a value through the machine.
func (s *Store) Get(m *core.Machine, key uint64) bool {
	idx, ok := s.lookup(m, key)
	if !ok {
		return false
	}
	addr := s.slots[idx].valAddr
	lines := (s.cfg.ValueSize + mem.LineSize - 1) / mem.LineSize
	for i := uint64(0); i < lines; i++ {
		// First line is pointer-dependent on the slot; the rest stream.
		m.Load(addr+i*mem.LineSize, i == 0)
	}
	m.Compute(lines * 4) // copy into the response buffer
	return true
}

// Set writes (or overwrites) a value through the machine. Overwrites
// allocate fresh log space like Redis' SDS reallocation under YCSB's
// full-value updates.
func (s *Store) Set(m *core.Machine, key uint64) {
	idx, _ := s.lookup(m, key)
	addr := s.allocValue()
	lines := (s.cfg.ValueSize + mem.LineSize - 1) / mem.LineSize
	for i := uint64(0); i < lines; i++ {
		m.Store(addr + i*mem.LineSize)
	}
	s.slots[idx] = slot{key: key, valAddr: addr}
	m.Store(s.slotAddr(idx))
	m.Compute(lines * 3)
}

// Scan reads n consecutive values starting at key (YCSB-E).
func (s *Store) Scan(m *core.Machine, key uint64, n int) {
	for i := 0; i < n; i++ {
		k := key + uint64(i)
		if k > s.cfg.Keys {
			break
		}
		s.Get(m, k)
	}
}
