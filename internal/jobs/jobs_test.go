package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/melody/spec"
)

func testSpec(seed uint64) spec.RunSpec {
	return spec.RunSpec{Version: 1, Experiments: []string{"fig8f"}, Workloads: 4, Seed: seed}
}

// gatedExecutor blocks every execution until release is closed and
// counts invocations.
type gatedExecutor struct {
	mu      sync.Mutex
	release chan struct{}
	calls   atomic.Int64
	started chan string
}

func newGatedExecutor() *gatedExecutor {
	return &gatedExecutor{release: make(chan struct{}), started: make(chan string, 64)}
}

func (g *gatedExecutor) exec(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
	g.calls.Add(1)
	g.started <- fmt.Sprintf("seed-%d", sp.Seed)
	notify(Event{Type: EventExperimentStart, Experiment: sp.Experiments[0]})
	select {
	case <-g.release:
	case <-ctx.Done():
		return ExecResult{ManifestJSON: []byte(`{"interrupted":true}`), Address: "sha256:partial", Interrupted: true}, nil
	}
	hash, _ := sp.Hash()
	return ExecResult{ManifestJSON: []byte(`{"spec_hash":"` + hash + `"}`), Address: "addr-" + hash}, nil
}

// waitState polls until id reaches state or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		st, ok := m.Status(id)
		if ok && st.State == want {
			return st
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s (now %+v)", id, want, st)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// First job starts running; the next two fill the queue.
	first, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	for i := uint64(2); i <= 3; i++ {
		if _, err := m.Submit(testSpec(i)); err != nil {
			t.Fatalf("seed %d rejected with queue not full: %v", i, err)
		}
	}
	if d := m.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	if _, err := m.Submit(testSpec(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}

	// Queued jobs report their FIFO position.
	sts := m.List()
	if len(sts) != 3 || sts[1].QueuePos != 1 || sts[2].QueuePos != 2 {
		t.Fatalf("statuses = %+v", sts)
	}

	close(g.release)
	for _, st := range sts {
		waitState(t, m, st.ID, StateDone)
	}
	if got := g.calls.Load(); got != 3 {
		t.Fatalf("executor ran %d times, want 3", got)
	}
	_ = first
}

func TestCacheHitSkipsExecution(t *testing.T) {
	g := newGatedExecutor()
	close(g.release) // run instantly
	m := New(g.exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.CacheHit {
		t.Fatal("first execution marked as cache hit")
	}

	// Identical spec — different surface form (seed explicit vs zero
	// would differ; use the same seed but re-built struct).
	again, err := m.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || !again.CacheHit {
		t.Fatalf("resubmit = %+v, want immediate done cache hit", again)
	}
	if again.ID == st.ID {
		t.Fatal("cache hit reused the original job id")
	}
	raw1, addr1, err := m.Manifest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw2, addr2, err := m.Manifest(again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) || addr1 != addr2 {
		t.Fatalf("cached manifest differs: %s/%s vs %s/%s", raw1, addr1, raw2, addr2)
	}
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("executor ran %d times, want 1 (cache hit must not re-run)", got)
	}
}

func TestCoalesceInFlightDuplicate(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st1, err := m.Submit(testSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	st2, err := m.Submit(testSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st1.ID {
		t.Fatalf("duplicate in-flight spec got a new job (%s vs %s)", st2.ID, st1.ID)
	}
	close(g.release)
	waitState(t, m, st1.ID, StateDone)
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("executor ran %d times, want 1", got)
	}
}

func TestDrainCancelsQueuedAndFlushesPartial(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{})
	go func() { m.Run(ctx); close(ran) }()

	running, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	queued, err := m.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	cancel() // SIGINT equivalent
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	if m.Accepting() {
		t.Fatal("still accepting after drain")
	}
	if _, err := m.Submit(testSpec(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	// The queued job was canceled, never executed.
	qs, _ := m.Status(queued.ID)
	if qs.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", qs.State)
	}
	if _, _, err := m.Manifest(queued.ID); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("canceled job manifest err = %v, want ErrNoManifest", err)
	}

	// The running job finished gracefully with a partial manifest.
	rs, _ := m.Status(running.ID)
	if rs.State != StateDone || !rs.Interrupted {
		t.Fatalf("running job = %+v, want done+interrupted", rs)
	}
	raw, _, err := m.Manifest(running.ID)
	if err != nil {
		t.Fatalf("partial manifest not fetchable: %v", err)
	}
	if string(raw) != `{"interrupted":true}` {
		t.Fatalf("partial manifest = %s", raw)
	}

	// Interrupted results must not poison the content store: a fresh
	// manager (still accepting) re-executes the same spec.
	if m.StoreSize() != 0 {
		t.Fatalf("interrupted result cached (store size %d)", m.StoreSize())
	}
}

func TestFailedJobSurfacesError(t *testing.T) {
	m := New(func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		return ExecResult{}, errors.New("boom")
	}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, StateFailed)
	if fin.Error != "boom" {
		t.Fatalf("status error = %q", fin.Error)
	}
	if _, _, err := m.Manifest(st.ID); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("failed job manifest err = %v, want ErrNoManifest", err)
	}
	// Failures are not cached: resubmitting tries again.
	st2, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHit {
		t.Fatal("failed run answered from cache")
	}
}

func TestSubmitValidatesAndVets(t *testing.T) {
	m := New(func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		return ExecResult{}, nil
	}, 2)
	if _, err := m.Submit(spec.RunSpec{Version: 1}); err == nil {
		t.Fatal("empty spec admitted")
	}
	m.Vet = func(sp spec.RunSpec) error { return fmt.Errorf("unknown experiment %q", sp.Experiments[0]) }
	if _, err := m.Submit(testSpec(1)); err == nil || err.Error() != `unknown experiment "fig8f"` {
		t.Fatalf("vet not applied: %v", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	var ids []string
	for i := uint64(1); i <= 4; i++ {
		st, err := m.Submit(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	close(g.release)
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	var order []string
	for i := 0; i < 4; i++ {
		order = append(order, <-g.started)
	}
	want := []string{"seed-1", "seed-2", "seed-3", "seed-4"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}
