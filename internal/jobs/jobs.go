// Package jobs is the experiment job service: a bounded FIFO queue
// with admission control, per-job status, and a content-addressed run
// store keyed by RunSpec hash. It turns melody from "one CLI
// invocation" into "a service that accepts queued experiment specs" —
// the HTTP front end lives in internal/obs/serve; this package holds
// the queueing and storage semantics so they are testable without a
// socket.
//
// Admission contract:
//
//   - A spec whose hash matches a stored (completed, uninterrupted)
//     run is answered from the store: the returned job is born Done
//     with CacheHit set, and fetching its manifest re-serves the
//     stored bytes. Nothing re-executes.
//   - A spec identical to one already queued or running coalesces onto
//     that job (the singleflight idea, one level up from the cell
//     cache).
//   - Otherwise the spec joins the FIFO queue — unless the queue is at
//     capacity (ErrQueueFull → HTTP 429) or the manager is draining
//     (ErrDraining → HTTP 503).
//
// The package depends only on spec, the obs instrument types and the
// standard library: the executor is injected, so tests drive the queue
// with fakes and the cmd layer plugs in melody.Execute.
//
// Observability: the manager is silent and uninstrumented by default.
// Set Log for structured state-transition lines (each carrying job_id
// and spec_hash, the correlation ids shared with the HTTP layer's
// access logs, the per-job SSE stream and /runs/{id}), and SetMetrics
// to record queue-wait and execution-duration histograms plus
// terminal-state counters into a registry — the observatory points it
// at its self-registry, never at an engine registry, so job telemetry
// can never leak into a run manifest.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// Admission errors. The HTTP layer maps these onto status codes.
var (
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrDraining    = errors.New("jobs: draining, not accepting new runs")
	ErrUnknownJob  = errors.New("jobs: unknown job")
	ErrNotFinished = errors.New("jobs: job not finished")
	// ErrNoManifest marks a job that terminated without a manifest
	// (failed or canceled before starting).
	ErrNoManifest = errors.New("jobs: job produced no manifest")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event types emitted on the manager's notify stream. Experiment-level
// types mirror the observatory's run events; job-level types bracket
// the queue lifecycle.
const (
	EventQueued          = "job_queued"
	EventStarted         = "job_started"
	EventExperimentStart = "experiment_start"
	EventCell            = "cell"
	EventExperimentEnd   = "experiment_end"
	EventFinished        = "job_finished"
)

// Event is one job-lifecycle notification. JobID and SpecHash are the
// correlation ids: the manager stamps both on every job-level event so
// consumers (the per-job SSE stream) carry the same join keys as the
// structured logs and /runs/{id}.
type Event struct {
	JobID    string
	SpecHash string
	// TraceID is the submitting request's trace id (empty for untraced
	// submissions): stamped on job-level events so downstream consumers
	// — the regression log line, SSE payloads — carry the same join key
	// as /traces and the access logs.
	TraceID     string
	Type        string
	State       State
	Experiment  string
	Title       string
	Done        int
	Total       int
	WallS       float64
	CacheHit    bool
	Interrupted bool
	Error       string
}

// ExecResult is what one executed spec yields: the encoded manifest
// and its content address. Interrupted marks a partial manifest
// (flushed after cancellation) — fetchable, but never stored as the
// spec's cached answer.
type ExecResult struct {
	ManifestJSON []byte
	Address      string
	Interrupted  bool
}

// Executor runs one spec. notify receives experiment-level progress
// events (the executor does not set JobID; the manager stamps it).
// A canceled ctx asks for a graceful stop: return the partial result
// with Interrupted set rather than an error.
type Executor func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error)

// Status is a job's externally visible snapshot (the GET /runs/{id}
// payload).
type Status struct {
	ID       string       `json:"id"`
	State    State        `json:"state"`
	SpecHash string       `json:"spec_hash"`
	Spec     spec.RunSpec `json:"spec"`
	// QueuePos is the 1-based position among queued jobs (0 once
	// running or terminal).
	QueuePos int `json:"queue_position,omitempty"`
	// QueueWaitS is the time the job spent queued before execution
	// began (0 while still queued, and for store-answered jobs that
	// never executed). ExecS is the execution duration — still ticking
	// for a running job, final once terminal. Both mirror the
	// jobs/queue_wait_seconds and jobs/exec_seconds histograms on
	// /metrics, so one job's latency is joinable against the fleet's.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	ExecS      float64 `json:"exec_s,omitempty"`
	// Experiment/Done/Total track the in-flight experiment's cells.
	Experiment  string `json:"experiment,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	Interrupted bool   `json:"interrupted,omitempty"`
	// Restored marks a job reconstructed from the durable run ledger at
	// startup: it represents a run completed by an earlier process.
	Restored bool   `json:"restored,omitempty"`
	Error    string `json:"error,omitempty"`
	// Address is the manifest's content address once the job is done.
	Address string `json:"manifest_address,omitempty"`
}

type job struct {
	id          string
	sp          spec.RunSpec
	hash        string
	state       State
	experiment  string
	done, total int
	cacheHit    bool
	interrupted bool
	restored    bool
	err         error
	// res holds the result inline for jobs executed by this process.
	// Cache-hit and restored jobs carry only the Address — their bytes
	// stay in the store and Manifest loads them on demand, so a durable
	// store's history does not get re-buffered in memory.
	res ExecResult

	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	// parent is the submitting request's span context, captured at
	// SubmitCtx time — the hand-off that keeps a trace connected across
	// the queue boundary after the HTTP span has long since answered 202.
	parent tracespan.SpanContext
}

// traceID returns the submitting request's trace id, or "" for an
// untraced submission (the zero TraceID must not leak as a string of
// zeros into events and logs).
func (j *job) traceID() string {
	if !j.parent.Valid() {
		return ""
	}
	return j.parent.Trace.String()
}

// Manager owns the queue, the job table, and the run store. One
// worker goroutine (Run) executes jobs FIFO; Submit and the read
// methods are safe from any goroutine.
type Manager struct {
	exec     Executor
	queueCap int

	// Vet, when set, is the admission check beyond structural spec
	// validity (the cmd layer installs melody.VetSpec so unknown
	// experiment ids are rejected at POST time). Set before Run.
	Vet func(spec.RunSpec) error

	// Log, when set, receives structured state-transition lines
	// (queued, started, finished, canceled — each with job_id,
	// spec_hash, queue depth and durations). Set before Run; nil is
	// silent.
	Log *slog.Logger

	// now is the clock behind queue-wait/execution timing; tests pin
	// it for deterministic durations.
	now func() time.Time

	met *metrics

	// tracer, when set, turns each traced submission into a queue span
	// (reconstructed post-hoc from the submit/start stamps) and a live
	// exec span parenting everything melody.Execute records. Set before
	// Run; nil (and untraced submissions) record nothing.
	tracer *tracespan.Tracer

	notifyMu sync.Mutex
	notify   func(Event)

	mu       sync.Mutex
	byID     map[string]*job
	order    []string
	queue    []*job
	live     map[string]*job // spec hash → queued/running job (coalescing)
	store    RunStore        // spec hash → completed result (memory or ledger)
	nextID   int
	draining bool
	// execCount/execSum accumulate finished execution durations for the
	// Retry-After estimate (independent of SetMetrics, which is optional).
	execCount int
	execSum   float64

	wake chan struct{}
}

// DefaultQueueCap bounds the pending-run queue when the caller passes
// 0: deep enough to absorb a burst of sweep submissions, shallow
// enough that a stuck worker surfaces as 429s instead of unbounded
// memory.
const DefaultQueueCap = 16

// New returns a manager executing specs with exec; queueCap bounds the
// pending queue (0 = DefaultQueueCap).
func New(exec Executor, queueCap int) *Manager {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Manager{
		exec:     exec,
		queueCap: queueCap,
		now:      time.Now,
		byID:     map[string]*job{},
		live:     map[string]*job{},
		store:    newMemStore(),
		wake:     make(chan struct{}, 1),
	}
}

// SetStore replaces the in-memory run store (the default) with st —
// typically an internal/obs/ledger.Ledger, which makes completed runs
// durable across restarts. Call before Run and before any Submit.
func (m *Manager) SetStore(st RunStore) {
	if st == nil {
		return
	}
	m.mu.Lock()
	m.store = st
	m.mu.Unlock()
}

// RestoreJob rebuilds one completed run from a durable store's history
// as a done job in the table, so GET /runs lists work finished by
// earlier processes. specJSON is the canonical spec recorded at store
// time; the manifest bytes stay in the store and are loaded on demand.
// Call at startup, before Run.
func (m *Manager) RestoreJob(specHash, address string, specJSON []byte, at time.Time) error {
	sp, err := spec.Decode(specJSON)
	if err != nil {
		return fmt.Errorf("jobs: restore %s: %w", specHash, err)
	}
	m.mu.Lock()
	j := m.newJobLocked(sp.Normalized(), specHash)
	j.state = StateDone
	j.restored = true
	j.res = ExecResult{Address: address}
	j.submittedAt, j.startedAt, j.finishedAt = at, at, at
	m.mu.Unlock()
	m.logger().Debug("job restored from ledger",
		svclog.KeyJobID, j.id, svclog.KeySpecHash, specHash)
	return nil
}

// metrics is the manager's optional instrument set.
type metrics struct {
	queueWait *obs.Histogram
	execDur   *obs.Histogram
	done      *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
}

// SetMetrics points the manager's job-lifecycle instruments at reg:
// jobs/queue_wait_seconds and jobs/exec_seconds histograms, plus one
// jobs/finished counter per terminal state (rendered as
// <ns>_jobs_finished_total{state="done"|"failed"|"canceled"} by the
// prom encoder). Call before Run.
func (m *Manager) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.met = &metrics{
		queueWait: reg.Histogram("jobs/queue_wait_seconds"),
		execDur:   reg.Histogram("jobs/exec_seconds"),
		done:      reg.Counter("jobs/finished|state=done"),
		failed:    reg.Counter("jobs/finished|state=failed"),
		canceled:  reg.Counter("jobs/finished|state=canceled"),
	}
}

// SetTracer installs the span tracer queue/exec spans record into.
// Call before Run.
func (m *Manager) SetTracer(tr *tracespan.Tracer) { m.tracer = tr }

// logger returns the installed logger or a silent one.
func (m *Manager) logger() *slog.Logger {
	if m.Log != nil {
		return m.Log
	}
	return svclog.Discard()
}

// SetNotify installs the event observer (the HTTP layer routes events
// into per-job SSE hubs). Events are delivered synchronously from the
// submitting or executing goroutine; the observer must not block.
func (m *Manager) SetNotify(fn func(Event)) {
	m.notifyMu.Lock()
	m.notify = fn
	m.notifyMu.Unlock()
}

func (m *Manager) emit(ev Event) {
	m.notifyMu.Lock()
	fn := m.notify
	m.notifyMu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Submit admits one spec. See the package comment for the admission
// contract. The returned Status is the job's state at admission time:
// StateDone with CacheHit for store answers, StateQueued otherwise
// (or the coalesced-onto job's current state).
func (m *Manager) Submit(sp spec.RunSpec) (Status, error) {
	return m.SubmitCtx(context.Background(), sp)
}

// SubmitCtx is Submit with the submitting request's context: when ctx
// carries an active tracespan span (the HTTP middleware's root), its
// SpanContext is captured on the job so the queue/exec spans the worker
// later records stay children of the originating request — the context
// itself is NOT retained (the request will be long gone when the job
// runs). Cache-hit and coalesced answers capture nothing: no queue or
// exec work happens on their behalf.
func (m *Manager) SubmitCtx(ctx context.Context, sp spec.RunSpec) (Status, error) {
	parent := tracespan.ContextFrom(ctx)
	n := sp.Normalized()
	if err := n.Validate(); err != nil {
		return Status{}, err
	}
	if m.Vet != nil {
		if err := m.Vet(n); err != nil {
			return Status{}, err
		}
	}
	hash, err := n.Hash()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	// Identical spec already in flight: coalesce.
	if j := m.live[hash]; j != nil {
		st := m.statusLocked(j)
		m.mu.Unlock()
		m.logger().Debug("job coalesced onto live duplicate",
			svclog.KeyJobID, j.id, svclog.KeySpecHash, hash)
		return st, nil
	}
	// Identical spec already solved: answer from the store. Stat, not
	// Get — the job carries only the content address; Manifest streams
	// the bytes from the store when a client actually fetches them.
	if addr, ok := m.store.Stat(hash); ok {
		j := m.newJobLocked(n, hash)
		j.state = StateDone
		j.cacheHit = true
		j.parent = parent
		j.res = ExecResult{Address: addr}
		st := m.statusLocked(j)
		m.mu.Unlock()
		m.logger().Info("job served from store",
			svclog.KeyJobID, j.id, svclog.KeySpecHash, hash)
		m.emit(Event{JobID: j.id, SpecHash: hash, TraceID: j.traceID(),
			Type: EventFinished, State: StateDone, CacheHit: true})
		return st, nil
	}
	if m.draining {
		m.mu.Unlock()
		m.logger().Warn("job rejected", "reason", "draining", svclog.KeySpecHash, hash)
		return Status{}, ErrDraining
	}
	if len(m.queue) >= m.queueCap {
		m.mu.Unlock()
		m.logger().Warn("job rejected", "reason", "queue_full",
			svclog.KeySpecHash, hash, "queue_depth", m.QueueDepth(), "queue_cap", m.queueCap)
		return Status{}, ErrQueueFull
	}
	j := m.newJobLocked(n, hash)
	j.state = StateQueued
	j.parent = parent
	j.submittedAt = m.now()
	m.queue = append(m.queue, j)
	m.live[hash] = j
	depth := len(m.queue)
	st := m.statusLocked(j)
	m.mu.Unlock()

	m.logger().Info("job queued",
		svclog.KeyJobID, j.id, svclog.KeySpecHash, hash,
		"queue_depth", depth, "queue_cap", m.queueCap)
	m.emit(Event{JobID: j.id, SpecHash: hash, TraceID: j.traceID(), Type: EventQueued, State: StateQueued})
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return st, nil
}

func (m *Manager) newJobLocked(sp spec.RunSpec, hash string) *job {
	m.nextID++
	j := &job{id: fmt.Sprintf("run-%06d", m.nextID), sp: sp, hash: hash}
	m.byID[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// Run is the worker loop: it executes queued jobs FIFO until ctx is
// done, then drains — queued jobs are canceled, the in-flight job (its
// executor sees the canceled ctx) finishes gracefully and flushes its
// partial manifest — and returns.
func (m *Manager) Run(ctx context.Context) {
	// Flip to draining the moment shutdown is requested, even while a
	// job is mid-execution, so /readyz reports it immediately.
	stop := context.AfterFunc(ctx, m.StartDrain)
	defer stop()

	for {
		m.mu.Lock()
		var j *job
		var depth int
		if ctx.Err() == nil && len(m.queue) > 0 {
			j = m.queue[0]
			m.queue = m.queue[1:]
			j.state = StateRunning
			j.startedAt = m.now()
			depth = len(m.queue)
		}
		m.mu.Unlock()

		if j == nil {
			select {
			case <-ctx.Done():
				m.StartDrain()
				return
			case <-m.wake:
				continue
			}
		}

		queueWait := j.startedAt.Sub(j.submittedAt).Seconds()
		if m.met != nil {
			m.met.queueWait.Record(queueWait)
		}
		m.logger().Info("job started",
			svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash,
			"queue_wait_s", queueWait, "queue_depth", depth)
		m.emit(Event{JobID: j.id, SpecHash: j.hash, TraceID: j.traceID(), Type: EventStarted, State: StateRunning})
		// The executor's ctx carries the job id so the execution layer
		// (melody.Execute hooks, its logger) can stamp the same
		// correlation id without widening the Executor signature.
		execCtx := WithJobID(ctx, j.id)
		// Traced submission: the wait the job just served becomes a
		// post-hoc queue span under the submitting request, and the
		// execution ahead becomes a live exec span (carried in execCtx,
		// so melody.Execute's run/experiment/cell spans parent onto it).
		// Record on a nil tracer or an untraced job yields the zero
		// SpanContext and StartChild then no-ops.
		var execSpan *tracespan.Span
		if qsc := m.tracer.Record(j.parent, "queue", j.submittedAt, j.startedAt,
			tracespan.String(svclog.KeyJobID, j.id),
			tracespan.String(svclog.KeySpecHash, j.hash),
		); qsc.Valid() {
			execCtx, execSpan = m.tracer.StartChild(execCtx, qsc, "exec",
				tracespan.String(svclog.KeyJobID, j.id),
				tracespan.String(svclog.KeySpecHash, j.hash),
			)
		}
		// Execute under pprof labels so host CPU profiles captured by the
		// continuous profiler (internal/obs/hostprof) attribute samples to
		// this job: every goroutine melody.Execute spawns inherits the
		// labels, making a capture sliceable per job with
		// `go tool pprof -tagfocus job_id=<id>`.
		var res ExecResult
		var err error
		pprof.Do(execCtx, pprof.Labels(svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash),
			func(execCtx context.Context) {
				res, err = m.exec(execCtx, j.sp, func(ev Event) {
					ev.JobID = j.id
					ev.SpecHash = j.hash
					m.progress(j, ev)
					m.emit(ev)
				})
			})

		m.mu.Lock()
		delete(m.live, j.hash)
		j.finishedAt = m.now()
		execS := j.finishedAt.Sub(j.startedAt).Seconds()
		m.execCount++
		m.execSum += execS
		var fin Event
		var storeErr error
		switch {
		case err != nil:
			j.state = StateFailed
			j.err = err
			fin = Event{JobID: j.id, SpecHash: j.hash, TraceID: j.traceID(),
				Type: EventFinished, State: StateFailed, Error: err.Error()}
		default:
			j.state = StateDone
			j.res = res
			j.interrupted = res.Interrupted
			if !res.Interrupted {
				// File the completed run under its spec hash. The canonical
				// spec rides along so a durable store can rebuild /runs
				// history at the next startup. A store failure is logged,
				// not fatal: the job itself succeeded and its manifest is
				// still served inline from j.res.
				if specJSON, encErr := spec.Encode(j.sp); encErr != nil {
					storeErr = encErr
				} else {
					storeErr = m.store.Put(j.hash, res.Address, res.ManifestJSON, specJSON, j.id)
				}
			}
			fin = Event{JobID: j.id, SpecHash: j.hash, TraceID: j.traceID(),
				Type: EventFinished, State: StateDone, Interrupted: res.Interrupted}
		}
		m.mu.Unlock()
		if storeErr != nil {
			m.logger().Error("run store put failed",
				svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash, "err", storeErr.Error())
		}
		if err != nil {
			execSpan.SetError(err.Error())
		}
		execSpan.SetAttr("state", string(fin.State))
		if res.Interrupted {
			execSpan.SetAttr("interrupted", "true")
		}
		execSpan.End()
		if m.met != nil {
			m.met.execDur.Record(execS)
		}
		switch {
		case err != nil:
			m.met.counter(StateFailed).Inc()
			m.logger().Error("job failed",
				svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash,
				"exec_s", execS, "err", err.Error())
		default:
			m.met.counter(StateDone).Inc()
			m.logger().Info("job finished",
				svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash,
				"exec_s", execS, "interrupted", res.Interrupted)
		}
		m.emit(fin)
	}
}

// counter maps a terminal state onto its jobs/finished counter. Both
// the nil *metrics receiver and the nil counters it would return are
// no-op-safe, so call sites need no guards.
func (mt *metrics) counter(s State) *obs.Counter {
	if mt == nil {
		return nil
	}
	switch s {
	case StateFailed:
		return mt.failed
	case StateCanceled:
		return mt.canceled
	default:
		return mt.done
	}
}

// progress folds an executor event into the job's status fields.
func (m *Manager) progress(j *job, ev Event) {
	m.mu.Lock()
	switch ev.Type {
	case EventExperimentStart:
		j.experiment = ev.Experiment
		j.done, j.total = 0, 0
	case EventCell:
		j.experiment = ev.Experiment
		j.done, j.total = ev.Done, ev.Total
	}
	m.mu.Unlock()
}

// StartDrain stops admission and cancels every queued job. Idempotent;
// safe from any goroutine. The in-flight job (if any) is untouched —
// its cancellation arrives through the Run context.
func (m *Manager) StartDrain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	canceled := m.queue
	m.queue = nil
	now := m.now()
	for _, j := range canceled {
		j.state = StateCanceled
		j.finishedAt = now
		delete(m.live, j.hash)
	}
	m.mu.Unlock()
	m.logger().Info("draining", "canceled_jobs", len(canceled))
	for _, j := range canceled {
		m.met.counter(StateCanceled).Inc()
		m.logger().Info("job canceled",
			svclog.KeyJobID, j.id, svclog.KeySpecHash, j.hash,
			"queue_wait_s", now.Sub(j.submittedAt).Seconds())
		m.emit(Event{JobID: j.id, SpecHash: j.hash, Type: EventFinished, State: StateCanceled})
	}
}

// Accepting reports whether Submit would consider new work (it may
// still refuse with ErrQueueFull).
func (m *Manager) Accepting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.draining
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// QueueCap returns the admission bound.
func (m *Manager) QueueCap() int { return m.queueCap }

// RunningJobs returns the ids of jobs currently executing (with one
// worker, zero or one). The continuous profiler stamps captures with
// this set so profiles overlapping a job are findable by job id — and
// protected from routine eviction.
func (m *Manager) RunningJobs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, j := range m.live {
		if j.state == StateRunning {
			out = append(out, j.id)
		}
	}
	return out
}

// StoreSize returns the number of cached spec→manifest entries.
func (m *Manager) StoreSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.Len()
}

// Status returns one job's snapshot.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Status{}, false
	}
	return m.statusLocked(j), true
}

// List returns every job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.byID[id]))
	}
	return out
}

// Manifest returns a finished job's manifest bytes and content
// address. Queued/running jobs return ErrNotFinished; failed or
// canceled jobs return ErrNoManifest. Interrupted (partial) manifests
// are served — their Interrupted flag is in the JSON. Cache-hit and
// restored jobs hold only the address; their bytes are loaded from the
// store on demand (a store that has since evicted the entry yields
// ErrNoManifest).
func (m *Manager) Manifest(id string) ([]byte, string, error) {
	m.mu.Lock()
	j, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return nil, "", ErrUnknownJob
	}
	switch j.state {
	case StateDone:
		res, hash := j.res, j.hash
		st := m.store
		m.mu.Unlock()
		if res.ManifestJSON != nil {
			return res.ManifestJSON, res.Address, nil
		}
		if b, addr, ok := st.Get(hash); ok {
			return b, addr, nil
		}
		return nil, "", fmt.Errorf("%w: evicted from run store", ErrNoManifest)
	case StateFailed:
		defer m.mu.Unlock()
		return nil, "", fmt.Errorf("%w: %v", ErrNoManifest, j.err)
	case StateCanceled:
		defer m.mu.Unlock()
		return nil, "", fmt.Errorf("%w: canceled before execution", ErrNoManifest)
	default:
		m.mu.Unlock()
		return nil, "", ErrNotFinished
	}
}

// ManifestBySpec returns the stored manifest for a spec hash, straight
// from the run store (it needs no job in the table — restored history
// and direct spec-hash lookups both land here).
func (m *Manager) ManifestBySpec(specHash string) ([]byte, string, bool) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	return st.Get(specHash)
}

func (m *Manager) statusLocked(j *job) Status {
	st := Status{
		ID:          j.id,
		State:       j.state,
		SpecHash:    j.hash,
		Spec:        j.sp,
		Experiment:  j.experiment,
		Done:        j.done,
		Total:       j.total,
		CacheHit:    j.cacheHit,
		Interrupted: j.interrupted,
		Restored:    j.restored,
		Address:     j.res.Address,
	}
	if !j.startedAt.IsZero() {
		st.QueueWaitS = j.startedAt.Sub(j.submittedAt).Seconds()
		if !j.finishedAt.IsZero() {
			st.ExecS = j.finishedAt.Sub(j.startedAt).Seconds()
		} else if j.state == StateRunning {
			// Still executing: echo the duration so far.
			st.ExecS = m.now().Sub(j.startedAt).Seconds()
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateQueued {
		for i, q := range m.queue {
			if q == j {
				st.QueuePos = i + 1
				break
			}
		}
	}
	return st
}
