// Package jobs is the experiment job service: a bounded FIFO queue
// with admission control, per-job status, and a content-addressed run
// store keyed by RunSpec hash. It turns melody from "one CLI
// invocation" into "a service that accepts queued experiment specs" —
// the HTTP front end lives in internal/obs/serve; this package holds
// the queueing and storage semantics so they are testable without a
// socket.
//
// Admission contract:
//
//   - A spec whose hash matches a stored (completed, uninterrupted)
//     run is answered from the store: the returned job is born Done
//     with CacheHit set, and fetching its manifest re-serves the
//     stored bytes. Nothing re-executes.
//   - A spec identical to one already queued or running coalesces onto
//     that job (the singleflight idea, one level up from the cell
//     cache).
//   - Otherwise the spec joins the FIFO queue — unless the queue is at
//     capacity (ErrQueueFull → HTTP 429) or the manager is draining
//     (ErrDraining → HTTP 503).
//
// The package depends only on spec and the standard library: the
// executor is injected, so tests drive the queue with fakes and the
// cmd layer plugs in melody.Execute.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/moatlab/melody/internal/melody/spec"
)

// Admission errors. The HTTP layer maps these onto status codes.
var (
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrDraining    = errors.New("jobs: draining, not accepting new runs")
	ErrUnknownJob  = errors.New("jobs: unknown job")
	ErrNotFinished = errors.New("jobs: job not finished")
	// ErrNoManifest marks a job that terminated without a manifest
	// (failed or canceled before starting).
	ErrNoManifest = errors.New("jobs: job produced no manifest")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event types emitted on the manager's notify stream. Experiment-level
// types mirror the observatory's run events; job-level types bracket
// the queue lifecycle.
const (
	EventQueued          = "job_queued"
	EventStarted         = "job_started"
	EventExperimentStart = "experiment_start"
	EventCell            = "cell"
	EventExperimentEnd   = "experiment_end"
	EventFinished        = "job_finished"
)

// Event is one job-lifecycle notification.
type Event struct {
	JobID       string
	Type        string
	State       State
	Experiment  string
	Title       string
	Done        int
	Total       int
	WallS       float64
	CacheHit    bool
	Interrupted bool
	Error       string
}

// ExecResult is what one executed spec yields: the encoded manifest
// and its content address. Interrupted marks a partial manifest
// (flushed after cancellation) — fetchable, but never stored as the
// spec's cached answer.
type ExecResult struct {
	ManifestJSON []byte
	Address      string
	Interrupted  bool
}

// Executor runs one spec. notify receives experiment-level progress
// events (the executor does not set JobID; the manager stamps it).
// A canceled ctx asks for a graceful stop: return the partial result
// with Interrupted set rather than an error.
type Executor func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error)

// Status is a job's externally visible snapshot (the GET /runs/{id}
// payload).
type Status struct {
	ID       string       `json:"id"`
	State    State        `json:"state"`
	SpecHash string       `json:"spec_hash"`
	Spec     spec.RunSpec `json:"spec"`
	// QueuePos is the 1-based position among queued jobs (0 once
	// running or terminal).
	QueuePos int `json:"queue_position,omitempty"`
	// Experiment/Done/Total track the in-flight experiment's cells.
	Experiment  string `json:"experiment,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	Interrupted bool   `json:"interrupted,omitempty"`
	Error       string `json:"error,omitempty"`
	// Address is the manifest's content address once the job is done.
	Address string `json:"manifest_address,omitempty"`
}

type job struct {
	id          string
	sp          spec.RunSpec
	hash        string
	state       State
	experiment  string
	done, total int
	cacheHit    bool
	interrupted bool
	err         error
	res         ExecResult
}

// Manager owns the queue, the job table, and the run store. One
// worker goroutine (Run) executes jobs FIFO; Submit and the read
// methods are safe from any goroutine.
type Manager struct {
	exec     Executor
	queueCap int

	// Vet, when set, is the admission check beyond structural spec
	// validity (the cmd layer installs melody.VetSpec so unknown
	// experiment ids are rejected at POST time). Set before Run.
	Vet func(spec.RunSpec) error

	notifyMu sync.Mutex
	notify   func(Event)

	mu       sync.Mutex
	byID     map[string]*job
	order    []string
	queue    []*job
	live     map[string]*job       // spec hash → queued/running job (coalescing)
	store    map[string]ExecResult // spec hash → completed result
	nextID   int
	draining bool

	wake chan struct{}
}

// DefaultQueueCap bounds the pending-run queue when the caller passes
// 0: deep enough to absorb a burst of sweep submissions, shallow
// enough that a stuck worker surfaces as 429s instead of unbounded
// memory.
const DefaultQueueCap = 16

// New returns a manager executing specs with exec; queueCap bounds the
// pending queue (0 = DefaultQueueCap).
func New(exec Executor, queueCap int) *Manager {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Manager{
		exec:     exec,
		queueCap: queueCap,
		byID:     map[string]*job{},
		live:     map[string]*job{},
		store:    map[string]ExecResult{},
		wake:     make(chan struct{}, 1),
	}
}

// SetNotify installs the event observer (the HTTP layer routes events
// into per-job SSE hubs). Events are delivered synchronously from the
// submitting or executing goroutine; the observer must not block.
func (m *Manager) SetNotify(fn func(Event)) {
	m.notifyMu.Lock()
	m.notify = fn
	m.notifyMu.Unlock()
}

func (m *Manager) emit(ev Event) {
	m.notifyMu.Lock()
	fn := m.notify
	m.notifyMu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Submit admits one spec. See the package comment for the admission
// contract. The returned Status is the job's state at admission time:
// StateDone with CacheHit for store answers, StateQueued otherwise
// (or the coalesced-onto job's current state).
func (m *Manager) Submit(sp spec.RunSpec) (Status, error) {
	n := sp.Normalized()
	if err := n.Validate(); err != nil {
		return Status{}, err
	}
	if m.Vet != nil {
		if err := m.Vet(n); err != nil {
			return Status{}, err
		}
	}
	hash, err := n.Hash()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	// Identical spec already in flight: coalesce.
	if j := m.live[hash]; j != nil {
		st := m.statusLocked(j)
		m.mu.Unlock()
		return st, nil
	}
	// Identical spec already solved: answer from the store.
	if res, ok := m.store[hash]; ok {
		j := m.newJobLocked(n, hash)
		j.state = StateDone
		j.cacheHit = true
		j.res = res
		st := m.statusLocked(j)
		m.mu.Unlock()
		m.emit(Event{JobID: j.id, Type: EventFinished, State: StateDone, CacheHit: true})
		return st, nil
	}
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	if len(m.queue) >= m.queueCap {
		m.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	j := m.newJobLocked(n, hash)
	j.state = StateQueued
	m.queue = append(m.queue, j)
	m.live[hash] = j
	st := m.statusLocked(j)
	m.mu.Unlock()

	m.emit(Event{JobID: j.id, Type: EventQueued, State: StateQueued})
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return st, nil
}

func (m *Manager) newJobLocked(sp spec.RunSpec, hash string) *job {
	m.nextID++
	j := &job{id: fmt.Sprintf("run-%06d", m.nextID), sp: sp, hash: hash}
	m.byID[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// Run is the worker loop: it executes queued jobs FIFO until ctx is
// done, then drains — queued jobs are canceled, the in-flight job (its
// executor sees the canceled ctx) finishes gracefully and flushes its
// partial manifest — and returns.
func (m *Manager) Run(ctx context.Context) {
	// Flip to draining the moment shutdown is requested, even while a
	// job is mid-execution, so /readyz reports it immediately.
	stop := context.AfterFunc(ctx, m.StartDrain)
	defer stop()

	for {
		m.mu.Lock()
		var j *job
		if ctx.Err() == nil && len(m.queue) > 0 {
			j = m.queue[0]
			m.queue = m.queue[1:]
			j.state = StateRunning
		}
		m.mu.Unlock()

		if j == nil {
			select {
			case <-ctx.Done():
				m.StartDrain()
				return
			case <-m.wake:
				continue
			}
		}

		m.emit(Event{JobID: j.id, Type: EventStarted, State: StateRunning})
		res, err := m.exec(ctx, j.sp, func(ev Event) {
			ev.JobID = j.id
			m.progress(j, ev)
			m.emit(ev)
		})

		m.mu.Lock()
		delete(m.live, j.hash)
		var fin Event
		switch {
		case err != nil:
			j.state = StateFailed
			j.err = err
			fin = Event{JobID: j.id, Type: EventFinished, State: StateFailed, Error: err.Error()}
		default:
			j.state = StateDone
			j.res = res
			j.interrupted = res.Interrupted
			if !res.Interrupted {
				m.store[j.hash] = res
			}
			fin = Event{JobID: j.id, Type: EventFinished, State: StateDone, Interrupted: res.Interrupted}
		}
		m.mu.Unlock()
		m.emit(fin)
	}
}

// progress folds an executor event into the job's status fields.
func (m *Manager) progress(j *job, ev Event) {
	m.mu.Lock()
	switch ev.Type {
	case EventExperimentStart:
		j.experiment = ev.Experiment
		j.done, j.total = 0, 0
	case EventCell:
		j.experiment = ev.Experiment
		j.done, j.total = ev.Done, ev.Total
	}
	m.mu.Unlock()
}

// StartDrain stops admission and cancels every queued job. Idempotent;
// safe from any goroutine. The in-flight job (if any) is untouched —
// its cancellation arrives through the Run context.
func (m *Manager) StartDrain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	canceled := m.queue
	m.queue = nil
	for _, j := range canceled {
		j.state = StateCanceled
		delete(m.live, j.hash)
	}
	m.mu.Unlock()
	for _, j := range canceled {
		m.emit(Event{JobID: j.id, Type: EventFinished, State: StateCanceled})
	}
}

// Accepting reports whether Submit would consider new work (it may
// still refuse with ErrQueueFull).
func (m *Manager) Accepting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.draining
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// QueueCap returns the admission bound.
func (m *Manager) QueueCap() int { return m.queueCap }

// StoreSize returns the number of cached spec→manifest entries.
func (m *Manager) StoreSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.store)
}

// Status returns one job's snapshot.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Status{}, false
	}
	return m.statusLocked(j), true
}

// List returns every job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.byID[id]))
	}
	return out
}

// Manifest returns a finished job's manifest bytes and content
// address. Queued/running jobs return ErrNotFinished; failed or
// canceled jobs return ErrNoManifest. Interrupted (partial) manifests
// are served — their Interrupted flag is in the JSON.
func (m *Manager) Manifest(id string) ([]byte, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, "", ErrUnknownJob
	}
	switch j.state {
	case StateDone:
		return j.res.ManifestJSON, j.res.Address, nil
	case StateFailed:
		return nil, "", fmt.Errorf("%w: %v", ErrNoManifest, j.err)
	case StateCanceled:
		return nil, "", fmt.Errorf("%w: canceled before execution", ErrNoManifest)
	default:
		return nil, "", ErrNotFinished
	}
}

func (m *Manager) statusLocked(j *job) Status {
	st := Status{
		ID:          j.id,
		State:       j.state,
		SpecHash:    j.hash,
		Spec:        j.sp,
		Experiment:  j.experiment,
		Done:        j.done,
		Total:       j.total,
		CacheHit:    j.cacheHit,
		Interrupted: j.interrupted,
		Address:     j.res.Address,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateQueued {
		for i, q := range m.queue {
			if q == j {
				st.QueuePos = i + 1
				break
			}
		}
	}
	return st
}
