package jobs

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs/ledger"
)

// The ledger must satisfy RunStore without adapters — that contract is
// what lets cmd/melody plug durability straight into the manager.
var _ RunStore = (*ledger.Ledger)(nil)

func TestRetryAfter(t *testing.T) {
	cases := []struct {
		ahead int
		mean  time.Duration
		want  time.Duration
	}{
		// No history: fall back to the 1s default estimate.
		{ahead: 1, mean: 0, want: 1 * time.Second},
		{ahead: 5, mean: 0, want: 5 * time.Second},
		// Observed mean scales with the work ahead, rounded up to whole
		// seconds (Retry-After's grammar is integer seconds).
		{ahead: 3, mean: 2 * time.Second, want: 6 * time.Second},
		{ahead: 2, mean: 1500 * time.Millisecond, want: 3 * time.Second},
		{ahead: 1, mean: 250 * time.Millisecond, want: 1 * time.Second},
		{ahead: 4, mean: 1100 * time.Millisecond, want: 5 * time.Second}, // ceil(4.4)
		// Floors and caps: never under 1s, never past 10 minutes.
		{ahead: 0, mean: 5 * time.Second, want: 5 * time.Second},
		{ahead: 10000, mean: time.Minute, want: 10 * time.Minute},
	}
	for _, c := range cases {
		if got := RetryAfter(c.ahead, c.mean); got != c.want {
			t.Errorf("RetryAfter(%d, %v) = %v, want %v", c.ahead, c.mean, got, c.want)
		}
	}
}

func TestRetryAfterHintTracksQueue(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// Empty manager, no history: minimum hint.
	if got := m.RetryAfterHint(); got != 1*time.Second {
		t.Fatalf("idle hint = %v, want 1s", got)
	}

	// One running + two queued, still no finished history: 3 × 1s default.
	if _, err := m.Submit(testSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-g.started
	for i := uint64(2); i <= 3; i++ {
		if _, err := m.Submit(testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.RetryAfterHint(); got != 3*time.Second {
		t.Fatalf("hint with 3 jobs ahead = %v, want 3s", got)
	}
	close(g.release)
}

func TestRetryAfterHintUsesObservedMean(t *testing.T) {
	m := New(nil, 8)
	// Pretend two executions finished at 4s and 6s: mean 5s.
	m.mu.Lock()
	m.execCount = 2
	m.execSum = 10
	m.queue = append(m.queue, &job{}, &job{}) // two queued
	m.mu.Unlock()
	if got := m.RetryAfterHint(); got != 10*time.Second {
		t.Fatalf("hint = %v, want 10s (2 ahead × 5s mean)", got)
	}
}

// TestLedgerRestartByteIdentity is the PR's acceptance pin: a manifest
// served after a simulated restart (new manager, reopened ledger on the
// same dir) is byte-identical to the in-memory original with an equal
// content address, and resubmission of the same spec is answered as a
// cache hit without re-execution.
func TestLedgerRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	led, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}

	g := newGatedExecutor()
	close(g.release)
	m := New(g.exec, 4)
	m.SetStore(led)
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx)

	st, err := m.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	wantRaw, wantAddr, err := m.Manifest(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the ledger, build a fresh manager, restore
	// history, and wire the store back in — exactly what serve startup
	// does.
	led2, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	g2 := newGatedExecutor()
	close(g2.release)
	m2 := New(g2.exec, 4)
	m2.SetStore(led2)
	for _, e := range led2.Entries() {
		if err := m2.RestoreJob(e.SpecHash, e.Address, e.SpecJSON, e.StoredAt); err != nil {
			t.Fatalf("RestoreJob: %v", err)
		}
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go m2.Run(ctx2)

	// The restored job is listed with full spec detail and serves the
	// original bytes.
	list := m2.List()
	if len(list) != 1 || !list[0].Restored || list[0].State != StateDone {
		t.Fatalf("restored list = %+v", list)
	}
	if list[0].SpecHash != done.SpecHash || list[0].Spec.Seed != 7 {
		t.Fatalf("restored spec detail = %+v, want hash %s seed 7", list[0], done.SpecHash)
	}
	gotRaw, gotAddr, err := m2.Manifest(list[0].ID)
	if err != nil {
		t.Fatalf("restored manifest: %v", err)
	}
	if !bytes.Equal(gotRaw, wantRaw) {
		t.Fatalf("restored manifest bytes differ:\n got %s\nwant %s", gotRaw, wantRaw)
	}
	if gotAddr != wantAddr {
		t.Fatalf("restored address = %s, want %s", gotAddr, wantAddr)
	}

	// Resubmitting the identical spec is a cache hit across the restart
	// boundary: no re-execution, byte-identical manifest.
	again, err := m2.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || !again.CacheHit {
		t.Fatalf("post-restart resubmit = %+v, want immediate cache hit", again)
	}
	hitRaw, hitAddr, err := m2.Manifest(again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hitRaw, wantRaw) || hitAddr != wantAddr {
		t.Fatalf("cache-hit manifest differs after restart: %s/%s", hitRaw, hitAddr)
	}
	if got := g2.calls.Load(); got != 0 {
		t.Fatalf("executor ran %d times after restart, want 0 (cache hit)", got)
	}
	if _, _, ok := m2.ManifestBySpec(done.SpecHash); !ok {
		t.Fatal("ManifestBySpec miss for stored hash")
	}
}

// TestManifestEvictedFromStore: a cache-hit job carries only the
// address; if the store has since dropped the entry, fetching the
// manifest degrades to ErrNoManifest instead of serving nothing.
func TestManifestEvictedFromStore(t *testing.T) {
	g := newGatedExecutor()
	close(g.release)
	m := New(g.exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	hit, err := m.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}

	// Simulate eviction by swapping in an empty store.
	m.SetStore(newMemStore())
	if _, _, err := m.Manifest(hit.ID); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("evicted cache-hit manifest err = %v, want ErrNoManifest", err)
	}
	// The executed job still serves inline bytes regardless of the store.
	if _, _, err := m.Manifest(st.ID); err != nil {
		t.Fatalf("executed job manifest after store swap: %v", err)
	}
}
