package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// runTraced submits sp under a root span named "http" and runs the
// worker until the job terminates, returning the trace's span tree.
func runTraced(t *testing.T, exec Executor, sp spec.RunSpec) ([]*tracespan.Node, *tracespan.Store) {
	t.Helper()
	store := tracespan.NewStore(0, 0)
	tr := tracespan.NewTracer(store)
	m := New(exec, 4)
	m.SetTracer(tr)

	rctx, root := tr.StartRoot(context.Background(), "http", tracespan.SpanContext{})
	st, err := m.SubmitCtx(rctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	root.End() // the request answered 202 long before the job runs

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	fin := waitTerminal(t, m, st.ID)
	cancel()
	<-done
	_ = fin

	_, spans, ok := store.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	return tracespan.BuildTree(spans), store
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	for {
		st, ok := m.Status(id)
		if ok && st.State.Terminal() {
			return st
		}
	}
}

// TestTracedJobSpanChain pins the queue hand-off: an http root span
// captured at SubmitCtx time parents a post-hoc queue span, which
// parents a live exec span, which parents whatever the executor
// records — the http → queue → exec → run chain of the acceptance
// criteria, across goroutines and after the root has ended.
func TestTracedJobSpanChain(t *testing.T) {
	exec := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		// Stand-in for melody.Execute's run span.
		_, span := tracespan.Start(ctx, "run")
		span.End()
		return ExecResult{ManifestJSON: []byte(`{}`), Address: "sha256:x"}, nil
	}
	tree, _ := runTraced(t, exec, testSpec(1))

	if len(tree) != 1 || tree[0].Name != "http" {
		t.Fatalf("roots = %+v, want single http root", tree)
	}
	var path []string
	n := tree[0]
	for n != nil {
		path = append(path, n.Name)
		if len(n.Children) == 0 {
			break
		}
		if len(n.Children) != 1 {
			t.Fatalf("span %q has %d children, want 1", n.Name, len(n.Children))
		}
		n = n.Children[0]
	}
	if got := strings.Join(path, ">"); got != "http>queue>exec>run" {
		t.Fatalf("span chain = %q, want http>queue>exec>run", got)
	}

	// queue and exec spans carry the correlation attrs.
	queue := tree[0].Children[0]
	if queue.Attr("job_id") == "" || queue.Attr("spec_hash") == "" {
		t.Fatalf("queue span attrs = %+v", queue.Attrs)
	}
	exec2 := queue.Children[0]
	if got := exec2.Attr("state"); got != string(StateDone) {
		t.Fatalf("exec span state attr = %q, want done", got)
	}
	if exec2.Status != tracespan.StatusOK {
		t.Fatalf("exec span status = %q", exec2.Status)
	}
}

// TestTracedJobFailureMarksExecSpan: a failing executor errors the
// exec span, which pins the whole trace in the store's retention.
func TestTracedJobFailureMarksExecSpan(t *testing.T) {
	exec := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		return ExecResult{}, errors.New("boom")
	}
	tree, store := runTraced(t, exec, testSpec(2))
	if len(tree) != 1 {
		t.Fatalf("got %d roots", len(tree))
	}
	execNode := tree[0].Children[0].Children[0]
	if execNode.Name != "exec" || execNode.Status != tracespan.StatusError || execNode.Error != "boom" {
		t.Fatalf("exec span = %+v, want errored with boom", execNode.SpanData)
	}
	if got := execNode.Attr("state"); got != string(StateFailed) {
		t.Fatalf("exec span state = %q", got)
	}
	list := store.List(tracespan.Filter{Status: tracespan.StatusError})
	if len(list) != 1 {
		t.Fatalf("errored-trace filter returned %d traces, want 1", len(list))
	}
}

// TestUntracedSubmitRecordsNothing: Submit without a traced context —
// and SubmitCtx with a bare one — must leave the store empty even with
// a tracer installed.
func TestUntracedSubmitRecordsNothing(t *testing.T) {
	exec := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		if tracespan.SpanFrom(ctx) != nil {
			t.Error("untraced job executed with a span in ctx")
		}
		return ExecResult{ManifestJSON: []byte(`{}`), Address: "sha256:x"}, nil
	}
	store := tracespan.NewStore(0, 0)
	m := New(exec, 4)
	m.SetTracer(tracespan.NewTracer(store))
	st, err := m.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	waitTerminal(t, m, st.ID)
	cancel()
	<-done
	if n := store.Len(); n != 0 {
		t.Fatalf("untraced submission stored %d traces, want 0", n)
	}
}
