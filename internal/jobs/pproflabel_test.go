package jobs

import (
	"context"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/melody/spec"
)

// TestExecutorRunsUnderPprofLabels pins the worker's labeling: the
// executor (and every goroutine it spawns) runs inside a pprof.Do
// scope carrying job_id and spec_hash, so host CPU captures overlapping
// the job attribute their samples to it.
func TestExecutorRunsUnderPprofLabels(t *testing.T) {
	type labels struct{ jobID, specHash string }
	got := make(chan labels, 1)
	exec := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		jid, _ := pprof.Label(ctx, "job_id")
		sh, _ := pprof.Label(ctx, "spec_hash")
		got <- labels{jid, sh}
		return ExecResult{ManifestJSON: []byte("{}"), Address: "sha256:x"}, nil
	}

	m := New(exec, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(spec.RunSpec{Version: spec.Version, Experiments: []string{"fig8f"}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case l := <-got:
		if l.jobID != st.ID {
			t.Fatalf("executor job_id label = %q, want %q", l.jobID, st.ID)
		}
		if l.specHash != st.SpecHash {
			t.Fatalf("executor spec_hash label = %q, want %q", l.specHash, st.SpecHash)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("executor never ran")
	}
}
