package jobs

import (
	"math"
	"sync"
	"time"
)

// RunStore is the content-addressed run store behind cache-hit
// resubmission: completed manifests keyed by spec hash. The manager
// ships with an in-memory implementation (dies with the process); an
// internal/obs/ledger.Ledger satisfies the same signature set and
// makes the store durable — `/runs` history and cache hits then
// survive restarts. Implementations must be safe for concurrent use.
type RunStore interface {
	// Put files one completed manifest under its spec hash. specJSON is
	// the canonical encoded RunSpec (durable stores keep it so history
	// can be rebuilt); jobID records provenance.
	Put(specHash, address string, manifest, specJSON []byte, jobID string) error
	// Get returns the stored manifest bytes and content address.
	Get(specHash string) (manifest []byte, address string, ok bool)
	// Stat reports presence and address without reading the payload.
	Stat(specHash string) (address string, ok bool)
	// Len returns the number of stored entries.
	Len() int
}

// memStore is the default in-memory RunStore: exactly the semantics
// the manager had before durable storage existed.
type memStore struct {
	mu sync.Mutex
	m  map[string]memEntry
}

type memEntry struct {
	manifest []byte
	address  string
}

func newMemStore() *memStore { return &memStore{m: map[string]memEntry{}} }

func (s *memStore) Put(specHash, address string, manifest, specJSON []byte, jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[specHash] = memEntry{manifest: manifest, address: address}
	return nil
}

func (s *memStore) Get(specHash string) ([]byte, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[specHash]
	return e.manifest, e.address, ok
}

func (s *memStore) Stat(specHash string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[specHash]
	return e.address, ok
}

func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// DefaultExecEstimate seeds the Retry-After computation before any job
// has finished: with no execution history, assume a short job rather
// than telling clients to go away for minutes.
const DefaultExecEstimate = 1 * time.Second

// maxRetryAfter caps the hint: past ten minutes the number stops being
// advice and starts being a lie about a queue this deep.
const maxRetryAfter = 10 * time.Minute

// RetryAfter computes the 429 Retry-After hint from the work ahead of
// a would-be submission: jobs already in the system (queued plus
// running) times the mean observed execution duration, rounded up to
// whole seconds and clamped to [1s, 10m]. Exported as a pure function
// so the computation is unit-testable apart from a live manager.
func RetryAfter(jobsAhead int, meanExec time.Duration) time.Duration {
	if meanExec <= 0 {
		meanExec = DefaultExecEstimate
	}
	if jobsAhead < 1 {
		jobsAhead = 1
	}
	d := time.Duration(jobsAhead) * meanExec
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	// Whole seconds, rounded up: Retry-After's grammar is integer
	// seconds, and "come back too early" just earns another 429.
	secs := math.Ceil(d.Seconds())
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// RetryAfterHint is the manager's live Retry-After estimate: current
// queue depth (plus the in-flight job, if any) against the mean
// jobs/exec_seconds observed so far. The HTTP layer stamps it on 429
// responses instead of a hardcoded constant, so a client backing off
// by the hint re-arrives roughly when the queue has drained.
func (m *Manager) RetryAfterHint() time.Duration {
	m.mu.Lock()
	ahead := len(m.queue)
	for _, j := range m.live {
		if j.state == StateRunning {
			ahead++
		}
	}
	var mean time.Duration
	if m.execCount > 0 {
		mean = time.Duration(m.execSum / float64(m.execCount) * float64(time.Second))
	}
	m.mu.Unlock()
	return RetryAfter(ahead, mean)
}
