package jobs

import "context"

// jobIDKey is the context key carrying the executing job's id.
type jobIDKey struct{}

// WithJobID returns ctx carrying the job id. The manager wraps the
// executor's context with it so the execution layer can stamp the same
// correlation id on its own log lines without the Executor signature
// knowing about jobs.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFrom extracts the job id installed by WithJobID ("" if absent).
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}
