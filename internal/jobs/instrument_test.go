package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/melody/spec"
)

// fakeClock is a deterministic, manually advanced time source for the
// manager's queue-wait/exec-duration instrumentation.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// logBuffer collects JSON log lines safely across goroutines.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// lines decodes every complete JSON log line written so far.
func (b *logBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	text := b.buf.String()
	b.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

// findLine returns the first line with msg, failing if absent.
func findLine(t *testing.T, lines []map[string]any, msg string) map[string]any {
	t.Helper()
	for _, rec := range lines {
		if rec["msg"] == msg {
			return rec
		}
	}
	t.Fatalf("no %q line in %d log lines", msg, len(lines))
	return nil
}

func TestLifecycleMetricsAndDurations(t *testing.T) {
	clock := newFakeClock()
	g := newGatedExecutor()
	m := New(g.exec, 4)
	m.now = clock.Now
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	running := waitState(t, m, st.ID, StateRunning)
	// The worker dequeues almost immediately on a fake clock that only
	// we advance, so queue wait is exactly 0 on this run.
	if running.QueueWaitS != 0 {
		t.Fatalf("queue wait = %v, want 0 with a pinned clock", running.QueueWaitS)
	}
	clock.Advance(3 * time.Second)
	close(g.release)
	done := waitState(t, m, st.ID, StateDone)

	if done.ExecS != 3 {
		t.Fatalf("exec_s = %v, want 3", done.ExecS)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["jobs/finished|state=done"]; got != 1 {
		t.Fatalf("done counter = %d, want 1", got)
	}
	qw, ok := snap.Histograms["jobs/queue_wait_seconds"]
	if !ok || qw.Count != 1 {
		t.Fatalf("queue-wait histogram = %+v", qw)
	}
	ex, ok := snap.Histograms["jobs/exec_seconds"]
	if !ok || ex.Count != 1 {
		t.Fatalf("exec histogram = %+v", ex)
	}
	if ex.Max < 3 || ex.Max > 3.0001 {
		t.Fatalf("exec histogram max = %v, want ~3", ex.Max)
	}
}

func TestFailedAndCanceledCounters(t *testing.T) {
	g := newGatedExecutor()
	failing := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		g.calls.Add(1)
		g.started <- "x"
		return ExecResult{}, errors.New("device model diverged")
	}
	m := New(failing, 4)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateFailed)
	if got := reg.Snapshot().Counters["jobs/finished|state=failed"]; got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}

	// Queue one more (the worker is idle now — submit, then drain before
	// it can be picked: stop the worker first).
	cancel()
	// Draining cancels queued jobs and counts them.
	m.StartDrain()
	if _, err := m.Submit(testSpec(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
}

func TestDrainCountsCanceled(t *testing.T) {
	g := newGatedExecutor()
	m := New(g.exec, 4)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	first, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	second, err := m.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	m.StartDrain()
	canceled := waitState(t, m, second.ID, StateCanceled)
	if canceled.State != StateCanceled {
		t.Fatalf("queued job state = %s", canceled.State)
	}
	if got := reg.Snapshot().Counters["jobs/finished|state=canceled"]; got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
	close(g.release)
	waitState(t, m, first.ID, StateDone)
}

// TestTransitionLogsCarryCorrelationIDs drives one job through
// queued→started→finished and asserts every transition line is valid
// JSON carrying the same job_id and spec_hash.
func TestTransitionLogsCarryCorrelationIDs(t *testing.T) {
	buf := &logBuffer{}
	logger, err := svclog.New(buf, svclog.Options{Format: "json", Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedExecutor()
	m := New(g.exec, 4)
	m.Log = logger
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	close(g.release)
	done := waitState(t, m, st.ID, StateDone)

	// Logging is asynchronous with respect to Status: wait for the
	// terminal line.
	deadline := time.Now().Add(2 * time.Second)
	for {
		lines := buf.lines(t)
		finished := false
		for _, rec := range lines {
			if rec["msg"] == "job finished" {
				finished = true
			}
		}
		if finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job-finished line never logged")
		}
		time.Sleep(time.Millisecond)
	}

	lines := buf.lines(t)
	for _, msg := range []string{"job queued", "job started", "job finished"} {
		rec := findLine(t, lines, msg)
		if rec[svclog.KeyJobID] != st.ID {
			t.Fatalf("%q line job_id = %v, want %s", msg, rec[svclog.KeyJobID], st.ID)
		}
		if rec[svclog.KeySpecHash] != done.SpecHash {
			t.Fatalf("%q line spec_hash = %v, want %s", msg, rec[svclog.KeySpecHash], done.SpecHash)
		}
	}
	queued := findLine(t, lines, "job queued")
	if _, ok := queued["queue_depth"]; !ok {
		t.Fatalf("job-queued line missing queue_depth: %v", queued)
	}
	started := findLine(t, lines, "job started")
	if _, ok := started["queue_wait_s"]; !ok {
		t.Fatalf("job-started line missing queue_wait_s: %v", started)
	}
	fin := findLine(t, lines, "job finished")
	if _, ok := fin["exec_s"]; !ok {
		t.Fatalf("job-finished line missing exec_s: %v", fin)
	}
}

// TestExecutorContextCarriesJobID pins the correlation hand-off: the
// executor's ctx carries the job id so the execution layer can log it.
func TestExecutorContextCarriesJobID(t *testing.T) {
	got := make(chan string, 1)
	exec := func(ctx context.Context, sp spec.RunSpec, notify func(Event)) (ExecResult, error) {
		got <- JobIDFrom(ctx)
		return ExecResult{ManifestJSON: []byte(`{}`), Address: "sha256:x"}, nil
	}
	m := New(exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	st, err := m.Submit(testSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != st.ID {
			t.Fatalf("executor ctx job id = %q, want %q", id, st.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("executor never ran")
	}
	if JobIDFrom(context.Background()) != "" {
		t.Fatal("JobIDFrom on a bare context should be empty")
	}
}

// TestUninstrumentedManagerStaysSilent pins the default: no Log, no
// SetMetrics — the manager must run jobs without touching either.
func TestUninstrumentedManagerStaysSilent(t *testing.T) {
	g := newGatedExecutor()
	close(g.release)
	m := New(g.exec, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)
	st, err := m.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	m.StartDrain() // nil metrics on the canceled path must not panic
}
