package workload

import "fmt"

// The catalog reproduces the paper's 265-workload mix. Each entry's
// Profile encodes the published memory behaviour of the real program
// (footprint, dependence, read/write mix, streams, phases); Siblings
// encode its multi-threaded bandwidth appetite. Graph, Redis-like and
// VoltDB-like workloads are registered separately by the apps packages
// via RegisterApps to avoid an import cycle.

// bandwidth siblings: a rate-run or OpenMP workload saturating devices.
func bwSiblings(threads int, readFrac float64) Siblings {
	return Siblings{Threads: threads, ReadFrac: readFrac, MLP: 12, Sequential: true, WorkingSetMB: 64}
}

// specCPU2017 returns the 43 SPEC CPU 2017 benchmarks.
func specCPU2017() []Spec {
	s := []Spec{
		// --- SPECspeed / SPECrate integer ---
		{Name: "600.perlbench_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.2, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.2, ILP: 2.5}},
		{Name: "602.gcc_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.35, DepFrac: 0.35, SeqFrac: 0.15, ILP: 2,
			PhaseInstr: 200_000, PhaseMemMult: []float64{1.6, 1.4, 0.3}}},
		{Name: "605.mcf_s", Class: ClassLatency, Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.35, StoreFrac: 0.15, DepFrac: 0.6, SeqFrac: 0.05, ILP: 1.5,
			HotFrac: 0.6, HotSetMB: 256, PhaseInstr: 250_000, PhaseMemMult: []float64{1.3, 0.5, 1.4, 0.6}}},
		{Name: "620.omnetpp_s", Class: ClassLatency,
			Siblings: Siblings{Threads: 6, ReadFrac: 0.85, MLP: 3, DelayNs: 160, WorkingSetMB: 64},
			Profile:  Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.25, DepFrac: 0.4, SeqFrac: 0.05, ILP: 1.8, HotFrac: 0.97, HotSetMB: 40}},
		{Name: "623.xalancbmk_s", Class: ClassLatency, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.45, SeqFrac: 0.1, ILP: 2}},
		{Name: "625.x264_s", Class: ClassCompute, Profile: Profile{WorkingSetMB: 48, MemRatio: 0.1, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.2}},
		{Name: "631.deepsjeng_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 700, MemRatio: 0.15, StoreFrac: 0.25, DepFrac: 0.45, SeqFrac: 0.05, ILP: 2.5,
			PhaseInstr: 300_000, PhaseMemMult: []float64{1.4, 0.6, 1.2, 0.8}}},
		{Name: "641.leela_s", Class: ClassCompute, Profile: Profile{WorkingSetMB: 32, MemRatio: 0.12, StoreFrac: 0.2, DepFrac: 0.4, ILP: 2.2}},
		{Name: "648.exchange2_s", Class: ClassCompute, Profile: Profile{WorkingSetMB: 8, MemRatio: 0.05, StoreFrac: 0.3, ILP: 3.5}},
		{Name: "657.xz_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.25, StoreFrac: 0.3, DepFrac: 0.4, SeqFrac: 0.25, ILP: 2}},
		// --- SPECspeed floating point ---
		{Name: "603.bwaves_s", Class: ClassBandwidth, Siblings: bwSiblings(28, 0.85),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.45, StoreFrac: 0.2, SeqFrac: 0.92, StreamCount: 8, ILP: 2.5}},
		{Name: "607.cactuBSSN_s", Class: ClassMixed, Siblings: bwSiblings(10, 0.75),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.3, SeqFrac: 0.7, ILP: 2.5}},
		{Name: "619.lbm_s", Class: ClassBandwidth, Siblings: bwSiblings(28, 0.55),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.45, StoreFrac: 0.45, SeqFrac: 0.9, StreamCount: 8, ILP: 2.2}},
		{Name: "621.wrf_s", Class: ClassMixed, Siblings: bwSiblings(8, 0.7),
			Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 2.5}},
		{Name: "627.cam4_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.22, StoreFrac: 0.3, SeqFrac: 0.5, ILP: 2.5}},
		{Name: "628.pop2_s", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.55, ILP: 2.4}},
		{Name: "638.imagick_s", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.08, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.4}},
		{Name: "644.nab_s", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.1, StoreFrac: 0.25, SeqFrac: 0.4, ILP: 3}},
		{Name: "649.fotonik3d_s", Class: ClassBandwidth, Siblings: bwSiblings(24, 0.8),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.42, StoreFrac: 0.25, SeqFrac: 0.88, StreamCount: 10, ILP: 2.4}},
		{Name: "654.roms_s", Class: ClassBandwidth, Siblings: bwSiblings(24, 0.75),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.4, StoreFrac: 0.3, SeqFrac: 0.85, StreamCount: 8, ILP: 2.4}},
		// --- SPECrate integer ---
		{Name: "500.perlbench_r", Class: ClassMixed, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.2, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.2, ILP: 2.5}},
		{Name: "502.gcc_r", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.28, StoreFrac: 0.35, DepFrac: 0.35, SeqFrac: 0.15, ILP: 2}},
		{Name: "505.mcf_r", Class: ClassLatency, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.15, DepFrac: 0.55, SeqFrac: 0.05, ILP: 1.6, HotFrac: 0.5, HotSetMB: 128}},
		{Name: "520.omnetpp_r", Class: ClassLatency,
			Siblings: Siblings{Threads: 6, ReadFrac: 0.85, MLP: 3, DelayNs: 160, WorkingSetMB: 64},
			Profile:  Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.25, DepFrac: 0.4, SeqFrac: 0.05, ILP: 1.8, HotFrac: 0.97, HotSetMB: 40}},
		{Name: "523.xalancbmk_r", Class: ClassLatency, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.45, SeqFrac: 0.1, ILP: 2}},
		{Name: "525.x264_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 48, MemRatio: 0.1, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.2}},
		{Name: "531.deepsjeng_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.14, StoreFrac: 0.25, DepFrac: 0.45, ILP: 2.5}},
		{Name: "541.leela_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 32, MemRatio: 0.12, StoreFrac: 0.2, DepFrac: 0.4, ILP: 2.2}},
		{Name: "548.exchange2_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 8, MemRatio: 0.05, StoreFrac: 0.3, ILP: 3.5}},
		{Name: "557.xz_r", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.3, DepFrac: 0.4, SeqFrac: 0.25, ILP: 2}},
		// --- SPECrate floating point ---
		{Name: "503.bwaves_r", Class: ClassBandwidth, Siblings: bwSiblings(24, 0.85),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.45, StoreFrac: 0.2, SeqFrac: 0.92, StreamCount: 8, ILP: 2.5}},
		{Name: "507.cactuBSSN_r", Class: ClassMixed, Siblings: bwSiblings(8, 0.75),
			Profile: Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.3, SeqFrac: 0.7, ILP: 2.5}},
		{Name: "508.namd_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.06, StoreFrac: 0.25, SeqFrac: 0.5, ILP: 3.3,
			PhaseInstr: 400_000, PhaseMemMult: []float64{0.4, 0.4, 3.5, 0.4}}},
		{Name: "510.parest_r", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.25, SeqFrac: 0.5, DepFrac: 0.2, ILP: 2.4}},
		{Name: "511.povray_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 16, MemRatio: 0.08, StoreFrac: 0.25, DepFrac: 0.3, ILP: 3}},
		{Name: "519.lbm_r", Class: ClassBandwidth, Siblings: bwSiblings(24, 0.55),
			Profile: Profile{WorkingSetMB: 400, MemRatio: 0.45, StoreFrac: 0.45, SeqFrac: 0.9, StreamCount: 8, ILP: 2.2}},
		{Name: "521.wrf_r", Class: ClassMixed, Siblings: bwSiblings(6, 0.7),
			Profile: Profile{WorkingSetMB: 200, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 2.5}},
		{Name: "526.blender_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.12, StoreFrac: 0.25, SeqFrac: 0.4, ILP: 3}},
		{Name: "527.cam4_r", Class: ClassMixed, Profile: Profile{WorkingSetMB: 200, MemRatio: 0.22, StoreFrac: 0.3, SeqFrac: 0.5, ILP: 2.5}},
		{Name: "538.imagick_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 48, MemRatio: 0.08, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.4}},
		{Name: "544.nab_r", Class: ClassCompute, Profile: Profile{WorkingSetMB: 48, MemRatio: 0.1, StoreFrac: 0.25, SeqFrac: 0.4, ILP: 3}},
		{Name: "549.fotonik3d_r", Class: ClassBandwidth, Siblings: bwSiblings(20, 0.8),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.42, StoreFrac: 0.25, SeqFrac: 0.88, StreamCount: 10, ILP: 2.4}},
		{Name: "554.roms_r", Class: ClassBandwidth, Siblings: bwSiblings(20, 0.75),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.4, StoreFrac: 0.3, SeqFrac: 0.85, StreamCount: 8, ILP: 2.4}},
	}
	for i := range s {
		s[i].Suite = "SPEC CPU 2017"
	}
	return s
}

// pbbs returns the PBBS V2 problem-based benchmarks.
func pbbs() []Spec {
	type row struct {
		name string
		cls  Class
		p    Profile
	}
	rows := []row{
		{"pbbs-bfs", ClassLatency, Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.1, DepFrac: 0.55, SeqFrac: 0.1, ILP: 1.8}},
		{"pbbs-mis", ClassLatency, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.15, DepFrac: 0.5, ILP: 1.8}},
		{"pbbs-matching", ClassLatency, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.45, ILP: 1.8}},
		{"pbbs-spanning-forest", ClassLatency, Profile{WorkingSetMB: 256, MemRatio: 0.32, StoreFrac: 0.2, DepFrac: 0.5, ILP: 1.8}},
		{"pbbs-min-spanning-forest", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.4, SeqFrac: 0.2, ILP: 2}},
		{"pbbs-sort-integer", ClassBandwidth, Profile{WorkingSetMB: 512, MemRatio: 0.4, StoreFrac: 0.45, SeqFrac: 0.8, StreamCount: 8, ILP: 2.2}},
		{"pbbs-sort-comparison", ClassMixed, Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.4, SeqFrac: 0.6, DepFrac: 0.15, ILP: 2.2}},
		{"pbbs-remove-duplicates", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.35, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.3, ILP: 2}},
		{"pbbs-histogram", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.4, StoreFrac: 0.4, SeqFrac: 0.5, HotFrac: 0.4, HotSetMB: 4, ILP: 2.2}},
		{"pbbs-word-counts", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.35, StoreFrac: 0.3, SeqFrac: 0.5, HotFrac: 0.3, HotSetMB: 8, ILP: 2.2}},
		{"pbbs-suffix-array", ClassLatency, Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.25, DepFrac: 0.4, SeqFrac: 0.2, ILP: 2}},
		{"pbbs-longest-common-prefix", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.35, SeqFrac: 0.3, ILP: 2}},
		{"pbbs-classify", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.25, SeqFrac: 0.5, ILP: 2.4}},
		{"pbbs-build-index", ClassMixed, Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.35, SeqFrac: 0.4, DepFrac: 0.2, ILP: 2}},
		{"pbbs-nearest-neighbors", ClassLatency, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.1, DepFrac: 0.5, ILP: 1.8}},
		{"pbbs-ray-cast", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.15, DepFrac: 0.4, SeqFrac: 0.2, ILP: 2.4}},
		{"pbbs-convex-hull", ClassMixed, Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.2, SeqFrac: 0.4, DepFrac: 0.2, ILP: 2.4}},
		{"pbbs-delaunay", ClassLatency, Profile{WorkingSetMB: 512, MemRatio: 0.32, StoreFrac: 0.25, DepFrac: 0.45, ILP: 2}},
		{"pbbs-range-query", ClassLatency, Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.1, DepFrac: 0.55, ILP: 1.8}},
	}
	out := []Spec{}
	for _, r := range rows {
		out = append(out, Spec{Name: r.name, Suite: "PBBS", Class: r.cls, Profile: r.p})
	}
	out = append(out,
		Spec{Name: "pbbs-nbody", Suite: "PBBS", Class: ClassBandwidth, Siblings: bwSiblings(12, 0.8),
			Profile: Profile{WorkingSetMB: 256, MemRatio: 0.35, StoreFrac: 0.25, SeqFrac: 0.8, StreamCount: 6, ILP: 2.6}},
		Spec{Name: "pbbs-integrate", Suite: "PBBS", Class: ClassCompute,
			Profile: Profile{WorkingSetMB: 32, MemRatio: 0.08, StoreFrac: 0.2, SeqFrac: 0.5, ILP: 3.4}},
		Spec{Name: "pbbs-flatten", Suite: "PBBS", Class: ClassBandwidth, Siblings: bwSiblings(16, 0.6),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.45, StoreFrac: 0.5, SeqFrac: 0.9, StreamCount: 8, ILP: 2.2}},
	)
	return out
}

// parsec returns the PARSEC 3.0 suite.
func parsec() []Spec {
	s := []Spec{
		{Name: "parsec-blackscholes", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.1, StoreFrac: 0.25, SeqFrac: 0.6, ILP: 3.2}},
		{Name: "parsec-bodytrack", Class: ClassCompute, Profile: Profile{WorkingSetMB: 32, MemRatio: 0.12, StoreFrac: 0.25, SeqFrac: 0.4, ILP: 3}},
		{Name: "parsec-canneal", Class: ClassLatency, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.35, StoreFrac: 0.15, DepFrac: 0.65, ILP: 1.5}},
		{Name: "parsec-dedup", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.35, SeqFrac: 0.5, HotFrac: 0.3, HotSetMB: 16, ILP: 2.2}},
		{Name: "parsec-facesim", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 2.5}},
		{Name: "parsec-ferret", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.25, StoreFrac: 0.2, DepFrac: 0.3, SeqFrac: 0.3, ILP: 2.4}},
		{Name: "parsec-fluidanimate", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.35, SeqFrac: 0.55, ILP: 2.4}},
		{Name: "parsec-freqmine", Class: ClassLatency, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.2, DepFrac: 0.5, ILP: 2}},
		{Name: "parsec-raytrace", Class: ClassLatency, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.25, StoreFrac: 0.1, DepFrac: 0.45, SeqFrac: 0.1, ILP: 2.2}},
		{Name: "parsec-streamcluster", Class: ClassBandwidth, Siblings: bwSiblings(16, 0.9),
			Profile: Profile{WorkingSetMB: 256, MemRatio: 0.4, StoreFrac: 0.1, SeqFrac: 0.85, StreamCount: 4, ILP: 2.4}},
		{Name: "parsec-swaptions", Class: ClassCompute, Profile: Profile{WorkingSetMB: 16, MemRatio: 0.06, StoreFrac: 0.25, ILP: 3.5}},
		{Name: "parsec-vips", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.2, StoreFrac: 0.35, SeqFrac: 0.65, ILP: 2.8}},
		{Name: "parsec-x264", Class: ClassCompute, Profile: Profile{WorkingSetMB: 48, MemRatio: 0.1, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.2}},
	}
	for i := range s {
		s[i].Suite = "PARSEC"
	}
	return s
}

// cloudsuite returns the CloudSuite services.
func cloudsuite() []Spec {
	s := []Spec{
		{Name: "cloudsuite-data-caching", Class: ClassLatency, Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.3, StoreFrac: 0.1, DepFrac: 0.55, HotFrac: 0.3, HotSetMB: 64, ILP: 1.8}},
		{Name: "cloudsuite-data-serving", Class: ClassLatency, Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.3, StoreFrac: 0.25, DepFrac: 0.5, HotFrac: 0.2, HotSetMB: 64, ILP: 1.8}},
		{Name: "cloudsuite-data-analytics", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.3, SeqFrac: 0.5, DepFrac: 0.2, ILP: 2.2}},
		{Name: "cloudsuite-graph-analytics", Class: ClassLatency, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.35, StoreFrac: 0.15, DepFrac: 0.55, ILP: 1.7}},
		{Name: "cloudsuite-in-memory-analytics", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.25, SeqFrac: 0.45, DepFrac: 0.2, ILP: 2.2}},
		{Name: "cloudsuite-media-streaming", Class: ClassBandwidth, Siblings: bwSiblings(12, 0.95),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.35, StoreFrac: 0.05, SeqFrac: 0.9, StreamCount: 8, ILP: 2.4}},
		{Name: "cloudsuite-web-search", Class: ClassLatency, Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.28, StoreFrac: 0.1, DepFrac: 0.5, HotFrac: 0.35, HotSetMB: 128, ILP: 2}},
		{Name: "cloudsuite-web-serving", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.22, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.25, ILP: 2.3}},
	}
	for i := range s {
		s[i].Suite = "CloudSuite"
	}
	return s
}

// phoronix returns a Phoronix Test Suite slice.
func phoronix() []Spec {
	s := []Spec{
		{Name: "pts-compress-7zip", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.28, StoreFrac: 0.3, DepFrac: 0.35, SeqFrac: 0.25, ILP: 2.2}},
		{Name: "pts-compress-zstd", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.35, SeqFrac: 0.45, DepFrac: 0.2, ILP: 2.4}},
		{Name: "pts-openssl", Class: ClassCompute, Profile: Profile{WorkingSetMB: 8, MemRatio: 0.04, StoreFrac: 0.3, ILP: 3.6}},
		{Name: "pts-x265", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.1, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3.2}},
		{Name: "pts-svt-av1", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.15, StoreFrac: 0.3, SeqFrac: 0.6, ILP: 3}},
		{Name: "pts-build-linux-kernel", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.22, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.2, ILP: 2.3}},
		{Name: "pts-build-llvm", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.24, StoreFrac: 0.3, DepFrac: 0.32, SeqFrac: 0.2, ILP: 2.2}},
		{Name: "pts-sqlite", Class: ClassLatency, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.28, StoreFrac: 0.35, DepFrac: 0.4, ILP: 2}},
		{Name: "pts-nginx", Class: ClassLatency, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.22, StoreFrac: 0.25, DepFrac: 0.35, SeqFrac: 0.2, ILP: 2.2}},
		{Name: "pts-apache", Class: ClassLatency, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.22, StoreFrac: 0.25, DepFrac: 0.35, SeqFrac: 0.2, ILP: 2.2}},
		{Name: "pts-pybench", Class: ClassLatency, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.25, StoreFrac: 0.3, DepFrac: 0.5, ILP: 1.8}},
		{Name: "pts-git", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.3, DepFrac: 0.3, ILP: 2.2}},
		{Name: "pts-blender-bmw", Class: ClassCompute, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.12, StoreFrac: 0.25, SeqFrac: 0.4, ILP: 3}},
		{Name: "pts-c-ray", Class: ClassCompute, Profile: Profile{WorkingSetMB: 8, MemRatio: 0.04, StoreFrac: 0.2, ILP: 3.6}},
		{Name: "pts-john-the-ripper", Class: ClassCompute, Profile: Profile{WorkingSetMB: 16, MemRatio: 0.05, StoreFrac: 0.2, ILP: 3.5}},
		{Name: "pts-stream-copy", Class: ClassBandwidth, Siblings: bwSiblings(28, 0.5),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.5, StoreFrac: 0.5, SeqFrac: 0.98, StreamCount: 4, ILP: 2}},
		{Name: "pts-stream-triad", Class: ClassBandwidth, Siblings: bwSiblings(28, 0.66),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.5, StoreFrac: 0.34, SeqFrac: 0.98, StreamCount: 6, ILP: 2.2}},
		{Name: "pts-ramspeed", Class: ClassBandwidth, Siblings: bwSiblings(28, 0.8),
			Profile: Profile{WorkingSetMB: 512, MemRatio: 0.5, StoreFrac: 0.2, SeqFrac: 0.98, StreamCount: 4, ILP: 2.2}},
		{Name: "pts-cachebench", Class: ClassMixed, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.4, StoreFrac: 0.3, SeqFrac: 0.7, ILP: 2.4}},
		{Name: "pts-postmark", Class: ClassMixed, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.3, StoreFrac: 0.4, SeqFrac: 0.4, DepFrac: 0.2, ILP: 2.2}},
		{Name: "pts-pgbench", Class: ClassLatency, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.28, StoreFrac: 0.35, DepFrac: 0.45, HotFrac: 0.3, HotSetMB: 64, ILP: 2}},
		{Name: "pts-mariadb", Class: ClassLatency, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.28, StoreFrac: 0.35, DepFrac: 0.45, HotFrac: 0.3, HotSetMB: 64, ILP: 2}},
		{Name: "pts-rocksdb", Class: ClassLatency, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.3, StoreFrac: 0.3, DepFrac: 0.5, HotFrac: 0.25, HotSetMB: 32, ILP: 2}},
		{Name: "pts-leveldb", Class: ClassLatency, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.3, DepFrac: 0.5, HotFrac: 0.25, HotSetMB: 32, ILP: 2}},
		{Name: "pts-scimark2", Class: ClassMixed, Profile: Profile{WorkingSetMB: 128, MemRatio: 0.25, StoreFrac: 0.3, SeqFrac: 0.65, ILP: 2.6}},
	}
	for i := range s {
		s[i].Suite = "Phoronix"
	}
	return s
}

// spark returns HiBench-style Spark analytics workloads.
func spark() []Spec {
	s := []Spec{
		{Name: "spark-wordcount", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.3, SeqFrac: 0.55, HotFrac: 0.2, HotSetMB: 32, ILP: 2.2}},
		{Name: "spark-sort", Class: ClassBandwidth, Siblings: bwSiblings(16, 0.6),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.38, StoreFrac: 0.45, SeqFrac: 0.7, StreamCount: 8, ILP: 2.2}},
		{Name: "spark-terasort", Class: ClassBandwidth, Siblings: bwSiblings(16, 0.6),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.4, StoreFrac: 0.45, SeqFrac: 0.72, StreamCount: 8, ILP: 2.2}},
		{Name: "spark-pagerank", Class: ClassLatency, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.33, StoreFrac: 0.2, DepFrac: 0.5, SeqFrac: 0.15, ILP: 1.9}},
		{Name: "spark-kmeans", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.2, SeqFrac: 0.7, ILP: 2.6}},
		{Name: "spark-bayes", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.28, StoreFrac: 0.25, SeqFrac: 0.5, DepFrac: 0.2, ILP: 2.3}},
		{Name: "spark-join", Class: ClassMixed, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.32, StoreFrac: 0.3, SeqFrac: 0.4, DepFrac: 0.3, HotFrac: 0.2, HotSetMB: 64, ILP: 2.1}},
		{Name: "spark-scan", Class: ClassBandwidth, Siblings: bwSiblings(14, 0.9),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.4, StoreFrac: 0.1, SeqFrac: 0.9, StreamCount: 8, ILP: 2.4}},
		{Name: "spark-aggregation", Class: ClassMixed, Profile: Profile{WorkingSetMB: 768, MemRatio: 0.33, StoreFrac: 0.3, SeqFrac: 0.55, HotFrac: 0.25, HotSetMB: 16, ILP: 2.2}},
		{Name: "spark-als", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.25, SeqFrac: 0.6, ILP: 2.5}},
	}
	for i := range s {
		s[i].Suite = "Spark"
	}
	return s
}

// ml returns the ML/AI inference workloads.
func ml() []Spec {
	s := []Spec{
		{Name: "gpt2-small", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.3, StoreFrac: 0.15, SeqFrac: 0.8, StreamCount: 8, ILP: 2.8}},
		{Name: "gpt2-medium", Class: ClassBandwidth, Siblings: bwSiblings(8, 0.9),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.35, StoreFrac: 0.12, SeqFrac: 0.85, StreamCount: 8, ILP: 2.6}},
		{Name: "llama7b-prefill", Class: ClassCompute, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.18, StoreFrac: 0.15, SeqFrac: 0.85, StreamCount: 8, ILP: 3.4}},
		{Name: "llama7b-decode", Class: ClassBandwidth, Siblings: bwSiblings(20, 0.95),
			Profile: Profile{WorkingSetMB: 2048, MemRatio: 0.45, StoreFrac: 0.05, SeqFrac: 0.95, StreamCount: 12, ILP: 2.4}},
		{Name: "llama7b-decode-batch8", Class: ClassBandwidth, Siblings: bwSiblings(24, 0.95),
			Profile: Profile{WorkingSetMB: 2048, MemRatio: 0.45, StoreFrac: 0.08, SeqFrac: 0.92, StreamCount: 12, ILP: 2.5}},
		{Name: "dlrm-embedding", Class: ClassLatency, Profile: Profile{WorkingSetMB: 2048, MemRatio: 0.35, StoreFrac: 0.05, DepFrac: 0.3, HotFrac: 0.4, HotSetMB: 64, ILP: 2}},
		{Name: "dlrm-full", Class: ClassMixed, Profile: Profile{WorkingSetMB: 1536, MemRatio: 0.3, StoreFrac: 0.1, DepFrac: 0.2, SeqFrac: 0.4, HotFrac: 0.3, HotSetMB: 64, ILP: 2.4}},
		{Name: "bert-base", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.25, StoreFrac: 0.15, SeqFrac: 0.8, StreamCount: 8, ILP: 3}},
		{Name: "resnet50", Class: ClassCompute, Profile: Profile{WorkingSetMB: 256, MemRatio: 0.15, StoreFrac: 0.2, SeqFrac: 0.8, ILP: 3.4}},
		{Name: "mlperf-rnnt", Class: ClassMixed, Profile: Profile{WorkingSetMB: 512, MemRatio: 0.25, StoreFrac: 0.15, SeqFrac: 0.7, DepFrac: 0.15, ILP: 2.6}},
		{Name: "mlperf-3dunet", Class: ClassBandwidth, Siblings: bwSiblings(12, 0.85),
			Profile: Profile{WorkingSetMB: 1024, MemRatio: 0.38, StoreFrac: 0.2, SeqFrac: 0.88, StreamCount: 10, ILP: 2.5}},
		{Name: "mobilenet-v2", Class: ClassCompute, Profile: Profile{WorkingSetMB: 64, MemRatio: 0.12, StoreFrac: 0.2, SeqFrac: 0.75, ILP: 3.4}},
	}
	for i := range s {
		s[i].Suite = "ML"
	}
	return s
}

// micro generates the parametric microbenchmark grid that rounds the
// catalog out to 265 entries. Each point exercises a distinct corner of
// {footprint} x {access pattern} x {read-write mix}.
func micro() []Spec {
	var out []Spec
	add := func(name string, cls Class, p Profile) {
		out = append(out, Spec{Name: name, Suite: "micro", Class: cls, Profile: p})
	}
	sizes := []float64{16, 64, 256, 1024}
	// Pattern x size grid (24).
	for _, ws := range sizes {
		tag := fmt.Sprintf("%gm", ws)
		add("micro-chase-"+tag, ClassLatency, Profile{WorkingSetMB: ws, MemRatio: 0.5, DepFrac: 1, ILP: 1.2, Skew: -1})
		add("micro-randread-"+tag, ClassLatency, Profile{WorkingSetMB: ws, MemRatio: 0.5, DepFrac: 0, ILP: 2, Skew: -1})
		add("micro-seqread-"+tag, ClassBandwidth, Profile{WorkingSetMB: ws, MemRatio: 0.5, SeqFrac: 1, StreamCount: 4, ILP: 2.4, Skew: -1})
		add("micro-seqrw-"+tag, ClassBandwidth, Profile{WorkingSetMB: ws, MemRatio: 0.5, SeqFrac: 1, StoreFrac: 0.5, StreamCount: 4, ILP: 2.2, Skew: -1})
		add("micro-randstore-"+tag, ClassMixed, Profile{WorkingSetMB: ws, MemRatio: 0.5, StoreFrac: 1, ILP: 2, Skew: -1})
		add("micro-mixed-"+tag, ClassMixed, Profile{WorkingSetMB: ws, MemRatio: 0.4, StoreFrac: 0.3, DepFrac: 0.3, SeqFrac: 0.3, ILP: 2.2, Skew: -1})
	}
	// Intensity sweep on chase and stream (24).
	for _, ws := range sizes {
		for _, mr := range []float64{0.1, 0.25, 0.45} {
			add(fmt.Sprintf("micro-chase-%gm-mr%02.0f", ws, mr*100), ClassLatency,
				Profile{WorkingSetMB: ws, MemRatio: mr, DepFrac: 1, ILP: 2, Skew: -1})
			add(fmt.Sprintf("micro-seq-%gm-mr%02.0f", ws, mr*100), ClassMixed,
				Profile{WorkingSetMB: ws, MemRatio: mr, SeqFrac: 1, StreamCount: 4, ILP: 2.4, Skew: -1})
		}
	}
	// Read/write ratio sweep (16).
	for _, ws := range sizes {
		for _, sf := range []float64{0.2, 0.33, 0.5, 0.66} {
			add(fmt.Sprintf("micro-rw-%gm-w%02.0f", ws, sf*100), ClassMixed,
				Profile{WorkingSetMB: ws, MemRatio: 0.45, SeqFrac: 0.8, StoreFrac: sf, StreamCount: 4, ILP: 2.2, Skew: -1})
		}
	}
	// Hot-set (Zipf-ish) locality sweep (8).
	for _, hot := range []float64{0.5, 0.8} {
		for _, hs := range []float64{4, 32} {
			add(fmt.Sprintf("micro-hot%02.0f-%gm", hot*100, hs), ClassLatency,
				Profile{WorkingSetMB: 512, MemRatio: 0.4, DepFrac: 0.4, HotFrac: hot, HotSetMB: hs, ILP: 2, Skew: -1})
		}
	}
	// Dependence-depth sweep (8).
	for _, dep := range []float64{0.12, 0.25, 0.38, 0.5, 0.62, 0.75, 0.88, 1} {
		add(fmt.Sprintf("micro-dep%03.0f", dep*100), ClassLatency,
			Profile{WorkingSetMB: 256, MemRatio: 0.4, DepFrac: dep, ILP: 2, Skew: -1})
	}
	// Serialize-heavy kernels (4).
	for _, per := range []uint64{32, 128, 512, 2048} {
		add(fmt.Sprintf("micro-fence%d", per), ClassMixed,
			Profile{WorkingSetMB: 256, MemRatio: 0.35, StoreFrac: 0.3, SerializePer: per, ILP: 2, Skew: -1})
	}
	// Stride/stream-count variants (8).
	for _, sc := range []int{1, 2, 8, 16} {
		add(fmt.Sprintf("micro-streams%d", sc), ClassBandwidth,
			Profile{WorkingSetMB: 512, MemRatio: 0.45, SeqFrac: 1, StreamCount: sc, ILP: 2.4, Skew: -1})
		add(fmt.Sprintf("micro-streams%d-rw", sc), ClassBandwidth,
			Profile{WorkingSetMB: 512, MemRatio: 0.45, SeqFrac: 1, StoreFrac: 0.4, StreamCount: sc, ILP: 2.2, Skew: -1})
	}
	return out
}

// appSpecs holds workloads registered by the apps packages (graph
// kernels, Redis-like KV store, VoltDB-like table store).
var appSpecs []Spec

// RegisterApps adds externally built workload specs to the catalog.
// It is called from the apps packages' registration helpers.
func RegisterApps(specs []Spec) {
	appSpecs = append(appSpecs, specs...)
}

// parallelSuites lists the suites whose real programs are inherently
// multithreaded; entries without explicit sibling traffic get a
// moderate default so they exercise shared-device contention the way
// the real servers/runtimes do.
var parallelSuites = map[string]bool{
	"PBBS": true, "PARSEC": true, "CloudSuite": true, "Spark": true, "ML": true, "Phoronix": true,
}

// Catalog returns all workload specs. The total is 265 once the apps
// packages have registered (graph 30, Redis 6, VoltDB 6, memcached 2).
func Catalog() []Spec {
	var all []Spec
	all = append(all, specCPU2017()...)
	all = append(all, pbbs()...)
	all = append(all, parsec()...)
	all = append(all, cloudsuite()...)
	all = append(all, phoronix()...)
	all = append(all, spark()...)
	all = append(all, ml()...)
	all = append(all, micro()...)
	all = append(all, appSpecs...)
	for i := range all {
		s := &all[i]
		if s.Siblings.Threads == 0 && parallelSuites[s.Suite] {
			s.Siblings = Siblings{Threads: 6, ReadFrac: 0.85, MLP: 3, DelayNs: 200, WorkingSetMB: 64}
		}
	}
	return all
}

// ByName finds a catalog entry.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BySuite filters the catalog.
func BySuite(suite string) []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// ByClass filters the catalog.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}
