package workload

import (
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
)

type fixedDev struct{ lat float64 }

func (d *fixedDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		return now + d.lat/4
	}
	return now + d.lat
}
func (d *fixedDev) Name() string           { return "fixed" }
func (d *fixedDev) Reset()                 {}
func (d *fixedDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func runProfile(t *testing.T, p Profile, instr uint64, lat float64) counters.Snapshot {
	t.Helper()
	w := NewSynthetic("test", p, 1)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat}, MaxInstructions: instr})
	w.Run(m)
	return m.Counters()
}

func TestSyntheticRespectsBudget(t *testing.T) {
	c := runProfile(t, Profile{WorkingSetMB: 64, MemRatio: 0.3}, 50_000, 100)
	if c[counters.Instructions] < 50_000 {
		t.Fatalf("ran only %v instructions", c[counters.Instructions])
	}
	if c[counters.Instructions] > 60_000 {
		t.Fatalf("overshot budget: %v", c[counters.Instructions])
	}
}

func TestSyntheticMemRatio(t *testing.T) {
	c := runProfile(t, Profile{WorkingSetMB: 64, MemRatio: 0.25, StoreFrac: 0.2}, 100_000, 100)
	memOps := c[counters.DemandLoads] + c[counters.StoreOps]
	ratio := memOps / c[counters.Instructions]
	if ratio < 0.2 || ratio > 0.3 {
		t.Fatalf("memory ratio = %v, want ~0.25", ratio)
	}
	storeFrac := c[counters.StoreOps] / memOps
	if storeFrac < 0.15 || storeFrac > 0.25 {
		t.Fatalf("store fraction = %v, want ~0.2", storeFrac)
	}
}

func TestSyntheticLatencySensitivity(t *testing.T) {
	chase := Profile{WorkingSetMB: 256, MemRatio: 0.4, DepFrac: 1}
	fast := runProfile(t, chase, 100_000, 100)[counters.Cycles]
	slow := runProfile(t, chase, 100_000, 400)[counters.Cycles]
	if slow/fast < 2 {
		t.Fatalf("dependent profile: 4x latency gave only %vx cycles", slow/fast)
	}
	// Cache-resident footprint measured after a warmup phase: device
	// latency must barely matter.
	comp := Profile{WorkingSetMB: 0.125, MemRatio: 0.02, ILP: 3.5}
	warmRun := func(lat float64) float64 {
		w := NewSynthetic("comp", comp, 1)
		m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: lat}, MaxInstructions: 300_000})
		for _, o := range w.Arena().Objects() {
			m.Preload(o.Base, o.Size) // steady-state residency
		}
		w.Run(m) // warmup
		before := m.Counters()
		m.SetMaxInstructions(1_000_000)
		w.Run(m)
		return m.Counters()[counters.Cycles] - before[counters.Cycles]
	}
	fastC, slowC := warmRun(100), warmRun(400)
	if slowC/fastC > 1.2 {
		t.Fatalf("compute profile slowed %vx under latency", slowC/fastC)
	}
}

func TestSyntheticPhases(t *testing.T) {
	p := Profile{WorkingSetMB: 128, MemRatio: 0.3, PhaseInstr: 10_000, PhaseMemMult: []float64{2, 0.1}}
	w := NewSynthetic("phased", p, 1)
	m := core.New(core.Config{CPU: platform.SKX2S().CPU, Device: &fixedDev{lat: 200},
		MaxInstructions: 100_000, SampleIntervalNs: 2_000})
	w.Run(m)
	if len(m.Samples()) < 5 {
		t.Fatalf("phased run produced %d samples", len(m.Samples()))
	}
}

func TestCatalogSize(t *testing.T) {
	// Without app registration the base catalog holds 221 entries; the
	// apps add 30 (GAPBS) + 8 (Redis/memcached) + 6 (VoltDB) = 44 for
	// the paper's 265. The melody package registers them.
	base := len(Catalog()) - len(appSpecs)
	if base != 221 {
		t.Fatalf("base catalog has %d entries, want 221", base)
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if seen[s.Name] {
			t.Fatalf("duplicate workload name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Suite == "" {
			t.Fatalf("workload %q has no suite", s.Name)
		}
		if strings.TrimSpace(s.Name) == "" {
			t.Fatal("empty workload name")
		}
	}
}

func TestCatalogClassesCovered(t *testing.T) {
	for _, c := range []Class{ClassCompute, ClassLatency, ClassBandwidth, ClassMixed} {
		if len(ByClass(c)) == 0 {
			t.Fatalf("no workloads of class %v", c)
		}
	}
	// Roughly a quarter bandwidth-sensitive, per the paper's workload mix.
	bw := len(ByClass(ClassBandwidth))
	if frac := float64(bw) / float64(len(Catalog())); frac < 0.1 || frac > 0.4 {
		t.Fatalf("bandwidth-class fraction = %v", frac)
	}
}

func TestByNameAndSuite(t *testing.T) {
	if _, ok := ByName("605.mcf_s"); !ok {
		t.Fatal("605.mcf_s missing")
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("bogus name resolved")
	}
	if len(BySuite("SPEC CPU 2017")) != 43 {
		t.Fatalf("SPEC suite has %d entries, want 43", len(BySuite("SPEC CPU 2017")))
	}
}

func TestAllSpecsBuildable(t *testing.T) {
	for _, s := range Catalog() {
		if s.New != nil {
			continue // app workloads are exercised in their own packages
		}
		w := s.Build(1)
		if w == nil || w.Name() != s.Name {
			t.Fatalf("spec %q built %v", s.Name, w)
		}
	}
}

func TestSiblingsBuildThreads(t *testing.T) {
	dev := &fixedDev{lat: 100}
	sib := Siblings{Threads: 4, ReadFrac: 0.8, MLP: 4, WorkingSetMB: 16}
	threads := sib.BuildThreads(dev, 1)
	if len(threads) != 4 {
		t.Fatalf("built %d threads", len(threads))
	}
	for _, th := range threads {
		if next := th.Step(0); next <= 0 {
			t.Fatal("sibling thread did not schedule itself")
		}
	}
	if got := (Siblings{}).BuildThreads(dev, 1); got != nil {
		t.Fatal("zero siblings built threads")
	}
}
