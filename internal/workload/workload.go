// Package workload defines the workload abstraction Melody evaluates
// and the 265-entry catalog reproducing the paper's suite mix (SPEC CPU
// 2017, GAPBS, PBBS, PARSEC, CloudSuite, Phoronix, Spark, ML inference,
// Redis/VoltDB under YCSB, plus microbenchmarks).
//
// Real applications cannot run on a simulated memory hierarchy, so each
// workload is either (a) a parametric model whose memory-access
// structure — footprint, dependence depth, read/write mix, spatial
// locality, phase behaviour — matches the real program's published
// characteristics, or (b) an actually-executing mini-app (graph
// kernels, KV store, table store) that performs its algorithm's loads
// and stores through the simulated machine. DESIGN.md §1 documents this
// substitution.
package workload

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
	"github.com/moatlab/melody/internal/traffic"
	"github.com/moatlab/melody/internal/vm"
)

// Workload is anything that can execute on a simulated machine.
type Workload interface {
	// Name identifies the workload ("605.mcf_s", "bfs-twitter", ...).
	Name() string
	// Run executes against m until m.Done() (or natural completion).
	Run(m *core.Machine)
}

// Siblings describes the background traffic modelling the workload's
// other threads: one representative core is simulated in detail and
// siblings load the shared device (DESIGN.md §3.2).
type Siblings struct {
	Threads      int
	ReadFrac     float64
	DelayNs      float64 // pacing between accesses per thread
	MLP          int
	Sequential   bool
	WorkingSetMB float64
}

// BuildThreads constructs the background traffic threads against dev.
// Sibling buffers sit far above workload arenas (>= 1 TiB) so they never
// alias workload objects.
func (s Siblings) BuildThreads(dev mem.Device, seed uint64) []traffic.Thread {
	if s.Threads <= 0 {
		return nil
	}
	ws := uint64(s.WorkingSetMB * (1 << 20))
	if ws == 0 {
		ws = 64 << 20
	}
	mlp := s.MLP
	if mlp <= 0 {
		mlp = 8
	}
	readFrac := s.ReadFrac
	if readFrac <= 0 {
		readFrac = 1
	}
	threads := make([]traffic.Thread, s.Threads)
	for i := 0; i < s.Threads; i++ {
		g := traffic.NewLoadGenerator(dev, ws, readFrac, seed+uint64(i)*257+11)
		g.Base = (1 << 40) + uint64(i)*(ws+(1<<21))
		g.MLP = mlp
		g.DelayNs = s.DelayNs
		g.Sequential = s.Sequential
		threads[i] = g
	}
	return threads
}

// Class coarsely categorizes sensitivity, used to slice experiments.
type Class uint8

const (
	// ClassCompute is CPU-bound (minimal memory traffic).
	ClassCompute Class = iota
	// ClassLatency is dominated by dependent or random loads.
	ClassLatency
	// ClassBandwidth streams more data than small devices can serve.
	ClassBandwidth
	// ClassMixed sits in between.
	ClassMixed
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassLatency:
		return "latency"
	case ClassBandwidth:
		return "bandwidth"
	default:
		return "mixed"
	}
}

// Spec is one catalog entry.
type Spec struct {
	Name  string
	Suite string
	Class Class

	// Profile parameterizes the synthetic model; used unless New is set.
	Profile Profile

	// New overrides Profile with a custom (usually actually-executing)
	// workload constructor.
	New func(seed uint64) Workload

	// Siblings models the workload's other threads as device traffic.
	Siblings Siblings

	// Instructions overrides the default per-run budget when non-zero.
	Instructions uint64
}

// Build constructs the workload instance. Class-dependent locality
// defaults are applied here: compute-bound programs reuse a small hot
// set (their real miss rates are tiny), and mixed programs reuse a
// moderate one; entries that set HotFrac/HotSetMB explicitly keep their
// values.
func (s Spec) Build(seed uint64) Workload {
	if s.New != nil {
		return s.New(seed)
	}
	p := s.Profile
	if p.HotFrac == 0 && p.HotSetMB == 0 {
		switch s.Class {
		case ClassCompute:
			p.HotFrac, p.HotSetMB = 0.995, 3
		case ClassMixed:
			p.HotFrac, p.HotSetMB = 0.985, 20
		case ClassLatency:
			p.HotFrac, p.HotSetMB = 0.6, 48
		}
	}
	if p.StreamCapMB == 0 {
		switch s.Class {
		case ClassCompute:
			p.StreamCapMB = 2
		case ClassMixed, ClassLatency:
			p.StreamCapMB = 4
		}
	}
	return NewSynthetic(s.Name, p, seed)
}

// Profile parameterizes the synthetic workload model.
type Profile struct {
	WorkingSetMB float64 // random-access footprint
	MemRatio     float64 // memory ops per instruction
	StoreFrac    float64 // stores as a fraction of memory ops
	DepFrac      float64 // loads depending on the previous load
	SeqFrac      float64 // accesses on sequential (prefetchable) streams
	StreamCount  int     // concurrent sequential streams (default 4)
	HotFrac      float64 // random accesses hitting the hot object
	HotSetMB     float64 // hot object size
	ILP          float64 // compute ILP between memory ops
	SerializePer uint64  // serializing op cadence (0 = never)

	// Skew shapes the random-access popularity distribution: 0 selects
	// the default Zipf exponent (0.85 — real programs reuse data),
	// positive values set it explicitly, and negative values select
	// uniform random (microbenchmark behaviour, no locality).
	Skew float64

	// StreamCapMB bounds each sequential stream's footprint. Cache-
	// friendly programs stream over reused buffers (frames, tiles), so
	// their streams should turn into cache hits after the first pass;
	// bandwidth-bound programs stream over fresh data (0 = unbounded).
	StreamCapMB float64

	// PhaseInstr splits execution into phases of this many instructions
	// cycling through PhaseMemMult as MemRatio multipliers (used for the
	// period-based Spa analysis, Figure 16).
	PhaseInstr   uint64
	PhaseMemMult []float64
}

// Synthetic executes a Profile. It allocates its footprint from a vm
// arena so placement experiments can rebind objects to devices.
type Synthetic struct {
	name string
	prof Profile
	rng  *sim.Rand

	arena   *vm.Arena
	randObj vm.Object
	hotObj  vm.Object
	streams []vm.Object
	cursors []uint64
	zipf    *sim.Zipf // nil = uniform random accesses
}

var _ Workload = (*Synthetic)(nil)

// NewSynthetic builds a synthetic workload from prof.
func NewSynthetic(name string, prof Profile, seed uint64) *Synthetic {
	if prof.WorkingSetMB <= 0 {
		prof.WorkingSetMB = 64
	}
	if prof.ILP <= 0 {
		prof.ILP = 2
	}
	if prof.MemRatio <= 0 {
		prof.MemRatio = 0.25
	}
	if prof.StreamCount <= 0 {
		prof.StreamCount = 4
	}
	w := &Synthetic{name: name, prof: prof, rng: sim.NewRand(seed)}
	w.arena = vm.New(1 << 30)
	w.randObj = w.arena.Alloc("rand", uint64(prof.WorkingSetMB*(1<<20)))
	if prof.Skew >= 0 {
		skew := prof.Skew
		if skew == 0 {
			skew = 0.85
		}
		w.zipf = sim.NewZipf(w.rng.Fork(), w.randObj.Size/64, skew)
	}
	if prof.HotFrac > 0 && prof.HotSetMB > 0 {
		w.hotObj = w.arena.Alloc("hot", uint64(prof.HotSetMB*(1<<20)))
	}
	if prof.SeqFrac > 0 {
		per := uint64(prof.WorkingSetMB * (1 << 20) / float64(prof.StreamCount))
		if per < 1<<20 {
			per = 1 << 20
		}
		if cap := uint64(prof.StreamCapMB * (1 << 20)); cap > 0 && per > cap {
			per = cap
		}
		for i := 0; i < prof.StreamCount; i++ {
			w.streams = append(w.streams, w.arena.Alloc("stream", per))
			w.cursors = append(w.cursors, 0)
		}
	}
	return w
}

// Name implements Workload.
func (w *Synthetic) Name() string { return w.name }

// Arena exposes the workload's allocations for placement experiments.
func (w *Synthetic) Arena() *vm.Arena { return w.arena }

// Preloader is implemented by workloads whose steady-state cache
// residency should be installed before measurement (hot sets, reused
// stream buffers, index structures). The runner preloads these objects
// in order until the machine's budget is spent.
type Preloader interface {
	PreloadObjects() []vm.Object
}

// PreloadObjects implements Preloader: the hot set and stream buffers
// are what a long-running instance would keep cached.
func (w *Synthetic) PreloadObjects() []vm.Object {
	var objs []vm.Object
	if w.hotObj.Size > 0 {
		objs = append(objs, w.hotObj)
	}
	objs = append(objs, w.streams...)
	return objs
}

// Run implements Workload.
func (w *Synthetic) Run(m *core.Machine) {
	p := w.prof
	const line = 64
	stream := 0
	sinceSerialize := uint64(0)
	for !m.Done() {
		memRatio := p.MemRatio
		if p.PhaseInstr > 0 && len(p.PhaseMemMult) > 0 {
			phase := (m.Instructions() / p.PhaseInstr) % uint64(len(p.PhaseMemMult))
			memRatio *= p.PhaseMemMult[phase]
			if memRatio > 1 {
				memRatio = 1
			}
		}

		// One memory op plus its compute filler.
		r := w.rng.Float64()
		switch {
		case r < p.SeqFrac:
			obj := w.streams[stream]
			cur := w.cursors[stream]
			addr := obj.Base + (cur % (obj.Size / line) * line)
			w.cursors[stream] = cur + 1
			stream++
			if stream == len(w.streams) {
				stream = 0
			}
			if w.rng.Float64() < p.StoreFrac {
				m.Store(addr)
			} else {
				m.Load(addr, false)
			}
		default:
			var addr uint64
			if p.HotFrac > 0 && w.rng.Float64() < p.HotFrac {
				addr = w.hotObj.Base + w.rng.Uint64n(w.hotObj.Size/line)*line
			} else if w.zipf != nil {
				// Zipf rank scattered across the footprint so the hot
				// set has no artificial spatial locality.
				lines := w.randObj.Size / line
				rank := w.zipf.Next()
				addr = w.randObj.Base + (rank*0x9e3779b97f4a7c15)%lines*line
			} else {
				addr = w.randObj.Base + w.rng.Uint64n(w.randObj.Size/line)*line
			}
			if w.rng.Float64() < p.StoreFrac {
				m.Store(addr)
			} else {
				m.Load(addr, w.rng.Float64() < p.DepFrac)
			}
		}

		if memRatio < 1 {
			fill := uint64((1-memRatio)/memRatio + 0.5)
			if fill > 0 {
				m.ComputeILP(fill, p.ILP)
			}
		}

		sinceSerialize++
		if p.SerializePer > 0 && sinceSerialize >= p.SerializePer {
			m.Serialize()
			sinceSerialize = 0
		}
	}
}
