// Package topology composes mem.Devices into the memory configurations
// the paper evaluates: socket-local DRAM, one- and two-hop NUMA, locally
// attached CXL, CXL accessed from a remote socket (CXL+NUMA), CXL behind
// a switch, hardware-interleaved device sets (2x CXL-D), and
// region-based placement for the tiering use case (§5.7).
package topology

import (
	"fmt"
	"sort"

	"github.com/moatlab/melody/internal/link"
	"github.com/moatlab/melody/internal/mem"
)

const flitHeader = 16.0

// Remote places an inner device behind a cross-socket hop (UPI). It is
// used both for plain NUMA (inner = the remote socket's iMC) and for
// CXL+NUMA (inner = a CXL device attached to the other socket).
//
// ExtraNs models vendor/platform-specific cross-socket inefficiency: the
// paper measures that one NUMA hop adds 161/202/227/94 ns for CXL A-D,
// far from uniform, so the hop cost is per-configuration.
type Remote struct {
	name    string
	inner   mem.Device
	upi     *link.Link
	extraNs float64
}

var _ mem.Device = (*Remote)(nil)

// NewRemote wraps inner behind a UPI link. extraNs is added per
// direction on top of the link's own cost.
func NewRemote(name string, inner mem.Device, upiCfg link.Config, extraNs float64, seed uint64) *Remote {
	return &Remote{
		name:    name,
		inner:   inner,
		upi:     link.New(upiCfg, seed),
		extraNs: extraNs / 2,
	}
}

// Name implements mem.Device.
func (r *Remote) Name() string { return r.name }

// Reset implements mem.Device.
func (r *Remote) Reset() {
	r.inner.Reset()
	r.upi.Reset()
}

// Access implements mem.Device.
func (r *Remote) Access(now float64, addr uint64, kind mem.Kind) float64 {
	reqBytes := flitHeader
	if kind == mem.Write {
		reqBytes = mem.LineSize + flitHeader
	}
	t := r.upi.Send(now, link.Req, reqBytes) + r.extraNs
	done := r.inner.Access(t, addr, kind)
	if kind == mem.Write {
		// Posted: absorbed at the far side; ack returns off the
		// critical path.
		r.upi.Send(done, link.Rsp, 8)
		return done
	}
	return r.upi.Send(done, link.Rsp, mem.LineSize+flitHeader) + r.extraNs
}

// Stats implements mem.Device.
func (r *Remote) Stats() mem.DeviceStats { return r.inner.Stats() }

// Switched places an inner device behind a CXL switch hop: a fixed
// per-direction latency plus store-and-forward ports that add queueing
// under load. Each direction has its own port, since requests flow at
// present time while responses are forwarded at (later) completion
// times — sharing one clock would let responses starve requests.
type Switched struct {
	name      string
	inner     mem.Device
	latencyNs float64    // per direction
	portBW    float64    // GB/s through each switch port
	busyUntil [2]float64 // 0 = upstream (requests), 1 = downstream
}

var _ mem.Device = (*Switched)(nil)

// NewSwitched wraps inner behind a switch with the given per-direction
// latency and port bandwidth.
func NewSwitched(name string, inner mem.Device, latencyNs, portBW float64) *Switched {
	return &Switched{name: name, inner: inner, latencyNs: latencyNs, portBW: portBW}
}

// Name implements mem.Device.
func (s *Switched) Name() string { return s.name }

// Reset implements mem.Device.
func (s *Switched) Reset() {
	s.inner.Reset()
	s.busyUntil = [2]float64{}
}

func (s *Switched) forward(now, bytes float64, dir int) float64 {
	start := now
	if s.busyUntil[dir] > start {
		start = s.busyUntil[dir]
	}
	end := start + bytes/s.portBW
	s.busyUntil[dir] = end
	return end + s.latencyNs
}

// Access implements mem.Device.
func (s *Switched) Access(now float64, addr uint64, kind mem.Kind) float64 {
	bytes := flitHeader
	if kind == mem.Write {
		bytes = mem.LineSize + flitHeader
	}
	t := s.forward(now, bytes, 0)
	done := s.inner.Access(t, addr, kind)
	if kind == mem.Write {
		return done
	}
	return s.forward(done, mem.LineSize+flitHeader, 1)
}

// Stats implements mem.Device.
func (s *Switched) Stats() mem.DeviceStats { return s.inner.Stats() }

// Interleave spreads addresses across several devices at a fixed granule
// (hardware interleaving; the paper doubles CXL-D bandwidth this way in
// Figure 8f).
type Interleave struct {
	name    string
	devs    []mem.Device
	granule uint64
}

var _ mem.Device = (*Interleave)(nil)

// NewInterleave builds an interleaved device set. granule is the
// interleaving block size in bytes (256 is typical for CXL HW
// interleaving). It panics if devs is empty or granule < one line.
func NewInterleave(name string, devs []mem.Device, granule uint64) *Interleave {
	if len(devs) == 0 || granule < mem.LineSize {
		panic("topology: invalid interleave")
	}
	return &Interleave{name: name, devs: devs, granule: granule}
}

// Name implements mem.Device.
func (iv *Interleave) Name() string { return iv.name }

// Reset implements mem.Device.
func (iv *Interleave) Reset() {
	for _, d := range iv.devs {
		d.Reset()
	}
}

// Access implements mem.Device.
func (iv *Interleave) Access(now float64, addr uint64, kind mem.Kind) float64 {
	idx := int((addr / iv.granule) % uint64(len(iv.devs)))
	return iv.devs[idx].Access(now, addr, kind)
}

// Stats implements mem.Device. Counters are summed across members.
func (iv *Interleave) Stats() mem.DeviceStats {
	var total mem.DeviceStats
	for _, d := range iv.devs {
		s := d.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.RowHits += s.RowHits
		total.RowMisses += s.RowMisses
		total.Retries += s.Retries
		total.Throttled += s.Throttled
		total.BusyNs += s.BusyNs
		if s.LastDone > total.LastDone {
			total.LastDone = s.LastDone
		}
	}
	return total
}

// Region maps an address range onto a device, for tiered placement.
type Region struct {
	Base, Size uint64
	Device     mem.Device
}

// Placement routes accesses by address region with a default device for
// unmapped addresses. This implements the paper's §5.7 tuning use case:
// relocating hot objects from CXL to local DRAM.
type Placement struct {
	name    string
	def     mem.Device
	regions []Region // sorted by Base
}

var _ mem.Device = (*Placement)(nil)

// NewPlacement builds a placement-routing device. Regions may be given
// in any order; overlapping regions are rejected.
func NewPlacement(name string, def mem.Device, regions []Region) (*Placement, error) {
	sorted := append([]Region(nil), regions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Base+sorted[i-1].Size > sorted[i].Base {
			return nil, fmt.Errorf("topology: regions %d and %d overlap", i-1, i)
		}
	}
	return &Placement{name: name, def: def, regions: sorted}, nil
}

// Name implements mem.Device.
func (p *Placement) Name() string { return p.name }

// Reset implements mem.Device.
func (p *Placement) Reset() {
	p.def.Reset()
	seen := map[mem.Device]bool{p.def: true}
	for _, r := range p.regions {
		if !seen[r.Device] {
			r.Device.Reset()
			seen[r.Device] = true
		}
	}
}

// route finds the backing device for addr.
func (p *Placement) route(addr uint64) mem.Device {
	lo, hi := 0, len(p.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.regions[mid].Base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		r := p.regions[lo-1]
		if addr < r.Base+r.Size {
			return r.Device
		}
	}
	return p.def
}

// Access implements mem.Device.
func (p *Placement) Access(now float64, addr uint64, kind mem.Kind) float64 {
	return p.route(addr).Access(now, addr, kind)
}

// Stats implements mem.Device (default device's stats; per-region stats
// are available from the member devices directly).
func (p *Placement) Stats() mem.DeviceStats { return p.def.Stats() }
