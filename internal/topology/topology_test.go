package topology

import (
	"testing"

	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/imc"
	"github.com/moatlab/melody/internal/link"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

func localDevice() *imc.Controller {
	cfg := dram.DefaultConfig()
	cfg.Timing.TREFI = 0
	return imc.New(imc.Config{Name: "Local", PipelineNs: 15, DRAM: cfg})
}

func upiCfg() link.Config {
	return link.Config{PropagationNs: 35, ReqBW: 120, RspBW: 120}
}

func TestRemoteAddsHopLatency(t *testing.T) {
	local := localDevice()
	base := local.Access(0, 0, mem.DemandRead)
	local.Reset()
	remote := NewRemote("NUMA", local, upiCfg(), 0, 1)
	got := remote.Access(0, 0, mem.DemandRead)
	// Two propagation delays plus flit transmission.
	if got < base+2*35 {
		t.Fatalf("remote latency %v not >= local %v + 70", got, base)
	}
	if got > base+2*35+10 {
		t.Fatalf("remote latency %v too far above local %v + hop", got, base)
	}
}

func TestRemoteExtraNs(t *testing.T) {
	a := NewRemote("r0", localDevice(), upiCfg(), 0, 1)
	b := NewRemote("r100", localDevice(), upiCfg(), 100, 1)
	la := a.Access(0, 0, mem.DemandRead)
	lb := b.Access(0, 0, mem.DemandRead)
	if diff := lb - la; diff < 99 || diff > 101 {
		t.Fatalf("ExtraNs=100 added %v", diff)
	}
}

func TestRemoteWritePosted(t *testing.T) {
	r := NewRemote("NUMA", localDevice(), upiCfg(), 0, 1)
	read := r.Access(0, 0, mem.DemandRead)
	r.Reset()
	write := r.Access(0, mem.LineSize, mem.Write)
	if write >= read {
		t.Fatalf("posted remote write (%v) not faster than read (%v)", write, read)
	}
}

func TestSwitchedAddsLatencyBothWays(t *testing.T) {
	local := localDevice()
	base := local.Access(0, 0, mem.DemandRead)
	local.Reset()
	sw := NewSwitched("CXL+Switch", local, 60, 50)
	got := sw.Access(0, 0, mem.DemandRead)
	if got < base+120 {
		t.Fatalf("switch latency %v, want >= %v", got, base+120)
	}
}

func TestInterleaveSpreadsAcrossDevices(t *testing.T) {
	d0, d1 := localDevice(), localDevice()
	iv := NewInterleave("2x", []mem.Device{d0, d1}, 256)
	for i := 0; i < 64; i++ {
		iv.Access(0, uint64(i)*256, mem.DemandRead)
	}
	s0, s1 := d0.Stats(), d1.Stats()
	if s0.Reads != 32 || s1.Reads != 32 {
		t.Fatalf("interleave split %d/%d, want 32/32", s0.Reads, s1.Reads)
	}
	if iv.Stats().Reads != 64 {
		t.Fatalf("aggregate reads = %d", iv.Stats().Reads)
	}
}

func TestInterleaveDoublesBandwidth(t *testing.T) {
	run := func(n int) float64 {
		devs := make([]mem.Device, n)
		for i := range devs {
			devs[i] = localDevice()
		}
		iv := NewInterleave("ix", devs, 256)
		const reqs = 10000
		var last float64
		for i := 0; i < reqs; i++ {
			if done := iv.Access(0, uint64(i)*mem.LineSize, mem.DemandRead); done > last {
				last = done
			}
		}
		return float64(reqs) * mem.LineSize / last
	}
	one, two := run(1), run(2)
	if two < one*1.7 {
		t.Fatalf("2-way interleave bandwidth %v vs single %v, want ~2x", two, one)
	}
}

func TestInterleavePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty interleave did not panic")
		}
	}()
	NewInterleave("bad", nil, 256)
}

func TestPlacementRouting(t *testing.T) {
	slow := localDevice()
	fast := localDevice()
	p, err := NewPlacement("tiered", slow, []Region{
		{Base: 1 << 20, Size: 1 << 20, Device: fast},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Access(0, 0, mem.DemandRead)          // default
	p.Access(0, (1<<20)+64, mem.DemandRead) // region
	p.Access(0, (2<<20)+64, mem.DemandRead) // past region end -> default
	if got := fast.Stats().Reads; got != 1 {
		t.Fatalf("region device got %d reads, want 1", got)
	}
	if got := slow.Stats().Reads; got != 2 {
		t.Fatalf("default device got %d reads, want 2", got)
	}
}

func TestPlacementRejectsOverlap(t *testing.T) {
	d := localDevice()
	_, err := NewPlacement("bad", d, []Region{
		{Base: 0, Size: 200, Device: d},
		{Base: 100, Size: 200, Device: d},
	})
	if err == nil {
		t.Fatal("overlapping regions accepted")
	}
}

func TestCongestedLoadDependence(t *testing.T) {
	cfg := CongestionConfig{PeriodNs: 10_000, WindowNs: 2_000, RefRatePerNs: 0.01}
	run := func(interval float64) float64 {
		c := NewCongested("cong", localDevice(), cfg)
		r := sim.NewRand(3)
		now, total := 0.0, 0.0
		const n = 5000
		for i := 0; i < n; i++ {
			done := c.Access(now, r.Uint64n(1<<30), mem.DemandRead)
			total += done - now
			now = done + interval
		}
		return total / n
	}
	busy := run(20) // dense traffic: full windows
	idle := run(2000)
	if busy <= idle*1.2 {
		t.Fatalf("congestion not load-dependent: busy=%v idle=%v", busy, idle)
	}
}

func TestCongestedTailShape(t *testing.T) {
	cfg := CongestionConfig{PeriodNs: 20_000, WindowNs: 1_000, RefRatePerNs: 0.005}
	c := NewCongested("cong", localDevice(), cfg)
	r := sim.NewRand(5)
	now := 0.0
	var max, sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		done := c.Access(now, r.Uint64n(1<<30), mem.DemandRead)
		lat := done - now
		sum += lat
		if lat > max {
			max = lat
		}
		now = done + 200
	}
	mean := sum / n
	if max < mean*3 {
		t.Fatalf("no congestion tail: mean=%v max=%v", mean, max)
	}
}
