package topology

import "github.com/moatlab/melody/internal/mem"

// CongestionConfig parameterizes load-dependent path congestion.
//
// The paper finds that CXL accessed across a NUMA hop (CXL+NUMA)
// exhibits tail latencies far worse than either CXL or 2-hop NUMA alone
// (Figure 8c/8d: 520.omnetpp slows 2.9x while consuming <1 GB/s), and
// that reducing workload intensity shrinks both the tail and the
// slowdown. We model this as periodic congestion windows on the
// cross-socket path — coherence/directory traffic interference — whose
// duration scales with the requester's recent arrival rate.
type CongestionConfig struct {
	// PeriodNs is the spacing between congestion windows.
	PeriodNs float64
	// WindowNs is the maximum window duration (at full intensity).
	WindowNs float64
	// RefRatePerNs is the request arrival rate (requests per ns,
	// measured over RateWindowNs) at which congestion reaches full
	// strength. Intensity scales quadratically below it, so sparse
	// traffic (an idle latency probe) sees almost nothing while dense
	// dependent-miss streams hit near-full windows — matching the
	// paper's observation that halving workload intensity collapses
	// the CXL+NUMA tail (Figure 8d).
	RefRatePerNs float64
	// RateWindowNs is the rate-measurement window (default 1000).
	RateWindowNs float64
}

// Congested delays requests that land inside congestion windows. It
// wraps the device on the far side of the congested path.
type Congested struct {
	name  string
	inner mem.Device
	cfg   CongestionConfig

	windowStart float64
	windowCount float64
	rate        float64 // EWMA of requests per ns
}

var _ mem.Device = (*Congested)(nil)

// NewCongested wraps inner with load-dependent congestion.
func NewCongested(name string, inner mem.Device, cfg CongestionConfig) *Congested {
	if cfg.RateWindowNs <= 0 {
		cfg.RateWindowNs = 1000
	}
	return &Congested{name: name, inner: inner, cfg: cfg}
}

// Name implements mem.Device.
func (c *Congested) Name() string { return c.name }

// Reset implements mem.Device.
func (c *Congested) Reset() {
	c.inner.Reset()
	c.windowStart, c.windowCount, c.rate = 0, 0, 0
}

// Stats implements mem.Device.
func (c *Congested) Stats() mem.DeviceStats { return c.inner.Stats() }

// Access implements mem.Device.
func (c *Congested) Access(now float64, addr uint64, kind mem.Kind) float64 {
	c.windowCount++
	if elapsed := now - c.windowStart; elapsed >= c.cfg.RateWindowNs {
		inst := c.windowCount / elapsed
		c.rate = 0.6*c.rate + 0.4*inst
		c.windowStart = now
		c.windowCount = 0
	}

	t := now
	if c.cfg.PeriodNs > 0 && c.cfg.WindowNs > 0 && c.cfg.RefRatePerNs > 0 {
		// Quartic in the rate ratio: queueing interference has a sharp
		// onset, which is what makes halving workload intensity collapse
		// the tail (Figure 8d).
		ratio := c.rate / c.cfg.RefRatePerNs
		intensity := ratio * ratio * ratio * ratio
		if intensity > 1 {
			intensity = 1
		}
		window := c.cfg.WindowNs * intensity
		if window > 0 {
			k := float64(uint64(t / c.cfg.PeriodNs))
			winStart := k * c.cfg.PeriodNs
			if t < winStart+window {
				t = winStart + window
			}
		}
	}
	return c.inner.Access(t, addr, kind)
}
