// Package counters defines the performance-counter vocabulary of the
// paper's Table 2 — the nine stall-related CPU counters Spa consumes —
// plus the prefetch-path counters used by the Figure 12 analysis. The
// core model (package core) accumulates these mechanistically while
// executing a workload; Spa (package spa) differences two snapshots.
package counters

import "fmt"

// ID indexes a counter in a Snapshot.
type ID int

// The Spa counter set (paper Table 2, P1-P9) followed by supporting
// counters.
const (
	// BoundOnLoads (P1) counts cycles stalled while the memory
	// subsystem has at least one outstanding demand load
	// (EXE_ACTIVITY.BOUND_ON_LOADS).
	BoundOnLoads ID = iota
	// BoundOnStores (P2) counts cycles stalled with a full store buffer
	// and no outstanding loads (EXE_ACTIVITY.BOUND_ON_STORES).
	BoundOnStores
	// StallsL1DMiss (P3) counts cycles while an L1-miss demand load is
	// outstanding (CYCLE_ACTIVITY.STALLS_L1D_MISS).
	StallsL1DMiss
	// StallsL2Miss (P4) counts cycles while an L2-miss demand load is
	// outstanding (CYCLE_ACTIVITY.STALLS_L2_MISS).
	StallsL2Miss
	// StallsL3Miss (P5) counts cycles while an L3-miss demand load is
	// outstanding (CYCLE_ACTIVITY.STALLS_L3_MISS).
	StallsL3Miss
	// RetiredStalls (P6) counts cycles without retired µops
	// (UOPS_RETIRED.STALLS).
	RetiredStalls
	// OnePortsUtil (P7) counts cycles with exactly 1 µop executed
	// across all ports (EXE_ACTIVITY.1_PORTS_UTIL).
	OnePortsUtil
	// TwoPortsUtil (P8) counts cycles with exactly 2 µops executed
	// (EXE_ACTIVITY.2_PORTS_UTIL).
	TwoPortsUtil
	// StallsScoreboard (P9) counts cycles stalled on serializing
	// operations (RESOURCE_STALLS.SCOREBOARD).
	StallsScoreboard

	// Cycles is the total core cycle count.
	Cycles
	// Instructions is the retired instruction count.
	Instructions

	// L1PFL3Miss counts L1-prefetcher requests that missed the LLC and
	// fetched from (CXL) DRAM.
	L1PFL3Miss
	// L2PFL3Miss counts L2-prefetcher requests that missed the LLC.
	L2PFL3Miss
	// L2PFL3Hit counts L2-prefetcher requests that hit the LLC.
	L2PFL3Hit
	// L1PFIssued and L2PFIssued count prefetches issued by each engine.
	L1PFIssued
	L2PFIssued
	// L2PFDropped counts L2 prefetches skipped because the prefetcher's
	// in-flight budget was exhausted — the coverage-loss mechanism the
	// paper identifies under CXL latency (§5.4, Figure 12b).
	L2PFDropped
	// DemandL3Miss counts demand reads that missed the LLC.
	DemandL3Miss
	// DemandLoads and StoreOps count memory operations executed.
	DemandLoads
	StoreOps
	// DelayedHits counts demand loads that hit on an in-flight
	// (pending) line — the paper's delayed-hit phenomenon.
	DelayedHits

	NumCounters
)

// names holds the printable counter names.
var names = [NumCounters]string{
	"BOUND_ON_LOADS", "BOUND_ON_STORES",
	"STALLS_L1D_MISS", "STALLS_L2_MISS", "STALLS_L3_MISS",
	"RETIRED.STALLS", "1_PORTS_UTIL", "2_PORTS_UTIL", "STALLS.SCOREBD",
	"CYCLES", "INSTRUCTIONS",
	"L1PF_L3_MISS", "L2PF_L3_MISS", "L2PF_L3_HIT",
	"L1PF_ISSUED", "L2PF_ISSUED", "L2PF_DROPPED",
	"DEMAND_L3_MISS", "DEMAND_LOADS", "STORE_OPS", "DELAYED_HITS",
}

// String implements fmt.Stringer.
func (id ID) String() string {
	if id < 0 || id >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(id))
	}
	return names[id]
}

// SpaSet returns the nine counters of Table 2 in P1..P9 order.
func SpaSet() []ID {
	return []ID{
		BoundOnLoads, BoundOnStores,
		StallsL1DMiss, StallsL2Miss, StallsL3Miss,
		RetiredStalls, OnePortsUtil, TwoPortsUtil, StallsScoreboard,
	}
}

// Snapshot is one reading of all counters. Values are in cycles for
// stall counters and in events for the rest; float64 because the core
// model accounts fractional cycles.
type Snapshot [NumCounters]float64

// Delta returns s - base, element-wise.
func (s Snapshot) Delta(base Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] - base[i]
	}
	return d
}

// Add returns s + o, element-wise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] + o[i]
	}
	return d
}

// Scale returns s * k, element-wise.
func (s Snapshot) Scale(k float64) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] * k
	}
	return d
}

// IPC returns instructions per cycle (0 if no cycles).
func (s Snapshot) IPC() float64 {
	if s[Cycles] == 0 {
		return 0
	}
	return s[Instructions] / s[Cycles]
}
