package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSpaSetOrder(t *testing.T) {
	set := SpaSet()
	if len(set) != 9 {
		t.Fatalf("SpaSet has %d counters, want 9", len(set))
	}
	want := []ID{BoundOnLoads, BoundOnStores, StallsL1DMiss, StallsL2Miss,
		StallsL3Miss, RetiredStalls, OnePortsUtil, TwoPortsUtil, StallsScoreboard}
	for i, id := range set {
		if id != want[i] {
			t.Fatalf("SpaSet[%d] = %v, want %v", i, id, want[i])
		}
	}
}

func TestStringNames(t *testing.T) {
	for id := ID(0); id < NumCounters; id++ {
		s := id.String()
		if s == "" || strings.HasPrefix(s, "counter(") {
			t.Fatalf("counter %d has no name", id)
		}
	}
	if ID(-1).String() != "counter(-1)" {
		t.Fatal("out-of-range String wrong")
	}
}

func TestDeltaAddInverse(t *testing.T) {
	// Counter values are event counts, so constrain the fuzz range to
	// exactly-representable integers where (s1+s2)-s2 == s1 holds.
	f := func(a, b [4]uint32) bool {
		var s1, s2 Snapshot
		for i := 0; i < 4; i++ {
			s1[i] = float64(a[i])
			s2[i] = float64(b[i])
		}
		got := s1.Add(s2).Delta(s2)
		for i := range got {
			if got[i] != s1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	var s Snapshot
	s[Cycles] = 10
	s[Instructions] = 40
	half := s.Scale(0.5)
	if half[Cycles] != 5 || half[Instructions] != 20 {
		t.Fatalf("Scale = %+v", half)
	}
}

func TestIPC(t *testing.T) {
	var s Snapshot
	if s.IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
	s[Cycles] = 100
	s[Instructions] = 250
	if got := s.IPC(); got != 2.5 {
		t.Fatalf("IPC = %v", got)
	}
}

// TestNamesCoverAllCounters guards the names table against drifting out
// of sync with the ID list: every ID below NumCounters must render a
// non-empty, unique name (an ID added without a name would silently
// print as "" in reports and metrics).
func TestNamesCoverAllCounters(t *testing.T) {
	seen := make(map[string]ID, NumCounters)
	for id := ID(0); id < NumCounters; id++ {
		name := id.String()
		if name == "" {
			t.Fatalf("counter %d has an empty name", int(id))
		}
		if strings.HasPrefix(name, "counter(") {
			t.Fatalf("counter %d falls through to the placeholder name %q", int(id), name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share the name %q", int(prev), int(id), name)
		}
		seen[name] = id
	}
	if len(seen) != int(NumCounters) {
		t.Fatalf("%d unique names for %d counters", len(seen), int(NumCounters))
	}
}
