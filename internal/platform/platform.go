// Package platform encodes the paper's testbed (Table 1): the five Intel
// server platforms, their local and cross-socket memory systems, and the
// attachment points for the four CXL devices. It is the single source of
// truth for calibration targets, and provides builders that compose the
// dram/imc/link/cxl/topology packages into named memory setups.
package platform

import (
	"fmt"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/dram"
	"github.com/moatlab/melody/internal/imc"
	"github.com/moatlab/melody/internal/link"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/topology"
)

// CPU describes the core/cache resources the core model needs.
type CPU struct {
	Name    string
	Cores   int
	FreqGHz float64

	L1DBytes, L2Bytes, L3Bytes uint64
	L1Lat, L2Lat, L3Lat        int // load-to-use latencies, cycles

	LFBEntries  int // line-fill buffers (L1 miss MSHRs) -> memory MLP
	SBEntries   int // store buffer entries
	ROB         int
	RetireWidth int

	// MissOverheadNs is the CPU-side portion of an LLC-miss round trip
	// (tag lookups down the hierarchy, uncore/mesh traversal, fill).
	// Published idle latencies include it; device models do not.
	MissOverheadNs float64
}

// Platform is one server from Table 1.
type Platform struct {
	CPU CPU

	// Local DRAM behind the integrated memory controller.
	LocalPipelineNs float64
	LocalDRAM       dram.Config

	// Cross-socket interconnect for the NUMA setups.
	UPI         link.Config
	NUMAExtraNs float64

	// Reference values straight from Table 1 (ns, GB/s), used by
	// calibration tests and reports.
	RefLocalLat, RefLocalBW   float64
	RefRemoteLat, RefRemoteBW float64
}

// Table 1 rows. Channel bandwidths are effective (measured), i.e.
// Table 1 BW divided by channel count.

// SPR2S returns the 2-socket Sapphire Rapids platform.
func SPR2S() Platform {
	return Platform{
		CPU: CPU{
			Name: "SPR2S", Cores: 32, FreqGHz: 2.1,
			L1DBytes: 48 << 10, L2Bytes: 2 << 20, L3Bytes: 60 << 20,
			L1Lat: 5, L2Lat: 15, L3Lat: 66,
			LFBEntries: 16, SBEntries: 112, ROB: 512, RetireWidth: 4,
			MissOverheadNs: 50,
		},
		LocalPipelineNs: 22,
		LocalDRAM: dram.Config{
			Channels: 8, BanksPerChannel: 64, ChannelBW: 27.8,
			RowBytes: 8192, Timing: dram.DDR5(),
		},
		UPI:         link.Config{PropagationNs: 38, ReqBW: 121, RspBW: 121},
		NUMAExtraNs: 0,
		RefLocalLat: 114, RefLocalBW: 218,
		RefRemoteLat: 191, RefRemoteBW: 97,
	}
}

// EMR2S returns the 2-socket Emerald Rapids platform.
func EMR2S() Platform {
	p := SPR2S()
	p.CPU.Name = "EMR2S"
	p.CPU.L3Bytes = 160 << 20
	p.LocalPipelineNs = 19
	p.LocalDRAM.ChannelBW = 31.5
	p.UPI = link.Config{PropagationNs: 40, ReqBW: 150, RspBW: 150}
	p.RefLocalLat, p.RefLocalBW = 111, 246
	p.RefRemoteLat, p.RefRemoteBW = 193, 120
	return p
}

// EMR2SPrime returns the larger EMR platform hosting CXL-D.
func EMR2SPrime() Platform {
	p := EMR2S()
	p.CPU.Name = "EMR2S'"
	p.CPU.Cores = 52
	p.CPU.FreqGHz = 2.3
	p.CPU.L3Bytes = 260 << 20
	p.LocalPipelineNs = 25
	p.LocalDRAM.ChannelBW = 30.3
	p.UPI = link.Config{PropagationNs: 47, ReqBW: 149, RspBW: 149}
	p.RefLocalLat, p.RefLocalBW = 117, 236
	p.RefRemoteLat, p.RefRemoteBW = 212, 119
	return p
}

// SKX2S returns the 2-socket Skylake platform (the 140/190 ns NUMA
// latency levels).
func SKX2S() Platform {
	return Platform{
		CPU: CPU{
			Name: "SKX2S", Cores: 10, FreqGHz: 2.2,
			L1DBytes: 32 << 10, L2Bytes: 1 << 20, L3Bytes: 13_800 << 10,
			L1Lat: 4, L2Lat: 14, L3Lat: 50,
			LFBEntries: 10, SBEntries: 56, ROB: 224, RetireWidth: 4,
			MissOverheadNs: 25,
		},
		LocalPipelineNs: 15,
		LocalDRAM: dram.Config{
			Channels: 6, BanksPerChannel: 32, ChannelBW: 8.67,
			RowBytes: 8192, Timing: dram.DDR4(),
		},
		UPI:         link.Config{PropagationNs: 24, ReqBW: 40, RspBW: 40},
		NUMAExtraNs: 0,
		RefLocalLat: 90, RefLocalBW: 52,
		RefRemoteLat: 140, RefRemoteBW: 32,
	}
}

// SKX8S returns the 8-socket Skylake platform; its most distant memory
// is the paper's 410 ns latency level.
func SKX8S() Platform {
	p := SKX2S()
	p.CPU.Name = "SKX8S"
	p.CPU.Cores = 28
	p.CPU.FreqGHz = 2.5
	p.CPU.L3Bytes = 38_500 << 10
	p.LocalPipelineNs = 8
	p.LocalDRAM.ChannelBW = 18.8
	// Multi-hop path across the 8-socket mesh: long, thin.
	p.UPI = link.Config{PropagationNs: 160, ReqBW: 8.75, RspBW: 8.75}
	p.RefLocalLat, p.RefLocalBW = 81, 109
	p.RefRemoteLat, p.RefRemoteBW = 410, 7
	return p
}

// Platforms returns all five platforms in Table 1 order.
func Platforms() []Platform {
	return []Platform{SPR2S(), EMR2S(), EMR2SPrime(), SKX2S(), SKX8S()}
}

// PlatformByName looks a platform up by CPU name.
func PlatformByName(name string) (Platform, bool) {
	for _, p := range Platforms() {
		if p.CPU.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// LocalDevice builds the platform's socket-local DRAM device.
func (p Platform) LocalDevice() mem.Device {
	return imc.New(imc.Config{Name: "Local", PipelineNs: p.LocalPipelineNs, DRAM: p.LocalDRAM})
}

// NUMADevice builds the one-hop remote-socket DRAM device.
func (p Platform) NUMADevice(seed uint64) mem.Device {
	inner := imc.New(imc.Config{Name: "Local", PipelineNs: p.LocalPipelineNs, DRAM: p.LocalDRAM})
	return topology.NewRemote("NUMA", inner, p.UPI, p.NUMAExtraNs, seed)
}

// CXLDevice builds a locally attached CXL expander.
func (p Platform) CXLDevice(prof cxl.Profile, seed uint64) mem.Device {
	return cxl.New(prof, seed)
}

// cxlRemoteExtraNs captures the measured per-device latency added by one
// NUMA hop beyond the platform's own hop cost (Table 1 "Remote" rows:
// +161/202/227/94 ns for A-D respectively).
func cxlRemoteExtraNs(name string) float64 {
	switch name {
	case "CXL-A":
		return 79
	case "CXL-B":
		return 120
	case "CXL-C":
		return 145
	default:
		return 0
	}
}

// CXLNUMACongestion parameterizes the cross-socket interference windows
// that make CXL+NUMA tail latencies pathological (Figure 8c/8d).
var CXLNUMACongestion = topology.CongestionConfig{
	PeriodNs:     25_000,
	WindowNs:     12_000,
	RefRatePerNs: 0.02,
}

// CXLNUMADevice builds a CXL expander attached to the *other* socket,
// reached through the UPI hop with load-dependent congestion.
func (p Platform) CXLNUMADevice(prof cxl.Profile, seed uint64) mem.Device {
	dev := cxl.New(prof, seed)
	congested := topology.NewCongested(prof.Name+"+cong", dev, CXLNUMACongestion)
	name := prof.Name + "+NUMA"
	return topology.NewRemote(name, congested, p.UPI, cxlRemoteExtraNs(prof.Name), seed^0x5f356495)
}

// CXLSwitchDevice builds a CXL expander behind one switch hop
// (~+100 ns each way per public data referenced in Figure 1).
func (p Platform) CXLSwitchDevice(prof cxl.Profile, seed uint64) mem.Device {
	dev := cxl.New(prof, seed)
	return topology.NewSwitched(prof.Name+"+Switch", dev, 100, 50)
}

// CXLInterleaveDevice builds an n-way hardware-interleaved set of
// identical CXL expanders (Figure 8f uses 2x CXL-D).
func (p Platform) CXLInterleaveDevice(prof cxl.Profile, n int, seed uint64) mem.Device {
	devs := make([]mem.Device, n)
	for i := range devs {
		devs[i] = cxl.New(prof, seed+uint64(i)*7919)
	}
	return topology.NewInterleave(fmt.Sprintf("%sx%d", prof.Name, n), devs, 256)
}

// Setup names one (platform, memory config) combination used in the
// paper's sweeps.
type Setup struct {
	Name     string
	Platform Platform
	// RefLatencyNs is the nominal idle latency of the setup (Table 1 /
	// §3.1), used for ordering and reporting.
	RefLatencyNs float64
	Build        func(seed uint64) mem.Device
}

// LatencySetups returns the paper's 11 {CPU} x {NUMA, CXL} combinations
// from Figure 9a, ordered by nominal latency within each platform
// family as in the paper's plot.
func LatencySetups() []Setup {
	skx2, skx8 := SKX2S(), SKX8S()
	spr, emr, emrP := SPR2S(), EMR2S(), EMR2SPrime()
	return []Setup{
		{Name: "SKX-140ns", Platform: skx2, RefLatencyNs: 140,
			Build: func(seed uint64) mem.Device { return skx2.NUMADevice(seed) }},
		{Name: "SKX-190ns", Platform: skx2, RefLatencyNs: 190,
			Build: func(seed uint64) mem.Device {
				// 190 ns achieved by lowering the uncore frequency: the
				// same NUMA path with extra fixed latency.
				p := skx2
				p.NUMAExtraNs = 50
				return p.NUMADevice(seed)
			}},
		{Name: "SPR-NUMA", Platform: spr, RefLatencyNs: 191,
			Build: func(seed uint64) mem.Device { return spr.NUMADevice(seed) }},
		{Name: "SPR-CXL-A", Platform: spr, RefLatencyNs: 214,
			Build: func(seed uint64) mem.Device { return spr.CXLDevice(cxl.ProfileA(), seed) }},
		{Name: "SPR-CXL-B", Platform: spr, RefLatencyNs: 271,
			Build: func(seed uint64) mem.Device { return spr.CXLDevice(cxl.ProfileB(), seed) }},
		{Name: "EMR-NUMA", Platform: emr, RefLatencyNs: 193,
			Build: func(seed uint64) mem.Device { return emr.NUMADevice(seed) }},
		{Name: "EMR-CXL-A", Platform: emr, RefLatencyNs: 214,
			Build: func(seed uint64) mem.Device { return emr.CXLDevice(cxl.ProfileA(), seed) }},
		{Name: "EMR-CXL-B", Platform: emr, RefLatencyNs: 271,
			Build: func(seed uint64) mem.Device { return emr.CXLDevice(cxl.ProfileB(), seed) }},
		{Name: "EMR-CXL-D", Platform: emrP, RefLatencyNs: 239,
			Build: func(seed uint64) mem.Device { return emrP.CXLDevice(cxl.ProfileD(), seed) }},
		{Name: "EMR-CXL-C", Platform: emr, RefLatencyNs: 394,
			Build: func(seed uint64) mem.Device { return emr.CXLDevice(cxl.ProfileC(), seed) }},
		{Name: "SKX-410ns", Platform: skx8, RefLatencyNs: 410,
			Build: func(seed uint64) mem.Device { return skx8.NUMADevice(seed) }},
	}
}
