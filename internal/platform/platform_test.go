package platform

import (
	"math"
	"testing"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mlc"
)

// withinPct checks |got-want|/want <= pct/100.
func withinPct(got, want, pct float64) bool {
	return math.Abs(got-want) <= want*pct/100
}

func idleCfg() mlc.Config {
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = 150_000
	return cfg
}

// TestTable1IdleLatency verifies every platform's local and remote idle
// latency against Table 1 within 10%.
func TestTable1IdleLatency(t *testing.T) {
	for _, p := range Platforms() {
		local := p.CPU.MissOverheadNs + mlc.IdleLatency(p.LocalDevice(), idleCfg())
		if !withinPct(local, p.RefLocalLat, 10) {
			t.Errorf("%s local idle latency = %.0f ns, want %.0f +-10%%", p.CPU.Name, local, p.RefLocalLat)
		}
		remote := p.CPU.MissOverheadNs + mlc.IdleLatency(p.NUMADevice(1), idleCfg())
		if !withinPct(remote, p.RefRemoteLat, 10) {
			t.Errorf("%s remote idle latency = %.0f ns, want %.0f +-10%%", p.CPU.Name, remote, p.RefRemoteLat)
		}
	}
}

// TestTable1CXLIdleLatency verifies the four CXL devices' local idle
// latencies (214/271/394/239 ns) as measured from their host platforms.
func TestTable1CXLIdleLatency(t *testing.T) {
	cases := []struct {
		prof cxl.Profile
		host Platform
		want float64
	}{
		{cxl.ProfileA(), SPR2S(), 214},
		{cxl.ProfileB(), SPR2S(), 271},
		{cxl.ProfileC(), SPR2S(), 394},
		{cxl.ProfileD(), EMR2SPrime(), 239},
	}
	for _, c := range cases {
		got := c.host.CPU.MissOverheadNs + mlc.IdleLatency(c.host.CXLDevice(c.prof, 1), idleCfg())
		if !withinPct(got, c.want, 10) {
			t.Errorf("%s idle latency = %.0f ns, want %.0f +-10%%", c.prof.Name, got, c.want)
		}
	}
}

// TestTable1CXLRemoteLatency verifies the CXL+NUMA idle latencies
// (375/473/621/333 ns).
func TestTable1CXLRemoteLatency(t *testing.T) {
	cases := []struct {
		prof cxl.Profile
		host Platform
		want float64
	}{
		{cxl.ProfileA(), SPR2S(), 375},
		{cxl.ProfileB(), SPR2S(), 473},
		{cxl.ProfileC(), SPR2S(), 621},
		{cxl.ProfileD(), EMR2SPrime(), 333},
	}
	for _, c := range cases {
		got := c.host.CPU.MissOverheadNs + mlc.IdleLatency(c.host.CXLNUMADevice(c.prof, 1), idleCfg())
		if !withinPct(got, c.want, 12) {
			t.Errorf("%s+NUMA idle latency = %.0f ns, want %.0f +-12%%", c.prof.Name, got, c.want)
		}
	}
}

func bwCfg() mlc.Config {
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = 120_000
	return cfg
}

// TestTable1LocalBandwidth verifies local read bandwidth per platform.
func TestTable1LocalBandwidth(t *testing.T) {
	for _, p := range Platforms() {
		got := mlc.Bandwidth(p.LocalDevice(), 1.0, bwCfg())
		if !withinPct(got, p.RefLocalBW, 15) {
			t.Errorf("%s local BW = %.1f GB/s, want %.0f +-15%%", p.CPU.Name, got, p.RefLocalBW)
		}
	}
}

// TestTable1CXLBandwidth verifies the CXL devices' MLC read bandwidth
// (24/22/18/52 GB/s).
func TestTable1CXLBandwidth(t *testing.T) {
	cases := []struct {
		prof cxl.Profile
		want float64
	}{
		{cxl.ProfileA(), 24},
		{cxl.ProfileB(), 22},
		{cxl.ProfileC(), 18},
		{cxl.ProfileD(), 52},
	}
	host := SPR2S()
	for _, c := range cases {
		got := mlc.Bandwidth(host.CXLDevice(c.prof, 1), 1.0, bwCfg())
		if !withinPct(got, c.want, 15) {
			t.Errorf("%s read BW = %.1f GB/s, want %.0f +-15%%", c.prof.Name, got, c.want)
		}
	}
}

// TestNUMABandwidth verifies the cross-socket bandwidth reduction.
func TestNUMABandwidth(t *testing.T) {
	p := SPR2S()
	local := mlc.Bandwidth(p.LocalDevice(), 1.0, bwCfg())
	remote := mlc.Bandwidth(p.NUMADevice(1), 1.0, bwCfg())
	if remote >= local {
		t.Fatalf("NUMA BW (%.1f) not below local (%.1f)", remote, local)
	}
	if !withinPct(remote, p.RefRemoteBW, 15) {
		t.Errorf("NUMA BW = %.1f, want %.0f +-15%%", remote, p.RefRemoteBW)
	}
}

// TestLatencySetupsOrdered sanity-checks the Figure 9a setup list.
func TestLatencySetupsOrdered(t *testing.T) {
	setups := LatencySetups()
	if len(setups) != 11 {
		t.Fatalf("got %d setups, want 11", len(setups))
	}
	for _, s := range setups {
		dev := s.Build(1)
		if dev == nil {
			t.Fatalf("%s built nil device", s.Name)
		}
		got := s.Platform.CPU.MissOverheadNs + mlc.IdleLatency(dev, idleCfg())
		if !withinPct(got, s.RefLatencyNs, 15) {
			t.Errorf("%s idle latency = %.0f, want %.0f +-15%%", s.Name, got, s.RefLatencyNs)
		}
	}
}

// TestInterleaveDoublesCXLD reproduces the Figure 8f premise: 2x CXL-D
// interleaved roughly doubles bandwidth.
func TestInterleaveDoublesCXLD(t *testing.T) {
	p := EMR2SPrime()
	one := mlc.Bandwidth(p.CXLDevice(cxl.ProfileD(), 1), 1.0, bwCfg())
	two := mlc.Bandwidth(p.CXLInterleaveDevice(cxl.ProfileD(), 2, 1), 1.0, bwCfg())
	if two < one*1.6 {
		t.Fatalf("2x CXL-D BW = %.1f, single = %.1f; want ~2x", two, one)
	}
}

// TestSwitchAddsLatency checks the Figure 1 CXL+Switch data point:
// roughly +200 ns over the local CXL latency.
func TestSwitchAddsLatency(t *testing.T) {
	p := SPR2S()
	base := mlc.IdleLatency(p.CXLDevice(cxl.ProfileA(), 1), idleCfg())
	switched := mlc.IdleLatency(p.CXLSwitchDevice(cxl.ProfileA(), 1), idleCfg())
	if d := switched - base; d < 150 || d > 280 {
		t.Fatalf("switch hop added %.0f ns, want ~200", d)
	}
}

var _ = mem.LineSize // keep mem imported for doc-adjacent constants
