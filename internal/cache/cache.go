// Package cache implements the set-associative cache model used for the
// simulated L1D/L2/LLC hierarchy. Lines carry a readiness timestamp so
// in-flight fills (demand misses and prefetches) live in the cache as
// *pending* lines: a hit on a pending line is the paper's "delayed hit",
// the mechanism behind CXL-induced cache-level stalls (§5.4).
package cache

import "github.com/moatlab/melody/internal/mem"

// Cache is one level of the hierarchy. Not safe for concurrent use.
type Cache struct {
	sets, ways int

	// Per-entry state, indexed by set*ways+way. A line's entry stores
	// the full line number (addr / LineSize) + 1, with 0 = invalid, so
	// evictions can reconstruct victim addresses.
	lines []uint64
	ready []float64 // time the line's data is available (ns)
	dirty []bool
	tick  []uint64 // LRU clock values

	clock uint64

	hits, misses uint64
}

// New builds a cache of the given total size and associativity. Size is
// rounded down to a whole number of sets. It panics if the geometry is
// degenerate.
func New(sizeBytes uint64, ways int) *Cache {
	if ways <= 0 || sizeBytes < uint64(ways)*mem.LineSize {
		panic("cache: invalid geometry")
	}
	sets := int(sizeBytes / mem.LineSize / uint64(ways))
	if sets < 1 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways}
	c.alloc()
	return c
}

func (c *Cache) alloc() {
	n := c.sets * c.ways
	c.lines = make([]uint64, n)
	c.ready = make([]float64, n)
	c.dirty = make([]bool, n)
	c.tick = make([]uint64, n)
	c.clock = 0
	c.hits, c.misses = 0, 0
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = 0
		c.ready[i] = 0
		c.dirty[i] = false
		c.tick[i] = 0
	}
	c.clock = 0
	c.hits, c.misses = 0, 0
}

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

// Hits and Misses expose lookup statistics.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

// set returns the set index for addr. The set bits are taken directly
// above the line offset; bank-style hashing is unnecessary at cache
// granularity.
func (c *Cache) set(addr uint64) int {
	return int((addr / mem.LineSize) % uint64(c.sets))
}

// Probe looks addr up and returns the entry index on a hit. It counts
// hit/miss statistics and refreshes LRU state on hits.
func (c *Cache) Probe(addr uint64) (entry int, hit bool) {
	line := addr/mem.LineSize + 1
	base := c.set(addr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			c.clock++
			c.tick[base+w] = c.clock
			c.hits++
			return base + w, true
		}
	}
	c.misses++
	return -1, false
}

// Peek is Probe without statistics or LRU updates (for prefetcher
// filtering).
func (c *Cache) Peek(addr uint64) (entry int, hit bool) {
	line := addr/mem.LineSize + 1
	base := c.set(addr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			return base + w, true
		}
	}
	return -1, false
}

// ReadyAt returns when the entry's data is available.
func (c *Cache) ReadyAt(entry int) float64 { return c.ready[entry] }

// SetReady overrides the entry's availability time.
func (c *Cache) SetReady(entry int, t float64) { c.ready[entry] = t }

// MarkDirty marks the entry's line dirty.
func (c *Cache) MarkDirty(entry int) { c.dirty[entry] = true }

// IsDirty reports whether the entry is dirty.
func (c *Cache) IsDirty(entry int) bool { return c.dirty[entry] }

// Victim holds the line evicted by an Insert.
type Victim struct {
	Addr    uint64
	Dirty   bool
	Evicted bool
}

// Insert installs addr with the given readiness time, evicting the LRU
// way of its set if needed. Inserting an already-present line refreshes
// it in place (keeping its dirty bit).
func (c *Cache) Insert(addr uint64, readyAt float64, dirty bool) Victim {
	line := addr/mem.LineSize + 1
	base := c.set(addr) * c.ways
	victimWay := 0
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		e := base + w
		if c.lines[e] == line {
			c.clock++
			c.tick[e] = c.clock
			if readyAt < c.ready[e] {
				c.ready[e] = readyAt
			}
			if dirty {
				c.dirty[e] = true
			}
			return Victim{}
		}
		if c.lines[e] == 0 {
			// Prefer invalid ways outright.
			victimWay = w
			oldest = 0
		} else if c.tick[e] < oldest {
			victimWay = w
			oldest = c.tick[e]
		}
	}
	e := base + victimWay
	var v Victim
	if c.lines[e] != 0 {
		v = Victim{Addr: (c.lines[e] - 1) * mem.LineSize, Dirty: c.dirty[e], Evicted: true}
	}
	c.clock++
	c.lines[e] = line
	c.ready[e] = readyAt
	c.dirty[e] = dirty
	c.tick[e] = c.clock
	return v
}

// Invalidate drops addr if present, returning its victim record.
func (c *Cache) Invalidate(addr uint64) Victim {
	if e, ok := c.Peek(addr); ok {
		v := Victim{Addr: addr / mem.LineSize * mem.LineSize, Dirty: c.dirty[e], Evicted: true}
		c.lines[e] = 0
		c.dirty[e] = false
		c.ready[e] = 0
		return v
	}
	return Victim{}
}
