package cache

import (
	"testing"
	"testing/quick"

	"github.com/moatlab/melody/internal/mem"
)

func TestProbeMissThenHit(t *testing.T) {
	c := New(32<<10, 8)
	if _, hit := c.Probe(0x1000); hit {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x1000, 10, false)
	e, hit := c.Probe(0x1000)
	if !hit {
		t.Fatal("miss after insert")
	}
	if c.ReadyAt(e) != 10 {
		t.Fatalf("ReadyAt = %v, want 10", c.ReadyAt(e))
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	c := New(32<<10, 8)
	c.Insert(0x1000, 0, false)
	if _, hit := c.Probe(0x103F); !hit {
		t.Fatal("offset within line missed")
	}
	if _, hit := c.Probe(0x1040); hit {
		t.Fatal("next line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Single-set cache with 2 ways: third distinct line evicts the LRU.
	c := New(2*mem.LineSize, 2)
	setStride := uint64(c.Sets()) * mem.LineSize
	a, b, d := uint64(0), setStride, 2*setStride
	c.Insert(a, 0, false)
	c.Insert(b, 0, false)
	c.Probe(a) // make b the LRU
	v := c.Insert(d, 0, false)
	if !v.Evicted || v.Addr != b {
		t.Fatalf("evicted %+v, want line b (%#x)", v, b)
	}
	if _, hit := c.Peek(a); !hit {
		t.Fatal("recently used line evicted")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(2*mem.LineSize, 2)
	setStride := uint64(c.Sets()) * mem.LineSize
	c.Insert(0, 0, true)
	c.Insert(setStride, 0, false)
	v := c.Insert(2*setStride, 0, false)
	if !v.Evicted || !v.Dirty {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := New(32<<10, 8)
	c.Insert(0x2000, 100, false)
	v := c.Insert(0x2000, 50, true)
	if v.Evicted {
		t.Fatal("re-insert evicted something")
	}
	e, _ := c.Peek(0x2000)
	if c.ReadyAt(e) != 50 {
		t.Fatalf("ReadyAt not lowered: %v", c.ReadyAt(e))
	}
	if !c.IsDirty(e) {
		t.Fatal("dirty bit lost on refresh")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(32<<10, 8)
	c.Insert(0x3000, 0, true)
	v := c.Invalidate(0x3000)
	if !v.Evicted || !v.Dirty {
		t.Fatalf("Invalidate = %+v", v)
	}
	if _, hit := c.Peek(0x3000); hit {
		t.Fatal("line survives invalidate")
	}
	if v := c.Invalidate(0x9999000); v.Evicted {
		t.Fatal("invalidate of absent line reported eviction")
	}
}

func TestResetClears(t *testing.T) {
	c := New(32<<10, 8)
	for i := uint64(0); i < 100; i++ {
		c.Insert(i*mem.LineSize, 0, true)
	}
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("stats survived Reset")
	}
	if _, hit := c.Probe(0); hit {
		t.Fatal("line survived Reset")
	}
}

func TestCapacityProperty(t *testing.T) {
	// Inserting exactly capacity distinct lines with perfect set balance
	// must keep them all resident.
	c := New(16<<10, 4) // 64 sets * 4 ways = 256 lines
	n := uint64(c.Sets() * c.Ways())
	for i := uint64(0); i < n; i++ {
		c.Insert(i*mem.LineSize, 0, false)
	}
	for i := uint64(0); i < n; i++ {
		if _, hit := c.Peek(i * mem.LineSize); !hit {
			t.Fatalf("line %d evicted below capacity", i)
		}
	}
}

func TestWorkingSetBeyondCapacityMisses(t *testing.T) {
	c := New(16<<10, 4)
	lines := uint64(c.Sets()*c.Ways()) * 4 // 4x capacity
	// Two sweeps: second sweep over 4x capacity should still miss a lot.
	for sweep := 0; sweep < 2; sweep++ {
		for i := uint64(0); i < lines; i++ {
			if _, hit := c.Probe(i * mem.LineSize); !hit {
				c.Insert(i*mem.LineSize, 0, false)
			}
		}
	}
	missRate := float64(c.Misses()) / float64(c.Hits()+c.Misses())
	if missRate < 0.9 {
		t.Fatalf("streaming over 4x capacity: miss rate %v, want ~1", missRate)
	}
}

func TestPanicOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate geometry accepted")
		}
	}()
	New(64, 2) // 64 bytes with 2 ways: under one line per way
}

func TestProbeInsertConsistencyProperty(t *testing.T) {
	f := func(addrsRaw []uint32) bool {
		c := New(8<<10, 4)
		present := map[uint64]bool{}
		order := []uint64{}
		for _, a := range addrsRaw {
			addr := uint64(a) &^ (mem.LineSize - 1)
			v := c.Insert(addr, 0, false)
			if v.Evicted {
				delete(present, v.Addr)
			}
			if !present[addr] {
				present[addr] = true
				order = append(order, addr)
			}
		}
		// Everything the model says is present must Peek-hit.
		for addr := range present {
			if _, hit := c.Peek(addr); !hit {
				return false
			}
		}
		_ = order
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
