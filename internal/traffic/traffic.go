// Package traffic simulates concurrent closed-loop memory threads
// sharing a device — the substrate for the MLC-style loaded-latency
// harness and the MIO tail-latency microbenchmark. Threads are state
// machines woken in timestamp order; contention emerges from the shared
// time-driven device.
package traffic

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/sim"
)

// Thread is one simulated hardware thread. Step performs the thread's
// next burst of work starting at now and returns when it should run
// again. Returning a non-finite or non-increasing wake time stops the
// thread.
type Thread interface {
	Step(now float64) (nextWake float64)
}

// Run interleaves threads in wake-time order until the simulated clock
// passes untilNs. It returns the final clock value.
func Run(threads []Thread, untilNs float64) float64 {
	n := len(threads)
	wake := make([]float64, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	now := 0.0
	for {
		// Pick the earliest-awake live thread (n is small: <= 64).
		best := -1
		for i := 0; i < n; i++ {
			if alive[i] && (best < 0 || wake[i] < wake[best]) {
				best = i
			}
		}
		if best < 0 || wake[best] > untilNs {
			return now
		}
		now = wake[best]
		next := threads[best].Step(now)
		if next <= now {
			alive[best] = false
			continue
		}
		wake[best] = next
	}
}

// PointerChaser performs dependent loads: each access's completion gates
// the next. It optionally records per-access latency (averaged over
// BatchN accesses, mirroring MIO's rdtsc-amortization).
type PointerChaser struct {
	Dev        mem.Device
	WorkingSet uint64  // bytes; addresses are drawn line-aligned inside it
	Base       uint64  // base address of the working set
	ComputeNs  float64 // delay between dependent accesses
	BatchN     int     // average every BatchN accesses (0 or 1 = raw)
	Record     bool

	Latencies []float64
	Count     uint64

	rng      *sim.Rand
	batchSum float64
	batchCnt int
}

// NewPointerChaser builds a chaser over a working set.
func NewPointerChaser(dev mem.Device, workingSet uint64, seed uint64) *PointerChaser {
	return &PointerChaser{Dev: dev, WorkingSet: workingSet, rng: sim.NewRand(seed)}
}

// Step implements Thread.
func (p *PointerChaser) Step(now float64) float64 {
	lines := p.WorkingSet / mem.LineSize
	addr := p.Base + p.rng.Uint64n(lines)*mem.LineSize
	done := p.Dev.Access(now, addr, mem.DemandRead)
	lat := done - now
	p.Count++
	if p.Record {
		if p.BatchN > 1 {
			p.batchSum += lat
			p.batchCnt++
			if p.batchCnt == p.BatchN {
				p.Latencies = append(p.Latencies, p.batchSum/float64(p.BatchN))
				p.batchSum, p.batchCnt = 0, 0
			}
		} else {
			p.Latencies = append(p.Latencies, lat)
		}
	}
	return done + p.ComputeNs
}

// LoadGenerator issues independent (non-dependent) reads and/or writes,
// keeping up to MLP requests in flight like an out-of-order core's fill
// buffers — the model of MLC's traffic threads with injected compute
// delays.
type LoadGenerator struct {
	Dev        mem.Device
	WorkingSet uint64
	Base       uint64
	ReadFrac   float64 // fraction of requests that are reads
	MLP        int     // maximum outstanding requests
	DelayNs    float64 // injected delay between accesses ("0-20K cycles")
	Sequential bool    // streaming (row-friendly) vs random addresses

	Bytes  float64 // payload bytes moved (64 per request)
	Reads  uint64
	Writes uint64

	rng      *sim.Rand
	cursor   uint64
	inflight *sim.TimeHeap
}

// NewLoadGenerator builds a generator with sane defaults (MLP 4, random).
func NewLoadGenerator(dev mem.Device, workingSet uint64, readFrac float64, seed uint64) *LoadGenerator {
	return &LoadGenerator{
		Dev: dev, WorkingSet: workingSet, ReadFrac: readFrac,
		MLP: 4, rng: sim.NewRand(seed), inflight: &sim.TimeHeap{},
	}
}

// issue sends one request at now.
func (g *LoadGenerator) issue(now float64) {
	lines := g.WorkingSet / mem.LineSize
	var addr uint64
	if g.Sequential {
		addr = g.Base + (g.cursor%lines)*mem.LineSize
		g.cursor++
	} else {
		addr = g.Base + g.rng.Uint64n(lines)*mem.LineSize
	}
	// Randomized read/write choice: a deterministic repeating pattern
	// would correlate with channel interleaving (e.g. every 4th line on
	// a fixed channel), creating artificial single-direction channels.
	kind := mem.Write
	if g.rng.Bool(g.ReadFrac) {
		kind = mem.DemandRead
	}
	done := g.Dev.Access(now, addr, kind)
	if kind == mem.Write {
		g.Writes++
	} else {
		g.Reads++
	}
	g.Bytes += mem.LineSize
	g.inflight.Push(done)
}

// Step implements Thread: retire completions due by now, refill the
// in-flight window, and wake when the next slot frees (or after the
// injected delay, whichever is later).
func (g *LoadGenerator) Step(now float64) float64 {
	mlp := g.MLP
	if mlp < 1 {
		mlp = 1
	}
	for g.inflight.Len() > 0 && g.inflight.Min() <= now {
		g.inflight.PopMin()
	}
	toIssue := mlp - g.inflight.Len()
	if g.DelayNs > 0 && toIssue > 1 {
		// With injected compute delay the thread paces one access per
		// delay interval, mirroring MLC's load-delay-load loop.
		toIssue = 1
	}
	for i := 0; i < toIssue; i++ {
		g.issue(now)
	}
	wake := now + g.DelayNs
	if g.inflight.Len() >= mlp && g.inflight.Min() > wake {
		wake = g.inflight.Min()
	}
	if wake <= now {
		wake = g.inflight.Min()
	}
	return wake
}
