package traffic

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
)

type countDev struct {
	lat    float64
	reads  int
	writes int
	lastT  float64
}

func (d *countDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	if kind == mem.Write {
		d.writes++
	} else {
		d.reads++
	}
	d.lastT = now
	return now + d.lat
}
func (d *countDev) Name() string           { return "count" }
func (d *countDev) Reset()                 { d.reads, d.writes = 0, 0 }
func (d *countDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func TestRunStopsAtDeadline(t *testing.T) {
	d := &countDev{lat: 50}
	pc := NewPointerChaser(d, 1<<20, 1)
	end := Run([]Thread{pc}, 10_000)
	if end > 10_050 {
		t.Fatalf("ran past deadline: %v", end)
	}
	if pc.Count < 100 {
		t.Fatalf("chaser made only %d accesses", pc.Count)
	}
}

func TestRunStopsDeadThreads(t *testing.T) {
	dead := ThreadFunc(func(now float64) float64 { return now }) // never re-schedules
	end := Run([]Thread{dead}, 1000)
	if end != 0 {
		t.Fatalf("dead thread advanced the clock to %v", end)
	}
}

// ThreadFunc adapts a function to the Thread interface for tests.
type ThreadFunc func(now float64) float64

func (f ThreadFunc) Step(now float64) float64 { return f(now) }

func TestPointerChaserDependence(t *testing.T) {
	d := &countDev{lat: 100}
	pc := NewPointerChaser(d, 1<<20, 1)
	pc.Record = true
	Run([]Thread{pc}, 5_000)
	// Dependent chase: exactly one access per latency period.
	want := 5000 / 100
	if int(pc.Count) < want-2 || int(pc.Count) > want+2 {
		t.Fatalf("chaser made %d accesses, want ~%d", pc.Count, want)
	}
	for _, l := range pc.Latencies {
		if l != 100 {
			t.Fatalf("latency sample %v, want 100", l)
		}
	}
}

func TestPointerChaserComputeDelay(t *testing.T) {
	d := &countDev{lat: 100}
	pc := NewPointerChaser(d, 1<<20, 1)
	pc.ComputeNs = 100
	Run([]Thread{pc}, 5_000)
	want := 5000 / 200
	if int(pc.Count) < want-2 || int(pc.Count) > want+2 {
		t.Fatalf("with compute delay: %d accesses, want ~%d", pc.Count, want)
	}
}

func TestLoadGeneratorMLP(t *testing.T) {
	// With MLP m and latency L, steady throughput is m/L.
	for _, mlp := range []int{1, 4, 16} {
		d := &countDev{lat: 100}
		g := NewLoadGenerator(d, 1<<20, 1.0, 1)
		g.MLP = mlp
		Run([]Thread{g}, 10_000)
		want := float64(mlp) * 10_000 / 100
		got := float64(g.Reads)
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("MLP %d: %v accesses, want ~%v", mlp, got, want)
		}
	}
}

func TestLoadGeneratorReadFrac(t *testing.T) {
	d := &countDev{lat: 20}
	g := NewLoadGenerator(d, 1<<20, 0.75, 1)
	g.MLP = 8
	Run([]Thread{g}, 50_000)
	frac := float64(g.Reads) / float64(g.Reads+g.Writes)
	if frac < 0.7 || frac > 0.8 {
		t.Fatalf("read fraction = %v, want ~0.75", frac)
	}
}

func TestLoadGeneratorDelayPacing(t *testing.T) {
	d := &countDev{lat: 10}
	g := NewLoadGenerator(d, 1<<20, 1.0, 1)
	g.MLP = 8
	g.DelayNs = 500
	Run([]Thread{g}, 50_000)
	// Paced at ~1 per 500ns.
	if g.Reads > 120 {
		t.Fatalf("delay pacing failed: %d accesses in 50us", g.Reads)
	}
}

func TestLoadGeneratorSequential(t *testing.T) {
	d := &countDev{lat: 10}
	g := NewLoadGenerator(d, 4096, 1.0, 1)
	g.Sequential = true
	g.MLP = 1
	Run([]Thread{g}, 1_000)
	// 4096-byte working set = 64 lines; the cursor must wrap without
	// leaving the range (Access would have been called with huge addr).
	if g.Reads < 50 {
		t.Fatalf("sequential generator made %d accesses", g.Reads)
	}
}
