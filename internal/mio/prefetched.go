package mio

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/stats"
)

// PrefetchedConfig controls the prefetcher-on measurement (Figure 6):
// a strided chase whose upcoming lines a hardware-prefetcher model
// fetches ahead, so the observed demand latency is near the cache-hit
// cost when prefetches are timely and spikes when the device delays
// them — "prefetching is insufficient to hide CXL-induced latencies".
type PrefetchedConfig struct {
	StrideBytes uint64  // access stride (line-sized by default)
	Distance    int     // lines fetched ahead of demand
	HitNs       float64 // cache-hit latency observed when timely
	GapNs       float64 // compute time between accesses
	Samples     int
	Chasers     int // co-located strided chasers
	Seed        uint64
}

// DefaultPrefetchedConfig mirrors the paper's setting.
func DefaultPrefetchedConfig() PrefetchedConfig {
	return PrefetchedConfig{
		StrideBytes: mem.LineSize,
		Distance:    8,
		HitNs:       15,
		GapNs:       20,
		Samples:     60_000,
		Chasers:     1,
		Seed:        1,
	}
}

// prefetchState tracks in-flight prefetch completions for one chaser.
type prefetchState struct {
	base      uint64
	cursor    uint64
	issued    uint64 // next line index to prefetch
	doneAt    map[uint64]float64
	latencies []float64
}

// RunPrefetched measures the effective demand latency distribution of
// strided chasers with prefetching, on dev (Reset first).
func RunPrefetched(dev mem.Device, cfg PrefetchedConfig) Result {
	dev.Reset()
	if cfg.StrideBytes == 0 {
		cfg.StrideBytes = mem.LineSize
	}
	if cfg.Chasers < 1 {
		cfg.Chasers = 1
	}
	chasers := make([]*prefetchState, cfg.Chasers)
	for i := range chasers {
		chasers[i] = &prefetchState{
			base:   uint64(i) << 33,
			doneAt: map[uint64]float64{},
		}
	}
	now := 0.0
	perChaser := cfg.Samples / cfg.Chasers
	for s := 0; s < perChaser; s++ {
		for _, c := range chasers {
			// Prefetch ahead of the demand cursor.
			for c.issued < c.cursor+uint64(cfg.Distance) {
				addr := c.base + c.issued*cfg.StrideBytes
				c.doneAt[c.issued] = dev.Access(now, addr, mem.PrefetchL2)
				c.issued++
			}
			// Demand access: timely prefetch means a cache hit; a late
			// one stalls until the fill lands.
			lat := cfg.HitNs
			if done, ok := c.doneAt[c.cursor]; ok {
				if wait := done - now; wait > lat {
					lat = wait
				}
				delete(c.doneAt, c.cursor)
			} else {
				done := dev.Access(now, c.base+c.cursor*cfg.StrideBytes, mem.DemandRead)
				lat = done - now
			}
			c.latencies = append(c.latencies, lat)
			c.cursor++
			now += lat + cfg.GapNs
		}
	}
	fg := chasers[0].latencies
	return Result{
		Latencies: fg,
		Summary:   stats.Summarize(fg),
	}
}
