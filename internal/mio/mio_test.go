package mio

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
)

// spikyDev has a base latency plus periodic latency spikes.
type spikyDev struct {
	base   float64
	period float64
	spike  float64
}

func (d *spikyDev) Access(now float64, addr uint64, kind mem.Kind) float64 {
	lat := d.base
	if d.period > 0 {
		into := now - float64(uint64(now/d.period))*d.period
		if into < 200 { // 200ns spike window each period
			lat += d.spike
		}
	}
	return now + lat
}
func (d *spikyDev) Name() string           { return "spiky" }
func (d *spikyDev) Reset()                 {}
func (d *spikyDev) Stats() mem.DeviceStats { return mem.DeviceStats{} }

func TestRunRecordsLatencies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationNs = 50_000
	res := Run(&spikyDev{base: 200}, cfg)
	if len(res.Latencies) < 100 {
		t.Fatalf("only %d samples", len(res.Latencies))
	}
	if p := res.Percentile(50); p < 199 || p > 201 {
		t.Fatalf("p50 = %v, want ~200", p)
	}
	if res.BandwidthGBs <= 0 {
		t.Fatal("no bandwidth reported")
	}
}

func TestTailGapDetectsSpikes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationNs = 400_000
	stable := Run(&spikyDev{base: 200}, cfg)
	spiky := Run(&spikyDev{base: 200, period: 20_000, spike: 800}, cfg)
	if stable.TailGap() > 5 {
		t.Fatalf("stable device tail gap = %v", stable.TailGap())
	}
	if spiky.TailGap() < 300 {
		t.Fatalf("spiky device tail gap = %v, want large", spiky.TailGap())
	}
}

func TestBatchNAveraging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationNs = 50_000
	cfg.BatchN = 8
	res := Run(&spikyDev{base: 150}, cfg)
	raw := Run(&spikyDev{base: 150}, DefaultConfig())
	if len(res.Latencies) >= len(raw.Latencies) {
		t.Fatal("batched run should emit fewer samples")
	}
	if p := res.Percentile(50); p < 149 || p > 151 {
		t.Fatalf("batched p50 = %v", p)
	}
}

func TestNoiseThreadsAddBandwidth(t *testing.T) {
	quiet := DefaultConfig()
	quiet.DurationNs = 50_000
	noisy := quiet
	noisy.Noise = NoiseRead
	noisy.NoiseThreads = 8
	d := &spikyDev{base: 100}
	bwQuiet := Run(d, quiet).BandwidthGBs
	bwNoisy := Run(d, noisy).BandwidthGBs
	if bwNoisy <= bwQuiet*2 {
		t.Fatalf("noise threads added no bandwidth: %v vs %v", bwQuiet, bwNoisy)
	}
}

func TestRunPrefetchedHidesLatency(t *testing.T) {
	cfg := DefaultPrefetchedConfig()
	cfg.Samples = 5_000
	res := RunPrefetched(&spikyDev{base: 300}, cfg)
	// Timely prefetches: observed p50 should be the cache-hit cost, far
	// below the device's 300ns.
	if p := res.Percentile(50); p > cfg.HitNs*1.5 {
		t.Fatalf("prefetched p50 = %v, want ~%v", p, cfg.HitNs)
	}
}

func TestRunPrefetchedLeaksSpikes(t *testing.T) {
	cfg := DefaultPrefetchedConfig()
	cfg.Samples = 30_000
	res := RunPrefetched(&spikyDev{base: 300, period: 30_000, spike: 2_000}, cfg)
	if res.Summary.Max < 500 {
		t.Fatalf("prefetching hid a 2us device spike entirely: max %v", res.Summary.Max)
	}
}
