// Package mio reimplements the paper's custom microbenchmark for
// cacheline-level latency distributions: a foreground pointer chase over
// a working set larger than the LLC, optionally batched every N
// operations (amortizing rdtsc in the original), co-located with other
// pointer chasers and/or bandwidth-generating noise threads. It backs
// Figures 3b, 3c, 4, 6, and 7c.
package mio

import (
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/stats"
	"github.com/moatlab/melody/internal/traffic"
)

// NoiseKind selects the background-traffic flavour.
type NoiseKind uint8

const (
	// NoiseNone runs only pointer chasers.
	NoiseNone NoiseKind = iota
	// NoiseRead runs read-only bandwidth threads (Figure 3c).
	NoiseRead
	// NoiseReadWrite runs AVX-style mixed read/write streams (Figure 4).
	NoiseReadWrite
)

// Config controls one MIO measurement.
type Config struct {
	WorkingSet uint64  // per-thread working set (must exceed the LLC)
	DurationNs float64 // simulated measurement time
	BatchN     int     // average every N chases (1 = raw samples)

	ChaseThreads int // co-located pointer chasers incl. the foreground

	Noise        NoiseKind
	NoiseThreads int
	NoiseMLP     int
	NoiseDelayNs float64 // pacing so noise does not saturate the device

	Seed uint64
}

// DefaultConfig returns a single-threaded raw-sample measurement.
func DefaultConfig() Config {
	return Config{
		WorkingSet:   256 << 20,
		DurationNs:   400_000,
		BatchN:       1,
		ChaseThreads: 1,
		NoiseMLP:     8,
		Seed:         1,
	}
}

// Result is one measurement outcome.
type Result struct {
	// Latencies holds the foreground thread's (possibly batched)
	// latency samples in ns.
	Latencies []float64
	// BandwidthGBs is the aggregate payload bandwidth during the run.
	BandwidthGBs float64
	// Summary of the latency distribution.
	Summary stats.Summary
}

// Percentile returns the p-th percentile of the sampled latencies.
func (r Result) Percentile(p float64) float64 {
	return stats.Percentile(r.Latencies, p)
}

// TailGap returns p99.9 - p50, the paper's tail-instability metric.
func (r Result) TailGap() float64 {
	ps := stats.Percentiles(r.Latencies, 50, 99.9)
	return ps[1] - ps[0]
}

// Run executes the measurement on dev (Reset first).
func Run(dev mem.Device, cfg Config) Result {
	dev.Reset()
	if cfg.ChaseThreads < 1 {
		cfg.ChaseThreads = 1
	}

	var threads []traffic.Thread
	fg := traffic.NewPointerChaser(dev, cfg.WorkingSet, cfg.Seed)
	fg.Record = true
	fg.BatchN = cfg.BatchN
	threads = append(threads, fg)

	chasers := []*traffic.PointerChaser{fg}
	for i := 1; i < cfg.ChaseThreads; i++ {
		pc := traffic.NewPointerChaser(dev, cfg.WorkingSet, cfg.Seed+uint64(i)*97)
		pc.Base = uint64(i) * cfg.WorkingSet
		threads = append(threads, pc)
		chasers = append(chasers, pc)
	}

	var gens []*traffic.LoadGenerator
	if cfg.Noise != NoiseNone {
		readFrac := 1.0
		if cfg.Noise == NoiseReadWrite {
			readFrac = 0.5
		}
		for i := 0; i < cfg.NoiseThreads; i++ {
			g := traffic.NewLoadGenerator(dev, cfg.WorkingSet, readFrac, cfg.Seed+uint64(i)*131+7)
			g.Base = uint64(cfg.ChaseThreads+i) * cfg.WorkingSet
			g.MLP = cfg.NoiseMLP
			g.Sequential = true // AVX-style streaming noise
			g.DelayNs = cfg.NoiseDelayNs
			gens = append(gens, g)
			threads = append(threads, g)
		}
	}

	end := traffic.Run(threads, cfg.DurationNs)

	bytes := 0.0
	for _, pc := range chasers {
		bytes += float64(pc.Count) * mem.LineSize
	}
	for _, g := range gens {
		bytes += g.Bytes
	}
	bw := 0.0
	if end > 0 {
		bw = bytes / end
	}
	return Result{
		Latencies:    fg.Latencies,
		BandwidthGBs: bw,
		Summary:      stats.Summarize(fg.Latencies),
	}
}
