package prefetch

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
)

func TestSequentialStreamDetected(t *testing.T) {
	s := New(L1Config())
	var got []uint64
	base := uint64(1 << 20)
	for i := uint64(0); i < 8; i++ {
		got = s.Observe(base+i*mem.LineSize, got[:0])
		if len(got) > 0 {
			// Proposals must be ahead of the access, stride +1.
			for _, p := range got {
				if p <= base+i*mem.LineSize {
					t.Fatalf("proposal %#x not ahead of access %#x", p, base+i*mem.LineSize)
				}
			}
			return
		}
	}
	t.Fatal("sequential stream never triggered prefetch")
}

func TestBackwardStream(t *testing.T) {
	s := New(L1Config())
	var got []uint64
	base := uint64(1 << 20)
	for i := uint64(0); i < 8; i++ {
		got = s.Observe(base-i*mem.LineSize, got[:0])
		if len(got) > 0 {
			for _, p := range got {
				if p >= base-i*mem.LineSize {
					t.Fatalf("backward proposal %#x not behind access", p)
				}
			}
			return
		}
	}
	t.Fatal("backward stream never triggered prefetch")
}

func TestStride2Stream(t *testing.T) {
	s := New(L2Config())
	var got []uint64
	base := uint64(1 << 21)
	fired := false
	for i := uint64(0); i < 10; i++ {
		got = s.Observe(base+i*2*mem.LineSize, got[:0])
		if len(got) > 0 {
			fired = true
			if (got[0]-base)/mem.LineSize%2 != 0 {
				t.Fatalf("stride-2 proposal off-stride: %#x", got[0])
			}
		}
	}
	if !fired {
		t.Fatal("stride-2 stream never triggered")
	}
}

func TestRandomAccessesQuiet(t *testing.T) {
	s := New(L1Config())
	var got []uint64
	// Random-ish addresses in distinct pages: no stable stride.
	addrs := []uint64{0x10000, 0x5A000, 0x23000, 0x81000, 0x4C000, 0x99000, 0x17000}
	total := 0
	for _, a := range addrs {
		got = s.Observe(a, got[:0])
		total += len(got)
	}
	if total != 0 {
		t.Fatalf("random stream produced %d proposals", total)
	}
}

func TestProposalsDoNotRepeat(t *testing.T) {
	s := New(L1Config())
	seen := map[uint64]int{}
	var buf []uint64
	base := uint64(1 << 22)
	for i := uint64(0); i < 64; i++ {
		buf = s.Observe(base+i*mem.LineSize, buf[:0])
		for _, p := range buf {
			seen[p]++
			if seen[p] > 1 {
				t.Fatalf("line %#x proposed %d times", p, seen[p])
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no proposals at all")
	}
}

func TestResetForgets(t *testing.T) {
	s := New(L1Config())
	var buf []uint64
	base := uint64(1 << 20)
	for i := uint64(0); i < 8; i++ {
		buf = s.Observe(base+i*mem.LineSize, buf[:0])
	}
	s.Reset()
	if s.Observed() != 0 {
		t.Fatal("stats survive Reset")
	}
	buf = s.Observe(base+8*mem.LineSize, buf[:0])
	if len(buf) != 0 {
		t.Fatal("proposals fired immediately after Reset (no retraining)")
	}
}
