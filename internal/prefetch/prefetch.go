// Package prefetch implements the hardware-prefetcher models: stream
// detectors that watch an access stream at page granularity and propose
// lines to fetch ahead. The core model instantiates one as the L1
// prefetcher (short distance, trained on demand loads) and one as the
// L2 streamer (long distance, trained on L2 traffic), and enforces the
// L2 engine's in-flight budget — the resource whose exhaustion under
// long CXL latencies costs coverage (paper §5.4, Figures 12 and 13).
package prefetch

import "github.com/moatlab/melody/internal/mem"

const pageBytes = 4096

// Config sizes one prefetch engine.
type Config struct {
	// Degree is how many lines are proposed per trigger.
	Degree int
	// Distance is how many lines ahead of the trigger the proposals
	// run. Larger distances tolerate more latency but need accuracy.
	Distance int
	// TableEntries is the number of concurrently tracked streams.
	TableEntries int
	// MinConfidence is how many consecutive same-stride accesses a
	// stream needs before proposals start.
	MinConfidence int
}

// L1Config returns the L1 stream prefetcher shape: aggressive trigger,
// short reach.
func L1Config() Config {
	return Config{Degree: 2, Distance: 4, TableEntries: 16, MinConfidence: 1}
}

// L2Config returns the L2 streamer shape: long reach, more streams.
func L2Config() Config {
	return Config{Degree: 4, Distance: 32, TableEntries: 64, MinConfidence: 1}
}

type entry struct {
	page         uint64 // page number + 1; 0 = empty
	lastLine     int32  // line index within page of last access
	stride       int32
	confidence   int32
	lastProposed int64 // absolute line number most recently proposed
}

// Streamer is one prefetch engine. Not safe for concurrent use.
type Streamer struct {
	cfg     Config
	entries []entry

	observed uint64
	trained  uint64
}

// New builds a Streamer.
func New(cfg Config) *Streamer {
	if cfg.TableEntries <= 0 || cfg.Degree <= 0 {
		panic("prefetch: invalid config")
	}
	return &Streamer{cfg: cfg, entries: make([]entry, cfg.TableEntries)}
}

// Reset clears all stream state.
func (s *Streamer) Reset() {
	for i := range s.entries {
		s.entries[i] = entry{}
	}
	s.observed, s.trained = 0, 0
}

// Observed and Trained expose statistics.
func (s *Streamer) Observed() uint64 { return s.observed }
func (s *Streamer) Trained() uint64  { return s.trained }

// Observe feeds one access into the detector and appends proposed
// prefetch addresses to buf, returning the extended slice. Proposals
// are line-aligned and may cross page boundaries (modern streamers
// re-train quickly across pages; crossing keeps streams hot).
func (s *Streamer) Observe(addr uint64, buf []uint64) []uint64 {
	s.observed++
	page := addr/pageBytes + 1
	lineInPage := int32((addr % pageBytes) / mem.LineSize)
	absLine := int64(addr / mem.LineSize)

	slot := &s.entries[(page-1)%uint64(len(s.entries))]
	if slot.page != page {
		// New stream (or conflict): start tracking, no proposals yet.
		*slot = entry{page: page, lastLine: lineInPage, stride: 0, confidence: 0}
		return buf
	}

	stride := lineInPage - slot.lastLine
	if stride == 0 {
		return buf // same line; ignore
	}
	if stride == slot.stride {
		slot.confidence++
	} else {
		slot.stride = stride
		slot.confidence = 0
	}
	slot.lastLine = lineInPage

	if slot.confidence < int32(s.cfg.MinConfidence) {
		return buf
	}
	s.trained++

	// Propose Degree lines, starting past whatever was already
	// proposed, capped at Distance ahead of the current access.
	st := int64(slot.stride)
	start := absLine + st
	if slot.lastProposed != 0 {
		next := slot.lastProposed + st
		// Only advance in the stream direction.
		if (st > 0 && next > start) || (st < 0 && next < start) {
			start = next
		}
	}
	limit := absLine + int64(s.cfg.Distance)*st
	for i := 0; i < s.cfg.Degree; i++ {
		line := start + int64(i)*st
		if st > 0 && line > limit {
			break
		}
		if st < 0 && line < limit {
			break
		}
		if line < 0 {
			break
		}
		buf = append(buf, uint64(line)*mem.LineSize)
		slot.lastProposed = line
	}
	return buf
}
