// Package vm provides the simulated address space workloads allocate
// from: a bump arena with named objects. Object identity is what the
// Spa placement use case (§5.7) operates on — relocating a hot object
// means binding its address range to a different device via
// topology.Placement, exactly like the paper's Pin+addr2line workflow
// identified 605.mcf's two 2 GB arrays.
package vm

import "fmt"

const pageSize = 4096

// Object is a named allocation in the simulated address space.
type Object struct {
	Name       string
	Base, Size uint64
}

// Addr returns the address of byte off within the object. It panics on
// out-of-range offsets to catch workload bugs early.
func (o Object) Addr(off uint64) uint64 {
	if off >= o.Size {
		panic(fmt.Sprintf("vm: offset %d out of object %q (size %d)", off, o.Name, o.Size))
	}
	return o.Base + off
}

// Contains reports whether addr falls inside the object.
func (o Object) Contains(addr uint64) bool {
	return addr >= o.Base && addr < o.Base+o.Size
}

// Arena is a bump allocator over a simulated address range. The zero
// value is not usable; call New.
type Arena struct {
	next    uint64
	objects []Object
}

// New returns an arena starting at base (page-aligned upward).
func New(base uint64) *Arena {
	return &Arena{next: alignUp(base)}
}

func alignUp(v uint64) uint64 {
	return (v + pageSize - 1) &^ (pageSize - 1)
}

// Alloc reserves size bytes under the given name and returns the
// object. Allocations are page-aligned with a guard page between them.
func (a *Arena) Alloc(name string, size uint64) Object {
	if size == 0 {
		panic("vm: zero-size allocation")
	}
	o := Object{Name: name, Base: a.next, Size: size}
	a.objects = append(a.objects, o)
	a.next = alignUp(a.next+size) + pageSize
	return o
}

// Objects returns all allocations in order.
func (a *Arena) Objects() []Object { return a.objects }

// Lookup finds the object containing addr.
func (a *Arena) Lookup(addr uint64) (Object, bool) {
	for _, o := range a.objects {
		if o.Contains(addr) {
			return o, true
		}
	}
	return Object{}, false
}

// ByName finds an object by name.
func (a *Arena) ByName(name string) (Object, bool) {
	for _, o := range a.objects {
		if o.Name == name {
			return o, true
		}
	}
	return Object{}, false
}
