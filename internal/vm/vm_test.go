package vm

import "testing"

func TestAllocDisjoint(t *testing.T) {
	a := New(1 << 30)
	x := a.Alloc("x", 1000)
	y := a.Alloc("y", 5000)
	if x.Base+x.Size > y.Base {
		t.Fatalf("objects overlap: %+v %+v", x, y)
	}
	if x.Base%4096 != 0 || y.Base%4096 != 0 {
		t.Fatal("objects not page-aligned")
	}
}

func TestAddrBounds(t *testing.T) {
	a := New(0)
	o := a.Alloc("o", 100)
	if o.Addr(0) != o.Base || o.Addr(99) != o.Base+99 {
		t.Fatal("Addr arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Addr did not panic")
		}
	}()
	o.Addr(100)
}

func TestLookup(t *testing.T) {
	a := New(1 << 20)
	x := a.Alloc("x", 8192)
	y := a.Alloc("y", 8192)
	if got, ok := a.Lookup(x.Addr(100)); !ok || got.Name != "x" {
		t.Fatalf("Lookup in x = %v %v", got, ok)
	}
	if got, ok := a.Lookup(y.Addr(0)); !ok || got.Name != "y" {
		t.Fatalf("Lookup in y = %v %v", got, ok)
	}
	if _, ok := a.Lookup(5); ok {
		t.Fatal("Lookup below arena matched")
	}
}

func TestByName(t *testing.T) {
	a := New(0)
	a.Alloc("nodes", 1<<20)
	a.Alloc("edges", 1<<20)
	if o, ok := a.ByName("edges"); !ok || o.Size != 1<<20 {
		t.Fatalf("ByName = %v %v", o, ok)
	}
	if _, ok := a.ByName("missing"); ok {
		t.Fatal("ByName matched missing object")
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size Alloc did not panic")
		}
	}()
	New(0).Alloc("bad", 0)
}
