package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

const (
	tpHeader  = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tpTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpSpanID  = "00f067aa0ba902b7"
)

// doGet issues a GET with the given headers and returns the response
// (body drained and closed).
func doGet(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTraceparentContinuesTrace: a well-formed incoming traceparent is
// honored — the request's root span joins the caller's trace, records
// the remote span as parent, and the trace id is echoed as X-Trace-Id.
func TestTraceparentContinuesTrace(t *testing.T) {
	s, ts, _ := newTestServer(t)
	resp := doGet(t, ts.URL+"/healthz", map[string]string{"traceparent": tpHeader})
	if got := resp.Header.Get("X-Trace-Id"); got != tpTraceID {
		t.Fatalf("X-Trace-Id = %q, want %q", got, tpTraceID)
	}
	sum, spans, ok := s.TraceStore().Get(tpTraceID)
	if !ok {
		t.Fatal("continued trace not stored")
	}
	if sum.Root != "http GET /healthz" {
		t.Fatalf("trace root = %q", sum.Root)
	}
	if len(spans) != 1 {
		t.Fatalf("stored %d spans, want 1", len(spans))
	}
	root := spans[0]
	if root.ParentID != tpSpanID {
		t.Fatalf("root parent_id = %q, want remote span %q", root.ParentID, tpSpanID)
	}
	if root.Attr("http.method") != "GET" || root.Attr("http.route") != "/healthz" {
		t.Fatalf("root span attrs = %+v", root.Attrs)
	}
	if root.Attr("http.status") != "200" {
		t.Fatalf("root span http.status = %q", root.Attr("http.status"))
	}
}

// TestMalformedTraceparentMintsFreshTrace: per W3C, a broken header is
// treated as absent — the request still gets a (fresh) trace rather
// than failing or continuing a garbage id.
func TestMalformedTraceparentMintsFreshTrace(t *testing.T) {
	s, ts, _ := newTestServer(t)
	for _, bad := range []string{
		"totally-not-a-traceparent",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
	} {
		resp := doGet(t, ts.URL+"/healthz", map[string]string{"traceparent": bad})
		got := resp.Header.Get("X-Trace-Id")
		if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(got) {
			t.Fatalf("header %q: X-Trace-Id = %q, want fresh 32-hex id", bad, got)
		}
		if got == tpTraceID {
			t.Fatalf("header %q: malformed traceparent was continued", bad)
		}
		if _, spans, ok := s.TraceStore().Get(got); !ok || spans[0].ParentID != "" {
			t.Fatalf("header %q: fresh trace stored=%v parent=%q, want parentless root",
				bad, ok, spans[0].ParentID)
		}
	}
}

// TestRequestIDAndTraceIDIndependent pins the two-correlation-key
// contract: X-Request-Id and traceparent are honored independently —
// both echo on the response, both land on the span, and both stamp the
// access log line. Neither header overrides the other.
func TestRequestIDAndTraceIDIndependent(t *testing.T) {
	logBuf := &syncBuffer{}
	logger, err := svclog.New(logBuf, svclog.Options{Format: "json", Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	s := New(obs.NewRegistry(), nil)
	s.SetLogger(logger)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := doGet(t, ts.URL+"/healthz", map[string]string{
		"X-Request-Id": "req-independent",
		"traceparent":  tpHeader,
	})
	if got := resp.Header.Get("X-Request-Id"); got != "req-independent" {
		t.Fatalf("X-Request-Id = %q", got)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tpTraceID {
		t.Fatalf("X-Trace-Id = %q", got)
	}

	// Both keys on the root span.
	_, spans, ok := s.TraceStore().Get(tpTraceID)
	if !ok || len(spans) != 1 {
		t.Fatalf("trace stored=%v spans=%d", ok, len(spans))
	}
	if got := spans[0].Attr(svclog.KeyReqID); got != "req-independent" {
		t.Fatalf("span req_id attr = %q", got)
	}

	// Both keys on the access log line.
	text := logBuf.waitContains(t, "http request")
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line not JSON: %v\n%s", err, line)
		}
		if rec["msg"] != "http request" {
			continue
		}
		if rec[svclog.KeyReqID] != "req-independent" {
			t.Fatalf("access log req_id = %v", rec[svclog.KeyReqID])
		}
		if rec[svclog.KeyTraceID] != tpTraceID {
			t.Fatalf("access log trace_id = %v", rec[svclog.KeyTraceID])
		}
		return
	}
	t.Fatalf("no access-log line found:\n%s", text)
}

// TestStatusWriterUnwrap pins the http.ResponseController path under
// the tracing wrapper: Unwrap must reach the underlying writer (Flush
// coverage through a real SSE stream lives in
// TestSSEFlusherSurvivesMiddleware).
func TestStatusWriterUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	if got := sw.Unwrap(); got != http.ResponseWriter(rec) {
		t.Fatalf("Unwrap = %T, want the wrapped recorder", got)
	}
	// ResponseController resolves Flusher through Unwrap chains.
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through statusWriter: %v", err)
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
}

// TestTracesEndpoints exercises the query surface: list with filters,
// one full tree, input validation, and the 404 contract.
func TestTracesEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Two traced requests: one continued (known id), one fresh.
	doGet(t, ts.URL+"/healthz", map[string]string{"traceparent": tpHeader})
	doGet(t, ts.URL+"/progress", nil)

	body, resp := get(t, ts.URL+"/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Traces []tracespan.TraceSummary `json:"traces"`
		Stats  tracespan.StoreStats     `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("listed %d traces, want 2:\n%s", len(list.Traces), body)
	}
	// Newest first: the /progress request came second.
	if list.Traces[0].Root != "http GET /progress" {
		t.Fatalf("list order = %q first, want newest", list.Traces[0].Root)
	}
	if list.Stats.Added != 2 {
		t.Fatalf("stats.added = %d", list.Stats.Added)
	}

	// Filters narrow the list.
	body, _ = get(t, ts.URL+"/traces?status=error")
	var errOnly struct {
		Traces []tracespan.TraceSummary `json:"traces"`
	}
	json.Unmarshal([]byte(body), &errOnly)
	if len(errOnly.Traces) != 0 {
		t.Fatalf("status=error listed %d ok traces", len(errOnly.Traces))
	}
	body, _ = get(t, ts.URL+"/traces?limit=1")
	var one struct {
		Traces []tracespan.TraceSummary `json:"traces"`
	}
	json.Unmarshal([]byte(body), &one)
	if len(one.Traces) != 1 {
		t.Fatalf("limit=1 listed %d traces", len(one.Traces))
	}

	// Bad inputs answer 400, not 500 or silent defaults.
	for _, q := range []string{"?min_duration_s=-1", "?min_duration_s=soon", "?status=meh", "?limit=-2", "?limit=few"} {
		if _, resp := get(t, ts.URL+"/traces"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/traces%s: %d, want 400", q, resp.StatusCode)
		}
	}

	// One trace by id: summary plus nested tree.
	body, resp = get(t, ts.URL+"/traces/"+tpTraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces/{id}: %d %s", resp.StatusCode, body)
	}
	var tree struct {
		Summary tracespan.TraceSummary `json:"summary"`
		Tree    []*tracespan.Node      `json:"tree"`
	}
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("/traces/{id} not JSON: %v\n%s", err, body)
	}
	if tree.Summary.TraceID != tpTraceID || len(tree.Tree) != 1 || tree.Tree[0].Name != "http GET /healthz" {
		t.Fatalf("trace tree payload = %s", body)
	}

	if _, resp := get(t, ts.URL+"/traces/ffffffffffffffffffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", resp.StatusCode)
	}
}

// getWith issues a GET with headers and returns the response body and
// response.
func getWith(t *testing.T, url string, hdr map[string]string) (string, *http.Response) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestMetricsExemplarLinksToTrace: after a traced request, an
// OpenMetrics scrape of the route's latency histogram exposes an
// exemplar carrying that trace id — the /metrics → /traces join.
func TestMetricsExemplarLinksToTrace(t *testing.T) {
	_, ts, _ := newTestServer(t)
	doGet(t, ts.URL+"/healthz", map[string]string{"traceparent": tpHeader})
	body, resp := getWith(t, ts.URL+"/metrics",
		map[string]string{"Accept": "application/openmetrics-text"})
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics scrape Content-Type = %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition missing # EOF terminator:\n...%s", body[max(0, len(body)-200):])
	}
	want := regexp.MustCompile(
		`melody_observatory_http_request_seconds_bucket\{route="/healthz",le="[^"]+"\} \d+ # \{trace_id="` +
			tpTraceID + `"\} \S+ \d+\.\d{3}`)
	if !want.MatchString(body) {
		t.Fatalf("/metrics missing exemplar for trace %s:\n%s", tpTraceID, body)
	}
	// Exemplars decorate bucket lines only — never _sum or _count.
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, "# {") && !strings.Contains(line, "_bucket{") {
			t.Fatalf("exemplar on non-bucket line: %q", line)
		}
	}
}

// TestMetricsDefaultScrapeHasNoExemplars pins the negotiation contract
// from the other side: without an OpenMetrics Accept header /metrics
// stays classic 0.0.4 — whose grammar has no exemplar clause — even
// when every bucket carries a recorded exemplar, so standard parsers
// (promtool, expfmt, a 0.0.4-mode scraper) never see trailing tokens.
func TestMetricsDefaultScrapeHasNoExemplars(t *testing.T) {
	_, ts, _ := newTestServer(t)
	doGet(t, ts.URL+"/healthz", map[string]string{"traceparent": tpHeader})
	body, resp := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("default scrape Content-Type = %q", ct)
	}
	if strings.Contains(body, "# {") {
		t.Fatalf("exemplar syntax leaked into 0.0.4 exposition:\n%s", body)
	}
	if strings.Contains(body, "# EOF") {
		t.Fatal("OpenMetrics EOF terminator leaked into 0.0.4 exposition")
	}
	// An explicit q=0 refusal of OpenMetrics also stays classic.
	body, _ = getWith(t, ts.URL+"/metrics",
		map[string]string{"Accept": "application/openmetrics-text;q=0, text/plain"})
	if strings.Contains(body, "# {") {
		t.Fatal("q=0 OpenMetrics Accept still produced exemplars")
	}
}

// TestHealthProbesCarryBuildAndUptime pins the probe payloads: both
// include uptime and build info so a scrape archive can correlate
// behavior changes with deploys.
func TestHealthProbesCarryBuildAndUptime(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, route := range []string{"/healthz", "/readyz"} {
		body, resp := get(t, ts.URL+route)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", route, resp.StatusCode)
		}
		var got struct {
			Status  string            `json:"status"`
			UptimeS *float64          `json:"uptime_s"`
			Build   map[string]string `json:"build"`
		}
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("%s not JSON: %v\n%s", route, err, body)
		}
		if got.UptimeS == nil || *got.UptimeS < 0 {
			t.Fatalf("%s uptime_s = %v", route, got.UptimeS)
		}
		if got.Build == nil || got.Build["go_version"] == "" {
			t.Fatalf("%s build info = %v", route, got.Build)
		}
	}
}
