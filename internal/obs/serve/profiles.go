package serve

// The /profiles endpoints: the query surface over the continuous host
// profiler's capture store (internal/obs/hostprof). The shape mirrors
// /traces — list with filters, fetch one by id — plus a heap-delta view
// that turns two heap snapshots into a ranked per-stack growth report:
//
//	GET /profiles                      list captures newest-first
//	    ?type=cpu|heap|goroutine|mutex|block
//	    ?reason=interval|job_start|watchdog:<signal>
//	    ?job_id=run-000042             captures overlapping one job
//	    ?limit=20
//	GET /profiles/{id}                 raw .pb.gz — pipe straight into
//	                                   `go tool pprof`
//	GET /profiles/heapdelta?from=&to=  per-stack heap growth between two
//	                                   heap captures (?rows= caps rows)
//
// Opt-in live profiling rides the same mux: with Server.DebugPprof set,
// the standard /debug/pprof/* handlers mount on the observatory — one
// address, one middleware stack, instead of the second listener the
// -pprof flag historically required.

import (
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"

	"log/slog"

	"github.com/moatlab/melody/internal/obs/hostprof"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// AttachProfiler mounts p's capture store as the /profiles API and
// routes job-started events into immediate CPU captures (call before
// Handler/Start; the profiler's Run loop is the caller's to drive).
func (s *Server) AttachProfiler(p *hostprof.Profiler) { s.prof = p }

// Profiler returns the attached profiler (nil when profiling is off).
func (s *Server) Profiler() *hostprof.Profiler { return s.prof }

func (s *Server) noProfiles(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "host profiling not enabled on this observatory (start with -prof-interval)", http.StatusServiceUnavailable)
}

// profileList is GET /profiles.
func (s *Server) profileList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := hostprof.Filter{
		Type:   q.Get("type"),
		Reason: q.Get("reason"),
		JobID:  q.Get("job_id"),
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: want a non-negative integer", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	store := s.prof.Store()
	writeJSON(w, map[string]any{
		"profiles":   store.List(f),
		"stats":      store.Stats(),
		"interval_s": s.prof.Interval().Seconds(),
	})
}

// profileGet is GET /profiles/{id}: the raw gzipped profile.proto
// payload, exactly what `go tool pprof` consumes.
func (s *Server) profileGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := s.prof.Store().Get(id)
	if !ok {
		http.Error(w, "unknown profile id (never captured, or evicted by retention)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s.pb.gz", c.Type, c.ID))
	w.Header().Set("Content-Length", strconv.Itoa(len(c.Bytes)))
	w.Write(c.Bytes)
}

// profileHeapDelta is GET /profiles/heapdelta?from={id}&to={id}: the
// per-stack allocation change between two retained heap captures — the
// view that turns a "sustained heap growth" watchdog alert into the
// allocation site responsible, without leaving the observatory.
func (s *Server) profileHeapDelta(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fromID, toID := q.Get("from"), q.Get("to")
	if fromID == "" || toID == "" {
		http.Error(w, "want ?from={profile id}&to={profile id}, both heap captures", http.StatusBadRequest)
		return
	}
	rows := 0
	if v := q.Get("rows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad rows: want a positive integer", http.StatusBadRequest)
			return
		}
		rows = n
	}
	load := func(id string) (*hostprof.Parsed, *hostprof.Capture, error) {
		c, ok := s.prof.Store().Get(id)
		if !ok {
			return nil, nil, fmt.Errorf("unknown profile id %q", id)
		}
		if c.Type != hostprof.TypeHeap {
			return nil, nil, fmt.Errorf("profile %s is a %s capture, want heap", id, c.Type)
		}
		p, err := hostprof.Parse(c.Bytes)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", id, err)
		}
		return p, &c, nil
	}
	from, fromCap, err := load(fromID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to, toCap, err := load(toID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	delta, err := hostprof.DiffHeap(from, to, rows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"from":   fromCap,
		"to":     toCap,
		"span_s": toCap.End.Sub(fromCap.End).Seconds(),
		"delta":  delta,
	})
}

// mountDebugPprof wires the standard net/http/pprof handlers onto mux
// through the RED middleware (one route label for the whole family, so
// cardinality stays bounded).
func (s *Server) mountDebugPprof(mux *http.ServeMux) {
	mux.Handle("/debug/pprof/", s.wrap("/debug/pprof/", httppprof.Index))
	mux.Handle("/debug/pprof/cmdline", s.wrap("/debug/pprof/", httppprof.Cmdline))
	mux.Handle("/debug/pprof/profile", s.wrap("/debug/pprof/", httppprof.Profile))
	mux.Handle("/debug/pprof/symbol", s.wrap("/debug/pprof/", httppprof.Symbol))
	mux.Handle("/debug/pprof/trace", s.wrap("/debug/pprof/", httppprof.Trace))
}

// StartDebugPprof serves the standard /debug/pprof/* handlers on their
// own addr — the historical -pprof contract, shared by both the run and
// serve subcommands so the flag cannot drift between them again.
// Listening is synchronous: a bad address fails here, at startup, not
// minutes into a run. Prefer Server.DebugPprof (same handlers on the
// observatory mux) when an observatory is already listening.
func StartDebugPprof(addr string, log *slog.Logger) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	if log == nil {
		log = svclog.Discard()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	log.Info("pprof listening", "addr", ln.Addr().String())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("pprof listener failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return &Running{ln: ln, srv: srv}, nil
}
