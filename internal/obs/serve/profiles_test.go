package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs/hostprof"
)

// profiledServer builds an observatory with an attached profiler whose
// store already holds one capture round.
func profiledServer(t *testing.T, debugPprof bool) (*Server, *hostprof.Profiler, *httptest.Server) {
	t.Helper()
	s := New(nil, nil)
	s.DebugPprof = debugPprof
	p := hostprof.New(hostprof.Config{
		CPUDuration: 20 * time.Millisecond,
		Registry:    s.SelfRegistry(),
		ActiveJobs:  func() []string { return []string{"run-000009"} },
		Watchdog:    hostprof.WatchdogConfig{Disabled: true},
	})
	s.AttachProfiler(p)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, p, ts
}

// captureRound drives one synchronous profiler round (no Run loop —
// handler tests want deterministic store contents).
func captureRound(p *hostprof.Profiler) {
	// Run always performs its initial round before selecting, so a
	// cancel-after-launch yields exactly one complete synchronous round.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	cancel()
	<-done
}

func TestProfilesDisabled(t *testing.T) {
	s := New(nil, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/profiles", "/profiles/abc123"} {
		body, resp := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s without profiler = %d", path, resp.StatusCode)
		}
		if !strings.Contains(body, "-prof-interval") {
			t.Fatalf("unhelpful disabled message: %q", body)
		}
	}
	// /debug/pprof stays unmounted unless opted in.
	_, resp := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ mounted without opt-in: %d", resp.StatusCode)
	}
}

func TestProfilesListAndFilters(t *testing.T) {
	_, p, ts := profiledServer(t, false)
	captureRound(p)

	var listing struct {
		Profiles []hostprof.Capture  `json:"profiles"`
		Stats    hostprof.StoreStats `json:"stats"`
		Interval float64             `json:"interval_s"`
	}
	body, resp := get(t, ts.URL+"/profiles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /profiles = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("decode listing: %v\n%s", err, body)
	}
	if len(listing.Profiles) < 5 {
		t.Fatalf("listing has %d captures, want one per type", len(listing.Profiles))
	}
	if listing.Stats.Stored != len(listing.Profiles) {
		t.Fatalf("stats.Stored = %d vs %d listed", listing.Stats.Stored, len(listing.Profiles))
	}
	if listing.Interval <= 0 {
		t.Fatal("interval_s missing")
	}
	for _, c := range listing.Profiles {
		if len(c.Jobs) != 1 || c.Jobs[0] != "run-000009" {
			t.Fatalf("capture %s missing job stamp: %+v", c.ID, c.Jobs)
		}
	}

	body, _ = get(t, ts.URL+"/profiles?type=heap&limit=1")
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Profiles) != 1 || listing.Profiles[0].Type != hostprof.TypeHeap {
		t.Fatalf("filtered listing = %+v", listing.Profiles)
	}

	_, resp = get(t, ts.URL+"/profiles?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}

	// The job_id filter finds the same captures.
	body, _ = get(t, ts.URL+"/profiles?job_id=run-000009")
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Profiles) < 5 {
		t.Fatalf("job_id filter = %d captures", len(listing.Profiles))
	}
}

func TestProfileDownloadParses(t *testing.T) {
	_, p, ts := profiledServer(t, false)
	captureRound(p)

	heap := p.Store().List(hostprof.Filter{Type: hostprof.TypeHeap})
	body, resp := get(t, ts.URL+"/profiles/"+heap[0].ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, ".pb.gz") {
		t.Fatalf("content disposition = %q", cd)
	}
	parsed, err := hostprof.Parse([]byte(body))
	if err != nil {
		t.Fatalf("downloaded profile does not parse: %v", err)
	}
	if parsed.TypeIndex("inuse_space") < 0 {
		t.Fatalf("downloaded heap profile sample types = %+v", parsed.SampleTypes)
	}

	_, resp = get(t, ts.URL+"/profiles/ffffffffffffffff")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

func TestProfileHeapDelta(t *testing.T) {
	_, p, ts := profiledServer(t, false)
	captureRound(p)
	// Grow the heap so a second round captures different heap bytes.
	ballast := bytes.Repeat([]byte("x"), 4<<20)
	captureRound(p)
	_ = ballast[0]

	heaps := p.Store().List(hostprof.Filter{Type: hostprof.TypeHeap})
	if len(heaps) < 2 {
		t.Skipf("heap snapshots deduped (%d unique) — nothing to diff", len(heaps))
	}
	// List is newest-first: from the older, to the newer.
	from, to := heaps[1].ID, heaps[0].ID

	body, resp := get(t, ts.URL+"/profiles/heapdelta?from="+from+"&to="+to)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heapdelta = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		From  hostprof.Capture   `json:"from"`
		To    hostprof.Capture   `json:"to"`
		Delta hostprof.HeapDelta `json:"delta"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode delta: %v", err)
	}
	if out.Delta.SortedBy != "inuse_space" {
		t.Fatalf("delta sorted by %q", out.Delta.SortedBy)
	}
	if out.From.ID != from || out.To.ID != to {
		t.Fatal("delta payload misidentifies its endpoints")
	}

	// Error paths: missing params, unknown ids, non-heap types.
	for _, q := range []string{
		"",
		"?from=" + from,
		"?from=ffffffffffffffff&to=" + to,
		"?from=" + from + "&to=" + to + "&rows=0",
	} {
		body, resp := get(t, ts.URL+"/profiles/heapdelta"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("heapdelta%s = %d (%s), want 400", q, resp.StatusCode, body)
		}
	}
	if cpus := p.Store().List(hostprof.Filter{Type: hostprof.TypeCPU}); len(cpus) > 0 {
		_, resp := get(t, ts.URL+"/profiles/heapdelta?from="+cpus[0].ID+"&to="+to)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cpu capture accepted as heap delta endpoint: %d", resp.StatusCode)
		}
	}
}

func TestDebugPprofOptIn(t *testing.T) {
	_, _, ts := profiledServer(t, true)
	body, resp := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with opt-in = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index missing profile links")
	}
	// The handlers run behind the RED middleware: the scrape shows up
	// under the family's single route label.
	mbody, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(mbody, `route="/debug/pprof/"`) {
		t.Fatal("debug pprof requests invisible to RED metrics")
	}
}

func TestStartDebugPprof(t *testing.T) {
	run, err := StartDebugPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	body, resp := get(t, "http://"+run.Addr().String()+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "heap") {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
	// Fail fast on an unusable address — the flag-validation contract.
	if _, err := StartDebugPprof("256.0.0.1:99999", nil); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestProfilerSelfMetricsOnScrape pins the hostprof self-metric
// families onto /metrics under the observatory namespace.
func TestProfilerSelfMetricsOnScrape(t *testing.T) {
	_, p, ts := profiledServer(t, false)
	captureRound(p)
	body, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`melody_observatory_hostprof_captures_total{type="heap"}`,
		"melody_observatory_hostprof_store_captures",
		"melody_observatory_hostprof_round_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
