package serve

import (
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/hostprof"
)

// TestRuntimeSamplerMapsReading pins the Reading → gauge mapping with
// an injected fake, including the prevNumGC handshake between samples.
func TestRuntimeSamplerMapsReading(t *testing.T) {
	reg := obs.NewRegistry()
	rs := newRuntimeSampler(reg, time.Now().Add(-10*time.Second))

	var askedPrev []uint32
	rs.read = func(prev uint32) hostprof.Reading {
		askedPrev = append(askedPrev, prev)
		return hostprof.Reading{
			Goroutines: 42,
			HeapAlloc:  1 << 20,
			HeapSys:    4 << 20,
			NumGC:      7,
			PauseNs:    []float64{1000, 2000, 3000},
		}
	}
	rs.sample()

	if v := reg.Gauge("runtime/goroutines").Value(); v != 42 {
		t.Fatalf("goroutines = %v", v)
	}
	if v := reg.Gauge("runtime/heap_alloc_bytes").Value(); v != 1<<20 {
		t.Fatalf("heap_alloc_bytes = %v", v)
	}
	if v := reg.Gauge("runtime/heap_sys_bytes").Value(); v != 4<<20 {
		t.Fatalf("heap_sys_bytes = %v", v)
	}
	if v := reg.Gauge("runtime/gc_runs").Value(); v != 7 {
		t.Fatalf("gc_runs = %v", v)
	}
	if v := reg.Gauge("runtime/uptime_seconds").Value(); v < 10 {
		t.Fatalf("uptime_seconds = %v", v)
	}
	h := reg.Histogram("runtime/gc_pause_ns")
	if h.Count() != 3 || h.Sum() != 6000 {
		t.Fatalf("gc_pause_ns count=%d sum=%v", h.Count(), h.Sum())
	}

	// The next sample asks for pauses since the previous NumGC.
	rs.read = func(prev uint32) hostprof.Reading {
		askedPrev = append(askedPrev, prev)
		return hostprof.Reading{NumGC: 7} // no new cycles
	}
	rs.sample()
	if len(askedPrev) != 2 || askedPrev[0] != 0 || askedPrev[1] != 7 {
		t.Fatalf("prevNumGC handshake = %v, want [0 7]", askedPrev)
	}
	if h.Count() != 3 {
		t.Fatalf("no-new-cycles sample recorded pauses: count=%d", h.Count())
	}
}

// TestRuntimeSamplerPauseRingWraparound pins the PauseNs-ring contract
// end to end: a scrape gap wider than the runtime's 256-entry pause
// ring records exactly the ring's depth — the newest 256 pauses — not
// 0 and not the (unknowable) full gap.
func TestRuntimeSamplerPauseRingWraparound(t *testing.T) {
	reg := obs.NewRegistry()
	rs := newRuntimeSampler(reg, time.Now())

	// A synthetic pause ring where cycle c's pause is c nanoseconds,
	// exactly as the runtime lays it out: cycle c at (c+255)%256.
	var ring [256]uint64
	const cur = 600
	for c := uint32(cur - 255); c <= cur; c++ {
		ring[(c+255)%256] = uint64(c)
	}
	rs.read = func(prev uint32) hostprof.Reading {
		return hostprof.Reading{NumGC: cur, PauseNs: hostprof.PausesSince(&ring, prev, cur)}
	}

	// First sample: prev=0, gap of 600 cycles >> ring depth.
	rs.sample()
	h := reg.Histogram("runtime/gc_pause_ns")
	if h.Count() != 256 {
		t.Fatalf("wrapped sample recorded %d pauses, want 256", h.Count())
	}
	// Newest-biased: the retained pauses are cycles 345..600.
	if h.Min() != 345 || h.Max() != 600 {
		t.Fatalf("wrapped sample spans [%v, %v], want [345, 600]", h.Min(), h.Max())
	}

	// A later small advance records exactly the new cycles.
	rs.read = func(prev uint32) hostprof.Reading {
		if prev != cur {
			t.Fatalf("second sample prev = %d, want %d", prev, cur)
		}
		return hostprof.Reading{NumGC: cur + 2, PauseNs: []float64{7, 9}}
	}
	rs.sample()
	if h.Count() != 258 {
		t.Fatalf("count after advance = %d, want 258", h.Count())
	}
}

// TestRuntimeSamplerRealReadings smoke-checks the default (uninjected)
// path against the live runtime.
func TestRuntimeSamplerRealReadings(t *testing.T) {
	reg := obs.NewRegistry()
	rs := newRuntimeSampler(reg, time.Now())
	rs.sample()
	if reg.Gauge("runtime/goroutines").Value() <= 0 {
		t.Fatal("goroutines gauge not set from live runtime")
	}
	if reg.Gauge("runtime/heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap gauge not set from live runtime")
	}
}
