package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// syncBuffer is a goroutine-safe log sink: handlers write from the
// server's goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitContains polls until the buffer contains want (log lines land
// via a deferred func that may complete after the HTTP response).
func (b *syncBuffer) waitContains(t *testing.T, want string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := b.String()
		if strings.Contains(s, want) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", want, s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMiddlewareREDMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t)
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/nope") // 404 via the "/" fallback route
	body, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`melody_observatory_http_requests_total{route="/healthz",class="2xx"} 2`,
		`melody_observatory_http_requests_total{route="/",class="4xx"} 1`,
		`melody_observatory_http_request_seconds_count{route="/healthz"} 2`,
		"# TYPE melody_observatory_http_in_flight gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The route label is the mux pattern, not the concrete path, so
	// request-counter cardinality is bounded by the route table.
	if strings.Contains(body, `route="/nope"`) {
		t.Fatalf("concrete path leaked into route label:\n%s", body)
	}
}

func TestRuntimeFamiliesOnMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"melody_observatory_runtime_goroutines ",
		"melody_observatory_runtime_heap_alloc_bytes ",
		"melody_observatory_runtime_heap_sys_bytes ",
		"melody_observatory_runtime_gc_runs ",
		"melody_observatory_runtime_uptime_seconds ",
		"# TYPE melody_observatory_runtime_gc_pause_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing runtime family %q:\n%s", want, body)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	logBuf := &syncBuffer{}
	logger, err := svclog.New(logBuf, svclog.Options{Format: "json", Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	s := New(obs.NewRegistry(), func() any { panic("progress exploded") })
	s.SetLogger(logger)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, resp := get(t, ts.URL+"/progress")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500 (%s)", resp.StatusCode, body)
	}
	if got := s.PanicCount("/progress"); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The observatory survives: other routes still serve.
	if body, resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d %s", resp.StatusCode, body)
	}

	// The panic is logged with stack and correlation id, as valid JSON.
	text := logBuf.waitContains(t, "handler panic")
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		if rec["msg"] != "handler panic" {
			continue
		}
		if rec["panic"] != "progress exploded" {
			t.Fatalf("panic log = %v", rec)
		}
		if rec[svclog.KeyReqID] == "" || rec[svclog.KeyReqID] == nil {
			t.Fatalf("panic log missing req_id: %v", rec)
		}
		if !strings.Contains(line, "middleware.go") && !strings.Contains(rec["stack"].(string), "panic") {
			t.Fatalf("panic log missing stack: %v", rec)
		}
		return
	}
	t.Fatalf("no handler-panic line found:\n%s", text)
}

func TestRequestIDRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// A caller-supplied id is honored and echoed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("X-Request-Id echo = %q", got)
	}

	// Without one, the middleware generates a 16-hex-char id.
	_, resp2 := get(t, ts.URL+"/healthz")
	gen := resp2.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Fatalf("generated request id = %q", gen)
	}
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	logBuf := &syncBuffer{}
	logger, err := svclog.New(logBuf, svclog.Options{Format: "json", Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	s := New(obs.NewRegistry(), nil)
	s.SetLogger(logger)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "corr-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	text := logBuf.waitContains(t, "http request")
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line not JSON: %v\n%s", err, line)
		}
		if rec["msg"] != "http request" {
			continue
		}
		if rec[svclog.KeyReqID] != "corr-123" || rec["route"] != "/healthz" || rec["status"] != float64(200) {
			t.Fatalf("access log = %v", rec)
		}
		return
	}
	t.Fatalf("no access-log line found:\n%s", text)
}

// TestMetricsNilRegistry covers the nil-engine-registry guard: the
// `melody serve` front door has no process-wide engine registry, and
// /metrics must render the self section rather than panic.
func TestMetricsNilRegistry(t *testing.T) {
	s := New(nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, resp := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics with nil registry: %d", resp.StatusCode)
	}
	if !strings.Contains(body, "melody_observatory_serve_metrics_scrapes_total 1") {
		t.Fatalf("self section missing with nil engine registry:\n%s", body)
	}
	// No engine families at all: every line is melody_observatory_*.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.HasPrefix(line, "melody_observatory_") {
			t.Fatalf("unexpected engine family with nil registry: %q", line)
		}
	}
}

// TestEventEncodeFailureCounted swaps the marshal seam to fail, then
// drives one event through /events and asserts the loss is counted in
// serve/event_encode_failures instead of vanishing.
func TestEventEncodeFailureCounted(t *testing.T) {
	old := marshalEvent
	marshalEvent = func(any) ([]byte, error) { return nil, errors.New("boom") }
	defer func() { marshalEvent = old }()

	s, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Hub().Publish(Event{Type: EventCell, Experiment: "fig5", Done: 1, Total: 2})

	deadline = time.Now().Add(2 * time.Second)
	for s.SelfRegistry().Counter("serve/event_encode_failures").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("encode failure never counted")
		}
		time.Sleep(time.Millisecond)
	}
	// The stream survives the failure: a subsequent good event (restore
	// the seam) still arrives.
	marshalEvent = old
	s.Hub().Publish(Event{Type: EventCell, Experiment: "fig5", Done: 2, Total: 2})
	r := bufio.NewReader(resp.Body)
	found := make(chan struct{})
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if strings.Contains(line, `"done":2`) {
				close(found)
				return
			}
		}
	}()
	select {
	case <-found:
	case <-time.After(2 * time.Second):
		t.Fatal("stream did not survive the encode failure")
	}
}

// TestSSEFlusherSurvivesMiddleware pins the statusWriter contract: the
// events handlers type-assert http.Flusher, which must hold through
// the wrapper or every SSE route would answer 500.
func TestSSEFlusherSurvivesMiddleware(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events through middleware: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{
		200: "2xx", 202: "2xx", 301: "3xx", 404: "4xx", 429: "4xx",
		500: "5xx", 503: "5xx", 99: "other", 600: "other",
	} {
		if got := statusClass(code); got != want {
			t.Fatalf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}
