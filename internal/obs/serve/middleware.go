package serve

// HTTP middleware: every observatory route is wrapped with one
// instrument-and-recover layer that gives the serving plane the same
// visibility the engine's memory path already has —
//
//   - RED metrics in the self-registry: a request counter per
//     (route, status class), a latency histogram per route, one
//     process-wide in-flight gauge, and a panic counter per route.
//     They render on /metrics under the melody_observatory_http_*
//     families (the "name|k=v" labeled-path rule in obs/prom).
//   - Panic recovery: a panicking handler answers 500 and logs the
//     stack instead of killing the whole observatory — one bad request
//     must never take down a server with a half-hour sweep in flight.
//   - Access logs with correlation: each request gets a req_id
//     (honored from an incoming X-Request-Id header, generated
//     otherwise), echoed on the response header, stored in the request
//     context for handlers, and stamped on the access log line.
//   - Request tracing: each request becomes the root span of a
//     tracespan trace — continuing an incoming W3C traceparent when
//     one arrives, minting a fresh trace id otherwise. The trace id is
//     echoed as X-Trace-Id, stamped on the access log (trace_id), and
//     recorded as the latency histogram's exemplar so /metrics links
//     straight into /traces. req_id and trace_id are independent
//     correlation keys: req_id names one HTTP exchange, trace_id the
//     whole causal chain (which may span queue hand-offs); when both
//     headers arrive, both are honored, both appear on the span and
//     the log line, and neither overrides the other.
//
// Everything records into the self-registry only — the middleware
// upholds the observatory isolation contract: a run's -metrics
// manifest is byte-identical with and without the middleware attached.

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// statusWriter captures the response status and size for the metrics
// and access-log layer. It forwards Flush so the SSE handlers'
// http.Flusher assertion still holds through the wrapper, and Unwrap
// so http.ResponseController reaches the real writer.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// statusClass buckets an HTTP status for the request counter's class
// label: "2xx", "4xx", …
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// wrap instruments h as route. The route string is the label value on
// every RED family — the mux pattern ("/runs/{id}"), not the concrete
// path, so cardinality stays bounded however many jobs exist.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	latency := s.self.Histogram("http/request_seconds|route=" + route)
	panics := s.self.Counter("http/panics|route=" + route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = svclog.NewReqID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx := svclog.WithReqID(r.Context(), reqID)

		// Root span: continue the caller's trace when a (well-formed)
		// traceparent arrived, mint a fresh trace otherwise. A malformed
		// header is treated as absent — per W3C, a broken propagation
		// chain restarts rather than failing the request.
		parent, _ := tracespan.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, span := s.tracer.StartRoot(ctx, "http "+r.Method+" "+route, parent,
			tracespan.String("http.method", r.Method),
			tracespan.String("http.route", route),
			tracespan.String("http.path", r.URL.Path),
			tracespan.String(svclog.KeyReqID, reqID),
		)
		traceID := span.TraceID()
		if traceID != "" {
			w.Header().Set("X-Trace-Id", traceID)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.inflight.Set(float64(s.inflightN.Add(1)))
		defer func() {
			s.inflight.Set(float64(s.inflightN.Add(-1)))
			if rec := recover(); rec != nil {
				panics.Inc()
				if rec == http.ErrAbortHandler {
					// The handler aborted the connection on purpose;
					// net/http suppresses this panic's noise and so do we.
					span.SetError("aborted")
					span.End()
					panic(rec)
				}
				s.log.Error("handler panic",
					"method", r.Method,
					"route", route,
					"path", r.URL.Path,
					svclog.KeyReqID, reqID,
					svclog.KeyTraceID, traceID,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				span.SetError(fmt.Sprint(rec))
				if !sw.wrote {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			dur := time.Since(start)
			// The exemplar joins this bucket's count to one concrete
			// trace — always the latest, which is the one still in the
			// store.
			latency.RecordExemplar(dur.Seconds(), traceID)
			s.self.Counter("http/requests|route=" + route + "|class=" + statusClass(sw.status)).Inc()
			span.SetAttr("http.status", strconv.Itoa(sw.status))
			if sw.status >= 500 {
				span.SetError(http.StatusText(sw.status))
			}
			span.End()
			level := accessLevel(sw.status)
			s.log.Log(r.Context(), level, "http request",
				"method", r.Method,
				"route", route,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(dur.Microseconds())/1000,
				"bytes", sw.bytes,
				svclog.KeyReqID, reqID,
				svclog.KeyTraceID, traceID,
				"remote", r.RemoteAddr,
			)
		}()
		h(sw, r)
	})
}

// accessLevel maps a response status onto the access-log level: client
// errors warn, server errors error, everything routine stays at debug
// so an idle scrape loop does not flood the log at the default info
// level.
func accessLevel(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelDebug
	}
}

// PanicCount returns the middleware's panic counter for route (tests).
func (s *Server) PanicCount(route string) uint64 {
	return s.self.Counter("http/panics|route=" + route).Value()
}
