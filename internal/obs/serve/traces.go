package serve

// The /traces endpoints: the query surface over the tracespan store.
// GET /traces lists retained traces newest-first, filterable so an
// operator can go straight from an alert to the offenders:
//
//	?min_duration_s=0.5   only traces at least this long
//	?status=error         only errored (or ?status=ok) traces
//	?spec_hash=sha256:…   only traces touching one spec
//	?limit=20             at most this many rows
//
// GET /traces/{id} returns one trace: its summary plus the full span
// tree (children nested, siblings in start order), the payload the CI
// smoke walks to assert http → queue → exec → run → experiment → cell
// stayed connected.

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs/tracespan"
)

func (s *Server) traceList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f tracespan.Filter
	if v := q.Get("min_duration_s"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec < 0 {
			http.Error(w, "bad min_duration_s: want a non-negative number of seconds", http.StatusBadRequest)
			return
		}
		f.MinDuration = time.Duration(sec * float64(time.Second))
	}
	switch v := q.Get("status"); v {
	case "", tracespan.StatusOK, tracespan.StatusError:
		f.Status = v
	default:
		http.Error(w, `bad status: want "ok" or "error"`, http.StatusBadRequest)
		return
	}
	f.SpecHash = q.Get("spec_hash")
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: want a non-negative integer", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	store := s.tracer.Store()
	writeJSON(w, map[string]any{
		"traces": store.List(f),
		"stats":  store.Stats(),
	})
}

func (s *Server) traceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sum, spans, ok := s.tracer.Store().Get(id)
	if !ok {
		http.Error(w, "unknown trace id (never seen, or evicted by retention)", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{
		"summary": sum,
		"tree":    tracespan.BuildTree(spans),
	})
}

// buildInfo digests runtime/debug.ReadBuildInfo into the fields health
// probes report: enough to pin which binary answered, cheap enough to
// compute once and serve forever.
var buildInfo = sync.OnceValue(func() map[string]string {
	info := map[string]string{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info["go_version"] = bi.GoVersion
	if bi.Main.Path != "" {
		info["module"] = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info["module_version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			info["vcs_revision"] = kv.Value
		case "vcs.time":
			info["vcs_time"] = kv.Value
		case "vcs.modified":
			info["vcs_modified"] = kv.Value
		}
	}
	return info
})
