package serve

// Go runtime telemetry for the service plane, sampled lazily at scrape
// time: a /metrics GET refreshes the gauges right before the export,
// so an idle observatory costs nothing between scrapes and a scraped
// one is never more than one scrape interval stale. Everything lands
// in the self-registry (melody_observatory_runtime_* families) —
// runtime state describes the serving process, never the simulation,
// so it must stay out of every run manifest.

import (
	"runtime"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

// runtimeSampler owns the runtime/* instruments in the self-registry.
type runtimeSampler struct {
	start      time.Time
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	gcRuns     *obs.Gauge
	uptime     *obs.Gauge
	gcPause    *obs.Histogram

	mu        sync.Mutex
	lastNumGC uint32
}

func newRuntimeSampler(reg *obs.Registry, start time.Time) *runtimeSampler {
	return &runtimeSampler{
		start:      start,
		goroutines: reg.Gauge("runtime/goroutines"),
		heapAlloc:  reg.Gauge("runtime/heap_alloc_bytes"),
		heapSys:    reg.Gauge("runtime/heap_sys_bytes"),
		gcRuns:     reg.Gauge("runtime/gc_runs"),
		uptime:     reg.Gauge("runtime/uptime_seconds"),
		gcPause:    reg.Histogram("runtime/gc_pause_ns"),
	}
}

// sample refreshes every runtime instrument. ReadMemStats stops the
// world for microseconds of *host* time; simulated results cannot
// observe it, so sampling at scrape time upholds the isolation
// contract.
func (rs *runtimeSampler) sample() {
	rs.goroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs.heapAlloc.Set(float64(ms.HeapAlloc))
	rs.heapSys.Set(float64(ms.HeapSys))
	rs.gcRuns.Set(float64(ms.NumGC))
	rs.uptime.Set(time.Since(rs.start).Seconds())

	// Record the pauses of GC cycles completed since the last sample.
	// PauseNs is a ring of the most recent 256 pauses (cycle c lands at
	// (c+255)%256), so a scrape gap longer than 256 cycles loses the
	// overwritten ones — the histogram's count tracking gc_runs within
	// 256 is the accuracy contract, not exactly-once capture.
	rs.mu.Lock()
	defer rs.mu.Unlock()
	from := rs.lastNumGC + 1
	if ms.NumGC > 256 && from < ms.NumGC-255 {
		from = ms.NumGC - 255
	}
	for c := from; c <= ms.NumGC; c++ {
		rs.gcPause.Record(float64(ms.PauseNs[(c+255)%256]))
	}
	rs.lastNumGC = ms.NumGC
}
