package serve

// Go runtime telemetry for the service plane, sampled lazily at scrape
// time: a /metrics GET refreshes the gauges right before the export,
// so an idle observatory costs nothing between scrapes and a scraped
// one is never more than one scrape interval stale. Everything lands
// in the self-registry (melody_observatory_runtime_* families) —
// runtime state describes the serving process, never the simulation,
// so it must stay out of every run manifest.
//
// The raw observation is hostprof.TakeReading — the same implementation
// the continuous profiler's anomaly watchdog consumes — so the numbers
// a dashboard graphs and the numbers the watchdog acts on can never
// disagree.

import (
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/hostprof"
)

// runtimeSampler owns the runtime/* instruments in the self-registry.
type runtimeSampler struct {
	start      time.Time
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	gcRuns     *obs.Gauge
	uptime     *obs.Gauge
	gcPause    *obs.Histogram

	// read produces the runtime observation; tests inject fakes to pin
	// the mapping (including PauseNs-ring edge cases) without provoking
	// the real GC.
	read func(prevNumGC uint32) hostprof.Reading

	mu        sync.Mutex
	lastNumGC uint32
}

func newRuntimeSampler(reg *obs.Registry, start time.Time) *runtimeSampler {
	return &runtimeSampler{
		start:      start,
		goroutines: reg.Gauge("runtime/goroutines"),
		heapAlloc:  reg.Gauge("runtime/heap_alloc_bytes"),
		heapSys:    reg.Gauge("runtime/heap_sys_bytes"),
		gcRuns:     reg.Gauge("runtime/gc_runs"),
		uptime:     reg.Gauge("runtime/uptime_seconds"),
		gcPause:    reg.Histogram("runtime/gc_pause_ns"),
		read:       hostprof.TakeReading,
	}
}

// sample refreshes every runtime instrument. ReadMemStats stops the
// world for microseconds of *host* time; simulated results cannot
// observe it, so sampling at scrape time upholds the isolation
// contract.
func (rs *runtimeSampler) sample() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r := rs.read(rs.lastNumGC)
	rs.goroutines.Set(float64(r.Goroutines))
	rs.heapAlloc.Set(float64(r.HeapAlloc))
	rs.heapSys.Set(float64(r.HeapSys))
	rs.gcRuns.Set(float64(r.NumGC))
	rs.uptime.Set(time.Since(rs.start).Seconds())
	// PauseNs carries the pauses of GC cycles completed since the last
	// sample, clamped to the runtime's 256-entry ring (see
	// hostprof.PausesSince) — the histogram's count tracking gc_runs
	// within 256 is the accuracy contract, not exactly-once capture.
	for _, p := range r.PauseNs {
		rs.gcPause.Record(p)
	}
	rs.lastNumGC = r.NumGC
}
