package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/hostprof"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// jobAPI mounts an internal/jobs.Manager on the observatory mux: spec
// submission with admission control, per-job status and manifest
// retrieval, and a per-job SSE stream fed from the manager's event
// notifications through the same bounded drop-oldest subscriber
// queues as the run-level /events endpoint.
//
// The API's own counters live in the observatory self-registry — like
// every other serve instrument they are visible on /metrics but never
// merged into an engine registry, so attaching the job API cannot
// perturb any run's manifest.
type jobAPI struct {
	mgr      *jobs.Manager
	srv      *Server
	queueCap int // per-subscriber SSE queue bound

	submits     *obs.Counter
	accepted    *obs.Counter
	cacheHits   *obs.Counter
	rejectFull  *obs.Counter
	rejectDrain *obs.Counter
	rejectBad   *obs.Counter
	published   *obs.Counter
	dropped     *obs.Counter

	mu   sync.Mutex
	hubs map[string]*Hub
}

// AttachJobs mounts mgr as the observatory's job API (call before
// Handler/Start, after SetLogger). The server subscribes to the
// manager's event stream; events fan out to per-job hubs backing
// /runs/{id}/events. The manager's lifecycle instruments (queue-wait
// and execution histograms, terminal-state counters) are pointed at
// the self-registry so they surface on /metrics without ever touching
// an engine registry.
func (s *Server) AttachJobs(mgr *jobs.Manager) {
	mgr.SetMetrics(s.self)
	mgr.SetTracer(s.tracer)
	api := &jobAPI{
		mgr:         mgr,
		srv:         s,
		queueCap:    s.JobEventQueueCap,
		submits:     s.self.Counter("serve/jobs_submitted"),
		accepted:    s.self.Counter("serve/jobs_accepted"),
		cacheHits:   s.self.Counter("serve/jobs_cache_hits"),
		rejectFull:  s.self.Counter("serve/jobs_rejected_queue_full"),
		rejectDrain: s.self.Counter("serve/jobs_rejected_draining"),
		rejectBad:   s.self.Counter("serve/jobs_rejected_invalid"),
		published:   s.self.Counter("serve/job_events_published"),
		dropped:     s.self.Counter("serve/job_events_dropped"),
		hubs:        map[string]*Hub{},
	}
	mgr.SetNotify(api.onEvent)
	s.jobs = api
}

// hub returns (creating on first use) the per-job event hub.
func (a *jobAPI) hub(jobID string) *Hub {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.hubs[jobID]
	if !ok {
		h = NewHub(a.queueCap, a.published, a.dropped)
		a.hubs[jobID] = h
	}
	return h
}

// onEvent routes a manager notification into the job's hub. The
// manager delivers events synchronously from the submit/execute path;
// Publish is non-blocking by construction (drop-oldest), so a slow SSE
// client can never stall a running experiment.
func (a *jobAPI) onEvent(ev jobs.Event) {
	// A job starting is the moment worth profiling: trigger an immediate
	// CPU capture so even a job shorter than the routine interval gets a
	// profile overlapping its execution (nil profiler no-ops).
	if ev.Type == jobs.EventStarted {
		a.srv.prof.TriggerCPU(hostprof.ReasonJobStart)
	}
	// A freshly completed (not cache-answered, not partial) run is the
	// moment for baseline regression checks — before the job_finished
	// event below, so per-job SSE subscribers, whose stream closes at
	// job_finished, still receive any regression event.
	if ev.Type == jobs.EventFinished && ev.State == jobs.StateDone &&
		!ev.Interrupted && !ev.CacheHit {
		a.diffOnCompletion(ev)
	}
	a.hub(ev.JobID).Publish(Event{
		Type:        ev.Type,
		Job:         ev.JobID,
		SpecHash:    ev.SpecHash,
		State:       string(ev.State),
		Experiment:  ev.Experiment,
		Title:       ev.Title,
		Done:        ev.Done,
		Total:       ev.Total,
		WallS:       ev.WallS,
		CacheHit:    ev.CacheHit,
		Interrupted: ev.Interrupted,
		Error:       ev.Error,
		TraceID:     ev.TraceID,
	})
}

// submit is POST /runs: decode a RunSpec, admit it, answer with the
// job status. 202 queued (or coalesced onto an in-flight duplicate),
// 200 answered from the content-addressed store, 400 undecodable or
// unrunnable, 429 queue full, 503 draining.
func (a *jobAPI) submit(w http.ResponseWriter, r *http.Request) {
	a.submits.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		a.rejectBad.Inc()
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	sp, err := spec.Decode(body)
	if err != nil {
		a.rejectBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// SubmitCtx carries the request's root span so the job's queue/exec
	// spans stay children of this HTTP exchange.
	st, err := a.mgr.SubmitCtx(r.Context(), sp)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		a.rejectFull.Inc()
		// The hint is derived, not hardcoded: queue depth (plus the
		// running job) times the mean observed execution duration, so a
		// client backing off by it re-arrives when the queue has roughly
		// drained.
		w.Header().Set("Retry-After",
			strconv.Itoa(int(a.mgr.RetryAfterHint()/time.Second)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrDraining):
		a.rejectDrain.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		a.rejectBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a.accepted.Inc()
	code := http.StatusAccepted
	if st.CacheHit {
		a.cacheHits.Inc()
		code = http.StatusOK
	}
	// The one log line that joins the HTTP exchange to the job: req_id
	// ties it to the access log, job_id/spec_hash to the manager's
	// lifecycle lines, SSE events and the manifest store.
	a.srv.log.Info("job submitted",
		svclog.KeyReqID, svclog.ReqID(r.Context()),
		svclog.KeyTraceID, tracespan.SpanFrom(r.Context()).TraceID(),
		svclog.KeyJobID, st.ID,
		svclog.KeySpecHash, st.SpecHash,
		"state", string(st.State),
		"cache_hit", st.CacheHit,
		"queue_position", st.QueuePos,
	)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/runs/"+st.ID)
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

// list is GET /runs. Filters follow the /traces and /profiles
// conventions (bad input answers 400, never a silently-empty list):
//
//	?state=done     only jobs in one lifecycle state
//	?limit=20       at most this many jobs, newest submissions last
//	                (the tail of the submission-ordered list)
func (a *jobAPI) list(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := -1
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: want a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	var state jobs.State
	switch v := jobs.State(q.Get("state")); v {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
		state = v
	default:
		http.Error(w, `bad state: want "queued", "running", "done", "failed" or "canceled"`, http.StatusBadRequest)
		return
	}
	list := a.mgr.List()
	if state != "" {
		kept := list[:0]
		for _, st := range list {
			if st.State == state {
				kept = append(kept, st)
			}
		}
		list = kept
	}
	if limit >= 0 && len(list) > limit {
		// Keep the newest: the tail of the submission-ordered list.
		list = list[len(list)-limit:]
	}
	writeJSON(w, map[string]any{
		"jobs":        list,
		"queue_depth": a.mgr.QueueDepth(),
		"queue_cap":   a.mgr.QueueCap(),
		"accepting":   a.mgr.Accepting(),
	})
}

// status is GET /runs/{id}.
func (a *jobAPI) status(w http.ResponseWriter, r *http.Request) {
	st, ok := a.mgr.Status(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// manifest is GET /runs/{id}/manifest: 200 with the manifest JSON
// (content address in the Melody-Manifest-Address header) for done
// jobs — including interrupted ones, whose JSON carries
// "interrupted": true — 202 with the status while queued/running, 404
// unknown, 409 for jobs that terminated without a manifest.
func (a *jobAPI) manifest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, addr, err := a.mgr.Manifest(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	case errors.Is(err, jobs.ErrNotFinished):
		st, _ := a.mgr.Status(id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(st)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Melody-Manifest-Address", addr)
	w.Write(raw)
}

// events is GET /runs/{id}/events: the per-job SSE stream. The
// subscriber is registered before the current status is read, so the
// snapshot event a client receives first is never newer than the
// stream that follows — a late subscriber to a finished job gets the
// terminal snapshot and the stream closes. Sequence-number gaps mean
// the client was too slow and events were dropped (oldest first),
// exactly as on the run-level /events stream.
func (a *jobAPI) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := a.mgr.Status(id)
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	fl, okf := w.(http.Flusher)
	if !okf {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	hub := a.hub(id)
	sub := hub.Subscribe()
	defer hub.Unsubscribe(sub)

	// Re-read under the subscription so no transition can fall between
	// the snapshot and the stream.
	st, _ = a.mgr.Status(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", EventJobStatus, data)
	fl.Flush()
	if st.State.Terminal() {
		return
	}
	for {
		evs, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		finished := false
		for _, ev := range evs {
			data, err := marshalEvent(ev)
			if err != nil {
				a.srv.encodeFails.Inc()
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			if ev.Type == EventJobFinished {
				finished = true
			}
		}
		fl.Flush()
		if finished {
			return
		}
	}
}
