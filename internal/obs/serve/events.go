package serve

import (
	"context"
	"encoding/json"
	"sync"

	"github.com/moatlab/melody/internal/obs"
)

// marshalEvent encodes one SSE event. It is a seam (swapped in tests)
// so the encode-failure accounting is exercisable even though Event's
// fields can never actually fail to marshal today.
var marshalEvent = json.Marshal

// Event is one run-lifecycle notification on the /events SSE stream.
// Seq is hub-assigned and strictly increasing, so a client that was
// too slow to keep up sees a gap in ids — drops are detectable, never
// silent. AtMs is host wall-clock; simulated time never appears here
// because events describe the run, not the simulation.
type Event struct {
	Seq         uint64  `json:"seq"`
	Type        string  `json:"type"`
	AtMs        int64   `json:"at_ms"`
	Experiment  string  `json:"experiment,omitempty"`
	Title       string  `json:"title,omitempty"`
	Done        int     `json:"done,omitempty"`
	Total       int     `json:"total,omitempty"`
	WallS       float64 `json:"wall_s,omitempty"`
	Interrupted bool    `json:"interrupted,omitempty"`
	// Job-API fields (per-job /runs/{id}/events streams only). Job and
	// SpecHash are the correlation ids: the same values appear in the
	// job's structured log lines and /runs/{id} payload, so one job is
	// joinable across logs, metrics, events and manifests.
	Job      string `json:"job,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	State    string `json:"state,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// TraceID joins a job event to /traces and the access logs (empty
	// for untraced submissions).
	TraceID string `json:"trace_id,omitempty"`
	// Regression fields ("regression" events only): which pinned
	// baseline the finished run regressed against, how many metrics
	// tripped the gate, and the worst offender.
	Baseline    string  `json:"baseline,omitempty"`
	Regressions int     `json:"regressions,omitempty"`
	Metric      string  `json:"metric,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
}

// Event types published by the engine wiring.
const (
	EventExperimentStart = "experiment_start"
	EventCell            = "cell"
	EventExperimentEnd   = "experiment_end"
	EventRunEnd          = "run_end"
)

// Event types on per-job streams (beyond the experiment-level ones,
// which jobs reuse): queue admission, execution start, completion, and
// the synthetic snapshot a subscriber receives on connect.
const (
	EventJobQueued   = "job_queued"
	EventJobStarted  = "job_started"
	EventJobFinished = "job_finished"
	EventJobStatus   = "status"
	// EventRegression announces a finished run that regressed against a
	// pinned baseline. It is published on the job's stream *before*
	// job_finished (so per-job subscribers see it before their stream
	// closes) and mirrored on the run-level /events stream.
	EventRegression = "regression"
)

// DefaultQueueCap bounds each subscriber's pending-event queue. 256
// events outlive any realistic scrape hiccup, yet cap the worst-case
// per-client memory at a few tens of kilobytes.
const DefaultQueueCap = 256

// Hub fans events out to subscribers without ever blocking the
// publisher: each subscriber owns a bounded queue and a full queue
// drops its oldest event (counted in dropped). Publish does a bounded
// amount of work under short mutexes, so the engine's wall time is
// independent of how slow — or how wedged — any /events client is.
type Hub struct {
	queueCap  int
	published *obs.Counter
	dropped   *obs.Counter

	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	seq  uint64
}

// NewHub returns a hub with per-subscriber queues of queueCap events
// (0 = DefaultQueueCap). published/dropped may be nil.
func NewHub(queueCap int, published, dropped *obs.Counter) *Hub {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Hub{
		queueCap:  queueCap,
		published: published,
		dropped:   dropped,
		subs:      map[*Subscriber]struct{}{},
	}
}

// Publish stamps ev with the next sequence number and offers it to
// every subscriber. It never blocks on slow consumers.
func (h *Hub) Publish(ev Event) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	h.published.Inc()
	for _, s := range subs {
		s.offer(ev, h.dropped)
	}
}

// Subscribe registers a new consumer. The caller must Unsubscribe when
// done (the HTTP handler defers it on disconnect).
func (h *Hub) Subscribe() *Subscriber {
	s := &Subscriber{
		cap:    h.queueCap,
		notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Unsubscribe removes s; pending events are discarded.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// Subscribers returns the current consumer count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Subscriber is one consumer's bounded event queue.
type Subscriber struct {
	cap    int
	notify chan struct{}

	mu  sync.Mutex
	buf []Event
}

// offer enqueues ev, dropping the oldest pending event when full.
func (s *Subscriber) offer(ev Event, dropped *obs.Counter) {
	s.mu.Lock()
	if len(s.buf) >= s.cap {
		copy(s.buf, s.buf[1:])
		s.buf[len(s.buf)-1] = ev
		dropped.Inc()
	} else {
		s.buf = append(s.buf, ev)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until at least one event is pending (returning the whole
// pending batch, oldest first) or ctx is done (returning ok=false).
func (s *Subscriber) Next(ctx context.Context) ([]Event, bool) {
	for {
		s.mu.Lock()
		if len(s.buf) > 0 {
			out := s.buf
			s.buf = nil
			s.mu.Unlock()
			return out, true
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Pending returns the number of queued events (for tests).
func (s *Subscriber) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}
