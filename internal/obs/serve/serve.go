// Package serve is the live run observatory: an HTTP server that runs
// concurrently with the engine and exposes its telemetry while the run
// is still in flight — the counterpart to the post-mortem artifacts
// (-metrics manifests, traces, profiles) built in earlier layers.
//
// Endpoints:
//
//	GET /metrics   Prometheus text exposition of the engine registry
//	               plus the observatory's own registry (scrape counts,
//	               SSE drop counters)
//	GET /progress  JSON snapshot: per-experiment done/total, per-cell
//	               wall stats, cache hit rates
//	GET /events    SSE stream of cell-completion and experiment-
//	               boundary events (bounded per-client queues,
//	               drop-oldest)
//	GET /healthz   liveness probe (process up)
//	GET /readyz    readiness probe: accepting/draining plus queue
//	               depth when the job API is attached (503 while
//	               draining)
//
// With AttachJobs, the observatory stops being read-only and becomes
// the experiment front door (see internal/jobs):
//
//	POST /runs                 submit a RunSpec, get a job id (429
//	                           when the queue is full, 503 draining)
//	GET  /runs                 list jobs
//	GET  /runs/{id}            one job's status
//	GET  /runs/{id}/manifest   the finished job's manifest (202 while
//	                           queued/running, 409 failed/canceled)
//	GET  /runs/{id}/events     per-job SSE stream (same bounded
//	                           drop-oldest queues as /events)
//
// Every route mounts through one middleware layer (middleware.go):
// per-route RED metrics (request counters by status class, latency
// histograms, an in-flight gauge), panic recovery that answers 500 and
// logs instead of killing the observatory, and access logs carrying a
// per-request correlation id (X-Request-Id in, echoed out). A Go
// runtime collector (runtime.go) samples goroutines, heap, GC pauses
// and uptime at scrape time. All of it renders on /metrics under the
// melody_observatory_ namespace; install a logger with SetLogger
// (silent by default).
//
// Isolation contract: serving reads only lock-free or short-critical-
// section snapshots (atomic counter loads, a progress snapshot behind
// an atomic pointer, histogram exports holding only that histogram's
// lock). The server never creates instruments in the engine's registry
// — its own counters, the HTTP middleware's RED metrics and the
// runtime gauges all live in a separate self-registry exposed only on
// /metrics — so a run's -metrics manifest is byte-identical with and
// without -serve (and with or without logging), and scraping perturbs
// neither results nor the hot path.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/hostprof"
	"github.com/moatlab/melody/internal/obs/ledger"
	"github.com/moatlab/melody/internal/obs/prom"
	"github.com/moatlab/melody/internal/obs/svclog"
	"github.com/moatlab/melody/internal/obs/tracespan"
)

// Namespaces used on /metrics: the engine registry and the server's
// self-registry render under distinct prefixes so their families can
// never collide.
const (
	EngineNamespace = "melody"
	SelfNamespace   = "melody_observatory"
)

// Server assembles the observatory endpoints over an engine registry, a
// progress-snapshot source, and an event hub.
type Server struct {
	registry *obs.Registry
	progress func() any
	hub      *Hub
	self     *obs.Registry
	start    time.Time
	jobs     *jobAPI
	log      *slog.Logger
	rt       *runtimeSampler
	tracer   *tracespan.Tracer
	prof     *hostprof.Profiler
	ledger   *ledger.Ledger

	// crossreg holds the cross-run regression families. Unlike the
	// self-registry it renders under the *engine* namespace — the
	// counter path "regressions|baseline=…" becomes
	// melody_regressions_total{baseline="…"} — because a regression is
	// a statement about the experiment results, not about the
	// observatory process.
	crossreg *obs.Registry

	// JobEventQueueCap overrides the per-client queue bound on per-job
	// SSE streams (0 = DefaultQueueCap). Set before AttachJobs.
	JobEventQueueCap int

	// DebugPprof mounts the standard /debug/pprof/* handlers on the
	// observatory mux (off by default: live profiling of a shared
	// observatory is opt-in). Set before Handler/Start.
	DebugPprof bool

	scrapes        *obs.Counter
	progReads      *obs.Counter
	encodeFails    *obs.Counter
	compares       *obs.Counter
	compareRegr    *obs.Counter
	baselineChecks *obs.Counter
	inflight       *obs.Gauge
	inflightN      atomic.Int64
}

// New builds a Server. registry is the engine's telemetry registry
// (nil renders an empty engine section); progress returns the
// /progress JSON payload (nil serves {}). The server creates its own
// self-registry and event hub.
func New(registry *obs.Registry, progress func() any) *Server {
	self := obs.NewRegistry()
	start := time.Now()
	s := &Server{
		registry:    registry,
		progress:    progress,
		self:        self,
		start:       start,
		log:         svclog.Discard(),
		rt:          newRuntimeSampler(self, start),
		crossreg:       obs.NewRegistry(),
		scrapes:        self.Counter("serve/metrics_scrapes"),
		progReads:      self.Counter("serve/progress_reads"),
		encodeFails:    self.Counter("serve/event_encode_failures"),
		compares:       self.Counter("compare/requests"),
		compareRegr:    self.Counter("compare/regressions_reported"),
		baselineChecks: self.Counter("compare/baseline_checks"),
		inflight:       self.Gauge("http/in_flight"),
		tracer:         tracespan.NewTracer(tracespan.NewStore(0, 0)),
	}
	s.hub = NewHub(0, self.Counter("serve/events_published"), self.Counter("serve/events_dropped"))
	return s
}

// Tracer returns the server's span tracer. The serve middleware roots
// every request's trace here; AttachJobs hands it to the job manager so
// queue/exec spans land in the same store; cmd wiring may SetMirror it
// onto the run's obs.Trace for a combined Perfetto view.
func (s *Server) Tracer() *tracespan.Tracer { return s.tracer }

// TraceStore returns the bounded span store behind /traces.
func (s *Server) TraceStore() *tracespan.Store { return s.tracer.Store() }

// SetLogger installs the observatory's structured logger (access logs,
// panic reports, listener failures). A nil l restores the default
// silent logger. Call before Handler/Start.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = svclog.Discard()
	}
	s.log = l
}

// Hub returns the server's event hub for publishers.
func (s *Server) Hub() *Hub { return s.hub }

// SelfRegistry returns the observatory's own registry — exposed on
// /metrics but deliberately absent from the run manifest.
func (s *Server) SelfRegistry() *obs.Registry { return s.self }

// Handler returns the observatory's route table. Call AttachJobs
// first to mount the job API. Every route mounts through the RED
// middleware (see middleware.go); the route label on the emitted
// metrics is the mux pattern, so /runs/{id} stays one series however
// many jobs exist.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.wrap("/", s.index))
	mux.Handle("/metrics", s.wrap("/metrics", s.metrics))
	mux.Handle("/progress", s.wrap("/progress", s.progressHandler))
	mux.Handle("/events", s.wrap("/events", s.events))
	mux.Handle("/healthz", s.wrap("/healthz", s.healthz))
	mux.Handle("GET /readyz", s.wrap("/readyz", s.readyz))
	mux.Handle("GET /traces", s.wrap("/traces", s.traceList))
	mux.Handle("GET /traces/{id}", s.wrap("/traces/{id}", s.traceGet))
	if s.prof != nil {
		mux.Handle("GET /profiles", s.wrap("/profiles", s.profileList))
		mux.Handle("GET /profiles/heapdelta", s.wrap("/profiles/heapdelta", s.profileHeapDelta))
		mux.Handle("GET /profiles/{id}", s.wrap("/profiles/{id}", s.profileGet))
	} else {
		mux.Handle("/profiles", s.wrap("/profiles", s.noProfiles))
		mux.Handle("/profiles/", s.wrap("/profiles", s.noProfiles))
	}
	if s.DebugPprof {
		s.mountDebugPprof(mux)
	}
	if s.jobs != nil {
		mux.Handle("POST /runs", s.wrap("/runs", s.jobs.submit))
		mux.Handle("GET /runs", s.wrap("/runs", s.jobs.list))
		mux.Handle("GET /runs/{id}", s.wrap("/runs/{id}", s.jobs.status))
		mux.Handle("GET /runs/{id}/manifest", s.wrap("/runs/{id}/manifest", s.jobs.manifest))
		mux.Handle("GET /runs/{id}/events", s.wrap("/runs/{id}/events", s.jobs.events))
	} else {
		mux.Handle("/runs", s.wrap("/runs", s.noJobs))
		mux.Handle("/runs/", s.wrap("/runs", s.noJobs))
	}
	if s.jobs != nil {
		// /compare resolves operands through the job manager's run store,
		// so it works with the in-memory store too; /baselines needs the
		// durable ledger.
		mux.Handle("GET /compare", s.wrap("/compare", s.compare))
	} else {
		mux.Handle("/compare", s.wrap("/compare", s.noJobs))
	}
	if s.ledger != nil && s.jobs != nil {
		mux.Handle("GET /baselines", s.wrap("/baselines", s.baselineList))
		mux.Handle("POST /baselines", s.wrap("/baselines", s.baselinePin))
		mux.Handle("DELETE /baselines/{name}", s.wrap("/baselines/{name}", s.baselineUnpin))
	} else {
		mux.Handle("/baselines", s.wrap("/baselines", s.noLedger))
		mux.Handle("/baselines/", s.wrap("/baselines", s.noLedger))
	}
	return mux
}

func (s *Server) noJobs(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "job service not enabled on this observatory", http.StatusServiceUnavailable)
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "melody observatory\n\n/metrics   Prometheus exposition\n/progress  JSON run progress\n/events    SSE run events\n/healthz   liveness\n/readyz    readiness (queue state)\n/traces    request trace store (list; /traces/{id} for one span tree)\n/profiles  host profile store (list; /profiles/{id} raw pb.gz; /profiles/heapdelta)\n/runs      experiment job API (POST spec, GET status/manifest/events)\n/compare   diff two stored runs (?base=&head=, run id or spec hash)\n/baselines pinned regression baselines (GET list, POST pin, DELETE unpin)\n")
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Inc()
	// Runtime gauges refresh lazily, right before the export, so every
	// scrape sees current goroutine/heap/GC state.
	s.rt.sample()
	// Dialect rides the Accept header: scrapers asking for OpenMetrics
	// get exemplars and the # EOF terminator; everyone else gets plain
	// 0.0.4, whose grammar has no exemplar clause.
	format, contentType := prom.Negotiate(r.Header.Get("Accept"))
	w.Header().Set("Content-Type", contentType)
	// New's contract: a nil engine registry renders an empty engine
	// section (the `melody serve` observatory has no process-wide
	// engine registry; each job's lands in its manifest).
	if s.registry != nil {
		if err := prom.WriteFormat(w, EngineNamespace, s.registry.Export(), format); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	// Cross-run regression families render under the engine namespace:
	// melody_regressions_total{baseline=…} is a statement about the
	// experiment results, not the serving process. The registry is empty
	// (renders nothing) until a baseline diff has run.
	if err := prom.WriteFormat(w, EngineNamespace, s.crossreg.Export(), format); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := prom.WriteFormat(w, SelfNamespace, s.self.Export(), format); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if format == prom.FormatOpenMetrics {
		if err := prom.WriteEOF(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (s *Server) progressHandler(w http.ResponseWriter, r *http.Request) {
	s.progReads.Inc()
	var payload any = struct{}{}
	if s.progress != nil {
		payload = s.progress()
	}
	writeJSON(w, payload)
}

// healthz is pure liveness: the process is up and serving. It answers
// "restart me?" — readiness ("send me work?") lives on /readyz. Both
// probes carry build info so a scrape archive correlates behavior
// changes with deploys without a separate version endpoint.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
		"build":    buildInfo(),
	})
}

// readyz is readiness: whether this observatory accepts new work. With
// a job API attached it reports the admission state and queue depth,
// and answers 503 while draining so load balancers stop routing
// submissions during shutdown. Without one it is statically ready.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeJSON(w, map[string]any{
			"status":   "ready",
			"jobs":     false,
			"uptime_s": time.Since(s.start).Seconds(),
			"build":    buildInfo(),
		})
		return
	}
	mgr := s.jobs.mgr
	payload := map[string]any{
		"jobs":        true,
		"accepting":   mgr.Accepting(),
		"queue_depth": mgr.QueueDepth(),
		"queue_cap":   mgr.QueueCap(),
		"uptime_s":    time.Since(s.start).Seconds(),
		"build":       buildInfo(),
	}
	if mgr.Accepting() {
		payload["status"] = "ready"
		writeJSON(w, payload)
		return
	}
	payload["status"] = "draining"
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(payload)
}

// events serves the SSE stream. Every event renders as
//
//	id: <seq>
//	event: <type>
//	data: <json>
//
// and sequence-number gaps tell the client exactly how many events its
// slowness cost it.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.hub.Subscribe()
	defer s.hub.Unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": melody observatory event stream\n\n")
	fl.Flush()
	for {
		evs, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		for _, ev := range evs {
			data, err := marshalEvent(ev)
			if err != nil {
				// The event is lost to this client; make the loss
				// measurable instead of silent.
				s.encodeFails.Inc()
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		}
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Running is a started observatory server.
type Running struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (r *Running) Addr() net.Addr { return r.ln.Addr() }

// Close shuts the server down immediately, dropping open SSE streams.
func (r *Running) Close() error { return r.srv.Close() }

// Start listens on addr and serves the observatory in the background.
// Listening is synchronous so a bad address fails before the run
// starts, mirroring the -pprof flag's fail-fast contract.
func (s *Server) Start(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.log.Info("observatory listening", "addr", ln.Addr().String())
	srv := &http.Server{Handler: s.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// The observatory must never take the run down with it — but
			// a dead listener must not be invisible either: the run
			// would finish fine while every scrape silently failed.
			s.log.Error("observatory listener failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return &Running{ln: ln, srv: srv}, nil
}
