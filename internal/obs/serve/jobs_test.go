package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody/spec"
)

// fakeExec is a controllable executor: it blocks jobs on gate (when
// set) and counts executions.
type fakeExec struct {
	gate  chan struct{} // nil = run immediately
	runs  atomic.Int32
	sleep time.Duration
}

func (f *fakeExec) exec(ctx context.Context, sp spec.RunSpec, notify func(jobs.Event)) (jobs.ExecResult, error) {
	f.runs.Add(1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return jobs.ExecResult{ManifestJSON: []byte(`{"interrupted":true}`), Address: "sha256:partial", Interrupted: true}, nil
		}
	}
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	notify(jobs.Event{Type: jobs.EventExperimentStart, Experiment: sp.Experiments[0]})
	notify(jobs.Event{Type: jobs.EventCell, Experiment: sp.Experiments[0], Done: 1, Total: 1})
	notify(jobs.Event{Type: jobs.EventExperimentEnd, Experiment: sp.Experiments[0], WallS: 0.1})
	hash, _ := sp.Hash()
	return jobs.ExecResult{
		ManifestJSON: []byte(`{"tool":"melody","spec_hash":"` + hash + `"}`),
		Address:      "sha256:addr-" + hash[7:15],
	}, nil
}

// newJobServer wires a manager over exec onto a test observatory.
// start=true runs the worker loop (stopped at cleanup).
func newJobServer(t *testing.T, exec jobs.Executor, queueCap int, start bool) (*jobs.Manager, *httptest.Server) {
	t.Helper()
	mgr := jobs.New(exec, queueCap)
	s := New(nil, nil)
	s.AttachJobs(mgr)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if start {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { mgr.Run(ctx); close(done) }()
		t.Cleanup(func() { cancel(); <-done })
	}
	return mgr, ts
}

func postSpec(t *testing.T, url string, sp spec.RunSpec) (*http.Response, jobs.Status) {
	t.Helper()
	raw, err := spec.Encode(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("POST /runs status %d: bad body: %v", resp.StatusCode, err)
		}
	}
	return resp, st
}

func specN(n int) spec.RunSpec {
	return spec.RunSpec{Experiments: []string{fmt.Sprintf("exp-%d", n)}}
}

func waitState(t *testing.T, url, id string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		body, resp := get(t, url+"/runs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /runs/%s = %d", id, resp.StatusCode)
		}
		var st jobs.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Status{}
}

// TestPostRunsFloodQueueFull floods POST /runs concurrently with
// distinct specs while no worker drains the queue: exactly queueCap
// submissions are admitted, the rest get 429 with Retry-After.
func TestPostRunsFloodQueueFull(t *testing.T) {
	const cap, flood = 4, 32
	fe := &fakeExec{}
	_, ts := newJobServer(t, fe.exec, cap, false) // no worker: queue only fills

	var wg sync.WaitGroup
	var accepted, rejected atomic.Int32
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := spec.Encode(specN(i))
			resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if got := accepted.Load(); got != cap {
		t.Fatalf("accepted %d submissions, want %d", got, cap)
	}
	if got := rejected.Load(); got != flood-cap {
		t.Fatalf("rejected %d submissions, want %d", got, flood-cap)
	}
	if fe.runs.Load() != 0 {
		t.Fatalf("executor ran %d times with no worker", fe.runs.Load())
	}
}

// TestDuplicateSpecCacheHit proves the content-addressed store: the
// second POST of an identical spec answers 200 with CacheHit, serves
// the stored manifest bytes, and does not re-execute.
func TestDuplicateSpecCacheHit(t *testing.T) {
	fe := &fakeExec{}
	_, ts := newJobServer(t, fe.exec, 4, true)

	resp, st := postSpec(t, ts.URL, specN(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, st.ID, jobs.StateDone)

	man1, mresp := get(t, ts.URL+"/runs/"+st.ID+"/manifest")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("manifest = %d", mresp.StatusCode)
	}
	if got := mresp.Header.Get("Melody-Manifest-Address"); got != done.Address {
		t.Fatalf("manifest address header %q != status address %q", got, done.Address)
	}

	resp2, st2 := postSpec(t, ts.URL, specN(1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate POST = %d, want 200", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != jobs.StateDone {
		t.Fatalf("duplicate status = %+v, want done cache hit", st2)
	}
	if st2.ID == st.ID {
		t.Fatal("cache hit reused the original job id")
	}
	man2, _ := get(t, ts.URL+"/runs/"+st2.ID+"/manifest")
	if man1 != man2 {
		t.Fatalf("cache hit served different bytes:\n%s\nvs\n%s", man1, man2)
	}
	if fe.runs.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1", fe.runs.Load())
	}
}

// TestJobEventsSeqGapUnderSlowClient pins drop visibility: a per-job
// subscriber with a tiny queue that never drains while a burst of
// events is published sees its first delivered event start past seq 1
// — a detectable gap, not silent loss.
func TestJobEventsSeqGapUnderSlowClient(t *testing.T) {
	mgr := jobs.New((&fakeExec{}).exec, 4)
	s := New(nil, nil)
	s.JobEventQueueCap = 2
	s.AttachJobs(mgr)

	hub := s.jobs.hub("run-000001")
	sub := hub.Subscribe()
	defer hub.Unsubscribe(sub)

	const burst = 10
	for i := 0; i < burst; i++ {
		s.jobs.onEvent(jobs.Event{JobID: "run-000001", Type: jobs.EventCell, Done: i + 1, Total: burst})
	}
	evs, ok := sub.Next(context.Background())
	if !ok {
		t.Fatal("subscriber closed")
	}
	if len(evs) != 2 {
		t.Fatalf("slow client holds %d events, want its queue cap 2", len(evs))
	}
	if evs[0].Seq != burst-1 || evs[1].Seq != burst {
		t.Fatalf("surviving seqs = %d,%d; want the newest two (%d,%d)",
			evs[0].Seq, evs[1].Seq, burst-1, burst)
	}
}

// TestJobEventsStream drives the SSE endpoint end to end: subscribe
// while the job is in flight, then watch it finish. The first frame is
// the status snapshot; job_finished closes the stream.
func TestJobEventsStream(t *testing.T) {
	fe := &fakeExec{gate: make(chan struct{})}
	_, ts := newJobServer(t, fe.exec, 4, true)

	_, st := postSpec(t, ts.URL, specN(1))

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var events []string
	var sawSnapshot bool
	readFrame := func() (string, bool) {
		ev := ""
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				ev = strings.TrimPrefix(line, "event: ")
			}
			if line == "" && ev != "" {
				return ev, true
			}
		}
		return "", false
	}

	// First frame: the snapshot, taken under the live subscription.
	ev, ok := readFrame()
	if !ok || ev != EventJobStatus {
		t.Fatalf("first frame = %q ok=%v, want status snapshot", ev, ok)
	}
	sawSnapshot = true
	close(fe.gate) // let the job run

	for {
		ev, ok := readFrame()
		if !ok {
			break
		}
		events = append(events, ev)
		if ev == EventJobFinished {
			break
		}
	}
	if !sawSnapshot {
		t.Fatal("no snapshot frame")
	}
	joined := strings.Join(events, ",")
	for _, want := range []string{EventExperimentStart, EventCell, EventExperimentEnd, EventJobFinished} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stream missing %s (saw %s)", want, joined)
		}
	}
	// A late subscriber to the finished job gets the terminal snapshot
	// and the stream closes immediately.
	late, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(late.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event: "+EventJobStatus) {
		t.Fatalf("late subscriber missing terminal snapshot:\n%s", buf.String())
	}
}

// TestManifestEndpointStates covers the non-200 manifest answers.
func TestManifestEndpointStates(t *testing.T) {
	fe := &fakeExec{gate: make(chan struct{})}
	_, ts := newJobServer(t, fe.exec, 4, true)

	_, resp := get(t, ts.URL+"/runs/run-999999/manifest")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job manifest = %d, want 404", resp.StatusCode)
	}

	_, st := postSpec(t, ts.URL, specN(1))
	waitState(t, ts.URL, st.ID, jobs.StateRunning)
	body, resp := get(t, ts.URL+"/runs/"+st.ID+"/manifest")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("running job manifest = %d, want 202", resp.StatusCode)
	}
	var running jobs.Status
	if err := json.Unmarshal([]byte(body), &running); err != nil || running.State != jobs.StateRunning {
		t.Fatalf("202 body = %q (%v)", body, err)
	}
	close(fe.gate)
	waitState(t, ts.URL, st.ID, jobs.StateDone)
}

// TestReadyzDrainRejectsSubmissions: /readyz flips to 503 when the
// manager drains, and POST /runs answers 503 too.
func TestReadyzDrainRejectsSubmissions(t *testing.T) {
	fe := &fakeExec{}
	mgr, ts := newJobServer(t, fe.exec, 4, false)

	body, resp := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("/readyz before drain = %d %q", resp.StatusCode, body)
	}

	mgr.StartDrain()
	body, resp = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("/readyz during drain = %d %q", resp.StatusCode, body)
	}

	raw, _ := spec.Encode(specN(1))
	post, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", post.StatusCode)
	}
}

// TestSubmitRejectsBadSpecs: undecodable bodies and unknown versions
// are 400 with a useful message.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	fe := &fakeExec{}
	_, ts := newJobServer(t, fe.exec, 4, false)

	for _, tc := range []struct{ name, body, wantMsg string }{
		{"invalid json", "{", "invalid JSON"},
		{"unknown version", `{"version": 99, "experiments": ["x"]}`, "version " + strconv.Itoa(99)},
		{"unknown field", `{"experiments": ["x"], "bogus": 1}`, "bogus"},
		{"no experiments", `{"experiments": []}`, "no experiments"},
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), tc.wantMsg) {
			t.Fatalf("%s: body %q missing %q", tc.name, buf.String(), tc.wantMsg)
		}
	}
}

// TestRunsListing: GET /runs reflects the queue.
func TestRunsListing(t *testing.T) {
	fe := &fakeExec{}
	_, ts := newJobServer(t, fe.exec, 8, false)
	for i := 0; i < 3; i++ {
		postSpec(t, ts.URL, specN(i))
	}
	body, resp := get(t, ts.URL+"/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs = %d", resp.StatusCode)
	}
	var listing struct {
		Jobs       []jobs.Status `json:"jobs"`
		QueueDepth int           `json:"queue_depth"`
		QueueCap   int           `json:"queue_cap"`
		Accepting  bool          `json:"accepting"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 3 || listing.QueueDepth != 3 || listing.QueueCap != 8 || !listing.Accepting {
		t.Fatalf("listing = %+v", listing)
	}
	for i, j := range listing.Jobs {
		if j.QueuePos != i+1 {
			t.Fatalf("job %d queue_position = %d, want %d", i, j.QueuePos, i+1)
		}
	}
}
