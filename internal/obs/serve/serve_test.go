package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("runner/cells_run").Add(5)
	reg.Histogram("device/EMR2S/CXL-B/latency_ns").Record(250)
	s := New(reg, func() any {
		return map[string]any{"experiments": []string{"fig5"}, "done": 3}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"melody_runner_cells_run_total 5",
		`melody_device_latency_ns_count{platform="EMR2S",config="CXL-B"} 1`,
		"# TYPE melody_observatory_serve_metrics_scrapes_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// A second scrape sees the first one's count: the self-registry is
	// live, and lives only here — never in the engine registry.
	body2, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body2, "melody_observatory_serve_metrics_scrapes_total 2") {
		t.Fatalf("scrape counter not incrementing:\n%s", body2)
	}
}

func TestServeSelfCountersStayOutOfEngineRegistry(t *testing.T) {
	_, ts, reg := newTestServer(t)
	get(t, ts.URL+"/metrics")
	get(t, ts.URL+"/progress")
	snap := reg.Snapshot()
	// serve/ self counters, http/ RED middleware instruments and
	// runtime/ gauges all belong to the self-registry; any of them in
	// the engine registry would break manifest byte-identity.
	leaked := func(name string) bool {
		return strings.HasPrefix(name, "serve/") ||
			strings.HasPrefix(name, "http/") ||
			strings.HasPrefix(name, "runtime/") ||
			strings.HasPrefix(name, "jobs/")
	}
	for name := range snap.Counters {
		if leaked(name) {
			t.Fatalf("observatory counter %q leaked into the engine registry", name)
		}
	}
	for name := range snap.Gauges {
		if leaked(name) {
			t.Fatalf("observatory gauge %q leaked into the engine registry", name)
		}
	}
	for name := range snap.Histograms {
		if leaked(name) {
			t.Fatalf("observatory histogram %q leaked into the engine registry", name)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if got["done"] != float64(3) {
		t.Fatalf("progress payload = %v", got)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, _ := get(t, ts.URL+"/healthz")
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}
}

func TestEventsSSEStream(t *testing.T) {
	s, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	// Wait for the subscription before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for s.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Hub().Publish(Event{Type: EventExperimentStart, Experiment: "fig5", Title: "Latency-bandwidth curves"})
	s.Hub().Publish(Event{Type: EventCell, Experiment: "fig5", Done: 1, Total: 10})

	r := bufio.NewReader(resp.Body)
	var lines []string
	for len(lines) < 8 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v (got %q)", err, lines)
		}
		lines = append(lines, strings.TrimRight(line, "\n"))
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{"event: experiment_start", "event: cell", `"experiment":"fig5"`, "id: 1", "id: 2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("SSE stream missing %q:\n%s", want, text)
		}
	}
}

// TestSlowEventsClientSeesDrops is the backpressure contract end to
// end: a deliberately slow /events client (connected but not draining)
// loses the oldest events, the loss is visible as a drop counter on
// /metrics, and the publisher's wall time stays bounded — the engine
// never waits for a scraper.
func TestSlowEventsClientSeesDrops(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// The client is "slow": it reads nothing while the engine publishes
	// far more events than the queue plus the socket can absorb. The
	// HTTP writer goroutine drains some into kernel buffers; everything
	// beyond queue capacity + buffering is dropped oldest-first.
	const published = 200_000
	start := time.Now()
	for i := 0; i < published; i++ {
		h := s.Hub()
		h.Publish(Event{Type: EventCell, Experiment: "fig5", Done: i, Total: published,
			Title: strings.Repeat("x", 64)})
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("publishing %d events with a wedged client took %v", published, el)
	}

	// Drops must be visible on /metrics via the observatory registry.
	dropped := s.SelfRegistry().Counter("serve/events_dropped").Value()
	if dropped == 0 {
		t.Fatalf("slow client produced no drops after %d events", published)
	}
	body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "melody_observatory_serve_events_dropped_total") {
		t.Fatalf("/metrics missing drop counter:\n%s", body)
	}

	// The slow client finally reads: the first event it sees is far
	// beyond seq 1 — the oldest were dropped, not the newest.
	r := bufio.NewReader(resp.Body)
	var firstSeq uint64
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			firstSeq = ev.Seq
			break
		}
	}
	if firstSeq <= 1 {
		t.Fatalf("first delivered seq = %d; expected a gap from dropped-oldest", firstSeq)
	}
}

func TestStartAndClose(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	run, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, "http://"+run.Addr().String()+"/healthz")
	if !strings.Contains(body, "ok") {
		t.Fatalf("healthz over real listener: %s", body)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + run.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestStartBadAddressFailsFast(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	if _, err := s.Start("definitely-not-an-address:xyz"); err == nil {
		t.Fatal("bad address accepted")
	}
}
