package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/melody/diff"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/ledger"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// latencyExec produces a real, decodable manifest whose gated latency
// scales with the spec seed — seed 1 is the fast baseline, higher
// seeds regress by 20% per step. That makes regressions a function of
// which specs a test submits.
func latencyExec(ctx context.Context, sp spec.RunSpec, notify func(jobs.Event)) (jobs.ExecResult, error) {
	mean := 400.0 * (1 + 0.2*float64(sp.Seed-1))
	m := melody.Manifest{
		Tool: "melody", Seed: sp.Seed, Workers: 1, Workloads: sp.Workloads,
		Experiments: []melody.ExperimentTiming{{ID: sp.Experiments[0], WallS: 1}},
		Cells: []melody.CellTiming{
			{Workload: "w", Config: "CXL-B", Platform: "EMR2S", Seed: sp.Seed, WallMs: 2},
		},
		Registry: obs.Snapshot{
			Counters: map[string]uint64{},
			Gauges:   map[string]float64{},
			Histograms: map[string]obs.Summary{
				"device/EMR2S/CXL-B/latency_ns": {Count: 100, Mean: mean, P99: mean * 2},
			},
		},
	}
	raw, err := melody.EncodeManifest(m)
	if err != nil {
		return jobs.ExecResult{}, err
	}
	addr, err := m.Address()
	if err != nil {
		return jobs.ExecResult{}, err
	}
	return jobs.ExecResult{ManifestJSON: raw, Address: addr}, nil
}

// seedSpec returns one experiment set at a given seed: same experiment
// set (so baselines match), different spec hash (so both runs store).
func seedSpec(seed uint64) spec.RunSpec {
	return spec.RunSpec{Experiments: []string{"fig8f"}, Workloads: 4, Seed: seed}
}

// ledgerFixture is one wired-up observatory: manager + durable ledger
// + server, with a log sink for asserting structured regression lines.
type ledgerFixture struct {
	mgr *jobs.Manager
	led *ledger.Ledger
	srv *Server
	ts  *httptest.Server
	log *bytes.Buffer
}

func newLedgerServer(t *testing.T) *ledgerFixture {
	t.Helper()
	led, err := ledger.Open(t.TempDir(), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	mgr := jobs.New(latencyExec, 8)
	mgr.SetStore(led)
	s := New(nil, nil)
	var logBuf bytes.Buffer
	logger, err := svclog.New(&logBuf, svclog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogger(logger)
	mgr.Log = logger
	s.AttachJobs(mgr)
	s.AttachLedger(led)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { mgr.Run(ctx); close(done) }()
	t.Cleanup(func() { cancel(); <-done })
	return &ledgerFixture{mgr: mgr, led: led, srv: s, ts: ts, log: &logBuf}
}

// runSeed submits one seeded spec and waits for completion.
func runSeed(t *testing.T, ts *httptest.Server, seed uint64) jobs.Status {
	t.Helper()
	resp, st := postSpec(t, ts.URL, seedSpec(seed))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST seed %d = %d", seed, resp.StatusCode)
	}
	return waitState(t, ts.URL, st.ID, jobs.StateDone)
}

func getAccept(t *testing.T, url, accept string) (string, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String(), resp
}

func TestCompareEndpoint(t *testing.T) {
	ts := newLedgerServer(t).ts
	fast := runSeed(t, ts, 1) // 400ns
	slow := runSeed(t, ts, 2) // 480ns: +20%

	// Default dialect: the human table.
	body, resp := getAccept(t, ts.URL+"/compare?base="+fast.ID+"&head="+slow.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compare = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("table content type = %q", ct)
	}
	if !strings.Contains(body, "REGR") {
		t.Fatalf("table missing REGR row:\n%s", body)
	}

	// JSON via content negotiation.
	body, resp = getAccept(t, ts.URL+"/compare?base="+fast.ID+"&head="+slow.ID, "application/json")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content type = %q", ct)
	}
	var rep diff.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad /compare json: %v\n%s", err, body)
	}
	if !rep.HasRegressions() {
		t.Fatalf("report has no regressions: %s", body)
	}

	// Spec-hash operands resolve through the run store.
	body, resp = getAccept(t, ts.URL+"/compare?base="+fast.SpecHash+"&head="+slow.SpecHash, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compare by spec hash = %d: %s", resp.StatusCode, body)
	}

	// Improvement direction: no regressions, and a wide threshold
	// silences even the regression direction.
	body, _ = getAccept(t, ts.URL+"/compare?base="+slow.ID+"&head="+fast.ID, "application/json")
	var improved diff.Report
	json.Unmarshal([]byte(body), &improved)
	if improved.HasRegressions() {
		t.Fatalf("improvement direction reported regressions: %s", body)
	}
	body, _ = getAccept(t, ts.URL+"/compare?base="+fast.ID+"&head="+slow.ID+"&threshold=0.5", "application/json")
	var wide diff.Report
	json.Unmarshal([]byte(body), &wide)
	if wide.HasRegressions() {
		t.Fatalf("+20%% tripped a 50%% threshold: %s", body)
	}
}

// TestCompareAgreesWithMelodydiff is the acceptance pin: /compare and
// the CLI gate share diff.Compare, so on the same manifest pair the
// service's HasRegressions answer must match what melodydiff's exit
// code (rep.HasRegressions) would say for the served bytes.
func TestCompareAgreesWithMelodydiff(t *testing.T) {
	ts := newLedgerServer(t).ts
	fast := runSeed(t, ts, 1)
	slow := runSeed(t, ts, 2)

	// What melodydiff would do: diff.Load both manifests over HTTP (the
	// URL-operand path) and diff.Compare them.
	baseM, err := diff.Load(ts.URL + "/runs/" + fast.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	headM, err := diff.Load(ts.URL + "/runs/" + slow.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	cliRep := diff.Compare(baseM, headM, diff.Options{})

	body, resp := getAccept(t, ts.URL+"/compare?base="+fast.ID+"&head="+slow.ID, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compare = %d", resp.StatusCode)
	}
	var srvRep diff.Report
	if err := json.Unmarshal([]byte(body), &srvRep); err != nil {
		t.Fatal(err)
	}
	if srvRep.HasRegressions() != cliRep.HasRegressions() {
		t.Fatalf("service says regressions=%v, CLI library says %v",
			srvRep.HasRegressions(), cliRep.HasRegressions())
	}
	if len(srvRep.Regressions) != len(cliRep.Regressions) {
		t.Fatalf("service found %d regressions, CLI %d",
			len(srvRep.Regressions), len(cliRep.Regressions))
	}
	for i := range srvRep.Regressions {
		if srvRep.Regressions[i].Metric != cliRep.Regressions[i].Metric {
			t.Fatalf("regression %d: %q vs %q", i,
				srvRep.Regressions[i].Metric, cliRep.Regressions[i].Metric)
		}
	}
}

func TestCompareBadOperands(t *testing.T) {
	ts := newLedgerServer(t).ts
	fast := runSeed(t, ts, 1)

	cases := []struct {
		query string
		want  int
	}{
		{"", http.StatusBadRequest},                                        // missing both
		{"base=" + fast.ID, http.StatusBadRequest},                         // missing head
		{"base=bogus&head=" + fast.ID, http.StatusBadRequest},              // unparseable operand
		{"base=run-999999&head=" + fast.ID, http.StatusNotFound},           // unknown run id
		{"base=sha256:feed&head=" + fast.ID, http.StatusNotFound},          // unknown spec hash
		{"base=" + fast.ID + "&head=" + fast.ID + "&threshold=-1", http.StatusBadRequest},
		{"base=" + fast.ID + "&head=" + fast.ID + "&threshold=x", http.StatusBadRequest},
	}
	for _, c := range cases {
		body, resp := getAccept(t, ts.URL+"/compare?"+c.query, "")
		if resp.StatusCode != c.want {
			t.Errorf("/compare?%s = %d, want %d (%s)", c.query, resp.StatusCode, c.want, strings.TrimSpace(body))
		}
	}
}

// TestBaselineRegressionFlow drives the whole loop: pin a baseline,
// run a slower spec with the same experiment set, and observe the
// regression surface everywhere at once — counter on /metrics,
// structured Warn line, SSE event on both the run-level and per-job
// streams (before the per-job stream closes).
func TestBaselineRegressionFlow(t *testing.T) {
	f := newLedgerServer(t)
	mgr, ts, logBuf := f.mgr, f.ts, f.log
	fast := runSeed(t, ts, 1)

	// Pin by run id.
	pin, err := json.Marshal(map[string]string{"name": "golden", "run_id": fast.ID})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/baselines", "application/json", bytes.NewReader(pin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /baselines = %d", resp.StatusCode)
	}
	body, _ := getAccept(t, ts.URL+"/baselines", "")
	if !strings.Contains(body, `"golden"`) || !strings.Contains(body, fast.SpecHash) {
		t.Fatalf("GET /baselines:\n%s", body)
	}

	// Subscribe to the run-level hub, then run a regressing spec.
	sub := f.srv.Hub().Subscribe()
	defer f.srv.Hub().Unsubscribe(sub)
	slow := runSeed(t, ts, 3) // +40% latency vs baseline

	ev := waitForEvent(t, sub, EventRegression)
	if ev.Job != slow.ID || ev.Baseline != "golden" || ev.Regressions == 0 {
		t.Fatalf("regression event = %+v", ev)
	}
	if ev.Metric == "" || ev.Delta <= 0 {
		t.Fatalf("regression event missing worst offender: %+v", ev)
	}

	// Counter renders under the engine namespace with the baseline label.
	metrics, _ := getAccept(t, ts.URL+"/metrics", "")
	if !strings.Contains(metrics, `melody_regressions_total{baseline="golden"}`) {
		t.Fatalf("metrics missing melody_regressions_total:\n%s", firstLines(metrics, 40))
	}

	// The structured Warn line carries the correlation ids.
	logs := logBuf.String()
	if !strings.Contains(logs, "baseline regression detected") ||
		!strings.Contains(logs, slow.ID) || !strings.Contains(logs, slow.SpecHash) {
		t.Fatalf("regression log line missing or incomplete:\n%s", logs)
	}

	// A second run of the baseline spec itself is a cache hit — no
	// fresh execution, so no self-comparison regression events.
	before := len(mgr.List())
	resp2, st2 := postSpec(t, ts.URL, seedSpec(1))
	resp2.Body.Close()
	if !st2.CacheHit {
		t.Fatalf("baseline respec not a cache hit: %+v", st2)
	}
	if len(mgr.List()) != before+1 {
		t.Fatal("cache hit did not record a job")
	}

	// Unpin; a further regressing run stays silent.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/baselines/golden", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /baselines/golden = %d", dresp.StatusCode)
	}
	dresp2, _ := http.DefaultClient.Do(req)
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", dresp2.StatusCode)
	}
}

func TestBaselinePinErrors(t *testing.T) {
	ts := newLedgerServer(t).ts
	fast := runSeed(t, ts, 1)

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/baselines", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"name":"bad name!","spec_hash":"` + fast.SpecHash + `"}`); got != http.StatusBadRequest {
		t.Fatalf("bad name = %d, want 400", got)
	}
	if got := post(`{"name":"ok","spec_hash":"sha256:unknown"}`); got != http.StatusNotFound {
		t.Fatalf("unknown hash = %d, want 404", got)
	}
	if got := post(`{"name":"ok","run_id":"run-999999"}`); got != http.StatusNotFound {
		t.Fatalf("unknown run = %d, want 404", got)
	}
	if got := post(`{"name":"ok"}`); got != http.StatusBadRequest {
		t.Fatalf("no ref = %d, want 400", got)
	}
	if got := post(`{"nome":"typo"}`); got != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", got)
	}
}

// TestNoLedgerFallbacks: without a ledger the cross-run routes answer
// 503 with a hint, mirroring the other optional subsystems.
func TestNoLedgerFallbacks(t *testing.T) {
	mgr := jobs.New(latencyExec, 4)
	s := New(nil, nil)
	s.AttachJobs(mgr)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body, resp := getAccept(t, ts.URL+"/baselines", "")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "-data-dir") {
		t.Fatalf("/baselines without ledger = %d: %s", resp.StatusCode, body)
	}
	// /compare needs only the job manager (memory store works);
	// operands that don't resolve still answer 404, not 503.
	_, resp = getAccept(t, ts.URL+"/compare?base=run-000001&head=run-000002", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/compare without ledger = %d, want 404", resp.StatusCode)
	}

	// And with no job API at all, both are 503.
	s2 := New(nil, nil)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	for _, path := range []string{"/compare", "/baselines"} {
		_, resp := getAccept(t, ts2.URL+path, "")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s without jobs = %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestRunsListFilters(t *testing.T) {
	ts := newLedgerServer(t).ts
	first := runSeed(t, ts, 1)
	second := runSeed(t, ts, 2)

	type listResp struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	list := func(query string) (listResp, int) {
		body, resp := getAccept(t, ts.URL+"/runs"+query, "")
		var lr listResp
		json.Unmarshal([]byte(body), &lr)
		return lr, resp.StatusCode
	}

	lr, code := list("")
	if code != http.StatusOK || len(lr.Jobs) != 2 {
		t.Fatalf("unfiltered = %d jobs (status %d)", len(lr.Jobs), code)
	}
	lr, code = list("?state=done")
	if code != http.StatusOK || len(lr.Jobs) != 2 {
		t.Fatalf("state=done = %d jobs (status %d)", len(lr.Jobs), code)
	}
	lr, code = list("?state=failed")
	if code != http.StatusOK || len(lr.Jobs) != 0 {
		t.Fatalf("state=failed = %d jobs (status %d)", len(lr.Jobs), code)
	}
	lr, code = list("?limit=1")
	if code != http.StatusOK || len(lr.Jobs) != 1 || lr.Jobs[0].ID != second.ID {
		t.Fatalf("limit=1 = %+v (status %d), want newest %s", lr.Jobs, code, second.ID)
	}
	lr, code = list("?limit=0")
	if code != http.StatusOK || len(lr.Jobs) != 0 {
		t.Fatalf("limit=0 = %d jobs (status %d)", len(lr.Jobs), code)
	}
	if _, code = list("?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("limit=-1 = %d, want 400", code)
	}
	if _, code = list("?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("limit=x = %d, want 400", code)
	}
	if _, code = list("?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("state=bogus = %d, want 400", code)
	}
	_ = first
}

func waitForEvent(t *testing.T, sub *Subscriber, typ string) Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		evs, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("no %q event before timeout", typ)
		}
		for _, ev := range evs {
			if ev.Type == typ {
				return ev
			}
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
