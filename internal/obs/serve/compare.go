package serve

// The cross-run surface: /compare and /baselines, plus the automatic
// diff-on-completion hook. Together they close the loop the CLI gate
// (melodydiff) only closes offline: a run finishes, the observatory
// diffs it against the pinned baseline for its experiment set, and a
// regression becomes a counter (melody_regressions_total), a
// structured log line and an SSE event — all without leaving the
// service.
//
//	GET  /compare?base=&head=      diff two stored runs. Operands are
//	                               run ids (run-000001) or spec hashes
//	                               (sha256:…); ?threshold= overrides
//	                               the noise gate. Accept:
//	                               application/json returns the
//	                               structured report, anything else the
//	                               human table.
//	GET  /baselines                list pinned baselines
//	POST /baselines                pin {"name": …, "spec_hash": …} or
//	                               {"name": …, "run_id": …}
//	DELETE /baselines/{name}       unpin
//
// /compare shares its library path (internal/melody/diff.Compare) with
// melodydiff, so the service and the CLI gate agree by construction on
// what counts as a regression.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/melody/diff"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/ledger"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// AttachLedger wires the durable run ledger into the observatory:
// /compare and /baselines mount on the mux, and every non-interrupted
// job completion is automatically diffed against the pinned baselines
// matching its experiment set. Call before Handler/Start, after
// AttachJobs (the compare operands resolve through the job manager).
func (s *Server) AttachLedger(led *ledger.Ledger) {
	if led == nil {
		return
	}
	s.ledger = led
}

// operandError pairs an HTTP status with a message, so resolve's
// callers answer 400 vs 404 without re-classifying strings.
type operandError struct {
	code int
	msg  string
}

func (e *operandError) Error() string { return e.msg }

// resolveOperand turns one /compare operand into manifest bytes. Run
// ids resolve through the job table (so "the run I just watched" works
// verbatim); spec hashes resolve through the run store (so stored
// history works even after the job table is gone).
func (a *jobAPI) resolveOperand(name, val string) ([]byte, *operandError) {
	switch {
	case val == "":
		return nil, &operandError{http.StatusBadRequest,
			fmt.Sprintf("missing %q: want a run id (run-000001) or spec hash (sha256:…)", name)}
	case strings.HasPrefix(val, "run-"):
		raw, _, err := a.mgr.Manifest(val)
		switch {
		case errors.Is(err, jobs.ErrUnknownJob):
			return nil, &operandError{http.StatusNotFound, fmt.Sprintf("%s: unknown job %s", name, val)}
		case errors.Is(err, jobs.ErrNotFinished):
			return nil, &operandError{http.StatusNotFound, fmt.Sprintf("%s: job %s has not finished", name, val)}
		case err != nil:
			return nil, &operandError{http.StatusNotFound, fmt.Sprintf("%s: %v", name, err)}
		}
		return raw, nil
	case strings.HasPrefix(val, "sha256:"):
		raw, _, ok := a.mgr.ManifestBySpec(val)
		if !ok {
			return nil, &operandError{http.StatusNotFound, fmt.Sprintf("%s: no stored run for spec %s", name, val)}
		}
		return raw, nil
	default:
		return nil, &operandError{http.StatusBadRequest,
			fmt.Sprintf("bad %s %q: want a run id (run-000001) or spec hash (sha256:…)", name, val)}
	}
}

// compare is GET /compare?base=&head=[&threshold=].
func (s *Server) compare(w http.ResponseWriter, r *http.Request) {
	s.compares.Inc()
	q := r.URL.Query()
	opt := diff.Options{}
	if v := q.Get("threshold"); v != "" {
		th, err := strconv.ParseFloat(v, 64)
		if err != nil || th < 0 {
			http.Error(w, "bad threshold: want a non-negative number (0.05 = 5%)", http.StatusBadRequest)
			return
		}
		opt.Threshold = th
	}
	base, head := q.Get("base"), q.Get("head")
	baseRaw, operr := s.jobs.resolveOperand("base", base)
	if operr == nil {
		var headRaw []byte
		if headRaw, operr = s.jobs.resolveOperand("head", head); operr == nil {
			baseM, err := melody.DecodeManifest(baseRaw)
			if err != nil {
				http.Error(w, "base manifest: "+err.Error(), http.StatusInternalServerError)
				return
			}
			headM, err := melody.DecodeManifest(headRaw)
			if err != nil {
				http.Error(w, "head manifest: "+err.Error(), http.StatusInternalServerError)
				return
			}
			rep := diff.Compare(baseM, headM, opt)
			rep.OldPath, rep.NewPath = base, head
			if rep.HasRegressions() {
				s.compareRegr.Inc()
			}
			// Content negotiation mirrors /metrics: structured JSON on
			// request, the melodydiff table otherwise.
			if wantsJSON(r.Header.Get("Accept")) {
				writeJSON(w, rep)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, rep.Table())
			return
		}
	}
	http.Error(w, operr.msg, operr.code)
}

// wantsJSON implements /compare's two-dialect negotiation: anything
// explicitly asking for application/json gets the structured report.
func wantsJSON(accept string) bool {
	return strings.Contains(accept, "application/json")
}

// baselineList is GET /baselines.
func (s *Server) baselineList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"baselines": s.ledger.Baselines()})
}

// baselinePin is POST /baselines: pin a stored run as the named
// reference its experiment set is gated against. 201 pinned, 400 bad
// name/body, 404 unknown run or spec hash.
func (s *Server) baselinePin(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req struct {
		Name     string `json:"name"`
		SpecHash string `json:"spec_hash"`
		RunID    string `json:"run_id"`
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	hash := req.SpecHash
	if hash == "" && req.RunID != "" {
		st, ok := s.jobs.mgr.Status(req.RunID)
		if !ok {
			http.Error(w, "unknown job "+req.RunID, http.StatusNotFound)
			return
		}
		hash = st.SpecHash
	}
	if hash == "" {
		http.Error(w, `want {"name": …, "spec_hash": …} or {"name": …, "run_id": …}`, http.StatusBadRequest)
		return
	}
	b, err := s.ledger.Pin(req.Name, hash)
	switch {
	case errors.Is(err, ledger.ErrBadName):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ledger.ErrUnknownRef):
		http.Error(w, err.Error()+" (the run must be stored in the ledger)", http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.log.Info("baseline pinned",
		svclog.KeyReqID, svclog.ReqID(r.Context()),
		"baseline", b.Name, svclog.KeySpecHash, b.SpecHash, "address", b.Address)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(b)
}

// baselineUnpin is DELETE /baselines/{name}.
func (s *Server) baselineUnpin(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.ledger.Unpin(name) {
		http.Error(w, "unknown baseline "+name, http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// noLedger answers /compare and /baselines when no durable ledger is
// attached — same 503-with-hint pattern as the other optional
// subsystems.
func (s *Server) noLedger(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "run ledger not enabled on this observatory (start with -data-dir)", http.StatusServiceUnavailable)
}

// experimentSet is the baseline-matching identity: the sorted
// experiment ids of a spec. A baseline gates exactly the runs that
// execute the same experiment set (other knobs — seed, workloads —
// may differ; that is what the diff's notes surface).
func experimentSet(exps []string) string {
	s := append([]string(nil), exps...)
	sort.Strings(s)
	return strings.Join(s, ",")
}

// diffOnCompletion diffs one finished job against every pinned
// baseline with the same experiment set. Called synchronously from the
// manager's notify path *before* the job_finished event is published,
// so per-job SSE subscribers (whose stream closes at job_finished)
// still see the regression event. Regressions become:
//
//   - melody_regressions_total{baseline=…} on /metrics (the crossrun
//     registry renders under the engine namespace),
//   - one Warn log line carrying job_id / spec_hash / trace_id,
//   - an SSE "regression" event on the job's stream and the run-level
//     /events stream.
func (a *jobAPI) diffOnCompletion(ev jobs.Event) {
	s := a.srv
	led := s.ledger
	if led == nil {
		return
	}
	baselines := led.Baselines()
	if len(baselines) == 0 {
		return
	}
	raw, _, ok := a.mgr.ManifestBySpec(ev.SpecHash)
	if !ok {
		return
	}
	headM, err := melody.DecodeManifest(raw)
	if err != nil {
		s.log.Error("baseline diff: head manifest undecodable",
			svclog.KeyJobID, ev.JobID, svclog.KeySpecHash, ev.SpecHash, "err", err.Error())
		return
	}
	st, ok := a.mgr.Status(ev.JobID)
	if !ok {
		return
	}
	headSet := experimentSet(st.Spec.Experiments)

	for _, b := range baselines {
		if b.SpecHash == ev.SpecHash {
			// The run *is* the baseline; diffing it against itself says
			// nothing.
			continue
		}
		entry, ok := led.Entry(b.SpecHash)
		if !ok {
			continue
		}
		baseSpec, err := spec.Decode(entry.SpecJSON)
		if err != nil || experimentSet(baseSpec.Experiments) != headSet {
			continue
		}
		baseRaw, _, ok := led.Get(b.SpecHash)
		if !ok {
			continue
		}
		baseM, err := melody.DecodeManifest(baseRaw)
		if err != nil {
			s.log.Error("baseline diff: baseline manifest undecodable",
				"baseline", b.Name, svclog.KeySpecHash, b.SpecHash, "err", err.Error())
			continue
		}
		s.baselineChecks.Inc()
		rep := diff.Compare(baseM, headM, diff.Options{})
		rep.OldPath, rep.NewPath = "baseline:"+b.Name, ev.JobID
		if !rep.HasRegressions() {
			continue
		}
		// Baseline names are validated to a prom-safe charset at Pin
		// time, so the label value needs no further escaping.
		s.crossreg.Counter("regressions|baseline="+b.Name).Add(uint64(len(rep.Regressions)))
		worst := rep.Regressions[0]
		s.log.Warn("baseline regression detected",
			svclog.KeyJobID, ev.JobID,
			svclog.KeySpecHash, ev.SpecHash,
			svclog.KeyTraceID, ev.TraceID,
			"baseline", b.Name,
			"baseline_spec_hash", b.SpecHash,
			"regressions", len(rep.Regressions),
			"worst_metric", worst.Metric,
			"worst_delta", worst.RelDelta,
		)
		regrEv := Event{
			Type:        EventRegression,
			Job:         ev.JobID,
			SpecHash:    ev.SpecHash,
			TraceID:     ev.TraceID,
			Baseline:    b.Name,
			Regressions: len(rep.Regressions),
			Metric:      worst.Metric,
			Delta:       worst.RelDelta,
		}
		a.hub(ev.JobID).Publish(regrEv)
		s.hub.Publish(regrEv)
	}
}
