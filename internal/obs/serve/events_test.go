package serve

import (
	"context"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

func TestHubDropOldest(t *testing.T) {
	reg := obs.NewRegistry()
	dropped := reg.Counter("dropped")
	h := NewHub(8, reg.Counter("published"), dropped)
	sub := h.Subscribe()
	defer h.Unsubscribe(sub)

	// A wedged client: 100 events arrive while it drains nothing.
	for i := 0; i < 100; i++ {
		h.Publish(Event{Type: EventCell})
	}
	if got := dropped.Value(); got != 92 {
		t.Fatalf("dropped = %d, want 92 (100 published into a queue of 8)", got)
	}
	if sub.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", sub.Pending())
	}
	evs, ok := sub.Next(context.Background())
	if !ok || len(evs) != 8 {
		t.Fatalf("drained %d events (ok=%v), want 8", len(evs), ok)
	}
	// Oldest dropped: the survivors are exactly the newest eight, in
	// order, so the client sees a seq gap of 92.
	for i, ev := range evs {
		if want := uint64(93 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (drop-oldest order)", i, ev.Seq, want)
		}
	}
}

func TestHubPublishNeverBlocks(t *testing.T) {
	h := NewHub(4, nil, nil)
	// Two wedged subscribers that never drain.
	h.Subscribe()
	h.Subscribe()
	start := time.Now()
	for i := 0; i < 50_000; i++ {
		h.Publish(Event{Type: EventCell, Done: i})
	}
	// 50k publishes into full queues must complete in interactive time:
	// the engine's wall clock cannot depend on consumer behaviour. The
	// bound is deliberately loose (CI machines), the property is "does
	// not hang".
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("50k publishes with wedged subscribers took %v", el)
	}
}

func TestHubSequenceMonotone(t *testing.T) {
	h := NewHub(0, nil, nil)
	sub := h.Subscribe()
	for i := 0; i < 5; i++ {
		h.Publish(Event{Type: EventCell})
	}
	evs, _ := sub.Next(context.Background())
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq not dense without drops: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestSubscriberNextCancel(t *testing.T) {
	h := NewHub(0, nil, nil)
	sub := h.Subscribe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned ok after cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	h := NewHub(0, nil, nil)
	sub := h.Subscribe()
	h.Unsubscribe(sub)
	h.Publish(Event{Type: EventRunEnd})
	if sub.Pending() != 0 {
		t.Fatal("unsubscribed consumer still received events")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscriber count = %d after unsubscribe", h.Subscribers())
	}
}

func TestNilHubPublish(t *testing.T) {
	var h *Hub
	h.Publish(Event{Type: EventCell}) // must not panic
}
