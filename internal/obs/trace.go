package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace records wall-clock spans and instants in the Chrome trace-event
// format (the JSON-object flavour: {"traceEvents": [...]}), which loads
// directly in Perfetto (ui.perfetto.dev) and chrome://tracing. All
// methods are safe for concurrent use, and every method on a nil *Trace
// is a no-op, so call sites record unconditionally.
//
// Timestamps are microseconds of wall time since the trace was created.
// Traces observe the engine, not the simulation: simulated nanoseconds
// never appear here, and recording never feeds back into results.
type Trace struct {
	mu      sync.Mutex
	t0      time.Time
	events  []Event
	procs   map[int]string
	threads map[[2]int]string
}

// Event is one Chrome trace event. Ph "X" is a complete span (Ts+Dur),
// "i" an instant, "M" metadata (process/thread names).
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace returns a trace whose timestamps count from now.
func NewTrace() *Trace {
	return &Trace{
		t0:      time.Now(),
		procs:   map[int]string{},
		threads: map[[2]int]string{},
	}
}

// sinceUs returns the current trace timestamp in microseconds.
func (t *Trace) sinceUs() float64 {
	return float64(time.Since(t.t0)) / float64(time.Microsecond)
}

func (t *Trace) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// SetProcessName names a pid's track group. Idempotent.
func (t *Trace) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// SetThreadName names a (pid, tid) track. Idempotent.
func (t *Trace) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Span is an in-progress interval started by Begin. The zero value
// (from a nil trace) ends as a no-op.
type Span struct {
	t     *Trace
	pid   int
	tid   int
	name  string
	cat   string
	start float64
}

// Begin starts a span on the (pid, tid) track.
func (t *Trace) Begin(pid, tid int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, pid: pid, tid: tid, name: name, cat: cat, start: t.sinceUs()}
}

// Active reports whether the span records anywhere — false for spans
// from a nil trace, letting callers skip building args.
func (s Span) Active() bool { return s.t != nil }

// End completes the span.
func (s Span) End() { s.EndWith(nil) }

// EndWith completes the span with event args (shown in the Perfetto
// detail pane).
func (s Span) EndWith(args map[string]any) {
	if s.t == nil {
		return
	}
	end := s.t.sinceUs()
	s.t.add(Event{Name: s.name, Cat: s.cat, Ph: "X", Ts: s.start,
		Dur: end - s.start, Pid: s.pid, Tid: s.tid, Args: args})
}

// CompleteAt records an already-completed span with explicit
// wall-clock bounds, placed in the trace's timestamp space via the
// same clock StampUs uses. It is the bridge for span sources that
// measure elsewhere and report afterwards — the service-plane
// tracespan mirror renders request/queue/exec/cell spans here so they
// line up with the engine's worker and sample tracks in one Perfetto
// view. Spans that began before the trace did get negative timestamps,
// which Perfetto renders fine.
func (t *Trace) CompleteAt(pid, tid int, name, cat string, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	ts := t.StampUs(start)
	t.add(Event{Name: name, Cat: cat, Ph: "X", Ts: ts,
		Dur: t.StampUs(end) - ts, Pid: pid, Tid: tid, Args: args})
}

// CounterAt records a counter-track sample at an explicit trace
// timestamp (microseconds since trace start). Chrome "C" events render
// in Perfetto as per-process counter tracks: each distinct name under a
// pid becomes its own plotted series. Unlike spans and instants, the
// caller supplies the timestamp — counter samples describe simulated
// time mapped into the trace's clock, not the moment of recording.
func (t *Trace) CounterAt(pid int, name string, tsUs, value float64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Ph: "C", Ts: tsUs, Pid: pid,
		Args: map[string]any{"value": value}})
}

// StampUs converts a wall-clock instant into this trace's timestamp
// space (microseconds since trace start), letting callers place
// explicitly-timed events (CounterAt) relative to recorded spans.
func (t *Trace) StampUs(at time.Time) float64 {
	if t == nil {
		return 0
	}
	return float64(at.Sub(t.t0)) / float64(time.Microsecond)
}

// Instant records a point event on the (pid, tid) track.
func (t *Trace) Instant(pid, tid int, name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: "i", Ts: t.sinceUs(), Pid: pid, Tid: tid, Args: args})
}

// Len returns the number of recorded events (metadata excluded).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// tracePayload is the emitted top-level object.
type tracePayload struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// snapshot assembles the full event list: name metadata first (sorted
// for determinism), then events in recording order.
func (t *Trace) snapshot() tracePayload {
	p := tracePayload{TraceEvents: []Event{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pids := make([]int, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p.TraceEvents = append(p.TraceEvents, Event{Name: "process_name", Ph: "M",
			Pid: pid, Args: map[string]any{"name": t.procs[pid]}})
	}
	keys := make([][2]int, 0, len(t.threads))
	for k := range t.threads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		p.TraceEvents = append(p.TraceEvents, Event{Name: "thread_name", Ph: "M",
			Pid: k[0], Tid: k[1], Args: map[string]any{"name": t.threads[k]}})
	}
	p.TraceEvents = append(p.TraceEvents, t.events...)
	return p
}

// MarshalJSON emits the Chrome trace-event JSON object.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.snapshot())
}

// WriteJSON writes the trace to w as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.snapshot())
}
