package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"testing"
)

// --- minimal protobuf reader, enough to verify the encoder ---

type field struct {
	num  int
	wire int
	val  uint64 // wire 0
	data []byte // wire 2
}

func parseFields(t *testing.T, b []byte) []field {
	t.Helper()
	var out []field
	for len(b) > 0 {
		tag, n := parseVarint(t, b)
		b = b[n:]
		f := field{num: int(tag >> 3), wire: int(tag & 7)}
		switch f.wire {
		case 0:
			f.val, n = parseVarint(t, b)
			b = b[n:]
		case 2:
			l, n := parseVarint(t, b)
			b = b[n:]
			if uint64(len(b)) < l {
				t.Fatalf("truncated length-delimited field %d", f.num)
			}
			f.data = b[:l]
			b = b[l:]
		default:
			t.Fatalf("unexpected wire type %d for field %d", f.wire, f.num)
		}
		out = append(out, f)
	}
	return out
}

func parseVarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated varint")
	return 0, 0
}

func parsePacked(t *testing.T, data []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(data) > 0 {
		v, n := parseVarint(t, data)
		out = append(out, v)
		data = data[n:]
	}
	return out
}

// decoded mirrors the subset of profile.proto the tests verify.
type decoded struct {
	strings     []string
	sampleTypes [][2]string // type, unit
	samples     []decSample
	funcNames   map[uint64]string // function id -> name
	locFunc     map[uint64]uint64 // location id -> function id
	defaultType string
}

type decSample struct {
	locs   []uint64
	values []uint64
	labels map[string]string
}

func decode(t *testing.T, raw []byte) decoded {
	t.Helper()
	d := decoded{funcNames: map[uint64]string{}, locFunc: map[uint64]uint64{}}
	var defaultIdx uint64
	type vt struct{ typ, unit uint64 }
	var vts []vt
	var labelPairs []map[uint64]uint64
	for _, f := range parseFields(t, raw) {
		switch f.num {
		case profStringTable:
			d.strings = append(d.strings, string(f.data))
		case profSampleType:
			var v vt
			for _, sf := range parseFields(t, f.data) {
				if sf.num == vtType {
					v.typ = sf.val
				}
				if sf.num == vtUnit {
					v.unit = sf.val
				}
			}
			vts = append(vts, v)
		case profSample:
			var s decSample
			labels := map[uint64]uint64{}
			for _, sf := range parseFields(t, f.data) {
				switch sf.num {
				case sampleLocationID:
					s.locs = parsePacked(t, sf.data)
				case sampleValue:
					s.values = parsePacked(t, sf.data)
				case sampleLabel:
					var k, v uint64
					for _, lf := range parseFields(t, sf.data) {
						if lf.num == labelKey {
							k = lf.val
						}
						if lf.num == labelStr {
							v = lf.val
						}
					}
					labels[k] = v
				}
			}
			d.samples = append(d.samples, s)
			labelPairs = append(labelPairs, labels)
		case profLocation:
			var id, fn uint64
			for _, lf := range parseFields(t, f.data) {
				if lf.num == locID {
					id = lf.val
				}
				if lf.num == locLine {
					for _, ln := range parseFields(t, lf.data) {
						if ln.num == lineFunctionID {
							fn = ln.val
						}
					}
				}
			}
			d.locFunc[id] = fn
		case profDefaultType:
			defaultIdx = f.val
		}
	}
	// Functions reference the string table, which the encoder emits
	// last; resolve them in a second pass once all strings are read.
	for _, f := range parseFields(t, raw) {
		if f.num != profFunction {
			continue
		}
		var id, name uint64
		for _, ff := range parseFields(t, f.data) {
			if ff.num == funcID {
				id = ff.val
			}
			if ff.num == funcName {
				name = ff.val
			}
		}
		d.funcNames[id] = d.strings[name]
	}
	for _, v := range vts {
		d.sampleTypes = append(d.sampleTypes, [2]string{d.strings[v.typ], d.strings[v.unit]})
	}
	for i, labels := range labelPairs {
		d.samples[i].labels = map[string]string{}
		for k, v := range labels {
			d.samples[i].labels[d.strings[k]] = d.strings[v]
		}
	}
	if defaultIdx != 0 {
		d.defaultType = d.strings[defaultIdx]
	}
	return d
}

// stackOf reconstructs a sample's root-first frame names.
func (d decoded) stackOf(t *testing.T, s decSample) []string {
	t.Helper()
	out := make([]string, len(s.locs))
	for i, loc := range s.locs {
		fn, ok := d.locFunc[loc]
		if !ok {
			t.Fatalf("sample references unknown location %d", loc)
		}
		name, ok := d.funcNames[fn]
		if !ok {
			t.Fatalf("location %d references unknown function %d", loc, fn)
		}
		// locs are leaf-first; build root-first.
		out[len(s.locs)-1-i] = name
	}
	return out
}

func testTypes() []ValueType {
	return []ValueType{
		{Type: "sim_cycles", Unit: "cycles"},
		{Type: "sim_ns", Unit: "nanoseconds"},
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	b := NewBuilder(testTypes()...)
	cfg := []Label{{Key: "config", Str: "CXL-A"}}
	b.Add([]string{"wl", "EMR2S", "bound on loads", "DRAM"}, cfg, 100, 40)
	b.Add([]string{"wl", "EMR2S", "bound on loads", "DRAM"}, cfg, 23, 9.2)
	b.Add([]string{"wl", "EMR2S", "retiring"}, cfg, 7.4, 3)

	p := b.Profile()
	d := decode(t, p.Encode())

	if len(d.strings) == 0 || d.strings[0] != "" {
		t.Fatalf("string_table[0] = %q, want empty", d.strings[0])
	}
	want := [][2]string{{"sim_cycles", "cycles"}, {"sim_ns", "nanoseconds"}}
	if len(d.sampleTypes) != 2 || d.sampleTypes[0] != want[0] || d.sampleTypes[1] != want[1] {
		t.Fatalf("sample types = %v, want %v", d.sampleTypes, want)
	}
	if d.defaultType != "sim_cycles" {
		t.Fatalf("default sample type = %q, want sim_cycles", d.defaultType)
	}
	if len(d.samples) != 2 {
		t.Fatalf("got %d samples, want 2 (aggregated)", len(d.samples))
	}
	for _, s := range d.samples {
		stack := d.stackOf(t, s)
		switch stack[len(stack)-1] {
		case "DRAM":
			if s.values[0] != 123 || s.values[1] != 49 {
				t.Fatalf("DRAM sample values = %v, want [123 49]", s.values)
			}
			if len(stack) != 4 || stack[0] != "wl" || stack[2] != "bound on loads" {
				t.Fatalf("DRAM stack = %v", stack)
			}
		case "retiring":
			if s.values[0] != 7 || s.values[1] != 3 {
				t.Fatalf("retiring sample values = %v, want [7 3]", s.values)
			}
		default:
			t.Fatalf("unexpected leaf %q", stack[len(stack)-1])
		}
		if s.labels["config"] != "CXL-A" {
			t.Fatalf("labels = %v, want config=CXL-A", s.labels)
		}
	}
}

func TestWriteGzipRoundTrip(t *testing.T) {
	b := NewBuilder(testTypes()...)
	b.Add([]string{"wl", "plat", "retiring"}, nil, 10, 5)
	p := b.Profile()

	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, p.Encode()) {
		t.Fatal("gzipped payload does not match Encode output")
	}
}

// TestDeterministicBytes pins the package contract: the same logical
// content produces identical bytes regardless of Add order or how the
// work was split across builders before merging — the property that
// makes -j1 and -jN profile outputs byte-identical.
func TestDeterministicBytes(t *testing.T) {
	stacks := [][]string{
		{"wl-b", "plat", "bound on loads", "L3"},
		{"wl-a", "plat", "bound on loads", "DRAM", "media access"},
		{"wl-a", "plat", "retiring"},
		{"wl-c", "plat", "bound on stores", "Store"},
	}
	build := func(order []int, split bool) []byte {
		b := NewBuilder(testTypes()...)
		other := NewBuilder(testTypes()...)
		for n, i := range order {
			dst := b
			if split && n%2 == 1 {
				dst = other
			}
			dst.Add(stacks[i], []Label{{Key: "config", Str: "CXL-B"}}, float64(10*(i+1)), float64(i+1))
		}
		if err := b.Merge(other); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Profile().Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := build([]int{0, 1, 2, 3}, false)
	for _, c := range []struct {
		name  string
		order []int
		split bool
	}{
		{"reversed", []int{3, 2, 1, 0}, false},
		{"shuffled", []int{2, 0, 3, 1}, false},
		{"merged", []int{1, 3, 0, 2}, true},
	} {
		if got := build(c.order, c.split); !bytes.Equal(got, ref) {
			t.Fatalf("%s build produced different bytes", c.name)
		}
	}
}

func TestMergeSchemaMismatch(t *testing.T) {
	a := NewBuilder(ValueType{Type: "sim_cycles", Unit: "cycles"})
	b := NewBuilder(ValueType{Type: "sim_ns", Unit: "nanoseconds"})
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched sample types merged without error")
	}
	c := NewBuilder(testTypes()...)
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched sample-type count merged without error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := a.Merge(a); err != nil {
		t.Fatalf("self merge: %v", err)
	}
}

func TestBuilderDropsZeroSamples(t *testing.T) {
	b := NewBuilder(testTypes()...)
	b.Add([]string{"wl", "plat", "noise"}, nil, 0.2, 0.1) // rounds to zero
	b.Add([]string{"wl", "plat", "real"}, nil, 3.6, 1.2)
	p := b.Profile()
	if len(p.Samples) != 1 {
		t.Fatalf("got %d samples, want 1 (zero-rounded dropped)", len(p.Samples))
	}
	if p.Samples[0].Values[0] != 4 || p.Samples[0].Values[1] != 1 {
		t.Fatalf("values = %v, want [4 1]", p.Samples[0].Values)
	}
	if got := b.Total(0); math.Abs(got-3.8) > 1e-12 {
		t.Fatalf("Total(0) = %v, want 3.8", got)
	}
}
