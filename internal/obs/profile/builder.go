package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Builder accumulates weighted stacks into a Profile. Values are
// float64 while accumulating (the core model accounts fractional
// cycles) and round to int64 only at Profile time, so per-interval
// fractions add up before quantization. Builders aggregate: Add with
// an already-seen (stack, labels) identity folds into one sample, and
// Merge folds a whole builder in — the per-cell → per-experiment
// merge path. Not safe for concurrent use; profile generation is a
// strictly post-completion step.
type Builder struct {
	types   []ValueType
	byKey   map[string]*accum
	samples int64 // Add calls, for the sample-count comment
}

// accum is one aggregated stack's running totals.
type accum struct {
	stack  []string
	labels []Label
	vals   []float64
}

// NewBuilder returns a Builder producing profiles with the given
// sample types (at least one).
func NewBuilder(types ...ValueType) *Builder {
	return &Builder{types: types, byKey: map[string]*accum{}}
}

// SampleTypes returns the builder's sample-type schema.
func (b *Builder) SampleTypes() []ValueType { return b.types }

// key builds the aggregation identity of a (stack, labels) pair.
// Frame names never contain the separator bytes (they are printable
// attribution labels), so the join is injective in practice.
func key(stack []string, labels []Label) string {
	var sb strings.Builder
	for _, f := range stack {
		sb.WriteString(f)
		sb.WriteByte(0)
	}
	sb.WriteByte(1)
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(0)
		sb.WriteString(l.Str)
		sb.WriteByte(0)
	}
	return sb.String()
}

// Add accumulates one weighted stack (root-first). vals must have one
// entry per sample type; non-positive-weight stacks (all vals <= 0)
// still aggregate but are dropped at Profile time if they round to
// all-zero.
func (b *Builder) Add(stack []string, labels []Label, vals ...float64) {
	if len(vals) != len(b.types) {
		panic(fmt.Sprintf("profile: Add got %d values for %d sample types", len(vals), len(b.types)))
	}
	k := key(stack, labels)
	a, ok := b.byKey[k]
	if !ok {
		a = &accum{
			stack:  append([]string(nil), stack...),
			labels: append([]Label(nil), labels...),
			vals:   make([]float64, len(vals)),
		}
		b.byKey[k] = a
	}
	for i, v := range vals {
		a.vals[i] += v
	}
	b.samples++
}

// Merge folds o's accumulated stacks into b. The two builders must
// share the same sample-type schema.
func (b *Builder) Merge(o *Builder) error {
	if o == nil || o == b {
		return nil
	}
	if len(o.types) != len(b.types) {
		return fmt.Errorf("profile: merging %d sample types into %d", len(o.types), len(b.types))
	}
	for i, t := range o.types {
		if b.types[i] != t {
			return fmt.Errorf("profile: sample type %d mismatch: %v vs %v", i, t, b.types[i])
		}
	}
	for k, a := range o.byKey {
		dst, ok := b.byKey[k]
		if !ok {
			dst = &accum{
				stack:  append([]string(nil), a.stack...),
				labels: append([]Label(nil), a.labels...),
				vals:   make([]float64, len(a.vals)),
			}
			b.byKey[k] = dst
		}
		for i, v := range a.vals {
			dst.vals[i] += v
		}
	}
	b.samples += o.samples
	return nil
}

// Total returns the accumulated total of sample-type index i across
// all stacks — what reconciliation checks compare against counter
// totals.
func (b *Builder) Total(i int) float64 {
	var t float64
	for _, a := range b.byKey {
		t += a.vals[i]
	}
	return t
}

// Profile assembles the deterministic Profile: stacks sorted by their
// aggregation key (stable under any Add/Merge order), values rounded
// to the nearest integer, all-zero samples dropped.
func (b *Builder) Profile() *Profile {
	keys := make([]string, 0, len(b.byKey))
	for k := range b.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	p := &Profile{SampleTypes: append([]ValueType(nil), b.types...)}
	if len(b.types) > 0 {
		p.DefaultSampleType = b.types[0].Type
	}
	for _, k := range keys {
		a := b.byKey[k]
		vals := make([]int64, len(a.vals))
		zero := true
		for i, v := range a.vals {
			vals[i] = int64(math.Round(v))
			if vals[i] != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		p.Samples = append(p.Samples, Sample{Stack: a.stack, Values: vals, Labels: a.labels})
	}
	return p
}
