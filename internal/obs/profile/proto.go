// Package profile renders simulated-time measurements as pprof
// profiles — the profile.proto wire format consumed by `go tool
// pprof`, speedscope, and every flamegraph viewer built on it.
//
// Real profilers sample a program counter; here the "program" is the
// simulated machine and the stacks are synthetic: each frame names a
// level of the model's stall attribution (workload → platform → stall
// source → memory level → device component), and each sample's values
// are the simulated cycles and nanoseconds that level absorbed. The
// paper's whole method is explaining slowdowns by where stalled cycles
// go (Table 2); exporting that attribution as a standard profile makes
// the model's time budget explorable with off-the-shelf tooling.
//
// The encoder is hand-rolled: profile.proto needs only varint and
// length-delimited protobuf wire types, so a dependency-free writer is
// ~150 lines. Output is deterministic — same Profile, same bytes —
// because the string/function tables intern in sample order and the
// gzip header carries no timestamp; byte-identical profiles across
// worker counts are part of the package contract.
package profile

import (
	"compress/gzip"
	"io"
)

// ValueType names one sample dimension (e.g. {"sim_cycles",
// "cycles"}); the strings land in the profile's string table.
type ValueType struct {
	Type string
	Unit string
}

// Label is one string label attached to a sample (pprof tag), e.g.
// {"config", "CXL-A"}. Tags survive aggregation, so a merged profile
// can still be filtered per memory config with pprof's -tagfocus.
type Label struct {
	Key string
	Str string
}

// Sample is one synthetic stack with its measured values. Stack is
// root-first (workload outermost); the encoder reverses it into
// pprof's leaf-first location order. len(Values) must equal the
// profile's sample-type count.
type Sample struct {
	Stack  []string
	Values []int64
	Labels []Label
}

// Profile is a complete pprof profile ready to encode. Build one with
// a Builder (which aggregates and orders samples deterministically) or
// assemble it directly in tests.
type Profile struct {
	SampleTypes []ValueType
	// DefaultSampleType selects which value column pprof shows by
	// default; must match a SampleTypes entry's Type when set.
	DefaultSampleType string
	// DurationNanos is the profiled span — simulated nanoseconds, per
	// this package's charter. TimeNanos is deliberately absent: wall
	// clocks would break byte-determinism.
	DurationNanos int64
	Comments      []string
	Samples       []Sample
}

// Protobuf field numbers of profile.proto (the pprof wire format).
const (
	profSampleType    = 1
	profSample        = 2
	profLocation      = 4
	profFunction      = 5
	profStringTable   = 6
	profDurationNanos = 10
	profComment       = 13
	profDefaultType   = 14

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2
	sampleLabel      = 3

	labelKey = 1
	labelStr = 2

	locID   = 1
	locLine = 4

	lineFunctionID = 1

	funcID   = 1
	funcName = 2
)

// buffer is a minimal protobuf writer: varints, tagged scalar fields,
// and length-delimited submessages.
type buffer struct{ b []byte }

func (e *buffer) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

// tag emits a field key: (field number << 3) | wire type.
func (e *buffer) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

// uint64Field emits a varint-typed field, skipping the zero default.
func (e *buffer) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, 0)
	e.varint(v)
}

// int64Field emits a non-negative int64 varint field. Profile values
// here are cycle and nanosecond totals, never negative.
func (e *buffer) int64Field(field int, v int64) { e.uint64Field(field, uint64(v)) }

// bytesField emits a length-delimited field (submessage or string).
func (e *buffer) bytesField(field int, data []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(data)))
	e.b = append(e.b, data...)
}

func (e *buffer) stringField(field int, s string) { e.bytesField(field, []byte(s)) }

// packedField emits a repeated varint field in packed encoding.
func (e *buffer) packedField(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var p buffer
	for _, v := range vals {
		p.varint(v)
	}
	e.bytesField(field, p.b)
}

// stringTable interns strings; index 0 is always "" as profile.proto
// requires.
type stringTable struct {
	idx map[string]int64
	tab []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int64{"": 0}, tab: []string{""}}
}

func (st *stringTable) index(s string) int64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := int64(len(st.tab))
	st.idx[s] = i
	st.tab = append(st.tab, s)
	return i
}

// encodeValueType renders one ValueType submessage.
func encodeValueType(st *stringTable, vt ValueType) []byte {
	var e buffer
	e.int64Field(vtType, st.index(vt.Type))
	e.int64Field(vtUnit, st.index(vt.Unit))
	return e.b
}

// Encode renders the profile as uncompressed profile.proto bytes.
// Frames are interned one function + one location per unique name, in
// first-use order over Samples — deterministic for a fixed sample
// order (the Builder's contract).
func (p *Profile) Encode() []byte {
	st := newStringTable()
	var e buffer

	for _, vt := range p.SampleTypes {
		e.bytesField(profSampleType, encodeValueType(st, vt))
	}

	// One function and one co-numbered location per unique frame name.
	frameID := map[string]uint64{}
	var funcOrder []string
	intern := func(frame string) uint64 {
		if id, ok := frameID[frame]; ok {
			return id
		}
		id := uint64(len(funcOrder) + 1)
		frameID[frame] = id
		funcOrder = append(funcOrder, frame)
		return id
	}

	for _, s := range p.Samples {
		var se buffer
		// pprof wants leaf-first location ids; Stack is root-first.
		locs := make([]uint64, len(s.Stack))
		for i, frame := range s.Stack {
			locs[len(s.Stack)-1-i] = intern(frame)
		}
		se.packedField(sampleLocationID, locs)
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			vals[i] = uint64(v)
		}
		se.packedField(sampleValue, vals)
		for _, l := range s.Labels {
			var le buffer
			le.int64Field(labelKey, st.index(l.Key))
			le.int64Field(labelStr, st.index(l.Str))
			se.bytesField(sampleLabel, le.b)
		}
		e.bytesField(profSample, se.b)
	}

	for i, frame := range funcOrder {
		id := uint64(i + 1)
		var le buffer
		le.uint64Field(lineFunctionID, id)
		var loc buffer
		loc.uint64Field(locID, id)
		loc.bytesField(locLine, le.b)
		e.bytesField(profLocation, loc.b)

		var fn buffer
		fn.uint64Field(funcID, id)
		fn.int64Field(funcName, st.index(frame))
		e.bytesField(profFunction, fn.b)
	}

	e.int64Field(profDurationNanos, p.DurationNanos)
	for _, c := range p.Comments {
		e.int64Field(profComment, st.index(c))
	}
	if p.DefaultSampleType != "" {
		e.int64Field(profDefaultType, st.index(p.DefaultSampleType))
	}

	// The string table indexes above were assigned during encoding, so
	// it is emitted last; field order within a protobuf message is
	// free, and pprof's parser accepts any.
	for _, s := range st.tab {
		e.stringField(profStringTable, s)
	}
	return e.b
}

// Write encodes the profile gzipped — the on-disk format every pprof
// consumer expects. The gzip header carries no mod time, keeping the
// output byte-deterministic.
func (p *Profile) Write(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.Encode()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}
