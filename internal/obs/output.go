package obs

import (
	"fmt"
	"os"
	"path/filepath"
)

// Output-destination validation for the observability flags. The
// artifacts (-metrics manifests, -trace event files, -profile
// directories, sampled-stream CSVs) are written after runs that can
// take minutes; a typo'd or unwritable path must fail at flag-parse
// time, not after the simulation has already burned its wall clock.

// EnsureWritableFile verifies path can be created for writing, making
// parent directories as needed. The file is created empty (without
// truncating existing content) so the writability check exercises the
// same permissions the later write will need.
func EnsureWritableFile(path string) error {
	if path == "" {
		return fmt.Errorf("empty output path")
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("output %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("output %s: %w", path, err)
	}
	return f.Close()
}

// EnsureWritableDir verifies dir exists (creating it as needed) and
// accepts new files, by writing and removing a probe file.
func EnsureWritableDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("empty output directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("output dir %s: %w", dir, err)
	}
	probe := filepath.Join(dir, ".write-probe")
	f, err := os.OpenFile(probe, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("output dir %s: %w", dir, err)
	}
	f.Close()
	return os.Remove(probe)
}
