package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotUnderConcurrentRecording hammers Registry.Snapshot and
// Registry.Export while many goroutines add to counters and record into
// histograms — the exact interleaving a live /metrics scrape performs
// against a running engine. Run under -race it proves the scrape path
// is data-race free; the assertions prove every observed snapshot is
// internally consistent: a histogram's exported count always equals its
// cumulative bucket total (all fields come from one critical section),
// and counters never run backwards between observations.
func TestSnapshotUnderConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	const (
		writers   = 8
		perWriter = 20_000
		snapshots = 200
		histName  = "hammer/latency_ns"
		countName = "hammer/ops"
		gaugeName = "hammer/level"
	)
	h := reg.Histogram(histName)
	c := reg.Counter(countName)
	g := reg.Gauge(gaugeName)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(float64(1 + (w*perWriter+i)%4096))
				c.Add(1)
				g.Set(float64(i))
			}
		}(w)
	}

	var snapWG sync.WaitGroup
	for s := 0; s < 4; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			var lastCount, lastHist uint64
			for i := 0; i < snapshots && !stop.Load(); i++ {
				snap := reg.Snapshot()
				if n := snap.Counters[countName]; n < lastCount {
					t.Errorf("counter ran backwards: %d after %d", n, lastCount)
					return
				} else {
					lastCount = n
				}
				ex := reg.Export()
				he := ex.Histograms[histName]
				var cum uint64
				if len(he.Buckets) > 0 {
					cum = he.Buckets[len(he.Buckets)-1].Count
				}
				if cum != he.Count {
					t.Errorf("snapshot inconsistent: bucket sum %d != count %d", cum, he.Count)
					return
				}
				if he.Count < lastHist {
					t.Errorf("histogram count ran backwards: %d after %d", he.Count, lastHist)
					return
				}
				lastHist = he.Count
				// Get-or-create lookups race with snapshots too.
				reg.Counter(countName)
				reg.Histogram(histName)
			}
		}()
	}

	wg.Wait()
	stop.Store(true)
	snapWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("final counter = %d, want %d", got, writers*perWriter)
	}
	ex := h.Export()
	if ex.Count != writers*perWriter {
		t.Fatalf("final histogram count = %d, want %d", ex.Count, writers*perWriter)
	}
	if last := ex.Buckets[len(ex.Buckets)-1].Count; last != ex.Count {
		t.Fatalf("final bucket sum %d != count %d", last, ex.Count)
	}
}
