package prom

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

// exemplarLine matches a bucket sample with an OpenMetrics exemplar
// clause: name{labels} count # {trace_id="hex"} value [timestamp].
var exemplarLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*le="[^"]+"\} \d+ # \{trace_id="[0-9a-f]+"\} \S+( \d+\.\d+)?$`)

func TestWriteExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("http/request_seconds|route=/runs")
	h.Record(0.001)
	h.RecordExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")

	var buf bytes.Buffer
	if err := Write(&buf, "melody_observatory", reg.Export()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var hits int
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.Contains(line, " # {") {
			continue
		}
		hits++
		if !exemplarLine.MatchString(line) {
			t.Errorf("malformed exemplar line: %q", line)
		}
		if !strings.Contains(line, `trace_id="4bf92f3577b34da6a3ce929d0e0e4736"`) {
			t.Errorf("exemplar carries wrong trace id: %q", line)
		}
	}
	if hits != 1 {
		t.Fatalf("found %d exemplar lines, want exactly 1 (only the annotated bucket):\n%s", hits, out)
	}
	// Exemplars attach to bucket lines only, never _sum/_count.
	for _, suffix := range []string{"_sum", "_count"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, suffix) && strings.Contains(line, "#") {
				t.Errorf("exemplar leaked onto %s line: %q", suffix, line)
			}
		}
	}
}

func TestExemplarSuffixRendering(t *testing.T) {
	if got := exemplarSuffix(nil); got != "" {
		t.Fatalf("nil exemplar rendered %q", got)
	}
	if got := exemplarSuffix(&obs.Exemplar{Value: 1, TraceID: ""}); got != "" {
		t.Fatalf("trace-less exemplar rendered %q", got)
	}
	e := &obs.Exemplar{Value: 0.25, TraceID: "abcd", Time: time.Unix(1700000000, 250_000_000)}
	want := ` # {trace_id="abcd"} 0.25 1700000000.250`
	if got := exemplarSuffix(e); got != want {
		t.Fatalf("exemplarSuffix = %q, want %q", got, want)
	}
	// No timestamp when the exemplar has no time.
	e.Time = time.Time{}
	if got := exemplarSuffix(e); got != ` # {trace_id="abcd"} 0.25` {
		t.Fatalf("timeless exemplarSuffix = %q", got)
	}
}

func TestGoldenUnchangedWithoutExemplars(t *testing.T) {
	// A registry that never calls RecordExemplar renders byte-identically
	// to the pre-exemplar format — scrapers see no new syntax unless a
	// trace-annotated sample actually exists.
	if out := render(t, goldenRegistry()); strings.Contains(out, "#") &&
		strings.Contains(out, "trace_id") {
		t.Fatal("exemplar syntax appeared without any RecordExemplar call")
	}
}
