package prom

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

// exemplarLine matches a bucket sample with an OpenMetrics exemplar
// clause: name{labels} count # {trace_id="hex"} value [timestamp].
var exemplarLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*le="[^"]+"\} \d+ # \{trace_id="[0-9a-f]+"\} \S+( \d+\.\d+)?$`)

// exemplarRegistry holds one histogram with one annotated bucket.
func exemplarRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	h := reg.Histogram("http/request_seconds|route=/runs")
	h.Record(0.001)
	h.RecordExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")
	return reg
}

func renderFormat(t *testing.T, reg *obs.Registry, f Format) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFormat(&buf, "melody_observatory", reg.Export(), f); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	out := renderFormat(t, exemplarRegistry(), FormatOpenMetrics)

	var hits int
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.Contains(line, " # {") {
			continue
		}
		hits++
		if !exemplarLine.MatchString(line) {
			t.Errorf("malformed exemplar line: %q", line)
		}
		if !strings.Contains(line, `trace_id="4bf92f3577b34da6a3ce929d0e0e4736"`) {
			t.Errorf("exemplar carries wrong trace id: %q", line)
		}
	}
	if hits != 1 {
		t.Fatalf("found %d exemplar lines, want exactly 1 (only the annotated bucket):\n%s", hits, out)
	}
	// Exemplars attach to bucket lines only, never _sum/_count.
	for _, suffix := range []string{"_sum", "_count"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, suffix) && strings.Contains(line, "#") {
				t.Errorf("exemplar leaked onto %s line: %q", suffix, line)
			}
		}
	}
}

// TestClassicFormatOmitsExemplars pins the reviewer-facing contract:
// the 0.0.4 grammar ends a sample at its value, so the classic writer
// must drop exemplars entirely — a recorded exemplar changes nothing
// about a plain scrape.
func TestClassicFormatOmitsExemplars(t *testing.T) {
	reg := exemplarRegistry()
	out := renderFormat(t, reg, FormatText)
	if strings.Contains(out, "#") && strings.Contains(out, "trace_id") {
		t.Fatalf("exemplar syntax in 0.0.4 output:\n%s", out)
	}
	var buf bytes.Buffer
	if err := Write(&buf, "melody_observatory", reg.Export()); err != nil {
		t.Fatal(err)
	}
	if out != buf.String() {
		t.Fatal("Write and WriteFormat(FormatText) diverge")
	}
	validateExposition(t, out)
}

// TestOpenMetricsCounterTypeNaming: OpenMetrics names counter families
// bare in # TYPE while sample lines keep the _total suffix; the
// classic format keeps _total in both.
func TestOpenMetricsCounterTypeNaming(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("runner/cache_hit").Add(7)
	om := renderFormat(t, reg, FormatOpenMetrics)
	for _, want := range []string{
		"# TYPE melody_observatory_runner_cache_hit counter\n",
		"melody_observatory_runner_cache_hit_total 7\n",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, om)
		}
	}
	if strings.Contains(om, "# TYPE melody_observatory_runner_cache_hit_total") {
		t.Errorf("OpenMetrics # TYPE kept the _total suffix:\n%s", om)
	}
	classic := renderFormat(t, reg, FormatText)
	if !strings.Contains(classic, "# TYPE melody_observatory_runner_cache_hit_total counter\n") {
		t.Errorf("classic # TYPE lost the _total suffix:\n%s", classic)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   Format
	}{
		{"", FormatText},
		{"text/plain", FormatText},
		{"text/plain; version=0.0.4", FormatText},
		{"*/*", FormatText}, // wildcard never opts into OpenMetrics
		{"application/openmetrics-text", FormatOpenMetrics},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", FormatOpenMetrics},
		// The Prometheus scraper's real header: OpenMetrics preferred.
		{"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5", FormatOpenMetrics},
		{"Application/OpenMetrics-Text", FormatOpenMetrics},
		// Explicit refusal stays classic.
		{"application/openmetrics-text;q=0", FormatText},
		{"application/openmetrics-text;q=0.0, text/plain", FormatText},
	}
	for _, c := range cases {
		got, ctype := Negotiate(c.accept)
		if got != c.want {
			t.Errorf("Negotiate(%q) = %v, want %v", c.accept, got, c.want)
		}
		wantType := ContentType
		if c.want == FormatOpenMetrics {
			wantType = OpenMetricsContentType
		}
		if ctype != wantType {
			t.Errorf("Negotiate(%q) content type = %q, want %q", c.accept, ctype, wantType)
		}
	}
}

func TestWriteEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEOF(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("WriteEOF wrote %q", buf.String())
	}
}

func TestExemplarSuffixRendering(t *testing.T) {
	if got := exemplarSuffix(nil); got != "" {
		t.Fatalf("nil exemplar rendered %q", got)
	}
	if got := exemplarSuffix(&obs.Exemplar{Value: 1, TraceID: ""}); got != "" {
		t.Fatalf("trace-less exemplar rendered %q", got)
	}
	e := &obs.Exemplar{Value: 0.25, TraceID: "abcd", Time: time.Unix(1700000000, 250_000_000)}
	want := ` # {trace_id="abcd"} 0.25 1700000000.250`
	if got := exemplarSuffix(e); got != want {
		t.Fatalf("exemplarSuffix = %q, want %q", got, want)
	}
	// No timestamp when the exemplar has no time.
	e.Time = time.Time{}
	if got := exemplarSuffix(e); got != ` # {trace_id="abcd"} 0.25` {
		t.Fatalf("timeless exemplarSuffix = %q", got)
	}
}

func TestGoldenUnchangedWithoutExemplars(t *testing.T) {
	// A registry that never calls RecordExemplar renders byte-identically
	// to the pre-exemplar format in either dialect's sample lines — no
	// exemplar syntax appears unless a trace-annotated sample exists AND
	// the client negotiated OpenMetrics.
	for _, f := range []Format{FormatText, FormatOpenMetrics} {
		if out := renderFormat(t, goldenRegistry(), f); strings.Contains(out, "trace_id") {
			t.Fatalf("format %v: exemplar syntax appeared without any RecordExemplar call", f)
		}
	}
}
