// Package prom renders an obs.Registry export in the Prometheus text
// exposition format (version 0.0.4) or in OpenMetrics 1.0, using the
// standard library only. It is the bridge between the simulator's
// telemetry and any scraping stack: `melody run -serve ADDR` mounts
// the output at GET /metrics, negotiating the dialect from the Accept
// header (Negotiate). Exemplars are OpenMetrics-only syntax — the
// classic 0.0.4 grammar permits nothing after the sample value — so
// they render only under FormatOpenMetrics; a 0.0.4 scrape of the same
// registry is byte-identical to the pre-exemplar output.
//
// Mapping rules, chosen so scraped series stay stable across runs:
//
//   - Registry paths become metric names under a caller-chosen
//     namespace: "runner/cache_hit" → "melody_runner_cache_hit_total".
//     Characters outside [a-zA-Z0-9_:] collapse to "_".
//   - Counters gain the conventional "_total" suffix; gauges and
//     histograms keep their sanitized path.
//   - Per-device paths "device/<platform>/<config>/<metric>" fold into
//     one family per metric with platform/config labels:
//     "device/EMR2S/CXL-B/latency_ns" →
//     melody_device_latency_ns{platform="EMR2S",config="CXL-B"}
//     so dashboards select configurations by label instead of by
//     pattern-matching metric names.
//   - Explicitly labeled paths "name|k=v|k=v" split at "|": the first
//     segment names the family, the rest become labels. The serve
//     middleware's RED metrics use this —
//     "http/requests|route=/progress|class=2xx" →
//     http_requests_total{route="/progress",class="2xx"} — because
//     route patterns contain "/" and so cannot ride the
//     segment-per-label device rule. Label order in the path is
//     preserved; label values escape but are otherwise verbatim.
//   - obs.Histogram exports map onto native Prometheus histograms:
//     cumulative `_bucket{le="..."}` series (only boundaries where the
//     cumulative count grows, plus the mandatory le="+Inf"), `_sum`,
//     and `_count`.
//
// Output is byte-deterministic for a given export: families sort by
// name, series within a family sort by label signature.
package prom

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/moatlab/melody/internal/obs"
)

// ContentType is the HTTP Content-Type for classic text output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the HTTP Content-Type for OpenMetrics
// output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Format selects the exposition dialect Write emits.
type Format uint8

const (
	// FormatText is the classic Prometheus text format (0.0.4). Its
	// grammar ends a sample line at the value (plus optional
	// timestamp), so exemplars are omitted entirely.
	FormatText Format = iota
	// FormatOpenMetrics is OpenMetrics 1.0: counter # TYPE lines name
	// the family without the _total suffix (samples keep it), histogram
	// bucket lines carry their exemplar clause, and the stream must end
	// with the "# EOF" terminator — emitted once by the caller via
	// WriteEOF, since one exposition may concatenate several
	// WriteFormat calls.
	FormatOpenMetrics
)

// Negotiate picks the exposition format for an HTTP Accept header
// value: FormatOpenMetrics when the client lists
// application/openmetrics-text with non-zero quality (the Prometheus
// scraper sends exactly that when it wants exemplars), FormatText
// otherwise — including an absent header, so curl and pre-OpenMetrics
// scrapers keep getting plain 0.0.4. The second return is the
// Content-Type to respond with.
func Negotiate(accept string) (Format, string) {
	for _, part := range strings.Split(accept, ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(mediaRange), "application/openmetrics-text") {
			continue
		}
		if qualityZero(params) {
			continue
		}
		return FormatOpenMetrics, OpenMetricsContentType
	}
	return FormatText, ContentType
}

// qualityZero reports whether a media-range's parameters carry an
// explicit q=0 (the client refusing the type it names).
func qualityZero(params string) bool {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		return err == nil && q == 0
	}
	return false
}

// WriteEOF terminates an OpenMetrics exposition. OpenMetrics requires
// exactly one "# EOF" after the final family; callers emit it after
// their last WriteFormat call. Classic 0.0.4 output has no terminator
// and must not get one.
func WriteEOF(w io.Writer) error {
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// kind is a family's exposition type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered label block, "" or `{k="v",...}`
	value  float64
	hist   obs.HistogramExport
}

// family is one # TYPE block: every series sharing a metric name.
type family struct {
	name   string
	kind   kind
	series []series
}

// Write renders ex under namespace (e.g. "melody") in the classic
// 0.0.4 exposition format. Families whose sanitized names collide
// across instrument kinds are rejected — mixed-type families are
// invalid exposition — so callers find naming clashes in tests, not in
// their scraper logs.
func Write(w io.Writer, namespace string, ex obs.Export) error {
	return WriteFormat(w, namespace, ex, FormatText)
}

// WriteFormat is Write with an explicit dialect: FormatText for
// classic 0.0.4 output, FormatOpenMetrics for OpenMetrics 1.0 with
// exemplars (the caller appends WriteEOF after its last family).
func WriteFormat(w io.Writer, namespace string, ex obs.Export, format Format) error {
	fams := map[string]*family{}
	add := func(path string, k kind, s series) error {
		name, labels := mapPath(namespace, path, k)
		s.labels = labels
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, kind: k}
			fams[name] = f
		} else if f.kind != k {
			return fmt.Errorf("prom: family %q holds both %s and %s series", name, f.kind, k)
		}
		f.series = append(f.series, s)
		return nil
	}
	for path, v := range ex.Counters {
		if err := add(path, kindCounter, series{value: float64(v)}); err != nil {
			return err
		}
	}
	for path, v := range ex.Gauges {
		if err := add(path, kindGauge, series{value: v}); err != nil {
			return err
		}
	}
	for path, h := range ex.Histograms {
		if err := add(path, kindHistogram, series{hist: h}); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		typeName := f.name
		if format == FormatOpenMetrics && f.kind == kindCounter {
			// OpenMetrics names the counter family bare in # TYPE; only
			// the sample lines carry the _total suffix.
			typeName = strings.TrimSuffix(typeName, "_total")
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", typeName, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s, format); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries emits one labeled instance's sample lines.
func writeSeries(w io.Writer, f *family, s series, format Format) error {
	switch f.kind {
	case kindCounter, kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value))
		return err
	default:
		for _, b := range s.hist.Buckets {
			var exemplar string
			if format == FormatOpenMetrics {
				exemplar = exemplarSuffix(b.Exemplar)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				f.name, withLabel(s.labels, "le", formatValue(b.UpperBound)), b.Count,
				exemplar); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, withLabel(s.labels, "le", "+Inf"), s.hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.hist.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.hist.Count)
		return err
	}
}

// exemplarSuffix renders one bucket exemplar as an OpenMetrics
// exemplar clause — ` # {trace_id="..."} value timestamp` — or "" when
// the bucket carries none. Exemplars exist only in the OpenMetrics
// grammar — the classic 0.0.4 format permits nothing after the sample
// value, and standard parsers fail the whole scrape on trailing
// tokens — so WriteFormat requests this suffix only under
// FormatOpenMetrics. The timestamp is Unix seconds with millisecond
// precision, omitted when the exemplar has no time.
func exemplarSuffix(e *obs.Exemplar) string {
	if e == nil || e.TraceID == "" {
		return ""
	}
	s := ` # {trace_id="` + escapeLabelValue(e.TraceID) + `"} ` + formatValue(e.Value)
	if !e.Time.IsZero() {
		s += " " + strconv.FormatFloat(float64(e.Time.UnixMilli())/1000, 'f', 3, 64)
	}
	return s
}

// mapPath turns a registry path into (family name, label block).
// Pipe-delimited paths carry their labels explicitly; device paths
// split into a shared family plus platform/config labels; everything
// else sanitizes whole.
func mapPath(namespace, path string, k kind) (string, string) {
	name, labels := path, ""
	if parts := strings.Split(path, "|"); len(parts) > 1 {
		name = parts[0]
		pairs := make([]string, 0, len(parts)-1)
		for _, p := range parts[1:] {
			key, value, ok := strings.Cut(p, "=")
			if !ok {
				// A label segment without "=" is a path bug; surface it
				// as a value under a stable key rather than dropping it.
				key, value = "label", p
			}
			pairs = append(pairs, label(key, value))
		}
		labels = "{" + strings.Join(pairs, ",") + "}"
	} else if parts := strings.Split(path, "/"); len(parts) == 4 && parts[0] == "device" {
		name = "device_" + parts[3]
		labels = "{" + label("platform", parts[1]) + "," + label("config", parts[2]) + "}"
	}
	name = namespace + "_" + sanitizeName(name)
	if k == kindCounter && !strings.HasSuffix(name, "_total") {
		name += "_total"
	}
	return name, labels
}

// withLabel appends k="v" to an existing label block.
func withLabel(block, k, v string) string {
	l := label(k, v)
	if block == "" {
		return "{" + l + "}"
	}
	return block[:len(block)-1] + "," + l + "}"
}

// label renders one escaped k="v" pair.
func label(k, v string) string {
	return sanitizeName(k) + `="` + escapeLabelValue(v) + `"`
}

// sanitizeName collapses characters illegal in metric/label names to
// "_" and guards against a leading digit.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue applies the exposition format's label escapes.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// formatValue renders a float the way Prometheus parsers expect.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
