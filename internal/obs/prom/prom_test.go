package prom

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/obs"
)

// goldenRegistry builds the fixture every test here renders: a slice of
// the real registry vocabulary (cache counters, a worker gauge, device
// histograms under two configs) small enough to pin byte-for-byte.
func goldenRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("runner/cache_hit").Add(7)
	reg.Counter("runner/cells_run").Add(3)
	reg.Counter("device/EMR2S/CXL-B/reads").Add(41)
	reg.Counter("device/EMR2S/CXL-B+NUMA/reads").Add(12)
	reg.Gauge("engine/workers").Set(8)
	h := reg.Histogram("device/EMR2S/CXL-B/latency_ns")
	h.Record(200)
	h.Record(200)
	h.Record(750)
	w := reg.Histogram("runner/cell_wall_ms")
	w.Record(1.5)
	return reg
}

const golden = `# TYPE melody_device_latency_ns histogram
melody_device_latency_ns_bucket{platform="EMR2S",config="CXL-B",le="201.72554817380947"} 2
melody_device_latency_ns_bucket{platform="EMR2S",config="CXL-B",le="756.1349867210237"} 3
melody_device_latency_ns_bucket{platform="EMR2S",config="CXL-B",le="+Inf"} 3
melody_device_latency_ns_sum{platform="EMR2S",config="CXL-B"} 1150
melody_device_latency_ns_count{platform="EMR2S",config="CXL-B"} 3
# TYPE melody_device_reads_total counter
melody_device_reads_total{platform="EMR2S",config="CXL-B"} 41
melody_device_reads_total{platform="EMR2S",config="CXL-B+NUMA"} 12
# TYPE melody_engine_workers gauge
melody_engine_workers 8
# TYPE melody_runner_cache_hit_total counter
melody_runner_cache_hit_total 7
# TYPE melody_runner_cell_wall_ms histogram
melody_runner_cell_wall_ms_bucket{le="1.5091644275934226"} 1
melody_runner_cell_wall_ms_bucket{le="+Inf"} 1
melody_runner_cell_wall_ms_sum 1.5
melody_runner_cell_wall_ms_count 1
# TYPE melody_runner_cells_run_total counter
melody_runner_cells_run_total 3
`

func render(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, "melody", reg.Export()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteGolden(t *testing.T) {
	got := render(t, goldenRegistry())
	if got != golden {
		t.Fatalf("exposition output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestWriteDeterministic(t *testing.T) {
	reg := goldenRegistry()
	a := render(t, reg)
	b := render(t, reg)
	if a != b {
		t.Fatal("two renders of the same registry differ")
	}
}

var (
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)
	leRe     = regexp.MustCompile(`le="([^"]*)"`)
)

// validateExposition is the grammar check the CI smoke step mirrors:
// every line is a well-formed TYPE declaration or sample, every sample
// belongs to the most recent TYPE family, histogram buckets are
// cumulative and end in le="+Inf" matching _count, and families appear
// in sorted order exactly once.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	var families []string
	curFamily, curKind := "", ""
	bucketCum := map[string]float64{} // label-block → last cumulative
	bucketLast := map[string]float64{}
	counts := map[string]map[string]float64{}     // family → labels → _count
	infBuckets := map[string]map[string]float64{} // family → labels → +Inf bucket
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := typeRe.FindStringSubmatch(line); m != nil {
			families = append(families, m[1])
			curFamily, curKind = m[1], m[2]
			bucketCum, bucketLast = map[string]float64{}, map[string]float64{}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line fails exposition grammar: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(strings.Replace(valStr, "Inf", "inf", 1), 64)
		if err != nil && valStr != "NaN" {
			t.Fatalf("unparsable sample value %q in %q", valStr, line)
		}
		switch curKind {
		case "counter", "gauge":
			if name != curFamily {
				t.Fatalf("sample %q outside its family %q", name, curFamily)
			}
			if curKind == "counter" && (val < 0 || math.IsNaN(val)) {
				t.Fatalf("counter sample negative or NaN: %q", line)
			}
		case "histogram":
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if base != curFamily {
				t.Fatalf("sample %q outside histogram family %q", name, curFamily)
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := leRe.FindStringSubmatch(labels)
				if le == nil {
					t.Fatalf("bucket without le label: %q", line)
				}
				key := stripLe(labels)
				bound := math.Inf(1)
				if le[1] != "+Inf" {
					bound, err = strconv.ParseFloat(le[1], 64)
					if err != nil {
						t.Fatalf("unparsable le %q", le[1])
					}
				}
				if prev, ok := bucketLast[key]; ok && bound <= prev {
					t.Fatalf("bucket bounds not increasing at %q", line)
				}
				if val < bucketCum[key] {
					t.Fatalf("cumulative bucket counts decreased at %q", line)
				}
				bucketLast[key], bucketCum[key] = bound, val
				if math.IsInf(bound, 1) {
					if infBuckets[curFamily] == nil {
						infBuckets[curFamily] = map[string]float64{}
					}
					infBuckets[curFamily][key] = val
				}
			case strings.HasSuffix(name, "_count"):
				if counts[curFamily] == nil {
					counts[curFamily] = map[string]float64{}
				}
				counts[curFamily][labels] = val
			}
		default:
			t.Fatalf("sample before any # TYPE: %q", line)
		}
	}
	if !sortedUnique(families) {
		t.Fatalf("families not sorted/unique: %v", families)
	}
	for fam, byLabels := range counts {
		for labels, n := range byLabels {
			if inf, ok := infBuckets[fam][labels]; !ok || inf != n {
				t.Fatalf("family %s%s: _count %v does not match +Inf bucket %v", fam, labels, n, infBuckets[fam][labels])
			}
		}
	}
}

// stripLe removes the le pair from a label block so bucket series key
// on the same signature as their family's _sum/_count lines.
func stripLe(labels string) string {
	s := leRe.ReplaceAllString(labels, "")
	s = strings.ReplaceAll(s, "{,", "{")
	s = strings.ReplaceAll(s, ",}", "}")
	s = strings.ReplaceAll(s, ",,", ",")
	if s == "{}" {
		return ""
	}
	return s
}

func sortedUnique(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

func TestWritePassesGrammar(t *testing.T) {
	validateExposition(t, render(t, goldenRegistry()))
}

func TestWriteLargeRegistryPassesGrammar(t *testing.T) {
	reg := obs.NewRegistry()
	for _, plat := range []string{"EMR2S", "SPR2S", "SKX8S"} {
		for _, cfg := range []string{"Local", "CXL-A", "CXL-B+NUMA", `odd"cfg\n`} {
			h := reg.Histogram("device/" + plat + "/" + cfg + "/latency_ns")
			for v := 1.0; v < 1e6; v *= 3 {
				h.Record(v)
			}
			reg.Counter("device/" + plat + "/" + cfg + "/reads").Add(uint64(len(cfg)))
		}
	}
	reg.Gauge("weird name/with spaces").Set(1.25)
	reg.Counter("1leading/digit").Inc()
	validateExposition(t, render(t, reg))
}

func TestLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(`device/P"l\at` + "\n" + `form/c"fg/reads`).Add(1)
	out := render(t, reg)
	want := `melody_device_reads_total{platform="P\"l\\at\nform",config="c\"fg"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped labels missing:\n%s\nwant line: %s", out, want)
	}
	validateExposition(t, out)
}

func TestNameSanitization(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("spa/BOUND-ON.LOADS").Inc()
	out := render(t, reg)
	if !strings.Contains(out, "melody_spa_BOUND_ON_LOADS_total 1") {
		t.Fatalf("sanitized counter missing:\n%s", out)
	}
}

// TestExplicitlyLabeledPaths pins the "name|k=v" rule the serve
// middleware's RED metrics ride: one family per metric, route/class
// as labels, label order preserved, slashes legal inside values.
func TestExplicitlyLabeledPaths(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("http/requests|route=/runs/{id}|class=2xx").Add(4)
	reg.Counter("http/requests|route=/runs/{id}|class=4xx").Inc()
	reg.Counter("http/requests|route=/metrics|class=2xx").Add(9)
	reg.Histogram("http/request_seconds|route=/metrics").Record(0.012)
	reg.Counter("jobs/finished|state=done").Add(2)
	out := render(t, reg)
	for _, want := range []string{
		`melody_http_requests_total{route="/runs/{id}",class="2xx"} 4`,
		`melody_http_requests_total{route="/runs/{id}",class="4xx"} 1`,
		`melody_http_requests_total{route="/metrics",class="2xx"} 9`,
		`melody_http_request_seconds_count{route="/metrics"} 1`,
		`melody_jobs_finished_total{state="done"} 2`,
		"# TYPE melody_http_requests_total counter",
		"# TYPE melody_http_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled-path exposition missing %q:\n%s", want, out)
		}
	}
	validateExposition(t, out)
}

// TestLabeledPathWithoutEquals keeps a malformed label segment visible
// instead of dropping it.
func TestLabeledPathWithoutEquals(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("http/requests|oops").Inc()
	out := render(t, reg)
	if !strings.Contains(out, `melody_http_requests_total{label="oops"} 1`) {
		t.Fatalf("malformed label segment lost:\n%s", out)
	}
	validateExposition(t, out)
}

func TestMixedKindCollisionRejected(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("x/y").Set(1)
	// Histogram at the same sanitized family name as the gauge.
	reg.Histogram("x/y").Record(1)
	var buf bytes.Buffer
	if err := Write(&buf, "melody", reg.Export()); err == nil {
		t.Fatal("mixed-kind family collision not rejected")
	}
}

func TestEmptyExport(t *testing.T) {
	if out := render(t, obs.NewRegistry()); out != "" {
		t.Fatalf("empty registry rendered %q", out)
	}
}
