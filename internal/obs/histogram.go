// Package obs is the simulator's telemetry core: log-bucketed latency
// histograms with percentile queries, named counters and gauges in a
// Registry, and span/trace recording that emits Chrome trace-event JSON
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The package exists because the paper's central complaint is opacity —
// "no tools exist to pinpoint tail latencies" until CPMU-style counters
// ship (§3.2) — and a simulated stack can expose exactly that
// visibility. Everything here is observation-only: recording never
// feeds back into simulated time, so a run instrumented with obs is
// behaviourally identical to an uninstrumented one. Disabled paths are
// allocation-free; nil *Trace, *Counter and *Gauge receivers are
// no-ops, so call sites need no guards.
package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram bucket geometry: histSubBuckets buckets per power of two
// gives a worst-case relative error of 2^(1/histSubBuckets)-1 (~2.2%)
// on percentile queries, with bounded memory and no sample truncation —
// unlike a raw sample slice, a histogram never has to stop recording.
// The covered range [2^histMinExp, 2^histMaxExp) spans sub-nanosecond
// component times up to multi-hour wall times; values outside clamp to
// the edge buckets.
const (
	histSubBuckets = 32
	histMinExp     = -16
	histMaxExp     = 48
	histBuckets    = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram is a log-bucketed distribution of non-negative values
// (latencies in ns, wall times in ms — any one unit per histogram).
// Memory is a fixed bucket array: recording never allocates and never
// truncates, however many samples arrive. All methods are safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	// merged holds each Merge'd source's sum as a separate part; reads
	// fold the parts in value order so the total is independent of
	// merge arrival order. Workers merge per-cell histograms in
	// completion order, float addition is not associative, and the run
	// manifest pins byte-identity across runs — summing in a canonical
	// order is what keeps the last ulp deterministic.
	merged []float64
	min    float64
	max    float64
	// exemplars maps bucket index → the most recent exemplar that
	// landed there (lazily allocated: histograms that never see
	// RecordExemplar pay nothing). Exemplars join metrics to traces:
	// the prom encoder renders them as OpenMetrics `# {trace_id="..."}`
	// suffixes so an operator walks alert → bucket → trace.
	exemplars map[int]Exemplar
}

// Exemplar is one sampled observation annotated with the trace that
// produced it. Time is when the sample was recorded.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// NewHistogram returns an empty histogram. This is the only allocation
// a histogram ever performs.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value onto its bucket, clamping to the edges.
func bucketIndex(v float64) int {
	if !(v > 0) { // also catches NaN
		return 0
	}
	idx := int(math.Floor(math.Log2(v)*histSubBuckets)) - histMinExp*histSubBuckets
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the geometric midpoint of bucket i, the value
// percentile queries report for samples landing in it.
func bucketValue(i int) float64 {
	return math.Exp2((float64(i)+0.5)/histSubBuckets + histMinExp)
}

// Record adds one sample. Non-finite values (NaN, ±Inf) are dropped:
// one bad sample must not poison Sum/Mean for the run, and the
// registry's JSON snapshot could not marshal them anyway.
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[bucketIndex(v)]++
	h.mu.Unlock()
}

// RecordExemplar adds one sample like Record and, when traceID is
// non-empty, remembers it as the exemplar for the bucket it fell in
// (latest sample wins — the freshest trace is the one an operator can
// still act on). Distribution state is identical to a plain Record:
// exemplars only surface in Export, never in Summarize, so manifests
// are unaffected by who recorded with a trace attached.
func (h *Histogram) RecordExemplar(v float64, traceID string) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	idx := bucketIndex(v)
	h.counts[idx]++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = map[int]Exemplar{}
		}
		h.exemplars[idx] = Exemplar{Value: v, TraceID: traceID, Time: time.Now()}
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// sumLocked folds directly recorded samples and merged parts into the
// total, adding parts smallest-first so the result does not depend on
// the order Merge calls arrived in.
func (h *Histogram) sumLocked() float64 {
	if len(h.merged) == 0 {
		return h.sum
	}
	parts := append([]float64(nil), h.merged...)
	sort.Float64s(parts)
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total + h.sum
}

// Sum returns the sum of recorded samples (exact, not bucketed).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sumLocked()
}

// Mean returns the exact mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sumLocked() / float64(h.n)
}

// Min returns the smallest recorded sample (exact; 0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest recorded sample (exact; 0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0-100) of recorded samples,
// NaN when empty. The answer is a bucket midpoint clamped to the exact
// observed [min, max], so the relative error is bounded by the bucket
// width and p=0 / p=100 are exact.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *Histogram) percentileLocked(p float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o's samples into h. Merging a histogram into itself is a
// no-op; a nil o is ignored.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	counts := o.counts
	n, min, max := o.n, o.min, o.max
	parts := append([]float64{o.sum}, o.merged...)
	var exemplars map[int]Exemplar
	if len(o.exemplars) > 0 {
		exemplars = make(map[int]Exemplar, len(o.exemplars))
		for i, e := range o.exemplars {
			exemplars[i] = e
		}
	}
	o.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	if h.n == 0 || min < h.min {
		h.min = min
	}
	if h.n == 0 || max > h.max {
		h.max = max
	}
	h.n += n
	// Keep the source's sum as a separate part rather than folding it
	// into h.sum now: sumLocked adds parts in value order, making the
	// total independent of merge arrival order.
	h.merged = append(h.merged, parts...)
	for i := range counts {
		h.counts[i] += counts[i]
	}
	for i, e := range exemplars {
		if cur, ok := h.exemplars[i]; !ok || e.Time.After(cur.Time) {
			if h.exemplars == nil {
				h.exemplars = map[int]Exemplar{}
			}
			h.exemplars[i] = e
		}
	}
	h.mu.Unlock()
}

// HistogramBucket is one cumulative bucket of an exported histogram:
// Count samples were ≤ UpperBound. Exports list only the boundaries
// where the cumulative count grows, so a histogram with k distinct
// populated buckets exports k entries regardless of the fixed bucket
// array's size.
type HistogramBucket struct {
	UpperBound float64
	Count      uint64
	// Exemplar, when non-nil, is the most recent trace-annotated sample
	// that fell in this bucket (the non-cumulative bucket, even though
	// Count is cumulative — per OpenMetrics exemplar semantics).
	Exemplar *Exemplar
}

// HistogramExport is the full-fidelity dump encoders (e.g. obs/prom)
// consume: exact count/sum/min/max plus the cumulative bucket ladder.
// All fields come from one critical section, so Count always equals the
// last bucket's cumulative count.
type HistogramExport struct {
	Count   uint64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []HistogramBucket
}

// Export captures the histogram's state at bucket granularity.
func (h *Histogram) Export() HistogramExport {
	h.mu.Lock()
	defer h.mu.Unlock()
	ex := HistogramExport{Count: h.n, Sum: h.sumLocked(), Min: h.min, Max: h.max}
	var cum uint64
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		cum += h.counts[i]
		b := HistogramBucket{
			UpperBound: bucketUpperBound(i),
			Count:      cum,
		}
		if e, ok := h.exemplars[i]; ok {
			e := e
			b.Exemplar = &e
		}
		ex.Buckets = append(ex.Buckets, b)
	}
	return ex
}

// bucketUpperBound returns bucket i's inclusive upper bound — the `le`
// value Prometheus-style cumulative exports use.
func bucketUpperBound(i int) float64 {
	return math.Exp2(float64(i+1)/histSubBuckets + histMinExp)
}

// Summary is the JSON-friendly digest of a histogram. Percentile fields
// are zero (not NaN) when the histogram is empty so the struct always
// marshals.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Summarize returns the histogram's digest.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return Summary{}
	}
	sum := h.sumLocked()
	return Summary{
		Count: h.n,
		Sum:   sum,
		Mean:  sum / float64(h.n),
		Min:   h.min,
		Max:   h.max,
		P50:   h.percentileLocked(50),
		P90:   h.percentileLocked(90),
		P99:   h.percentileLocked(99),
		P999:  h.percentileLocked(99.9),
	}
}
