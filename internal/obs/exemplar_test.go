package obs

import (
	"testing"
	"time"
)

func TestRecordExemplarAttachesToBucket(t *testing.T) {
	h := NewHistogram()
	h.Record(1.0)
	h.RecordExemplar(4.0, "4bf92f3577b34da6a3ce929d0e0e4736")
	ex := h.Export()
	if len(ex.Buckets) != 2 {
		t.Fatalf("exported %d buckets, want 2", len(ex.Buckets))
	}
	if ex.Buckets[0].Exemplar != nil {
		t.Fatal("un-annotated bucket grew an exemplar")
	}
	e := ex.Buckets[1].Exemplar
	if e == nil {
		t.Fatal("annotated bucket lost its exemplar")
	}
	if e.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || e.Value != 4.0 {
		t.Fatalf("exemplar = %+v", *e)
	}
	if e.Time.IsZero() {
		t.Fatal("exemplar has no timestamp")
	}
}

func TestRecordExemplarLatestWins(t *testing.T) {
	h := NewHistogram()
	h.RecordExemplar(4.0, "aaaa")
	h.RecordExemplar(4.0, "bbbb")
	ex := h.Export()
	if e := ex.Buckets[0].Exemplar; e == nil || e.TraceID != "bbbb" {
		t.Fatalf("exemplar = %+v, want latest (bbbb)", ex.Buckets[0].Exemplar)
	}
}

func TestRecordExemplarEmptyTraceIsPlainRecord(t *testing.T) {
	h := NewHistogram()
	h.RecordExemplar(4.0, "")
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if e := h.Export().Buckets[0].Exemplar; e != nil {
		t.Fatalf("empty trace id stored exemplar %+v", *e)
	}
}

func TestRecordExemplarIdenticalDistribution(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, v := range []float64{0.1, 1, 4, 1e6} {
		a.Record(v)
		b.RecordExemplar(v, "4bf92f3577b34da6a3ce929d0e0e4736")
	}
	if a.Summarize() != b.Summarize() {
		t.Fatal("RecordExemplar perturbed the distribution digest")
	}
}

func TestMergeCarriesExemplars(t *testing.T) {
	src := NewHistogram()
	src.RecordExemplar(4.0, "from-src")
	dst := NewHistogram()
	dst.Record(4.0)
	dst.Merge(src)
	if e := dst.Export().Buckets[0].Exemplar; e == nil || e.TraceID != "from-src" {
		t.Fatalf("merge dropped exemplar: %+v", dst.Export().Buckets[0].Exemplar)
	}

	// Newer exemplar wins regardless of merge direction.
	older := NewHistogram()
	older.RecordExemplar(4.0, "older")
	time.Sleep(2 * time.Millisecond)
	newer := NewHistogram()
	newer.RecordExemplar(4.0, "newer")
	newer.Merge(older)
	if e := newer.Export().Buckets[0].Exemplar; e == nil || e.TraceID != "newer" {
		t.Fatalf("older exemplar replaced newer: %+v", newer.Export().Buckets[0].Exemplar)
	}
}
