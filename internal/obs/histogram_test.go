package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"github.com/moatlab/melody/internal/sim"
)

// exactPercentile computes the reference percentile by full sort.
func exactPercentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram has non-zero stats")
	}
	if !math.IsNaN(h.Percentile(50)) {
		t.Fatal("empty histogram percentile should be NaN")
	}
	if s := h.Summarize(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Log-normal-ish latencies spanning 3 decades, the CPMU's regime.
	r := sim.NewRand(7)
	h := NewHistogram()
	var xs []float64
	for i := 0; i < 200_000; i++ {
		v := 80 + 400*r.Float64()*r.Float64()
		if r.Float64() < 0.01 {
			v += 5000 * r.Float64() // tail events
		}
		xs = append(xs, v)
		h.Record(v)
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("count = %d, want %d (histograms must not truncate)", h.Count(), len(xs))
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		got, want := h.Percentile(p), exactPercentile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 0.04 {
			t.Fatalf("p%v = %.1f, exact %.1f (rel err %.1f%% > 4%%)", p, got, want, rel*100)
		}
	}
	// Extremes are exact.
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Fatal("p0/p100 not exact min/max")
	}
}

func TestHistogramMonotonePercentiles(t *testing.T) {
	r := sim.NewRand(11)
	h := NewHistogram()
	for i := 0; i < 10_000; i++ {
		h.Record(r.Float64() * 1e6)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%v = %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0, -5, math.NaN(), 1e-30, 1e30} {
		h.Record(v) // must not panic; clamps to edge buckets
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Record(float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Percentile(50); math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("merged p50 = %v, want ~100", got)
	}
	a.Merge(nil) // no-op
	a.Merge(a)   // self-merge no-op, must not deadlock
	if a.Count() != 200 {
		t.Fatal("nil/self merge changed the histogram")
	}
	empty := NewHistogram()
	empty.Merge(a)
	if empty.Count() != 200 || empty.Min() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

// TestHistogramMergeEmptyIntoFull: the reverse direction of the
// empty-merge case — folding an empty histogram in must leave every
// statistic untouched, in particular min (an empty histogram's zero
// min must not leak in as a spurious minimum).
func TestHistogramMergeEmptyIntoFull(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(10)
	h.Merge(NewHistogram())
	if h.Count() != 2 || h.Min() != 5 || h.Max() != 10 || h.Sum() != 15 {
		t.Fatalf("empty merge perturbed state: count=%d min=%v max=%v sum=%v",
			h.Count(), h.Min(), h.Max(), h.Sum())
	}
}

// TestHistogramMergeEdgeBuckets: samples clamped to the edge buckets
// (below 2^histMinExp, above 2^histMaxExp, and zero/negative) must
// survive a merge with exact counts, sums, and min/max — the clamp
// affects only percentile resolution, never the exact statistics.
func TestHistogramMergeEdgeBuckets(t *testing.T) {
	tiny, huge := NewHistogram(), NewHistogram()
	tiny.Record(1e-30)
	tiny.Record(0)
	tiny.Record(-3)
	huge.Record(1e30)
	huge.Record(2e30)

	h := NewHistogram()
	h.Merge(tiny)
	h.Merge(huge)
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Min() != -3 || h.Max() != 2e30 {
		t.Fatalf("min/max = %v/%v, want -3/2e30", h.Min(), h.Max())
	}
	if want := 1e-30 - 3 + 1e30 + 2e30; math.Abs(h.Sum()-want) > 1e-12*want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Percentile extremes stay exact (clamped to observed min/max).
	if h.Percentile(0) != -3 || h.Percentile(100) != 2e30 {
		t.Fatalf("p0/p100 = %v/%v", h.Percentile(0), h.Percentile(100))
	}
}

// TestHistogramMergeMinMaxInterleaved: when the merged ranges overlap,
// min/max must come from whichever side holds the extreme, in either
// merge direction.
func TestHistogramMergeMinMaxInterleaved(t *testing.T) {
	mk := func(vals ...float64) *Histogram {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(v)
		}
		return h
	}
	a := mk(2, 50)
	a.Merge(mk(1, 40))
	if a.Min() != 1 || a.Max() != 50 {
		t.Fatalf("a min/max = %v/%v, want 1/50", a.Min(), a.Max())
	}
	b := mk(1, 40)
	b.Merge(mk(2, 50))
	if b.Min() != 1 || b.Max() != 50 {
		t.Fatalf("b min/max = %v/%v, want 1/50", b.Min(), b.Max())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := sim.NewRand(uint64(g) + 1)
			for i := 0; i < 10_000; i++ {
				h.Record(r.Float64() * 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80_000 {
		t.Fatalf("concurrent count = %d, want 80000", h.Count())
	}
}

func TestBucketIndexValueRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket.
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketValue(i)); got != i {
			t.Fatalf("bucketIndex(bucketValue(%d)) = %d", i, got)
		}
	}
}
