package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"github.com/moatlab/melody/internal/sim"
)

// exactPercentile computes the reference percentile by full sort.
func exactPercentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram has non-zero stats")
	}
	if !math.IsNaN(h.Percentile(50)) {
		t.Fatal("empty histogram percentile should be NaN")
	}
	if s := h.Summarize(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Log-normal-ish latencies spanning 3 decades, the CPMU's regime.
	r := sim.NewRand(7)
	h := NewHistogram()
	var xs []float64
	for i := 0; i < 200_000; i++ {
		v := 80 + 400*r.Float64()*r.Float64()
		if r.Float64() < 0.01 {
			v += 5000 * r.Float64() // tail events
		}
		xs = append(xs, v)
		h.Record(v)
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("count = %d, want %d (histograms must not truncate)", h.Count(), len(xs))
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		got, want := h.Percentile(p), exactPercentile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 0.04 {
			t.Fatalf("p%v = %.1f, exact %.1f (rel err %.1f%% > 4%%)", p, got, want, rel*100)
		}
	}
	// Extremes are exact.
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Fatal("p0/p100 not exact min/max")
	}
}

func TestHistogramMonotonePercentiles(t *testing.T) {
	r := sim.NewRand(11)
	h := NewHistogram()
	for i := 0; i < 10_000; i++ {
		h.Record(r.Float64() * 1e6)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%v = %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0, -5, math.NaN(), 1e-30, 1e30} {
		h.Record(v) // must not panic; finite values clamp to edge buckets
	}
	// NaN is dropped (non-finite samples never poison Sum/Mean); the
	// four finite values are kept.
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Record(float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Percentile(50); math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("merged p50 = %v, want ~100", got)
	}
	a.Merge(nil) // no-op
	a.Merge(a)   // self-merge no-op, must not deadlock
	if a.Count() != 200 {
		t.Fatal("nil/self merge changed the histogram")
	}
	empty := NewHistogram()
	empty.Merge(a)
	if empty.Count() != 200 || empty.Min() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

// TestHistogramMergeEmptyIntoFull: the reverse direction of the
// empty-merge case — folding an empty histogram in must leave every
// statistic untouched, in particular min (an empty histogram's zero
// min must not leak in as a spurious minimum).
func TestHistogramMergeEmptyIntoFull(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(10)
	h.Merge(NewHistogram())
	if h.Count() != 2 || h.Min() != 5 || h.Max() != 10 || h.Sum() != 15 {
		t.Fatalf("empty merge perturbed state: count=%d min=%v max=%v sum=%v",
			h.Count(), h.Min(), h.Max(), h.Sum())
	}
}

// TestHistogramMergeEdgeBuckets: samples clamped to the edge buckets
// (below 2^histMinExp, above 2^histMaxExp, and zero/negative) must
// survive a merge with exact counts, sums, and min/max — the clamp
// affects only percentile resolution, never the exact statistics.
func TestHistogramMergeEdgeBuckets(t *testing.T) {
	tiny, huge := NewHistogram(), NewHistogram()
	tiny.Record(1e-30)
	tiny.Record(0)
	tiny.Record(-3)
	huge.Record(1e30)
	huge.Record(2e30)

	h := NewHistogram()
	h.Merge(tiny)
	h.Merge(huge)
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Min() != -3 || h.Max() != 2e30 {
		t.Fatalf("min/max = %v/%v, want -3/2e30", h.Min(), h.Max())
	}
	if want := 1e-30 - 3 + 1e30 + 2e30; math.Abs(h.Sum()-want) > 1e-12*want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Percentile extremes stay exact (clamped to observed min/max).
	if h.Percentile(0) != -3 || h.Percentile(100) != 2e30 {
		t.Fatalf("p0/p100 = %v/%v", h.Percentile(0), h.Percentile(100))
	}
}

// TestHistogramMergeMinMaxInterleaved: when the merged ranges overlap,
// min/max must come from whichever side holds the extreme, in either
// merge direction.
func TestHistogramMergeMinMaxInterleaved(t *testing.T) {
	mk := func(vals ...float64) *Histogram {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(v)
		}
		return h
	}
	a := mk(2, 50)
	a.Merge(mk(1, 40))
	if a.Min() != 1 || a.Max() != 50 {
		t.Fatalf("a min/max = %v/%v, want 1/50", a.Min(), a.Max())
	}
	b := mk(1, 40)
	b.Merge(mk(2, 50))
	if b.Min() != 1 || b.Max() != 50 {
		t.Fatalf("b min/max = %v/%v, want 1/50", b.Min(), b.Max())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := sim.NewRand(uint64(g) + 1)
			for i := 0; i < 10_000; i++ {
				h.Record(r.Float64() * 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80_000 {
		t.Fatalf("concurrent count = %d, want 80000", h.Count())
	}
}

func TestBucketIndexValueRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket.
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketValue(i)); got != i {
			t.Fatalf("bucketIndex(bucketValue(%d)) = %d", i, got)
		}
	}
}

func TestHistogramNonFiniteIgnored(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	h.Record(math.NaN())
	h.Record(math.Inf(1))
	h.Record(math.Inf(-1))
	h.Record(30)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2 (non-finite samples must be dropped)", h.Count())
	}
	if h.Sum() != 40 || h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("sum/min/max = %v/%v/%v, want 40/10/30", h.Sum(), h.Min(), h.Max())
	}
	s := h.Summarize()
	for name, v := range map[string]float64{"sum": s.Sum, "mean": s.Mean, "min": s.Min,
		"max": s.Max, "p50": s.P50, "p99": s.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("summary %s = %v corrupted by non-finite input", name, v)
		}
	}
}

// TestHistogramPercentileMonotoneProperty is the property test behind
// the percentile contract: for any recorded distribution — including
// edge-bucket clamps, repeated values and non-finite noise — Percentile
// must be non-decreasing in p and pinned to min/max at the ends.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	for trial := uint64(0); trial < 25; trial++ {
		r := sim.NewRand(1000 + trial)
		h := NewHistogram()
		n := 1 + int(r.Uint64()%3000)
		for i := 0; i < n; i++ {
			v := math.Exp2(70*r.Float64() - 20) // spans and overflows both edges
			switch r.Uint64() % 8 {
			case 0:
				v = 0
			case 1:
				v = math.NaN() // dropped, must not disturb monotonicity
			}
			h.Record(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 0.25 {
			v := h.Percentile(p)
			if math.IsNaN(v) {
				if h.Count() == 0 {
					break
				}
				t.Fatalf("trial %d: Percentile(%v) = NaN with %d samples", trial, p, h.Count())
			}
			if v < prev {
				t.Fatalf("trial %d: percentiles not monotone: p%v = %v < %v", trial, p, v, prev)
			}
			prev = v
		}
		if h.Count() > 0 {
			if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
				t.Fatalf("trial %d: p0/p100 = %v/%v, want exact min/max %v/%v",
					trial, h.Percentile(0), h.Percentile(100), h.Min(), h.Max())
			}
		}
	}
}

func TestHistogramExportBuckets(t *testing.T) {
	h := NewHistogram()
	if ex := h.Export(); ex.Count != 0 || len(ex.Buckets) != 0 {
		t.Fatalf("empty export = %+v", ex)
	}
	r := sim.NewRand(3)
	for i := 0; i < 5000; i++ {
		h.Record(50 + 1000*r.Float64())
	}
	ex := h.Export()
	if ex.Count != 5000 {
		t.Fatalf("export count = %d", ex.Count)
	}
	prevUB, prevCum := math.Inf(-1), uint64(0)
	for _, b := range ex.Buckets {
		if b.UpperBound <= prevUB {
			t.Fatalf("bucket bounds not increasing: %v after %v", b.UpperBound, prevUB)
		}
		if b.Count <= prevCum {
			t.Fatalf("cumulative counts not increasing: %d after %d", b.Count, prevCum)
		}
		prevUB, prevCum = b.UpperBound, b.Count
	}
	if last := ex.Buckets[len(ex.Buckets)-1].Count; last != ex.Count {
		t.Fatalf("last cumulative bucket %d != count %d", last, ex.Count)
	}
	// Every recorded value must be ≤ its bucket's upper bound: the p100
	// sample sits inside the last bucket.
	if ub := ex.Buckets[len(ex.Buckets)-1].UpperBound; ex.Max > ub {
		t.Fatalf("max %v above last bucket bound %v", ex.Max, ub)
	}
}

// TestHistogramMergeOrderIndependentSum: workers merge per-cell
// histograms in completion order, which varies run to run; float
// addition is not associative, so a naive running sum wobbles at the
// last ulp and breaks the manifest's byte-identity contract. The
// merged total must be bit-identical for every arrival order.
func TestHistogramMergeOrderIndependentSum(t *testing.T) {
	rng := sim.NewRand(11)
	const parts = 12
	cells := make([]*Histogram, parts)
	for i := range cells {
		cells[i] = NewHistogram()
		for j := 0; j < 500; j++ {
			// Awkward magnitudes spanning ~12 decades make naive
			// summation order-sensitive almost surely.
			cells[i].Record(math.Exp(rng.Float64()*28 - 4))
		}
	}
	merge := func(order []int) (sum, mean float64) {
		h := NewHistogram()
		for _, idx := range order {
			h.Merge(cells[idx])
		}
		return h.Sum(), h.Mean()
	}
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	wantSum, wantMean := merge(order)
	for trial := 0; trial < 20; trial++ {
		for i := parts - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		if sum, mean := merge(order); sum != wantSum || mean != wantMean {
			t.Fatalf("trial %d: sum/mean %v/%v != %v/%v (order %v)",
				trial, sum, mean, wantSum, wantMean, order)
		}
	}
	// Chained merges (a into b, b into c) propagate parts, not a
	// collapsed running sum: still order-independent.
	b := NewHistogram()
	b.Merge(cells[0])
	b.Merge(cells[1])
	c := NewHistogram()
	c.Merge(b)
	c.Merge(cells[2])
	d := NewHistogram()
	d.Merge(cells[2])
	d.Merge(b)
	if c.Sum() != d.Sum() {
		t.Fatalf("chained merge order changed sum: %v != %v", c.Sum(), d.Sum())
	}
}
