// Package ledger is the durable, crash-safe, content-addressed run
// ledger: the on-disk memory behind the job service's in-memory run
// store. Every completed manifest lands here twice-addressed — by the
// spec hash that produced it (the cache key for resubmission) and by
// its manifest content address (the identity melodydiff and the
// /compare surface align on) — and survives process restarts, so
// `/runs` history, cache-hit resubmission and baseline regression
// tracking all outlive the process that computed them.
//
// On-disk layout under one data directory:
//
//	journal.jsonl            append-only index: one JSON record per
//	                         state change (put/evict/pin/unpin)
//	objects/<sha256>.json    manifest payloads, named by the hex
//	                         SHA-256 of their bytes
//	quarantine/<sha256>.json corrupt payloads moved aside on a
//	                         checksum mismatch (never served)
//
// Durability contract:
//
//   - Objects are written tmp+rename (fsync before rename), so a crash
//     mid-write leaves either the old state or the new one, never a
//     torn payload under a live name.
//   - The journal is append-only; each record is one line, synced after
//     write. Recovery tolerates a truncated tail: replay stops at the
//     first unparsable line, counts it, and the next compaction
//     rewrites a clean journal (again tmp+rename).
//   - Every payload read re-verifies its SHA-256 against the name it
//     was stored under. A mismatch quarantines the object, drops the
//     entry, and bumps ledger/integrity_failures — corruption degrades
//     to a cache miss, never to serving wrong bytes and never to a
//     panic.
//
// Retention is bounded by entry count and total payload bytes with
// tail-biased eviction: when over a cap, the oldest entry goes first —
// except entries pinned as named baselines, which are never evicted
// (regression tracking must not silently lose its reference point).
// Instruments land in the registry the caller provides (the
// observatory points it at its self-registry): ledger/entries and
// ledger/bytes gauges, ledger/puts, ledger/hits, ledger/misses,
// ledger/evictions, ledger/integrity_failures and
// ledger/journal_recoveries counters.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// Default caps. Manifests from the paper's sweeps are hundreds of
// kilobytes; 512 entries / 1 GiB holds months of routine runs while
// keeping the worst-case directory scan trivial.
const (
	DefaultMaxEntries = 512
	DefaultMaxBytes   = 1 << 30
)

// ErrUnknownRef marks a Pin whose reference names no stored entry.
var ErrUnknownRef = errors.New("ledger: unknown spec hash")

// ErrBadName marks a baseline name outside the safe charset.
var ErrBadName = errors.New("ledger: baseline name must match [A-Za-z0-9._-]{1,64}")

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Entry is one stored manifest's index record.
type Entry struct {
	// SpecHash is the content address of the RunSpec that produced the
	// manifest — the resubmission cache key.
	SpecHash string `json:"spec_hash"`
	// Address is the manifest's content address (sha256 under the
	// StripHostTime projection) — the cross-run comparison identity.
	Address string `json:"address"`
	// Digest is the hex SHA-256 of the raw stored bytes; it names the
	// object file and is re-verified on every load.
	Digest string `json:"sha256"`
	Size   int64  `json:"size_bytes"`
	// JobID records which job (or "cli") produced the manifest.
	JobID string `json:"job_id,omitempty"`
	// SpecJSON is the canonical encoded RunSpec, kept so a restarted
	// service can rebuild its /runs history with full spec detail.
	SpecJSON json.RawMessage `json:"spec,omitempty"`
	StoredAt time.Time       `json:"stored_at"`
}

// Baseline pins one entry under a name: the reference point future
// runs of the same experiment set are diffed against.
type Baseline struct {
	Name     string    `json:"name"`
	SpecHash string    `json:"spec_hash"`
	Address  string    `json:"address"`
	PinnedAt time.Time `json:"pinned_at"`
}

// record is one journal line. Op is "put", "evict", "pin" or "unpin";
// the remaining fields are op-specific.
type record struct {
	Op    string    `json:"op"`
	Time  time.Time `json:"time"`
	Entry *Entry    `json:"entry,omitempty"`
	// SpecHash identifies the evicted/pinned entry; Reason
	// distinguishes cap eviction from quarantine.
	SpecHash string `json:"spec_hash,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Name/Address carry baseline pins.
	Name    string `json:"name,omitempty"`
	Address string `json:"address,omitempty"`
}

// Stats is the ledger's lifetime activity (monotonic except the
// occupancy fields).
type Stats struct {
	Entries           int    `json:"entries"`
	Bytes             int64  `json:"bytes"`
	Baselines         int    `json:"baselines"`
	Puts              uint64 `json:"puts"`
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Evictions         uint64 `json:"evictions"`
	IntegrityFailures uint64 `json:"integrity_failures"`
	JournalRecoveries uint64 `json:"journal_recoveries"`
}

// Options configures Open.
type Options struct {
	// MaxEntries/MaxBytes bound retention (0 selects the defaults;
	// negative means unbounded).
	MaxEntries int
	MaxBytes   int64
	// Registry receives the ledger/* instruments (nil = uninstrumented).
	Registry *obs.Registry
	// Log receives operational lines — recovery, quarantine, eviction
	// (nil = silent).
	Log *slog.Logger
}

// Ledger is the durable store. All methods are safe for concurrent
// use; payload reads and writes happen under one mutex (manifests are
// small and the call sites are admission paths, not hot loops).
type Ledger struct {
	dir        string
	maxEntries int
	maxBytes   int64
	log        *slog.Logger

	puts       *obs.Counter
	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
	integrity  *obs.Counter
	recoveries *obs.Counter
	entriesG   *obs.Gauge
	bytesG     *obs.Gauge
	baselinesG *obs.Gauge

	mu        sync.Mutex
	journal   *os.File
	bySpec    map[string]*Entry
	order     []string // spec hashes, oldest first
	baselines map[string]Baseline
	bytes     int64
	stats     Stats
}

// Open loads (or initializes) the ledger rooted at dir. Recovery is
// tolerant: a truncated journal tail is dropped and counted, entries
// whose object file vanished are dropped with an integrity bump, and
// the journal is compacted to a clean snapshot before Open returns.
func Open(dir string, opt Options) (*Ledger, error) {
	if opt.MaxEntries == 0 {
		opt.MaxEntries = DefaultMaxEntries
	}
	if opt.MaxBytes == 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	log := opt.Log
	if log == nil {
		log = svclog.Discard()
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{
		dir:        dir,
		maxEntries: opt.MaxEntries,
		maxBytes:   opt.MaxBytes,
		log:        log,
		puts:       opt.Registry.Counter("ledger/puts"),
		hits:       opt.Registry.Counter("ledger/hits"),
		misses:     opt.Registry.Counter("ledger/misses"),
		evictions:  opt.Registry.Counter("ledger/evictions"),
		integrity:  opt.Registry.Counter("ledger/integrity_failures"),
		recoveries: opt.Registry.Counter("ledger/journal_recoveries"),
		entriesG:   opt.Registry.Gauge("ledger/entries"),
		bytesG:     opt.Registry.Gauge("ledger/bytes"),
		baselinesG: opt.Registry.Gauge("ledger/baselines"),
		bySpec:     map[string]*Entry{},
		baselines:  map[string]Baseline{},
	}
	if err := l.replay(); err != nil {
		return nil, err
	}
	// Compact: rewrite the journal from live state so a recovered tail
	// (or accumulated dead records) does not survive to the next crash.
	if err := l.compact(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(l.journalPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open journal: %w", err)
	}
	l.journal = j
	l.syncGauges()
	return l, nil
}

func (l *Ledger) journalPath() string { return filepath.Join(l.dir, "journal.jsonl") }

func (l *Ledger) objectPath(digest string) string {
	return filepath.Join(l.dir, "objects", digest+".json")
}

func (l *Ledger) quarantinePath(digest string) string {
	return filepath.Join(l.dir, "quarantine", digest+".json")
}

// replay rebuilds the in-memory index from the journal. It stops at
// the first unparsable line — the tolerated truncated tail a crash
// mid-append leaves behind — and drops entries whose object file is
// gone (deleted out of band, or a crash between journal append and a
// compaction that never happened).
func (l *Ledger) replay() error {
	data, err := os.ReadFile(l.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ledger: read journal: %w", err)
	}
	start := 0
	for start < len(data) {
		end := start
		for end < len(data) && data[end] != '\n' {
			end++
		}
		line := data[start:end]
		terminated := end < len(data)
		var rec record
		if len(line) > 0 {
			if err := json.Unmarshal(line, &rec); err != nil || !terminated {
				// Truncated or torn tail: a crash mid-append. Everything
				// before this line replayed fine; drop the rest.
				l.stats.JournalRecoveries++
				l.recoveries.Inc()
				l.log.Warn("ledger journal tail unreadable; recovering to last good record",
					"offset", start, "discarded_bytes", len(data)-start)
				break
			}
			l.applyLocked(rec)
		}
		start = end + 1
	}
	// Validate survivors against the object directory.
	for _, hash := range append([]string(nil), l.order...) {
		e := l.bySpec[hash]
		if _, err := os.Stat(l.objectPath(e.Digest)); err != nil {
			l.dropLocked(hash)
			l.stats.IntegrityFailures++
			l.integrity.Inc()
			l.log.Warn("ledger entry dropped: object file missing",
				svclog.KeySpecHash, hash, "object", e.Digest)
		}
	}
	// A baseline whose entry vanished is unpinned rather than left
	// dangling.
	for name, b := range l.baselines {
		if _, ok := l.bySpec[b.SpecHash]; !ok {
			delete(l.baselines, name)
			l.log.Warn("ledger baseline unpinned: entry missing", "baseline", name,
				svclog.KeySpecHash, b.SpecHash)
		}
	}
	return nil
}

// applyLocked folds one journal record into the index.
func (l *Ledger) applyLocked(rec record) {
	switch rec.Op {
	case "put":
		if rec.Entry == nil {
			return
		}
		l.dropLocked(rec.Entry.SpecHash)
		e := *rec.Entry
		l.bySpec[e.SpecHash] = &e
		l.order = append(l.order, e.SpecHash)
		l.bytes += e.Size
	case "evict":
		l.dropLocked(rec.SpecHash)
	case "pin":
		l.baselines[rec.Name] = Baseline{
			Name: rec.Name, SpecHash: rec.SpecHash, Address: rec.Address, PinnedAt: rec.Time,
		}
	case "unpin":
		delete(l.baselines, rec.Name)
	}
}

// dropLocked removes hash from the index (not from disk).
func (l *Ledger) dropLocked(hash string) {
	e, ok := l.bySpec[hash]
	if !ok {
		return
	}
	delete(l.bySpec, hash)
	l.bytes -= e.Size
	for i, h := range l.order {
		if h == hash {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
}

// compact rewrites the journal as a minimal snapshot of live state,
// tmp+rename so a crash leaves either journal intact.
func (l *Ledger) compact() error {
	tmp := l.journalPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, hash := range l.order {
		e := l.bySpec[hash]
		if err := enc.Encode(record{Op: "put", Time: e.StoredAt, Entry: e}); err != nil {
			f.Close()
			return fmt.Errorf("ledger: compact: %w", err)
		}
	}
	for _, name := range sortedNames(l.baselines) {
		b := l.baselines[name]
		if err := enc.Encode(record{Op: "pin", Time: b.PinnedAt, Name: b.Name,
			SpecHash: b.SpecHash, Address: b.Address}); err != nil {
			f.Close()
			return fmt.Errorf("ledger: compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := os.Rename(tmp, l.journalPath()); err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	return nil
}

func sortedNames(m map[string]Baseline) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendLocked journals one record (synced, so the index survives a
// crash immediately after the mutating call returns).
func (l *Ledger) appendLocked(rec record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := l.journal.Write(append(raw, '\n')); err != nil {
		return err
	}
	return l.journal.Sync()
}

// Put stores one manifest under its spec hash. Identical re-puts (same
// payload digest) are no-ops; a changed payload for the same spec hash
// replaces the old entry. The signature matches jobs.RunStore, so a
// Ledger plugs into the job manager directly.
func (l *Ledger) Put(specHash, address string, manifest, specJSON []byte, jobID string) error {
	sum := sha256.Sum256(manifest)
	digest := hex.EncodeToString(sum[:])
	now := time.Now().UTC()

	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.bySpec[specHash]; ok && old.Digest == digest {
		return nil
	}
	// tmp+rename in the same directory so the rename is atomic.
	tmp := l.objectPath(digest) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: put: %w", err)
	}
	if _, err := f.Write(manifest); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: put: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: put: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: put: %w", err)
	}
	if err := os.Rename(tmp, l.objectPath(digest)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: put: %w", err)
	}

	old := l.bySpec[specHash]
	e := Entry{
		SpecHash: specHash,
		Address:  address,
		Digest:   digest,
		Size:     int64(len(manifest)),
		JobID:    jobID,
		SpecJSON: append(json.RawMessage(nil), specJSON...),
		StoredAt: now,
	}
	if err := l.appendLocked(record{Op: "put", Time: now, Entry: &e}); err != nil {
		os.Remove(l.objectPath(digest))
		return fmt.Errorf("ledger: put: journal: %w", err)
	}
	l.dropLocked(specHash)
	l.bySpec[specHash] = &e
	l.order = append(l.order, specHash)
	l.bytes += e.Size
	if old != nil {
		os.Remove(l.objectPath(old.Digest))
	}
	l.stats.Puts++
	l.puts.Inc()
	l.evictOverCapsLocked()
	l.syncGauges()
	return nil
}

// evictOverCapsLocked enforces the caps: oldest first, skipping pinned
// baselines and the newest entry (the one Put just filed). If only
// pinned entries remain, the cap is exceeded rather than a baseline
// lost — that state is logged, not hidden.
func (l *Ledger) evictOverCapsLocked() {
	over := func() bool {
		return (l.maxEntries > 0 && len(l.order) > l.maxEntries) ||
			(l.maxBytes > 0 && l.bytes > l.maxBytes)
	}
	for over() && len(l.order) > 1 {
		victim := ""
		for _, hash := range l.order[:len(l.order)-1] {
			if !l.pinnedLocked(hash) {
				victim = hash
				break
			}
		}
		if victim == "" {
			l.log.Warn("ledger over capacity but every older entry is a pinned baseline; not evicting",
				"entries", len(l.order), "bytes", l.bytes)
			return
		}
		e := l.bySpec[victim]
		if err := l.appendLocked(record{Op: "evict", Time: time.Now().UTC(),
			SpecHash: victim, Reason: "capacity"}); err != nil {
			l.log.Error("ledger evict journal append failed", "err", err.Error())
			return
		}
		l.dropLocked(victim)
		os.Remove(l.objectPath(e.Digest))
		l.stats.Evictions++
		l.evictions.Inc()
		l.log.Info("ledger entry evicted", svclog.KeySpecHash, victim,
			"size_bytes", e.Size, "stored_at", e.StoredAt)
	}
}

func (l *Ledger) pinnedLocked(hash string) bool {
	for _, b := range l.baselines {
		if b.SpecHash == hash {
			return true
		}
	}
	return false
}

// Get returns the manifest stored for specHash, re-verifying its
// SHA-256 on the way out. A checksum mismatch (or unreadable file)
// quarantines the object, drops the entry, bumps
// ledger/integrity_failures, and reports a miss — the caller re-runs
// the spec instead of serving corrupt bytes.
func (l *Ledger) Get(specHash string) ([]byte, string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.bySpec[specHash]
	if !ok {
		l.stats.Misses++
		l.misses.Inc()
		return nil, "", false
	}
	data, err := os.ReadFile(l.objectPath(e.Digest))
	if err == nil {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) == e.Digest {
			l.stats.Hits++
			l.hits.Inc()
			return data, e.Address, true
		}
		err = fmt.Errorf("checksum mismatch (want %s)", e.Digest)
	}
	l.quarantineLocked(e, err)
	return nil, "", false
}

// quarantineLocked moves a failed object aside and drops its entry.
func (l *Ledger) quarantineLocked(e *Entry, cause error) {
	l.stats.IntegrityFailures++
	l.stats.Misses++
	l.integrity.Inc()
	l.misses.Inc()
	os.MkdirAll(filepath.Join(l.dir, "quarantine"), 0o755)
	if err := os.Rename(l.objectPath(e.Digest), l.quarantinePath(e.Digest)); err != nil {
		// Unreadable and unmovable: remove the entry anyway; the object
		// file (if any) stays for manual inspection.
		l.log.Error("ledger quarantine rename failed", "err", err.Error())
	}
	if err := l.appendLocked(record{Op: "evict", Time: time.Now().UTC(),
		SpecHash: e.SpecHash, Reason: "quarantine"}); err != nil {
		l.log.Error("ledger quarantine journal append failed", "err", err.Error())
	}
	l.dropLocked(e.SpecHash)
	l.syncGauges()
	l.log.Error("ledger integrity failure: object quarantined",
		svclog.KeySpecHash, e.SpecHash, "object", e.Digest, "err", cause.Error())
}

// Stat reports whether specHash is stored, and its manifest address,
// without reading the payload.
func (l *Ledger) Stat(specHash string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.bySpec[specHash]
	if !ok {
		return "", false
	}
	return e.Address, true
}

// GetByAddress returns the manifest whose content address is addr
// (same integrity contract as Get).
func (l *Ledger) GetByAddress(addr string) ([]byte, string, bool) {
	l.mu.Lock()
	var hash string
	for h, e := range l.bySpec {
		if e.Address == addr {
			hash = h
			break
		}
	}
	l.mu.Unlock()
	if hash == "" {
		l.misses.Inc()
		return nil, "", false
	}
	data, _, ok := l.Get(hash)
	return data, hash, ok
}

// Entry returns the index record for specHash.
func (l *Ledger) Entry(specHash string) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.bySpec[specHash]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries lists the index oldest-first (payloads stay on disk).
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.order))
	for _, hash := range l.order {
		out = append(out, *l.bySpec[hash])
	}
	return out
}

// Len returns the number of stored entries.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Pin names specHash as baseline name (replacing any previous pin of
// that name). The entry must exist; pinned entries are exempt from
// eviction until unpinned.
func (l *Ledger) Pin(name, specHash string) (Baseline, error) {
	if !nameRe.MatchString(name) {
		return Baseline{}, ErrBadName
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.bySpec[specHash]
	if !ok {
		return Baseline{}, fmt.Errorf("%w: %s", ErrUnknownRef, specHash)
	}
	b := Baseline{Name: name, SpecHash: specHash, Address: e.Address, PinnedAt: time.Now().UTC()}
	if err := l.appendLocked(record{Op: "pin", Time: b.PinnedAt, Name: name,
		SpecHash: specHash, Address: e.Address}); err != nil {
		return Baseline{}, fmt.Errorf("ledger: pin: journal: %w", err)
	}
	l.baselines[name] = b
	l.syncGauges()
	l.log.Info("ledger baseline pinned", "baseline", name,
		svclog.KeySpecHash, specHash, "address", e.Address)
	return b, nil
}

// Unpin removes a named baseline; ok is false if it did not exist.
func (l *Ledger) Unpin(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.baselines[name]; !ok {
		return false
	}
	if err := l.appendLocked(record{Op: "unpin", Time: time.Now().UTC(), Name: name}); err != nil {
		l.log.Error("ledger unpin journal append failed", "err", err.Error())
		return false
	}
	delete(l.baselines, name)
	l.syncGauges()
	l.log.Info("ledger baseline unpinned", "baseline", name)
	return true
}

// Baseline returns one named baseline.
func (l *Ledger) Baseline(name string) (Baseline, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.baselines[name]
	return b, ok
}

// Baselines lists pinned baselines sorted by name.
func (l *Ledger) Baselines() []Baseline {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Baseline, 0, len(l.baselines))
	for _, name := range sortedNames(l.baselines) {
		out = append(out, l.baselines[name])
	}
	return out
}

// Stats returns the ledger's counters and occupancy.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Entries = len(l.order)
	s.Bytes = l.bytes
	s.Baselines = len(l.baselines)
	return s
}

func (l *Ledger) syncGauges() {
	l.entriesG.Set(float64(len(l.order)))
	l.bytesG.Set(float64(l.bytes))
	l.baselinesG.Set(float64(len(l.baselines)))
}

// Close releases the journal handle. The ledger must not be used after
// Close.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.journal == nil {
		return nil
	}
	err := l.journal.Close()
	l.journal = nil
	return err
}
