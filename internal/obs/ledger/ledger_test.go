package ledger

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// put files a synthetic manifest and returns its bytes.
func put(t *testing.T, l *Ledger, n int) []byte {
	t.Helper()
	manifest := []byte(fmt.Sprintf(`{"run":%d,"payload":"manifest body %d"}`, n, n))
	spec := []byte(fmt.Sprintf(`{"seed":%d}`, n))
	if err := l.Put(hash(n), addr(n), manifest, spec, fmt.Sprintf("run-%06d", n)); err != nil {
		t.Fatalf("Put(%d): %v", n, err)
	}
	return manifest
}

func hash(n int) string { return fmt.Sprintf("sha256:spec%04d", n) }
func addr(n int) string { return fmt.Sprintf("sha256:addr%04d", n) }

func open(t *testing.T, dir string, opt Options) *Ledger {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestPutGetRoundtrip(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	want := put(t, l, 1)

	got, a, ok := l.Get(hash(1))
	if !ok || !bytes.Equal(got, want) || a != addr(1) {
		t.Fatalf("Get = (%q, %q, %v), want (%q, %q, true)", got, a, ok, want, addr(1))
	}
	if _, _, ok := l.Get(hash(99)); ok {
		t.Fatal("Get on unknown hash reported ok")
	}
	if a, ok := l.Stat(hash(1)); !ok || a != addr(1) {
		t.Fatalf("Stat = (%q, %v)", a, ok)
	}
	got, h, ok := l.GetByAddress(addr(1))
	if !ok || !bytes.Equal(got, want) || h != hash(1) {
		t.Fatalf("GetByAddress = (%q, %q, %v)", got, h, ok)
	}
	st := l.Stats()
	if st.Puts != 1 || st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRestartReopenEquality is the durability pin: bytes and addresses
// served after a close/reopen must equal the originals exactly, and
// pinned baselines must survive with them.
func TestRestartReopenEquality(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	var want [][]byte
	for i := 1; i <= 3; i++ {
		want = append(want, put(t, l, i))
	}
	if _, err := l.Pin("golden", hash(2)); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := open(t, dir, Options{})
	if l2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", l2.Len())
	}
	for i := 1; i <= 3; i++ {
		got, a, ok := l2.Get(hash(i))
		if !ok {
			t.Fatalf("entry %d lost across reopen", i)
		}
		if !bytes.Equal(got, want[i-1]) {
			t.Fatalf("entry %d bytes differ across reopen:\n got %q\nwant %q", i, got, want[i-1])
		}
		if a != addr(i) {
			t.Fatalf("entry %d address = %q across reopen, want %q", i, a, addr(i))
		}
	}
	b, ok := l2.Baseline("golden")
	if !ok || b.SpecHash != hash(2) || b.Address != addr(2) {
		t.Fatalf("baseline across reopen = (%+v, %v)", b, ok)
	}
	// Spec JSON survives too — a restarted service rebuilds history
	// with full spec detail.
	e, ok := l2.Entry(hash(1))
	if !ok || string(e.SpecJSON) != `{"seed":1}` || e.JobID != "run-000001" {
		t.Fatalf("entry metadata across reopen = (%+v, %v)", e, ok)
	}
}

// TestTruncatedJournalTail simulates a crash mid-append: a torn final
// line must be dropped (counted as a recovery) while every record
// before it replays intact.
func TestTruncatedJournalTail(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	want := put(t, l, 1)
	put(t, l, 2)
	l.Close()

	// Tear the tail: keep entry 1's record whole, chop entry 2's line
	// mid-JSON and leave it unterminated.
	journal := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("journal has %d lines, want >= 2", len(lines))
	}
	torn := append(append([]byte(nil), lines[0]...), lines[1][:len(lines[1])/2]...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, Options{})
	if got := l2.Stats().JournalRecoveries; got != 1 {
		t.Fatalf("JournalRecoveries = %d, want 1", got)
	}
	got, _, ok := l2.Get(hash(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("pre-tear entry not recovered: (%q, %v)", got, ok)
	}
	if _, _, ok := l2.Get(hash(2)); ok {
		t.Fatal("torn-tail entry should have been dropped")
	}
	// Recovery compacts: a second reopen must see a clean journal
	// (no recovery counted).
	l2.Close()
	l3 := open(t, dir, Options{})
	if got := l3.Stats().JournalRecoveries; got != 0 {
		t.Fatalf("JournalRecoveries after compaction = %d, want 0", got)
	}
}

// TestCorruptObjectQuarantined flips bits in a stored object: Get must
// degrade to a miss (never serve wrong bytes, never panic), bump the
// integrity counter, and move the object into quarantine/.
func TestCorruptObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	put(t, l, 1)
	e, _ := l.Entry(hash(1))

	obj := filepath.Join(dir, "objects", e.Digest+".json")
	if err := os.WriteFile(obj, []byte(`{"run":1,"payload":"tampered"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := l.Get(hash(1)); ok {
		t.Fatal("Get served a corrupt object")
	}
	st := l.Stats()
	if st.IntegrityFailures != 1 {
		t.Fatalf("IntegrityFailures = %d, want 1", st.IntegrityFailures)
	}
	if st.Entries != 0 {
		t.Fatalf("corrupt entry still indexed: Entries = %d", st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", e.Digest+".json")); err != nil {
		t.Fatalf("object not quarantined: %v", err)
	}
	// The ledger keeps working: the same spec can be re-stored.
	want := put(t, l, 1)
	if got, _, ok := l.Get(hash(1)); !ok || !bytes.Equal(got, want) {
		t.Fatal("re-put after quarantine failed")
	}
}

// TestMissingObjectDroppedOnOpen covers the other corruption path: the
// journal references an object whose file vanished. Open drops the
// entry with an integrity bump instead of serving a dangling index.
func TestMissingObjectDroppedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	put(t, l, 1)
	put(t, l, 2)
	e, _ := l.Entry(hash(1))
	l.Close()

	if err := os.Remove(filepath.Join(dir, "objects", e.Digest+".json")); err != nil {
		t.Fatal(err)
	}
	l2 := open(t, dir, Options{})
	if _, _, ok := l2.Get(hash(1)); ok {
		t.Fatal("entry with missing object survived reopen")
	}
	if _, _, ok := l2.Get(hash(2)); !ok {
		t.Fatal("intact entry lost during reopen")
	}
	if got := l2.Stats().IntegrityFailures; got != 1 {
		t.Fatalf("IntegrityFailures = %d, want 1", got)
	}
}

// TestEvictionProtectsPinnedBaselines: over the entry cap the oldest
// unpinned entry goes; a pinned baseline is never the victim.
func TestEvictionProtectsPinnedBaselines(t *testing.T) {
	l := open(t, t.TempDir(), Options{MaxEntries: 3})
	put(t, l, 1)
	put(t, l, 2)
	if _, err := l.Pin("golden", hash(1)); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	put(t, l, 3)
	put(t, l, 4) // over cap: oldest unpinned (2) must go, 1 is pinned

	if _, ok := l.Stat(hash(1)); !ok {
		t.Fatal("pinned baseline was evicted")
	}
	if _, ok := l.Stat(hash(2)); ok {
		t.Fatal("oldest unpinned entry survived over-cap put")
	}
	st := l.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries / 1 eviction", st)
	}
	// Unpinning re-exposes the old baseline to eviction.
	if !l.Unpin("golden") {
		t.Fatal("Unpin failed")
	}
	put(t, l, 5)
	if _, ok := l.Stat(hash(1)); ok {
		t.Fatal("unpinned entry not evicted as oldest")
	}
}

func TestByteCapEviction(t *testing.T) {
	l := open(t, t.TempDir(), Options{MaxBytes: 100})
	put(t, l, 1) // ~40 bytes each
	put(t, l, 2)
	put(t, l, 3)
	if st := l.Stats(); st.Bytes > 100 {
		t.Fatalf("bytes = %d, want <= 100 after eviction", st.Bytes)
	}
	if _, ok := l.Stat(hash(3)); !ok {
		t.Fatal("newest entry must survive byte-cap eviction")
	}
}

func TestPinValidation(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	put(t, l, 1)
	if _, err := l.Pin("bad name!", hash(1)); err == nil {
		t.Fatal("Pin accepted a name outside the safe charset")
	}
	if _, err := l.Pin("ok", "sha256:nope"); err == nil {
		t.Fatal("Pin accepted an unknown spec hash")
	}
	if _, err := l.Pin("ok", hash(1)); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if bs := l.Baselines(); len(bs) != 1 || bs[0].Name != "ok" {
		t.Fatalf("Baselines = %+v", bs)
	}
	if l.Unpin("missing") {
		t.Fatal("Unpin of unknown name reported true")
	}
}

// TestIdenticalRePutIsNoOp: same spec hash, same payload — no new
// journal record, no counter bump.
func TestIdenticalRePutIsNoOp(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	put(t, l, 1)
	put(t, l, 1)
	if st := l.Stats(); st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats after identical re-put = %+v", st)
	}
}
