package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeTraceFile is the strict schema of the Chrome trace-event JSON
// object format — what Perfetto's legacy-trace importer accepts. The
// schema test below is the acceptance gate: every emitted trace must
// unmarshal into this shape with valid phases and timestamps.
type chromeTraceFile struct {
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

type chromeTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

// validateChromeTrace asserts raw is a loadable Chrome trace-event file.
func validateChromeTrace(t *testing.T, raw []byte) chromeTraceFile {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	var f chromeTraceFile
	if err := dec.Decode(&f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if f.TraceEvents == nil {
		t.Fatal("trace has no traceEvents array")
	}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || *e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("complete event %d has invalid ts/dur", i)
			}
		case "i", "M":
			// instants carry ts; metadata events need name+args only
		case "C":
			// counter-track samples: explicit ts plus a numeric value arg.
			if e.Ts == nil || *e.Ts < 0 {
				t.Fatalf("counter event %d has invalid ts", i)
			}
			if _, ok := e.Args["value"].(float64); !ok {
				t.Fatalf("counter event %d has no numeric value arg", i)
			}
		default:
			t.Fatalf("event %d has unsupported phase %q", i, e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing pid/tid", i)
		}
		if e.Ph == "M" {
			if s, ok := e.Args["name"].(string); !ok || s == "" {
				t.Fatalf("metadata event %d has no name arg", i)
			}
		}
	}
	return f
}

func TestTraceSchemaValid(t *testing.T) {
	tr := NewTrace()
	tr.SetProcessName(1, "engine")
	tr.SetThreadName(1, 0, "experiments")
	tr.SetProcessName(2, "workers")
	tr.SetThreadName(2, 3, "worker")
	sp := tr.Begin(1, 0, "fig8a", "experiment")
	inner := tr.Begin(2, 3, "605.mcf_s @ CXL-A", "cell")
	inner.EndWith(map[string]any{"outcome": "computed"})
	tr.Instant(1, 0, "marker", "note", nil)
	sp.End()

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	f := validateChromeTrace(t, raw)
	// 4 metadata + 2 spans + 1 instant.
	if len(f.TraceEvents) != 7 {
		t.Fatalf("trace has %d events, want 7", len(f.TraceEvents))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	validateChromeTrace(t, buf.Bytes())
}

// TestTraceCounterTrackSchema pins the counter-track encoding: ph "C",
// caller-supplied timestamps, args{"value": v}, one track per name per
// pid — the shape Perfetto renders as plotted counter series.
func TestTraceCounterTrackSchema(t *testing.T) {
	tr := NewTrace()
	tr.SetProcessName(3, "samples: 605.mcf_s @ CXL-A")
	tr.CounterAt(3, "spa/BoundOnLoads", 10.5, 4200)
	tr.CounterAt(3, "spa/BoundOnLoads", 20.5, 3900)
	tr.CounterAt(3, "cpmu/queue_depth", 10.5, 7)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	f := validateChromeTrace(t, raw)
	// 1 metadata + 3 counter samples.
	if len(f.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 4", len(f.TraceEvents))
	}
	counts := map[string]int{}
	for _, e := range f.TraceEvents[1:] {
		if e.Ph != "C" {
			t.Fatalf("sample has phase %q, want C", e.Ph)
		}
		if *e.Pid != 3 {
			t.Fatalf("sample on pid %d, want 3", *e.Pid)
		}
		counts[e.Name]++
	}
	if counts["spa/BoundOnLoads"] != 2 || counts["cpmu/queue_depth"] != 1 {
		t.Fatalf("track sample counts wrong: %v", counts)
	}
	// Explicit timestamps are preserved verbatim.
	if ts := *f.TraceEvents[1].Ts; ts != 10.5 {
		t.Fatalf("counter ts %v, want 10.5", ts)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Begin(0, 0, "x", "y")
	if sp.Active() {
		t.Fatal("span from nil trace is active")
	}
	sp.End()
	sp.EndWith(map[string]any{"k": "v"})
	tr.Instant(0, 0, "i", "", nil)
	tr.CounterAt(0, "c", 1, 2)
	if tr.StampUs(time.Now()) != 0 {
		t.Fatal("nil trace stamped nonzero")
	}
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 0, "t")
	if tr.Len() != 0 {
		t.Fatal("nil trace recorded events")
	}
}

func TestTraceSpanOrdering(t *testing.T) {
	tr := NewTrace()
	sp := tr.Begin(1, 1, "work", "")
	sp.End()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	f := validateChromeTrace(t, raw)
	if len(f.TraceEvents) != 1 {
		t.Fatalf("got %d events", len(f.TraceEvents))
	}
	e := f.TraceEvents[0]
	if e.Ph != "X" || e.Name != "work" || *e.Pid != 1 || *e.Tid != 1 {
		t.Fatalf("span event wrong: %+v", e)
	}
}
