package obs

import (
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; nil receivers are no-ops, so disabled telemetry costs a
// nil check and nothing else.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float. Nil receivers are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Non-finite values (NaN, ±Inf) are ignored — the gauge
// keeps its last finite value — so one bad computation cannot make the
// registry's JSON snapshot unmarshalable.
func (g *Gauge) Set(v float64) {
	if g != nil && !math.IsNaN(v) && !math.IsInf(v, 0) {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named counters, gauges and histograms. Get-or-create
// lookups and the JSON dump are safe for concurrent use; instruments
// returned by one lookup stay valid (and identical) for the registry's
// lifetime, so hot paths should look up once and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns nil (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// A nil registry returns nil; Merge onto a nil histogram is a no-op,
// but Record is not nil-safe — hot paths hold pre-created histograms.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON shape of a registry dump. Map keys marshal in
// sorted order, so the dump is deterministic for a given state.
type Snapshot struct {
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]Summary `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]Summary{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Summarize()
	}
	return s
}

// MarshalJSON dumps the registry as a Snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Export is the bucket-granularity counterpart of Snapshot, consumed by
// encoders that need more than a Summary — notably the Prometheus text
// exposition in obs/prom, whose histogram series require the cumulative
// bucket ladder.
type Export struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramExport
}

// Export captures every instrument at full fidelity. Like Snapshot it
// holds the registry lock only to copy the instrument maps; values are
// read afterwards from the instruments' own atomics/locks, so an export
// taken mid-run never blocks recording for longer than one instrument's
// critical section.
func (r *Registry) Export() Export {
	ex := Export{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramExport{},
	}
	if r == nil {
		return ex
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		ex.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		ex.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		ex.Histograms[k] = v.Export()
	}
	return ex
}
