package sampler

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"

	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/sim"
)

// drive runs a random-access workload over a CXL device on a machine
// with the given sampler attached, returning the final counters.
func drive(s *Sampler, dev *cxl.Device, every uint64) counters.Snapshot {
	cfg := core.Config{CPU: platform.SKX2S().CPU, Device: dev}
	if s != nil {
		cfg.Sampler = s
		cfg.SampleEveryCycles = every
	}
	m := core.New(cfg)
	r := sim.NewRand(5)
	for i := 0; i < 30000; i++ {
		m.Load(r.Uint64n((1<<30)/mem.LineSize)*mem.LineSize, i%4 == 0)
	}
	return m.Counters()
}

func TestSamplerCollectsCPUAndDeviceState(t *testing.T) {
	dev := cxl.New(cxl.ProfileA(), 3)
	s := New(dev)
	drive(s, dev, 4000)

	samples := s.Samples()
	if len(samples) < 5 {
		t.Fatalf("only %d samples collected", len(samples))
	}
	if s.Len() != len(samples) {
		t.Fatal("Len disagrees with Samples")
	}
	for i, smp := range samples {
		if !smp.HasDevice {
			t.Fatalf("sample %d has no device state despite attached probe", i)
		}
		if smp.Device.TimeNs != smp.TimeNs {
			t.Fatalf("sample %d device probed at %v, counters at %v", i, smp.Device.TimeNs, smp.TimeNs)
		}
		if i == 0 {
			continue
		}
		if smp.TimeNs <= samples[i-1].TimeNs {
			t.Fatalf("sample %d not time-ordered", i)
		}
		if smp.Counters[counters.Instructions] < samples[i-1].Counters[counters.Instructions] {
			t.Fatalf("sample %d instruction count regressed", i)
		}
		if smp.Device.Requests < samples[i-1].Device.Requests {
			t.Fatalf("sample %d cumulative device requests regressed", i)
		}
	}
	// A pointer-heavy CXL workload must show device traffic.
	last := samples[len(samples)-1]
	if last.Device.Requests == 0 {
		t.Fatal("no device requests observed over a DRAM-missing workload")
	}
}

// TestSamplerObservationOnly is the subsystem's core contract at the
// integration level: the full sampler (CPU hook + device probe)
// changes nothing about the simulated run.
func TestSamplerObservationOnly(t *testing.T) {
	plain := drive(nil, cxl.New(cxl.ProfileB(), 3), 0)
	dev := cxl.New(cxl.ProfileB(), 3)
	sampled := drive(New(dev), dev, 2000)
	if plain != sampled {
		t.Fatalf("sampling perturbed results:\nwithout: %v\nwith:    %v", plain, sampled)
	}
}

func TestCoreSamplesShape(t *testing.T) {
	dev := cxl.New(cxl.ProfileA(), 3)
	s := New(dev)
	drive(s, dev, 4000)
	cs := s.CoreSamples()
	if len(cs) != s.Len() {
		t.Fatalf("CoreSamples len %d, want %d", len(cs), s.Len())
	}
	for i := range cs {
		if cs[i].TimeNs != s.Samples()[i].TimeNs || cs[i].Counters != s.Samples()[i].Counters {
			t.Fatalf("CoreSamples[%d] diverges from source", i)
		}
	}
}

func TestNilProbeSamplesCPUOnly(t *testing.T) {
	s := New(nil)
	s.Sample(100, counters.Snapshot{})
	if s.Samples()[0].HasDevice {
		t.Fatal("nil probe produced device state")
	}
}

func TestAppendCounterTracksSchema(t *testing.T) {
	mk := func(tNs, cycles float64, q int) Sample {
		var c counters.Snapshot
		c[counters.Cycles] = cycles
		c[counters.BoundOnLoads] = cycles / 2
		return Sample{TimeNs: tNs, Counters: c, HasDevice: true,
			Device: cxl.CPMUState{TimeNs: tNs, QueueDepth: q, ThermalActive: q > 1}}
	}
	samples := []Sample{mk(1000, 4000, 1), mk(2000, 9000, 2)}

	tr := obs.NewTrace()
	AppendCounterTracks(tr, 7, samples, 100, 300)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}

	want := map[string]int{}
	for _, n := range SpaTrackNames() {
		want[n] = 2
	}
	for _, n := range CPMUTrackNames {
		want[n] = 2
	}
	got := map[string]int{}
	for _, e := range f.TraceEvents {
		if e.Ph != "C" {
			t.Fatalf("event %q has phase %q, want C", e.Name, e.Ph)
		}
		if e.Pid != 7 {
			t.Fatalf("event %q on pid %d, want 7", e.Name, e.Pid)
		}
		if e.Ts < 100 || e.Ts > 300 {
			t.Fatalf("event %q at ts %v, outside mapped span [100, 300]", e.Name, e.Ts)
		}
		got[e.Name]++
		// Spa tracks carry per-interval deltas.
		if e.Name == SpaTrackName(counters.Cycles) {
			t.Fatal("non-Spa counter emitted as a track")
		}
		if e.Name == "spa/BOUND_ON_LOADS" && e.Ts > 250 {
			if v := e.Args["value"].(float64); v != 9000/2-4000/2 {
				t.Fatalf("second BOUND_ON_LOADS delta %v, want 2500", v)
			}
		}
	}
	for n, c := range want {
		if got[n] != c {
			t.Fatalf("track %q has %d samples, want %d (all: %v)", n, got[n], c, got)
		}
	}
	// The last sample lands exactly on the span end.
	if last := f.TraceEvents[len(f.TraceEvents)-1].Ts; last != 300 {
		t.Fatalf("final sample at %v, want 300", last)
	}
}

func TestAppendCounterTracksNilAndEmpty(t *testing.T) {
	AppendCounterTracks(nil, 1, []Sample{{TimeNs: 1}}, 0, 1)
	tr := obs.NewTrace()
	AppendCounterTracks(tr, 1, nil, 0, 1)
	if tr.Len() != 0 {
		t.Fatal("empty series emitted events")
	}
}

func TestWriteCSV(t *testing.T) {
	dev := cxl.New(cxl.ProfileA(), 3)
	s := New(dev)
	drive(s, dev, 4000)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s.Samples()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != s.Len()+1 {
		t.Fatalf("%d CSV rows for %d samples", len(rows), s.Len())
	}
	wantCols := 1 + int(counters.NumCounters) + len(csvCPMUColumns)
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	if rows[0][0] != "time_ns" || rows[0][1] != counters.ID(0).String() {
		t.Fatalf("header starts %v", rows[0][:2])
	}
}
