// Package sampler implements the time-resolved "simulated perf" layer:
// a deterministic, cycle-driven sampling subsystem that periodically
// snapshots the CPU's full counter state and (when attached) a CXL
// expander's instantaneous CPMU state.
//
// Real perf samples a PMU on a wall-clock or event cadence; here the
// cadence is simulated cycles (core.Config.SampleEveryCycles), derived
// purely from the sim clock, so a sampled stream is bit-identical
// across runs, -j widths, and host machines. Sampling is strictly
// observation-only: attaching a Sampler never changes simulated
// timing, and the detached path in the machine loop is one branch.
//
// The collected series feeds three sinks (sinks.go): Perfetto counter
// tracks on an obs.Trace, a CSV time-series export, and — converted
// via CoreSamples — the period-resolved Spa analysis in package spa.
package sampler

import (
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
)

// Sample is one periodic reading: the cumulative CPU counter snapshot
// at TimeNs plus, when a device probe is attached, the expander's
// instantaneous CPMU state at the same simulated instant.
type Sample struct {
	TimeNs    float64           `json:"time_ns"`
	Counters  counters.Snapshot `json:"counters"`
	Device    cxl.CPMUState     `json:"device"`
	HasDevice bool              `json:"has_device"`
}

// Sampler collects Samples at the cadence configured on the machine
// (core.Config.Sampler + SampleEveryCycles). It implements
// core.Sampler. Not safe for concurrent use: each simulated cell owns
// its own Sampler, mirroring per-core perf buffers.
type Sampler struct {
	probe   cxl.StateProber
	samples []Sample
}

var _ core.Sampler = (*Sampler)(nil)

// New builds a Sampler. probe may be nil (CPU counters only). A
// non-nil probe is armed immediately so its bandwidth windows align
// with the sampling cadence from the first period.
func New(probe cxl.StateProber) *Sampler {
	s := &Sampler{probe: probe}
	if probe != nil {
		probe.EnableStateProbe()
	}
	return s
}

// Sample implements core.Sampler: record the counter snapshot and, if
// a probe is attached, read the device state at the same sim time.
func (s *Sampler) Sample(timeNs float64, c counters.Snapshot) {
	smp := Sample{TimeNs: timeNs, Counters: c}
	if s.probe != nil {
		smp.Device = s.probe.ProbeState(timeNs)
		smp.HasDevice = true
	}
	s.samples = append(s.samples, smp)
}

// Len returns the number of collected samples.
func (s *Sampler) Len() int { return len(s.samples) }

// Samples returns the collected series in sampling order. The slice is
// owned by the Sampler; callers must not mutate it.
func (s *Sampler) Samples() []Sample { return s.samples }

// CoreSamples converts the series to the core.Sample shape consumed by
// spa.AnalyzePeriods, dropping the device dimension.
func (s *Sampler) CoreSamples() []core.Sample { return CoreSamplesOf(s.samples) }

// CoreSamplesOf converts any sampled stream (e.g. one carried in a
// melody.Result) to core.Sample form for period analysis.
func CoreSamplesOf(samples []Sample) []core.Sample {
	out := make([]core.Sample, len(samples))
	for i, smp := range samples {
		out[i] = core.Sample{TimeNs: smp.TimeNs, Counters: smp.Counters}
	}
	return out
}
