package sampler

import (
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
)

// TestWriteCSVGolden pins the CSV export schema byte-for-byte: header
// column names and order (time_ns, the 21 counters in ID order, then
// the CPMU block) and row emission in sample order. Downstream
// notebooks parse these columns by name — any change here is a
// breaking schema change and must be deliberate.
func TestWriteCSVGolden(t *testing.T) {
	var s1, s2 Sample
	s1.TimeNs = 1000
	s2.TimeNs = 2500.5
	for i := counters.ID(0); i < counters.NumCounters; i++ {
		s1.Counters[i] = float64(i)
		s2.Counters[i] = float64(i) * 1.5
	}
	s2.HasDevice = true
	s2.Device = cxl.CPMUState{
		QueueDepth: 3, LinkCreditsInFlight: 2,
		ThermalActive: true, UtilFrac: 0.75,
		ReadGBs: 12.5, WriteGBs: 0.5,
		LinkReqNs: 100, SchedWaitNs: 200.25, MediaNs: 300, LinkRspNs: 50,
		HiccupStalls: 7, ThermalStalls: 1, Requests: 42,
	}

	var sb strings.Builder
	if err := WriteCSV(&sb, []Sample{s1, s2}); err != nil {
		t.Fatal(err)
	}

	const want = "time_ns," +
		"BOUND_ON_LOADS,BOUND_ON_STORES,STALLS_L1D_MISS,STALLS_L2_MISS,STALLS_L3_MISS," +
		"RETIRED.STALLS,1_PORTS_UTIL,2_PORTS_UTIL,STALLS.SCOREBD," +
		"CYCLES,INSTRUCTIONS," +
		"L1PF_L3_MISS,L2PF_L3_MISS,L2PF_L3_HIT,L1PF_ISSUED,L2PF_ISSUED,L2PF_DROPPED," +
		"DEMAND_L3_MISS,DEMAND_LOADS,STORE_OPS,DELAYED_HITS," +
		"cpmu_queue_depth,cpmu_link_credits,cpmu_thermal_active," +
		"cpmu_util_frac,cpmu_read_gbs,cpmu_write_gbs," +
		"cpmu_link_req_ns,cpmu_sched_wait_ns,cpmu_media_ns,cpmu_link_rsp_ns," +
		"cpmu_hiccup_stalls,cpmu_thermal_stalls,cpmu_requests\n" +
		"1000,0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20," +
		"0,0,0,0,0,0,0,0,0,0,0,0,0\n" +
		"2500.5,0,1.5,3,4.5,6,7.5,9,10.5,12,13.5,15,16.5,18,19.5,21,22.5,24,25.5,27,28.5,30," +
		"3,2,1,0.75,12.5,0.5,100,200.25,300,50,7,1,42\n"
	if got := sb.String(); got != want {
		t.Fatalf("CSV schema drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteCSVHeaderTracksCounterSet: the header must have one column
// per counter — adding a counter without extending the export is the
// silent-drop failure mode this guards.
func TestWriteCSVHeaderTracksCounterSet(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, nil); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSuffix(sb.String(), "\n")
	cols := strings.Split(header, ",")
	want := 1 + int(counters.NumCounters) + len(csvCPMUColumns)
	if len(cols) != want {
		t.Fatalf("header has %d columns, want %d", len(cols), want)
	}
	for i, id := range counters.SpaSet() {
		if cols[1+i] != id.String() {
			t.Fatalf("column %d = %q, want %q (P%d)", 1+i, cols[1+i], id.String(), i+1)
		}
	}
}
