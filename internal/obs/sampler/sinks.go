package sampler

import (
	"encoding/csv"
	"io"
	"strconv"

	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/obs"
)

// CPMUTrackNames lists the device-state counter tracks emitted by
// AppendCounterTracks, in emission order. Exported so trace validation
// (tests, CI smoke) can pin the schema.
var CPMUTrackNames = []string{
	"cpmu/queue_depth",
	"cpmu/link_credits",
	"cpmu/util",
	"cpmu/read_gbs",
	"cpmu/write_gbs",
	"cpmu/thermal",
}

// SpaTrackName returns the counter-track name for one Spa counter.
func SpaTrackName(id counters.ID) string { return "spa/" + id.String() }

// SpaTrackNames lists the nine Spa counter tracks in P1..P9 order.
func SpaTrackNames() []string {
	set := counters.SpaSet()
	out := make([]string, len(set))
	for i, id := range set {
		out[i] = SpaTrackName(id)
	}
	return out
}

// AppendCounterTracks renders the series as Perfetto counter tracks on
// pid. Counter samples carry simulated timestamps while the rest of
// the trace records wall time, so the sim-time axis is mapped linearly
// onto [startUs, endUs] — the cell's wall-clock span — putting the
// tracks directly under the worker span that produced them.
//
// The nine Spa counters are emitted as per-interval deltas (stall
// cycles added during each sampling period — the derivative view that
// makes phase changes visible); CPMU state tracks are instantaneous.
func AppendCounterTracks(tr *obs.Trace, pid int, samples []Sample, startUs, endUs float64) {
	if tr == nil || len(samples) == 0 {
		return
	}
	span := samples[len(samples)-1].TimeNs
	scale := 0.0
	if span > 0 && endUs > startUs {
		scale = (endUs - startUs) / span
	}
	var prev counters.Snapshot
	for _, smp := range samples {
		ts := startUs + smp.TimeNs*scale
		d := smp.Counters.Delta(prev)
		prev = smp.Counters
		for _, id := range counters.SpaSet() {
			tr.CounterAt(pid, SpaTrackName(id), ts, d[id])
		}
		if !smp.HasDevice {
			continue
		}
		dev := smp.Device
		thermal := 0.0
		if dev.ThermalActive {
			thermal = 1
		}
		tr.CounterAt(pid, "cpmu/queue_depth", ts, float64(dev.QueueDepth))
		tr.CounterAt(pid, "cpmu/link_credits", ts, float64(dev.LinkCreditsInFlight))
		tr.CounterAt(pid, "cpmu/util", ts, dev.UtilFrac)
		tr.CounterAt(pid, "cpmu/read_gbs", ts, dev.ReadGBs)
		tr.CounterAt(pid, "cpmu/write_gbs", ts, dev.WriteGBs)
		tr.CounterAt(pid, "cpmu/thermal", ts, thermal)
	}
}

// csvCPMUColumns names the device-state CSV columns after the counter
// block (zeros when no probe was attached).
var csvCPMUColumns = []string{
	"cpmu_queue_depth", "cpmu_link_credits", "cpmu_thermal_active",
	"cpmu_util_frac", "cpmu_read_gbs", "cpmu_write_gbs",
	"cpmu_link_req_ns", "cpmu_sched_wait_ns", "cpmu_media_ns",
	"cpmu_link_rsp_ns", "cpmu_hiccup_stalls", "cpmu_thermal_stalls",
	"cpmu_requests",
}

// WriteCSV writes the series as a CSV time series: one row per sample
// with the full cumulative counter snapshot and the CPMU state
// columns. Column order is stable: time_ns, the counters in ID order,
// then csvCPMUColumns.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 1+int(counters.NumCounters)+len(csvCPMUColumns))
	header = append(header, "time_ns")
	for id := counters.ID(0); id < counters.NumCounters; id++ {
		header = append(header, id.String())
	}
	header = append(header, csvCPMUColumns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	row := make([]string, 0, len(header))
	for _, smp := range samples {
		row = row[:0]
		row = append(row, f(smp.TimeNs))
		for id := counters.ID(0); id < counters.NumCounters; id++ {
			row = append(row, f(smp.Counters[id]))
		}
		dev := smp.Device
		thermal := "0"
		if dev.ThermalActive {
			thermal = "1"
		}
		row = append(row,
			strconv.Itoa(dev.QueueDepth), strconv.Itoa(dev.LinkCreditsInFlight),
			thermal, f(dev.UtilFrac), f(dev.ReadGBs), f(dev.WriteGBs),
			f(dev.LinkReqNs), f(dev.SchedWaitNs), f(dev.MediaNs),
			f(dev.LinkRspNs), u(dev.HiccupStalls), u(dev.ThermalStalls),
			u(dev.Requests))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
