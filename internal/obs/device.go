package obs

import "github.com/moatlab/melody/internal/mem"

// DeviceObserver implements mem.Observer with the CPMU-style breakdown:
// an end-to-end latency histogram for every device, plus per-component
// histograms (link request, scheduler wait, media, link response) and
// governor stall counts when the device attributes its latency. It is
// designed for one simulation goroutine feeding it (the engine creates
// one per experiment cell) and merged into a shared Registry afterwards.
type DeviceObserver struct {
	// Latency receives every access's end-to-end latency (ns).
	Latency *Histogram
	// Component histograms, populated only by attributed observations.
	LinkReq, SchedWait, Media, LinkRsp *Histogram

	reads, writes     uint64
	attributed        uint64
	hiccups, thermals uint64
}

var _ mem.Observer = (*DeviceObserver)(nil)

// NewDeviceObserver returns an observer with fresh histograms.
func NewDeviceObserver() *DeviceObserver {
	return &DeviceObserver{
		Latency:   NewHistogram(),
		LinkReq:   NewHistogram(),
		SchedWait: NewHistogram(),
		Media:     NewHistogram(),
		LinkRsp:   NewHistogram(),
	}
}

// ObserveAccess implements mem.Observer.
func (o *DeviceObserver) ObserveAccess(a mem.AccessObservation) {
	o.Latency.Record(a.Latency())
	if a.Kind == mem.Write {
		o.writes++
	} else {
		o.reads++
	}
	if !a.Attributed {
		return
	}
	o.attributed++
	o.LinkReq.Record(a.LinkReqNs)
	o.SchedWait.Record(a.SchedWaitNs)
	o.Media.Record(a.MediaNs)
	o.LinkRsp.Record(a.LinkRspNs)
	if a.Hiccup {
		o.hiccups++
	}
	if a.Thermal {
		o.thermals++
	}
}

// MergeInto folds the observer's state into reg under prefix, e.g.
// prefix "device/EMR2S/CXL-B" yields "device/EMR2S/CXL-B/latency_ns",
// ".../sched_wait_ns", ".../reads", ... Component instruments are only
// created when attributed observations arrived, so non-CXL configs dump
// a latency histogram without four empty component entries.
func (o *DeviceObserver) MergeInto(reg *Registry, prefix string) {
	if o == nil || reg == nil {
		return
	}
	reg.Histogram(prefix + "/latency_ns").Merge(o.Latency)
	reg.Counter(prefix + "/reads").Add(o.reads)
	reg.Counter(prefix + "/writes").Add(o.writes)
	if o.attributed == 0 {
		return
	}
	reg.Histogram(prefix + "/link_req_ns").Merge(o.LinkReq)
	reg.Histogram(prefix + "/sched_wait_ns").Merge(o.SchedWait)
	reg.Histogram(prefix + "/media_ns").Merge(o.Media)
	reg.Histogram(prefix + "/link_rsp_ns").Merge(o.LinkRsp)
	reg.Counter(prefix + "/hiccup_stalls").Add(o.hiccups)
	reg.Counter(prefix + "/thermal_stalls").Add(o.thermals)
}
