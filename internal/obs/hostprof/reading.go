package hostprof

// Runtime readings: one cheap snapshot of the Go runtime's vital signs
// — goroutine count, heap gauges, GC history. The serve runtime
// collector (internal/obs/serve/runtime.go) maps a Reading onto its
// melody_observatory_runtime_* gauges at scrape time; the watchdog
// consumes the same readings on its own cadence to detect anomalies.
// One implementation, two consumers, so "what the dashboard showed"
// and "what the watchdog acted on" can never disagree.

import (
	"runtime"
	"time"
)

// Reading is one observation of the host runtime.
type Reading struct {
	// At is the host time the reading was taken.
	At time.Time
	// Goroutines is runtime.NumGoroutine().
	Goroutines int
	// HeapAlloc/HeapSys/HeapObjects mirror runtime.MemStats.
	HeapAlloc   uint64
	HeapSys     uint64
	HeapObjects uint64
	// NumGC is the monotonic completed-GC-cycle count.
	NumGC uint32
	// PauseNs holds the stop-the-world pauses (in nanoseconds) of GC
	// cycles completed since the previous reading's NumGC, oldest
	// first — extracted from the MemStats.PauseNs ring, clamped to the
	// ring's 256-entry history (see PausesSince).
	PauseNs []float64
}

// TakeReading snapshots the runtime. prevNumGC is the NumGC of the
// previous reading (0 on the first call): pauses of cycles completed
// since then land in PauseNs. ReadMemStats stops the world for
// microseconds of host time; simulated results cannot observe it.
func TakeReading(prevNumGC uint32) Reading {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Reading{
		At:          time.Now(),
		Goroutines:  runtime.NumGoroutine(),
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		HeapObjects: ms.HeapObjects,
		NumGC:       ms.NumGC,
		PauseNs:     PausesSince(&ms.PauseNs, prevNumGC, ms.NumGC),
	}
}

// PausesSince extracts the pauses of GC cycles (prev, cur] from the
// 256-entry PauseNs ring (cycle c lands at (c+255)%256). A gap longer
// than 256 cycles loses the overwritten entries — the returned slice
// covers at most the ring's depth, newest-biased: the contract is
// "every pause within the ring's history exactly once", not
// exactly-once capture over arbitrary gaps.
func PausesSince(ring *[256]uint64, prev, cur uint32) []float64 {
	if cur <= prev {
		return nil
	}
	from := prev + 1
	if cur > 256 && from < cur-255 {
		from = cur - 255
	}
	out := make([]float64, 0, cur-from+1)
	for c := from; c <= cur; c++ {
		out = append(out, float64(ring[(c+255)%256]))
	}
	return out
}
