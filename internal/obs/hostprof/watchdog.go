package hostprof

// The anomaly watchdog: a cheap check on a short cadence that turns
// "something is off with the process" into an immediate tagged capture
// while the anomaly is still happening. Waiting for the next interval
// round means profiling the aftermath; the watchdog profiles the event.

import "time"

// Watchdog signal names (capture reasons are ReasonWatchdogPrefix +
// signal, e.g. "watchdog:goroutines").
const (
	SignalGoroutines = "goroutines"
	SignalHeap       = "heap"
	SignalGCPause    = "gc_pause"
)

// WatchdogConfig tunes the anomaly watchdog. The zero value enables
// every signal with the defaults below.
type WatchdogConfig struct {
	// Disabled turns the watchdog off entirely.
	Disabled bool
	// Interval is the check cadence (default 10s).
	Interval time.Duration
	// GoroutineFactor fires SignalGoroutines when the goroutine count
	// exceeds this multiple of its exponential moving baseline
	// (default 2.0). GoroutineMin gates small-process noise: counts
	// below it never fire (default 200).
	GoroutineFactor float64
	GoroutineMin    int
	// HeapGrowthStreak fires SignalHeap after this many consecutive
	// readings whose HeapAlloc each grew by at least HeapGrowthMin
	// bytes (defaults 5 and 8 MiB). Monotonic growth across readings —
	// spanning GC cycles — is what distinguishes a leak from churn.
	HeapGrowthStreak int
	HeapGrowthMin    uint64
	// GCPauseNs fires SignalGCPause when any stop-the-world pause since
	// the previous reading exceeds it (default 50ms).
	GCPauseNs float64
	// Cooldown is the minimum gap between two firings of the same
	// signal (default 2m), so a persistent anomaly yields a few
	// captures, not a capture per check.
	Cooldown time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.GoroutineFactor <= 1 {
		c.GoroutineFactor = 2.0
	}
	if c.GoroutineMin <= 0 {
		c.GoroutineMin = 200
	}
	if c.HeapGrowthStreak <= 0 {
		c.HeapGrowthStreak = 5
	}
	if c.HeapGrowthMin == 0 {
		c.HeapGrowthMin = 8 << 20
	}
	if c.GCPauseNs <= 0 {
		c.GCPauseNs = 50e6
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Minute
	}
	return c
}

// watchdog holds the detector state. It is driven single-threaded from
// the profiler loop (or a test), one observe per reading.
type watchdog struct {
	cfg WatchdogConfig

	seeded       bool
	emaGoroutine float64
	lastHeap     uint64
	heapStreak   int
	prevNumGC    uint32
	lastFired    map[string]time.Time
}

func newWatchdog(cfg WatchdogConfig) *watchdog {
	return &watchdog{cfg: cfg.withDefaults(), lastFired: map[string]time.Time{}}
}

// observe folds one reading into the detector state and returns the
// signals that fired, in declaration order. The first reading only
// seeds the baselines.
func (w *watchdog) observe(r Reading) []string {
	w.prevNumGC = r.NumGC
	if !w.seeded {
		w.seeded = true
		w.emaGoroutine = float64(r.Goroutines)
		w.lastHeap = r.HeapAlloc
		return nil
	}

	var fired []string

	// Goroutine spike: compare against the baseline *before* folding
	// the spike in, or the spike would raise its own bar.
	if r.Goroutines >= w.cfg.GoroutineMin &&
		float64(r.Goroutines) >= w.cfg.GoroutineFactor*w.emaGoroutine {
		fired = w.fire(fired, SignalGoroutines, r.At)
	}
	w.emaGoroutine = 0.8*w.emaGoroutine + 0.2*float64(r.Goroutines)

	// Sustained heap growth.
	if r.HeapAlloc >= w.lastHeap+w.cfg.HeapGrowthMin {
		w.heapStreak++
	} else {
		w.heapStreak = 0
	}
	w.lastHeap = r.HeapAlloc
	if w.heapStreak >= w.cfg.HeapGrowthStreak {
		w.heapStreak = 0
		fired = w.fire(fired, SignalHeap, r.At)
	}

	// GC pause outlier.
	for _, p := range r.PauseNs {
		if p > w.cfg.GCPauseNs {
			fired = w.fire(fired, SignalGCPause, r.At)
			break
		}
	}
	return fired
}

// fire appends signal unless it is still cooling down (per signal,
// clocked off the reading's own timestamp so tests need no sleeps).
func (w *watchdog) fire(fired []string, signal string, at time.Time) []string {
	if last, ok := w.lastFired[signal]; ok && at.Sub(last) < w.cfg.Cooldown {
		return fired
	}
	w.lastFired[signal] = at
	return append(fired, signal)
}
