package hostprof

// Heap-delta analysis: subtract one heap snapshot from a later one,
// per stack. A single heap profile says where memory *is*; the delta
// between two says where it is *going* — the view that turns "sustained
// heap growth" watchdog alerts into the allocation site responsible.

import (
	"fmt"
	"sort"
	"strings"
)

// DeltaRow is one stack's change between two heap snapshots. Stack is
// leaf-first (the allocation site leads). Delta holds one value per
// shared sample type, in the profile's type order.
type DeltaRow struct {
	Stack []string `json:"stack"`
	Delta []int64  `json:"delta"`
}

// HeapDelta is the comparison of two heap snapshots.
type HeapDelta struct {
	// SampleTypes names the value columns of every Delta row.
	SampleTypes []ValueType `json:"sample_types"`
	// SortedBy is the sample type the rows are ranked on (inuse_space
	// when present).
	SortedBy string `json:"sorted_by"`
	// Totals is the whole-profile delta per sample type.
	Totals []int64 `json:"totals"`
	// Rows are per-stack deltas, largest absolute change first, zero
	// rows dropped. Growth is positive.
	Rows []DeltaRow `json:"rows"`
	// RowsTruncated counts non-zero rows dropped by the row cap, so a
	// capped response is visible as such.
	RowsTruncated int `json:"rows_truncated,omitempty"`
}

// DefaultDeltaRows bounds the rows a delta report carries: enough to
// see every plausible leak site, small enough to eyeball.
const DefaultDeltaRows = 50

// DiffHeap computes to − from, per stack. Both profiles must share
// sample types (two captures of the same runtime profile kind always
// do). maxRows bounds the report (0 = DefaultDeltaRows).
func DiffHeap(from, to *Parsed, maxRows int) (*HeapDelta, error) {
	if maxRows <= 0 {
		maxRows = DefaultDeltaRows
	}
	if len(from.SampleTypes) != len(to.SampleTypes) {
		return nil, fmt.Errorf("hostprof: sample types differ: %d vs %d", len(from.SampleTypes), len(to.SampleTypes))
	}
	for i := range from.SampleTypes {
		if from.SampleTypes[i] != to.SampleTypes[i] {
			return nil, fmt.Errorf("hostprof: sample type %d differs: %v vs %v",
				i, from.SampleTypes[i], to.SampleTypes[i])
		}
	}
	nTypes := len(from.SampleTypes)

	// Rank on inuse_space when the profile has it (heap profiles do);
	// otherwise the last column (pprof convention: space after objects).
	sortIdx := to.TypeIndex("inuse_space")
	if sortIdx < 0 {
		sortIdx = nTypes - 1
	}

	acc := map[string]*DeltaRow{}
	fold := func(p *Parsed, sign int64) {
		for _, s := range p.Samples {
			key := strings.Join(s.Stack, "\x00")
			row, ok := acc[key]
			if !ok {
				row = &DeltaRow{Stack: s.Stack, Delta: make([]int64, nTypes)}
				acc[key] = row
			}
			for i := 0; i < nTypes && i < len(s.Values); i++ {
				row.Delta[i] += sign * s.Values[i]
			}
		}
	}
	fold(from, -1)
	fold(to, +1)

	out := &HeapDelta{
		SampleTypes: to.SampleTypes,
		SortedBy:    to.SampleTypes[sortIdx].Type,
		Totals:      make([]int64, nTypes),
	}
	rows := make([]*DeltaRow, 0, len(acc))
	for _, row := range acc {
		zero := true
		for i, d := range row.Delta {
			out.Totals[i] += d
			if d != 0 {
				zero = false
			}
		}
		if !zero {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := abs64(rows[i].Delta[sortIdx]), abs64(rows[j].Delta[sortIdx])
		if a != b {
			return a > b
		}
		// Deterministic order among ties.
		return strings.Join(rows[i].Stack, "\x00") < strings.Join(rows[j].Stack, "\x00")
	})
	if len(rows) > maxRows {
		out.RowsTruncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	for _, row := range rows {
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
