package hostprof

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"
)

// Store bounds. Sized like the tracespan store: deep enough that every
// capture of a debugging session is still there tomorrow, small enough
// that the store stays negligible next to one run's manifest. A 5s CPU
// window gzips to tens of kilobytes, so 64 MiB holds days of routine
// capture.
const (
	DefaultCaptureCap = 256
	DefaultByteCap    = 64 << 20
)

// Capture is one stored profile: the raw pprof bytes (gzipped
// profile.proto, exactly what `go tool pprof` consumes) plus the
// metadata the retention policy and the /profiles listing read.
type Capture struct {
	// ID is the content address: the first 16 hex characters of the
	// SHA-256 of Bytes. Identical bytes always get the same ID, so a
	// re-capture of an unchanged profile dedups instead of duplicating.
	ID string `json:"id"`
	// Type is the runtime/pprof profile kind: "cpu", "heap",
	// "goroutine", "mutex" or "block".
	Type string `json:"type"`
	// Reason records why the capture happened: "interval" for the
	// routine cadence, "job_start" for a job-triggered capture,
	// "watchdog:<signal>" for anomaly-triggered ones.
	Reason string `json:"reason"`
	// Start/End bound the capture window (equal for instant snapshots).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Size is len(Bytes), echoed in listings so an operator sees cost
	// before downloading.
	Size int `json:"size_bytes"`
	// Jobs holds the ids of jobs executing while the capture ran — the
	// join key into /runs, the structured logs and the trace store. A
	// CPU capture listing a job here is sliceable to that job with
	// `go tool pprof -tagfocus job_id=<id>`.
	Jobs []string `json:"jobs,omitempty"`

	// Bytes is the profile payload; omitted from listings (the
	// /profiles/{id} endpoint serves it raw).
	Bytes []byte `json:"-"`
}

// StoreStats counts the store's lifetime activity (all monotonic
// except the occupancy gauges).
type StoreStats struct {
	Captures  uint64 `json:"captures_added"`
	Dedups    uint64 `json:"captures_deduped"`
	Evicted   uint64 `json:"captures_evicted"`
	Stored    int    `json:"captures_stored"`
	StoredLen int64  `json:"bytes_stored"`
}

// Store is a bounded, content-addressed collection of captures.
// Retention is tail-biased, the same philosophy as the tracespan
// store: when a cap is hit, the evicted capture is the oldest routine
// one — captures that overlapped a job, or that a watchdog or job
// trigger fired, outlive interval captures until only protected ones
// are left. The anomalies an operator needs tomorrow are exactly the
// captures something unusual produced.
type Store struct {
	mu         sync.Mutex
	captureCap int
	byteCap    int64
	byID       map[string]*Capture
	order      []string // arrival order, oldest first
	bytes      int64
	stats      StoreStats
}

// NewStore returns a store retaining up to captureCap captures and
// byteCap total payload bytes (0 selects the defaults).
func NewStore(captureCap int, byteCap int64) *Store {
	if captureCap <= 0 {
		captureCap = DefaultCaptureCap
	}
	if byteCap <= 0 {
		byteCap = DefaultByteCap
	}
	return &Store{
		captureCap: captureCap,
		byteCap:    byteCap,
		byID:       map[string]*Capture{},
	}
}

// CaptureID returns the content address of a profile payload.
func CaptureID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// protected reports whether c survives routine eviction: anything a
// trigger fired (watchdog, job start) or that overlapped running jobs.
func protected(c *Capture) bool {
	return c.Reason != ReasonInterval || len(c.Jobs) > 0
}

// Add files one capture, computing its content address, dedup-ing
// identical payloads, and evicting per the retention policy. It
// returns the capture's ID.
func (s *Store) Add(c Capture) string {
	c.ID = CaptureID(c.Bytes)
	c.Size = len(c.Bytes)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byID[c.ID]; ok {
		// Same bytes re-captured: keep one payload, but let the newer
		// metadata win where it strengthens retention — a routine
		// capture re-taken under a watchdog trigger is now evidence.
		s.stats.Dedups++
		old.End = c.End
		if protected(&c) && !protected(old) {
			old.Reason = c.Reason
			old.Jobs = c.Jobs
		}
		s.syncStatsLocked()
		return c.ID
	}
	s.byID[c.ID] = &c
	s.order = append(s.order, c.ID)
	s.bytes += int64(c.Size)
	s.stats.Captures++
	for (len(s.order) > s.captureCap || s.bytes > s.byteCap) && len(s.order) > 1 {
		s.evictLocked()
	}
	s.syncStatsLocked()
	return c.ID
}

// evictLocked removes one capture: the oldest unprotected one. The
// newest entry — the capture Add is filing right now — is never the
// victim. When every older capture is protected, the oldest goes
// anyway: bounded memory beats perfect retention.
func (s *Store) evictLocked() {
	victim := -1
	for i, id := range s.order[:len(s.order)-1] {
		if !protected(s.byID[id]) {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	id := s.order[victim]
	s.bytes -= int64(s.byID[id].Size)
	s.order = append(s.order[:victim], s.order[victim+1:]...)
	delete(s.byID, id)
	s.stats.Evicted++
}

func (s *Store) syncStatsLocked() {
	s.stats.Stored = len(s.order)
	s.stats.StoredLen = s.bytes
}

// Len returns the number of retained captures.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats returns the store's counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Filter selects captures for List. Zero values match everything.
type Filter struct {
	// Type keeps only captures of one profile kind.
	Type string
	// Reason keeps only captures with this exact reason.
	Reason string
	// JobID keeps only captures that overlapped this job.
	JobID string
	// Limit bounds the result count (0 = no bound).
	Limit int
}

func matches(c *Capture, f Filter) bool {
	if f.Type != "" && c.Type != f.Type {
		return false
	}
	if f.Reason != "" && c.Reason != f.Reason {
		return false
	}
	if f.JobID != "" {
		found := false
		for _, j := range c.Jobs {
			if j == f.JobID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// List returns retained captures newest-first, filtered by f. The
// returned values carry metadata only (Bytes stays in the store).
func (s *Store) List(f Filter) []Capture {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Capture, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		c := s.byID[s.order[i]]
		if !matches(c, f) {
			continue
		}
		meta := *c
		meta.Bytes = nil
		out = append(out, meta)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Get returns one capture including its payload. ok is false for
// unknown (or evicted) ids.
func (s *Store) Get(id string) (Capture, bool) {
	if s == nil {
		return Capture{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return Capture{}, false
	}
	return *c, true
}
