package hostprof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

func testProfiler(t *testing.T, cfg Config) *Profiler {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.CPUDuration == 0 {
		cfg.CPUDuration = 150 * time.Millisecond
	}
	cfg.Watchdog.Disabled = true
	return New(cfg)
}

func TestRoundCapturesEveryType(t *testing.T) {
	reg := obs.NewRegistry()
	p := testProfiler(t, Config{
		Registry:   reg,
		ActiveJobs: func() []string { return []string{"run-000001"} },
	})
	p.round(context.Background(), ReasonInterval)

	for _, typ := range AllTypes {
		got := p.Store().List(Filter{Type: typ})
		if len(got) != 1 {
			t.Fatalf("type %s: %d captures, want 1", typ, len(got))
		}
		c := got[0]
		if c.Reason != ReasonInterval {
			t.Fatalf("type %s reason = %q", typ, c.Reason)
		}
		if len(c.Jobs) != 1 || c.Jobs[0] != "run-000001" {
			t.Fatalf("type %s jobs = %v", typ, c.Jobs)
		}
		full, ok := p.Store().Get(c.ID)
		if !ok || len(full.Bytes) == 0 {
			t.Fatalf("type %s payload missing", typ)
		}
		// Every stored payload must be readable by any pprof consumer.
		if _, err := Parse(full.Bytes); err != nil {
			t.Fatalf("type %s payload unparseable: %v", typ, err)
		}
	}
	if v := reg.Counter("hostprof/captures|type=heap").Value(); v != 1 {
		t.Fatalf("captures|type=heap = %v", v)
	}
	if v := reg.Counter("hostprof/rounds|reason=interval").Value(); v != 1 {
		t.Fatalf("rounds|reason=interval = %v", v)
	}
	if v := reg.Gauge("hostprof/store_captures").Value(); v != 5 {
		t.Fatalf("store_captures gauge = %v", v)
	}
}

// TestRoundRestoresProfilingRates pins satellite behavior: mutex and
// block sampling are enabled only inside a round's window, and the
// mutex fraction goes back to whatever it was before.
func TestRoundRestoresProfilingRates(t *testing.T) {
	prev := runtime.SetMutexProfileFraction(3)
	defer runtime.SetMutexProfileFraction(prev)

	p := testProfiler(t, Config{CPUDuration: 20 * time.Millisecond})
	p.round(context.Background(), ReasonInterval)

	if got := runtime.SetMutexProfileFraction(-1); got != 3 {
		t.Fatalf("mutex fraction after round = %d, want the pre-round 3", got)
	}
}

func TestCPUCaptureCarriesPprofLabels(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs a second CPU for sampling under load")
	}
	p := testProfiler(t, Config{
		Types:       []string{TypeCPU},
		CPUDuration: 400 * time.Millisecond,
	})

	// Labeled busy work spanning the capture window — the same shape as
	// the jobs executor's pprof.Do wrapping.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("job_id", "run-000042"), func(context.Context) {
			defer wg.Done()
			x := 1.0
			for ctx.Err() == nil {
				for i := 0; i < 1000; i++ {
					x = x*1.000001 + 0.5
				}
			}
			_ = x
		})
	}
	p.round(context.Background(), ReasonJobStart)
	cancel()
	wg.Wait()

	caps := p.Store().List(Filter{Type: TypeCPU, Reason: ReasonJobStart})
	if len(caps) != 1 {
		t.Fatalf("cpu captures = %d, want 1", len(caps))
	}
	full, _ := p.Store().Get(caps[0].ID)
	parsed, err := Parse(full.Bytes)
	if err != nil {
		t.Fatalf("parse cpu capture: %v", err)
	}
	if len(parsed.Samples) == 0 {
		t.Skip("no CPU samples landed in the window (loaded CI host)")
	}
	for _, v := range parsed.LabelValues("job_id") {
		if v == "run-000042" {
			return
		}
	}
	t.Fatalf("job_id=run-000042 label absent; labels seen: %v", parsed.LabelValues("job_id"))
}

func TestRunLoopTriggerAndShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	p := testProfiler(t, Config{
		Interval:    time.Hour, // only the initial round and triggers fire
		CPUDuration: 20 * time.Millisecond,
		Types:       []string{TypeGoroutine},
		Registry:    reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()

	deadline := time.After(5 * time.Second)
	for p.Store().Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("initial round never completed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	p.TriggerCPU(ReasonJobStart)
	for len(p.Store().List(Filter{Reason: ReasonJobStart})) == 0 {
		select {
		case <-deadline:
			t.Fatal("triggered round never completed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return on ctx cancel")
	}
}

func TestTriggerNeverBlocks(t *testing.T) {
	reg := obs.NewRegistry()
	p := testProfiler(t, Config{Registry: reg})
	// Nothing is draining the queue: the first sends fill it, the rest
	// drop and count. The call must return regardless.
	for i := 0; i < 20; i++ {
		p.TriggerCPU(ReasonJobStart)
	}
	if v := reg.Counter("hostprof/triggers_dropped").Value(); v != 16 {
		t.Fatalf("triggers_dropped = %v, want 16", v)
	}
	// A nil profiler (observatory without profiling) is a no-op.
	var nilP *Profiler
	nilP.TriggerCPU(ReasonJobStart)
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Interval != 60*time.Second || cfg.CPUDuration != 5*time.Second ||
		cfg.MutexFraction != 5 || cfg.BlockRate != 10_000 || cfg.Store == nil {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.Types) != 5 {
		t.Fatalf("default types = %v", cfg.Types)
	}
	// CPU window can never exceed half the interval.
	clamped := Config{Interval: time.Second, CPUDuration: 10 * time.Second}.withDefaults()
	if clamped.CPUDuration != 500*time.Millisecond {
		t.Fatalf("CPUDuration not clamped: %v", clamped.CPUDuration)
	}
}

func TestTakeReadingTracksGC(t *testing.T) {
	r0 := TakeReading(0)
	if r0.Goroutines <= 0 || r0.HeapAlloc == 0 {
		t.Fatalf("implausible reading %+v", r0)
	}
	runtime.GC()
	runtime.GC()
	r1 := TakeReading(r0.NumGC)
	if r1.NumGC < r0.NumGC+2 {
		t.Fatalf("NumGC did not advance: %d → %d", r0.NumGC, r1.NumGC)
	}
	if len(r1.PauseNs) != int(r1.NumGC-r0.NumGC) {
		t.Fatalf("PauseNs has %d entries for %d cycles", len(r1.PauseNs), r1.NumGC-r0.NumGC)
	}
}

func TestPausesSince(t *testing.T) {
	var ring [256]uint64
	for c := uint32(1); c <= 300; c++ {
		ring[(c+255)%256] = uint64(c)
	}
	// Normal window.
	got := PausesSince(&ring, 290, 295)
	want := []float64{291, 292, 293, 294, 295}
	if len(got) != len(want) {
		t.Fatalf("PausesSince = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PausesSince = %v, want %v", got, want)
		}
	}
	// Gap wider than the ring: clamped to the newest 256 cycles.
	got = PausesSince(&ring, 10, 300)
	if len(got) != 256 {
		t.Fatalf("wrapped window = %d pauses, want 256", len(got))
	}
	if got[0] != 45 || got[255] != 300 {
		t.Fatalf("wrapped window spans [%v, %v], want [45, 300]", got[0], got[255])
	}
	// No new cycles.
	if got := PausesSince(&ring, 300, 300); got != nil {
		t.Fatalf("empty window = %v", got)
	}
}
