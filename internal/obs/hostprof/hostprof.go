// Package hostprof is the continuous host profiler: it periodically
// captures CPU, heap, goroutine, mutex and block profiles of the live
// melody process (runtime/pprof output, the format `go tool pprof`
// consumes) and keeps them in a bounded, content-addressed store with
// tail-biased retention. Where internal/obs/profile renders *simulated*
// time — where the modeled machine's cycles go — hostprof measures the
// *host*: where the Go process itself burns CPU and heap while serving
// jobs. The speed roadmap runs on exactly this data: a serving process
// profiled under real traffic, not a one-off benchmark snapshot.
//
// Attribution: the jobs executor and melody's Execute/Engine wrap their
// work in pprof.Do with job_id / spec_hash / experiment labels, and
// worker goroutines inherit them — so a CPU capture here is sliceable
// per job (`go tool pprof -tagfocus job_id=run-000042`) and the labels
// join the correlation-key family shared by logs, metrics, traces and
// the job API.
//
// Capture taxonomy:
//
//	cpu        windowed pprof.StartCPUProfile session (CPUDuration)
//	heap       instant allocation snapshot (inuse/alloc space+objects)
//	goroutine  instant stack census
//	mutex      contention events sampled only during the round's window
//	block      blocking events sampled only during the round's window
//
// Mutex and block profiling rates are set when a round begins and
// restored when it ends, so their bookkeeping costs nothing between
// rounds and nothing at all when the profiler is off.
//
// Rounds run on a fixed Interval ("interval" reason), immediately when
// a job starts ("job_start", wired by the observatory so a short job is
// never missed between ticks), and immediately when the anomaly
// watchdog fires ("watchdog:goroutines" / "watchdog:heap" /
// "watchdog:gc_pause" — see watchdog.go). The profiler is strictly
// observation-side: it shares no state with the engine, so manifests
// are byte-identical with profiling on or off (test-pinned in
// internal/melody).
package hostprof

import (
	"bytes"
	"context"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// Capture reasons. Watchdog reasons are ReasonWatchdogPrefix + signal.
const (
	ReasonInterval       = "interval"
	ReasonJobStart       = "job_start"
	ReasonWatchdogPrefix = "watchdog:"
)

// Profile types, matching runtime/pprof's Lookup names (cpu is the
// windowed StartCPUProfile session, not a Lookup).
const (
	TypeCPU       = "cpu"
	TypeHeap      = "heap"
	TypeGoroutine = "goroutine"
	TypeMutex     = "mutex"
	TypeBlock     = "block"
)

// AllTypes is the default capture set.
var AllTypes = []string{TypeCPU, TypeHeap, TypeGoroutine, TypeMutex, TypeBlock}

// Config parameterizes a Profiler. The zero value is usable: every
// field has a serviceable default.
type Config struct {
	// Interval is the cadence between routine capture rounds
	// (default 60s).
	Interval time.Duration
	// CPUDuration is the CPU profiling window per round (default 5s,
	// clamped to half the interval so rounds can never overlap).
	CPUDuration time.Duration
	// Types selects which profiles each round captures (default
	// AllTypes).
	Types []string
	// MutexFraction is the runtime.SetMutexProfileFraction value while
	// a round's window is open (default 5). Restored to the previous
	// value after.
	MutexFraction int
	// BlockRate is the runtime.SetBlockProfileRate value while a
	// round's window is open (default 10000 ns). Reset to 0 after —
	// block profiling has no read-back, so the profiler assumes
	// ownership of the knob.
	BlockRate int
	// Store receives the captures (default NewStore(0, 0)).
	Store *Store
	// Registry, when set, receives the profiler's self-metrics
	// (hostprof/* families). Point it at an observatory self-registry,
	// never at an engine registry.
	Registry *obs.Registry
	// Log receives one structured line per capture (nil is silent).
	Log *slog.Logger
	// ActiveJobs, when set, returns the ids of jobs currently
	// executing; captures overlapping them are stamped and protected
	// by retention.
	ActiveJobs func() []string
	// Watchdog configures the anomaly watchdog; its zero value enables
	// the defaults. Set Watchdog.Disabled to run without one.
	Watchdog WatchdogConfig
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 60 * time.Second
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 5 * time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if len(c.Types) == 0 {
		c.Types = AllTypes
	}
	if c.MutexFraction <= 0 {
		c.MutexFraction = 5
	}
	if c.BlockRate <= 0 {
		c.BlockRate = 10_000
	}
	if c.Store == nil {
		c.Store = NewStore(0, 0)
	}
	if c.Log == nil {
		c.Log = svclog.Discard()
	}
	return c
}

// Profiler runs the capture loop. Build with New, drive with Run;
// TriggerCPU requests an immediate out-of-cadence round.
type Profiler struct {
	cfg     Config
	store   *Store
	log     *slog.Logger
	types   map[string]bool
	trigger chan string
	wd      *watchdog
}

// New returns a Profiler over cfg (see Config for defaults).
func New(cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	types := make(map[string]bool, len(cfg.Types))
	for _, t := range cfg.Types {
		types[t] = true
	}
	return &Profiler{
		cfg:     cfg,
		store:   cfg.Store,
		log:     cfg.Log,
		types:   types,
		trigger: make(chan string, 4),
		wd:      newWatchdog(cfg.Watchdog),
	}
}

// Store returns the capture store behind /profiles.
func (p *Profiler) Store() *Store { return p.store }

// Interval returns the effective routine-capture cadence.
func (p *Profiler) Interval() time.Duration { return p.cfg.Interval }

// TriggerCPU requests an immediate capture round tagged reason. It
// never blocks: with the trigger queue full the request is dropped
// (and counted) — the in-flight round is already capturing.
func (p *Profiler) TriggerCPU(reason string) {
	if p == nil {
		return
	}
	select {
	case p.trigger <- reason:
	default:
		p.count("hostprof/triggers_dropped")
	}
}

// Run is the capture loop: an immediate first round, then one round
// per Interval, plus watchdog checks and triggered rounds in between.
// It blocks until ctx is done; profiling rates are always restored on
// the way out.
func (p *Profiler) Run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	var wdC <-chan time.Time
	if !p.cfg.Watchdog.Disabled {
		wdTick := time.NewTicker(p.wd.cfg.Interval)
		defer wdTick.Stop()
		wdC = wdTick.C
		// Seed the watchdog's baseline before any work is profiled.
		p.wd.observe(TakeReading(0))
	}
	// First round immediately: a short-lived process (or a CI smoke)
	// should not wait a full interval for its first profile.
	p.round(ctx, ReasonInterval)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.round(ctx, ReasonInterval)
		case reason := <-p.trigger:
			p.round(ctx, reason)
		case <-wdC:
			reading := TakeReading(p.wd.prevNumGC)
			reasons := p.wd.observe(reading)
			for _, r := range reasons {
				p.count("hostprof/watchdog_triggers|reason=" + r)
				p.log.Warn("hostprof watchdog triggered",
					"signal", r,
					"goroutines", reading.Goroutines,
					"heap_alloc_bytes", reading.HeapAlloc,
				)
			}
			if len(reasons) > 0 {
				p.round(ctx, ReasonWatchdogPrefix+reasons[0])
			}
		}
	}
}

// round captures every enabled profile type once, tagged reason.
func (p *Profiler) round(ctx context.Context, reason string) {
	start := time.Now()
	jobs := p.activeJobs()
	p.count("hostprof/rounds|reason=" + reason)

	// Instant snapshots first: they describe the process at the moment
	// the round (and whatever triggered it) began.
	for _, t := range []string{TypeHeap, TypeGoroutine} {
		if p.types[t] {
			p.lookupCapture(t, reason, jobs)
		}
	}

	// Windowed captures: mutex/block event sampling is enabled only
	// while the window is open, so the cost between rounds — and with
	// the profiler off — is exactly zero.
	windowed := p.types[TypeCPU] || p.types[TypeMutex] || p.types[TypeBlock]
	if windowed {
		var prevMutex int
		if p.types[TypeMutex] {
			prevMutex = runtime.SetMutexProfileFraction(p.cfg.MutexFraction)
		}
		if p.types[TypeBlock] {
			runtime.SetBlockProfileRate(p.cfg.BlockRate)
		}

		var cpuBuf bytes.Buffer
		cpuStart := time.Now()
		cpuOK := false
		if p.types[TypeCPU] {
			if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
				// Another CPU profile is in flight (e.g. a /debug/pprof
				// fetch); skip this window rather than fight over it.
				p.count("hostprof/capture_errors|type=" + TypeCPU)
				p.log.Warn("hostprof cpu capture skipped", "err", err.Error())
			} else {
				cpuOK = true
			}
		}
		sleepCtx(ctx, p.cfg.CPUDuration)
		if cpuOK {
			pprof.StopCPUProfile()
			p.add(Capture{Type: TypeCPU, Reason: reason, Start: cpuStart, End: time.Now(),
				Jobs: p.mergeJobs(jobs), Bytes: append([]byte(nil), cpuBuf.Bytes()...)})
		}

		if p.types[TypeMutex] {
			p.lookupCapture(TypeMutex, reason, jobs)
			runtime.SetMutexProfileFraction(prevMutex)
		}
		if p.types[TypeBlock] {
			p.lookupCapture(TypeBlock, reason, jobs)
			runtime.SetBlockProfileRate(0)
		}
	}

	if p.cfg.Registry != nil {
		p.cfg.Registry.Histogram("hostprof/round_seconds").Record(time.Since(start).Seconds())
		st := p.store.Stats()
		p.cfg.Registry.Gauge("hostprof/store_captures").Set(float64(st.Stored))
		p.cfg.Registry.Gauge("hostprof/store_bytes").Set(float64(st.StoredLen))
		p.cfg.Registry.Gauge("hostprof/store_evictions").Set(float64(st.Evicted))
	}
}

// lookupCapture snapshots one runtime/pprof named profile (debug=0 is
// the gzipped protobuf form every pprof consumer reads).
func (p *Profiler) lookupCapture(name, reason string, jobs []string) {
	prof := pprof.Lookup(name)
	if prof == nil {
		p.count("hostprof/capture_errors|type=" + name)
		return
	}
	now := time.Now()
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.count("hostprof/capture_errors|type=" + name)
		p.log.Warn("hostprof capture failed", "type", name, "err", err.Error())
		return
	}
	p.add(Capture{Type: name, Reason: reason, Start: now, End: now,
		Jobs: p.mergeJobs(jobs), Bytes: buf.Bytes()})
}

// add stores one capture and records its self-metrics and log line.
func (p *Profiler) add(c Capture) {
	id := p.store.Add(c)
	p.count("hostprof/captures|type=" + c.Type)
	if p.cfg.Registry != nil {
		p.cfg.Registry.Histogram("hostprof/capture_bytes").Record(float64(len(c.Bytes)))
	}
	p.log.Debug("hostprof capture",
		"profile_id", id,
		"type", c.Type,
		"reason", c.Reason,
		"bytes", len(c.Bytes),
		"jobs", len(c.Jobs),
	)
}

// activeJobs snapshots the running-job set (nil-safe).
func (p *Profiler) activeJobs() []string {
	if p.cfg.ActiveJobs == nil {
		return nil
	}
	return p.cfg.ActiveJobs()
}

// mergeJobs unions the round-start job set with the jobs active now,
// so a capture is stamped with every job it overlapped — whichever end
// of the window the job ran in.
func (p *Profiler) mergeJobs(atStart []string) []string {
	now := p.activeJobs()
	if len(now) == 0 {
		return atStart
	}
	seen := make(map[string]bool, len(atStart))
	out := append([]string(nil), atStart...)
	for _, j := range atStart {
		seen[j] = true
	}
	for _, j := range now {
		if !seen[j] {
			out = append(out, j)
		}
	}
	return out
}

func (p *Profiler) count(name string) {
	if p.cfg.Registry != nil {
		p.cfg.Registry.Counter(name).Inc()
	}
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
