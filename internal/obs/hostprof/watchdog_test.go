package hostprof

import (
	"testing"
	"time"
)

// wdReading builds readings with a controllable clock so cooldown
// logic is tested without sleeping.
func wdReading(at time.Time, goroutines int, heap uint64, pauses ...float64) Reading {
	return Reading{At: at, Goroutines: goroutines, HeapAlloc: heap, PauseNs: pauses}
}

func newTestWatchdog() (*watchdog, time.Time) {
	w := newWatchdog(WatchdogConfig{
		GoroutineFactor:  2.0,
		GoroutineMin:     100,
		HeapGrowthStreak: 3,
		HeapGrowthMin:    1 << 20,
		GCPauseNs:        1e6,
		Cooldown:         time.Minute,
	})
	return w, time.Unix(1700000000, 0)
}

func TestWatchdogFirstReadingOnlySeeds(t *testing.T) {
	w, t0 := newTestWatchdog()
	// A wildly anomalous first reading must not fire: it IS the baseline.
	if got := w.observe(wdReading(t0, 100000, 1<<30, 1e9)); len(got) != 0 {
		t.Fatalf("first reading fired %v", got)
	}
}

func TestWatchdogGoroutineSpike(t *testing.T) {
	w, t0 := newTestWatchdog()
	w.observe(wdReading(t0, 50, 0))
	// Double the baseline but under GoroutineMin: no fire.
	if got := w.observe(wdReading(t0.Add(10*time.Second), 99, 0)); len(got) != 0 {
		t.Fatalf("sub-minimum spike fired %v", got)
	}
	// Now well past both the factor and the floor.
	got := w.observe(wdReading(t0.Add(20*time.Second), 400, 0))
	if len(got) != 1 || got[0] != SignalGoroutines {
		t.Fatalf("spike fired %v, want [goroutines]", got)
	}
	// Still elevated inside the cooldown: silent.
	if got := w.observe(wdReading(t0.Add(30*time.Second), 800, 0)); len(got) != 0 {
		t.Fatalf("cooldown violated: %v", got)
	}
	// After the cooldown a persisting spike fires again.
	if got := w.observe(wdReading(t0.Add(2*time.Minute), 5000, 0)); len(got) != 1 {
		t.Fatalf("post-cooldown spike fired %v", got)
	}
}

func TestWatchdogHeapGrowthStreak(t *testing.T) {
	w, t0 := newTestWatchdog()
	const mb = 1 << 20
	w.observe(wdReading(t0, 10, 10*mb))
	// Two growing readings, then a dip: streak resets, no fire.
	w.observe(wdReading(t0.Add(10*time.Second), 10, 12*mb))
	w.observe(wdReading(t0.Add(20*time.Second), 10, 14*mb))
	if got := w.observe(wdReading(t0.Add(30*time.Second), 10, 11*mb)); len(got) != 0 {
		t.Fatalf("reset streak fired %v", got)
	}
	// Three consecutive ≥1MiB steps: fires.
	w.observe(wdReading(t0.Add(40*time.Second), 10, 13*mb))
	w.observe(wdReading(t0.Add(50*time.Second), 10, 15*mb))
	got := w.observe(wdReading(t0.Add(60*time.Second), 10, 17*mb))
	if len(got) != 1 || got[0] != SignalHeap {
		t.Fatalf("heap streak fired %v, want [heap]", got)
	}
	// Sub-threshold growth never builds a streak.
	w2, u0 := newTestWatchdog()
	w2.observe(wdReading(u0, 10, 10*mb))
	for i := 1; i <= 6; i++ {
		if got := w2.observe(wdReading(u0.Add(time.Duration(i)*10*time.Second), 10, uint64(10*mb+i*1024))); len(got) != 0 {
			t.Fatalf("sub-threshold growth fired %v", got)
		}
	}
}

func TestWatchdogGCPauseOutlier(t *testing.T) {
	w, t0 := newTestWatchdog()
	w.observe(wdReading(t0, 10, 0))
	if got := w.observe(wdReading(t0.Add(10*time.Second), 10, 0, 5e5, 9e5)); len(got) != 0 {
		t.Fatalf("sub-threshold pauses fired %v", got)
	}
	got := w.observe(wdReading(t0.Add(20*time.Second), 10, 0, 5e5, 2e6))
	if len(got) != 1 || got[0] != SignalGCPause {
		t.Fatalf("pause outlier fired %v, want [gc_pause]", got)
	}
}

func TestWatchdogIndependentSignalsAndCooldowns(t *testing.T) {
	w, t0 := newTestWatchdog()
	const mb = 1 << 20
	w.observe(wdReading(t0, 50, 10*mb))
	w.observe(wdReading(t0.Add(10*time.Second), 50, 12*mb))
	w.observe(wdReading(t0.Add(20*time.Second), 50, 14*mb))
	// One reading trips all three signals at once.
	got := w.observe(wdReading(t0.Add(30*time.Second), 400, 16*mb, 2e6))
	if len(got) != 3 {
		t.Fatalf("combined anomaly fired %v, want all three signals", got)
	}
	if got[0] != SignalGoroutines || got[1] != SignalHeap || got[2] != SignalGCPause {
		t.Fatalf("signal order = %v", got)
	}
	// Goroutines cooling down does not mute a fresh gc_pause cooldown
	// window... but gc_pause also just fired, so only a signal that has
	// cooled fires next. Advance past the cooldown for gc_pause only.
	w.lastFired[SignalGCPause] = t0.Add(-time.Hour)
	got = w.observe(wdReading(t0.Add(40*time.Second), 800, 16*mb, 2e6))
	if len(got) != 1 || got[0] != SignalGCPause {
		t.Fatalf("per-signal cooldown broken: %v", got)
	}
}

func TestWatchdogDefaults(t *testing.T) {
	cfg := WatchdogConfig{}.withDefaults()
	if cfg.Interval != 10*time.Second || cfg.GoroutineFactor != 2.0 || cfg.GoroutineMin != 200 ||
		cfg.HeapGrowthStreak != 5 || cfg.HeapGrowthMin != 8<<20 || cfg.GCPauseNs != 50e6 ||
		cfg.Cooldown != 2*time.Minute {
		t.Fatalf("defaults = %+v", cfg)
	}
}
