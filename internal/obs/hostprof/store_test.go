package hostprof

import (
	"fmt"
	"testing"
	"time"
)

func mkcap(t, reason string, jobs []string, payload string) Capture {
	now := time.Now()
	return Capture{Type: t, Reason: reason, Jobs: jobs, Start: now, End: now, Bytes: []byte(payload)}
}

func TestStoreContentAddress(t *testing.T) {
	s := NewStore(0, 0)
	id1 := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "payload-a"))
	id2 := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "payload-b"))
	if id1 == id2 {
		t.Fatalf("distinct payloads got the same id %q", id1)
	}
	if id1 != CaptureID([]byte("payload-a")) {
		t.Fatalf("id %q is not the content address", id1)
	}
	got, ok := s.Get(id1)
	if !ok || string(got.Bytes) != "payload-a" {
		t.Fatalf("Get(%q) = %+v, %v", id1, got, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of unknown id reported ok")
	}
}

func TestStoreDedupStrengthensRetention(t *testing.T) {
	s := NewStore(0, 0)
	id := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "same-bytes"))
	// Re-capture of identical bytes under a watchdog trigger: one copy
	// kept, metadata upgraded to the protected reason.
	id2 := s.Add(mkcap(TypeHeap, ReasonWatchdogPrefix+SignalHeap, nil, "same-bytes"))
	if id != id2 {
		t.Fatalf("dedup produced different ids %q vs %q", id, id2)
	}
	if st := s.Stats(); st.Dedups != 1 || st.Stored != 1 {
		t.Fatalf("stats = %+v, want 1 dedup, 1 stored", st)
	}
	got, _ := s.Get(id)
	if got.Reason != ReasonWatchdogPrefix+SignalHeap {
		t.Fatalf("reason %q not strengthened", got.Reason)
	}
	// A later routine re-capture must not weaken it back.
	s.Add(mkcap(TypeHeap, ReasonInterval, nil, "same-bytes"))
	got, _ = s.Get(id)
	if got.Reason != ReasonWatchdogPrefix+SignalHeap {
		t.Fatalf("reason %q weakened by routine dedup", got.Reason)
	}
}

func TestStoreEvictsOldestUnprotected(t *testing.T) {
	s := NewStore(4, 0)
	protectedID := s.Add(mkcap(TypeCPU, ReasonJobStart, []string{"run-1"}, "p0"))
	routine1 := s.Add(mkcap(TypeCPU, ReasonInterval, nil, "p1"))
	routine2 := s.Add(mkcap(TypeCPU, ReasonInterval, nil, "p2"))
	s.Add(mkcap(TypeCPU, ReasonInterval, nil, "p3"))
	s.Add(mkcap(TypeCPU, ReasonInterval, nil, "p4")) // over cap: evicts routine1, not the older protected capture

	if _, ok := s.Get(routine1); ok {
		t.Fatal("oldest routine capture survived eviction")
	}
	if _, ok := s.Get(protectedID); !ok {
		t.Fatal("protected capture was evicted while a routine one remained")
	}
	if _, ok := s.Get(routine2); !ok {
		t.Fatal("newer routine capture evicted out of order")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Stored != 4 {
		t.Fatalf("stats = %+v, want 1 evicted, 4 stored", st)
	}
}

func TestStoreEvictsOldestWhenAllProtected(t *testing.T) {
	s := NewStore(2, 0)
	first := s.Add(mkcap(TypeCPU, ReasonJobStart, []string{"a"}, "q0"))
	s.Add(mkcap(TypeCPU, ReasonJobStart, []string{"b"}, "q1"))
	newest := s.Add(mkcap(TypeCPU, ReasonJobStart, []string{"c"}, "q2"))
	if _, ok := s.Get(first); ok {
		t.Fatal("bounded store kept everything despite cap")
	}
	if _, ok := s.Get(newest); !ok {
		t.Fatal("newest capture must never be the eviction victim")
	}
}

func TestStoreByteCap(t *testing.T) {
	s := NewStore(100, 10)
	a := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "aaaaaa")) // 6 bytes
	b := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "bbbbbb")) // 12 total → evict a
	if _, ok := s.Get(a); ok {
		t.Fatal("byte cap did not evict")
	}
	if _, ok := s.Get(b); !ok {
		t.Fatal("newest capture evicted by byte cap")
	}
	// A single oversize capture is still retained: bounded memory, but
	// the newest capture always survives.
	big := s.Add(mkcap(TypeHeap, ReasonInterval, nil, "cccccccccccccccccccc"))
	if _, ok := s.Get(big); !ok {
		t.Fatal("oversize newest capture dropped")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreListFilters(t *testing.T) {
	s := NewStore(0, 0)
	for i := 0; i < 3; i++ {
		s.Add(mkcap(TypeHeap, ReasonInterval, nil, fmt.Sprintf("h%d", i)))
	}
	s.Add(mkcap(TypeCPU, ReasonJobStart, []string{"run-7"}, "c0"))
	s.Add(mkcap(TypeCPU, ReasonInterval, nil, "c1"))

	if got := len(s.List(Filter{})); got != 5 {
		t.Fatalf("unfiltered List = %d captures, want 5", got)
	}
	if got := s.List(Filter{Type: TypeCPU}); len(got) != 2 || got[0].Type != TypeCPU {
		t.Fatalf("Type filter = %+v", got)
	}
	if got := s.List(Filter{Reason: ReasonJobStart}); len(got) != 1 || len(got[0].Jobs) != 1 {
		t.Fatalf("Reason filter = %+v", got)
	}
	if got := s.List(Filter{JobID: "run-7"}); len(got) != 1 || got[0].ID != CaptureID([]byte("c0")) {
		t.Fatalf("JobID filter = %+v", got)
	}
	if got := s.List(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("Limit = %d captures, want 2", len(got))
	}
	// Newest first, metadata only.
	all := s.List(Filter{})
	if all[0].ID != CaptureID([]byte("c1")) {
		t.Fatalf("List not newest-first: %+v", all[0])
	}
	for _, c := range all {
		if c.Bytes != nil {
			t.Fatal("List leaked payload bytes")
		}
		if c.Size == 0 {
			t.Fatal("List entry missing Size")
		}
	}
}
