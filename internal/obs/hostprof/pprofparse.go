package hostprof

// A minimal pprof profile.proto reader — the decoding counterpart to
// internal/obs/profile's encoder. The profiler stores raw runtime/pprof
// output; the heap-delta endpoint and the tests need to look inside it
// (sample types, stacks, label sets) without shelling out to `go tool
// pprof`. profile.proto needs only varint and length-delimited wire
// types, so a dependency-free reader is as small as the writer.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType names one sample dimension, e.g. {"inuse_space", "bytes"}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// ParsedSample is one decoded sample: its stack (leaf-first, pprof's
// native order), one value per profile sample type, and its string
// labels (pprof tags — job_id, spec_hash, experiment land here).
type ParsedSample struct {
	Stack  []string
	Values []int64
	Labels map[string][]string
}

// Parsed is a decoded profile.
type Parsed struct {
	SampleTypes       []ValueType
	DefaultSampleType string
	DurationNanos     int64
	Samples           []ParsedSample
}

// LabelValues returns the distinct values of one label key across all
// samples, in first-seen order.
func (p *Parsed) LabelValues(key string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range p.Samples {
		for _, v := range s.Labels[key] {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Total sums one sample-type column (by index) across all samples.
func (p *Parsed) Total(valueIndex int) int64 {
	var t int64
	for _, s := range p.Samples {
		if valueIndex < len(s.Values) {
			t += s.Values[valueIndex]
		}
	}
	return t
}

// TypeIndex returns the index of the named sample type (-1 if absent).
func (p *Parsed) TypeIndex(name string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == name {
			return i
		}
	}
	return -1
}

// Parse decodes a pprof profile from data, transparently gunzipping
// (runtime/pprof and the profiler always write gzipped protobuf).
func Parse(data []byte) (*Parsed, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("hostprof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("hostprof: gunzip profile: %w", err)
		}
		data = raw
	}
	return parseProto(data)
}

// --- protobuf wire reading ---

type reader struct {
	b   []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.b) }

func (r *reader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.b) {
			return 0, io.ErrUnexpectedEOF
		}
		c := r.b[r.pos]
		r.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("hostprof: varint overflow")
		}
	}
}

// field reads one field key and returns its number, wire type, and —
// for the two wire types profile.proto uses — its payload: a varint
// value (wire 0) or delimited bytes (wire 2). Other wire types are
// skipped so future profile.proto additions cannot break the reader.
func (r *reader) field() (num int, wire int, v uint64, data []byte, err error) {
	key, err := r.varint()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	num, wire = int(key>>3), int(key&7)
	switch wire {
	case 0:
		v, err = r.varint()
	case 2:
		var n uint64
		n, err = r.varint()
		if err == nil {
			if r.pos+int(n) > len(r.b) {
				return 0, 0, 0, nil, io.ErrUnexpectedEOF
			}
			data = r.b[r.pos : r.pos+int(n)]
			r.pos += int(n)
		}
	case 5: // fixed32
		if r.pos+4 > len(r.b) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 4
	case 1: // fixed64
		if r.pos+8 > len(r.b) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 8
	default:
		return 0, 0, 0, nil, fmt.Errorf("hostprof: unsupported wire type %d", wire)
	}
	return num, wire, v, data, err
}

// uints decodes a repeated varint field that may arrive packed (one
// length-delimited payload) or unpacked (one varint per occurrence).
func uints(wire int, v uint64, data []byte, into []uint64) ([]uint64, error) {
	if wire == 0 {
		return append(into, v), nil
	}
	r := &reader{b: data}
	for !r.done() {
		x, err := r.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, x)
	}
	return into, nil
}

// --- profile.proto decoding ---

type rawSample struct {
	locs   []uint64
	vals   []uint64
	labels []rawLabel
}

type rawLabel struct{ key, str int64 }

func parseProto(data []byte) (*Parsed, error) {
	var (
		strTab      []string
		sampleTypes [][2]int64 // (type idx, unit idx)
		samples     []rawSample
		locLines    = map[uint64][]uint64{} // location id → function ids, leaf-first
		locAddr     = map[uint64]uint64{}
		funcName    = map[uint64]int64{}
		defaultType int64
		durationNs  int64
	)

	r := &reader{b: data}
	for !r.done() {
		num, wire, v, payload, err := r.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			vt, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			s, err := parseSample(payload)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			id, addr, fns, err := parseLocation(payload)
			if err != nil {
				return nil, err
			}
			locLines[id] = fns
			locAddr[id] = addr
		case 5: // function
			id, name, err := parseFunction(payload)
			if err != nil {
				return nil, err
			}
			funcName[id] = name
		case 6: // string_table
			strTab = append(strTab, string(payload))
		case 10: // duration_nanos
			durationNs = int64(v)
		case 14: // default_sample_type
			defaultType = int64(v)
		}
		_ = wire
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strTab) {
			return ""
		}
		return strTab[i]
	}
	if len(sampleTypes) == 0 {
		return nil, fmt.Errorf("hostprof: profile has no sample types")
	}

	out := &Parsed{
		DefaultSampleType: str(defaultType),
		DurationNanos:     durationNs,
	}
	for _, vt := range sampleTypes {
		out.SampleTypes = append(out.SampleTypes, ValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	for _, s := range samples {
		ps := ParsedSample{Values: make([]int64, len(s.vals))}
		for i, v := range s.vals {
			ps.Values[i] = int64(v)
		}
		for _, loc := range s.locs {
			if fns := locLines[loc]; len(fns) > 0 {
				for _, fn := range fns {
					ps.Stack = append(ps.Stack, str(funcName[fn]))
				}
			} else {
				ps.Stack = append(ps.Stack, fmt.Sprintf("0x%x", locAddr[loc]))
			}
		}
		if len(s.labels) > 0 {
			ps.Labels = map[string][]string{}
			for _, l := range s.labels {
				// Numeric labels (str == 0) are not needed here; string
				// labels are the correlation tags.
				if l.str != 0 {
					k := str(l.key)
					ps.Labels[k] = append(ps.Labels[k], str(l.str))
				}
			}
		}
		out.Samples = append(out.Samples, ps)
	}
	return out, nil
}

func parseValueType(data []byte) ([2]int64, error) {
	var vt [2]int64
	r := &reader{b: data}
	for !r.done() {
		num, _, v, _, err := r.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			vt[0] = int64(v)
		case 2:
			vt[1] = int64(v)
		}
	}
	return vt, nil
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	r := &reader{b: data}
	for !r.done() {
		num, wire, v, payload, err := r.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locs, err = uints(wire, v, payload, s.locs); err != nil {
				return s, err
			}
		case 2:
			if s.vals, err = uints(wire, v, payload, s.vals); err != nil {
				return s, err
			}
		case 3:
			l, err := parseLabel(payload)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		}
	}
	return s, nil
}

func parseLabel(data []byte) (rawLabel, error) {
	var l rawLabel
	r := &reader{b: data}
	for !r.done() {
		num, _, v, _, err := r.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			l.key = int64(v)
		case 2:
			l.str = int64(v)
		}
	}
	return l, nil
}

func parseLocation(data []byte) (id, addr uint64, fns []uint64, err error) {
	r := &reader{b: data}
	for !r.done() {
		num, _, v, payload, ferr := r.field()
		if ferr != nil {
			return 0, 0, nil, ferr
		}
		switch num {
		case 1:
			id = v
		case 3:
			addr = v
		case 4: // Line{function_id=1, line=2}; lines are leaf-first
			lr := &reader{b: payload}
			for !lr.done() {
				lnum, _, lv, _, lerr := lr.field()
				if lerr != nil {
					return 0, 0, nil, lerr
				}
				if lnum == 1 {
					fns = append(fns, lv)
				}
			}
		}
	}
	return id, addr, fns, nil
}

func parseFunction(data []byte) (id uint64, name int64, err error) {
	r := &reader{b: data}
	for !r.done() {
		num, _, v, _, ferr := r.field()
		if ferr != nil {
			return 0, 0, ferr
		}
		switch num {
		case 1:
			id = v
		case 2:
			name = int64(v)
		}
	}
	return id, name, nil
}
